// L3 coverage-closure campaign: the paper's Fig. 4 scenario at a
// moderate budget.
//
//	go run ./examples/l3closure
//
// The L3 cache unit's byp_reqs01..16 family counts simultaneously
// outstanding bypass requests. Mainstream regression covers only the
// shallow levels; this example drives the AS-CDG flow until the family
// is covered, then inspects the phase-by-phase progression and the
// harvested template — including what the optimizer learned (bypass
// hints on, zero inter-arrival gaps, low locality).
package main

import (
	"context"

	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/duv/l3cache"
)

func main() {
	unit := l3cache.New()
	flow := core.NewFlow(unit, core.Config{
		Seed:                  7,
		CorpusSimsPerTemplate: 4000,
		SampleTemplates:       60,
		SampleSims:            100,
		OptIterations:         12,
		OptDirections:         11,
		OptSims:               100,
		BestSims:              3000,
	})

	reports, err := flow.RunFamilyRefined(context.Background(), l3cache.FamilyName, 0.4, 3)
	if err != nil {
		log.Fatal(err)
	}

	model := unit.Model()
	famIDs, _ := model.Family(l3cache.FamilyName)

	fmt.Printf("campaign finished after %d round(s)\n\n", len(reports))
	for i, report := range reports {
		best := report.Phase("best").Counts
		newly := 0
		for _, ev := range report.TargetEvents {
			if best.Hits(ev) > 0 {
				newly++
			}
		}
		fmt.Printf("round %d: %d targets, %d newly hit by the harvested template, %d sims\n",
			i+1, len(report.TargetEvents), newly, report.TotalSims)
	}
	fmt.Println()

	final := reports[len(reports)-1]
	table, err := final.FormatFamilyTable(model, l3cache.FamilyName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)

	// Coverage-closure bookkeeping: what does the repository say now?
	repo := flow.Repository()
	sc := repo.Total().StatusCounts(famIDs)
	fmt.Printf("family status after the campaign: %d never / %d lightly / %d well hit\n\n",
		sc[coverage.StatusNever], sc[coverage.StatusLightly], sc[coverage.StatusWell])

	fmt.Println("optimization progress of the final round (paper Fig. 6):")
	fmt.Println(final.FormatProgress())

	fmt.Println("harvested test-template:")
	fmt.Print(final.BestTemplate.String())
}
