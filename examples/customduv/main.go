// Bring-your-own-DUV: plug a custom design model and its regression
// suite into the AS-CDG flow.
//
//	go run ./examples/customduv
//
// The paper stresses that AS-CDG is black-box and DUV-independent: any
// verification environment with parametrized test-templates can use it
// unchanged. This example shows the full adopter's checklist on a small
// arbiter model:
//
//  1. define a coverage model (here: grant-streak events forming an
//     ordered family),
//  2. implement duv.DUV — Simulate consults the generator for every
//     random decision it makes,
//  3. declare defaults and a base regression suite in the template
//     language,
//  4. hand the unit to core.NewFlow and run.
package main

import (
	"context"

	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/generator"
	"repro/internal/template"
)

// arbiter models a 4-requester round-robin arbiter with a priority
// override. Coverage tracks how many consecutive grants one requester
// can hoard (streak_02 .. streak_16): hoarding requires skewed request
// weights plus the priority override, which default traffic never
// combines.
type arbiter struct {
	model    *coverage.Model
	defaults generator.Defaults
	base     []*template.Template
	streaks  []int
}

const streakFamily = "grant_streaks"

func newArbiter() *arbiter {
	names := []string{"streak_02", "streak_04", "streak_08", "streak_12", "streak_16"}
	names = append(names,
		"arb_r0_granted", "arb_r1_granted", "arb_r2_granted", "arb_r3_granted",
		"arb_prio_used", "arb_idle_cycle", "arb_all_requesting",
	)
	m := coverage.MustModel(names)
	if err := m.AddFamily(streakFamily, names[:5]); err != nil {
		panic(err)
	}
	u := &arbiter{model: m, streaks: []int{2, 4, 8, 12, 16}}

	defaults, err := template.Parse(`
template arb_defaults {
    weight ReqMix {
        r0: 25;
        r1: 25;
        r2: 25;
        r3: 25;
    }
    weight PrioOverride {
        on:  5;
        off: 95;
    }
    range Burstiness [0 : 3];
}
`)
	if err != nil {
		panic(err)
	}
	u.defaults = duv.DefaultsFromTemplate(defaults)
	u.base = duv.MustParseTemplates(`
template arb_regress {
    weight ReqMix {
        r0: 25;
        r1: 25;
        r2: 25;
        r3: 25;
    }
}
`, `
template arb_hotspot {
    weight ReqMix {
        r0: 70;
        r1: 10;
        r2: 10;
        r3: 10;
    }
    weight PrioOverride {
        on:  20;
        off: 80;
    }
    range Burstiness [0 : 7];
}
`)
	return u
}

func (u *arbiter) Name() string                 { return "arbiter" }
func (u *arbiter) Model() *coverage.Model       { return u.model }
func (u *arbiter) Defaults() generator.Defaults { return u.defaults }
func (u *arbiter) BaseTemplates() []*template.Template {
	out := make([]*template.Template, len(u.base))
	for i, t := range u.base {
		out[i] = t.Clone()
	}
	return out
}

func (u *arbiter) Simulate(g *generator.Generator) coverage.Vector {
	v := coverage.NewVectorFor(u.model)
	r := g.RNG()
	lastGrant, streak, maxStreak := -1, 0, 0
	rr := 0
	for cycle := 0; cycle < 600; cycle++ {
		// Each requester raises its line with a probability shaped by
		// ReqMix and Burstiness.
		var req [4]bool
		burst := g.PickInt("Burstiness")
		any := false
		all := true
		for i := 0; i < 4; i++ {
			want := g.PickValue("ReqMix") == fmt.Sprintf("r%d", i)
			// Burstiness keeps lines asserted for longer runs.
			req[i] = want || (burst > 0 && r.Bool(float64(burst)/10))
			any = any || req[i]
			all = all && req[i]
		}
		if all {
			v.Set(u.model.MustLookup("arb_all_requesting"))
		}
		if !any {
			v.Set(u.model.MustLookup("arb_idle_cycle"))
			continue
		}
		// Priority override lets the last winner keep the grant.
		grant := -1
		if lastGrant >= 0 && req[lastGrant] && g.PickValue("PrioOverride") == "on" {
			grant = lastGrant
			v.Set(u.model.MustLookup("arb_prio_used"))
		} else {
			for i := 0; i < 4; i++ {
				cand := (rr + i) % 4
				if req[cand] {
					grant = cand
					break
				}
			}
			rr = (grant + 1) % 4
		}
		v.Set(u.model.MustLookup(fmt.Sprintf("arb_r%d_granted", grant)))
		if grant == lastGrant {
			streak++
		} else {
			streak = 1
		}
		lastGrant = grant
		if streak > maxStreak {
			maxStreak = streak
		}
	}
	for i, th := range u.streaks {
		if maxStreak >= th {
			v.Set(u.model.MustLookup([]string{"streak_02", "streak_04", "streak_08", "streak_12", "streak_16"}[i]))
		}
	}
	return v
}

func main() {
	unit := newArbiter()
	flow := core.NewFlow(unit, core.Config{
		Seed:                  11,
		CorpusSimsPerTemplate: 1500,
		SampleTemplates:       40,
		SampleSims:            60,
		OptIterations:         8,
		OptDirections:         8,
		OptSims:               80,
		BestSims:              1500,
	})
	reports, err := flow.RunFamilyRefined(context.Background(), streakFamily, 0.5, 2)
	if err != nil {
		log.Fatal(err)
	}
	final := reports[len(reports)-1]
	fmt.Print(final.Summary(unit.Model()))
	fmt.Println()
	table, err := final.FormatFamilyTable(unit.Model(), streakFamily)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)
	fmt.Println("harvested test-template:")
	fmt.Print(final.BestTemplate.String())
}
