// Quickstart: run the complete AS-CDG flow against the built-in I/O
// unit and watch it hit previously-uncovered CRC-FIFO events.
//
//	go run ./examples/quickstart
//
// The flow (paper Fig. 2): build the "Before CDG" regression corpus,
// form an approximated target from the crc_* family, let TAC pick the
// best existing templates, skeletonize them, random-sample the weight
// space, optimize with implicit filtering, and harvest the winner.
package main

import (
	"context"

	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/duv/iounit"
)

func main() {
	unit := iounit.New()
	flow := core.NewFlow(unit, core.Config{
		Seed:                  42,
		CorpusSimsPerTemplate: 2000, // "several weeks" of regression, scaled down
		SampleTemplates:       50,   // random sample: n templates ...
		SampleSims:            100,  // ... N sims each
		OptIterations:         7,
		OptDirections:         10,
		OptSims:               200,
		BestSims:              2000,
	})

	// Two refinement rounds: the first pushes the frontier (crc_032),
	// the second climbs onto the evidence it created (crc_064).
	reports, err := flow.RunFamilyRefined(context.Background(), iounit.FamilyName, 0.4, 2)
	if err != nil {
		log.Fatal(err)
	}

	model := unit.Model()
	final := reports[len(reports)-1]
	fmt.Print(final.Summary(model))
	fmt.Println()

	table, err := final.FormatFamilyTable(model, iounit.FamilyName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)

	fmt.Println("harvested test-template (add this to your regression suite):")
	fmt.Print(final.BestTemplate.String())
}
