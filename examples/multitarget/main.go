// Multi-target CDG with shared simulations — the paper's future-work
// direction (Section VI): "reduce the number of simulations per event by
// using the same simulations for several target events."
//
//	go run ./examples/multitarget
//
// Every uncovered event of the NoC router's retry-depth family becomes
// its own optimization target, but the corpus, the coarse-grained
// search, the skeleton, and the whole random-sample phase are shared.
// A closure tracker records the campaign the way a verification lead
// would watch it.
package main

import (
	"context"

	"fmt"
	"log"
	"time"

	"repro/internal/closure"
	"repro/internal/core"
	"repro/internal/duv/noc"
)

func main() {
	unit := noc.New()
	flow := core.NewFlow(unit, core.Config{
		Seed:                  5,
		CorpusSimsPerTemplate: 1200,
		SampleTemplates:       40,
		SampleSims:            60,
		OptIterations:         6,
		OptDirections:         8,
		OptSims:               60,
		BestSims:              800,
	})

	model := unit.Model()
	tracker := closure.NewTracker(model)
	campaignStart := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)

	reports, err := flow.RunPerEventShared(context.Background(), noc.FamilyName, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// Record the shared corpus once, then the state after each target's
	// harvest (the repository accumulates as the campaign proceeds).
	if err := tracker.Record("before CDG", campaignStart,
		reports[0].Phase("before").Counts); err != nil {
		log.Fatal(err)
	}
	if err := tracker.Record("after campaign", campaignStart.Add(2*time.Hour),
		flow.Repository().Total()); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d targets optimized with shared corpus + sampling\n\n", len(reports))
	fmt.Printf("%-12s %-28s %10s %12s\n", "target", "harvested template", "best rate", "sims (own)")
	for _, r := range reports {
		ev := r.TargetEvents[0]
		best := r.Phase("best").Counts
		fmt.Printf("%-12s %-28s %9.2f%% %12d\n",
			model.Name(ev), r.BestTemplate.Name, best.HitRate(ev)*100, r.TotalSims)
	}
	fmt.Println()

	d, err := tracker.Diff(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign delta: %d newly covered, %d improved, %d sims spent\n",
		len(d.NewlyCovered), len(d.Improved), d.Sims)
	fmt.Printf("closure velocity: %.1f newly-covered events per million sims\n\n", tracker.Velocity())
	fmt.Println(tracker.Report(8))
}
