// Cross-product closure on the instruction fetch unit: the paper's
// Fig. 5 scenario.
//
//	go run ./examples/ifucross
//
// The IFU coverage model is a 256-event cross product over
// entry(0-7) x thread(0-3) x sector(0-3) x branch(seq,br). Default
// regression traffic is biased toward thread 0 and the first address
// sector, so most of the cross is dark. AS-CDG covers everything the
// unit can hit; the 32 entry7 events stay uncovered because the fetch
// queue's flow control never fills entry 7 — the flow surfaces that
// capability limit instead of hiding it.
package main

import (
	"context"

	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/duv/ifu"
)

func main() {
	unit := ifu.New()
	flow := core.NewFlow(unit, core.Config{
		Seed:                  3,
		CorpusSimsPerTemplate: 3000,
		TopTemplates:          3, // merge parameters from the top-3 templates
		SampleTemplates:       60,
		SampleSims:            100,
		OptIterations:         8,
		OptDirections:         12,
		OptSims:               150,
		BestSims:              4000,
	})

	report, err := flow.RunCross(context.Background(), ifu.CrossName)
	if err != nil {
		log.Fatal(err)
	}

	model := unit.Model()
	cross := unit.Cross()
	ids, err := model.IDs(cross.EventNames())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.Summary(model))
	fmt.Println()
	fmt.Println(report.FormatStatusTable(model, ids))

	// Break the remaining uncovered events down by cross-product
	// attribute — the analysis a verification engineer would do next.
	best := report.Phase("best").Counts
	perEntry := map[string]int{}
	for _, name := range cross.EventNames() {
		if best.Hits(model.MustLookup(name)) == 0 {
			coords, err := cross.Coords(name)
			if err != nil {
				log.Fatal(err)
			}
			perEntry[cross.Dims[0].Values[coords[0]]]++
		}
	}
	fmt.Println("uncovered events by queue entry:")
	for _, v := range cross.Dims[0].Values {
		if perEntry[v] > 0 {
			fmt.Printf("  %s: %d\n", v, perEntry[v])
		}
	}
	fmt.Println("\n(entry e7 is beyond the unit's capabilities: fetch flow control",
		"\n stops at 7 queued entries, so nothing can ever land in entry 7)")

	// Confirm the rest of the cross is fully covered.
	covered := 0
	for _, id := range ids {
		if best.Hits(id) > 0 {
			covered++
		}
	}
	fmt.Printf("\ncovered by the harvested template: %d/%d cross events\n", covered, len(ids))
}
