package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestTracemergeEndToEnd writes two per-process traces (one bare array,
// one traceEvents-object form), merges them via the CLI, and checks the
// output is a valid timeline with one named lane per input.
func TestTracemergeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	disp := filepath.Join(dir, "cdgd.trace")
	work := filepath.Join(dir, "farmd-a.trace")
	if err := os.WriteFile(disp, []byte(
		`[{"name":"rpc","cat":"farm","ph":"X","ts":1,"dur":5,"pid":1,"tid":1,"args":{"chunk":7,"campaign":"c1"}}]`,
	), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(work, []byte(
		`{"traceEvents":[{"name":"serve_chunk","cat":"farm","ph":"X","ts":2,"dur":3,"pid":1,"tid":1,"args":{"chunk":7,"campaign":"c1"}}]}`,
	), 0o644); err != nil {
		t.Fatal(err)
	}

	merged := filepath.Join(dir, "merged.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", merged, disp, work}, &stdout, &stderr); code != 0 {
		t.Fatalf("tracemerge exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "4 events from 2 traces") {
		t.Fatalf("summary = %q", stdout.String())
	}

	data, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ParseTrace(data)
	if err != nil {
		t.Fatalf("merged output is not a valid trace: %v", err)
	}
	lanes := map[int]string{}
	spans := map[int]string{}
	for _, ev := range events {
		if ev.Ph == "M" && ev.Name == "process_name" {
			lanes[ev.Pid], _ = ev.Args["name"].(string)
		} else {
			spans[ev.Pid] = ev.Name
		}
	}
	if lanes[1] != "cdgd.trace" || lanes[2] != "farmd-a.trace" {
		t.Fatalf("lane names = %v", lanes)
	}
	if spans[1] != "rpc" || spans[2] != "serve_chunk" {
		t.Fatalf("spans landed on wrong lanes: %v", spans)
	}
}

func TestTracemergeErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no-args exit = %d", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.trace")}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing-file exit = %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad-trace exit = %d", code)
	}
}

func TestTracemergeVersion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version exit = %d", code)
	}
	if !strings.Contains(stdout.String(), "tracemerge") {
		t.Fatalf("-version output = %q", stdout.String())
	}
}
