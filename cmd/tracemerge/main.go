// Command tracemerge combines per-process Chrome trace files from one
// fleet run — the dispatcher-side CLI's or cdgd's trace plus one per
// farmd worker, each written with -trace — into a single timeline that
// Perfetto renders with one named lane group per process. Remote chunk
// spans carry the same campaign/batch/chunk args on both sides of the
// wire, so a dispatcher's rpc span and the worker's serve_chunk span
// that executed it are correlated in the merged view.
//
// Usage:
//
//	tracemerge [-o merged.json] cdgd.trace farmd-a.trace farmd-b.trace
//
// Inputs may be the bare event array obs.Tracer writes or the
// {"traceEvents": [...]} object form. Each input's lane group is named
// after its file (without directory).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/buildinfo"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracemerge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the merged trace to this file (default: stdout)")
	version := fs.Bool("version", false, "print version information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("tracemerge"))
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: tracemerge [-o merged.json] <trace-file>...")
		return 2
	}

	files := make([]obs.TraceFile, 0, fs.NArg())
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "tracemerge: %v\n", err)
			return 1
		}
		events, err := obs.ParseTrace(data)
		if err != nil {
			fmt.Fprintf(stderr, "tracemerge: %s: %v\n", path, err)
			return 1
		}
		files = append(files, obs.TraceFile{Name: filepath.Base(path), Events: events})
	}

	merged := obs.MergeTraces(files)
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "tracemerge: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := obs.WriteTrace(w, merged); err != nil {
		fmt.Fprintf(stderr, "tracemerge: %v\n", err)
		return 1
	}
	if *out != "" {
		fmt.Fprintf(stdout, "tracemerge: %d events from %d traces -> %s\n",
			len(merged), len(files), *out)
	}
	return 0
}
