package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestMinimize(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-unit", "iounit", "-sims", "100", "-minimize"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "minimal covering suite") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestPolicy(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-unit", "l3cache", "-sims", "100", "-policy", "500"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "policy for 500 simulations") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestPolicyFocusLightly(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-unit", "l3cache", "-sims", "200", "-policy", "500", "-focus-lightly"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

func TestErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Errorf("missing unit: exit %d", code)
	}
	if code := run([]string{"-unit", "iounit"}, &out, &errb); code != 2 {
		t.Errorf("missing action: exit %d", code)
	}
	if code := run([]string{"-unit", "nope", "-minimize"}, &out, &errb); code != 1 {
		t.Errorf("unknown unit: exit %d", code)
	}
	if code := run([]string{"-unit", "iounit", "-minimize", "-load", "/no/file"}, &out, &errb); code != 1 {
		t.Errorf("bad load: exit %d", code)
	}
}
