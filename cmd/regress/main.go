// Command regress optimizes a regression suite using TAC statistics:
// minimize the suite while preserving coverage (greedy set cover), or
// allocate a simulation budget across templates to maximize expected
// coverage — optionally focused on lightly-hit events, the policy of
// the TAC line of work the paper builds on (ref [3]).
//
// Usage:
//
//	regress -unit l3cache -sims 1000 -minimize
//	regress -unit l3cache -sims 1000 -policy 20000 -focus-lightly
//	regress -unit l3cache -load repo.json -minimize
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/coverage"
	"repro/internal/duv"
	_ "repro/internal/duv/ifu"
	_ "repro/internal/duv/iounit"
	_ "repro/internal/duv/l3cache"
	_ "repro/internal/duv/noc"
	"repro/internal/obs"
	"repro/internal/regress"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("regress", flag.ContinueOnError)
	fs.SetOutput(stderr)
	unitName := fs.String("unit", "", "built-in unit: "+strings.Join(duv.Names(), ", "))
	sims := fs.Int("sims", 1000, "simulations per base template when building statistics")
	seed := fs.Uint64("seed", 1, "simulation seed")
	load := fs.String("load", "", "load a repository JSON instead of simulating")
	minimize := fs.Bool("minimize", false, "print a minimal covering subset of the suite")
	policy := fs.Int("policy", 0, "allocate this many simulations across the suite")
	focusLightly := fs.Bool("focus-lightly", false, "policy: weight lightly-hit events 10x")
	workers := fs.Int("workers", 0, "simulation worker goroutines (<= 0: GOMAXPROCS)")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (view in Perfetto)")
	progress := fs.Bool("progress", false, "stream JSONL progress events to stderr")
	metrics := fs.Bool("metrics", false, "print a final metrics summary to stderr")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/metrics and /debug/pprof on this address during the run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *unitName == "" {
		fmt.Fprintln(stderr, "regress: -unit is required")
		return 2
	}
	if !*minimize && *policy <= 0 {
		fmt.Fprintln(stderr, "regress: one of -minimize or -policy is required")
		return 2
	}
	unit, err := duv.New(*unitName)
	if err != nil {
		fmt.Fprintf(stderr, "regress: %v\n", err)
		return 1
	}

	var progressW io.Writer
	if *progress {
		progressW = stderr
	}
	sess, err := obs.StartSession(obs.Config{
		TracePath:   *trace,
		ProgressW:   progressW,
		MetricsDump: *metrics,
		DebugAddr:   *debugAddr,
	}, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "regress: %v\n", err)
		return 1
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(stderr, "regress: %v\n", err)
		}
	}()

	var repo *coverage.Repository
	if *load != "" {
		repo, err = coverage.LoadFile(*load, unit.Model())
		if err != nil {
			fmt.Fprintf(stderr, "regress: %v\n", err)
			return 1
		}
	} else {
		env := sim.NewEnv(unit, *seed, *workers)
		defer env.Close()
		env.SetRecorder(sess.Recorder())
		repo, err = env.BuildCorpus(*sims)
		if err != nil {
			fmt.Fprintf(stderr, "regress: %v\n", err)
			return 1
		}
	}
	suite, err := regress.FromRepository(repo, nil)
	if err != nil {
		fmt.Fprintf(stderr, "regress: %v\n", err)
		return 1
	}

	if *minimize {
		picked := suite.Minimize()
		fmt.Fprintf(stdout, "minimal covering suite: %d of %d templates\n", len(picked), suite.Len())
		for _, name := range picked {
			fmt.Fprintf(stdout, "  %s\n", name)
		}
	}
	if *policy > 0 {
		var focus map[int]float64
		if *focusLightly {
			focus = map[int]float64{}
			total := repo.Total()
			for id := 0; id < unit.Model().Size(); id++ {
				switch total.Status(id) {
				case coverage.StatusLightly:
					focus[id] = 10
				case coverage.StatusWell:
					focus[id] = 1
				}
			}
		}
		alloc := suite.Policy(*policy, focus)
		names := make([]string, 0, len(alloc))
		for n := range alloc {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return alloc[names[i]] > alloc[names[j]] })
		fmt.Fprintf(stdout, "policy for %d simulations:\n", *policy)
		for _, name := range names {
			fmt.Fprintf(stdout, "  %-28s %8d sims\n", name, alloc[name])
		}
	}
	return 0
}
