// Command regress optimizes a regression suite using TAC statistics:
// minimize the suite while preserving coverage (greedy set cover), or
// allocate a simulation budget across templates to maximize expected
// coverage — optionally focused on lightly-hit events, the policy of
// the TAC line of work the paper builds on (ref [3]).
//
// Usage:
//
//	regress -unit l3cache -sims 1000 -minimize
//	regress -unit l3cache -sims 1000 -policy 20000 -focus-lightly
//	regress -unit l3cache -load repo.json -minimize
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/coverage"
	"repro/internal/duv"
	_ "repro/internal/duv/ifu"
	_ "repro/internal/duv/iounit"
	_ "repro/internal/duv/l3cache"
	_ "repro/internal/duv/noc"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/regress"
	"repro/internal/sigctx"
	"repro/internal/sim"
	"repro/internal/template"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("regress", flag.ContinueOnError)
	fs.SetOutput(stderr)
	unitName := fs.String("unit", "", "built-in unit: "+strings.Join(duv.Names(), ", "))
	sims := fs.Int("sims", 1000, "simulations per base template when building statistics")
	seed := fs.Uint64("seed", 1, "simulation seed")
	load := fs.String("load", "", "load a repository JSON instead of simulating")
	minimize := fs.Bool("minimize", false, "print a minimal covering subset of the suite")
	policy := fs.Int("policy", 0, "allocate this many simulations across the suite")
	focusLightly := fs.Bool("focus-lightly", false, "policy: weight lightly-hit events 10x")
	workers := fs.Int("workers", 0, "simulation worker goroutines (<= 0: GOMAXPROCS)")
	out := fs.String("out", "", "persist the harvested suite (templates + statistics) to this JSON file (atomic write)")
	journalPath := fs.String("journal", "", "checkpoint the statistics build into this crash-safe journal file")
	resume := fs.Bool("resume", false, "recover the -journal file and re-enter the interrupted build (use the same flags)")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (view in Perfetto)")
	progress := fs.Bool("progress", false, "stream JSONL progress events to stderr")
	metrics := fs.Bool("metrics", false, "print a final metrics summary to stderr")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/metrics and /debug/pprof on this address during the run")
	version := fs.Bool("version", false, "print version information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("regress"))
		return 0
	}
	if *unitName == "" {
		fmt.Fprintln(stderr, "regress: -unit is required")
		return 2
	}
	if !*minimize && *policy <= 0 && *out == "" {
		fmt.Fprintln(stderr, "regress: one of -minimize, -policy or -out is required")
		return 2
	}
	if *resume && *journalPath == "" {
		fmt.Fprintln(stderr, "regress: -resume requires -journal")
		return 2
	}
	unit, err := duv.New(*unitName)
	if err != nil {
		fmt.Fprintf(stderr, "regress: %v\n", err)
		return 1
	}

	var progressW io.Writer
	if *progress {
		progressW = stderr
	}
	sess, err := obs.StartSession(obs.Config{
		TracePath:   *trace,
		ProgressW:   progressW,
		MetricsDump: *metrics,
		DebugAddr:   *debugAddr,
	}, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "regress: %v\n", err)
		return 1
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(stderr, "regress: %v\n", err)
		}
	}()

	ctx, stopSignals := sigctx.Notify(context.Background(), stderr)
	defer stopSignals()

	var repo *coverage.Repository
	if *load != "" {
		repo, err = coverage.LoadFile(*load, unit.Model())
		if err != nil {
			fmt.Fprintf(stderr, "regress: %v\n", err)
			return 1
		}
	} else {
		env := sim.NewEnv(unit, *seed, *workers)
		defer env.Close()
		env.SetRecorder(sess.Recorder())
		env.SetContext(ctx)
		var cur *journal.Cursor
		if *journalPath != "" {
			cur, err = env.OpenCorpusJournal(*journalPath, *resume, *sims, sess.Recorder())
			if err != nil {
				fmt.Fprintf(stderr, "regress: %v\n", err)
				return 1
			}
			defer cur.Close()
		}
		repo, err = env.BuildCorpusJournaled(*sims, cur)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(stderr, "regress: interrupted")
			if *journalPath != "" {
				fmt.Fprintf(stderr, "regress: build checkpointed; continue with: regress -resume -journal %s (plus the same flags)\n", *journalPath)
			}
			return 0
		}
		if err != nil {
			fmt.Fprintf(stderr, "regress: %v\n", err)
			return 1
		}
	}
	bodies := map[string]*template.Template{}
	for _, t := range unit.BaseTemplates() {
		bodies[t.Name] = t
	}
	suite, err := regress.FromRepository(repo, bodies)
	if err != nil {
		fmt.Fprintf(stderr, "regress: %v\n", err)
		return 1
	}
	if *out != "" {
		if err := suite.SaveFile(*out); err != nil {
			fmt.Fprintf(stderr, "regress: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "suite saved to %s (%d templates)\n", *out, suite.Len())
	}

	if *minimize {
		picked := suite.Minimize()
		fmt.Fprintf(stdout, "minimal covering suite: %d of %d templates\n", len(picked), suite.Len())
		for _, name := range picked {
			fmt.Fprintf(stdout, "  %s\n", name)
		}
	}
	if *policy > 0 {
		var focus map[int]float64
		if *focusLightly {
			focus = map[int]float64{}
			total := repo.Total()
			for id := 0; id < unit.Model().Size(); id++ {
				switch total.Status(id) {
				case coverage.StatusLightly:
					focus[id] = 10
				case coverage.StatusWell:
					focus[id] = 1
				}
			}
		}
		alloc := suite.Policy(*policy, focus)
		names := make([]string, 0, len(alloc))
		for n := range alloc {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return alloc[names[i]] > alloc[names[j]] })
		fmt.Fprintf(stdout, "policy for %d simulations:\n", *policy)
		for _, name := range names {
			fmt.Fprintf(stdout, "  %-28s %8d sims\n", name, alloc[name])
		}
	}
	return 0
}
