package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWorkersFlagDeterministic checks -workers only changes parallelism,
// never the statistics the suite optimization runs on.
func TestWorkersFlagDeterministic(t *testing.T) {
	minimize := func(workers string) string {
		var out, errb bytes.Buffer
		code := run([]string{"-unit", "iounit", "-sims", "100", "-minimize", "-workers", workers}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return out.String()
	}
	if one, four := minimize("1"), minimize("4"); one != four {
		t.Fatalf("-workers changed the minimized suite:\n%s\nvs\n%s", one, four)
	}
}

func TestObsFlags(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	var out, errb bytes.Buffer
	code := run([]string{"-unit", "iounit", "-sims", "100", "-minimize", "-workers", "4",
		"-trace", trace, "-metrics"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "sim.instances_completed") {
		t.Fatalf("metrics dump missing scheduler counters:\n%s", errb.String())
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace recorded no scheduler spans")
	}
}
