package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/duv/iounit"
	"repro/internal/regress"
)

// TestSuitePersistRoundTrip: -out must write a suite file that loads
// back with every template body and its statistics intact.
func TestSuitePersistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.json")
	var out, errb bytes.Buffer
	code := run([]string{"-unit", "iounit", "-sims", "100", "-out", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "suite saved to") {
		t.Fatalf("output:\n%s", out.String())
	}
	unit := iounit.New()
	suite, err := regress.LoadSuiteFile(path, unit.Model())
	if err != nil {
		t.Fatal(err)
	}
	if suite.Len() != len(unit.BaseTemplates()) {
		t.Fatalf("suite has %d entries, want %d", suite.Len(), len(unit.BaseTemplates()))
	}
	for _, base := range unit.BaseTemplates() {
		e, ok := suite.Entry(base.Name)
		if !ok {
			t.Fatalf("entry %q missing", base.Name)
		}
		if e.Template == nil || e.Template.String() != base.String() {
			t.Fatalf("entry %q template did not round-trip", base.Name)
		}
		if e.Counts.Sims() != 100 {
			t.Fatalf("entry %q sims = %d, want 100", base.Name, e.Counts.Sims())
		}
	}
}

// TestJournalResumeFlags: -resume without -journal is a usage error; a
// journaled build followed by a resumed one yields the same output.
func TestJournalResumeFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-unit", "iounit", "-minimize", "-resume"}, &out, &errb); code != 2 {
		t.Fatalf("-resume without -journal: exit %d, want 2", code)
	}
	jpath := filepath.Join(t.TempDir(), "corpus.journal")
	var first, second bytes.Buffer
	if code := run([]string{"-unit", "iounit", "-sims", "100", "-minimize", "-journal", jpath}, &first, &errb); code != 0 {
		t.Fatalf("journaled run exit %d: %s", code, errb.String())
	}
	if code := run([]string{"-unit", "iounit", "-sims", "100", "-minimize", "-journal", jpath, "-resume"}, &second, &errb); code != 0 {
		t.Fatalf("resumed run exit %d: %s", code, errb.String())
	}
	if first.String() != second.String() {
		t.Fatal("resumed build's output diverged")
	}
}
