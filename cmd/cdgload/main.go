// Command cdgload is the multi-replica chaos load harness for cdgd: it
// boots a replica set over one shared data root, drives a saturating
// stream of campaigns across several tenants, kill -9s replicas while
// they run, and asserts the fleet-level invariants the service layer
// promises (DESIGN.md §12):
//
//   - liveness: every submitted campaign reaches "done" — replicas
//     adopt a dead peer's campaigns, so kill -9 loses nothing;
//   - exclusivity: every campaign is finished by exactly one owner
//     (lease epochs fence the rest);
//   - fairness: over the saturated prefix, campaign starts track the
//     configured tenant weights within -fairness-tol;
//   - determinism: adopted campaigns' report.json bytes are identical
//     to an uninterrupted single-daemon run of the same spec.
//
// Usage:
//
//	go build -o /tmp/cdgd ./cmd/cdgd
//	cdgload -cdgd /tmp/cdgd -replicas 3 -campaigns 48 -kills 3 \
//	        -tenants paid=3,free=1 -lease-ttl 750ms
//
// Exit code 0 means every assertion held; any violation prints to
// stderr and exits 1.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/duv/iounit"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type options struct {
	cdgd        string
	dataDir     string
	replicas    int
	campaigns   int
	tenants     map[string]float64
	maxRunning  int
	maxQueue    int
	leaseTTL    time.Duration
	kills       int
	killEvery   time.Duration
	timeout     time.Duration
	verify      int
	fairnessTol float64
	tails       int
	seed        int64
	keepData    bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cdgload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cdgd := fs.String("cdgd", "", "path to the cdgd binary to spawn (required)")
	dataDir := fs.String("data", "", "shared campaign data root (default: a fresh temp dir)")
	replicas := fs.Int("replicas", 3, "cdgd replicas to run over the shared data root")
	campaigns := fs.Int("campaigns", 48, "total campaigns to submit (split evenly across tenants)")
	tenants := fs.String("tenants", "paid=3,free=1", "tenant fair-share weights as name=weight pairs")
	maxRunning := fs.Int("max-running", 2, "per-replica concurrently running campaigns")
	maxQueue := fs.Int("max-queue", 12, "per-replica admission queue depth (submissions retry on 429)")
	leaseTTL := fs.Duration("lease-ttl", 750*time.Millisecond, "campaign lease TTL for the replicas")
	kills := fs.Int("kills", 3, "how many times to kill -9 a replica mid-run (0 disables chaos)")
	killEvery := fs.Duration("kill-every", time.Second, "minimum spacing between kill -9 rounds (rounds are paced by fleet progress)")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall deadline for the whole run")
	verify := fs.Int("verify", 2, "adopted campaigns to re-run on a clean daemon for byte-identical reports (0 disables)")
	fairnessTol := fs.Float64("fairness-tol", 0.10, "relative tolerance on per-tenant start shares (0 disables the check)")
	tails := fs.Int("tails", 3, "campaigns whose JSONL event streams to tail and validate")
	seed := fs.Int64("seed", 1, "base seed; campaign i runs with seed+i")
	keepData := fs.Bool("keep-data", false, "keep the data root for inspection instead of deleting it")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	opts := options{
		cdgd: *cdgd, dataDir: *dataDir, replicas: *replicas, campaigns: *campaigns,
		maxRunning: *maxRunning, maxQueue: *maxQueue, leaseTTL: *leaseTTL,
		kills: *kills, killEvery: *killEvery, timeout: *timeout, verify: *verify,
		fairnessTol: *fairnessTol, tails: *tails, seed: *seed, keepData: *keepData,
	}
	var err error
	if opts.tenants, err = parseWeights(*tenants); err != nil {
		fmt.Fprintf(stderr, "cdgload: %v\n", err)
		return 2
	}
	if opts.cdgd == "" {
		fmt.Fprintln(stderr, "cdgload: -cdgd is required (path to a built cdgd binary)")
		return 2
	}
	if opts.replicas < 1 || opts.campaigns < 1 {
		fmt.Fprintln(stderr, "cdgload: -replicas and -campaigns must be positive")
		return 2
	}
	if err := chaosRun(opts, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "cdgload: FAIL: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "cdgload: PASS")
	return 0
}

func parseWeights(s string) (map[string]float64, error) {
	weights := map[string]float64{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenants: malformed pair %q (want name=weight)", pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenants: weight for %q must be positive, got %q", name, val)
		}
		weights[name] = w
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("-tenants: at least one tenant is required")
	}
	return weights, nil
}

// replica is one spawned cdgd process. Its address changes across
// respawns; owner identity and the data root do not.
type replica struct {
	idx   int
	owner string

	mu   sync.Mutex
	cmd  *exec.Cmd
	addr string
}

func (r *replica) address() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addr
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// fleet manages the replica set.
type fleet struct {
	opts   options
	stdout io.Writer
	reps   []*replica
}

// spawn starts (or respawns) replica i and waits for its listen line.
func (f *fleet) spawn(r *replica) error {
	args := []string{
		"-listen", "127.0.0.1:0",
		"-data", f.opts.dataDir,
		"-owner", r.owner,
		"-lease-ttl", f.opts.leaseTTL.String(),
		"-max-running", strconv.Itoa(f.opts.maxRunning),
		"-max-queue", strconv.Itoa(f.opts.maxQueue),
		"-retry-after", "1s",
		"-log-level", "warn",
	}
	var pairs []string
	for name, w := range f.opts.tenants {
		pairs = append(pairs, fmt.Sprintf("%s=%g", name, w))
	}
	sort.Strings(pairs)
	args = append(args, "-tenant-weights", strings.Join(pairs, ","))

	cmd := exec.Command(f.opts.cdgd, args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	var startupErr bytes.Buffer
	cmd.Stderr = &startupErr
	if err := cmd.Start(); err != nil {
		return err
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		r.mu.Lock()
		r.cmd, r.addr = cmd, addr
		r.mu.Unlock()
		fmt.Fprintf(f.stdout, "cdgload: replica %s up at %s (pid %d)\n", r.owner, addr, cmd.Process.Pid)
		return nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("replica %s never printed its listen address; stderr: %s",
			r.owner, startupErr.String())
	}
}

// kill9 SIGKILLs the replica's current process — no drain, no lease
// release; exactly what a node failure looks like to the peers.
func (f *fleet) kill9(r *replica) {
	r.mu.Lock()
	cmd := r.cmd
	r.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	fmt.Fprintf(f.stdout, "cdgload: kill -9 replica %s (pid %d)\n", r.owner, cmd.Process.Pid)
	cmd.Process.Kill()
	cmd.Wait()
}

func (f *fleet) shutdownAll() {
	for _, r := range f.reps {
		f.kill9(r)
	}
}

// anyGet tries the request against every live replica until one
// answers — the harness's view must survive any single replica dying.
func (f *fleet) anyGet(path string, out any) error {
	var lastErr error
	for _, r := range f.reps {
		addr := r.address()
		if addr == "" {
			continue
		}
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, body)
			continue
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(body, out)
	}
	return fmt.Errorf("no replica answered GET %s: %w", path, lastErr)
}

// submit POSTs the spec to any replica, retrying 429s (honoring a
// capped Retry-After) and connection errors until the deadline.
func (f *fleet) submit(spec service.Spec, deadline time.Time) (string, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(int64(len(payload)) + time.Now().UnixNano()))
	for {
		r := f.reps[rng.Intn(len(f.reps))]
		addr := r.address()
		if addr != "" {
			resp, err := http.Post("http://"+addr+"/v1/campaigns", "application/json", bytes.NewReader(payload))
			if err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					var out struct {
						ID string `json:"id"`
					}
					if err := json.Unmarshal(body, &out); err != nil || out.ID == "" {
						return "", fmt.Errorf("202 with unusable body %q", body)
					}
					return out.ID, nil
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						return "", fmt.Errorf("429 without Retry-After header")
					}
					// fall through to backoff below
				default:
					return "", fmt.Errorf("POST /v1/campaigns: %d: %s", resp.StatusCode, body)
				}
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("submission deadline exceeded")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// chaosRun is the whole scenario; any violated invariant is an error.
func chaosRun(opts options, stdout, stderr io.Writer) error {
	if opts.dataDir == "" {
		dir, err := os.MkdirTemp("", "cdgload-*")
		if err != nil {
			return err
		}
		opts.dataDir = dir
		if !opts.keepData {
			defer os.RemoveAll(dir)
		}
	}
	deadline := time.Now().Add(opts.timeout)

	f := &fleet{opts: opts, stdout: stdout}
	for i := 0; i < opts.replicas; i++ {
		f.reps = append(f.reps, &replica{idx: i, owner: fmt.Sprintf("rep%02d", i)})
	}
	for _, r := range f.reps {
		if err := f.spawn(r); err != nil {
			f.shutdownAll()
			return err
		}
	}
	defer f.shutdownAll()

	// Tenant assignment: round-robin over the (sorted) tenant list, so
	// every tenant submits campaigns/len(tenants) campaigns.
	var tenantNames []string
	for name := range opts.tenants {
		tenantNames = append(tenantNames, name)
	}
	sort.Strings(tenantNames)

	specs := map[string]service.Spec{}
	tenantOf := map[string]string{}
	var ids []string
	for i := 0; i < opts.campaigns; i++ {
		tenant := tenantNames[i%len(tenantNames)]
		spec := loadSpec(uint64(opts.seed)+uint64(i), tenant)
		id, err := f.submit(spec, deadline)
		if err != nil {
			return fmt.Errorf("submitting campaign %d: %w", i, err)
		}
		specs[id] = spec
		tenantOf[id] = tenant
		ids = append(ids, id)
	}
	fmt.Fprintf(stdout, "cdgload: %d campaigns submitted across tenants %v\n", len(ids), tenantNames)

	// Observer: polls the fleet, recording the order campaigns are first
	// seen off the queue (the fairness signal) and terminal states.
	obs := newObserver(f, ids)
	stopObs := make(chan struct{})
	obsDone := make(chan struct{})
	go func() {
		defer close(obsDone)
		t := time.NewTicker(40 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopObs:
				return
			case <-t.C:
				obs.poll()
			}
		}
	}()

	// Chaos: kill rounds are paced by fleet progress, not wall time —
	// round k fires once (k+1)/(kills+1) of the campaigns are done, so
	// every kill is guaranteed to land mid-run with work in flight. The
	// victim is a replica observed running campaigns (falling back to a
	// random one); it is SIGKILLed, the peers get 2×TTL to steal its
	// leases, and it respawns under the same owner identity.
	rng := rand.New(rand.NewSource(opts.seed))
	for k := 0; k < opts.kills; k++ {
		threshold := (k + 1) * len(ids) / (opts.kills + 1)
		if threshold < 1 {
			threshold = 1
		}
		for obs.doneCount() < threshold && !obs.allDone() && time.Now().Before(deadline) {
			time.Sleep(25 * time.Millisecond)
		}
		if obs.allDone() || time.Now().After(deadline) {
			break
		}
		victim := f.reps[rng.Intn(len(f.reps))]
		if owner := obs.busyOwner(); owner != "" {
			for _, r := range f.reps {
				if r.owner == owner {
					victim = r
				}
			}
		}
		f.kill9(victim)
		time.Sleep(2 * opts.leaseTTL) // let peers notice and steal
		if err := f.spawn(victim); err != nil {
			return fmt.Errorf("respawning %s: %w", victim.owner, err)
		}
		time.Sleep(opts.killEvery) // spacing floor before the next round
	}

	// Liveness: every campaign terminal before the deadline.
	for !obs.allDone() {
		if time.Now().After(deadline) {
			close(stopObs)
			<-obsDone
			return fmt.Errorf("liveness: %s", obs.pendingSummary())
		}
		time.Sleep(100 * time.Millisecond)
	}
	close(stopObs)
	<-obsDone

	// Zero lost, none failed, exactly-one-owner bookkeeping.
	states := map[string]*service.State{}
	for _, id := range ids {
		var st service.State
		if err := f.anyGet("/v1/campaigns/"+id, &st); err != nil {
			return fmt.Errorf("campaign %s unreadable after completion: %w", id, err)
		}
		if st.State != "done" {
			return fmt.Errorf("campaign %s ended %q (error %q), want done", id, st.State, st.Error)
		}
		if st.Owner == "" || st.Epoch == 0 {
			return fmt.Errorf("campaign %s missing owner/epoch: %+v", id, st)
		}
		if len(st.Reports) == 0 {
			return fmt.Errorf("campaign %s done without reports", id)
		}
		states[id] = &st
	}
	adopted := 0
	for _, st := range states {
		if st.Epoch > 1 {
			adopted++
		}
	}
	fmt.Fprintf(stdout, "cdgload: all %d campaigns done; %d ran under more than one lease epoch\n",
		len(ids), adopted)
	if opts.kills > 0 && adopted == 0 {
		return fmt.Errorf("chaos ran %d kills but no campaign was ever adopted — the scenario proved nothing", opts.kills)
	}

	// Event tails: the JSONL stream of any campaign must replay from any
	// replica and terminate.
	for i := 0; i < opts.tails && i < len(ids); i++ {
		if err := f.checkTail(ids[i]); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "cdgload: %d event tails replayed clean\n", min(opts.tails, len(ids)))

	// Fairness over the saturated prefix of the observed start order.
	if opts.fairnessTol > 0 && len(tenantNames) > 1 {
		if err := checkFairness(obs.startOrder(), tenantOf, opts.tenants,
			opts.campaigns/len(tenantNames), opts.fairnessTol, stdout); err != nil {
			return err
		}
	}

	// Determinism: adopted campaigns' reports must match a clean run.
	if opts.verify > 0 {
		var sample []string
		for _, id := range ids {
			if states[id].Epoch > 1 {
				sample = append(sample, id)
			}
			if len(sample) == opts.verify {
				break
			}
		}
		if err := f.verifyReports(sample, specs, deadline, stdout); err != nil {
			return err
		}
	}
	return nil
}

// loadSpec is the harness's campaign: the same small iounit family
// target the service tests use, seeded per campaign so every report is
// unique and deterministic.
func loadSpec(seed uint64, tenant string) service.Spec {
	return service.Spec{
		Unit:   iounit.UnitName,
		Family: iounit.FamilyName,
		Decay:  0.4,
		Seed:   seed,
		Tenant: tenant,
		Config: service.SpecConfig{
			CorpusSims:      40,
			TopTemplates:    2,
			Subranges:       2,
			SampleTemplates: 6,
			SampleSims:      8,
			OptIterations:   3,
			OptDirections:   3,
			OptSims:         10,
			BestSims:        60,
			Workers:         2,
		},
	}
}

// observer tracks, via polling, when each campaign is first seen off
// the queue and which are terminal.
type observer struct {
	f   *fleet
	ids []string

	mu    sync.Mutex
	seq   int
	first map[string]int    // id → first-seen-dispatched sequence
	done  map[string]bool   // id → terminal observed
	owner map[string]string // id → last seen owner while running
}

func newObserver(f *fleet, ids []string) *observer {
	return &observer{
		f: f, ids: ids,
		first: map[string]int{}, done: map[string]bool{}, owner: map[string]string{},
	}
}

func (o *observer) poll() {
	var list []*service.State
	if err := o.f.anyGet("/v1/campaigns", &list); err != nil {
		return // fleet mid-kill; next tick
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, st := range list {
		switch st.State {
		case "queued":
		case "running":
			if _, ok := o.first[st.ID]; !ok {
				o.first[st.ID] = o.seq
				o.seq++
			}
			o.owner[st.ID] = st.Owner
		default: // terminal
			if _, ok := o.first[st.ID]; !ok {
				o.first[st.ID] = o.seq
				o.seq++
			}
			o.done[st.ID] = true
			delete(o.owner, st.ID)
		}
	}
}

func (o *observer) doneCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, id := range o.ids {
		if o.done[id] {
			n++
		}
	}
	return n
}

func (o *observer) allDone() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, id := range o.ids {
		if !o.done[id] {
			return false
		}
	}
	return true
}

// busyOwner returns an owner currently running campaigns — the most
// interesting replica to kill.
func (o *observer) busyOwner() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, owner := range o.owner {
		if owner != "" {
			return owner
		}
	}
	return ""
}

func (o *observer) pendingSummary() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	var pending []string
	for _, id := range o.ids {
		if !o.done[id] {
			pending = append(pending, id)
		}
	}
	return fmt.Sprintf("%d campaigns never finished: %s", len(pending), strings.Join(pending, " "))
}

// startOrder returns campaign ids in first-dispatch order.
func (o *observer) startOrder() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	ids := make([]string, 0, len(o.first))
	for id := range o.first {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return o.first[ids[i]] < o.first[ids[j]] })
	return ids
}

// checkFairness asserts per-tenant start shares over the saturated
// prefix — the window where every tenant still has backlog, which for
// equal per-tenant submissions ends when the heaviest tenant drains:
// after T = S·Σw/w_max total starts. The first 85% of T avoids the
// drain boundary; within it, each tenant's share of starts must be
// within tol (relative) of weight/Σw, with a small absolute slack for
// start-order observation noise.
func checkFairness(order []string, tenantOf map[string]string, weights map[string]float64,
	perTenant int, tol float64, stdout io.Writer) error {
	var sumW, maxW float64
	for _, w := range weights {
		sumW += w
		if w > maxW {
			maxW = w
		}
	}
	prefix := int(0.85 * float64(perTenant) * sumW / maxW)
	if prefix > len(order) {
		prefix = len(order)
	}
	if prefix < 8 {
		fmt.Fprintf(stdout, "cdgload: fairness: prefix %d too short to judge, skipping\n", prefix)
		return nil
	}
	counts := map[string]int{}
	for _, id := range order[:prefix] {
		counts[tenantOf[id]]++
	}
	slack := 1.5 / float64(prefix)
	for tenant, w := range weights {
		want := w / sumW
		got := float64(counts[tenant]) / float64(prefix)
		fmt.Fprintf(stdout, "cdgload: fairness: tenant %s share %.3f (want %.3f) over first %d starts\n",
			tenant, got, want, prefix)
		if got < want*(1-tol)-slack || got > want*(1+tol)+slack {
			return fmt.Errorf("fairness: tenant %s start share %.3f outside %.0f%% of %.3f (prefix %d)",
				tenant, got, tol*100, want, prefix)
		}
	}
	return nil
}

// checkTail replays a finished campaign's JSONL event stream and
// validates every line parses.
func (f *fleet) checkTail(id string) error {
	var lastErr error
	for _, r := range f.reps {
		addr := r.address()
		if addr == "" {
			continue
		}
		resp, err := http.Get("http://" + addr + "/v1/campaigns/" + id + "/events")
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("events %s: status %d err %v", id, resp.StatusCode, err)
			continue
		}
		lines := 0
		sc := bufio.NewScanner(bytes.NewReader(body))
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ev map[string]any
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				return fmt.Errorf("events %s: bad JSONL line %q: %v", id, sc.Text(), err)
			}
			lines++
		}
		if lines == 0 {
			return fmt.Errorf("events %s: stream empty for a finished campaign", id)
		}
		return nil
	}
	return fmt.Errorf("events %s: no replica answered: %w", id, lastErr)
}

// verifyReports re-runs adopted campaigns' specs on a pristine
// single-replica daemon and compares report.json byte-for-byte — the
// "resume is bit-identical" invariant at fleet scale.
func (f *fleet) verifyReports(sample []string, specs map[string]service.Spec,
	deadline time.Time, stdout io.Writer) error {
	if len(sample) == 0 {
		fmt.Fprintln(stdout, "cdgload: verify: no adopted campaigns to verify")
		return nil
	}
	cleanRoot, err := os.MkdirTemp("", "cdgload-verify-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cleanRoot)
	vf := &fleet{
		opts:   f.opts,
		stdout: stdout,
		reps:   []*replica{{idx: 0, owner: "verifier"}},
	}
	vf.opts.dataDir = cleanRoot
	vf.opts.maxQueue = len(sample) + 1
	if err := vf.spawn(vf.reps[0]); err != nil {
		return err
	}
	defer vf.shutdownAll()

	for _, id := range sample {
		vid, err := vf.submit(specs[id], deadline)
		if err != nil {
			return fmt.Errorf("verify %s: %w", id, err)
		}
		for {
			var st service.State
			if err := vf.anyGet("/v1/campaigns/"+vid, &st); err != nil {
				return fmt.Errorf("verify %s: %w", id, err)
			}
			if st.State == "done" {
				break
			}
			if st.State == "failed" || st.State == "canceled" {
				return fmt.Errorf("verify %s: clean re-run ended %q (%s)", id, st.State, st.Error)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("verify %s: clean re-run never finished", id)
			}
			time.Sleep(50 * time.Millisecond)
		}
		chaosBytes, err := os.ReadFile(filepath.Join(f.opts.dataDir, id, "report.json"))
		if err != nil {
			return fmt.Errorf("verify %s: %w", id, err)
		}
		cleanBytes, err := os.ReadFile(filepath.Join(cleanRoot, vid, "report.json"))
		if err != nil {
			return fmt.Errorf("verify %s: %w", id, err)
		}
		if !bytes.Equal(chaosBytes, cleanBytes) {
			return fmt.Errorf("verify %s: adopted campaign's report.json differs from a clean run of the same spec", id)
		}
	}
	fmt.Fprintf(stdout, "cdgload: verify: %d adopted campaigns byte-identical to clean runs\n", len(sample))
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
