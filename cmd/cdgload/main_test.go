package main

import (
	"bytes"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("paid=3,free=1")
	if err != nil || w["paid"] != 3 || w["free"] != 1 {
		t.Fatalf("parseWeights = %v, %v", w, err)
	}
	for _, bad := range []string{"", "paid", "paid=0", "paid=-1", "=3", "paid=x"} {
		if _, err := parseWeights(bad); err == nil {
			t.Fatalf("parseWeights(%q) accepted", bad)
		}
	}
}

func TestCheckFairness(t *testing.T) {
	weights := map[string]float64{"a": 3, "b": 1}
	tenantOf := map[string]string{}
	// A perfectly fair start order at weights 3:1 — aaab repeated.
	var order []string
	for i := 0; i < 40; i++ {
		id := string(rune('a'+i%4)) + "x" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		if i%4 == 3 {
			tenantOf[id] = "b"
		} else {
			tenantOf[id] = "a"
		}
		order = append(order, id)
	}
	if err := checkFairness(order, tenantOf, weights, 10, 0.10, io.Discard); err != nil {
		t.Fatalf("fair order rejected: %v", err)
	}

	// A starved tenant must be flagged: all of tenant a first.
	var unfair []string
	for _, id := range order {
		if tenantOf[id] == "a" {
			unfair = append(unfair, id)
		}
	}
	for _, id := range order {
		if tenantOf[id] == "b" {
			unfair = append(unfair, id)
		}
	}
	if err := checkFairness(unfair, tenantOf, weights, 10, 0.10, io.Discard); err == nil {
		t.Fatal("starved order accepted")
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-campaigns", "4"}, &out, &errw); code != 2 {
		t.Fatalf("missing -cdgd exit = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "-cdgd is required") {
		t.Fatalf("stderr = %q", errw.String())
	}
	errw.Reset()
	if code := run([]string{"-cdgd", "/bin/true", "-tenants", "a=0"}, &out, &errw); code != 2 {
		t.Fatalf("bad -tenants exit = %d, want 2", code)
	}
}

// TestChaosSmoke is the harness's own end-to-end: two real cdgd
// replicas over one data root, a saturating two-tenant load, kill -9
// mid-flight, and every invariant cdgload asserts (liveness, adoption,
// clean event tails, byte-identical verify). The CI service-scale job
// runs the same scenario at three replicas via the built binary.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos smoke spawns real daemons; skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "cdgd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/cdgd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cdgd: %v\n%s", err, out)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-cdgd", bin,
		"-replicas", "2",
		"-campaigns", "24",
		"-tenants", "paid=3,free=1",
		"-max-running", "2",
		"-max-queue", "10",
		"-lease-ttl", "400ms",
		"-kills", "2",
		"-kill-every", "700ms",
		"-verify", "1",
		"-fairness-tol", "0", // fairness is pinned deterministically in internal/service
		"-tails", "2",
		"-timeout", "4m",
	}, &stdout, &stderr)
	t.Logf("cdgload stdout:\n%s", stdout.String())
	if code != 0 {
		t.Fatalf("cdgload exit = %d\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "PASS") {
		t.Fatalf("no PASS in output:\n%s", stdout.String())
	}
}
