package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestCdgdOpsEndpoints boots the daemon and checks the operational
// surface on the API listener: /metrics serves valid OpenMetrics with
// build_info and the service's own series, /healthz is 200, and
// /readyz is 200 while the daemon accepts submissions.
func TestCdgdOpsEndpoints(t *testing.T) {
	var stderr bytes.Buffer
	base, _, code := startDaemon(t, t.TempDir(), &stderr)

	fetch := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	// A campaign gives the registry real service series to render.
	id := submit(t, base, testSpec(40))
	waitTerminal(t, base, id, 60*time.Second)

	status, page, hdr := fetch("/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	if ct := hdr.Get("Content-Type"); ct != obs.OpenMetricsContentType {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if err := obs.ValidateOpenMetrics([]byte(page)); err != nil {
		t.Fatalf("cdgd /metrics is not valid OpenMetrics: %v\n%s", err, page)
	}
	for _, want := range []string{"ascdg_build_info{", "service_submitted_total 1\n", "service_completed_total 1\n"} {
		if !strings.Contains(page, want) {
			t.Fatalf("cdgd /metrics lacks %q:\n%s", want, page)
		}
	}
	if status, body, _ := fetch("/healthz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", status, body)
	}
	if status, body, _ := fetch("/readyz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/readyz = %d %q", status, body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code = %d, want 0; stderr:\n%s", c, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cdgd did not exit after SIGTERM")
	}
}

func TestCdgdVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version exit = %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "cdgd") {
		t.Fatalf("-version output = %q", stdout.String())
	}
}
