package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/duv/iounit"
	"repro/internal/service"
)

// addrWatcher captures run's stdout and signals the bound listen
// address as soon as the startup line appears.
type addrWatcher struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	addr chan string
	sent bool
}

var listenLine = regexp.MustCompile(`listening on (\S+)`)

func (w *addrWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		if m := listenLine.FindStringSubmatch(w.buf.String()); m != nil {
			w.sent = true
			w.addr <- m[1]
		}
	}
	return len(p), nil
}

func (w *addrWatcher) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// startDaemon boots cdgd on an ephemeral port against dataDir and
// returns its base URL plus the exit-code channel.
func startDaemon(t *testing.T, dataDir string, stderr io.Writer) (string, *addrWatcher, chan int) {
	t.Helper()
	stdout := &addrWatcher{addr: make(chan string, 1)}
	code := make(chan int, 1)
	go func() {
		code <- run([]string{"-listen", "127.0.0.1:0", "-data", dataDir, "-metrics"}, stdout, stderr)
	}()
	select {
	case addr := <-stdout.addr:
		return "http://" + addr, stdout, code
	case <-time.After(10 * time.Second):
		t.Fatal("cdgd never reported its listen address")
		return "", nil, nil
	}
}

func testSpec(corpusSims int) service.Spec {
	return service.Spec{
		Unit:   iounit.UnitName,
		Family: iounit.FamilyName,
		Decay:  0.4,
		Seed:   21,
		Config: service.SpecConfig{
			CorpusSims:      corpusSims,
			TopTemplates:    2,
			Subranges:       2,
			SampleTemplates: 6,
			SampleSims:      8,
			OptIterations:   3,
			OptDirections:   3,
			OptSims:         10,
			BestSims:        60,
			Workers:         3,
		},
	}
}

func submit(t *testing.T, base string, spec service.Spec) string {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || out.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, out.ID)
	}
	return out.ID
}

func getState(t *testing.T, base, id string) *service.State {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

func waitTerminal(t *testing.T, base, id string, timeout time.Duration) *service.State {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getState(t, base, id)
		switch st.State {
		case service.StateDone, service.StateFailed, service.StateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %q", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// expectedReports runs the identical campaign through the core API
// directly — exactly what cmd/ascdg does — and projects it through the
// same JSON view the service persists.
func expectedReports(t *testing.T, spec service.Spec) []*service.ReportJSON {
	t.Helper()
	unit := iounit.New()
	cfg := core.Config{
		Seed:                  spec.Seed,
		Workers:               spec.Config.Workers,
		CorpusSimsPerTemplate: spec.Config.CorpusSims,
		TopTemplates:          spec.Config.TopTemplates,
		Subranges:             spec.Config.Subranges,
		SampleTemplates:       spec.Config.SampleTemplates,
		SampleSims:            spec.Config.SampleSims,
		OptIterations:         spec.Config.OptIterations,
		OptDirections:         spec.Config.OptDirections,
		OptSims:               spec.Config.OptSims,
		BestSims:              spec.Config.BestSims,
	}
	flow := core.NewFlow(unit, cfg)
	defer flow.Close()
	reports, err := flow.RunFamilyRefined(context.Background(), spec.Family, spec.Decay, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*service.ReportJSON, len(reports))
	for i, r := range reports {
		out[i] = service.NewReportJSON(r, unit.Model())
	}
	return out
}

func canonJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestCdgdEndToEnd is the daemon's acceptance path: submit a campaign
// over HTTP, stream its events, check the final report equals the same
// campaign run directly through the core flow; then interrupt a second
// campaign with SIGTERM mid-run, restart the daemon on the same data
// directory, and check the resumed campaign's report is bit-identical
// to an uninterrupted run.
func TestCdgdEndToEnd(t *testing.T) {
	dataDir := t.TempDir()
	var stderr bytes.Buffer
	base, stdout, code := startDaemon(t, dataDir, &stderr)

	// Campaign 1: runs to completion; its report must match the direct
	// core-API run of the same campaign.
	spec := testSpec(40)
	id := submit(t, base, spec)
	st := waitTerminal(t, base, id, 60*time.Second)
	if st.State != service.StateDone {
		t.Fatalf("campaign state = %q (error %q)", st.State, st.Error)
	}
	if got, want := canonJSON(t, st.Reports), canonJSON(t, expectedReports(t, spec)); got != want {
		t.Fatalf("daemon report differs from direct core run:\n got %s\nwant %s", got, want)
	}

	// The events stream terminates (campaign is done) and carries the
	// flow's phase history.
	resp, err := http.Get(base + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(events, []byte(`"phase":"corpus"`)) || !bytes.Contains(events, []byte(`"event":"phase_end"`)) {
		t.Fatalf("events stream missing phase history:\n%s", events)
	}

	// Campaign 2: big enough to still be running when SIGTERM lands.
	longSpec := testSpec(10000)
	id2 := submit(t, base, longSpec)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := getState(t, base, id2); st.State == service.StateRunning {
			if _, err := os.Stat(filepath.Join(dataDir, id2, "flow.journal")); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("second campaign never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code = %d, want 0; stderr:\n%s", c, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("cdgd did not exit after SIGTERM; stdout:\n%s", stdout.String())
	}
	if out := stdout.String(); !strings.Contains(out, "draining") || !strings.Contains(out, "drained, exiting") {
		t.Fatalf("missing drain banners:\n%s", out)
	}
	// The drained campaign is still "running" on disk — that's the
	// restart-resume contract.
	stateData, err := os.ReadFile(filepath.Join(dataDir, id2, "campaign.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(stateData, []byte(`"state": "running"`)) {
		t.Fatalf("on-disk state after drain:\n%s", stateData)
	}
	// The -metrics dump includes the service counters.
	if !strings.Contains(stderr.String(), "service.submitted") {
		t.Fatalf("metrics dump missing service.* counters:\n%s", stderr.String())
	}

	// Restart on the same data directory: the campaign resumes without
	// any new submission and finishes with the exact reports an
	// uninterrupted run produces.
	base2, stdout2, code2 := startDaemon(t, dataDir, io.Discard)
	st2 := waitTerminal(t, base2, id2, 120*time.Second)
	if st2.State != service.StateDone {
		t.Fatalf("resumed campaign state = %q (error %q)", st2.State, st2.Error)
	}
	if got, want := canonJSON(t, st2.Reports), canonJSON(t, expectedReports(t, longSpec)); got != want {
		t.Fatal("resumed campaign's report differs from an uninterrupted run")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code2:
		if c != 0 {
			t.Fatalf("restarted daemon exit code = %d, want 0", c)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("restarted cdgd did not exit; stdout:\n%s", stdout2.String())
	}
}

func TestCdgdRequiresDataDir(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-listen", "127.0.0.1:0"}, io.Discard, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-data is required") {
		t.Fatalf("stderr missing diagnostic:\n%s", stderr.String())
	}
}

func TestCdgdFlagErrorExitsTwo(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, io.Discard, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
