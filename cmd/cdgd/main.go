// Command cdgd is the long-running campaign daemon: it serves the
// AS-CDG flow over HTTP, running submitted campaigns with bounded
// concurrency and persisting every campaign's journal so a daemon
// restart resumes in-flight work bit-identically.
//
// Usage:
//
//	cdgd -listen :9777 -data /var/lib/cdgd [-max-running 1] [-max-queue 16] \
//	     [-owner replica-a] [-lease-ttl 10s] [-tenant-weights paid=3,free=1]
//
// Several cdgd replicas may share one -data root: campaign ownership is
// arbitrated by per-campaign leases (internal/lease), so replicas adopt
// each other's interrupted campaigns — kill -9 included — without ever
// double-running one. Campaign starts follow weighted fair-share
// scheduling across tenants (-tenant-weights).
//
// API (see internal/service):
//
//	POST   /v1/campaigns             submit {"unit":"iounit","family":"crc_fifo",...}
//	GET    /v1/campaigns             list campaigns
//	GET    /v1/campaigns/{id}        status + final reports
//	GET    /v1/campaigns/{id}/events stream JSONL progress
//	DELETE /v1/campaigns/{id}        cancel
//
// SIGINT/SIGTERM drain gracefully: running campaigns checkpoint into
// their journals (the on-disk state stays "running" so the next cdgd
// resumes them), queued campaigns stay queued, and the HTTP listener
// closes. A second signal exits immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	_ "repro/internal/duv/ifu"
	_ "repro/internal/duv/iounit"
	_ "repro/internal/duv/l3cache"
	_ "repro/internal/duv/noc"
	"repro/internal/failpoint"
	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/service"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cdgd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", ":9777", "address to serve the campaign API on")
	dataDir := fs.String("data", "", "campaign store directory (required); journals here survive restarts")
	maxRunning := fs.Int("max-running", 1, "concurrently running campaigns")
	maxQueue := fs.Int("max-queue", 16, "queued campaigns beyond the running ones; more are rejected with 429")
	owner := fs.String("owner", "", "replica identity in campaign leases (default hostname-pid); must be unique per live replica on a shared -data root")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "campaign lease TTL; a replica silent this long loses its campaigns to peers")
	tenantWeights := fs.String("tenant-weights", "", "fair-share weights as name=weight pairs (e.g. paid=3,free=1); unlisted tenants weigh 1")
	retryAfter := fs.Duration("retry-after", 15*time.Second, "Retry-After hint attached to 429 rejections")
	workers := fs.Int("workers", 0, "simulation worker goroutines per campaign (<= 0: GOMAXPROCS)")
	farmAddrs := fs.String("farm", "", "comma-separated farmd worker addresses (host:port,host:port); chunks are dispatched remotely with local fallback")
	farmProto := fs.Int("proto", 0, "highest farm wire protocol to negotiate (0: highest supported; 1 forces JSON frames)")
	farmRetry := fs.String("farm-retry", "", "farm retry/backoff tuning as key=value pairs: base=50ms,cap=2s,attempts=3,jitter=0.25")
	hedge := fs.Float64("hedge", 0, "hedge straggling farm chunks after this multiple of the fleet p95 latency (0: off)")
	auditFraction := fs.Float64("audit-fraction", 0, "fraction of remote chunk results re-executed locally and cross-checked (0: off, 1: all)")
	failpoints := fs.String("failpoints", os.Getenv("ASCDG_FAILPOINTS"), "arm fault-injection points, e.g. farm/dial=error:0.5,journal/append=delay(5ms) (default $ASCDG_FAILPOINTS)")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON of the daemon's lifetime to this file (view in Perfetto)")
	progress := fs.Bool("progress", false, "stream the service's own JSONL events (submissions, campaign starts/ends) to stderr")
	metrics := fs.Bool("metrics", false, "print a final metrics summary to stderr at exit")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/metrics, /debug/pprof and the ops endpoints (/metrics, /healthz, /readyz) on this address while running")
	logLevel := fs.String("log-level", "info", "structured log level: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "structured log encoding: text or json")
	version := fs.Bool("version", false, "print version information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("cdgd"))
		return 0
	}
	if *dataDir == "" {
		fmt.Fprintln(stderr, "cdgd: -data is required")
		return 2
	}
	if err := failpoint.Configure(*failpoints); err != nil {
		fmt.Fprintf(stderr, "cdgd: %v\n", err)
		return 2
	}

	logger, err := obs.NewLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(stderr, "cdgd: %v\n", err)
		return 2
	}

	var progressW io.Writer
	if *progress {
		progressW = stderr
	}
	health := obs.NewHealth()
	sess, err := obs.StartSession(obs.Config{
		TracePath:   *trace,
		ProgressW:   progressW,
		MetricsDump: *metrics,
		DebugAddr:   *debugAddr,
		Health:      health,
	}, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "cdgd: %v\n", err)
		return 1
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(stderr, "cdgd: %v\n", err)
		}
	}()

	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		fmt.Fprintf(stderr, "cdgd: %v\n", err)
		return 2
	}
	svcCfg := service.Config{
		DataDir:       *dataDir,
		Owner:         *owner,
		LeaseTTL:      *leaseTTL,
		TenantWeights: weights,
		MaxRunning:    *maxRunning,
		MaxQueue:      *maxQueue,
		RetryAfter:    *retryAfter,
		Workers:       *workers,
		Rec:           sess.Recorder(),
		Log:           logger,
	}
	var farmBanner string
	if *farmAddrs != "" {
		fopts := farm.Options{
			Rec: sess.Recorder(), MaxVersion: *farmProto, Log: logger,
			Hedge: *hedge, AuditFraction: *auditFraction,
		}
		if err := fopts.ApplyRetrySpec(*farmRetry); err != nil {
			fmt.Fprintf(stderr, "cdgd: %v\n", err)
			return 2
		}
		d := farm.New(strings.Split(*farmAddrs, ","), fopts)
		defer d.Close()
		if err := d.WaitReady(5 * time.Second); err != nil {
			fmt.Fprintf(stderr, "cdgd: farm: no worker reachable yet (%v); continuing, chunks fall back to local execution\n", err)
		}
		svcCfg.Runner = d
		svcCfg.RunnerLanes = d.Lanes()
		// Capacity-aware admission: campaign starts are deferred beyond
		// the number of live farm connections, so a fleet outage pauses
		// the queue instead of drowning the daemon in local fallback.
		svcCfg.Capacity = d.LiveConns
		// Worker health (quarantine state, latency, error rates) joins
		// the /v1/scheduler introspection payload.
		svcCfg.FarmHealth = d.Health
		farmBanner = fmt.Sprintf(", farm retry %s", fopts.RetryString())
	}
	svc, err := service.New(svcCfg)
	if err != nil {
		fmt.Fprintf(stderr, "cdgd: %v\n", err)
		return 1
	}
	// The debug listener's /readyz mirrors the API mux's: not ready once
	// the service drains, the queue saturates, or the data root breaks.
	health.Set("service", svc.Ready)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		svc.Close()
		fmt.Fprintf(stderr, "cdgd: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(stdout, "cdgd: listening on %s (data %s, owner %s, max-running %d, max-queue %d%s)\n",
		ln.Addr(), *dataDir, svc.Owner(), *maxRunning, *maxQueue, farmBanner)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	serveDone := make(chan struct{})
	go func() {
		select {
		case sig := <-sigc:
			fmt.Fprintf(stdout, "cdgd: %v: draining (running campaigns checkpoint; queue persists)\n", sig)
			go func() {
				<-sigc
				fmt.Fprintln(stderr, "cdgd: second signal, exiting immediately")
				os.Exit(130)
			}()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			srv.Shutdown(ctx)
			cancel()
		case <-serveDone:
		}
	}()

	err = srv.Serve(ln)
	close(serveDone)
	svc.Close() // interrupts running campaigns; they checkpoint and exit
	if err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "cdgd: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "cdgd: drained, exiting")
	return 0
}

// parseTenantWeights parses "-tenant-weights paid=3,free=1" into the
// service's weight map. Empty input yields nil (every tenant weighs 1).
func parseTenantWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	weights := map[string]float64{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenant-weights: malformed pair %q (want name=weight)", pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenant-weights: weight for %q must be a positive number, got %q", name, val)
		}
		weights[name] = w
	}
	return weights, nil
}
