// Command repro regenerates the paper's evaluation tables and figures
// (Figs. 3-6 of "Automatic Scalable System for the Coverage-Directed
// Generation (CDG) Problem", DATE 2021).
//
// Usage:
//
//	repro [-fig 3|4|5|6|all] [-scale 0.1] [-seed 1] [-rounds 5]
//
// -scale 1.0 runs the paper's full simulation budgets (669k-1M
// "before" simulations per unit); the default 0.1 keeps every ratio but
// divides the corpus and harvest budgets by ten.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/failpoint"
	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/profiling"
	"repro/internal/sigctx"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3, 4, 5, 6 or all")
	scale := flag.Float64("scale", 0.1, "budget scale (1.0 = paper-scale simulation counts)")
	seed := flag.Uint64("seed", 1, "random seed for the whole run")
	rounds := flag.Int("rounds", 5, "max refinement rounds for family experiments")
	engine := flag.String("engine", "", "optimization engine for every figure flow: "+strings.Join(opt.EngineNames(), ", ")+" (default implicit_filtering)")
	engineParams := flag.String("engine-params", "", `engine-specific knobs as JSON, e.g. '{"candidates": 256}'`)
	csvDir := flag.String("csv", "", "also write each figure's series as <dir>/figN.csv")
	workers := flag.Int("workers", 0, "simulation worker goroutines (<= 0: GOMAXPROCS)")
	farmAddrs := flag.String("farm", "", "comma-separated farmd worker addresses (host:port,host:port); chunks are dispatched remotely with local fallback")
	farmProto := flag.Int("proto", 0, "highest farm wire protocol to negotiate (0: highest supported; 1 forces JSON frames)")
	farmRetry := flag.String("farm-retry", "", "farm retry/backoff tuning: base=50ms,cap=2s,attempts=3,jitter=0.25 (keys optional)")
	hedge := flag.Float64("hedge", 0, "hedge straggling farm chunks after this multiple of the fleet p95 latency (0 disables)")
	auditFraction := flag.Float64("audit-fraction", 0, "re-execute this fraction of remote chunk results locally and cross-check them (0 disables, 1 audits everything)")
	failpoints := flag.String("failpoints", os.Getenv("ASCDG_FAILPOINTS"), "arm fault-injection points: name=policy[:rate[:times]],... (policies: error, delay(d), corrupt, drop, panic; seed=N reseeds)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (view in Perfetto)")
	progress := flag.Bool("progress", false, "stream JSONL progress events (phases, optimizer iterations) to stderr")
	metrics := flag.Bool("metrics", false, "print a final metrics summary to stderr")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars, /debug/metrics and /debug/pprof on this address during the run")
	journalDir := flag.String("journal", "", "checkpoint each figure's flow into <dir>/figN.journal (crash-safe)")
	resume := flag.Bool("resume", false, "recover the journals in the -journal directory and re-enter the interrupted run")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("repro"))
		return
	}
	if *resume && *journalDir == "" {
		fmt.Fprintln(os.Stderr, "repro: -resume requires -journal")
		os.Exit(2)
	}
	if err := failpoint.Configure(*failpoints); err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(2)
	}
	if err := opt.Validate(*engine, json.RawMessage(*engineParams)); err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(2)
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		}
	}()

	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}
	sess, err := obs.StartSession(obs.Config{
		TracePath:   *trace,
		ProgressW:   progressW,
		MetricsDump: *metrics,
		DebugAddr:   *debugAddr,
	}, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		}
	}()

	ctx, stopSignals := sigctx.Notify(context.Background(), os.Stderr)
	defer stopSignals()
	opts := figures.Options{
		Scale: *scale, Seed: *seed, Rounds: *rounds, Workers: *workers,
		Obs: sess.Recorder(), Ctx: ctx, JournalDir: *journalDir, Resume: *resume,
		Engine: *engine,
	}
	if *engineParams != "" {
		opts.EngineParams = json.RawMessage(*engineParams)
	}
	if *farmAddrs != "" {
		fopts := farm.Options{Rec: sess.Recorder(), MaxVersion: *farmProto,
			Hedge: *hedge, AuditFraction: *auditFraction}
		if err := fopts.ApplyRetrySpec(*farmRetry); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(2)
		}
		d := farm.New(strings.Split(*farmAddrs, ","), fopts)
		defer d.Close()
		if err := d.WaitReady(5 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "repro: farm: no worker reachable yet (%v); continuing, chunks fall back to local execution\n", err)
		}
		opts.Runner = d
		opts.RunnerLanes = d.Lanes()
	}

	var results []*figures.Result
	switch *fig {
	case "3":
		var r *figures.Result
		r, err = figures.Fig3(opts)
		results = append(results, r)
	case "4":
		var r *figures.Result
		r, err = figures.Fig4(opts)
		results = append(results, r)
	case "5":
		var r *figures.Result
		r, err = figures.Fig5(opts)
		results = append(results, r)
	case "6":
		var r *figures.Result
		r, err = figures.Fig6(opts)
		results = append(results, r)
	case "all":
		results, err = figures.All(opts)
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown figure %q (want 3, 4, 5, 6 or all)\n", *fig)
		os.Exit(2)
	}
	if errors.Is(err, core.ErrInterrupted) {
		fmt.Fprintln(os.Stderr, "repro: interrupted")
		if *journalDir != "" {
			fmt.Fprintf(os.Stderr, "repro: run checkpointed; continue with: repro -resume -journal %s (plus the same flags)\n", *journalDir)
		}
		stopSignals()
		os.Exit(0)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Printf("==== %s ====\n", r.Title)
		fmt.Println(r.Text)
		if r.Sims > 0 {
			fmt.Printf("total simulations: %d\n", r.Sims)
		}
		fmt.Println()
		if *csvDir != "" && r.CSV != "" {
			path := filepath.Join(*csvDir, r.Name+".csv")
			if err := os.WriteFile(path, []byte(r.CSV), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "repro: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("series written to %s\n\n", path)
		}
	}
}
