package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// traceEvent mirrors the Chrome trace-event fields the viewer requires.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TestTraceFileCoversAllFlowPhases is the observability acceptance
// check: `ascdg -trace out.json` must produce a valid Chrome trace JSON
// array of duration events covering every phase of the flow.
func TestTraceFileCoversAllFlowPhases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out, errb bytes.Buffer
	code := run(smallArgs("-unit", "iounit", "-family", "crc_fifo", "-trace", path), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []traceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace file is not a JSON array of events: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace file is empty")
	}
	phases := map[string]bool{}
	for _, ev := range events {
		if ev.Ph != "X" && ev.Ph != "B" && ev.Ph != "E" {
			t.Fatalf("event with unsupported phase type %q: %+v", ev.Ph, ev)
		}
		if ev.Cat == "phase" {
			phases[ev.Name] = true
			if ev.Tid != 1 {
				t.Fatalf("flow phase %q on lane %d, want the flow lane 1", ev.Name, ev.Tid)
			}
		}
	}
	for _, want := range []string{
		"corpus", "neighbors", "tac", "skeleton", "sampling", "optimization", "harvest",
	} {
		if !phases[want] {
			t.Fatalf("trace missing the %q phase span; got %v", want, phases)
		}
	}
}

func TestProgressStreamAndMetricsDump(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(smallArgs("-unit", "iounit", "-family", "crc_fifo", "-progress", "-metrics"), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	stderr := errb.String()

	// The progress stream: JSONL with phase transitions and optimizer
	// iterations, each line independently decodable.
	sawPhase, sawIter := false, false
	for _, line := range strings.Split(stderr, "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // metrics dump lines share the stream
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("progress line is not JSON: %v\n%s", err, line)
		}
		switch ev["event"] {
		case "phase_start", "phase_end":
			sawPhase = true
		case "opt_iter":
			sawIter = true
			if _, ok := ev["best_so_far"]; !ok {
				t.Fatalf("opt_iter missing best_so_far: %v", ev)
			}
		}
	}
	if !sawPhase || !sawIter {
		t.Fatalf("progress stream incomplete (phase=%v, opt_iter=%v):\n%s", sawPhase, sawIter, stderr)
	}

	// The metrics dump follows on the same stream.
	for _, want := range []string{"metrics summary", "sim.instances_completed", "opt.evals"} {
		if !strings.Contains(stderr, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, stderr)
		}
	}
}

func TestDebugEndpointDuringRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(smallArgs("-unit", "iounit", "-family", "crc_fifo", "-debug-addr", "127.0.0.1:0"), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	// The banner proves the server bound; by the time run returns it is
	// closed again, so just check the line and that the port is gone.
	banner := errb.String()
	if !strings.Contains(banner, "debug endpoint on http://") {
		t.Fatalf("debug banner missing:\n%s", banner)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(
		strings.SplitN(banner, "debug endpoint on http://", 2)[1], ""))
	addr = strings.SplitN(addr, "/debug/", 2)[0]
	if _, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatalf("debug server still listening after the run")
	}
}

func TestWorkersFlagMatchesSequential(t *testing.T) {
	harvested := func(extra ...string) string {
		var out, errb bytes.Buffer
		code := run(smallArgs(append([]string{"-unit", "iounit", "-family", "crc_fifo"}, extra...)...), &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		s := out.String()
		i := strings.Index(s, "harvested test-template:")
		if i < 0 {
			t.Fatalf("no harvested template in output")
		}
		return s[i:]
	}
	if one, four := harvested("-workers", "1"), harvested("-workers", "4"); one != four {
		t.Fatalf("-workers changed the harvested template:\n%s\nvs\n%s", one, four)
	}
}
