package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalAndResume: a journaled CLI run must print the same report
// as an unjournaled one, and re-running with -resume must replay the
// finished journal to the identical report without simulating.
func TestJournalAndResume(t *testing.T) {
	var plain, errb bytes.Buffer
	if code := run(smallArgs("-unit", "iounit", "-family", "crc_fifo"), &plain, &errb); code != 0 {
		t.Fatalf("plain exit %d: %s", code, errb.String())
	}

	path := filepath.Join(t.TempDir(), "run.journal")
	var journaled bytes.Buffer
	if code := run(smallArgs("-unit", "iounit", "-family", "crc_fifo", "-journal", path), &journaled, &errb); code != 0 {
		t.Fatalf("journaled exit %d: %s", code, errb.String())
	}
	if journaled.String() != plain.String() {
		t.Fatal("journaled run's output diverged from the plain run")
	}

	var resumed bytes.Buffer
	if code := run(smallArgs("-unit", "iounit", "-family", "crc_fifo", "-journal", path, "-resume"), &resumed, &errb); code != 0 {
		t.Fatalf("resume exit %d: %s", code, errb.String())
	}
	if resumed.String() != plain.String() {
		t.Fatal("resumed run's output diverged from the plain run")
	}
}

func TestJournalFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(smallArgs("-unit", "iounit", "-family", "crc_fifo", "-resume"), &out, &errb); code != 2 {
		t.Fatalf("-resume without -journal: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-resume requires -journal") {
		t.Fatalf("stderr = %q", errb.String())
	}
	errb.Reset()
	missing := filepath.Join(t.TempDir(), "missing.journal")
	if code := run(smallArgs("-unit", "iounit", "-family", "crc_fifo", "-journal", missing, "-resume"), &out, &errb); code != 1 {
		t.Fatalf("resume of missing journal: exit %d, want 1", code)
	}
}
