package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallArgs keeps CLI end-to-end runs fast.
func smallArgs(extra ...string) []string {
	base := []string{
		"-corpus", "150",
		"-samples", "15",
		"-sample-sims", "20",
		"-iterations", "4",
		"-directions", "5",
		"-opt-sims", "20",
		"-best-sims", "200",
	}
	return append(base, extra...)
}

func TestFamilyRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(smallArgs("-unit", "iounit", "-family", "crc_fifo"), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"AS-CDG run", "crc_004", "harvested test-template", "iter"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCrossRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(smallArgs("-unit", "ifu", "-cross", "ifu"), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "never") || !strings.Contains(out.String(), "well") {
		t.Fatal("status table missing")
	}
}

func TestOutFileWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "best.tmpl")
	var out, errb bytes.Buffer
	code := run(smallArgs("-unit", "l3cache", "-family", "byp_reqs", "-out", path), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "template l3cache_cdg_best") {
		t.Fatalf("harvested template file:\n%s", data)
	}
}

func TestErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Errorf("missing unit: exit %d, want 2", code)
	}
	if code := run([]string{"-unit", "iounit"}, &out, &errb); code != 2 {
		t.Errorf("missing family/cross: exit %d, want 2", code)
	}
	if code := run([]string{"-unit", "iounit", "-family", "f", "-cross", "c"}, &out, &errb); code != 2 {
		t.Errorf("both family and cross: exit %d, want 2", code)
	}
	if code := run([]string{"-unit", "nope", "-family", "f"}, &out, &errb); code != 1 {
		t.Errorf("unknown unit: exit %d, want 1", code)
	}
	if code := run(smallArgs("-unit", "iounit", "-family", "no_such"), &out, &errb); code != 1 {
		t.Errorf("unknown family: exit %d, want 1", code)
	}
	if code := run(smallArgs("-unit", "iounit", "-cross", "no_such"), &out, &errb); code != 1 {
		t.Errorf("unknown cross: exit %d, want 1", code)
	}
}

func TestRepoSaveAndReuse(t *testing.T) {
	repoPath := filepath.Join(t.TempDir(), "corpus.json")
	var out, errb bytes.Buffer
	code := run(smallArgs("-unit", "l3cache", "-family", "byp_reqs", "-save-repo", repoPath), &out, &errb)
	if code != 0 {
		t.Fatalf("save run exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "repository saved") {
		t.Fatal("save confirmation missing")
	}
	// Second campaign reuses the corpus: its 'before' phase must report
	// more sims than a fresh corpus would have (it includes the first
	// campaign's harvest runs).
	out.Reset()
	code = run(smallArgs("-unit", "l3cache", "-family", "byp_reqs", "-load-repo", repoPath), &out, &errb)
	if code != 0 {
		t.Fatalf("load run exit %d: %s", code, errb.String())
	}
	if code := run(smallArgs("-unit", "l3cache", "-family", "byp_reqs", "-load-repo", "/no/file"), &out, &errb); code != 1 {
		t.Fatalf("bad load exit %d, want 1", code)
	}
	// Loading the l3cache corpus against another unit must fail.
	if code := run(smallArgs("-unit", "iounit", "-family", "crc_fifo", "-load-repo", repoPath), &out, &errb); code != 1 {
		t.Fatalf("cross-unit load exit %d, want 1", code)
	}
}
