// Command ascdg runs the full AS-CDG flow against one of the built-in
// units: corpus build, approximated target, coarse-grained TAC search,
// skeletonization, random sampling, implicit-filtering optimization, and
// harvesting (paper Fig. 2).
//
// Usage:
//
//	ascdg -unit iounit -family crc_fifo [-rounds 3] [-decay 0.4] ...
//	ascdg -unit ifu -cross ifu
//
// The harvested best test-template is printed at the end and can be
// saved with -out.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/duv"
	_ "repro/internal/duv/ifu"
	_ "repro/internal/duv/iounit"
	_ "repro/internal/duv/l3cache"
	_ "repro/internal/duv/noc"
	"repro/internal/failpoint"
	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/profiling"
	"repro/internal/sigctx"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ascdg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	unitName := fs.String("unit", "", "built-in unit: "+strings.Join(duv.Names(), ", "))
	family := fs.String("family", "", "target event family (e.g. crc_fifo, byp_reqs)")
	cross := fs.String("cross", "", "target cross product (e.g. ifu)")
	decay := fs.Float64("decay", 1.0, "approximated-target distance decay in (0,1]; 1 = plain family sum")
	rounds := fs.Int("rounds", 1, "refinement rounds")
	seed := fs.Uint64("seed", 1, "run seed")
	corpus := fs.Int("corpus", 2000, "simulations per base template for the Before-CDG corpus")
	samples := fs.Int("samples", 50, "random-sample phase: number of templates (n)")
	sampleSims := fs.Int("sample-sims", 100, "random-sample phase: sims per template (N)")
	iterations := fs.Int("iterations", 10, "optimizer iterations")
	directions := fs.Int("directions", 10, "optimizer directions per iteration (n)")
	optSims := fs.Int("opt-sims", 100, "optimizer sims per point (N)")
	engine := fs.String("engine", "", "optimization engine: "+strings.Join(opt.EngineNames(), ", ")+" (default implicit_filtering)")
	engineParams := fs.String("engine-params", "", `engine-specific knobs as JSON, e.g. '{"candidates": 256}'`)
	bestSims := fs.Int("best-sims", 2000, "standalone sims of the harvested template")
	out := fs.String("out", "", "write the harvested test-template to this file")
	journalPath := fs.String("journal", "", "checkpoint the run into this crash-safe journal file")
	resume := fs.Bool("resume", false, "recover the -journal file and re-enter the interrupted run (use the same flags)")
	loadRepo := fs.String("load-repo", "", "load the Before-CDG corpus from this JSON file instead of simulating")
	saveRepo := fs.String("save-repo", "", "save the (possibly updated) coverage repository to this JSON file")
	workers := fs.Int("workers", 0, "simulation worker goroutines (<= 0: GOMAXPROCS)")
	farmAddrs := fs.String("farm", "", "comma-separated farmd worker addresses (host:port,host:port); chunks are dispatched remotely with local fallback")
	farmProto := fs.Int("proto", 0, "highest farm wire protocol to negotiate (0: highest supported; 1 forces JSON frames)")
	farmRetry := fs.String("farm-retry", "", "farm retry/backoff tuning: base=50ms,cap=2s,attempts=3,jitter=0.25 (keys optional)")
	hedge := fs.Float64("hedge", 0, "hedge straggling farm chunks after this multiple of the fleet p95 latency (0 disables)")
	auditFraction := fs.Float64("audit-fraction", 0, "re-execute this fraction of remote chunk results locally and cross-check them (0 disables, 1 audits everything)")
	failpoints := fs.String("failpoints", os.Getenv("ASCDG_FAILPOINTS"), "arm fault-injection points: name=policy[:rate[:times]],... (policies: error, delay(d), corrupt, drop, panic; seed=N reseeds)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (view in Perfetto)")
	progress := fs.Bool("progress", false, "stream JSONL progress events (phases, optimizer iterations) to stderr")
	metrics := fs.Bool("metrics", false, "print a final metrics summary to stderr")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/metrics and /debug/pprof on this address during the run")
	version := fs.Bool("version", false, "print version information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("ascdg"))
		return 0
	}
	if *unitName == "" {
		fmt.Fprintln(stderr, "ascdg: -unit is required")
		return 2
	}
	if (*family == "") == (*cross == "") {
		fmt.Fprintln(stderr, "ascdg: exactly one of -family or -cross is required")
		return 2
	}
	if *resume && *journalPath == "" {
		fmt.Fprintln(stderr, "ascdg: -resume requires -journal")
		return 2
	}
	if err := failpoint.Configure(*failpoints); err != nil {
		fmt.Fprintf(stderr, "ascdg: %v\n", err)
		return 2
	}
	if err := opt.Validate(*engine, json.RawMessage(*engineParams)); err != nil {
		fmt.Fprintf(stderr, "ascdg: %v\n", err)
		return 2
	}
	unit, err := duv.New(*unitName)
	if err != nil {
		fmt.Fprintf(stderr, "ascdg: %v\n", err)
		return 1
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(stderr, "ascdg: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "ascdg: %v\n", err)
		}
	}()

	var progressW io.Writer
	if *progress {
		progressW = stderr
	}
	sess, err := obs.StartSession(obs.Config{
		TracePath:   *trace,
		ProgressW:   progressW,
		MetricsDump: *metrics,
		DebugAddr:   *debugAddr,
	}, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "ascdg: %v\n", err)
		return 1
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(stderr, "ascdg: %v\n", err)
		}
	}()

	cfg := core.Config{
		Seed:                  *seed,
		CorpusSimsPerTemplate: *corpus,
		SampleTemplates:       *samples,
		SampleSims:            *sampleSims,
		OptIterations:         *iterations,
		OptDirections:         *directions,
		OptSims:               *optSims,
		BestSims:              *bestSims,
		Workers:               *workers,
		Obs:                   sess.Recorder(),
		Engine:                *engine,
	}
	if *engineParams != "" {
		cfg.EngineParams = json.RawMessage(*engineParams)
	}
	if *farmAddrs != "" {
		fopts := farm.Options{Rec: sess.Recorder(), MaxVersion: *farmProto,
			Hedge: *hedge, AuditFraction: *auditFraction}
		if err := fopts.ApplyRetrySpec(*farmRetry); err != nil {
			fmt.Fprintf(stderr, "ascdg: %v\n", err)
			return 2
		}
		d := farm.New(strings.Split(*farmAddrs, ","), fopts)
		defer d.Close()
		if err := d.WaitReady(5 * time.Second); err != nil {
			fmt.Fprintf(stderr, "ascdg: farm: no worker reachable yet (%v); continuing, chunks fall back to local execution\n", err)
		}
		cfg.Runner = d
		cfg.RunnerLanes = d.Lanes()
	}
	if *loadRepo != "" {
		repo, err := coverage.LoadFile(*loadRepo, unit.Model())
		if err != nil {
			fmt.Fprintf(stderr, "ascdg: %v\n", err)
			return 1
		}
		cfg.Repository = repo
	}
	if *journalPath != "" {
		// An explicit fresh start (-journal without -resume) must not
		// silently replay a stale journal; -resume must have one to
		// replay. core.New resumes any existing journal file.
		_, statErr := os.Stat(*journalPath)
		if *resume && statErr != nil {
			fmt.Fprintf(stderr, "ascdg: -resume: no journal at %s\n", *journalPath)
			return 1
		}
		if !*resume && statErr == nil {
			if err := os.Remove(*journalPath); err != nil {
				fmt.Fprintf(stderr, "ascdg: %v\n", err)
				return 1
			}
		}
		cfg.Journal = *journalPath
	}
	flow, err := core.New(unit, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "ascdg: %v\n", err)
		return 1
	}
	defer flow.Close()
	ctx, stopSignals := sigctx.Notify(context.Background(), stderr)
	defer stopSignals()

	var reports []*core.Report
	if *family != "" {
		reports, err = flow.RunFamilyRefined(ctx, *family, *decay, *rounds)
	} else {
		var r *core.Report
		r, err = flow.RunCross(ctx, *cross)
		reports = append(reports, r)
	}
	if errors.Is(err, core.ErrInterrupted) {
		fmt.Fprintln(stderr, "ascdg: interrupted")
		if *journalPath != "" {
			fmt.Fprintf(stderr, "ascdg: run checkpointed; continue with: ascdg -resume -journal %s (plus the same flags)\n", *journalPath)
		}
		return 0
	}
	if err != nil {
		fmt.Fprintf(stderr, "ascdg: %v\n", err)
		return 1
	}

	m := unit.Model()
	for i, report := range reports {
		fmt.Fprintf(stdout, "---- round %d ----\n", i+1)
		fmt.Fprint(stdout, report.Summary(m))
		if *family != "" {
			table, err := report.FormatFamilyTable(m, *family)
			if err != nil {
				fmt.Fprintf(stderr, "ascdg: %v\n", err)
				return 1
			}
			fmt.Fprintln(stdout, table)
		} else {
			cp, _ := m.Cross(*cross)
			ids, err := m.IDs(cp.EventNames())
			if err != nil {
				fmt.Fprintf(stderr, "ascdg: %v\n", err)
				return 1
			}
			fmt.Fprintln(stdout, report.FormatStatusTable(m, ids))
		}
		fmt.Fprintln(stdout, report.FormatProgress())
	}

	final := reports[len(reports)-1]
	fmt.Fprintln(stdout, "harvested test-template:")
	fmt.Fprint(stdout, final.BestTemplate.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(final.BestTemplate.String()), 0o644); err != nil {
			fmt.Fprintf(stderr, "ascdg: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "written to %s\n", *out)
	}
	if *saveRepo != "" {
		if err := flow.Repository().SaveFile(*saveRepo); err != nil {
			fmt.Fprintf(stderr, "ascdg: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "repository saved to %s (%d sims)\n", *saveRepo, flow.Repository().Sims())
	}
	return 0
}
