package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWorkersFlagDeterministic checks the repository built under -workers
// N is identical to the sequential one.
func TestWorkersFlagDeterministic(t *testing.T) {
	report := func(workers string) string {
		var out, errb bytes.Buffer
		code := run([]string{"-unit", "iounit", "-sims", "50", "-workers", workers}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return out.String()
	}
	if one, four := report("1"), report("4"); one != four {
		t.Fatalf("-workers changed the TAC report:\n%s\nvs\n%s", one, four)
	}
}

func TestObsFlags(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-unit", "iounit", "-sims", "50", "-progress", "-metrics"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	stderr := errb.String()
	if !strings.Contains(stderr, "sim.batches_submitted") {
		t.Fatalf("metrics dump missing:\n%s", stderr)
	}
	// At least one JSONL line must decode (the corpus runs outside the
	// flow phases, so only scheduler-level streams are guaranteed — the
	// stream itself must still be well formed).
	for _, line := range strings.Split(stderr, "\n") {
		if strings.HasPrefix(line, "{") {
			var ev map[string]any
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("bad progress line: %v\n%s", err, line)
			}
		}
	}
}
