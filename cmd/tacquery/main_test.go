package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportDefault(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-unit", "iounit", "-sims", "50"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"crc_004", "crc_096", "status", "best template"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestUncoveredList(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-unit", "iounit", "-sims", "50", "-uncovered"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "crc_096") {
		t.Fatalf("crc_096 should be uncovered at 50 sims/template:\n%s", out.String())
	}
}

func TestLightlyList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-unit", "iounit", "-sims", "50", "-lightly"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

func TestBestTemplatesQuery(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-unit", "iounit", "-sims", "100",
		"-events", "crc_008,crc_016", "-best", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "io_crc_stress") {
		t.Fatalf("coarse search should rank io_crc_stress first:\n%s", out.String())
	}
}

func TestSaveAndLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-unit", "iounit", "-sims", "30", "-save", path}, &out, &errb); code != 0 {
		t.Fatalf("save exit %d: %s", code, errb.String())
	}
	out.Reset()
	if code := run([]string{"-unit", "iounit", "-load", path}, &out, &errb); code != 0 {
		t.Fatalf("load exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "crc_004") {
		t.Fatal("loaded report empty")
	}
	// Loading against the wrong unit must fail.
	if code := run([]string{"-unit", "l3cache", "-load", path}, &out, &errb); code != 1 {
		t.Fatalf("wrong-unit load exit %d, want 1", code)
	}
}

func TestErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Errorf("missing unit: exit %d, want 2", code)
	}
	if code := run([]string{"-unit", "nope"}, &out, &errb); code != 1 {
		t.Errorf("unknown unit: exit %d, want 1", code)
	}
	if code := run([]string{"-unit", "iounit", "-sims", "10", "-events", "zzz"}, &out, &errb); code != 1 {
		t.Errorf("unknown event: exit %d, want 1", code)
	}
	if code := run([]string{"-unit", "iounit", "-sims", "10", "-best", "2"}, &out, &errb); code != 2 {
		t.Errorf("-best without -events: exit %d, want 2", code)
	}
	if code := run([]string{"-unit", "iounit", "-load", "/no/such/file"}, &out, &errb); code != 1 {
		t.Errorf("missing load file: exit %d, want 1", code)
	}
}
