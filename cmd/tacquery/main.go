// Command tacquery answers Template-Aware Coverage queries against a
// coverage repository: per-event statistics, uncovered/lightly-hit event
// lists, and the best-templates query the AS-CDG coarse-grained search
// uses.
//
// The repository is either built on the fly by simulating a built-in
// unit's base regression suite (-unit/-sims) or loaded from a JSON file
// previously written with -save.
//
// Usage:
//
//	tacquery -unit l3cache -sims 1000 [-save repo.json] [-events byp_reqs04,byp_reqs05] [-best 3]
//	tacquery -unit l3cache -load repo.json -uncovered
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/coverage"
	"repro/internal/duv"
	_ "repro/internal/duv/ifu"
	_ "repro/internal/duv/iounit"
	_ "repro/internal/duv/l3cache"
	_ "repro/internal/duv/noc"
	"repro/internal/journal"
	"repro/internal/knowledge"
	"repro/internal/obs"
	"repro/internal/sigctx"
	"repro/internal/sim"
	statlib "repro/internal/stats"
	"repro/internal/tac"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tacquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	unitName := fs.String("unit", "", "built-in unit: "+strings.Join(duv.Names(), ", "))
	sims := fs.Int("sims", 1000, "simulations per base template when building the repository")
	seed := fs.Uint64("seed", 1, "simulation seed")
	load := fs.String("load", "", "load the repository from this JSON file instead of simulating")
	save := fs.String("save", "", "save the repository to this JSON file")
	events := fs.String("events", "", "comma-separated event names to report on (default: all)")
	best := fs.Int("best", 0, "report the n best templates for the given events")
	knowledgeDir := fs.String("knowledge", "", "blend cross-campaign knowledge from this directory (a service data root's knowledge/ store) into -best scores")
	uncovered := fs.Bool("uncovered", false, "list never-hit events")
	lightly := fs.Bool("lightly", false, "list lightly-hit events")
	ci := fs.Bool("ci", false, "report 95% Wilson confidence intervals for hit rates")
	workers := fs.Int("workers", 0, "simulation worker goroutines (<= 0: GOMAXPROCS)")
	journalPath := fs.String("journal", "", "checkpoint the repository build into this crash-safe journal file")
	resume := fs.Bool("resume", false, "recover the -journal file and re-enter the interrupted build (use the same flags)")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (view in Perfetto)")
	progress := fs.Bool("progress", false, "stream JSONL progress events to stderr")
	metrics := fs.Bool("metrics", false, "print a final metrics summary to stderr")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/metrics and /debug/pprof on this address during the run")
	version := fs.Bool("version", false, "print version information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("tacquery"))
		return 0
	}
	if *unitName == "" {
		fmt.Fprintln(stderr, "tacquery: -unit is required")
		return 2
	}
	if *resume && *journalPath == "" {
		fmt.Fprintln(stderr, "tacquery: -resume requires -journal")
		return 2
	}
	unit, err := duv.New(*unitName)
	if err != nil {
		fmt.Fprintf(stderr, "tacquery: %v\n", err)
		return 1
	}

	var progressW io.Writer
	if *progress {
		progressW = stderr
	}
	sess, err := obs.StartSession(obs.Config{
		TracePath:   *trace,
		ProgressW:   progressW,
		MetricsDump: *metrics,
		DebugAddr:   *debugAddr,
	}, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "tacquery: %v\n", err)
		return 1
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(stderr, "tacquery: %v\n", err)
		}
	}()

	ctx, stopSignals := sigctx.Notify(context.Background(), stderr)
	defer stopSignals()

	var repo *coverage.Repository
	if *load != "" {
		repo, err = coverage.LoadFile(*load, unit.Model())
		if err != nil {
			fmt.Fprintf(stderr, "tacquery: %v\n", err)
			return 1
		}
	} else {
		env := sim.NewEnv(unit, *seed, *workers)
		defer env.Close()
		env.SetRecorder(sess.Recorder())
		env.SetContext(ctx)
		var cur *journal.Cursor
		if *journalPath != "" {
			cur, err = env.OpenCorpusJournal(*journalPath, *resume, *sims, sess.Recorder())
			if err != nil {
				fmt.Fprintf(stderr, "tacquery: %v\n", err)
				return 1
			}
			defer cur.Close()
		}
		repo, err = env.BuildCorpusJournaled(*sims, cur)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(stderr, "tacquery: interrupted")
			if *journalPath != "" {
				fmt.Fprintf(stderr, "tacquery: build checkpointed; continue with: tacquery -resume -journal %s (plus the same flags)\n", *journalPath)
			}
			return 0
		}
		if err != nil {
			fmt.Fprintf(stderr, "tacquery: %v\n", err)
			return 1
		}
	}
	if *save != "" {
		if err := repo.SaveFile(*save); err != nil {
			fmt.Fprintf(stderr, "tacquery: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "repository saved to %s (%d sims)\n", *save, repo.Sims())
	}

	stats := tac.New(repo)
	m := unit.Model()

	var ids []int
	if *events != "" {
		names := strings.Split(*events, ",")
		ids, err = m.IDs(names)
		if err != nil {
			fmt.Fprintf(stderr, "tacquery: %v\n", err)
			return 1
		}
	}

	switch {
	case *uncovered:
		for _, id := range repo.Uncovered() {
			fmt.Fprintln(stdout, m.Name(id))
		}
	case *lightly:
		for _, id := range repo.LightlyHit() {
			fmt.Fprintln(stdout, m.Name(id))
		}
	case *best > 0:
		if ids == nil {
			fmt.Fprintln(stderr, "tacquery: -best requires -events")
			return 2
		}
		// With a knowledge base, rank everything, blend the boosts in,
		// and only then truncate — a boost may promote a template past
		// the unblended cutoff.
		n := *best
		if *knowledgeDir != "" {
			n = 0
		}
		scores, err := stats.BestTemplates(ids, nil, n)
		if err != nil {
			fmt.Fprintf(stderr, "tacquery: %v\n", err)
			return 1
		}
		if *knowledgeDir != "" {
			entries, err := knowledge.Load(*knowledgeDir)
			if err != nil {
				fmt.Fprintf(stderr, "tacquery: %v\n", err)
				return 1
			}
			scores = knowledge.BlendTAC(scores, knowledge.TACBoosts(entries, *unitName, knowledge.DefaultDamp))
			if len(scores) > *best {
				scores = scores[:*best]
			}
		}
		fmt.Fprintf(stdout, "%-24s %10s %10s\n", "template", "score", "sims")
		for _, s := range scores {
			fmt.Fprintf(stdout, "%-24s %10.4f %10d\n", s.Name, s.Score, s.Sims)
		}
	default:
		rows := stats.Report(ids)
		header := fmt.Sprintf("%-24s %10s %10s %-8s %-24s %8s",
			"event", "hits", "rate", "status", "best template", "P(hit)")
		if *ci {
			header += "  95% CI"
		}
		fmt.Fprintln(stdout, header)
		sims := repo.Sims()
		for _, r := range rows {
			line := fmt.Sprintf("%-24s %10d %9.3f%% %-8s %-24s %7.3f%%",
				r.Name, r.Hits, r.Rate*100, r.Status, r.BestTpl, r.BestP*100)
			if *ci {
				line += "  " + statlib.Wilson(r.Hits, sims).String()
			}
			fmt.Fprintln(stdout, line)
		}
	}
	return 0
}
