package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// lineWatcher signals the first submatch of re seen on the stream.
type lineWatcher struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	re    *regexp.Regexp
	found chan string
	sent  bool
}

func newLineWatcher(re *regexp.Regexp) *lineWatcher {
	return &lineWatcher{re: re, found: make(chan string, 1)}
}

func (w *lineWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		if m := w.re.FindStringSubmatch(w.buf.String()); m != nil {
			w.sent = true
			w.found <- m[1]
		}
	}
	return len(p), nil
}

func (w *lineWatcher) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestFarmdOpsEndpoints boots farmd with -debug-addr and checks the
// operational surface end to end: /metrics serves valid OpenMetrics
// with build_info, and /healthz and /readyz answer 200 while the worker
// accepts sessions.
func TestFarmdOpsEndpoints(t *testing.T) {
	stdout := &addrWatcher{addr: make(chan string, 1)}
	stderr := newLineWatcher(regexp.MustCompile(`debug endpoint on http://(\S+)/debug/`))
	code := make(chan int, 1)
	go func() {
		code <- run([]string{
			"-listen", "127.0.0.1:0", "-capacity", "1", "-drain", "2s",
			"-debug-addr", "127.0.0.1:0", "-log-format", "json",
		}, stdout, io.MultiWriter(stderr, io.Discard))
	}()
	var debugAddr string
	select {
	case debugAddr = <-stderr.found:
	case <-time.After(10 * time.Second):
		t.Fatalf("farmd never reported its debug address; stderr:\n%s", stderr.String())
	}
	select {
	case <-stdout.addr:
	case <-time.After(10 * time.Second):
		t.Fatal("farmd never reported its listen address")
	}

	base := "http://" + debugAddr
	fetch := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	status, page, hdr := fetch("/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	if ct := hdr.Get("Content-Type"); ct != obs.OpenMetricsContentType {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if err := obs.ValidateOpenMetrics([]byte(page)); err != nil {
		t.Fatalf("farmd /metrics is not valid OpenMetrics: %v\n%s", err, page)
	}
	if !strings.Contains(page, "ascdg_build_info{") {
		t.Fatalf("farmd /metrics lacks build_info:\n%s", page)
	}
	if status, body, _ := fetch("/healthz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", status, body)
	}
	if status, body, _ := fetch("/readyz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/readyz = %d %q", status, body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code = %d, want 0; stderr:\n%s", c, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("farmd did not exit after SIGTERM")
	}
}

func TestFarmdVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version exit = %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "farmd") {
		t.Fatalf("-version output = %q", stdout.String())
	}
}
