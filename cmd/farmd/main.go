// Command farmd is the remote simulation worker daemon of the
// distributed farm. It listens for farm-protocol connections (see
// internal/farm), executes deterministic chunk requests against the
// built-in units, and streams aggregated coverage counts back. Because
// every chunk is seeded purely from (batch seed, instance index), a
// fleet of farmd processes produces bit-identical results to a purely
// local run.
//
// Usage:
//
//	farmd -listen :9666 [-capacity 8] [-plan-cache 64] [-drain 10s]
//
// SIGINT/SIGTERM drain gracefully: in-flight chunks finish and their
// results are delivered before the process exits; idle connections are
// severed immediately so dispatchers retry elsewhere.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	_ "repro/internal/duv/ifu"
	_ "repro/internal/duv/iounit"
	_ "repro/internal/duv/l3cache"
	_ "repro/internal/duv/noc"
	"repro/internal/failpoint"
	"repro/internal/farm"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("farmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", ":9666", "address to listen on for farm-protocol connections")
	capacity := fs.Int("capacity", 0, "concurrently executing chunks (<= 0: GOMAXPROCS); advertised to dispatchers")
	planCache := fs.Int("plan-cache", 0, "per-unit compiled-plan cache entries (0: unbounded)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight chunks")
	proto := fs.Int("proto", 0, "highest wire protocol version to negotiate (0: highest supported; 1 forces JSON frames)")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (view in Perfetto)")
	progress := fs.Bool("progress", false, "stream JSONL progress events to stderr")
	metrics := fs.Bool("metrics", false, "print a final metrics summary to stderr")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/metrics, /debug/pprof and the ops endpoints (/metrics, /healthz, /readyz) on this address while running")
	logLevel := fs.String("log-level", "info", "structured log level: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "structured log encoding: text or json")
	failpoints := fs.String("failpoints", os.Getenv("ASCDG_FAILPOINTS"), "arm fault-injection points, e.g. farm/serve_chunk=corrupt:0.1 (default $ASCDG_FAILPOINTS)")
	version := fs.Bool("version", false, "print version information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("farmd"))
		return 0
	}
	if err := failpoint.Configure(*failpoints); err != nil {
		fmt.Fprintf(stderr, "farmd: %v\n", err)
		return 2
	}

	logger, err := obs.NewLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(stderr, "farmd: %v\n", err)
		return 2
	}

	var progressW io.Writer
	if *progress {
		progressW = stderr
	}
	health := obs.NewHealth()
	sess, err := obs.StartSession(obs.Config{
		TracePath:   *trace,
		ProgressW:   progressW,
		MetricsDump: *metrics,
		DebugAddr:   *debugAddr,
		Health:      health,
	}, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "farmd: %v\n", err)
		return 1
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(stderr, "farmd: %v\n", err)
		}
	}()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "farmd: %v\n", err)
		return 1
	}
	srv := farm.NewServer(farm.ServerOptions{
		Capacity:      *capacity,
		PlanCacheSize: *planCache,
		DrainTimeout:  *drain,
		MaxVersion:    *proto,
		Rec:           sess.Recorder(),
		Log:           logger,
	})
	// /readyz fails once the drain begins, so orchestrators stop routing
	// new sessions at a worker that is on its way out.
	health.Set("sessions", srv.Ready)
	fmt.Fprintf(stdout, "farmd: listening on %s (capacity %d, protocol <= v%d, %s)\n",
		ln.Addr(), srv.Capacity(), srv.MaxVersion(), buildinfo.Read().Short())
	if armed := failpoint.Default.Snapshot(); len(armed) > 0 {
		fmt.Fprintf(stdout, "farmd: FAULT INJECTION ARMED: %d failpoint(s) active — not for production\n", len(armed))
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	serveDone := make(chan struct{})
	go func() {
		select {
		case sig := <-sigc:
			fmt.Fprintf(stdout, "farmd: %v: draining (in-flight chunks finish, budget %s)\n", sig, *drain)
			srv.Shutdown()
		case <-serveDone:
		}
	}()

	err = srv.Serve(ln)
	close(serveDone)
	srv.Shutdown() // idempotent; waits for the signal path's drain too
	if err != nil {
		fmt.Fprintf(stderr, "farmd: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "farmd: drained, exiting")
	return 0
}
