package main

import (
	"bytes"
	"io"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/duv/iounit"
	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/template"
)

// addrWatcher captures run's stdout and signals the bound listen
// address as soon as the startup line appears.
type addrWatcher struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	addr chan string
	sent bool
}

var listenLine = regexp.MustCompile(`listening on (\S+)`)

func (w *addrWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		if m := listenLine.FindStringSubmatch(w.buf.String()); m != nil {
			w.sent = true
			w.addr <- m[1]
		}
	}
	return len(p), nil
}

func (w *addrWatcher) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestFarmdServesAndDrainsOnSignal boots the daemon on an ephemeral
// port, executes a real chunk against it over TCP, then delivers
// SIGTERM and checks the clean-drain path: exit code 0 and the drain
// banner, with the dispatcher's result bit-identical to a local run.
func TestFarmdServesAndDrainsOnSignal(t *testing.T) {
	stdout := &addrWatcher{addr: make(chan string, 1)}
	var stderr bytes.Buffer
	code := make(chan int, 1)
	go func() {
		code <- run([]string{"-listen", "127.0.0.1:0", "-capacity", "2", "-drain", "5s"}, stdout, &stderr)
	}()
	var addr string
	select {
	case addr = <-stdout.addr:
	case <-time.After(10 * time.Second):
		t.Fatalf("farmd never reported its listen address; stderr:\n%s", stderr.String())
	}

	d := farm.New([]string{addr}, farm.Options{})
	defer d.Close()
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	unit := iounit.New()
	tmpl, err := template.Parse("template farmd_t { weight Command { read: 5; write: 15; } }")
	if err != nil {
		t.Fatal(err)
	}
	chunk := sim.RemoteChunk{
		Unit: iounit.UnitName, Template: tmpl, Seed: 77,
		Lo: 0, Hi: 200, Events: unit.Model().Size(),
	}
	got, err := d.RunChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}
	local := sim.NewEnv(unit, 1, 1)
	defer local.Close()
	want, err := local.RunChunk(tmpl, chunk.Seed, chunk.Lo, chunk.Hi)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < want.Len(); i++ {
		if got.Hits(i) != want.Hits(i) {
			t.Fatalf("event %d: remote hits %d, local hits %d", i, got.Hits(i), want.Hits(i))
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code = %d, want 0; stderr:\n%s", c, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("farmd did not exit after SIGTERM; stdout:\n%s\nstderr:\n%s",
			stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained, exiting") {
		t.Fatalf("missing drain banners in output:\n%s", out)
	}
}

// TestFarmdProtoFlag boots the daemon pinned to protocol v1 and checks
// the startup banner states the cap and that dispatchers negotiate
// down to v1 against it.
func TestFarmdProtoFlag(t *testing.T) {
	stdout := &addrWatcher{addr: make(chan string, 1)}
	var stderr bytes.Buffer
	code := make(chan int, 1)
	go func() {
		code <- run([]string{"-listen", "127.0.0.1:0", "-capacity", "1", "-proto", "1", "-drain", "2s"}, stdout, &stderr)
	}()
	var addr string
	select {
	case addr = <-stdout.addr:
	case <-time.After(10 * time.Second):
		t.Fatalf("farmd never reported its listen address; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "protocol <= v1") {
		t.Fatalf("startup banner missing protocol cap:\n%s", stdout.String())
	}

	rec := obs.NewRecorder()
	d := farm.New([]string{addr}, farm.Options{Rec: rec})
	defer d.Close()
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	unit := iounit.New()
	chunk := sim.RemoteChunk{
		Unit: iounit.UnitName, Seed: 5, Lo: 0, Hi: 50, Events: unit.Model().Size(),
	}
	if _, err := d.RunChunk(chunk); err != nil {
		t.Fatal(err)
	}
	snap := rec.Metrics.Snapshot()
	if snap.Gauges["farm.proto_version"] != 1 {
		t.Fatalf("farm.proto_version = %d, want 1 against a -proto 1 worker", snap.Gauges["farm.proto_version"])
	}
	if snap.Counters["farm.conns_v2"] != 0 {
		t.Fatalf("%d v2 connections against a -proto 1 worker", snap.Counters["farm.conns_v2"])
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code = %d, want 0; stderr:\n%s", c, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("farmd did not exit after SIGTERM")
	}
}

func TestFarmdFlagErrorExitsTwo(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, io.Discard, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "flag provided but not defined") {
		t.Fatalf("stderr missing flag diagnostic:\n%s", stderr.String())
	}
}

func TestFarmdBadListenAddr(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-listen", "256.0.0.1:bogus"}, io.Discard, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
}
