package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemplate(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "lsu.tmpl")
	src := `
template lsu_stress {
    weight Mnemonic {
        load:  40;
        add:   0;
    }
    range CacheDelay [0 : 100];
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProducesMarkedSkeleton(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-subranges", "2", writeTemplate(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "load:") || !strings.Contains(s, "<?>") {
		t.Fatalf("missing marks:\n%s", s)
	}
	if strings.Count(s, "<?>") != 3 { // load + 2 subranges
		t.Fatalf("marks = %d, want 3:\n%s", strings.Count(s, "<?>"), s)
	}
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "add:") && strings.Contains(line, "<?>") {
			t.Fatalf("zero weight should stay unmarked:\n%s", s)
		}
	}
}

func TestRunZeroFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-subranges", "2", "-zero", writeTemplate(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if strings.Count(out.String(), "<?>") != 4 {
		t.Fatalf("with -zero marks = %d, want 4", strings.Count(out.String(), "<?>"))
	}
}

func TestRunSlotsFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-slots", writeTemplate(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "modifiable settings") {
		t.Fatal("slot listing missing")
	}
}

func TestRunGeometricMode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "geometric", writeTemplate(t)}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-mode", "bogus", writeTemplate(t)}, &out, &errb); code != 2 {
		t.Errorf("bad mode: exit %d, want 2", code)
	}
	if code := run([]string{"/does/not/exist.tmpl"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code := run([]string{"-badflag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
