// Command skeletonize runs the Skeletonizer on a test-template file and
// prints the resulting skeleton with every modifiable weight marked as
// "<?>" — the paper's Fig. 1(b) transformation.
//
// Usage:
//
//	skeletonize [-subranges 4] [-mode linear|geometric] [-zero] file.tmpl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/skeleton"
	"repro/internal/template"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("skeletonize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	subranges := fs.Int("subranges", 4, "number of subranges per range parameter")
	mode := fs.String("mode", "linear", "subrange split mode: linear or geometric")
	zero := fs.Bool("zero", false, "also mark zero-weight entries")
	slots := fs.Bool("slots", false, "also list the skeleton's slots")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: skeletonize [flags] <template-file>")
		return 2
	}

	var m skeleton.SubrangeMode
	switch *mode {
	case "linear":
		m = skeleton.Linear
	case "geometric":
		m = skeleton.Geometric
	default:
		fmt.Fprintf(stderr, "skeletonize: unknown mode %q\n", *mode)
		return 2
	}

	tmpl, err := template.ParseFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "skeletonize: %v\n", err)
		return 1
	}
	skel, err := skeleton.Skeletonize(tmpl, skeleton.Options{
		IncludeZeroWeights: *zero,
		Subranges:          *subranges,
		Mode:               m,
	})
	if err != nil {
		fmt.Fprintf(stderr, "skeletonize: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, skel.MarkedSource())
	if *slots {
		fmt.Fprintf(stdout, "\n// %d modifiable settings:\n", skel.Dim())
		for i, s := range skel.Slots() {
			kind := "weight"
			if s.Kind == skeleton.SlotSubrange {
				kind = "subrange"
			}
			fmt.Fprintf(stdout, "//   %2d: %s %s (%s)\n", i, s.Param, s.Label, kind)
		}
	}
	return 0
}
