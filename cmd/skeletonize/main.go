// Command skeletonize runs the Skeletonizer on a test-template file and
// prints the resulting skeleton with every modifiable weight marked as
// "<?>" — the paper's Fig. 1(b) transformation.
//
// Usage:
//
//	skeletonize [-subranges 4] [-mode linear|geometric] [-zero] file.tmpl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/skeleton"
	"repro/internal/template"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("skeletonize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	subranges := fs.Int("subranges", 4, "number of subranges per range parameter")
	mode := fs.String("mode", "linear", "subrange split mode: linear or geometric")
	zero := fs.Bool("zero", false, "also mark zero-weight entries")
	slots := fs.Bool("slots", false, "also list the skeleton's slots")
	fs.Int("workers", 0, "accepted for flag parity with the other commands; skeletonize never simulates")
	fs.String("journal", "", "accepted for flag parity with the other commands; skeletonization is instantaneous, nothing to checkpoint")
	fs.Bool("resume", false, "accepted for flag parity with the other commands; skeletonization is instantaneous, nothing to resume")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (view in Perfetto)")
	progress := fs.Bool("progress", false, "stream JSONL progress events to stderr")
	metrics := fs.Bool("metrics", false, "print a final metrics summary to stderr")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars, /debug/metrics and /debug/pprof on this address during the run")
	version := fs.Bool("version", false, "print version information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("skeletonize"))
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: skeletonize [flags] <template-file>")
		return 2
	}

	var progressW io.Writer
	if *progress {
		progressW = stderr
	}
	sess, err := obs.StartSession(obs.Config{
		TracePath:   *trace,
		ProgressW:   progressW,
		MetricsDump: *metrics,
		DebugAddr:   *debugAddr,
	}, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "skeletonize: %v\n", err)
		return 1
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(stderr, "skeletonize: %v\n", err)
		}
	}()
	rec := sess.Recorder()

	var m skeleton.SubrangeMode
	switch *mode {
	case "linear":
		m = skeleton.Linear
	case "geometric":
		m = skeleton.Geometric
	default:
		fmt.Fprintf(stderr, "skeletonize: unknown mode %q\n", *mode)
		return 2
	}

	tmpl, err := template.ParseFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "skeletonize: %v\n", err)
		return 1
	}
	ph := rec.PhaseStart("skeleton", map[string]any{"file": fs.Arg(0)})
	skel, err := skeleton.Skeletonize(tmpl, skeleton.Options{
		IncludeZeroWeights: *zero,
		Subranges:          *subranges,
		Mode:               m,
	})
	if err != nil {
		ph.End(nil)
		fmt.Fprintf(stderr, "skeletonize: %v\n", err)
		return 1
	}
	ph.End(map[string]any{"dim": skel.Dim()})
	fmt.Fprint(stdout, skel.MarkedSource())
	if *slots {
		fmt.Fprintf(stdout, "\n// %d modifiable settings:\n", skel.Dim())
		for i, s := range skel.Slots() {
			kind := "weight"
			if s.Kind == skeleton.SlotSubrange {
				kind = "subrange"
			}
			fmt.Fprintf(stdout, "//   %2d: %s %s (%s)\n", i, s.Param, s.Label, kind)
		}
	}
	return 0
}
