package main

import (
	"bytes"
	"testing"
)

// TestFig1Golden pins the exact Fig. 1(b) transformation of the paper's
// Fig. 1(a) snippet (testdata/lsu.tmpl at the repository root): non-zero
// Mnemonic weights marked, "add: 0" left fixed, and the CacheDelay range
// split into three marked subranges.
func TestFig1Golden(t *testing.T) {
	const want = `template lsu_stress_skel {
    weight Mnemonic {
        load:  <?>;
        store: <?>;
        add:   0;
        mul:   <?>;
    }
    weight CacheDelay {
        [0:32]:   <?>;
        [33:66]:  <?>;
        [67:100]: <?>;
    }
}
`
	var out, errb bytes.Buffer
	code := run([]string{"-subranges", "3", "../../testdata/lsu.tmpl"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if out.String() != want {
		t.Fatalf("Fig. 1(b) output drifted:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}
