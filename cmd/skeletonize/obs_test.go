package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestObsAndWorkersFlags checks the shared observability flags work on
// the one CLI that never simulates: -workers is accepted for parity and
// -trace records the skeleton phase.
func TestObsAndWorkersFlags(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	var out, errb bytes.Buffer
	code := run([]string{"-workers", "4", "-trace", trace, writeTemplate(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	found := false
	for _, ev := range events {
		if ev["cat"] == "phase" && ev["name"] == "skeleton" {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace missing the skeleton phase span: %v", events)
	}
}
