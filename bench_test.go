// Package repro's root bench suite regenerates every figure of the
// paper's evaluation (one benchmark per table/figure), runs the ablation
// benches DESIGN.md calls out, and micro-benchmarks the substrates.
//
// Figure benches run at a reduced scale so `go test -bench=.` finishes
// in minutes; use cmd/repro -scale 1.0 for paper-scale simulation
// counts. Each figure bench reports custom metrics: sims/op (simulation
// budget) plus figure-specific coverage outcomes, so regressions in
// *reproduction quality* — not just speed — show up in bench output.
package repro

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/duv/ifu"
	"repro/internal/duv/iounit"
	"repro/internal/duv/l3cache"
	"repro/internal/duv/noc"
	"repro/internal/farm"
	"repro/internal/figures"
	"repro/internal/generator"
	"repro/internal/neighbors"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/skeleton"
	"repro/internal/tac"
	"repro/internal/template"
)

// benchScale keeps figure benches at ~1/50 of paper corpus scale.
const benchScale = 0.02

// mustRun / mustSubmit / mustCorpus panic on error: every bench drives
// an open environment, where these paths cannot fail.
func mustRun(env *sim.Env, tmpl *template.Template, n int) *coverage.Counts {
	c, err := env.Run(tmpl, n)
	if err != nil {
		panic(err)
	}
	return c
}

func mustSubmit(env *sim.Env, tmpl *template.Template, n int) *sim.Job {
	job, err := env.Submit(tmpl, n)
	if err != nil {
		panic(err)
	}
	return job
}

func mustCorpus(env *sim.Env, sims int) *coverage.Repository {
	repo, err := env.BuildCorpus(sims)
	if err != nil {
		panic(err)
	}
	return repo
}

// BenchmarkFig3IOUnit regenerates the paper's Fig. 3 (I/O unit crc_*
// family across the four phases). Metrics: crc_032/crc_064 hit rates of
// the harvested template.
func BenchmarkFig3IOUnit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig3(figures.Options{Scale: benchScale, Seed: uint64(i + 1), Rounds: 2})
		if err != nil {
			b.Fatal(err)
		}
		final := res.Reports[len(res.Reports)-1]
		m := iounit.New().Model()
		best := final.Phase("best").Counts
		b.ReportMetric(float64(res.Sims)/float64(b.N), "sims/op")
		b.ReportMetric(best.HitRate(m.MustLookup("crc_032")), "crc032_rate")
		b.ReportMetric(best.HitRate(m.MustLookup("crc_064")), "crc064_rate")
	}
}

// BenchmarkFig4L3Cache regenerates the paper's Fig. 4 (L3 byp_reqs
// family). Metrics: deepest covered level and byp_reqs12 hit rate.
func BenchmarkFig4L3Cache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig4(figures.Options{Scale: benchScale, Seed: uint64(i + 1), Rounds: 2})
		if err != nil {
			b.Fatal(err)
		}
		final := res.Reports[len(res.Reports)-1]
		m := l3cache.New().Model()
		best := final.Phase("best").Counts
		fam, _ := m.Family(l3cache.FamilyName)
		deepest := 0
		for i, id := range fam {
			if best.Hits(id) > 0 {
				deepest = i + 1
			}
		}
		b.ReportMetric(float64(res.Sims)/float64(b.N), "sims/op")
		b.ReportMetric(float64(deepest), "deepest_level")
		b.ReportMetric(best.HitRate(m.MustLookup("byp_reqs12")), "byp12_rate")
	}
}

// BenchmarkFig5IFU regenerates the paper's Fig. 5 (IFU cross-product
// status counts). Metrics: events never hit at the end (paper: exactly
// 32, the entry7 slice) and events well hit.
func BenchmarkFig5IFU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig5(figures.Options{Scale: benchScale, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		report := res.Reports[0]
		unit := ifu.New()
		ids, err := unit.Model().IDs(unit.Cross().EventNames())
		if err != nil {
			b.Fatal(err)
		}
		sc := report.Phase("best").Counts.StatusCounts(ids)
		b.ReportMetric(float64(res.Sims)/float64(b.N), "sims/op")
		b.ReportMetric(float64(sc[coverage.StatusNever]), "never_hit")
		b.ReportMetric(float64(sc[coverage.StatusWell]), "well_hit")
	}
}

// BenchmarkFig6Progress regenerates the paper's Fig. 6 (optimization
// progress on the L3 example). Metrics: final and initial best target
// values — their ratio is the figure's visible climb.
func BenchmarkFig6Progress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig6(figures.Options{Scale: benchScale, Seed: uint64(i + 1), Rounds: 1})
		if err != nil {
			b.Fatal(err)
		}
		final := res.Reports[len(res.Reports)-1]
		if len(final.Progress) == 0 {
			b.Fatal("no progress history")
		}
		b.ReportMetric(final.Progress[0].Best, "first_iter_value")
		b.ReportMetric(final.Progress[len(final.Progress)-1].Best, "last_iter_value")
	}
}

// --- Ablation benches (design choices called out in DESIGN.md §5) ---

// ablationSetup prepares the shared fixture for optimizer ablations on
// the L3 unit: the skeleton of the TAC-selected candidate, the
// decay-weighted approximated target, and a fresh batch environment.
type ablationFixture struct {
	env    *sim.Env
	skel   *skeleton.Skeleton
	target *neighbors.Target
	x0     []float64
}

func ablationSetup(b *testing.B, seed uint64) *ablationFixture {
	b.Helper()
	unit := l3cache.New()
	env := sim.NewEnv(unit, seed, 0)
	repo := mustCorpus(env, 800)
	model := unit.Model()
	fam, _ := model.Family(l3cache.FamilyName)
	var targets []int
	for _, id := range fam {
		if repo.Total().Hits(id) == 0 {
			targets = append(targets, id)
		}
	}
	if len(targets) == 0 {
		targets = fam[len(fam)-1:]
	}
	ws, err := neighbors.Ordinal(model, l3cache.FamilyName, targets, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	target := neighbors.NewTarget(ws)

	stats := tac.New(repo)
	ranked, err := stats.BestTemplates(target.Events(), target.Weights(), 2)
	if err != nil {
		b.Fatal(err)
	}
	byName := map[string]*template.Template{}
	for _, t := range unit.BaseTemplates() {
		byName[t.Name] = t
	}
	var chosen []*template.Template
	for _, ts := range ranked {
		if t, ok := byName[ts.Name]; ok {
			chosen = append(chosen, t)
		}
	}
	candidate := core.MergeTemplates("ablation_candidate", chosen)
	skel, err := skeleton.Skeletonize(candidate, skeleton.Options{Subranges: 4})
	if err != nil {
		b.Fatal(err)
	}

	// Shared random-sample phase: the starting point every ablation uses.
	r := rng.New(seed).SplitString("ablation")
	bestScore, x0 := -1.0, skel.RandomWeights(r)
	for i := 0; i < 20; i++ {
		x := skel.RandomWeights(r)
		tmpl, err := skel.Instantiate("s", x)
		if err != nil {
			b.Fatal(err)
		}
		if score := target.Score(mustRun(env, tmpl, 50)); score > bestScore {
			bestScore, x0 = score, x
		}
	}
	return &ablationFixture{env: env, skel: skel, target: target, x0: x0}
}

// objective returns the noisy approximated-target objective with N sims
// per point.
func (f *ablationFixture) objective(simsPerPoint int) opt.Objective {
	return func(x []float64) float64 {
		tmpl, err := f.skel.Instantiate("cand", x)
		if err != nil {
			panic(err)
		}
		return f.target.Score(mustRun(f.env, tmpl, simsPerPoint))
	}
}

// trueValue measures the returned point with a large budget — the
// ablation's ground-truth metric.
func (f *ablationFixture) trueValue(x []float64) float64 {
	tmpl, err := f.skel.Instantiate("eval", x)
	if err != nil {
		panic(err)
	}
	return f.target.Score(mustRun(f.env, tmpl, 2000))
}

// BenchmarkAblationSamplesPerPoint varies N, the sims per objective
// sample (paper Section IV-E: larger N cuts noise but costs sims).
func BenchmarkAblationSamplesPerPoint(b *testing.B) {
	for _, n := range []int{25, 100, 400} {
		b.Run(map[int]string{25: "N25", 100: "N100", 400: "N400"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fix := ablationSetup(b, uint64(i+1))
				res, err := opt.ImplicitFiltering(fix.objective(n), fix.x0, opt.Options{
					Directions: 11, MaxIterations: 8, RNG: rng.New(uint64(i + 7)),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(fix.trueValue(res.X), "true_target")
				b.ReportMetric(float64(res.Evals*n), "sims")
			}
		})
	}
}

// BenchmarkAblationDirections varies n, the directions per iteration.
func BenchmarkAblationDirections(b *testing.B) {
	for _, n := range []int{5, 11, 19} {
		b.Run(map[int]string{5: "n5", 11: "n11", 19: "n19"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fix := ablationSetup(b, uint64(i+1))
				res, err := opt.ImplicitFiltering(fix.objective(100), fix.x0, opt.Options{
					Directions: n, MaxIterations: 8, RNG: rng.New(uint64(i + 7)),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(fix.trueValue(res.X), "true_target")
			}
		})
	}
}

// BenchmarkAblationStencil varies the initial stencil size h.
func BenchmarkAblationStencil(b *testing.B) {
	for _, h := range []float64{6.25, 25, 50} {
		b.Run(map[float64]string{6.25: "h6", 25: "h25", 50: "h50"}[h], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fix := ablationSetup(b, uint64(i+1))
				res, err := opt.ImplicitFiltering(fix.objective(100), fix.x0, opt.Options{
					Directions: 11, MaxIterations: 8, InitialStep: h, RNG: rng.New(uint64(i + 7)),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(fix.trueValue(res.X), "true_target")
			}
		})
	}
}

// BenchmarkAblationNoSampling compares starting the optimizer from the
// best random sample (paper Section IV-D) against a random start.
func BenchmarkAblationNoSampling(b *testing.B) {
	for _, sampled := range []bool{true, false} {
		name := "random_start"
		if sampled {
			name = "sampled_start"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fix := ablationSetup(b, uint64(i+1))
				x0 := fix.x0
				if !sampled {
					x0 = fix.skel.RandomWeights(rng.New(uint64(i + 99)))
				}
				res, err := opt.ImplicitFiltering(fix.objective(100), x0, opt.Options{
					Directions: 11, MaxIterations: 8, RNG: rng.New(uint64(i + 7)),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(fix.trueValue(res.X), "true_target")
			}
		})
	}
}

// BenchmarkAblationRawTarget compares the approximated target against
// the raw (uncovered-events-only) target — the flat landscape the paper
// motivates the approximated target with (Section IV-A).
func BenchmarkAblationRawTarget(b *testing.B) {
	for _, approx := range []bool{true, false} {
		name := "raw_target"
		if approx {
			name = "approximated_target"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fix := ablationSetup(b, uint64(i+1))
				objTarget := fix.target
				if !approx {
					// Raw target: only the real (deep, uncovered) events.
					m := l3cache.New().Model()
					fam, _ := m.Family(l3cache.FamilyName)
					objTarget = neighbors.Uniform(fam[11:]) // byp_reqs12..16
				}
				obj := func(x []float64) float64 {
					tmpl, err := fix.skel.Instantiate("cand", x)
					if err != nil {
						panic(err)
					}
					return objTarget.Score(mustRun(fix.env, tmpl, 100))
				}
				res, err := opt.ImplicitFiltering(obj, fix.x0, opt.Options{
					Directions: 11, MaxIterations: 8, RNG: rng.New(uint64(i + 7)),
				})
				if err != nil {
					b.Fatal(err)
				}
				// Judge both by the same approximated target so the
				// numbers are comparable.
				b.ReportMetric(fix.trueValue(res.X), "true_target")
			}
		})
	}
}

// BenchmarkAblationWeightedTarget compares the uniform family sum
// (paper Section V) against the distance-weighted variant (Section
// IV-A's "giving more weight to events closer to our target").
func BenchmarkAblationWeightedTarget(b *testing.B) {
	unit := l3cache.New()
	model := unit.Model()
	fam, _ := model.Family(l3cache.FamilyName)
	for _, decay := range []float64{1.0, 0.4} {
		name := "uniform"
		if decay != 1.0 {
			name = "weighted"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fix := ablationSetup(b, uint64(i+1))
				ws, err := neighbors.Ordinal(model, l3cache.FamilyName, fam[8:], decay)
				if err != nil {
					b.Fatal(err)
				}
				objTarget := neighbors.NewTarget(ws)
				obj := func(x []float64) float64 {
					tmpl, err := fix.skel.Instantiate("cand", x)
					if err != nil {
						panic(err)
					}
					return objTarget.Score(mustRun(fix.env, tmpl, 100))
				}
				res, err := opt.ImplicitFiltering(obj, fix.x0, opt.Options{
					Directions: 11, MaxIterations: 8, RNG: rng.New(uint64(i + 7)),
				})
				if err != nil {
					b.Fatal(err)
				}
				// Judge by deep-event coverage: the sum of byp09..16 hit
				// rates of the returned template (the frontier reachable
				// at bench-scale budgets).
				tmpl, err := fix.skel.Instantiate("eval", res.X)
				if err != nil {
					b.Fatal(err)
				}
				counts := mustRun(fix.env, tmpl, 2000)
				deep := 0.0
				for _, id := range fam[8:] {
					deep += counts.HitRate(id)
				}
				b.ReportMetric(deep, "deep_rate_sum")
			}
		})
	}
}

// BenchmarkAblationOptimizers compares implicit filtering with the
// baselines under an equal simulation budget.
func BenchmarkAblationOptimizers(b *testing.B) {
	const budget = 100 // objective evaluations, 100 sims each
	run := func(b *testing.B, f func(fix *ablationFixture, i int) (opt.Result, error)) {
		for i := 0; i < b.N; i++ {
			fix := ablationSetup(b, uint64(i+1))
			res, err := f(fix, i)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(fix.trueValue(res.X), "true_target")
		}
	}
	b.Run("implicit_filtering", func(b *testing.B) {
		run(b, func(fix *ablationFixture, i int) (opt.Result, error) {
			return opt.ImplicitFiltering(fix.objective(100), fix.x0, opt.Options{
				Directions: 11, MaxIterations: 100, MaxEvals: budget,
				MinStep: 1e-9, RNG: rng.New(uint64(i + 7)),
			})
		})
	})
	b.Run("random_search", func(b *testing.B) {
		run(b, func(fix *ablationFixture, i int) (opt.Result, error) {
			return opt.RandomSearch(fix.objective(100), fix.skel.Dim(), opt.Options{
				MaxEvals: budget, RNG: rng.New(uint64(i + 7)),
			})
		})
	})
	b.Run("compass_search", func(b *testing.B) {
		run(b, func(fix *ablationFixture, i int) (opt.Result, error) {
			return opt.CompassSearch(fix.objective(100), fix.x0, opt.Options{
				MaxIterations: 100, MaxEvals: budget, MinStep: 1e-9, RNG: rng.New(uint64(i + 7)),
			})
		})
	})
	b.Run("nelder_mead", func(b *testing.B) {
		run(b, func(fix *ablationFixture, i int) (opt.Result, error) {
			return opt.NelderMead(fix.objective(100), fix.x0, opt.Options{
				MaxIterations: 100, MaxEvals: budget, InitialStep: 25,
			})
		})
	})
}

// BenchmarkAblationResampleCenter toggles the paper's center-resampling
// noise guard.
func BenchmarkAblationResampleCenter(b *testing.B) {
	for _, resample := range []bool{true, false} {
		name := "resample"
		if !resample {
			name = "no_resample"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fix := ablationSetup(b, uint64(i+1))
				res, err := opt.ImplicitFiltering(fix.objective(50), fix.x0, opt.Options{
					Directions: 11, MaxIterations: 8,
					NoResampleCenter: !resample, RNG: rng.New(uint64(i + 7)),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(fix.trueValue(res.X), "true_target")
			}
		})
	}
}

// --- Substrate micro-benchmarks ---

func benchSimulate(b *testing.B, unit duv.DUV, tmpl *template.Template) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := generator.New(tmpl, unit.Defaults(), uint64(i))
		_ = unit.Simulate(g)
	}
}

func BenchmarkSimulateIOUnit(b *testing.B) {
	unit := iounit.New()
	benchSimulate(b, unit, unit.BaseTemplates()[0])
}

func BenchmarkSimulateL3Cache(b *testing.B) {
	unit := l3cache.New()
	benchSimulate(b, unit, unit.BaseTemplates()[0])
}

func BenchmarkSimulateIFU(b *testing.B) {
	unit := ifu.New()
	benchSimulate(b, unit, unit.BaseTemplates()[0])
}

func BenchmarkTemplateParse(b *testing.B) {
	src := iounit.New().BaseTemplates()[4].String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := template.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkeletonInstantiate(b *testing.B) {
	tmpl := iounit.New().BaseTemplates()[4]
	skel, err := skeleton.Skeletonize(tmpl, skeleton.Options{Subranges: 4})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	x := skel.RandomWeights(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := skel.Instantiate("bench", x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverageVectorOps(b *testing.B) {
	v := coverage.NewVector(1024)
	u := coverage.NewVector(1024)
	for i := 0; i < 1024; i += 3 {
		v.Set(i)
	}
	for i := 0; i < 1024; i += 5 {
		u.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := v.Clone()
		c.Or(u)
		c.AndNot(v)
		_ = c.PopCount()
	}
}

func BenchmarkTACBestTemplates(b *testing.B) {
	unit := iounit.New()
	env := sim.NewEnv(unit, 1, 0)
	repo := mustCorpus(env, 200)
	stats := tac.New(repo)
	fam, _ := unit.Model().Family(iounit.FamilyName)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.BestTemplates(fam, nil, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratorDecisions compares the interpreted per-decision
// parameter resolution against the compiled-plan fast path (one Compile
// per batch, shared by every instance). 200 decisions per op.
func BenchmarkGeneratorDecisions(b *testing.B) {
	unit := iounit.New()
	tmpl := unit.BaseTemplates()[4]
	decisions := func(b *testing.B, g *generator.Generator) {
		b.Helper()
		for j := 0; j < 100; j++ {
			_ = g.PickValue("Command")
			_ = g.PickInt("Gap")
		}
	}
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			decisions(b, generator.New(tmpl, unit.Defaults(), uint64(i)))
		}
	})
	b.Run("compiled", func(b *testing.B) {
		plan := generator.Compile(tmpl, unit.Defaults())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			decisions(b, generator.NewFromPlan(plan, uint64(i)))
		}
	})
}

// BenchmarkSchedulerThroughput pushes (template, N) batch jobs through
// the sequential reference path and the persistent worker-pool
// scheduler. ns/sim is the comparable figure; the scheduler variants
// scale with GOMAXPROCS while the sequential path stays single-core.
func BenchmarkSchedulerThroughput(b *testing.B) {
	unit := iounit.New()
	tmpl := unit.BaseTemplates()[0]
	const batch = 256
	report := func(b *testing.B) {
		b.Helper()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sim")
	}
	b.Run("sequential", func(b *testing.B) {
		env := sim.NewEnv(unit, 1, 1)
		defer env.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = mustRun(env, tmpl, batch)
		}
		report(b)
	})
	b.Run("scheduler", func(b *testing.B) {
		env := sim.NewEnv(unit, 1, 0) // GOMAXPROCS workers
		defer env.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = mustSubmit(env, tmpl, batch).Wait()
		}
		report(b)
	})
	b.Run("scheduler_metrics", func(b *testing.B) {
		// The scheduler path with full observability (metrics + tracing)
		// enabled — the overhead the internal/sim bench guard bounds at 5%.
		env := sim.NewEnv(unit, 1, 0)
		defer env.Close()
		env.SetRecorder(obs.NewRecorder())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = mustSubmit(env, tmpl, batch).Wait()
		}
		report(b)
	})
	b.Run("scheduler_4jobs", func(b *testing.B) {
		// Four concurrent jobs in flight, as the batch objective submits
		// them during one optimizer iteration.
		env := sim.NewEnv(unit, 1, 0)
		defer env.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			jobs := make([]*sim.Job, 4)
			for j := range jobs {
				jobs[j] = mustSubmit(env, tmpl, batch/4)
			}
			for _, j := range jobs {
				_ = j.Wait()
			}
		}
		report(b)
	})
}

func BenchmarkFarmLoopback(b *testing.B) {
	// The full farm RPC path — frame codec, dispatcher pooling, server
	// execution — over the in-memory loopback transport, so the number
	// is pure protocol + scheduling overhead with no real network. One
	// sub-benchmark per wire protocol: v1 JSON frames and the v2 binary
	// codec (see internal/farm's BENCH_farm.json trajectory).
	unit := iounit.New()
	tmpl := unit.BaseTemplates()[0]
	const batch = 256
	for _, pv := range []struct {
		name string
		max  int
	}{{"v1", 1}, {"v2", 0}} {
		b.Run(pv.name, func(b *testing.B) {
			lb := farm.NewLoopback()
			addrs := []string{"bench-w0", "bench-w1"}
			for _, addr := range addrs {
				srv := farm.NewServer(farm.ServerOptions{Capacity: 2})
				defer srv.Shutdown()
				lb.Add(addr, srv, farm.Faults{})
			}
			d := farm.New(addrs, farm.Options{Dial: lb.Dial, MaxVersion: pv.max})
			defer d.Close()
			if err := d.WaitReady(5 * time.Second); err != nil {
				b.Fatal(err)
			}
			env := sim.NewEnv(unit, 1, 0)
			defer env.Close()
			env.AttachRunner(d, d.Lanes())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = mustSubmit(env, tmpl, batch).Wait()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sim")
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "sims/sec")
		})
	}
}

func BenchmarkSimulateNoC(b *testing.B) {
	unit := noc.New()
	benchSimulate(b, unit, unit.BaseTemplates()[0])
}
