// Package sigctx implements the CLIs' two-stage interrupt protocol.
// The first SIGINT or SIGTERM cancels the returned context: a
// journaled flow checkpoints, the command prints a resume hint, and
// exits 0 — an interrupted campaign is a paused campaign, not a failed
// one. A second signal aborts the process immediately (exit 130) for
// the operator who really means it.
package sigctx

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// exit is swapped by tests so a second signal can be observed without
// killing the test process.
var exit = os.Exit

// Notify returns a context canceled by the first SIGINT/SIGTERM and a
// stop function that releases the signal handler (safe to call more
// than once). Progress messages go to stderr.
func Notify(parent context.Context, stderr io.Writer) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(stderr, "\n%v: checkpointing and shutting down cleanly (signal again to abort immediately)\n", sig)
			cancel()
		case <-done:
			return
		}
		select {
		case <-ch:
			fmt.Fprintln(stderr, "second signal: aborting immediately")
			exit(130)
		case <-done:
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			cancel()
			close(done)
		})
	}
	return ctx, stop
}
