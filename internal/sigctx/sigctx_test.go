package sigctx

import (
	"bytes"
	"context"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func sendSelf(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
}

func TestFirstSignalCancels(t *testing.T) {
	var buf syncBuffer
	ctx, stop := Notify(context.Background(), &buf)
	defer stop()
	sendSelf(t)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not canceled by SIGINT")
	}
	if got := buf.String(); !strings.Contains(got, "checkpointing") {
		t.Fatalf("stderr = %q, want a checkpoint notice", got)
	}
}

func TestSecondSignalExits(t *testing.T) {
	codes := make(chan int, 1)
	oldExit := exit
	exit = func(code int) { codes <- code; select {} }
	defer func() { exit = oldExit }()

	var buf syncBuffer
	ctx, stop := Notify(context.Background(), &buf)
	defer stop()
	sendSelf(t)
	<-ctx.Done()
	sendSelf(t)
	select {
	case code := <-codes:
		if code != 130 {
			t.Fatalf("exit code = %d, want 130", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second SIGINT did not exit")
	}
}

func TestStopReleasesHandler(t *testing.T) {
	ctx, stop := Notify(context.Background(), &syncBuffer{})
	stop()
	stop() // must be idempotent
	if ctx.Err() == nil {
		t.Fatal("stop did not cancel the context")
	}
}

// syncBuffer makes bytes.Buffer safe against the handler goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
