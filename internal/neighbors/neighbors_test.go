package neighbors

import (
	"testing/quick"

	"math"
	"repro/internal/rng"
	"testing"

	"repro/internal/coverage"
)

func familyModel(t *testing.T) *coverage.Model {
	t.Helper()
	m := coverage.MustModel([]string{"lvl1", "lvl2", "lvl3", "lvl4", "other"})
	if err := m.AddFamily("levels", []string{"lvl1", "lvl2", "lvl3", "lvl4"}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestUniformTarget(t *testing.T) {
	tgt := Uniform([]int{2, 5, 9})
	if tgt.Len() != 3 {
		t.Fatalf("Len = %d", tgt.Len())
	}
	for _, e := range []int{2, 5, 9} {
		if tgt.Weight(e) != 1 {
			t.Fatalf("weight(%d) = %v", e, tgt.Weight(e))
		}
	}
	if tgt.Weight(1) != 0 {
		t.Fatal("non-member weight should be 0")
	}
	ev := tgt.Events()
	if len(ev) != 3 || ev[0] != 2 || ev[2] != 9 {
		t.Fatalf("Events = %v", ev)
	}
	ws := tgt.Weights()
	if len(ws) != 3 || ws[0] != 1 {
		t.Fatalf("Weights = %v", ws)
	}
}

func TestNewTargetDeduplicatesKeepingMax(t *testing.T) {
	tgt := NewTarget([]Weighted{{1, 0.5}, {1, 0.9}, {2, 0.3}, {2, 0.1}})
	if tgt.Len() != 2 {
		t.Fatalf("Len = %d", tgt.Len())
	}
	if tgt.Weight(1) != 0.9 || tgt.Weight(2) != 0.3 {
		t.Fatalf("weights = %v, %v", tgt.Weight(1), tgt.Weight(2))
	}
}

func TestTargetScore(t *testing.T) {
	m := familyModel(t)
	c := coverage.NewCountsFor(m)
	for i := 0; i < 10; i++ {
		v := coverage.NewVectorFor(m)
		v.Set(0) // always
		if i < 5 {
			v.Set(1) // 50%
		}
		c.Add(v)
	}
	tgt := NewTarget([]Weighted{{0, 1}, {1, 2}})
	// 1*1.0 + 2*0.5 = 2.0
	if got := tgt.Score(c); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("Score = %v", got)
	}
	if got := Uniform(nil).Score(c); got != 0 {
		t.Fatalf("empty target score = %v", got)
	}
}

func TestOrdinal(t *testing.T) {
	m := familyModel(t)
	// Target is lvl4 (id 3), decay 0.5.
	ws, err := Ordinal(m, "levels", []int{3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("ws = %v", ws)
	}
	want := map[int]float64{0: 0.125, 1: 0.25, 2: 0.5, 3: 1}
	for _, w := range ws {
		if math.Abs(w.Weight-want[w.Event]) > 1e-12 {
			t.Fatalf("event %d weight = %v, want %v", w.Event, w.Weight, want[w.Event])
		}
	}
}

func TestOrdinalMultipleTargets(t *testing.T) {
	m := familyModel(t)
	ws, err := Ordinal(m, "levels", []int{0, 3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Distance to nearest target: lvl1=0, lvl2=1, lvl3=1, lvl4=0.
	want := map[int]float64{0: 1, 1: 0.5, 2: 0.5, 3: 1}
	for _, w := range ws {
		if math.Abs(w.Weight-want[w.Event]) > 1e-12 {
			t.Fatalf("event %d weight = %v, want %v", w.Event, w.Weight, want[w.Event])
		}
	}
}

func TestOrdinalDecayOneIsUniform(t *testing.T) {
	m := familyModel(t)
	ws, err := Ordinal(m, "levels", []int{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if w.Weight != 1 {
			t.Fatalf("decay 1 should be uniform: %v", ws)
		}
	}
}

func TestOrdinalErrors(t *testing.T) {
	m := familyModel(t)
	if _, err := Ordinal(m, "nope", []int{0}, 0.5); err == nil {
		t.Error("unknown family should fail")
	}
	if _, err := Ordinal(m, "levels", []int{4}, 0.5); err == nil {
		t.Error("target outside family should fail")
	}
	if _, err := Ordinal(m, "levels", []int{0}, 0); err == nil {
		t.Error("decay 0 should fail")
	}
	if _, err := Ordinal(m, "levels", []int{0}, 1.5); err == nil {
		t.Error("decay > 1 should fail")
	}
}

func crossModel(t *testing.T) (*coverage.Model, *coverage.CrossProduct) {
	t.Helper()
	cp, err := coverage.NewCrossProduct("x", []coverage.Dim{
		{Name: "a", Values: []string{"a0", "a1"}},
		{Name: "b", Values: []string{"b0", "b1", "b2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := coverage.MustModel(cp.EventNames())
	if err := m.AddCross(cp); err != nil {
		t.Fatal(err)
	}
	return m, cp
}

func TestCrossNeighbors(t *testing.T) {
	m, _ := crossModel(t)
	target := m.MustLookup("x_a0_b0")
	ws, err := CrossNeighbors(m, "x", []int{target}, 0.5, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 6 {
		t.Fatalf("ws = %v", ws)
	}
	byEvent := map[int]float64{}
	for _, w := range ws {
		byEvent[w.Event] = w.Weight
	}
	if byEvent[target] != 1 {
		t.Fatalf("target weight = %v", byEvent[target])
	}
	if byEvent[m.MustLookup("x_a1_b0")] != 0.5 {
		t.Fatalf("distance-1 weight = %v", byEvent[m.MustLookup("x_a1_b0")])
	}
	if byEvent[m.MustLookup("x_a1_b2")] != 0.25 {
		t.Fatalf("distance-2 weight = %v", byEvent[m.MustLookup("x_a1_b2")])
	}
}

func TestCrossNeighborsMaxDist(t *testing.T) {
	m, _ := crossModel(t)
	target := m.MustLookup("x_a0_b0")
	ws, err := CrossNeighbors(m, "x", []int{target}, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Distance <= 1: the target + 1 along a + 2 along b = 4 events.
	if len(ws) != 4 {
		t.Fatalf("ws = %v", ws)
	}
}

func TestCrossNeighborsErrors(t *testing.T) {
	m, _ := crossModel(t)
	if _, err := CrossNeighbors(m, "nope", []int{0}, 0.5, -1); err == nil {
		t.Error("unknown cross should fail")
	}
	if _, err := CrossNeighbors(m, "x", []int{0}, 2, -1); err == nil {
		t.Error("bad decay should fail")
	}
	big := coverage.MustModel([]string{"x_a0_b0", "lone"})
	cp, _ := coverage.NewCrossProduct("x", []coverage.Dim{{Name: "a", Values: []string{"a0"}}, {Name: "b", Values: []string{"b0"}}})
	if err := big.AddCross(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := CrossNeighbors(big, "x", []int{big.MustLookup("lone")}, 0.5, -1); err == nil {
		t.Error("target outside cross should fail")
	}
}

// correlatedRepo builds a repository where events 0 and 1 are hit by the
// same templates (correlated) and event 2 by a different one.
func correlatedRepo(t *testing.T) *coverage.Repository {
	t.Helper()
	m := coverage.MustModel([]string{"buddyA", "buddyB", "loner", "dark"})
	repo := coverage.NewRepository(m)
	for i := 0; i < 100; i++ {
		v := coverage.NewVectorFor(m)
		if i < 80 {
			v.Set(0)
		}
		if i < 60 {
			v.Set(1)
		}
		repo.Record("t_buddies", v)
	}
	for i := 0; i < 100; i++ {
		v := coverage.NewVectorFor(m)
		if i < 90 {
			v.Set(2)
		}
		repo.Record("t_loner", v)
	}
	return repo
}

func TestCorrelated(t *testing.T) {
	repo := correlatedRepo(t)
	m := repo.Model()
	ws, err := Correlated(repo, []int{m.MustLookup("buddyA")}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	byEvent := map[int]float64{}
	for _, w := range ws {
		byEvent[w.Event] = w.Weight
	}
	if byEvent[m.MustLookup("buddyA")] != 1 {
		t.Fatal("target must be included with weight 1")
	}
	if byEvent[m.MustLookup("buddyB")] < 0.99 {
		t.Fatalf("buddyB similarity = %v, want ~1", byEvent[m.MustLookup("buddyB")])
	}
	if _, ok := byEvent[m.MustLookup("loner")]; ok {
		t.Fatal("loner should not correlate with buddyA")
	}
}

func TestCorrelatedUncoveredTargetUsesGroupSeed(t *testing.T) {
	repo := correlatedRepo(t)
	m := repo.Model()
	// "dark" is uncovered; grouped with buddyA the seed comes from
	// buddyA's profile, pulling in buddyB.
	ws, err := Correlated(repo, []int{m.MustLookup("dark"), m.MustLookup("buddyA")}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range ws {
		if w.Event == m.MustLookup("buddyB") {
			found = true
		}
	}
	if !found {
		t.Fatal("group seed did not recruit buddyB")
	}
}

func TestCorrelatedErrors(t *testing.T) {
	repo := correlatedRepo(t)
	m := repo.Model()
	if _, err := Correlated(repo, nil, 0.5); err == nil {
		t.Error("no targets should fail")
	}
	if _, err := Correlated(repo, []int{m.MustLookup("dark")}, 0.5); err == nil {
		t.Error("all-uncovered targets should fail with guidance")
	}
	empty := coverage.NewRepository(m)
	if _, err := Correlated(empty, []int{0}, 0.5); err == nil {
		t.Error("empty repository should fail")
	}
}

func TestCosineHelpers(t *testing.T) {
	if cosine([]float64{1, 0}, []float64{0, 1}) != 0 {
		t.Error("orthogonal cosine should be 0")
	}
	if math.Abs(cosine([]float64{1, 1}, []float64{2, 2})-1) > 1e-12 {
		t.Error("parallel cosine should be 1")
	}
	if cosine([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Error("zero vector cosine should be 0")
	}
}

func TestOrdinalWeightsBoundedProperty(t *testing.T) {
	m := familyModel(t)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		decay := 0.05 + r.Float64()*0.95
		target := []int{r.Intn(4)} // family members have IDs 0..3
		ws, err := Ordinal(m, "levels", target, decay)
		if err != nil {
			return false
		}
		sawTarget := false
		for _, w := range ws {
			if w.Weight <= 0 || w.Weight > 1 {
				return false
			}
			if w.Event == target[0] && w.Weight == 1 {
				sawTarget = true
			}
		}
		return sawTarget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossNeighborsWeightsBoundedProperty(t *testing.T) {
	m, _ := crossModel(t)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		decay := 0.05 + r.Float64()*0.95
		target := r.Intn(m.Size())
		ws, err := CrossNeighbors(m, "x", []int{target}, decay, -1)
		if err != nil {
			return false
		}
		if len(ws) != m.Size() {
			return false
		}
		for _, w := range ws {
			if w.Weight <= 0 || w.Weight > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
