// Package neighbors implements the approximated-target machinery of
// AS-CDG (paper Section IV-A).
//
// A data-driven search for an uncovered event has no positive evidence
// to climb: every candidate template scores zero. AS-CDG therefore
// replaces the real target with an approximated target induced by
// *neighbor* events — events that, when hit more often, indicate the
// relevant area of the DUV is being exercised, raising the probability
// of the target itself.
//
// The paper lists three neighbor sources, all reproduced here:
//
//   - the natural order of buffer utilization (Wagner et al. [8]):
//     Ordinal, using the model's ordered event families;
//   - the structure of a cross-product coverage model (Fine & Ziv
//     [15]): CrossNeighbors, using Hamming distance over attributes;
//   - formal analysis (FRIENDS, Gal et al. [16]): substituted by
//     Correlated, which mines co-hit correlations from the coverage
//     repository — the same artifact (a weighted neighbor list) derived
//     from simulation data instead of a formal model (see DESIGN.md).
package neighbors

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/coverage"
)

// Weighted is one neighbor event with its weight in the approximated
// target.
type Weighted struct {
	Event  int
	Weight float64
}

// Target is an approximated target function: a weighted sum of event hit
// probabilities, T_N(t) = sum_e w_e * e_N(t) (paper Section IV-D).
type Target struct {
	weights map[int]float64
	order   []int // event IDs in insertion order, deduplicated
}

// NewTarget builds a target from a weighted neighbor list. Duplicate
// events keep their maximum weight.
func NewTarget(ws []Weighted) *Target {
	t := &Target{weights: map[int]float64{}}
	for _, w := range ws {
		if old, ok := t.weights[w.Event]; ok {
			if w.Weight > old {
				t.weights[w.Event] = w.Weight
			}
			continue
		}
		t.weights[w.Event] = w.Weight
		t.order = append(t.order, w.Event)
	}
	return t
}

// Uniform builds a target in which every listed event has weight 1 —
// the paper's default "sum of the hit counts for all the events in the
// family" form (Section V).
func Uniform(events []int) *Target {
	ws := make([]Weighted, len(events))
	for i, e := range events {
		ws[i] = Weighted{Event: e, Weight: 1}
	}
	return NewTarget(ws)
}

// Events returns the target's event IDs in insertion order.
func (t *Target) Events() []int {
	out := make([]int, len(t.order))
	copy(out, t.order)
	return out
}

// Weights returns the weight vector aligned with Events().
func (t *Target) Weights() []float64 {
	out := make([]float64, len(t.order))
	for i, e := range t.order {
		out[i] = t.weights[e]
	}
	return out
}

// Weight returns the weight of one event (0 if not part of the target).
func (t *Target) Weight(event int) float64 { return t.weights[event] }

// Len returns the number of events in the target.
func (t *Target) Len() int { return len(t.order) }

// Score evaluates the target on an aggregate: the weighted sum of
// empirical hit probabilities. Summation runs in insertion order, not
// map order: float addition is not associative, and a per-process
// iteration order would let near-tie optimizer comparisons flip from
// run to run, breaking fixed-seed reproducibility of the whole flow.
func (t *Target) Score(c *coverage.Counts) float64 {
	s := 0.0
	for _, e := range t.order {
		s += t.weights[e] * c.HitRate(e)
	}
	return s
}

// Ordinal returns the neighbors of the target events within their
// ordered family: every family member, weighted by decay^distance where
// distance is the index gap to the nearest target. decay in (0, 1]
// controls how strongly the target favors events close to the real
// targets; decay == 1 reduces to the paper's uniform family sum.
func Ordinal(m *coverage.Model, family string, targets []int, decay float64) ([]Weighted, error) {
	ids, ok := m.Family(family)
	if !ok {
		return nil, fmt.Errorf("neighbors: unknown family %q", family)
	}
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("neighbors: decay %v outside (0, 1]", decay)
	}
	pos := map[int]int{}
	for i, id := range ids {
		pos[id] = i
	}
	var targetPos []int
	for _, t := range targets {
		p, ok := pos[t]
		if !ok {
			return nil, fmt.Errorf("neighbors: target %q is not in family %q", m.Name(t), family)
		}
		targetPos = append(targetPos, p)
	}
	out := make([]Weighted, 0, len(ids))
	for i, id := range ids {
		best := math.MaxInt
		for _, tp := range targetPos {
			if d := abs(i - tp); d < best {
				best = d
			}
		}
		out = append(out, Weighted{Event: id, Weight: math.Pow(decay, float64(best))})
	}
	return out, nil
}

// CrossNeighbors returns the neighbors of the target events within a
// cross product: every event at Hamming distance <= maxDist from some
// target, weighted by decay^distance. maxDist < 0 means no limit.
func CrossNeighbors(m *coverage.Model, crossName string, targets []int, decay float64, maxDist int) ([]Weighted, error) {
	cp, ok := m.Cross(crossName)
	if !ok {
		return nil, fmt.Errorf("neighbors: unknown cross product %q", crossName)
	}
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("neighbors: decay %v outside (0, 1]", decay)
	}
	targetCoords := make([][]int, 0, len(targets))
	for _, t := range targets {
		coords, err := cp.Coords(m.Name(t))
		if err != nil {
			return nil, fmt.Errorf("neighbors: target %q is not in cross %q", m.Name(t), crossName)
		}
		targetCoords = append(targetCoords, coords)
	}
	var out []Weighted
	for _, name := range cp.EventNames() {
		coords, err := cp.Coords(name)
		if err != nil {
			return nil, err
		}
		best := math.MaxInt
		for _, tc := range targetCoords {
			d := 0
			for i := range coords {
				if coords[i] != tc[i] {
					d++
				}
			}
			if d < best {
				best = d
			}
		}
		if maxDist >= 0 && best > maxDist {
			continue
		}
		id, _ := m.Lookup(name)
		out = append(out, Weighted{Event: id, Weight: math.Pow(decay, float64(best))})
	}
	return out, nil
}

// Correlated mines neighbor candidates from the coverage repository: the
// stand-in for formal FRIENDS analysis. Two events are correlated when
// their per-template hit-probability profiles point in similar
// directions (cosine similarity >= minSim). For covered targets the
// correlation is computed directly; for uncovered targets — which have
// an all-zero profile — the seed profile is the *sum* of the profiles of
// the other target events, mimicking how an expert reasons from the
// covered part of the group toward the uncovered part.
//
// The result always contains the targets themselves (weight 1); other
// events carry their similarity as weight.
func Correlated(repo *coverage.Repository, targets []int, minSim float64) ([]Weighted, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("neighbors: no target events")
	}
	m := repo.Model()
	names := repo.TemplateNames()
	if len(names) == 0 {
		return nil, fmt.Errorf("neighbors: repository has no template statistics")
	}
	profile := func(event int) []float64 {
		p := make([]float64, len(names))
		for i, n := range names {
			c, _ := repo.Template(n)
			p[i] = c.HitRate(event)
		}
		return p
	}
	// Seed = sum of target profiles (covered targets contribute; an
	// uncovered target contributes zeros).
	seed := make([]float64, len(names))
	isTarget := map[int]bool{}
	for _, t := range targets {
		isTarget[t] = true
		for i, v := range profile(t) {
			seed[i] += v
		}
	}
	if norm(seed) == 0 {
		return nil, fmt.Errorf("neighbors: no evidence for any target event; use Ordinal or CrossNeighbors")
	}

	out := make([]Weighted, 0, len(targets))
	for _, t := range targets {
		out = append(out, Weighted{Event: t, Weight: 1})
	}
	type cand struct {
		ev  int
		sim float64
	}
	var cands []cand
	for e := 0; e < m.Size(); e++ {
		if isTarget[e] {
			continue
		}
		sim := cosine(seed, profile(e))
		if sim >= minSim {
			cands = append(cands, cand{e, sim})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sim != cands[j].sim {
			return cands[i].sim > cands[j].sim
		}
		return cands[i].ev < cands[j].ev
	})
	for _, c := range cands {
		out = append(out, Weighted{Event: c.ev, Weight: c.sim})
	}
	return out, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func cosine(a, b []float64) float64 {
	na, nb := norm(a), norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	dot := 0.0
	for i := range a {
		dot += a[i] * b[i]
	}
	return dot / (na * nb)
}
