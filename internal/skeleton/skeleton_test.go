package skeleton

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/template"
)

const lsuSource = `
template lsu_stress {
    weight Mnemonic {
        load:  40;
        store: 40;
        add:   0;
        mul:   20;
    }
    range CacheDelay [0 : 100];
}
`

func mustParse(t *testing.T, src string) *template.Template {
	t.Helper()
	tmpl, err := template.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

func TestSkeletonizeLSU(t *testing.T) {
	s, err := Skeletonize(mustParse(t, lsuSource), Options{Subranges: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Mnemonic: load, store, mul marked (add: 0 NOT marked, per Fig 1(b)).
	// CacheDelay: 3 subranges, all marked.
	if s.Dim() != 6 {
		t.Fatalf("Dim = %d, want 6; slots = %v", s.Dim(), s.Slots())
	}
	slots := s.Slots()
	wantLabels := []string{"load", "store", "mul"}
	for i, l := range wantLabels {
		if slots[i].Param != "Mnemonic" || slots[i].Label != l || slots[i].Kind != SlotWeight {
			t.Fatalf("slot %d = %+v, want Mnemonic/%s", i, slots[i], l)
		}
	}
	for i := 3; i < 6; i++ {
		if slots[i].Param != "CacheDelay" || slots[i].Kind != SlotSubrange {
			t.Fatalf("slot %d = %+v, want CacheDelay subrange", i, slots[i])
		}
	}
	// Subranges cover [0,100] without gaps or overlap.
	wp := s.Base().Weight("CacheDelay")
	if wp == nil {
		t.Fatal("CacheDelay not converted to weight param")
	}
	lo := 0
	for _, e := range wp.Entries {
		if !e.IsRange {
			t.Fatalf("CacheDelay entry not a subrange: %+v", e)
		}
		if e.Lo != lo {
			t.Fatalf("subrange gap: starts at %d, want %d", e.Lo, lo)
		}
		lo = e.Hi + 1
	}
	if lo != 101 {
		t.Fatalf("subranges end at %d, want 101", lo)
	}
}

func TestIncludeZeroWeights(t *testing.T) {
	s, err := Skeletonize(mustParse(t, lsuSource), Options{IncludeZeroWeights: true, Subranges: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Now "add" is also marked: 4 + 2 slots.
	if s.Dim() != 6 {
		t.Fatalf("Dim = %d, want 6", s.Dim())
	}
	found := false
	for _, sl := range s.Slots() {
		if sl.Param == "Mnemonic" && sl.Label == "add" {
			found = true
		}
	}
	if !found {
		t.Fatal("add not marked despite IncludeZeroWeights")
	}
}

func TestSkeletonizeRejectsUnmodifiable(t *testing.T) {
	// A template whose only weight entries are zero yields no slots.
	tmpl := mustParse(t, "template t { weight W { a: 0; } }")
	if _, err := Skeletonize(tmpl, Options{}); err == nil {
		t.Fatal("expected error for template with no modifiable settings")
	}
}

func TestSkeletonizeRejectsInvalid(t *testing.T) {
	bad := &template.Template{} // no name
	if _, err := Skeletonize(bad, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSplitLinear(t *testing.T) {
	subs := split(0, 99, 4, Linear)
	if len(subs) != 4 {
		t.Fatalf("subs = %v", subs)
	}
	want := [][2]int{{0, 24}, {25, 49}, {50, 74}, {75, 99}}
	for i := range want {
		if subs[i] != want[i] {
			t.Fatalf("subs[%d] = %v, want %v", i, subs[i], want[i])
		}
	}
}

func TestSplitNarrowRange(t *testing.T) {
	// Range narrower than requested subrange count: one subrange per value.
	subs := split(5, 7, 8, Linear)
	if len(subs) != 3 {
		t.Fatalf("subs = %v", subs)
	}
	for i, s := range subs {
		if s[0] != 5+i || s[1] != 5+i {
			t.Fatalf("subs[%d] = %v", i, s)
		}
	}
}

func TestSplitSingleValue(t *testing.T) {
	subs := split(9, 9, 4, Linear)
	if len(subs) != 1 || subs[0] != [2]int{9, 9} {
		t.Fatalf("subs = %v", subs)
	}
}

func TestSplitGeometric(t *testing.T) {
	subs := split(0, 1000, 5, Geometric)
	// Must cover the range contiguously and be increasingly wide.
	lo := 0
	prevWidth := 0
	for i, s := range subs {
		if s[0] != lo {
			t.Fatalf("gap at %v", s)
		}
		width := s[1] - s[0] + 1
		if i > 0 && width < prevWidth {
			t.Fatalf("geometric widths not non-decreasing: %v", subs)
		}
		prevWidth = width
		lo = s[1] + 1
	}
	if lo != 1001 {
		t.Fatalf("coverage ends at %d", lo)
	}
	if len(subs) < 2 {
		t.Fatalf("expected multiple subranges, got %v", subs)
	}
	// First geometric subrange should be much narrower than the last.
	first := subs[0][1] - subs[0][0] + 1
	last := subs[len(subs)-1][1] - subs[len(subs)-1][0] + 1
	if first >= last {
		t.Fatalf("geometric split not front-loaded: first=%d last=%d", first, last)
	}
}

func TestSplitPropertyCoverage(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		lo := r.Intn(200) - 100
		width := 1 + r.Intn(500)
		hi := lo + width - 1
		k := 1 + r.Intn(10)
		mode := Linear
		if r.Bool(0.5) {
			mode = Geometric
		}
		subs := split(lo, hi, k, mode)
		if len(subs) == 0 || len(subs) > k {
			return false
		}
		at := lo
		for _, s := range subs {
			if s[0] != at || s[1] < s[0] {
				return false
			}
			at = s[1] + 1
		}
		return at == hi+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInstantiate(t *testing.T) {
	s, err := Skeletonize(mustParse(t, lsuSource), Options{Subranges: 3})
	if err != nil {
		t.Fatal(err)
	}
	weights := []float64{90, 10, 0, 70, 20, 10}
	tmpl, err := s.Instantiate("cand_1", weights)
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.Name != "cand_1" {
		t.Fatalf("name = %q", tmpl.Name)
	}
	wp := tmpl.Weight("Mnemonic")
	if e, _ := wp.Entry("load"); e.Weight != 90 {
		t.Fatalf("load = %d", e.Weight)
	}
	if e, _ := wp.Entry("add"); e.Weight != 0 {
		t.Fatalf("unmarked add changed: %d", e.Weight)
	}
	if e, _ := wp.Entry("mul"); e.Weight != 0 {
		t.Fatalf("mul = %d", e.Weight)
	}
	cd := tmpl.Weight("CacheDelay")
	if cd == nil || len(cd.Entries) != 3 {
		t.Fatalf("CacheDelay = %+v", cd)
	}
	if cd.Entries[0].Weight != 70 {
		t.Fatalf("first subrange weight = %d", cd.Entries[0].Weight)
	}
	if err := tmpl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInstantiateClampsAndRounds(t *testing.T) {
	s, _ := Skeletonize(mustParse(t, lsuSource), Options{Subranges: 2})
	tmpl, err := s.Instantiate("c", []float64{150, -20, 49.6, 0.4, 100})
	if err != nil {
		t.Fatal(err)
	}
	wp := tmpl.Weight("Mnemonic")
	if e, _ := wp.Entry("load"); e.Weight != 100 {
		t.Fatalf("load = %d, want clamp to 100", e.Weight)
	}
	if e, _ := wp.Entry("store"); e.Weight != 0 {
		t.Fatalf("store = %d, want clamp to 0", e.Weight)
	}
	if e, _ := wp.Entry("mul"); e.Weight != 50 {
		t.Fatalf("mul = %d, want round to 50", e.Weight)
	}
}

func TestInstantiateDimensionMismatch(t *testing.T) {
	s, _ := Skeletonize(mustParse(t, lsuSource), Options{})
	if _, err := s.Instantiate("c", []float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestInstantiateRevivesAllZeroParam(t *testing.T) {
	s, _ := Skeletonize(mustParse(t, lsuSource), Options{Subranges: 2})
	// All Mnemonic slots zero; CacheDelay second subrange nonzero.
	tmpl, err := s.Instantiate("c", []float64{0, 0.4, 0.2, 0, 50})
	if err != nil {
		t.Fatal(err)
	}
	wp := tmpl.Weight("Mnemonic")
	// The largest raw weight (store = 0.4) must be revived to 1; the
	// zero-weight "add" must stay excluded.
	if e, _ := wp.Entry("store"); e.Weight != 1 {
		t.Fatalf("store = %d, want revived to 1", e.Weight)
	}
	if e, _ := wp.Entry("add"); e.Weight != 0 {
		t.Fatalf("add = %d, must stay 0", e.Weight)
	}
	if e, _ := wp.Entry("load"); e.Weight != 0 {
		t.Fatalf("load = %d", e.Weight)
	}
}

func TestPropertyInstantiateAlwaysValid(t *testing.T) {
	s, err := Skeletonize(mustParse(t, lsuSource), Options{Subranges: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		x := make([]float64, s.Dim())
		for i := range x {
			// Deliberately out-of-box values to exercise clamping.
			x[i] = (r.Float64() - 0.25) * 300
		}
		tmpl, err := s.Instantiate("p", x)
		if err != nil {
			return false
		}
		if tmpl.Validate() != nil {
			return false
		}
		// Every weight param with marked entries has at least one
		// positive weight among its marked entries.
		for _, p := range tmpl.Params {
			wp, ok := p.(*template.WeightParam)
			if !ok {
				return false // skeleton templates only contain weight params
			}
			anyMarked, anyPositive := false, false
			for _, sl := range s.Slots() {
				if sl.Param != wp.Name {
					continue
				}
				anyMarked = true
				if e, ok := wp.Entry(sl.Label); ok && e.Weight > 0 {
					anyPositive = true
				}
			}
			if anyMarked && !anyPositive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	s, _ := Skeletonize(mustParse(t, lsuSource), Options{Subranges: 3})
	x := []float64{10, 20, 30, 40, 50, 60}
	tmpl, err := s.Instantiate("c", x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Weights(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("weights[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestWeightsErrors(t *testing.T) {
	s, _ := Skeletonize(mustParse(t, lsuSource), Options{})
	other := mustParse(t, "template o { weight X { a: 1; } }")
	if _, err := s.Weights(other); err == nil {
		t.Fatal("Weights of unrelated template should fail")
	}
	missingEntry := mustParse(t, `
template o {
    weight Mnemonic { other: 1; }
    weight CacheDelay { [0:100]: 1; }
}
`)
	if _, err := s.Weights(missingEntry); err == nil {
		t.Fatal("Weights with missing entry should fail")
	}
}

func TestRandomWeightsInBox(t *testing.T) {
	s, _ := Skeletonize(mustParse(t, lsuSource), Options{MaxWeight: 50})
	r := rng.New(3)
	for trial := 0; trial < 100; trial++ {
		x := s.RandomWeights(r)
		if len(x) != s.Dim() {
			t.Fatalf("len = %d", len(x))
		}
		for _, v := range x {
			if v < 0 || v >= 50 {
				t.Fatalf("weight %v out of [0,50)", v)
			}
		}
	}
}

func TestClamp(t *testing.T) {
	s, _ := Skeletonize(mustParse(t, lsuSource), Options{})
	x := s.Clamp([]float64{-5, 50, 105})
	if x[0] != 0 || x[1] != 50 || x[2] != 100 {
		t.Fatalf("Clamp = %v", x)
	}
}

func TestMarkedSource(t *testing.T) {
	s, _ := Skeletonize(mustParse(t, lsuSource), Options{Subranges: 3})
	src := s.MarkedSource()
	if !strings.Contains(src, "load:") || !strings.Contains(src, "<?>") {
		t.Fatalf("marked source missing marks:\n%s", src)
	}
	// "add: 0;" must appear unmarked.
	if !strings.Contains(src, "add:") {
		t.Fatalf("add entry missing:\n%s", src)
	}
	if strings.Count(src, "<?>") != s.Dim() {
		t.Fatalf("marks = %d, want %d:\n%s", strings.Count(src, "<?>"), s.Dim(), src)
	}
	// The marked source must parse as a skeleton with the same slot list.
	tmpl, marks, err := template.ParseSkeleton(src)
	if err != nil {
		t.Fatalf("marked source does not parse: %v\n%s", err, src)
	}
	if tmpl.Name != s.Base().Name {
		t.Fatalf("name = %q", tmpl.Name)
	}
	if len(marks) != s.Dim() {
		t.Fatalf("parsed %d marks, want %d", len(marks), s.Dim())
	}
	for i, m := range marks {
		if m.Param != s.Slots()[i].Param || m.Label != s.Slots()[i].Label {
			t.Fatalf("mark %d = %+v, want %+v", i, m, s.Slots()[i])
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	s, err := Skeletonize(mustParse(t, lsuSource), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Options().Subranges != 4 || s.Options().MaxWeight != 100 {
		t.Fatalf("defaults = %+v", s.Options())
	}
	if s.MaxWeight() != 100 {
		t.Fatalf("MaxWeight = %d", s.MaxWeight())
	}
}
