// Package skeleton implements the Skeletonizer of the AS-CDG flow
// (paper Section IV-C, Fig. 1).
//
// The Skeletonizer receives a test-template and produces a skeleton: a
// copy of the template in which every weight that the CDG-Runner may
// modify is replaced by a mark. Weight parameters keep their entries,
// with each (by default non-zero) weight marked; range parameters —
// from which the generator draws uniformly — are replaced by weight
// parameters over subranges, each subrange weight marked, so the runner
// can shape the distribution over the original range.
//
// The marked positions ("slots") define the fine-grained search space:
// a skeleton with d slots plus a weight vector in [0, MaxWeight]^d
// instantiates to a concrete, valid test-template.
package skeleton

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/rng"
	"repro/internal/template"
)

// SubrangeMode selects how a range parameter is split into subranges.
type SubrangeMode int

const (
	// Linear splits the range into equal-width subranges.
	Linear SubrangeMode = iota
	// Geometric splits the range into subranges of geometrically growing
	// width, giving the runner finer control near the low end — useful
	// for delay- and gap-like parameters whose interesting values are
	// small.
	Geometric
)

// Options control skeletonization. The zero value selects the defaults
// documented on each field.
type Options struct {
	// IncludeZeroWeights also marks weight entries whose weight is zero.
	// Zero weights often flag values that must not be used (paper
	// Fig. 1(b) deliberately leaves "add: 0" unmarked), so the default
	// is to keep them fixed.
	IncludeZeroWeights bool
	// Subranges is the number of subranges a range parameter is split
	// into (default 4). The paper leaves the count user-controlled.
	Subranges int
	// Mode selects the subrange split shape (default Linear).
	Mode SubrangeMode
	// MaxWeight is the upper bound of every slot's weight (default 100).
	MaxWeight int
}

func (o Options) withDefaults() Options {
	if o.Subranges <= 0 {
		o.Subranges = 4
	}
	if o.MaxWeight <= 0 {
		o.MaxWeight = 100
	}
	return o
}

// SlotKind distinguishes the two origins of a skeleton slot.
type SlotKind int

const (
	// SlotWeight marks an original weight-parameter entry.
	SlotWeight SlotKind = iota
	// SlotSubrange marks a subrange produced from a range parameter.
	SlotSubrange
)

// Slot is one modifiable weight in a skeleton.
type Slot struct {
	// Param is the parameter the slot belongs to.
	Param string
	// Label is the entry label ("load" or "[0:32]").
	Label string
	// Kind records whether the slot came from a weight entry or a
	// subrange split.
	Kind SlotKind
}

// Skeleton is a skeletonized test-template: a base template whose marked
// weights are all zero, plus the ordered slot list.
type Skeleton struct {
	base  *template.Template
	slots []Slot
	opts  Options
}

// Skeletonize builds a skeleton from a test-template. It returns an
// error if the template is invalid or yields no modifiable slots.
func Skeletonize(t *template.Template, opts Options) (*Skeleton, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("skeleton: %w", err)
	}
	opts = opts.withDefaults()
	s := &Skeleton{base: template.New(t.Name + "_skel"), opts: opts}
	for _, p := range t.Params {
		switch param := p.(type) {
		case *template.WeightParam:
			wp := &template.WeightParam{Name: param.Name}
			for _, e := range param.Entries {
				marked := e.Weight > 0 || opts.IncludeZeroWeights
				ne := e
				if marked {
					ne.Weight = 0
					s.slots = append(s.slots, Slot{Param: param.Name, Label: e.Label(), Kind: SlotWeight})
				}
				wp.Entries = append(wp.Entries, ne)
			}
			s.base.Params = append(s.base.Params, wp)
		case *template.RangeParam:
			wp := &template.WeightParam{Name: param.Name}
			for _, sub := range split(param.Lo, param.Hi, opts.Subranges, opts.Mode) {
				wp.Entries = append(wp.Entries, template.WeightEntry{
					IsRange: true, Lo: sub[0], Hi: sub[1], Weight: 0,
				})
				s.slots = append(s.slots, Slot{
					Param: param.Name,
					Label: fmt.Sprintf("[%d:%d]", sub[0], sub[1]),
					Kind:  SlotSubrange,
				})
			}
			s.base.Params = append(s.base.Params, wp)
		}
	}
	if len(s.slots) == 0 {
		return nil, fmt.Errorf("skeleton: template %q has no modifiable settings", t.Name)
	}
	return s, nil
}

// split divides the inclusive range [lo, hi] into at most k non-empty,
// non-overlapping, covering subranges.
func split(lo, hi, k int, mode SubrangeMode) [][2]int {
	width := hi - lo + 1
	if k > width {
		k = width
	}
	if k <= 1 {
		return [][2]int{{lo, hi}}
	}
	bounds := make([]int, 0, k+1)
	switch mode {
	case Geometric:
		// Cut points at lo + width^(i/k), deduplicated; guarantees the
		// first subranges are the narrowest.
		bounds = append(bounds, lo)
		for i := 1; i < k; i++ {
			cut := lo + int(math.Round(math.Pow(float64(width), float64(i)/float64(k))))
			if cut <= bounds[len(bounds)-1] {
				cut = bounds[len(bounds)-1] + 1
			}
			if cut > hi {
				break
			}
			bounds = append(bounds, cut)
		}
		bounds = append(bounds, hi+1)
	default: // Linear
		for i := 0; i <= k; i++ {
			bounds = append(bounds, lo+i*width/k)
		}
	}
	subs := make([][2]int, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i+1] > bounds[i] {
			subs = append(subs, [2]int{bounds[i], bounds[i+1] - 1})
		}
	}
	return subs
}

// Dim returns the dimensionality of the skeleton's search space.
func (s *Skeleton) Dim() int { return len(s.slots) }

// Slots returns the ordered slot list. The returned slice must not be
// modified.
func (s *Skeleton) Slots() []Slot { return s.slots }

// Options returns the options the skeleton was built with (after
// defaulting).
func (s *Skeleton) Options() Options { return s.opts }

// Base returns the underlying marked template (all slot weights zero).
// The caller must not modify it.
func (s *Skeleton) Base() *template.Template { return s.base }

// MaxWeight returns the upper bound of every slot weight.
func (s *Skeleton) MaxWeight() int { return s.opts.MaxWeight }

// Clamp limits every coordinate of x to the search box [0, MaxWeight],
// in place, and returns x.
func (s *Skeleton) Clamp(x []float64) []float64 {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		} else if v > float64(s.opts.MaxWeight) {
			x[i] = float64(s.opts.MaxWeight)
		}
	}
	return x
}

// Instantiate creates a concrete test-template named name from the
// skeleton and a weight vector. Weights are clamped to [0, MaxWeight]
// and rounded to integers. If every marked entry of a parameter rounds
// to zero, the entry with the largest raw weight is set to 1: an
// all-zero parameter would make the generator fall back to a uniform
// choice over *all* entries — including unmarked zero-weight entries the
// template author excluded on purpose.
func (s *Skeleton) Instantiate(name string, weights []float64) (*template.Template, error) {
	if len(weights) != len(s.slots) {
		return nil, fmt.Errorf("skeleton: got %d weights for %d slots", len(weights), len(s.slots))
	}
	t := s.base.Clone()
	t.Name = name
	idx := 0
	for _, p := range t.Params {
		wp, ok := p.(*template.WeightParam)
		if !ok {
			continue
		}
		first := idx
		markedIdx := make([]int, 0, len(wp.Entries)) // entry positions of this param's slots
		for ei := range wp.Entries {
			if idx < len(s.slots) && s.slots[idx].Param == wp.Name && s.slots[idx].Label == wp.Entries[ei].Label() {
				w := weights[idx]
				if w < 0 {
					w = 0
				}
				max := float64(s.opts.MaxWeight)
				if w > max {
					w = max
				}
				wp.Entries[ei].Weight = int(math.Round(w))
				markedIdx = append(markedIdx, ei)
				idx++
			}
		}
		if len(markedIdx) == 0 {
			continue
		}
		allZero := true
		for _, ei := range markedIdx {
			if wp.Entries[ei].Weight > 0 {
				allZero = false
				break
			}
		}
		if allZero {
			// Revive the largest raw weight (ties: first).
			bestSlot, bestRaw := 0, math.Inf(-1)
			for k, ei := range markedIdx {
				_ = ei
				if raw := weights[first+k]; raw > bestRaw {
					bestRaw = raw
					bestSlot = k
				}
			}
			wp.Entries[markedIdx[bestSlot]].Weight = 1
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("skeleton: instantiated template invalid: %w", err)
	}
	return t, nil
}

// Weights recovers the slot weight vector from a template previously
// produced by Instantiate (or any template with matching parameters). It
// returns an error if a slot's parameter or entry is missing.
func (s *Skeleton) Weights(t *template.Template) ([]float64, error) {
	x := make([]float64, len(s.slots))
	for i, slot := range s.slots {
		wp := t.Weight(slot.Param)
		if wp == nil {
			return nil, fmt.Errorf("skeleton: template %q lacks weight parameter %q", t.Name, slot.Param)
		}
		e, ok := wp.Entry(slot.Label)
		if !ok {
			return nil, fmt.Errorf("skeleton: template %q parameter %q lacks entry %q", t.Name, slot.Param, slot.Label)
		}
		x[i] = float64(e.Weight)
	}
	return x, nil
}

// RandomWeights draws a uniform point in the search box [0, MaxWeight]^d;
// this is the sampling primitive of the random-sample phase (paper
// Section IV-D).
func (s *Skeleton) RandomWeights(r *rng.RNG) []float64 {
	x := make([]float64, len(s.slots))
	for i := range x {
		x[i] = r.Float64() * float64(s.opts.MaxWeight)
	}
	return x
}

// MarkedSource renders the skeleton in the paper's Fig. 1(b) form: the
// template source with every slot weight shown as the mark "<?>".
func (s *Skeleton) MarkedSource() string {
	// Rebuild instead of string-replacing the base's rendering to avoid
	// touching unmarked zero weights.
	var b strings.Builder
	fmt.Fprintf(&b, "template %s {\n", s.base.Name)
	idx := 0
	for _, p := range s.base.Params {
		wp, ok := p.(*template.WeightParam)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "    weight %s {\n", wp.Name)
		width := 0
		for _, e := range wp.Entries {
			if n := len(e.Label()); n > width {
				width = n
			}
		}
		for _, e := range wp.Entries {
			marked := idx < len(s.slots) && s.slots[idx].Param == wp.Name && s.slots[idx].Label == e.Label()
			if marked {
				fmt.Fprintf(&b, "        %-*s <?>;\n", width+1, e.Label()+":")
				idx++
			} else {
				fmt.Fprintf(&b, "        %-*s %d;\n", width+1, e.Label()+":", e.Weight)
			}
		}
		b.WriteString("    }\n")
	}
	b.WriteString("}\n")
	return b.String()
}
