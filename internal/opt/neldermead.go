package opt

import (
	"fmt"
	"sort"
)

// NelderMead maximizes f with the classic simplex method (reflection,
// expansion, contraction, shrink), as an ablation baseline for implicit
// filtering. The initial simplex puts one vertex at x0 and one at
// x0 + InitialStep along each coordinate. Nelder-Mead has no built-in
// defense against noisy objectives, which is exactly why the paper
// prefers implicit filtering; the ablation bench quantifies the gap.
func NelderMead(f Objective, x0 []float64, opts Options) (Result, error) {
	opts = opts.withDefaults()
	dim := len(x0)
	if dim == 0 {
		return Result{}, fmt.Errorf("opt: empty starting point")
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	type vertex struct {
		x []float64
		v float64
	}
	simplex := make([]vertex, dim+1)
	start := append([]float64(nil), x0...)
	clampTo(start, opts.Lo, opts.Hi)
	simplex[0] = vertex{x: start, v: eval(start)}
	for i := 0; i < dim; i++ {
		x := append([]float64(nil), start...)
		x[i] += opts.InitialStep
		clampTo(x, opts.Lo, opts.Hi)
		simplex[i+1] = vertex{x: x, v: eval(x)}
	}

	var history []IterRecord
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		if opts.MaxEvals > 0 && evals >= opts.MaxEvals {
			break
		}
		// Sort descending: best first (we maximize).
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].v > simplex[j].v })
		best, worst := simplex[0], simplex[dim]

		// Centroid of all but the worst vertex.
		centroid := make([]float64, dim)
		for _, vx := range simplex[:dim] {
			for i := range centroid {
				centroid[i] += vx.x[i] / float64(dim)
			}
		}

		point := func(coef float64) []float64 {
			x := make([]float64, dim)
			for i := range x {
				x[i] = centroid[i] + coef*(centroid[i]-worst.x[i])
			}
			clampTo(x, opts.Lo, opts.Hi)
			return x
		}

		reflected := point(alpha)
		rv := eval(reflected)
		switch {
		case rv > best.v:
			expanded := point(gamma)
			if ev := eval(expanded); ev > rv {
				simplex[dim] = vertex{x: expanded, v: ev}
			} else {
				simplex[dim] = vertex{x: reflected, v: rv}
			}
		case rv > simplex[dim-1].v:
			simplex[dim] = vertex{x: reflected, v: rv}
		default:
			contracted := point(-rho)
			if cv := eval(contracted); cv > worst.v {
				simplex[dim] = vertex{x: contracted, v: cv}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= dim; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = best.x[j] + sigma*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].v = eval(simplex[i].x)
				}
			}
		}

		top := simplex[0].v
		for _, vx := range simplex[1:] {
			if vx.v > top {
				top = vx.v
			}
		}
		history = append(history, IterRecord{Iter: iter, Best: top, Evals: evals})
		if opts.TargetValue > 0 && top >= opts.TargetValue {
			break
		}
	}

	sort.Slice(simplex, func(i, j int) bool { return simplex[i].v > simplex[j].v })
	return Result{X: simplex[0].x, Value: simplex[0].v, Evals: evals, History: history}, nil
}
