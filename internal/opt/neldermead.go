package opt

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/obs"
)

// NelderMeadSpec holds the simplex method's solver-specific knobs.
type NelderMeadSpec struct {
	// Iterations bounds the iteration count (default 50).
	Iterations int `json:"iterations,omitempty"`
	// InitialStep offsets each non-origin vertex of the initial simplex
	// along one coordinate (default: a quarter of the box width).
	InitialStep float64 `json:"initial_step,omitempty"`
}

func (s NelderMeadSpec) withDefaults(lo, hi float64) NelderMeadSpec {
	if s.Iterations <= 0 {
		s.Iterations = 50
	}
	if s.InitialStep <= 0 {
		s.InitialStep = (hi - lo) / 4
	}
	return s
}

func init() {
	Register(EngineDef{
		Name: "nelder_mead",
		Make: func(cfg EngineConfig, params json.RawMessage) (Engine, error) {
			var spec NelderMeadSpec
			if err := decodeParams(params, &spec); err != nil {
				return nil, err
			}
			return newNMEngine(cfg, spec), nil
		},
		Params: func() any { return new(NelderMeadSpec) },
	})
}

// Simplex coefficients (classic Nelder-Mead).
const (
	nmAlpha = 1.0 // reflection
	nmGamma = 2.0 // expansion
	nmRho   = 0.5 // contraction
	nmSigma = 0.5 // shrink
)

// nmEngine stages: which proposal is outstanding or due next.
const (
	nmInit     = iota // next proposal is the whole initial simplex
	nmStart           // iteration boundary: next proposal is the reflection
	nmReflect         // reflection outstanding
	nmExpand          // expansion outstanding
	nmContract        // contraction outstanding
	nmShrink          // shrink batch outstanding
	nmDone
)

type nmVertex struct {
	X []float64 `json:"x"`
	V float64   `json:"v"`
}

// nmEngine is the classic simplex method (reflection, expansion,
// contraction, shrink) as a Propose/Observe state machine. Within an
// iteration the steps are data-dependent and inherently sequential, so
// most proposals are single points; the initial simplex and the shrink
// step propose their independent points as one batch.
type nmEngine struct {
	spec        NelderMeadSpec
	lo, hi      float64
	maxEvals    int
	targetValue float64
	rec         *obs.Recorder
	mEvals      *obs.Counter
	oo          optObs

	dim int
	x0  []float64

	stage    int
	simplex  []nmVertex
	iter     int
	evals    int
	topSoFar float64
	history  []IterRecord

	// Per-iteration scratch, valid from the reflection proposal to the
	// iteration's end.
	centroid  []float64
	worst     nmVertex
	reflected []float64
	rv        float64
	pending   [][]float64
}

func newNMEngine(cfg EngineConfig, spec NelderMeadSpec) *nmEngine {
	cfg = cfg.withDefaults()
	spec = spec.withDefaults(cfg.Lo, cfg.Hi)
	e := &nmEngine{
		spec:        spec,
		lo:          cfg.Lo,
		hi:          cfg.Hi,
		maxEvals:    cfg.MaxEvals,
		targetValue: cfg.TargetValue,
		rec:         cfg.Recorder,
		mEvals:      cfg.Recorder.Counter("opt.evals"),
		oo:          newOptObs(cfg.Recorder),
		dim:         len(cfg.X0),
		x0:          append([]float64(nil), cfg.X0...),
	}
	clampTo(e.x0, e.lo, e.hi)
	return e
}

func (e *nmEngine) Name() string { return "nelder_mead" }

// point generates centroid + coef*(centroid - worst), clamped — the
// reflection/expansion/contraction family.
func (e *nmEngine) point(coef float64) []float64 {
	x := make([]float64, e.dim)
	for i := range x {
		x[i] = e.centroid[i] + coef*(e.centroid[i]-e.worst.X[i])
	}
	clampTo(x, e.lo, e.hi)
	return x
}

func (e *nmEngine) propose(pts [][]float64) [][]float64 {
	e.pending = pts
	e.evals += len(pts)
	e.mEvals.Add(uint64(len(pts)))
	return pts
}

func (e *nmEngine) Propose(_ context.Context, _ int) ([][]float64, error) {
	if e.pending != nil {
		return nil, fmt.Errorf("opt: %s: Propose before Observe", e.Name())
	}
	switch e.stage {
	case nmDone:
		return nil, nil
	case nmInit:
		pts := make([][]float64, 0, e.dim+1)
		pts = append(pts, append([]float64(nil), e.x0...))
		for i := 0; i < e.dim; i++ {
			x := append([]float64(nil), e.x0...)
			x[i] += e.spec.InitialStep
			clampTo(x, e.lo, e.hi)
			pts = append(pts, x)
		}
		return e.propose(pts), nil
	case nmStart:
		if e.iter >= e.spec.Iterations || (e.maxEvals > 0 && e.evals >= e.maxEvals) {
			e.stage = nmDone
			return nil, nil
		}
		// Sort descending: best first (we maximize).
		sort.Slice(e.simplex, func(i, j int) bool { return e.simplex[i].V > e.simplex[j].V })
		e.worst = e.simplex[e.dim]
		e.centroid = make([]float64, e.dim)
		for _, vx := range e.simplex[:e.dim] {
			for i := range e.centroid {
				e.centroid[i] += vx.X[i] / float64(e.dim)
			}
		}
		e.reflected = e.point(nmAlpha)
		e.stage = nmReflect
		return e.propose([][]float64{e.reflected}), nil
	case nmExpand:
		return e.propose([][]float64{e.point(nmGamma)}), nil
	case nmContract:
		return e.propose([][]float64{e.point(-nmRho)}), nil
	case nmShrink:
		// Shrink every non-best vertex toward the best one; the moved
		// vertices are independent, so they go out as one batch.
		best := e.simplex[0]
		pts := make([][]float64, 0, e.dim)
		for i := 1; i <= e.dim; i++ {
			x := e.simplex[i].X
			for j := range x {
				x[j] = best.X[j] + nmSigma*(x[j]-best.X[j])
			}
			pts = append(pts, x)
		}
		return e.propose(pts), nil
	}
	return nil, fmt.Errorf("opt: %s: bad stage %d", e.Name(), e.stage)
}

func (e *nmEngine) Observe(values []float64) error {
	if e.pending == nil {
		return fmt.Errorf("opt: %s: Observe without Propose", e.Name())
	}
	if len(values) != len(e.pending) {
		return fmt.Errorf("opt: %s: %d values for %d points", e.Name(), len(values), len(e.pending))
	}
	pending := e.pending
	e.pending = nil
	switch e.stage {
	case nmInit:
		e.simplex = make([]nmVertex, len(pending))
		for i, x := range pending {
			e.simplex[i] = nmVertex{X: x, V: values[i]}
		}
		e.stage = nmStart
		return nil
	case nmReflect:
		e.rv = values[0]
		switch {
		case e.rv > e.simplex[0].V:
			e.stage = nmExpand
		case e.rv > e.simplex[e.dim-1].V:
			e.simplex[e.dim] = nmVertex{X: e.reflected, V: e.rv}
			e.finishIteration()
		default:
			e.stage = nmContract
		}
		return nil
	case nmExpand:
		if ev := values[0]; ev > e.rv {
			e.simplex[e.dim] = nmVertex{X: pending[0], V: ev}
		} else {
			e.simplex[e.dim] = nmVertex{X: e.reflected, V: e.rv}
		}
		e.finishIteration()
		return nil
	case nmContract:
		if cv := values[0]; cv > e.worst.V {
			e.simplex[e.dim] = nmVertex{X: pending[0], V: cv}
			e.finishIteration()
		} else {
			e.stage = nmShrink
		}
		return nil
	case nmShrink:
		for i := 1; i <= e.dim; i++ {
			e.simplex[i].V = values[i-1]
		}
		e.finishIteration()
		return nil
	}
	return fmt.Errorf("opt: %s: bad stage %d", e.Name(), e.stage)
}

func (e *nmEngine) finishIteration() {
	e.iter++
	top := e.simplex[0].V
	for _, vx := range e.simplex[1:] {
		if vx.V > top {
			top = vx.V
		}
	}
	if e.iter == 1 || top > e.topSoFar {
		e.topSoFar = top
	}
	rec := IterRecord{Iter: e.iter, Best: top, Evals: e.evals}
	e.history = append(e.history, rec)
	e.oo.iter(e.Name(), rec, e.topSoFar)
	e.stage = nmStart
	if e.targetValue > 0 && top >= e.targetValue {
		e.stage = nmDone
	}
}

func (e *nmEngine) Result() Result {
	if len(e.simplex) == 0 {
		return Result{Evals: e.evals, History: e.history}
	}
	bestIdx := 0
	for i, vx := range e.simplex {
		if vx.V > e.simplex[bestIdx].V {
			bestIdx = i
		}
	}
	return Result{X: e.simplex[bestIdx].X, Value: e.simplex[bestIdx].V, Evals: e.evals, History: e.history}
}

type nmState struct {
	Iter     int          `json:"iter"`
	Evals    int          `json:"evals"`
	Simplex  []nmVertex   `json:"simplex"`
	TopSoFar float64      `json:"top_so_far"`
	History  []IterRecord `json:"history"`
}

func (e *nmEngine) Checkpoint() (json.RawMessage, error) {
	// Stable boundaries: completed iterations with the simplex fully
	// evaluated (nmStart or nmDone), never mid-iteration.
	if e.pending != nil || e.iter == 0 || (e.stage != nmStart && e.stage != nmDone) {
		return nil, nil
	}
	st := nmState{Iter: e.iter, Evals: e.evals, TopSoFar: e.topSoFar,
		Simplex: make([]nmVertex, len(e.simplex)),
		History: append([]IterRecord(nil), e.history...)}
	for i, vx := range e.simplex {
		st.Simplex[i] = nmVertex{X: append([]float64(nil), vx.X...), V: vx.V}
	}
	return json.Marshal(st)
}

func (e *nmEngine) Restore(state json.RawMessage) error {
	var st nmState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	if len(st.Simplex) != e.dim+1 {
		return fmt.Errorf("opt: %s: checkpoint simplex has %d vertices, want %d", e.Name(), len(st.Simplex), e.dim+1)
	}
	e.iter = st.Iter
	e.evals = st.Evals
	e.topSoFar = st.TopSoFar
	e.simplex = st.Simplex
	e.history = append(e.history[:0], st.History...)
	e.stage = nmStart
	// Re-apply the stop condition the uninterrupted run checked right
	// after this iteration.
	if n := len(e.history); n > 0 && e.targetValue > 0 && e.history[n-1].Best >= e.targetValue {
		e.stage = nmDone
	}
	return nil
}

// NelderMead maximizes f with the classic simplex method (reflection,
// expansion, contraction, shrink), as an ablation baseline for implicit
// filtering. The initial simplex puts one vertex at x0 and one at
// x0 + InitialStep along each coordinate. Nelder-Mead has no built-in
// defense against noisy objectives, which is exactly why the paper
// prefers implicit filtering; the ablation bench quantifies the gap.
//
// This is the Options-compatibility wrapper over the "nelder_mead"
// Engine; Options' stencil-only fields (Directions, MinStep, ...) are
// ignored, as before.
func NelderMead(f Objective, x0 []float64, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if len(x0) == 0 {
		return Result{}, fmt.Errorf("opt: empty starting point")
	}
	if f == nil {
		return Result{}, fmt.Errorf("opt: nil objective")
	}
	eng := newNMEngine(engineConfigFromOptions(x0, opts),
		NelderMeadSpec{Iterations: opts.MaxIterations, InitialStep: opts.InitialStep})
	return Drive(eng, DriveOptions{Objective: f, Context: opts.Context})
}
