// The pluggable optimizer boundary. The paper frames CDG as black-box
// noisy maximization, and different engines trade off sample efficiency
// against robustness to noise: the stencil methods (implicit filtering,
// the default), Nelder-Mead, a Bayesian-optimization engine (Gaussian
// process surrogate + expected improvement, after NOVA), and a
// supervised test-selection ranker warm-started from the cross-campaign
// knowledge base (after Masamba & Eder). All of them speak Engine:
// Propose a batch of points, Observe their objective values, repeat.
//
// The contract every engine honors:
//
//   - Determinism: the proposal sequence is a pure function of
//     EngineConfig (including the RNG seed/state) and the observed
//     values. No wall clock, no global randomness.
//   - Batching: the points of one Propose call are independent; a
//     caller may evaluate them concurrently as long as the i-th value
//     corresponds to the i-th point as if evaluated sequentially in
//     order (sim.Env's per-job seeding gives exactly this).
//   - Checkpoint/resume: Checkpoint returns a serializable snapshot at
//     stable boundaries (nil between them); Restore re-enters the run
//     so the continued trajectory is bit-identical to the uninterrupted
//     one, re-evaluating nothing the snapshot already paid for.
package opt

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Engine is one derivative-free maximization strategy over the box
// [Lo, Hi]^d. Engines are single-use state machines: construct (or
// Restore), then alternate Propose/Observe until Propose returns an
// empty batch.
type Engine interface {
	// Name returns the engine's registry name.
	Name() string
	// Propose returns the next batch of points to evaluate. n is a
	// batch-size hint (<= 0 means engine default); stencil engines whose
	// batch structure is fixed by the algorithm ignore it. An empty
	// batch means the run is complete (converged or out of budget).
	Propose(ctx context.Context, n int) ([][]float64, error)
	// Observe records the objective values for the immediately
	// preceding Propose call's points, in order.
	Observe(values []float64) error
	// Result snapshots the best-so-far outcome. Valid at any point;
	// after Propose returns empty it is the run's final result.
	Result() Result
	// Checkpoint serializes the engine's resumable state, or returns
	// (nil, nil) when the engine is between stable boundaries (e.g.
	// mid-iteration for multi-step stencil engines).
	Checkpoint() (json.RawMessage, error)
	// Restore re-enters a run from a Checkpoint payload. The engine
	// must already be constructed with the same EngineConfig and params
	// as the run that produced the payload.
	Restore(state json.RawMessage) error
}

// EngineConfig is the solver-agnostic part of an engine's setup: the
// search box, the starting point, the budget, and the seeded RNG.
// Solver-specific knobs (stencil directions, GP length scales, ...)
// live in each engine's params type — see IFSpec, NelderMeadSpec,
// BayesSpec, RankerSpec.
type EngineConfig struct {
	// X0 is the starting point; its length sets the dimension.
	X0 []float64
	// Lo and Hi bound the box in every coordinate (defaults 0 and 100,
	// the skeleton weight box).
	Lo, Hi float64
	// MaxEvals bounds objective calls (0 = unlimited).
	MaxEvals int
	// TargetValue stops the run once the best observed value reaches it
	// (0 = disabled).
	TargetValue float64
	// RNG drives all engine randomness. nil seeds a fresh generator
	// with 0.
	RNG *rng.RNG
	// Recorder streams opt_iter progress events and counts evals /
	// iterations. Purely observational.
	Recorder *obs.Recorder
	// Prior carries past observations of the same objective family —
	// the cross-campaign knowledge base's harvested (weights, score)
	// pairs. Engines that learn from history (ranker, bayes) fold
	// matching-dimension points into their model before the first
	// proposal; stencil engines ignore it.
	Prior []PriorPoint
}

// PriorPoint is one past observation offered to an engine as warm-start
// evidence. It does not count toward the run's eval budget.
type PriorPoint struct {
	X     []float64 `json:"x"`
	Value float64   `json:"value"`
}

// withDefaults resolves the config's zero values like Options does.
func (c EngineConfig) withDefaults() EngineConfig {
	if c.Hi == 0 && c.Lo == 0 {
		c.Hi = 100
	}
	if c.RNG == nil {
		c.RNG = rng.New(0)
	}
	return c
}

// priorInDim filters the prior down to points of the engine's dimension
// that lie inside the box, preserving order.
func (c EngineConfig) priorInDim(dim int) []PriorPoint {
	var out []PriorPoint
	for _, p := range c.Prior {
		if len(p.X) != dim {
			continue
		}
		x := append([]float64(nil), p.X...)
		clampTo(x, c.Lo, c.Hi)
		out = append(out, PriorPoint{X: x, Value: p.Value})
	}
	return out
}

// EngineDef registers one engine: its canonical name, a constructor,
// and a params prototype used for strict admission-time validation of
// user-supplied params JSON.
type EngineDef struct {
	Name string
	// Make builds the engine. params may be nil/empty; unknown keys are
	// ignored here (the merged blob carries generic flow knobs every
	// engine picks what it understands from) — strict checking happens
	// in Validate against the Params prototype.
	Make func(cfg EngineConfig, params json.RawMessage) (Engine, error)
	// Params returns a pointer to a zero params struct for this engine.
	Params func() any
}

var engineDefs = map[string]EngineDef{}

// DefaultEngine is the paper's algorithm and the name the empty string
// resolves to.
const DefaultEngine = "implicit_filtering"

// Register adds an engine to the registry. Engines self-register from
// init; duplicate names panic (a wiring bug, not a runtime condition).
func Register(def EngineDef) {
	if def.Name == "" || def.Make == nil {
		panic("opt: Register with empty name or nil maker")
	}
	if _, dup := engineDefs[def.Name]; dup {
		panic("opt: duplicate engine " + def.Name)
	}
	engineDefs[def.Name] = def
}

// EngineNames returns the registered engine names, sorted.
func EngineNames() []string {
	names := make([]string, 0, len(engineDefs))
	for n := range engineDefs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New builds a registered engine by name ("" selects DefaultEngine).
// params is the engine's knob blob; unknown keys are ignored (use
// Validate for strict admission-time checking).
func New(name string, cfg EngineConfig, params json.RawMessage) (Engine, error) {
	if name == "" {
		name = DefaultEngine
	}
	def, ok := engineDefs[name]
	if !ok {
		return nil, fmt.Errorf("opt: unknown engine %q (registered: %s)", name, strings.Join(EngineNames(), ", "))
	}
	if len(cfg.X0) == 0 {
		return nil, fmt.Errorf("opt: empty starting point")
	}
	return def.Make(cfg, params)
}

// Validate checks an engine selection at admission time: the name must
// be registered ("" is the default) and params, when present, must be a
// JSON object containing only keys the engine's params type declares.
// The error for an unknown engine lists every registered name, so HTTP
// handlers can surface it verbatim.
func Validate(name string, params json.RawMessage) error {
	if name == "" {
		name = DefaultEngine
	}
	def, ok := engineDefs[name]
	if !ok {
		return fmt.Errorf("unknown engine %q (registered: %s)", name, strings.Join(EngineNames(), ", "))
	}
	if len(bytes.TrimSpace(params)) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(params))
	dec.DisallowUnknownFields()
	if err := dec.Decode(def.Params()); err != nil {
		return fmt.Errorf("engine %q params: %v", name, err)
	}
	return nil
}

// decodeParams unmarshals a params blob into an engine's spec,
// tolerating unknown keys: the flow merges its generic optimizer knobs
// (iterations, directions, ...) into one blob and each engine picks
// what it understands.
func decodeParams(params json.RawMessage, into any) error {
	if len(bytes.TrimSpace(params)) == 0 {
		return nil
	}
	return json.Unmarshal(params, into)
}

// MergeParams overlays user params on top of base flow knobs: keys in
// over win. Both blobs must be JSON objects (or empty). The result is
// canonical (sorted keys), so it is stable input for config hashing.
func MergeParams(base map[string]any, over json.RawMessage) (json.RawMessage, error) {
	merged := make(map[string]any, len(base))
	for k, v := range base {
		merged[k] = v
	}
	if len(bytes.TrimSpace(over)) > 0 {
		var m map[string]any
		if err := json.Unmarshal(over, &m); err != nil {
			return nil, fmt.Errorf("opt: engine params: %w", err)
		}
		for k, v := range m {
			merged[k] = v
		}
	}
	if len(merged) == 0 {
		return nil, nil
	}
	return json.Marshal(merged)
}

// DriveOptions configure one Drive loop around an engine.
type DriveOptions struct {
	// Objective evaluates points one at a time. May be nil when Batch
	// is set.
	Objective Objective
	// Batch evaluates one Propose batch concurrently (e.g. as parallel
	// simulation jobs). Takes precedence over Objective.
	Batch BatchObjective
	// BatchSize is the hint passed to Propose (<= 0: engine default).
	BatchSize int
	// Context cancels the run between evaluations: Drive returns the
	// engine's best-so-far Result with the context's error.
	Context context.Context
	// Checkpoint, when non-nil, receives the engine's serialized state
	// after every observation that lands on a stable boundary. An error
	// aborts the run with that error — the flow's journaling hook.
	Checkpoint func(json.RawMessage) error
	// Resume, when non-nil, restores the engine from a previous
	// Checkpoint payload before the first proposal.
	Resume json.RawMessage
}

// Drive runs an engine to completion: Propose, evaluate, Observe,
// checkpoint, repeat. It is the one evaluation loop every caller —
// flow, CLI baselines, conformance tests — shares, so engines never
// see objectives directly.
func Drive(e Engine, o DriveOptions) (Result, error) {
	batch := o.Batch
	if batch == nil {
		if o.Objective == nil {
			return Result{}, fmt.Errorf("opt: nil objective")
		}
		f := o.Objective
		batch = func(points [][]float64) []float64 {
			out := make([]float64, len(points))
			for i, p := range points {
				out[i] = f(p)
			}
			return out
		}
	}
	if o.Resume != nil {
		if err := e.Restore(o.Resume); err != nil {
			return Result{}, fmt.Errorf("opt: restore %s: %w", e.Name(), err)
		}
	}
	for {
		if err := ctxErr(o.Context); err != nil {
			return e.Result(), err
		}
		points, err := e.Propose(o.Context, o.BatchSize)
		if err != nil {
			return e.Result(), err
		}
		if len(points) == 0 {
			return e.Result(), nil
		}
		values := batch(points)
		if err := e.Observe(values); err != nil {
			return e.Result(), err
		}
		if o.Checkpoint != nil {
			state, err := e.Checkpoint()
			if err != nil {
				return e.Result(), err
			}
			if state != nil {
				if err := o.Checkpoint(state); err != nil {
					return e.Result(), err
				}
			}
		}
	}
}
