package opt

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/rng"
)

// resumeOpts is a small deterministic run with every stop criterion in
// play (iterations, min step, target value all reachable).
func resumeOpts() Options {
	return Options{
		Directions:    6,
		MaxIterations: 18,
		MinStep:       0.5,
		RNG:           rng.New(9),
	}
}

// TestResumeFromEveryCheckpointIsBitIdentical runs a full optimization
// collecting a checkpoint per iteration, then restarts from every one of
// them: each resumed run must return a Result bit-identical to the
// uninterrupted run, and must not re-evaluate points the original
// already paid for.
func TestResumeFromEveryCheckpointIsBitIdentical(t *testing.T) {
	x0 := []float64{10, 20, 30}
	var states []IterState
	opts := resumeOpts()
	opts.Checkpoint = func(st IterState) error {
		states = append(states, st)
		return nil
	}
	want, err := ImplicitFiltering(sphere, x0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != len(want.History) {
		t.Fatalf("%d checkpoints for %d iterations", len(states), len(want.History))
	}

	for k, st := range states {
		// Round-trip the state through JSON, as the journal does: Go's
		// shortest-representation float encoding must preserve every bit.
		data, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var back IterState
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, st) {
			t.Fatalf("checkpoint %d does not survive a JSON round-trip", k)
		}

		evals := 0
		counting := func(x []float64) float64 { evals++; return sphere(x) }
		ropts := resumeOpts()
		ropts.Resume = &back
		got, err := ImplicitFiltering(counting, x0, ropts)
		if err != nil {
			t.Fatalf("resume from checkpoint %d: %v", k, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("resume from checkpoint %d diverged:\n got %+v\nwant %+v", k, got, want)
		}
		if evals != want.Evals-st.Evals {
			t.Fatalf("resume from checkpoint %d re-evaluated: %d evals, want %d",
				k, evals, want.Evals-st.Evals)
		}
	}
}

// TestResumeAfterTargetValueStop: resuming from the final checkpoint of
// a run that stopped on TargetValue must return immediately with the
// identical Result, not run further iterations.
func TestResumeAfterTargetValueStop(t *testing.T) {
	x0 := []float64{65, 65}
	var states []IterState
	opts := resumeOpts()
	opts.TargetValue = -100
	opts.Checkpoint = func(st IterState) error { states = append(states, st); return nil }
	want, err := ImplicitFiltering(sphere, x0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.Value < -100 {
		t.Fatalf("run did not reach target (value %v)", want.Value)
	}
	evals := 0
	ropts := resumeOpts()
	ropts.TargetValue = -100
	ropts.Resume = &states[len(states)-1]
	got, err := ImplicitFiltering(func(x []float64) float64 { evals++; return sphere(x) }, x0, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if evals != 0 {
		t.Fatalf("resume from a finished run evaluated %d points", evals)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resume from a finished run diverged")
	}
}

// TestImplicitFilteringCancel: a canceled context stops the run between
// evaluations with ctx.Err() and the best-so-far partial result.
func TestImplicitFilteringCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	iters := 0
	opts := resumeOpts()
	opts.Context = ctx
	opts.Checkpoint = func(IterState) error {
		if iters++; iters == 3 {
			cancel()
		}
		return nil
	}
	res, err := ImplicitFiltering(sphere, []float64{10, 10}, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.History) != 3 {
		t.Fatalf("history has %d iterations after cancel at 3", len(res.History))
	}

	// Canceled before the first evaluation: zero work.
	evals := 0
	copts := resumeOpts()
	copts.Context = ctx
	if _, err := ImplicitFiltering(func(x []float64) float64 { evals++; return 0 }, []float64{1}, copts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if evals != 0 {
		t.Fatalf("canceled run evaluated %d points", evals)
	}
	if _, err := CompassSearch(sphere, []float64{1, 2}, copts); !errors.Is(err, context.Canceled) {
		t.Fatalf("CompassSearch err = %v, want context.Canceled", err)
	}
}

// TestCheckpointErrorAborts: a failing checkpoint (e.g. a poisoned
// journal writer) aborts the run with that error.
func TestCheckpointErrorAborts(t *testing.T) {
	boom := errors.New("journal full")
	iters := 0
	opts := resumeOpts()
	opts.Checkpoint = func(IterState) error {
		if iters++; iters == 2 {
			return boom
		}
		return nil
	}
	res, err := ImplicitFiltering(sphere, []float64{10, 10}, opts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the checkpoint error", err)
	}
	if len(res.History) != 2 {
		t.Fatalf("history has %d iterations after abort at 2", len(res.History))
	}
}
