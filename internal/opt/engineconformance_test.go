package opt

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/rng"
)

// The engine-conformance suite: every registered engine must honor the
// Engine contract — fixed-seed determinism, checkpoint/resume that
// re-evaluates nothing, context cancellation between evaluations, and
// batch==sequential equivalence. New engines get these properties
// checked for free by registering.

// conformanceCases pins per-engine params small enough for fast runs
// but large enough to exercise several checkpoint boundaries.
var conformanceCases = []struct {
	name   string
	params string
}{
	{"implicit_filtering", `{"iterations": 8, "directions": 4}`},
	{"nelder_mead", `{"iterations": 10}`},
	{"bayes", `{"iterations": 6, "candidates": 48, "init_rounds": 1, "max_observations": 24}`},
	{"ranker", `{"iterations": 6, "candidates": 32}`},
}

// confObjective is a deterministic multimodal function of the point
// alone, so values are independent of evaluation order — the property
// sim.Env's per-job seeding provides in the real flow.
func confObjective(x []float64) float64 {
	s := 0.0
	for i, v := range x {
		d := v - 60 + 5*float64(i)
		s -= d * d
	}
	return s / 100
}

func confEngine(t *testing.T, name, params string, seed uint64) Engine {
	t.Helper()
	e, err := New(name, EngineConfig{
		X0:  []float64{10, 80, 40},
		RNG: rng.New(seed),
	}, json.RawMessage(params))
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return e
}

func TestEngineConformanceDeterminism(t *testing.T) {
	for _, tc := range conformanceCases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() Result {
				res, err := Drive(confEngine(t, tc.name, tc.params, 17), DriveOptions{Objective: confObjective})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("two fixed-seed runs diverged:\n%+v\n%+v", a, b)
			}
			if a.Evals == 0 || len(a.History) == 0 {
				t.Fatalf("run did no work: %+v", a)
			}
		})
	}
}

func TestEngineConformanceCheckpointResume(t *testing.T) {
	for _, tc := range conformanceCases {
		t.Run(tc.name, func(t *testing.T) {
			var states []json.RawMessage
			want, err := Drive(confEngine(t, tc.name, tc.params, 23), DriveOptions{
				Objective: confObjective,
				Checkpoint: func(raw json.RawMessage) error {
					states = append(states, append(json.RawMessage(nil), raw...))
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(states) == 0 {
				t.Fatal("run emitted no checkpoints")
			}
			for k, st := range states {
				// The evals the checkpoint already paid for, read back
				// from a restored engine.
				probe := confEngine(t, tc.name, tc.params, 23)
				if err := probe.Restore(st); err != nil {
					t.Fatalf("restore checkpoint %d: %v", k, err)
				}
				paid := probe.Result().Evals

				evals := 0
				counting := func(x []float64) float64 { evals++; return confObjective(x) }
				got, err := Drive(confEngine(t, tc.name, tc.params, 23), DriveOptions{
					Objective: counting,
					Resume:    st,
				})
				if err != nil {
					t.Fatalf("resume from checkpoint %d: %v", k, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("resume from checkpoint %d diverged:\n got %+v\nwant %+v", k, got, want)
				}
				if evals != want.Evals-paid {
					t.Fatalf("resume from checkpoint %d re-evaluated: %d evals, want %d",
						k, evals, want.Evals-paid)
				}
			}
		})
	}
}

func TestEngineConformanceCancellation(t *testing.T) {
	for _, tc := range conformanceCases {
		t.Run(tc.name, func(t *testing.T) {
			// Canceled before the first evaluation: zero work.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			evals := 0
			_, err := Drive(confEngine(t, tc.name, tc.params, 5), DriveOptions{
				Objective: func(x []float64) float64 { evals++; return 0 },
				Context:   ctx,
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if evals != 0 {
				t.Fatalf("canceled run evaluated %d points", evals)
			}

			// Canceled mid-run (at the second checkpoint): the engine
			// returns its best-so-far partial result with the error.
			ctx2, cancel2 := context.WithCancel(context.Background())
			boundaries := 0
			res, err := Drive(confEngine(t, tc.name, tc.params, 5), DriveOptions{
				Objective: confObjective,
				Context:   ctx2,
				Checkpoint: func(json.RawMessage) error {
					if boundaries++; boundaries == 2 {
						cancel2()
					}
					return nil
				},
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("mid-run err = %v, want context.Canceled", err)
			}
			if res.Evals == 0 {
				t.Fatal("mid-run cancel returned an empty result")
			}
		})
	}
}

func TestEngineConformanceBatchSequentialEquivalence(t *testing.T) {
	for _, tc := range conformanceCases {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := Drive(confEngine(t, tc.name, tc.params, 31), DriveOptions{Objective: confObjective})
			if err != nil {
				t.Fatal(err)
			}
			bat, err := Drive(confEngine(t, tc.name, tc.params, 31), DriveOptions{
				Batch: func(points [][]float64) []float64 {
					out := make([]float64, len(points))
					for i, p := range points {
						out[i] = confObjective(p)
					}
					return out
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, bat) {
				t.Fatalf("batch and sequential runs diverged:\n seq %+v\n bat %+v", seq, bat)
			}
		})
	}
}

// TestEnginePriorWarmStart: engines that learn from the knowledge base
// must exploit a prior observation of the optimum region in round one —
// the warm ranker proposes the prior best point outright.
func TestEnginePriorWarmStart(t *testing.T) {
	priorBest := []float64{60, 55, 50}
	e, err := New("ranker", EngineConfig{
		X0:  []float64{10, 80, 40},
		RNG: rng.New(3),
		Prior: []PriorPoint{
			{X: []float64{5, 5, 5}, Value: -30},
			{X: priorBest, Value: -0.3},
		},
	}, json.RawMessage(`{"iterations": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := e.Propose(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pts {
		if reflect.DeepEqual(p, priorBest) {
			found = true
		}
	}
	if !found {
		t.Fatalf("warm ranker's first batch does not exploit the prior best: %v", pts)
	}
}

func TestEngineRegistryValidate(t *testing.T) {
	if err := Validate("", nil); err != nil {
		t.Fatalf("default engine invalid: %v", err)
	}
	if err := Validate("bayes", json.RawMessage(`{"iterations": 3}`)); err != nil {
		t.Fatalf("valid bayes params rejected: %v", err)
	}
	err := Validate("no_such_engine", nil)
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	for _, name := range EngineNames() {
		if !containsStr(err.Error(), name) {
			t.Fatalf("unknown-engine error %q does not list %q", err, name)
		}
	}
	if err := Validate("implicit_filtering", json.RawMessage(`{"dirctions": 4}`)); err == nil {
		t.Fatal("typoed param key accepted")
	}
	if err := Validate("nelder_mead", json.RawMessage(`{"directions": 4}`)); err == nil {
		t.Fatal("stencil-only param accepted by nelder_mead")
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestEngineNamesStable pins the registry contents: the four engines of
// the A/B study, no strays.
func TestEngineNamesStable(t *testing.T) {
	want := []string{"bayes", "implicit_filtering", "nelder_mead", "ranker"}
	if got := EngineNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("EngineNames() = %v, want %v", got, want)
	}
}
