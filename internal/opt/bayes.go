package opt

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/rng"
)

// BayesSpec holds the Bayesian-optimization engine's knobs: a Gaussian
// process surrogate with an RBF kernel over the normalized box and an
// expected-improvement acquisition, after NOVA's Bayes-optimized
// constrained randomization.
type BayesSpec struct {
	// Iterations bounds the proposal rounds (default 50).
	Iterations int `json:"iterations,omitempty"`
	// InitRounds is the number of purely random space-filling rounds
	// before the surrogate takes over (default 2).
	InitRounds int `json:"init_rounds,omitempty"`
	// Candidates is the acquisition pool size per round (default 256).
	Candidates int `json:"candidates,omitempty"`
	// MaxObservations caps the GP training set: when exceeded, the
	// global best plus the most recent observations are kept (default
	// 64 — the O(n^3) Cholesky stays trivial).
	MaxObservations int `json:"max_observations,omitempty"`
	// LengthScale is the RBF kernel length scale in normalized box
	// units (default 0.25).
	LengthScale float64 `json:"length_scale,omitempty"`
	// Noise is the observation-noise variance on the standardized
	// objective (default 0.1 — coverage scores are simulation averages
	// and genuinely noisy).
	Noise float64 `json:"noise,omitempty"`
	// Explore is the expected-improvement xi offset (default 0.01).
	Explore float64 `json:"explore,omitempty"`
}

func (s BayesSpec) withDefaults() BayesSpec {
	if s.Iterations <= 0 {
		s.Iterations = 50
	}
	if s.InitRounds <= 0 {
		s.InitRounds = 2
	}
	if s.Candidates <= 0 {
		s.Candidates = 256
	}
	if s.MaxObservations <= 0 {
		s.MaxObservations = 64
	}
	if s.LengthScale <= 0 {
		s.LengthScale = 0.25
	}
	if s.Noise <= 0 {
		s.Noise = 0.1
	}
	if s.Explore <= 0 {
		s.Explore = 0.01
	}
	return s
}

func init() {
	Register(EngineDef{
		Name: "bayes",
		Make: func(cfg EngineConfig, params json.RawMessage) (Engine, error) {
			var spec BayesSpec
			if err := decodeParams(params, &spec); err != nil {
				return nil, err
			}
			return newBayesEngine(cfg, spec), nil
		},
		Params: func() any { return new(BayesSpec) },
	})
}

type bayesEngine struct {
	spec        BayesSpec
	lo, hi      float64
	maxEvals    int
	targetValue float64
	rng         *rng.RNG
	rec         *obs.Recorder
	mEvals      *obs.Counter
	oo          optObs

	dim int
	x0  []float64

	// Training data: prior (knowledge-base) points first, then live
	// observations. Only live observations count toward evals/best.
	xs [][]float64
	ys []float64

	iter     int
	evals    int
	best     float64
	bestX    []float64
	history  []IterRecord
	done     bool
	pending  [][]float64
}

func newBayesEngine(cfg EngineConfig, spec BayesSpec) *bayesEngine {
	cfg = cfg.withDefaults()
	e := &bayesEngine{
		spec:        spec.withDefaults(),
		lo:          cfg.Lo,
		hi:          cfg.Hi,
		maxEvals:    cfg.MaxEvals,
		targetValue: cfg.TargetValue,
		rng:         cfg.RNG,
		rec:         cfg.Recorder,
		mEvals:      cfg.Recorder.Counter("opt.evals"),
		oo:          newOptObs(cfg.Recorder),
		dim:         len(cfg.X0),
		x0:          append([]float64(nil), cfg.X0...),
	}
	clampTo(e.x0, e.lo, e.hi)
	for _, p := range cfg.priorInDim(e.dim) {
		e.xs = append(e.xs, p.X)
		e.ys = append(e.ys, p.Value)
	}
	return e
}

func (e *bayesEngine) Name() string { return "bayes" }

func (e *bayesEngine) batchSize(n int) int {
	if n <= 0 {
		n = 4
	}
	if e.maxEvals > 0 {
		if rem := e.maxEvals - e.evals; n > rem {
			n = rem
		}
	}
	return n
}

// norm maps a point into the unit box.
func (e *bayesEngine) norm(x []float64) []float64 {
	w := e.hi - e.lo
	z := make([]float64, len(x))
	for i, v := range x {
		z[i] = (v - e.lo) / w
	}
	return z
}

func (e *bayesEngine) randomPoint() []float64 {
	x := make([]float64, e.dim)
	for i := range x {
		x[i] = e.lo + e.rng.Float64()*(e.hi-e.lo)
	}
	return x
}

// jitterAround draws a Gaussian perturbation of x at a tenth of the box
// width, clamped.
func (e *bayesEngine) jitterAround(x []float64) []float64 {
	scale := (e.hi - e.lo) / 10
	c := make([]float64, e.dim)
	for i := range c {
		c[i] = x[i] + e.rng.NormFloat64()*scale
	}
	clampTo(c, e.lo, e.hi)
	return c
}

func (e *bayesEngine) Propose(_ context.Context, n int) ([][]float64, error) {
	if e.pending != nil {
		return nil, fmt.Errorf("opt: %s: Propose before Observe", e.Name())
	}
	if e.done || e.iter >= e.spec.Iterations {
		e.done = true
		return nil, nil
	}
	batch := e.batchSize(n)
	if batch <= 0 {
		e.done = true
		return nil, nil
	}
	var pts [][]float64
	switch {
	case e.evals == 0:
		// Round 1 always pays for the caller's starting point (the
		// skeleton sampler's best) before exploring.
		pts = append(pts, append([]float64(nil), e.x0...))
		for len(pts) < batch {
			pts = append(pts, e.randomPoint())
		}
	case e.iter < e.spec.InitRounds || len(e.xs) < e.dim+2:
		for len(pts) < batch {
			pts = append(pts, e.randomPoint())
		}
	default:
		pts = e.acquire(batch)
	}
	e.pending = pts
	e.evals += len(pts)
	e.mEvals.Add(uint64(len(pts)))
	return pts, nil
}

// acquire fits the GP on the (capped) training set and returns the
// batch of candidates with the highest expected improvement.
func (e *bayesEngine) acquire(batch int) [][]float64 {
	xs, ys := e.trainingSet()
	gp := fitGP(xs, ys, e, e.spec)

	nCand := e.spec.Candidates
	cands := make([][]float64, 0, nCand)
	// Half uniform exploration, half local refinement around the best.
	for i := 0; i < nCand/2; i++ {
		cands = append(cands, e.randomPoint())
	}
	anchor := e.bestX
	if anchor == nil {
		anchor = e.x0
	}
	for len(cands) < nCand {
		cands = append(cands, e.jitterAround(anchor))
	}

	type scored struct {
		idx int
		ei  float64
	}
	ranked := make([]scored, len(cands))
	for i, c := range cands {
		mu, sigma := gp.predict(e.norm(c))
		ranked[i] = scored{idx: i, ei: expectedImprovement(mu, sigma, gp.yBest, e.spec.Explore)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].ei != ranked[j].ei {
			return ranked[i].ei > ranked[j].ei
		}
		return ranked[i].idx < ranked[j].idx
	})
	pts := make([][]float64, 0, batch)
	for _, r := range ranked {
		if len(pts) == batch {
			break
		}
		pts = append(pts, cands[r.idx])
	}
	return pts
}

// trainingSet caps the GP inputs at MaxObservations, keeping the global
// best plus the most recent observations.
func (e *bayesEngine) trainingSet() ([][]float64, []float64) {
	cap := e.spec.MaxObservations
	if len(e.xs) <= cap {
		return e.xs, e.ys
	}
	bestIdx := 0
	for i, y := range e.ys {
		if y > e.ys[bestIdx] {
			bestIdx = i
		}
	}
	start := len(e.xs) - (cap - 1)
	xs := make([][]float64, 0, cap)
	ys := make([]float64, 0, cap)
	if bestIdx < start {
		xs = append(xs, e.xs[bestIdx])
		ys = append(ys, e.ys[bestIdx])
	}
	for i := start; i < len(e.xs); i++ {
		xs = append(xs, e.xs[i])
		ys = append(ys, e.ys[i])
	}
	return xs, ys
}

func (e *bayesEngine) Observe(values []float64) error {
	if e.pending == nil {
		return fmt.Errorf("opt: %s: Observe without Propose", e.Name())
	}
	if len(values) != len(e.pending) {
		return fmt.Errorf("opt: %s: %d values for %d points", e.Name(), len(values), len(e.pending))
	}
	roundBest := math.Inf(-1)
	for i, v := range values {
		x := e.pending[i]
		e.xs = append(e.xs, x)
		e.ys = append(e.ys, v)
		if v > roundBest {
			roundBest = v
		}
		if e.bestX == nil || v > e.best {
			e.best = v
			e.bestX = append([]float64(nil), x...)
		}
	}
	e.pending = nil
	e.iter++
	rec := IterRecord{Iter: e.iter, Best: roundBest, Evals: e.evals}
	e.history = append(e.history, rec)
	e.oo.iter(e.Name(), rec, e.best)
	if e.targetValue > 0 && e.best >= e.targetValue {
		e.done = true
	}
	return nil
}

func (e *bayesEngine) Result() Result {
	return Result{X: e.bestX, Value: e.best, Evals: e.evals, History: e.history}
}

type bayesState struct {
	Iter     int          `json:"iter"`
	Evals    int          `json:"evals"`
	XS       [][]float64  `json:"xs"`
	YS       []float64    `json:"ys"`
	Best     float64      `json:"best"`
	BestX    []float64    `json:"best_x"`
	RNGState uint64       `json:"rng_state"`
	History  []IterRecord `json:"history"`
}

func (e *bayesEngine) Checkpoint() (json.RawMessage, error) {
	if e.iter == 0 || e.pending != nil {
		return nil, nil
	}
	return json.Marshal(bayesState{
		Iter: e.iter, Evals: e.evals, XS: e.xs, YS: e.ys,
		Best: e.best, BestX: e.bestX, RNGState: e.rng.State(), History: e.history,
	})
}

func (e *bayesEngine) Restore(state json.RawMessage) error {
	var st bayesState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	e.iter = st.Iter
	e.evals = st.Evals
	e.xs = st.XS
	e.ys = st.YS
	e.best = st.Best
	e.bestX = st.BestX
	e.rng = rng.New(st.RNGState)
	e.history = append(e.history[:0], st.History...)
	e.done = e.targetValue > 0 && e.bestX != nil && e.best >= e.targetValue
	return nil
}

// gpModel is a fitted zero-mean GP on standardized observations.
type gpModel struct {
	zs      [][]float64 // normalized training inputs
	chol    []float64   // lower Cholesky factor of K + noise*I
	alpha   []float64   // (K + noise*I)^-1 y~
	yMean   float64
	yStd    float64
	yBest   float64 // best standardized training value
	ell     float64
	noise   float64
}

func fitGP(xs [][]float64, ys []float64, e *bayesEngine, spec BayesSpec) *gpModel {
	n := len(xs)
	m := &gpModel{zs: make([][]float64, n), ell: spec.LengthScale, noise: spec.Noise}
	for i, x := range xs {
		m.zs[i] = e.norm(x)
	}
	for _, y := range ys {
		m.yMean += y
	}
	m.yMean /= float64(n)
	for _, y := range ys {
		d := y - m.yMean
		m.yStd += d * d
	}
	m.yStd = math.Sqrt(m.yStd / float64(n))
	if m.yStd == 0 {
		m.yStd = 1
	}
	yt := make([]float64, n)
	m.yBest = math.Inf(-1)
	for i, y := range ys {
		yt[i] = (y - m.yMean) / m.yStd
		if yt[i] > m.yBest {
			m.yBest = yt[i]
		}
	}
	k := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rbf(m.zs[i], m.zs[j], m.ell)
			if i == j {
				v += m.noise
			}
			k[i*n+j] = v
			k[j*n+i] = v
		}
	}
	cholFactor(k, n)
	m.chol = k
	m.alpha = cholSolve(k, n, yt)
	return m
}

// predict returns the standardized posterior mean and stddev at z.
func (m *gpModel) predict(z []float64) (mu, sigma float64) {
	n := len(m.zs)
	kv := make([]float64, n)
	for i, zi := range m.zs {
		kv[i] = rbf(z, zi, m.ell)
	}
	for i := 0; i < n; i++ {
		mu += kv[i] * m.alpha[i]
	}
	v := forwardSolve(m.chol, n, kv)
	varZ := 1 + m.noise
	for _, vi := range v {
		varZ -= vi * vi
	}
	if varZ < 1e-12 {
		varZ = 1e-12
	}
	return mu, math.Sqrt(varZ)
}

func rbf(a, b []float64, ell float64) float64 {
	d2 := 0.0
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * ell * ell))
}

// expectedImprovement is the EI acquisition for maximization on the
// standardized scale.
func expectedImprovement(mu, sigma, yBest, xi float64) float64 {
	d := mu - yBest - xi
	u := d / sigma
	return d*stdNormCDF(u) + sigma*stdNormPDF(u)
}

func stdNormPDF(u float64) float64 { return math.Exp(-u*u/2) / math.Sqrt(2*math.Pi) }
func stdNormCDF(u float64) float64 { return 0.5 * math.Erfc(-u/math.Sqrt2) }

// cholFactor computes the lower Cholesky factor of the SPD matrix a
// (n×n row-major) in place, with a tiny diagonal floor for numerical
// safety — the matrices here always carry an explicit noise/ridge term.
func cholFactor(a []float64, n int) {
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d < 1e-12 {
			d = 1e-12
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = s / d
		}
		for i := 0; i < j; i++ {
			a[i*n+j] = 0
		}
	}
}

// forwardSolve solves L v = b for lower-triangular L.
func forwardSolve(l []float64, n int, b []float64) []float64 {
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * v[k]
		}
		v[i] = s / l[i*n+i]
	}
	return v
}

// cholSolve solves L L^T x = b.
func cholSolve(l []float64, n int, b []float64) []float64 {
	v := forwardSolve(l, n, b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := v[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
	return x
}
