package opt

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/obs"
	"repro/internal/rng"
)

// IFSpec holds implicit filtering's solver-specific knobs — the
// stencil fields that used to live on the shared Options struct.
type IFSpec struct {
	// Directions is the number of random probe directions per iteration
	// — the paper's n (default 10).
	Directions int `json:"directions,omitempty"`
	// Iterations bounds the iteration count (default 50).
	Iterations int `json:"iterations,omitempty"`
	// InitialStep is the initial stencil size h (default: a quarter of
	// the box width).
	InitialStep float64 `json:"initial_step,omitempty"`
	// MinStep stops the run when the stencil shrinks below it (default:
	// 1/64 of the box width).
	MinStep float64 `json:"min_step,omitempty"`
	// NoResampleCenter disables the paper's per-iteration center
	// re-evaluation (ablations only).
	NoResampleCenter bool `json:"no_resample_center,omitempty"`
}

func (s IFSpec) withDefaults(lo, hi float64) IFSpec {
	width := hi - lo
	if s.Directions <= 0 {
		s.Directions = 10
	}
	if s.InitialStep <= 0 {
		s.InitialStep = width / 4
	}
	if s.MinStep <= 0 {
		s.MinStep = width / 64
	}
	if s.Iterations <= 0 {
		s.Iterations = 50
	}
	return s
}

func init() {
	Register(EngineDef{
		Name: DefaultEngine,
		Make: func(cfg EngineConfig, params json.RawMessage) (Engine, error) {
			var spec IFSpec
			if err := decodeParams(params, &spec); err != nil {
				return nil, err
			}
			return newIFEngine(cfg, spec), nil
		},
		Params: func() any { return new(IFSpec) },
	})
}

const (
	stencilFresh     = iota // next proposal is the initial center evaluation
	stencilIterating        // alternating full iterations
	stencilDone
)

// ifEngine is the paper's Algorithm 1 as a Propose/Observe state
// machine. Each iteration proposes one batch [center?, probe1..probeN]
// — the center resample first, then the stencil probes. Because the
// probe directions come from the engine's own RNG and the probes are
// computed from the previous iteration's center, this combined batch
// reaches a deterministic batch objective in exactly the order the
// legacy two-call form (resample, then probes) did, which is what keeps
// the default flow's reports byte-identical across the refactor.
type ifEngine struct {
	spec        IFSpec
	lo, hi      float64
	maxEvals    int
	targetValue float64
	rng         *rng.RNG
	rec         *obs.Recorder
	mEvals      *obs.Counter
	oo          optObs

	dim int
	x0  []float64

	phase       int
	center      []float64
	best        float64
	h           float64
	overallBest float64
	overallX    []float64
	evals       int
	iter        int // completed iterations
	history     []IterRecord

	pending       [][]float64 // points of the outstanding Propose, nil between rounds
	pendingProbes [][]float64 // the probe suffix of pending
	pendingCenter bool        // pending[0] is the center resample
	sp            *obs.Span
}

func newIFEngine(cfg EngineConfig, spec IFSpec) *ifEngine {
	cfg = cfg.withDefaults()
	spec = spec.withDefaults(cfg.Lo, cfg.Hi)
	e := &ifEngine{
		spec:        spec,
		lo:          cfg.Lo,
		hi:          cfg.Hi,
		maxEvals:    cfg.MaxEvals,
		targetValue: cfg.TargetValue,
		rng:         cfg.RNG,
		rec:         cfg.Recorder,
		mEvals:      cfg.Recorder.Counter("opt.evals"),
		oo:          newOptObs(cfg.Recorder),
		dim:         len(cfg.X0),
		x0:          append([]float64(nil), cfg.X0...),
		h:           spec.InitialStep,
		history:     make([]IterRecord, 0, historyCap(spec.Iterations)),
	}
	clampTo(e.x0, e.lo, e.hi)
	return e
}

func (e *ifEngine) Name() string { return DefaultEngine }

// remaining mirrors evaluator.remaining: evals left under the budget,
// with 0 meaning unlimited.
func (e *ifEngine) remaining() int {
	if e.maxEvals <= 0 {
		return 1 << 30
	}
	return e.maxEvals - e.evals
}

func (e *ifEngine) Propose(ctx context.Context, _ int) ([][]float64, error) {
	if e.pending != nil {
		return nil, fmt.Errorf("opt: %s: Propose before Observe", e.Name())
	}
	switch e.phase {
	case stencilDone:
		return nil, nil
	case stencilFresh:
		e.pending = [][]float64{append([]float64(nil), e.x0...)}
		e.pendingCenter = false
		e.evals++
		e.mEvals.Add(1)
		return e.pending, nil
	}
	if e.iter >= e.spec.Iterations || e.remaining() <= 0 {
		e.phase = stencilDone
		return nil, nil
	}
	e.sp = e.rec.Span("opt", "iteration")
	pts := make([][]float64, 0, e.spec.Directions+1)
	e.pendingCenter = !e.spec.NoResampleCenter
	if e.pendingCenter {
		pts = append(pts, append([]float64(nil), e.center...))
	}
	// The legacy loop charged the center resample before clamping the
	// probe count to the remaining budget; mirror that arithmetic.
	nProbes := e.spec.Directions
	if e.maxEvals > 0 {
		if rem := e.maxEvals - e.evals - len(pts); nProbes > rem {
			nProbes = rem
		}
	}
	if nProbes < 0 {
		nProbes = 0
	}
	probes := make([][]float64, 0, nProbes)
	for d := 0; d < nProbes; d++ {
		dir := randomDirection(e.rng, e.dim)
		cand := make([]float64, e.dim)
		for i := range cand {
			cand[i] = e.center[i] + dir[i]*e.h
		}
		clampTo(cand, e.lo, e.hi)
		probes = append(probes, cand)
	}
	e.pendingProbes = probes
	pts = append(pts, probes...)
	e.pending = pts
	e.evals += len(pts)
	e.mEvals.Add(uint64(len(pts)))
	return pts, nil
}

func (e *ifEngine) Observe(values []float64) error {
	if e.pending == nil {
		return fmt.Errorf("opt: %s: Observe without Propose", e.Name())
	}
	if len(values) != len(e.pending) {
		return fmt.Errorf("opt: %s: %d values for %d points", e.Name(), len(values), len(e.pending))
	}
	defer func() { e.pending, e.pendingProbes = nil, nil }()

	if e.phase == stencilFresh {
		e.center = e.pending[0]
		e.best = values[0]
		e.overallBest = e.best
		e.overallX = append([]float64(nil), e.center...)
		e.phase = stencilIterating
		return nil
	}

	if e.pendingCenter {
		e.best = values[0]
		e.oo.resamples.Inc()
		values = values[1:]
	}
	iterBest := e.best
	nextCenter := e.center
	moved := false
	for d, val := range values {
		if val > iterBest {
			iterBest = val
			nextCenter = e.pendingProbes[d]
			moved = true
		}
	}
	if moved {
		e.center = nextCenter
		e.best = iterBest
	} else {
		e.h /= 2
		e.oo.halvings.Inc()
	}
	if iterBest > e.overallBest {
		e.overallBest = iterBest
		e.overallX = append([]float64(nil), nextCenter...)
	}
	e.iter++
	rec := IterRecord{Iter: e.iter, Best: iterBest, Step: e.h, Moved: moved, Evals: e.evals}
	e.history = append(e.history, rec)
	if e.sp != nil {
		e.sp.SetArg("iter", e.iter)
		e.sp.SetArg("best", iterBest)
		e.sp.SetArg("moved", moved)
		e.sp.End()
		e.sp = nil
	}
	e.oo.iter(e.Name(), rec, e.overallBest)
	if (e.targetValue > 0 && e.overallBest >= e.targetValue) || e.h < e.spec.MinStep {
		e.phase = stencilDone
	}
	return nil
}

func (e *ifEngine) Result() Result {
	return Result{X: e.overallX, Value: e.overallBest, Evals: e.evals, History: e.history}
}

// state snapshots the run as the legacy IterState, valid after any
// completed iteration.
func (e *ifEngine) state() IterState {
	return IterState{
		Iter:        e.iter,
		Center:      append([]float64(nil), e.center...),
		Best:        e.best,
		Step:        e.h,
		OverallBest: e.overallBest,
		OverallX:    append([]float64(nil), e.overallX...),
		Evals:       e.evals,
		RNGState:    e.rng.State(),
		History:     append([]IterRecord(nil), e.history...),
	}
}

func (e *ifEngine) Checkpoint() (json.RawMessage, error) {
	// Stable boundaries are completed iterations — the initial center
	// evaluation is not one (matching the legacy once-per-iteration
	// checkpoint contract), so a kill before iteration 1 re-pays only
	// that single eval on resume.
	if e.iter == 0 || e.pending != nil {
		return nil, nil
	}
	return json.Marshal(e.state())
}

func (e *ifEngine) Restore(state json.RawMessage) error {
	var st IterState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	e.restoreState(st)
	return nil
}

// restoreState re-enters the run exactly as the legacy Resume path did:
// trajectory state from the checkpoint, RNG reseeded from the raw
// state, and the stop conditions the uninterrupted run checked right
// after that iteration re-applied so a finished run stays finished.
func (e *ifEngine) restoreState(st IterState) {
	e.center = append([]float64(nil), st.Center...)
	e.best = st.Best
	e.h = st.Step
	e.overallBest = st.OverallBest
	e.overallX = append([]float64(nil), st.OverallX...)
	e.evals = st.Evals
	e.iter = st.Iter
	e.history = append(e.history[:0], st.History...)
	e.rng = rng.New(st.RNGState)
	e.phase = stencilIterating
	if (e.targetValue > 0 && e.overallBest >= e.targetValue) || e.h < e.spec.MinStep {
		e.phase = stencilDone
	}
}
