package opt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// sphere is a smooth unimodal objective peaking at (70, 70, ..., 70)
// with value 0; elsewhere negative.
func sphere(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		d := v - 70
		s -= d * d
	}
	return s
}

// noisy wraps an objective with additive noise of the given amplitude.
func noisy(f Objective, amplitude float64, seed uint64) Objective {
	r := rng.New(seed)
	return func(x []float64) float64 {
		return f(x) + (r.Float64()*2-1)*amplitude
	}
}

func TestImplicitFilteringConvergesNoiseless(t *testing.T) {
	x0 := []float64{10, 10, 10}
	res, err := ImplicitFiltering(sphere, x0, Options{
		Directions:    15,
		MaxIterations: 120,
		MinStep:       0.01,
		RNG:           rng.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.X {
		if math.Abs(v-70) > 5 {
			t.Fatalf("x[%d] = %v, want ~70 (value %v)", i, v, res.Value)
		}
	}
	if res.Value < -30 {
		t.Fatalf("final value = %v", res.Value)
	}
}

func TestImplicitFilteringImprovesUnderNoise(t *testing.T) {
	x0 := []float64{5, 5, 5, 5}
	start := sphere(x0)
	res, err := ImplicitFiltering(noisy(sphere, 200, 7), x0, Options{
		Directions:    20,
		MaxIterations: 80,
		RNG:           rng.New(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sphere(res.X); got < start+4000 {
		t.Fatalf("true value at result = %v, start = %v: no progress under noise", got, start)
	}
}

func TestImplicitFilteringNeverWorseThanStartNoiseless(t *testing.T) {
	// Property: with a deterministic objective, the returned value is at
	// least the starting value (the algorithm only moves on improvement).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		dim := 1 + r.Intn(6)
		x0 := make([]float64, dim)
		for i := range x0 {
			x0[i] = r.Float64() * 100
		}
		res, err := ImplicitFiltering(sphere, x0, Options{
			Directions:    6,
			MaxIterations: 20,
			RNG:           rng.New(seed + 1),
		})
		if err != nil {
			return false
		}
		return res.Value >= sphere(x0)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestImplicitFilteringRespectsBox(t *testing.T) {
	// Objective rewards leaving the box; the optimizer must clamp.
	runaway := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v
		}
		return s
	}
	res, err := ImplicitFiltering(runaway, []float64{50, 50}, Options{
		Directions:    10,
		MaxIterations: 60,
		Lo:            0,
		Hi:            100,
		RNG:           rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.X {
		if v < 0 || v > 100 {
			t.Fatalf("result left the box: %v", res.X)
		}
	}
	if res.Value < 180 {
		t.Fatalf("should reach near the corner; value = %v", res.Value)
	}
}

func TestImplicitFilteringStencilHalvesWhenStuck(t *testing.T) {
	flat := func(x []float64) float64 { return 0 }
	res, err := ImplicitFiltering(flat, []float64{50}, Options{
		Directions:    4,
		MaxIterations: 100,
		InitialStep:   32,
		MinStep:       1,
		RNG:           rng.New(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 32 -> 16 -> 8 -> 4 -> 2 -> 1 -> 0.5 < 1: six iterations.
	if len(res.History) != 6 {
		t.Fatalf("iterations = %d, want 6 (history %+v)", len(res.History), res.History)
	}
	for _, h := range res.History {
		if h.Moved {
			t.Fatal("flat objective must never move the center")
		}
	}
}

func TestImplicitFilteringTargetValueStops(t *testing.T) {
	res, err := ImplicitFiltering(func(x []float64) float64 { return 42 }, []float64{1}, Options{
		Directions:    4,
		MaxIterations: 100,
		TargetValue:   40,
		RNG:           rng.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 1 {
		t.Fatalf("should stop after first iteration, ran %d", len(res.History))
	}
}

func TestImplicitFilteringMaxEvals(t *testing.T) {
	calls := 0
	f := func(x []float64) float64 { calls++; return 0 }
	_, err := ImplicitFiltering(f, []float64{1, 2}, Options{
		Directions:    10,
		MaxIterations: 1000,
		MaxEvals:      37,
		MinStep:       1e-9,
		RNG:           rng.New(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls > 38 { // one overshoot allowed at iteration boundary
		t.Fatalf("calls = %d, budget 37", calls)
	}
}

func TestImplicitFilteringEmptyStart(t *testing.T) {
	if _, err := ImplicitFiltering(sphere, nil, Options{}); err == nil {
		t.Fatal("empty start should fail")
	}
}

func TestImplicitFilteringHistoryMonotoneEvals(t *testing.T) {
	res, _ := ImplicitFiltering(noisy(sphere, 50, 1), []float64{20, 20}, Options{
		Directions:    8,
		MaxIterations: 30,
		RNG:           rng.New(7),
	})
	prev := 0
	for _, h := range res.History {
		if h.Evals <= prev {
			t.Fatalf("evals not increasing: %+v", res.History)
		}
		prev = h.Evals
	}
}

func TestRandomSearchFindsDecentPoint(t *testing.T) {
	res, err := RandomSearch(sphere, 2, Options{MaxEvals: 400, RNG: rng.New(8)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 400 {
		t.Fatalf("evals = %d", res.Evals)
	}
	if res.Value < -2000 {
		t.Fatalf("random search value = %v, too poor for 400 samples", res.Value)
	}
	for _, v := range res.X {
		if v < 0 || v > 100 {
			t.Fatalf("sample outside box: %v", res.X)
		}
	}
}

func TestRandomSearchErrors(t *testing.T) {
	if _, err := RandomSearch(sphere, 0, Options{}); err == nil {
		t.Fatal("dim 0 should fail")
	}
}

func TestRandomSearchTargetStops(t *testing.T) {
	res, err := RandomSearch(func(x []float64) float64 { return 1 }, 2, Options{
		MaxEvals: 100, TargetValue: 0.5, RNG: rng.New(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 1 {
		t.Fatalf("evals = %d, want 1", res.Evals)
	}
}

func TestCompassSearchConverges(t *testing.T) {
	res, err := CompassSearch(sphere, []float64{10, 90}, Options{
		MaxIterations: 100,
		MinStep:       0.01,
		RNG:           rng.New(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.X {
		if math.Abs(v-70) > 2 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
}

func TestCompassSearchEmptyStart(t *testing.T) {
	if _, err := CompassSearch(sphere, nil, Options{}); err == nil {
		t.Fatal("empty start should fail")
	}
}

func TestNelderMeadConverges(t *testing.T) {
	res, err := NelderMead(sphere, []float64{20, 20}, Options{
		MaxIterations: 200,
		InitialStep:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.X {
		if math.Abs(v-70) > 3 {
			t.Fatalf("x[%d] = %v (value %v)", i, v, res.Value)
		}
	}
}

func TestNelderMeadRespectsBox(t *testing.T) {
	runaway := func(x []float64) float64 { return x[0] + x[1] }
	res, err := NelderMead(runaway, []float64{90, 90}, Options{
		MaxIterations: 100,
		InitialStep:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.X {
		if v < 0 || v > 100 {
			t.Fatalf("left the box: %v", res.X)
		}
	}
}

func TestNelderMeadEmptyStart(t *testing.T) {
	if _, err := NelderMead(sphere, nil, Options{}); err == nil {
		t.Fatal("empty start should fail")
	}
}

func TestImplicitFilteringBeatsNelderMeadUnderHeavyNoise(t *testing.T) {
	// The design rationale for implicit filtering (paper Section IV-E):
	// under heavy dynamic noise it keeps making progress where the
	// simplex method gets dragged around by lucky samples. Compare true
	// objective values at the returned points under an equal budget.
	var ifSum, nmSum float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		seed := uint64(100 + trial)
		x0 := []float64{10, 10, 10}
		budget := 600
		fi := noisy(sphere, 400, seed)
		resIF, err := ImplicitFiltering(fi, x0, Options{
			Directions: 15, MaxIterations: 1000, MaxEvals: budget,
			MinStep: 1e-9, RNG: rng.New(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		fn := noisy(sphere, 400, seed+1)
		resNM, err := NelderMead(fn, x0, Options{
			MaxIterations: 1000, MaxEvals: budget, InitialStep: 25,
		})
		if err != nil {
			t.Fatal(err)
		}
		ifSum += sphere(resIF.X)
		nmSum += sphere(resNM.X)
	}
	if ifSum <= nmSum-1 {
		t.Fatalf("implicit filtering (%v) should not lose clearly to Nelder-Mead (%v) under heavy noise",
			ifSum/trials, nmSum/trials)
	}
	t.Logf("avg true value: implicit filtering %.1f, nelder-mead %.1f", ifSum/trials, nmSum/trials)
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Directions != 10 || o.Hi != 100 || o.InitialStep != 25 || o.MaxIterations != 50 {
		t.Fatalf("defaults = %+v", o)
	}
	if o.RNG == nil {
		t.Fatal("default RNG missing")
	}
}

func TestRandomDirectionUnitNorm(t *testing.T) {
	r := rng.New(11)
	for i := 0; i < 100; i++ {
		d := randomDirection(r, 5)
		n := 0.0
		for _, v := range d {
			n += v * v
		}
		if math.Abs(math.Sqrt(n)-1) > 1e-9 {
			t.Fatalf("direction norm = %v", math.Sqrt(n))
		}
	}
}
