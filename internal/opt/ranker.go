package opt

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/rng"
)

// RankerSpec holds the supervised test-selection engine's knobs: an
// online ridge regression that predicts the objective (novel coverage
// per candidate) from past hit statistics, after Masamba & Eder. The
// cross-campaign knowledge base's harvested (weights, score) pairs are
// folded into the model before the first proposal, so a warm daemon
// ranks candidates usefully from round one.
type RankerSpec struct {
	// Iterations bounds the proposal rounds (default 50).
	Iterations int `json:"iterations,omitempty"`
	// Candidates is the scored pool size per round (default 128).
	Candidates int `json:"candidates,omitempty"`
	// Explore is the fraction of each batch drawn uniformly at random
	// instead of by predicted rank (default 0.25).
	Explore float64 `json:"explore,omitempty"`
	// Ridge is the L2 regularizer on the regression weights (default 1).
	Ridge float64 `json:"ridge,omitempty"`
}

func (s RankerSpec) withDefaults() RankerSpec {
	if s.Iterations <= 0 {
		s.Iterations = 50
	}
	if s.Candidates <= 0 {
		s.Candidates = 128
	}
	if s.Explore <= 0 || s.Explore >= 1 {
		s.Explore = 0.25
	}
	if s.Ridge <= 0 {
		s.Ridge = 1
	}
	return s
}

func init() {
	Register(EngineDef{
		Name: "ranker",
		Make: func(cfg EngineConfig, params json.RawMessage) (Engine, error) {
			var spec RankerSpec
			if err := decodeParams(params, &spec); err != nil {
				return nil, err
			}
			return newRankerEngine(cfg, spec), nil
		},
		Params: func() any { return new(RankerSpec) },
	})
}

type rankerEngine struct {
	spec        RankerSpec
	lo, hi      float64
	maxEvals    int
	targetValue float64
	rng         *rng.RNG
	rec         *obs.Recorder
	mEvals      *obs.Counter
	oo          optObs

	dim  int
	nfea int // 1 + 2*dim: bias, linear, quadratic per coordinate
	x0   []float64

	// Ridge-regression normal equations, accumulated online:
	// a = Ridge*I + sum phi phi^T, b = sum y*phi.
	a []float64
	b []float64

	priorBest []float64 // best knowledge-base point, exploited directly

	iter    int
	evals   int
	best    float64
	bestX   []float64
	history []IterRecord
	done    bool
	pending [][]float64
}

func newRankerEngine(cfg EngineConfig, spec RankerSpec) *rankerEngine {
	cfg = cfg.withDefaults()
	spec = spec.withDefaults()
	dim := len(cfg.X0)
	e := &rankerEngine{
		spec:        spec,
		lo:          cfg.Lo,
		hi:          cfg.Hi,
		maxEvals:    cfg.MaxEvals,
		targetValue: cfg.TargetValue,
		rng:         cfg.RNG,
		rec:         cfg.Recorder,
		mEvals:      cfg.Recorder.Counter("opt.evals"),
		oo:          newOptObs(cfg.Recorder),
		dim:         dim,
		nfea:        1 + 2*dim,
		x0:          append([]float64(nil), cfg.X0...),
	}
	clampTo(e.x0, e.lo, e.hi)
	e.a = make([]float64, e.nfea*e.nfea)
	e.b = make([]float64, e.nfea)
	for i := 0; i < e.nfea; i++ {
		e.a[i*e.nfea+i] = spec.Ridge
	}
	priorBestVal := math.Inf(-1)
	for _, p := range cfg.priorInDim(dim) {
		e.learn(p.X, p.Value)
		if p.Value > priorBestVal {
			priorBestVal = p.Value
			e.priorBest = p.X
		}
	}
	return e
}

func (e *rankerEngine) Name() string { return "ranker" }

// features maps a point to [1, z_i..., z_i^2...] over the unit box.
func (e *rankerEngine) features(x []float64) []float64 {
	w := e.hi - e.lo
	phi := make([]float64, e.nfea)
	phi[0] = 1
	for i, v := range x {
		z := (v - e.lo) / w
		phi[1+i] = z
		phi[1+e.dim+i] = z * z
	}
	return phi
}

// learn folds one (point, value) pair into the normal equations.
func (e *rankerEngine) learn(x []float64, y float64) {
	phi := e.features(x)
	for i := 0; i < e.nfea; i++ {
		for j := 0; j < e.nfea; j++ {
			e.a[i*e.nfea+j] += phi[i] * phi[j]
		}
		e.b[i] += y * phi[i]
	}
}

// weights solves the normal equations for the current model.
func (e *rankerEngine) weights() []float64 {
	l := append([]float64(nil), e.a...)
	cholFactor(l, e.nfea)
	return cholSolve(l, e.nfea, e.b)
}

func (e *rankerEngine) predict(w, x []float64) float64 {
	phi := e.features(x)
	s := 0.0
	for i, wi := range w {
		s += wi * phi[i]
	}
	return s
}

func (e *rankerEngine) randomPoint() []float64 {
	x := make([]float64, e.dim)
	for i := range x {
		x[i] = e.lo + e.rng.Float64()*(e.hi-e.lo)
	}
	return x
}

func (e *rankerEngine) jitterAround(x []float64) []float64 {
	scale := (e.hi - e.lo) / 10
	c := make([]float64, e.dim)
	for i := range c {
		c[i] = x[i] + e.rng.NormFloat64()*scale
	}
	clampTo(c, e.lo, e.hi)
	return c
}

func (e *rankerEngine) Propose(_ context.Context, n int) ([][]float64, error) {
	if e.pending != nil {
		return nil, fmt.Errorf("opt: %s: Propose before Observe", e.Name())
	}
	if e.done || e.iter >= e.spec.Iterations {
		e.done = true
		return nil, nil
	}
	batch := n
	if batch <= 0 {
		batch = 4
	}
	if e.maxEvals > 0 {
		if rem := e.maxEvals - e.evals; batch > rem {
			batch = rem
		}
	}
	if batch <= 0 {
		e.done = true
		return nil, nil
	}

	pts := make([][]float64, 0, batch)
	if e.evals == 0 {
		// Round 1 pays for the caller's starting point first, and — the
		// warm-start payoff — the knowledge base's best point next.
		pts = append(pts, append([]float64(nil), e.x0...))
		if e.priorBest != nil && len(pts) < batch {
			pts = append(pts, append([]float64(nil), e.priorBest...))
		}
	}
	nExplore := int(float64(batch) * e.spec.Explore)
	nRank := batch - len(pts) - nExplore
	if nRank < 0 {
		nRank = 0
	}
	if nRank > 0 {
		pts = append(pts, e.rank(nRank)...)
	}
	for len(pts) < batch {
		pts = append(pts, e.randomPoint())
	}
	e.pending = pts
	e.evals += len(pts)
	e.mEvals.Add(uint64(len(pts)))
	return pts, nil
}

// rank scores a candidate pool with the regression model and returns
// the top n by predicted value (ties broken by candidate index, so the
// selection is deterministic).
func (e *rankerEngine) rank(n int) [][]float64 {
	cands := make([][]float64, 0, e.spec.Candidates)
	for _, anchor := range [][]float64{e.bestX, e.priorBest} {
		if anchor == nil {
			continue
		}
		cands = append(cands, append([]float64(nil), anchor...))
		for i := 0; i < e.spec.Candidates/8; i++ {
			cands = append(cands, e.jitterAround(anchor))
		}
	}
	if len(cands) == 0 {
		for i := 0; i < e.spec.Candidates/8; i++ {
			cands = append(cands, e.jitterAround(e.x0))
		}
	}
	for len(cands) < e.spec.Candidates {
		cands = append(cands, e.randomPoint())
	}
	w := e.weights()
	type scored struct {
		idx   int
		score float64
	}
	ranked := make([]scored, len(cands))
	for i, c := range cands {
		ranked[i] = scored{idx: i, score: e.predict(w, c)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].idx < ranked[j].idx
	})
	pts := make([][]float64, 0, n)
	for _, r := range ranked {
		if len(pts) == n {
			break
		}
		pts = append(pts, cands[r.idx])
	}
	return pts
}

func (e *rankerEngine) Observe(values []float64) error {
	if e.pending == nil {
		return fmt.Errorf("opt: %s: Observe without Propose", e.Name())
	}
	if len(values) != len(e.pending) {
		return fmt.Errorf("opt: %s: %d values for %d points", e.Name(), len(values), len(e.pending))
	}
	roundBest := math.Inf(-1)
	for i, v := range values {
		x := e.pending[i]
		e.learn(x, v)
		if v > roundBest {
			roundBest = v
		}
		if e.bestX == nil || v > e.best {
			e.best = v
			e.bestX = append([]float64(nil), x...)
		}
	}
	e.pending = nil
	e.iter++
	rec := IterRecord{Iter: e.iter, Best: roundBest, Evals: e.evals}
	e.history = append(e.history, rec)
	e.oo.iter(e.Name(), rec, e.best)
	if e.targetValue > 0 && e.best >= e.targetValue {
		e.done = true
	}
	return nil
}

func (e *rankerEngine) Result() Result {
	return Result{X: e.bestX, Value: e.best, Evals: e.evals, History: e.history}
}

type rankerState struct {
	Iter     int          `json:"iter"`
	Evals    int          `json:"evals"`
	A        []float64    `json:"a"`
	B        []float64    `json:"b"`
	Best     float64      `json:"best"`
	BestX    []float64    `json:"best_x"`
	RNGState uint64       `json:"rng_state"`
	History  []IterRecord `json:"history"`
}

func (e *rankerEngine) Checkpoint() (json.RawMessage, error) {
	if e.iter == 0 || e.pending != nil {
		return nil, nil
	}
	return json.Marshal(rankerState{
		Iter: e.iter, Evals: e.evals, A: e.a, B: e.b,
		Best: e.best, BestX: e.bestX, RNGState: e.rng.State(), History: e.history,
	})
}

func (e *rankerEngine) Restore(state json.RawMessage) error {
	var st rankerState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	if len(st.A) != e.nfea*e.nfea || len(st.B) != e.nfea {
		return fmt.Errorf("opt: %s: checkpoint model size mismatch", e.Name())
	}
	e.iter = st.Iter
	e.evals = st.Evals
	e.a = st.A
	e.b = st.B
	e.best = st.Best
	e.bestX = st.BestX
	e.rng = rng.New(st.RNGState)
	e.history = append(e.history[:0], st.History...)
	e.done = e.targetValue > 0 && e.bestX != nil && e.best >= e.targetValue
	return nil
}
