package opt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
)

func TestImplicitFilteringObsCounters(t *testing.T) {
	var progress bytes.Buffer
	rec := &obs.Recorder{
		Metrics:  obs.NewRegistry(),
		Trace:    obs.NewTracer(),
		Progress: obs.NewProgress(&progress),
	}
	res, err := ImplicitFiltering(sphere, []float64{5, 5}, Options{
		Directions: 4, MaxIterations: 12, RNG: rng.New(3), Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := rec.Metrics.Snapshot()
	if got := snap.Counters["opt.evals"]; got != uint64(res.Evals) {
		t.Fatalf("opt.evals = %d, want %d", got, res.Evals)
	}
	if got := snap.Counters["opt.iterations"]; got != uint64(len(res.History)) {
		t.Fatalf("opt.iterations = %d, want %d", got, len(res.History))
	}
	halvings := uint64(0)
	for _, h := range res.History {
		if !h.Moved {
			halvings++
		}
	}
	if got := snap.Counters["opt.step_halvings"]; got != halvings {
		t.Fatalf("opt.step_halvings = %d, want %d", got, halvings)
	}
	// The center is resampled once per completed iteration (default).
	if got := snap.Counters["opt.center_resamples"]; got != uint64(len(res.History)) {
		t.Fatalf("opt.center_resamples = %d, want %d", got, len(res.History))
	}

	// One opt span per iteration.
	spans := 0
	for _, ev := range rec.Trace.Events() {
		if ev.Cat == "opt" && ev.Name == "iteration" {
			spans++
		}
	}
	if spans != len(res.History) {
		t.Fatalf("iteration spans = %d, want %d", spans, len(res.History))
	}

	// One opt_iter JSONL event per iteration, best_so_far nondecreasing.
	lines := strings.Split(strings.TrimSpace(progress.String()), "\n")
	if len(lines) != len(res.History) {
		t.Fatalf("opt_iter lines = %d, want %d", len(lines), len(res.History))
	}
	prev := -1e18
	for i, line := range lines {
		var ev struct {
			Event     string  `json:"event"`
			Method    string  `json:"method"`
			Iter      int     `json:"iter"`
			BestSoFar float64 `json:"best_so_far"`
			Evals     int     `json:"evals"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if ev.Event != "opt_iter" || ev.Method != "implicit_filtering" {
			t.Fatalf("bad event: %+v", ev)
		}
		if ev.Iter != res.History[i].Iter || ev.Evals != res.History[i].Evals {
			t.Fatalf("event %d does not match history: %+v vs %+v", i, ev, res.History[i])
		}
		if ev.BestSoFar < prev {
			t.Fatalf("best_so_far decreased at iter %d: %g < %g", ev.Iter, ev.BestSoFar, prev)
		}
		prev = ev.BestSoFar
	}
}

func TestCompassSearchObsCounters(t *testing.T) {
	rec := obs.NewRecorder()
	res, err := CompassSearch(sphere, []float64{5, 5}, Options{
		MaxIterations: 10, RNG: rng.New(3), Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Metrics.Snapshot()
	if got := snap.Counters["opt.evals"]; got != uint64(res.Evals) {
		t.Fatalf("opt.evals = %d, want %d", got, res.Evals)
	}
	if got := snap.Counters["opt.iterations"]; got != uint64(len(res.History)) {
		t.Fatalf("opt.iterations = %d, want %d", got, len(res.History))
	}
}

// TestRecorderDoesNotChangeTrajectory checks instrumentation is purely
// observational: identical results with and without a recorder.
func TestRecorderDoesNotChangeTrajectory(t *testing.T) {
	run := func(rec *obs.Recorder) Result {
		res, err := ImplicitFiltering(sphere, []float64{10, 90}, Options{
			Directions: 6, MaxIterations: 15, RNG: rng.New(11), Recorder: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	instrumented := run(obs.NewRecorder())
	if plain.Value != instrumented.Value || plain.Evals != instrumented.Evals {
		t.Fatalf("recorder changed the run: %+v vs %+v", plain, instrumented)
	}
	for i := range plain.X {
		if plain.X[i] != instrumented.X[i] {
			t.Fatalf("recorder changed the returned point")
		}
	}
	if len(plain.History) != len(instrumented.History) {
		t.Fatalf("recorder changed the history length")
	}
	for i := range plain.History {
		if plain.History[i] != instrumented.History[i] {
			t.Fatalf("recorder changed history[%d]", i)
		}
	}
}
