package opt

import (
	"reflect"
	"testing"

	"repro/internal/rng"
)

// asBatch lifts a sequential objective into a batch objective that
// honors the ordering contract: the i-th value is f(points[i]).
func asBatch(f Objective) BatchObjective {
	return func(points [][]float64) []float64 {
		out := make([]float64, len(points))
		for i, p := range points {
			out[i] = f(p)
		}
		return out
	}
}

// sameResult fails unless the two runs are identical down to the
// iteration histories — the contract that lets the flow switch between
// the sequential and batch paths without changing results.
func sameResult(t *testing.T, a, b Result) {
	t.Helper()
	if !reflect.DeepEqual(a.X, b.X) {
		t.Fatalf("X: %v != %v", a.X, b.X)
	}
	if a.Value != b.Value || a.Evals != b.Evals {
		t.Fatalf("value/evals: %v/%d != %v/%d", a.Value, a.Evals, b.Value, b.Evals)
	}
	if !reflect.DeepEqual(a.History, b.History) {
		t.Fatalf("histories differ:\n%+v\n%+v", a.History, b.History)
	}
}

func TestImplicitFilteringBatchMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 44} {
		opts := Options{
			Directions:    8,
			MaxIterations: 40,
			MinStep:       0.01,
			MaxEvals:      200,
		}
		x0 := []float64{10, 85, 40}
		optsSeq := opts
		optsSeq.RNG = rng.New(seed)
		seq, err := ImplicitFiltering(sphere, x0, optsSeq)
		if err != nil {
			t.Fatal(err)
		}
		optsBatch := opts
		optsBatch.RNG = rng.New(seed)
		optsBatch.Batch = asBatch(sphere)
		batch, err := ImplicitFiltering(nil, x0, optsBatch)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, seq, batch)
	}
}

func TestCompassSearchBatchMatchesSequential(t *testing.T) {
	opts := Options{MaxIterations: 60, MinStep: 0.01, MaxEvals: 150}
	x0 := []float64{15, 90}
	optsSeq := opts
	optsSeq.RNG = rng.New(5)
	seq, err := CompassSearch(sphere, x0, optsSeq)
	if err != nil {
		t.Fatal(err)
	}
	optsBatch := opts
	optsBatch.RNG = rng.New(5)
	optsBatch.Batch = asBatch(sphere)
	batch, err := CompassSearch(nil, x0, optsBatch)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, seq, batch)
}

func TestCompassSearchMaxEvalsStopsWholeSweep(t *testing.T) {
	// Regression: the budget check used to break only the +/- sign pair
	// of the current coordinate, letting a sweep overrun MaxEvals by up
	// to 2*dim-1 calls on high-dimensional problems.
	for _, budget := range []int{1, 2, 7, 23, 37} {
		calls := 0
		f := func(x []float64) float64 { calls++; return 0 }
		if _, err := CompassSearch(f, make([]float64, 20), Options{
			MaxIterations: 1000,
			MaxEvals:      budget,
			MinStep:       1e-12,
			RNG:           rng.New(1),
		}); err != nil {
			t.Fatal(err)
		}
		if calls > budget {
			t.Fatalf("budget %d: %d calls", budget, calls)
		}
	}
}

func TestImplicitFilteringMaxEvalsExact(t *testing.T) {
	calls := 0
	f := func(x []float64) float64 { calls++; return 0 }
	if _, err := ImplicitFiltering(f, make([]float64, 6), Options{
		Directions:    50,
		MaxIterations: 1000,
		MaxEvals:      30,
		MinStep:       1e-12,
		RNG:           rng.New(2),
	}); err != nil {
		t.Fatal(err)
	}
	if calls > 30 {
		t.Fatalf("calls = %d, budget 30", calls)
	}
}

func TestBatchNeverCalledWithZeroPoints(t *testing.T) {
	// When the eval budget runs dry mid-iteration the probe list may be
	// empty; the batch objective must not be invoked for it.
	batch := func(points [][]float64) []float64 {
		if len(points) == 0 {
			t.Fatal("batch objective called with zero points")
		}
		out := make([]float64, len(points))
		for i, p := range points {
			out[i] = sphere(p)
		}
		return out
	}
	for _, budget := range []int{1, 2, 3} {
		if _, err := CompassSearch(nil, []float64{50, 50}, Options{
			MaxIterations: 100,
			MaxEvals:      budget,
			MinStep:       1e-12,
			RNG:           rng.New(3),
			Batch:         batch,
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := ImplicitFiltering(nil, []float64{50, 50}, Options{
			Directions:    10,
			MaxIterations: 100,
			MaxEvals:      budget,
			MinStep:       1e-12,
			RNG:           rng.New(4),
			Batch:         batch,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNilObjectiveRequiresBatch(t *testing.T) {
	if _, err := ImplicitFiltering(nil, []float64{1}, Options{}); err == nil {
		t.Error("implicit filtering: nil objective without batch should fail")
	}
	if _, err := CompassSearch(nil, []float64{1}, Options{}); err == nil {
		t.Error("compass search: nil objective without batch should fail")
	}
}

func TestRandomSearchScratchReuseStillCorrect(t *testing.T) {
	// The reused scratch point must not alias the returned best point.
	res, err := RandomSearch(sphere, 3, Options{MaxEvals: 200, RNG: rng.New(6)})
	if err != nil {
		t.Fatal(err)
	}
	want := sphere(res.X)
	if res.Value != want {
		t.Fatalf("returned X (%v) does not produce returned value: %v != %v", res.X, want, res.Value)
	}
}
