// Package opt implements the derivative-free optimization (DFO) methods
// of the AS-CDG reproduction.
//
// The mapping from test-template settings to coverage is unknown,
// probabilistic, and only observable through simulation, so the flow
// cannot use gradient or Hessian methods (paper Section IV-E). The
// primary algorithm is implicit filtering (Algorithm 1 in the paper,
// refs [5], [6]) with the paper's two noise modifications: N samples per
// point and per-iteration resampling of the center. Random search,
// compass search, and Nelder-Mead are provided as ablation baselines.
//
// All methods MAXIMIZE the objective over the box [Lo, Hi]^d.
package opt

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Objective is a (noisy) function to maximize. Each call may return a
// different value for the same point; the optimizers budget calls, not
// accuracy.
type Objective func(x []float64) float64

// BatchObjective evaluates many independent points at once and returns
// one value per point, in order. Stencil-based optimizers probe n
// independent points per iteration; a batch objective lets the caller
// evaluate them concurrently (e.g. as parallel simulation jobs on
// sim.Env's scheduler) instead of one at a time. The i-th returned value
// must be what Objective would have returned for points[i] had the
// points been evaluated sequentially in order — callers backed by a
// deterministic simulation environment get this by submitting jobs in
// point order.
type BatchObjective func(points [][]float64) []float64

// Options configure an optimization run. Zero values select the
// documented defaults.
type Options struct {
	// Directions is the number of random directions per implicit
	// filtering iteration — the paper's n (default 10).
	Directions int
	// InitialStep is the initial stencil size h (default: a quarter of
	// the box width).
	InitialStep float64
	// MinStep stops the run when the stencil shrinks below it (default:
	// 1/64 of the box width).
	MinStep float64
	// MaxIterations bounds the number of iterations (default 50).
	MaxIterations int
	// MaxEvals bounds the number of objective calls (0 = unlimited).
	// Used by the baselines to grant every method an equal budget.
	MaxEvals int
	// TargetValue stops the run once the best observed value reaches it
	// (0 = disabled). The paper's stopping criteria combine iterations,
	// stencil size and target hit probability; all three are supported.
	TargetValue float64
	// ResampleCenter re-evaluates the center every iteration instead of
	// trusting the previous measurement — the paper's guard against
	// extremely lucky noise (Section IV-E). Default true; set
	// NoResampleCenter to disable in ablations.
	NoResampleCenter bool
	// Lo and Hi bound the search box in every coordinate (defaults 0
	// and 100 — the skeleton weight box).
	Lo, Hi float64
	// RNG drives direction sampling. nil seeds a fresh generator with 0.
	RNG *rng.RNG
	// Batch, when non-nil, evaluates each iteration's independent probe
	// points as one call (stencil optimizers only: ImplicitFiltering and
	// CompassSearch). The per-point Objective argument may then be nil.
	Batch BatchObjective
	// Recorder, when non-nil, streams one opt_iter progress event per
	// iteration (including best-objective-so-far, the paper's Fig. 6
	// series, watchable live) and counts evals, step halvings, and
	// center resamples into the metrics registry. Purely observational:
	// the trajectory is identical with it set or nil.
	Recorder *obs.Recorder
	// Context, when non-nil, cancels the run between evaluations: the
	// optimizer returns the best-so-far partial Result together with the
	// context's error (stencil optimizers only).
	Context context.Context
	// Checkpoint, when non-nil, is called after every completed
	// ImplicitFiltering iteration with the run's resumable state. An
	// error aborts the run with that error — the flow's journaling hook.
	Checkpoint func(IterState) error
	// Resume, when non-nil, re-enters an ImplicitFiltering run from a
	// previous checkpoint instead of starting at x0: the trajectory
	// continues exactly as the uninterrupted run would have.
	Resume *IterState
}

// ctxErr is the nil-tolerant cancellation probe (nil = never canceled).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func (o Options) withDefaults() Options {
	if o.Directions <= 0 {
		o.Directions = 10
	}
	if o.Hi == 0 && o.Lo == 0 {
		o.Hi = 100
	}
	width := o.Hi - o.Lo
	if o.InitialStep <= 0 {
		o.InitialStep = width / 4
	}
	if o.MinStep <= 0 {
		o.MinStep = width / 64
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 50
	}
	if o.RNG == nil {
		o.RNG = rng.New(0)
	}
	return o
}

// IterRecord captures one optimizer iteration for progress plots (the
// paper's Fig. 6 series).
type IterRecord struct {
	Iter  int     `json:"iter"`
	Best  float64 `json:"best"`  // best objective value observed this iteration
	Step  float64 `json:"step"`  // stencil size during the iteration
	Moved bool    `json:"moved"` // whether the center moved
	Evals int     `json:"evals"` // cumulative objective calls after the iteration
}

// IterState is a checkpoint of an ImplicitFiltering run taken after a
// completed iteration: the stencil state, the running best, the RNG's
// raw state, and the history so far — everything needed to re-enter the
// loop at the next iteration and reproduce the uninterrupted run's
// trajectory bit for bit. It round-trips through JSON exactly (Go's
// float64 encoding is shortest-representation, which decodes to the
// identical bits), which is what makes journal replay byte-faithful.
type IterState struct {
	Iter        int          `json:"iter"`
	Center      []float64    `json:"center"`
	Best        float64      `json:"best"`
	Step        float64      `json:"step"`
	OverallBest float64      `json:"overall_best"`
	OverallX    []float64    `json:"overall_x"`
	Evals       int          `json:"evals"`
	RNGState    uint64       `json:"rng_state"`
	History     []IterRecord `json:"history"`
}

// Result is the outcome of an optimization run.
type Result struct {
	X       []float64
	Value   float64
	Evals   int
	History []IterRecord
}

// clampTo limits x to [lo, hi] in place.
func clampTo(x []float64, lo, hi float64) {
	for i, v := range x {
		if v < lo {
			x[i] = lo
		} else if v > hi {
			x[i] = hi
		}
	}
}

// evaluator wraps the sequential and batch objective forms behind one
// budget-counting interface so the stencil optimizers are agnostic to
// which the caller supplied.
type evaluator struct {
	f      Objective
	batch  BatchObjective
	evals  int
	mEvals *obs.Counter // live eval counter (nil-safe)
}

// all evaluates every point, in order, counting one eval per point.
func (e *evaluator) all(points [][]float64) []float64 {
	if len(points) == 0 {
		return nil
	}
	e.evals += len(points)
	e.mEvals.Add(uint64(len(points)))
	if e.batch != nil {
		return e.batch(points)
	}
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = e.f(p)
	}
	return out
}

// one evaluates a single point.
func (e *evaluator) one(x []float64) float64 {
	return e.all([][]float64{x})[0]
}

// remaining returns how many evals are left under maxEvals (0 =
// unlimited, reported as a large budget).
func (e *evaluator) remaining(maxEvals int) int {
	if maxEvals <= 0 {
		return 1 << 30
	}
	return maxEvals - e.evals
}

// historyCap sizes a history preallocation: the expected iteration count,
// capped so budget-bound runs passing MaxIterations = 1<<30 don't
// preallocate gigabytes for a history that stays tiny.
func historyCap(n int) int {
	const limit = 4096
	if n > limit {
		return limit
	}
	return n
}

// optObs bundles the stencil optimizers' instrumentation: counters for
// the convergence-relevant events plus the per-iteration opt_iter
// progress record. Every handle and method is nil-safe, so the
// optimizers call them unconditionally.
type optObs struct {
	rec       *obs.Recorder
	iters     *obs.Counter
	halvings  *obs.Counter
	resamples *obs.Counter
}

func newOptObs(rec *obs.Recorder) optObs {
	return optObs{
		rec:       rec,
		iters:     rec.Counter("opt.iterations"),
		halvings:  rec.Counter("opt.step_halvings"),
		resamples: rec.Counter("opt.center_resamples"),
	}
}

// iter records one completed iteration: the live Fig. 6 sample.
func (o optObs) iter(method string, h IterRecord, bestSoFar float64) {
	o.iters.Inc()
	o.rec.Emit("opt_iter", map[string]any{
		"method":      method,
		"iter":        h.Iter,
		"best":        h.Best,
		"best_so_far": bestSoFar,
		"step":        h.Step,
		"moved":       h.Moved,
		"evals":       h.Evals,
	})
}

// randomDirection draws a uniform direction on the unit sphere.
func randomDirection(r *rng.RNG, dim int) []float64 {
	d := make([]float64, dim)
	for {
		for i := range d {
			d[i] = r.NormFloat64()
		}
		n := 0.0
		for _, v := range d {
			n += v * v
		}
		if n == 0 {
			continue
		}
		n = math.Sqrt(n)
		for i := range d {
			d[i] /= n
		}
		return d
	}
}

// IFSpecFromOptions is the compatibility constructor bridging the
// legacy aggregate Options to implicit filtering's per-engine spec.
func IFSpecFromOptions(opts Options) IFSpec {
	return IFSpec{
		Directions:       opts.Directions,
		Iterations:       opts.MaxIterations,
		InitialStep:      opts.InitialStep,
		MinStep:          opts.MinStep,
		NoResampleCenter: opts.NoResampleCenter,
	}
}

// engineConfigFromOptions extracts the solver-agnostic half of Options.
func engineConfigFromOptions(x0 []float64, opts Options) EngineConfig {
	return EngineConfig{
		X0:          x0,
		Lo:          opts.Lo,
		Hi:          opts.Hi,
		MaxEvals:    opts.MaxEvals,
		TargetValue: opts.TargetValue,
		RNG:         opts.RNG,
		Recorder:    opts.Recorder,
	}
}

// driveOptionsFromOptions adapts Options' loop concerns (objective,
// cancellation, typed checkpoint/resume) to Drive's engine-agnostic
// form. IterState round-trips through JSON exactly (shortest-form
// float64 encoding), so the raw<->typed conversions here preserve the
// legacy checkpoint semantics bit for bit.
func driveOptionsFromOptions(f Objective, opts Options) (DriveOptions, error) {
	drv := DriveOptions{Objective: f, Batch: opts.Batch, Context: opts.Context}
	if opts.Checkpoint != nil {
		cb := opts.Checkpoint
		drv.Checkpoint = func(raw json.RawMessage) error {
			var st IterState
			if err := json.Unmarshal(raw, &st); err != nil {
				return err
			}
			return cb(st)
		}
	}
	if opts.Resume != nil {
		raw, err := json.Marshal(opts.Resume)
		if err != nil {
			return DriveOptions{}, err
		}
		drv.Resume = raw
	}
	return drv, nil
}

// ImplicitFiltering maximizes f starting from x0 using the paper's
// Algorithm 1. Each iteration samples f at the center (resampled unless
// disabled) and at Directions random points at stencil distance h — as
// one batch when Options.Batch is set, since the probes are independent;
// the center moves to the best point if it improves, otherwise h is
// halved. The run stops on MaxIterations, MinStep, MaxEvals, or
// TargetValue.
//
// This is the Options-compatibility wrapper over the "implicit_filtering"
// Engine; the trajectory is identical to the pre-Engine implementation.
func ImplicitFiltering(f Objective, x0 []float64, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if len(x0) == 0 {
		return Result{}, fmt.Errorf("opt: empty starting point")
	}
	if f == nil && opts.Batch == nil {
		return Result{}, fmt.Errorf("opt: nil objective")
	}
	eng := newIFEngine(engineConfigFromOptions(x0, opts), IFSpecFromOptions(opts))
	drv, err := driveOptionsFromOptions(f, opts)
	if err != nil {
		return Result{}, err
	}
	return Drive(eng, drv)
}

// RandomSearch maximizes f by uniform sampling of the box — the
// simplest budget-matched baseline. It runs until MaxEvals (or
// Directions*MaxIterations when MaxEvals is 0).
func RandomSearch(f Objective, dim int, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if dim <= 0 {
		return Result{}, fmt.Errorf("opt: non-positive dimension %d", dim)
	}
	budget := opts.MaxEvals
	if budget <= 0 {
		budget = opts.Directions * opts.MaxIterations
	}
	// One scratch point reused for every draw and one history slice sized
	// to the whole budget: the run allocates O(1), not O(budget).
	x := make([]float64, dim)
	var bestX []float64
	best := math.Inf(-1)
	history := make([]IterRecord, 0, historyCap(budget))
	for i := 0; i < budget; i++ {
		for j := range x {
			x[j] = opts.Lo + opts.RNG.Float64()*(opts.Hi-opts.Lo)
		}
		v := f(x)
		if v > best {
			best = v
			if bestX == nil {
				bestX = make([]float64, dim)
			}
			copy(bestX, x)
		}
		history = append(history, IterRecord{Iter: i + 1, Best: best, Evals: i + 1})
		if opts.TargetValue > 0 && best >= opts.TargetValue {
			break
		}
	}
	return Result{X: bestX, Value: best, Evals: len(history), History: history}, nil
}

// CompassSearch maximizes f with coordinate-aligned pattern search
// (generalized pattern search with the 2d compass stencil): probe
// +/- h along every coordinate — as one batch when Options.Batch is set —
// move to the best improvement, halve h when none improves. Once MaxEvals
// is reached the whole probe sweep stops, not just the current
// coordinate's sign pair.
func CompassSearch(f Objective, x0 []float64, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if len(x0) == 0 {
		return Result{}, fmt.Errorf("opt: empty starting point")
	}
	if f == nil && opts.Batch == nil {
		return Result{}, fmt.Errorf("opt: nil objective")
	}
	dim := len(x0)
	center := append([]float64(nil), x0...)
	clampTo(center, opts.Lo, opts.Hi)

	ev := &evaluator{f: f, batch: opts.Batch, mEvals: opts.Recorder.Counter("opt.evals")}
	oo := newOptObs(opts.Recorder)
	h := opts.InitialStep
	if err := ctxErr(opts.Context); err != nil {
		return Result{}, err
	}
	best := ev.one(center)
	history := make([]IterRecord, 0, historyCap(opts.MaxIterations))

	for iter := 1; iter <= opts.MaxIterations; iter++ {
		if err := ctxErr(opts.Context); err != nil {
			return Result{X: center, Value: best, Evals: ev.evals, History: history}, err
		}
		if ev.remaining(opts.MaxEvals) <= 0 {
			break
		}
		if !opts.NoResampleCenter {
			best = ev.one(center)
			oo.resamples.Inc()
		}
		iterBest := best
		nextCenter := center
		moved := false
		nProbes := 2 * dim
		if rem := ev.remaining(opts.MaxEvals); nProbes > rem {
			nProbes = rem
		}
		probes := make([][]float64, 0, nProbes)
		for i := 0; i < dim && len(probes) < nProbes; i++ {
			for _, sign := range []float64{1, -1} {
				if len(probes) == nProbes {
					break
				}
				cand := append([]float64(nil), center...)
				cand[i] += sign * h
				clampTo(cand, opts.Lo, opts.Hi)
				probes = append(probes, cand)
			}
		}
		for i, v := range ev.all(probes) {
			if v > iterBest {
				iterBest = v
				nextCenter = probes[i]
				moved = true
			}
		}
		if moved {
			center = nextCenter
			best = iterBest
		} else {
			h /= 2
			oo.halvings.Inc()
		}
		rec := IterRecord{Iter: iter, Best: iterBest, Step: h, Moved: moved, Evals: ev.evals}
		history = append(history, rec)
		oo.iter("compass_search", rec, best)
		if opts.TargetValue > 0 && best >= opts.TargetValue {
			break
		}
		if h < opts.MinStep {
			break
		}
	}
	return Result{X: center, Value: best, Evals: ev.evals, History: history}, nil
}
