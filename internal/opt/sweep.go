package opt

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// SweepPoint is one hyperparameter setting of implicit filtering (paper
// Section IV-E: the directions n, the stencil h, and the samples per
// point N all affect convergence).
type SweepPoint struct {
	Directions      int
	InitialStep     float64
	SamplesPerPoint int
}

// SweepResult is the outcome of one sweep point.
type SweepResult struct {
	Point SweepPoint
	// Value is the ground-truth evaluation of the returned optimum.
	Value float64
	// Evals is the number of objective calls consumed.
	Evals int
	// Sims is Evals x SamplesPerPoint — the comparable cost metric.
	Sims int
}

// Sweep tunes implicit filtering over a hyperparameter grid under an
// equal simulation budget. For every grid point it runs the optimizer
// with MaxEvals = budget/SamplesPerPoint (so each point spends the same
// number of simulations), then scores the returned optimum with
// trueEval — a high-budget, low-noise evaluation the caller provides.
// Results are returned best-first.
//
// mkObjective builds the noisy objective for a given N; each sweep point
// gets a fresh objective so noise streams are independent.
func Sweep(
	mkObjective func(samplesPerPoint int) Objective,
	trueEval func(x []float64) float64,
	x0 []float64,
	grid []SweepPoint,
	budget int,
	r *rng.RNG,
) ([]SweepResult, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("opt: empty sweep grid")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("opt: non-positive sweep budget %d", budget)
	}
	if r == nil {
		r = rng.New(0)
	}
	results := make([]SweepResult, 0, len(grid))
	for i, p := range grid {
		if p.SamplesPerPoint <= 0 {
			return nil, fmt.Errorf("opt: sweep point %d has non-positive N", i)
		}
		maxEvals := budget / p.SamplesPerPoint
		if maxEvals < 1 {
			maxEvals = 1
		}
		res, err := ImplicitFiltering(mkObjective(p.SamplesPerPoint), x0, Options{
			Directions:    p.Directions,
			InitialStep:   p.InitialStep,
			MaxIterations: 1 << 30, // budget-bound, not iteration-bound
			MaxEvals:      maxEvals,
			MinStep:       1e-9,
			RNG:           r.SplitIndex(uint64(i)),
		})
		if err != nil {
			return nil, err
		}
		results = append(results, SweepResult{
			Point: p,
			Value: trueEval(res.X),
			Evals: res.Evals,
			Sims:  res.Evals * p.SamplesPerPoint,
		})
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Value > results[j].Value })
	return results, nil
}

// DefaultGrid returns a reasonable starting grid around the paper's
// operating points (n between 10 and 20, h a quarter of the box, N
// between 50 and 200).
func DefaultGrid(boxWidth float64) []SweepPoint {
	var grid []SweepPoint
	for _, n := range []int{10, 15, 19} {
		for _, h := range []float64{boxWidth / 8, boxWidth / 4} {
			for _, samples := range []int{50, 100, 200} {
				grid = append(grid, SweepPoint{Directions: n, InitialStep: h, SamplesPerPoint: samples})
			}
		}
	}
	return grid
}
