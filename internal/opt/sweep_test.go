package opt

import (
	"testing"

	"repro/internal/rng"
)

func TestSweepRanksByTrueValue(t *testing.T) {
	// Noisy sphere: N samples per point average the noise down.
	mk := func(n int) Objective {
		r := rng.New(uint64(n))
		return func(x []float64) float64 {
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += sphere(x) + (r.Float64()*2-1)*300
			}
			return sum / float64(n)
		}
	}
	grid := []SweepPoint{
		{Directions: 10, InitialStep: 25, SamplesPerPoint: 5},
		{Directions: 10, InitialStep: 25, SamplesPerPoint: 50},
	}
	results, err := Sweep(mk, sphere, []float64{10, 10}, grid, 5000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Sorted best-first.
	if results[0].Value < results[1].Value {
		t.Fatalf("not sorted: %v", results)
	}
	// Budget respected: sims per point within the budget (one eval
	// overshoot allowed at an iteration boundary).
	for _, r := range results {
		if r.Sims > 5000+50*r.Point.Directions {
			t.Fatalf("point %+v overspent: %d sims", r.Point, r.Sims)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	mk := func(n int) Objective { return sphere }
	if _, err := Sweep(mk, sphere, []float64{1}, nil, 100, nil); err == nil {
		t.Error("empty grid should fail")
	}
	if _, err := Sweep(mk, sphere, []float64{1},
		[]SweepPoint{{Directions: 5, InitialStep: 10, SamplesPerPoint: 10}}, 0, nil); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := Sweep(mk, sphere, []float64{1},
		[]SweepPoint{{Directions: 5, InitialStep: 10, SamplesPerPoint: 0}}, 100, nil); err == nil {
		t.Error("zero N should fail")
	}
}

func TestSweepDeterministicPerSeed(t *testing.T) {
	mk := func(n int) Objective {
		r := rng.New(uint64(n) * 7)
		return func(x []float64) float64 { return sphere(x) + r.Float64()*10 }
	}
	grid := []SweepPoint{{Directions: 8, InitialStep: 20, SamplesPerPoint: 10}}
	a, err := Sweep(mk, sphere, []float64{5, 5}, grid, 1000, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(mk, sphere, []float64{5, 5}, grid, 1000, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Value != b[0].Value || a[0].Evals != b[0].Evals {
		t.Fatal("sweep not deterministic for a fixed seed")
	}
}

func TestDefaultGrid(t *testing.T) {
	grid := DefaultGrid(100)
	if len(grid) != 18 {
		t.Fatalf("grid size = %d, want 18", len(grid))
	}
	for _, p := range grid {
		if p.Directions <= 0 || p.InitialStep <= 0 || p.SamplesPerPoint <= 0 {
			t.Fatalf("degenerate grid point %+v", p)
		}
	}
}
