package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDisabledProfilingIsNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop with no profiles enabled: %v", err)
	}
}

func TestCPUAndHeapProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

func TestStartFailsOnUnwritableCPUPath(t *testing.T) {
	stop, err := Start(filepath.Join(t.TempDir(), "missing", "cpu.prof"), "")
	if err == nil {
		stop()
		t.Fatalf("Start must fail when the cpu profile file cannot be created")
	}
}

func TestStopReturnsHeapProfileError(t *testing.T) {
	// Heap profile path in a directory that doesn't exist: Start
	// succeeds (the heap file is only created at stop), stop reports
	// the error instead of writing to os.Stderr.
	stop, err := Start("", filepath.Join(t.TempDir(), "missing", "mem.prof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatalf("stop must return the heap-profile creation error")
	}
}

func TestStopIsIdempotentForCPUProfile(t *testing.T) {
	cpu := filepath.Join(t.TempDir(), "cpu.prof")
	stop, err := Start(cpu, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	// The documented contract is "exactly once", but a defensive second
	// call must not double-close the profile file.
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}
