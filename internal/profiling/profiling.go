// Package profiling wires the standard runtime/pprof CPU and heap
// profilers behind two file-path options, shared by the repro and ascdg
// commands. Both profiles are optional; an empty path disables the
// corresponding profiler.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (if non-empty). The stop function must be called exactly
// once, normally via defer, after the profiled work is done; it
// returns the first error hit while finishing the profiles (heap file
// creation or write) so callers report it on their own stderr instead
// of this package writing to the process's.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close cpu profile: %w", err)
			}
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush unreachable objects so the heap profile reflects live memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
