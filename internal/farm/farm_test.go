package farm

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/coverage"
	"repro/internal/duv/iounit"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/template"
)

// testOptions are aggressive timings so fault scenarios resolve in
// milliseconds instead of the production defaults' seconds.
func testOptions(dial func(string) (net.Conn, error), rec *obs.Recorder) Options {
	return Options{
		ChunkTimeout:   2 * time.Second,
		AcquireTimeout: 50 * time.Millisecond,
		Attempts:       3,
		Heartbeat:      20 * time.Millisecond,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		Dial:           dial,
		Rec:            rec,
	}
}

func altTemplate(t *testing.T) *template.Template {
	t.Helper()
	tmpl, err := template.Parse("template farm_alt { weight Command { read: 10; write: 30; } }")
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

// workload runs a fixed two-batch workload on an iounit environment
// with the given runner attached and returns the merged aggregate plus
// total sims accounting — the quantity every topology must agree on
// bit for bit.
func workload(t *testing.T, r sim.ChunkRunner, lanes int) *coverage.Counts {
	t.Helper()
	env := sim.NewEnv(iounit.New(), 1234, 2)
	defer env.Close()
	if r != nil {
		env.AttachRunner(r, lanes)
	}
	unit := env.Unit()
	a, err := env.Submit(unit.BaseTemplates()[0], 600)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Submit(altTemplate(t), 400)
	if err != nil {
		t.Fatal(err)
	}
	total := coverage.NewCountsFor(unit.Model())
	total.Merge(a.Wait())
	total.Merge(b.Wait())
	return total
}

func diffCounts(t *testing.T, label string, got, want *coverage.Counts) {
	t.Helper()
	if got.Sims() != want.Sims() {
		t.Fatalf("%s: sims = %d, want %d (chunk lost or double-counted)", label, got.Sims(), want.Sims())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Hits(i) != want.Hits(i) {
			t.Fatalf("%s: event %d hits = %d, want %d", label, i, got.Hits(i), want.Hits(i))
		}
	}
}

// farmFixture wires a loopback fleet to a dispatcher.
func farmFixture(t *testing.T, faults []Faults, rec *obs.Recorder) (*Dispatcher, []*Server) {
	return farmFixtureV(t, faults, nil, 0, rec)
}

// farmFixtureV is farmFixture with protocol caps: serverMax[i] bounds
// worker i's negotiable version (nil or 0: highest supported) and
// dispMax bounds the dispatcher's (0: highest supported) — the
// mixed-fleet fixture.
func farmFixtureV(t *testing.T, faults []Faults, serverMax []int, dispMax int, rec *obs.Recorder) (*Dispatcher, []*Server) {
	t.Helper()
	lb := NewLoopback()
	addrs := make([]string, len(faults))
	servers := make([]*Server, len(faults))
	for i, f := range faults {
		maxV := 0
		if serverMax != nil {
			maxV = serverMax[i]
		}
		servers[i] = NewServer(ServerOptions{Capacity: 2, DrainTimeout: 2 * time.Second, MaxVersion: maxV})
		addrs[i] = string(rune('a' + i))
		lb.Add(addrs[i], servers[i], f)
	}
	opts := testOptions(lb.Dial, rec)
	opts.MaxVersion = dispMax
	d := New(addrs, opts)
	t.Cleanup(d.Close)
	t.Cleanup(func() {
		for _, s := range servers {
			s.Shutdown()
		}
	})
	return d, servers
}

// TestFarmBitIdenticalAcrossTopologies is the tentpole acceptance
// criterion: a fixed seed produces the same aggregate with no farm,
// one worker, several workers, and a fleet misbehaving in every
// programmed way (dropped connections, duplicated frames, latency,
// failed dials).
func TestFarmBitIdenticalAcrossTopologies(t *testing.T) {
	want := workload(t, nil, 0)

	scenarios := []struct {
		name   string
		faults []Faults
	}{
		{"one_worker", []Faults{{}}},
		{"three_workers", []Faults{{}, {}, {}}},
		{"dropping_worker", []Faults{{DropAfterFrames: 6}, {}}},
		{"duplicating_worker", []Faults{{DuplicateEvery: 2}, {DuplicateEvery: 3}}},
		{"slow_worker", []Faults{{Delay: 2 * time.Millisecond}, {}}},
		{"flaky_dials", []Faults{{FailDials: 3}, {FailDials: 1}}},
		{"everything_at_once", []Faults{
			{DropAfterFrames: 8, Delay: time.Millisecond},
			{DuplicateEvery: 2, FailDials: 2},
			{},
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			rec := obs.NewRecorder()
			d, _ := farmFixture(t, sc.faults, rec)
			got := workload(t, d, d.Lanes())
			diffCounts(t, sc.name, got, want)
		})
	}
}

// TestFarmRemoteActuallyRuns sanity-checks the remote path end to end
// and deterministically: a chunk pushed through the dispatcher comes
// back bit-identical to the same chunk run by a local environment, and
// the dispatcher's accounting reflects it — so the topology tests above
// are not vacuously comparing local-only runs.
func TestFarmRemoteActuallyRuns(t *testing.T) {
	rec := obs.NewRecorder()
	d, _ := farmFixture(t, []Faults{{}}, rec)
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	unit := iounit.New()
	chunk := sim.RemoteChunk{
		Unit: iounit.UnitName, Template: altTemplate(t), Seed: 42,
		Lo: 0, Hi: 100, Events: unit.Model().Size(),
	}
	got, err := d.RunChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}
	local := sim.NewEnv(unit, 7, 1) // env seed irrelevant to RunChunk
	defer local.Close()
	want, err := local.RunChunk(chunk.Template, chunk.Seed, chunk.Lo, chunk.Hi)
	if err != nil {
		t.Fatal(err)
	}
	diffCounts(t, "remote chunk", got, want)

	snap := rec.Metrics.Snapshot()
	if snap.Counters["farm.chunks"] != 1 {
		t.Fatalf("farm.chunks = %d, want 1", snap.Counters["farm.chunks"])
	}
	if snap.Gauges["farm.inflight"] != 0 {
		t.Fatalf("inflight gauge = %d after completion, want 0", snap.Gauges["farm.inflight"])
	}
	if snap.Histograms["farm.rpc_ns"].Count != 1 {
		t.Fatalf("rpc_ns count = %d, want 1", snap.Histograms["farm.rpc_ns"].Count)
	}
	// One RPC span on the worker's trace lane.
	spans := 0
	for _, ev := range rec.Trace.Events() {
		if ev.Cat == "farm" && ev.Name == "rpc" {
			spans++
			if ev.Tid != 200 {
				t.Fatalf("rpc span on lane %d, want 200", ev.Tid)
			}
		}
	}
	if spans != 1 {
		t.Fatalf("rpc spans = %d, want 1", spans)
	}
}

// TestFarmWorkerKilledMidRun kills a worker while chunks are in flight:
// the run must complete (no stall), with bit-identical results (no
// loss, no double count) — chunks stranded on the dead worker are
// retried elsewhere or fall back locally.
func TestFarmWorkerKilledMidRun(t *testing.T) {
	want := workload(t, nil, 0)
	// The doomed worker answers slowly so the kill lands mid-exchange.
	d, servers := farmFixture(t, []Faults{{Delay: 3 * time.Millisecond}, {}}, nil)
	done := make(chan *coverage.Counts, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		done <- workload(t, d, d.Lanes())
	}()
	time.Sleep(10 * time.Millisecond)
	servers[0].Shutdown()
	select {
	case got := <-done:
		diffCounts(t, "mid-run kill", got, want)
	case <-time.After(30 * time.Second):
		t.Fatal("run stalled after worker kill")
	}
	wg.Wait()
}

// TestFarmRejoin checks eviction/rejoin: a worker that refuses its
// first dials is eventually reached by the keeper's backoff loop, and a
// worker whose connections keep dying keeps being redialed.
func TestFarmRejoin(t *testing.T) {
	d, _ := farmFixture(t, []Faults{{FailDials: 4}}, nil)
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatalf("keeper never reached worker after transient dial failures: %v", err)
	}
}

// TestFarmNoWorkers checks graceful degradation: a dispatcher with no
// fleet (or an unreachable one) reports ErrNoWorkers — so scheduler
// lanes fall back locally — rather than stalling.
func TestFarmNoWorkers(t *testing.T) {
	d := New(nil, testOptions(NewLoopback().Dial, nil))
	defer d.Close()
	_, err := d.RunChunk(sim.RemoteChunk{Unit: iounit.UnitName, Seed: 1, Lo: 0, Hi: 8, Events: 1})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	// The workload still completes, entirely locally.
	want := workload(t, nil, 0)
	got := workload(t, d, 2)
	diffCounts(t, "no workers", got, want)
}

func TestFarmDispatcherClosed(t *testing.T) {
	d, _ := farmFixture(t, []Faults{{}}, nil)
	d.Close()
	if _, err := d.RunChunk(sim.RemoteChunk{Unit: iounit.UnitName, Hi: 8, Events: 1}); !errors.Is(err, ErrDispatcherClosed) {
		t.Fatalf("err = %v, want ErrDispatcherClosed", err)
	}
}

// TestFarmUnknownUnitFallsBack checks a worker reports unknown units
// in-band and the scheduler's fallback still completes the run.
func TestFarmUnknownUnit(t *testing.T) {
	d, _ := farmFixture(t, []Faults{{}}, nil)
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	_, err := d.RunChunk(sim.RemoteChunk{Unit: "no_such_unit", Seed: 1, Lo: 0, Hi: 4, Events: 1})
	if err == nil {
		t.Fatal("unknown unit accepted")
	}
}

// TestServerDrain checks clean shutdown semantics directly on the
// wire: a connection mid-chunk gets its result before the server goes
// away; an idle connection is severed immediately.
func TestServerDrain(t *testing.T) {
	srv := NewServer(ServerOptions{Capacity: 2, DrainTimeout: 10 * time.Second})
	dialSrv := func() net.Conn {
		client, server := net.Pipe()
		go srv.ServeConn(server)
		client.SetDeadline(time.Now().Add(10 * time.Second))
		// No Max field: the session negotiates v1, so the raw frames
		// below stay JSON.
		if err := WriteFrame(client, &Frame{Type: TypeHello, Version: ProtocolV1}); err != nil {
			t.Fatal(err)
		}
		var f Frame
		if err := ReadFrame(client, &f); err != nil || f.Type != TypeWelcome {
			t.Fatalf("handshake failed: %v %+v", err, f)
		}
		return client
	}
	busy := dialSrv()
	defer busy.Close()
	idle := dialSrv()
	defer idle.Close()

	// A chunk big enough to still be in flight when Shutdown starts.
	if err := WriteFrame(busy, &Frame{
		Type: TypeChunk, ID: 1, Unit: iounit.UnitName, Seed: 7, Lo: 0, Hi: 30000,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the server pick the chunk up
	shutdownDone := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(shutdownDone)
	}()

	var res Frame
	if err := ReadFrame(busy, &res); err != nil {
		t.Fatalf("in-flight chunk was severed instead of drained: %v", err)
	}
	if res.Type != TypeResult || res.ID != 1 || res.Err != "" || res.Sims != 30000 {
		t.Fatalf("drained result = %+v", res)
	}
	// The idle connection is gone (read fails rather than blocking).
	var f Frame
	if err := ReadFrame(idle, &f); err == nil {
		t.Fatalf("idle connection survived shutdown: %+v", f)
	}
	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	// Post-shutdown connections are refused.
	client, server := net.Pipe()
	defer client.Close()
	go srv.ServeConn(server)
	client.SetDeadline(time.Now().Add(5 * time.Second))
	WriteFrame(client, &Frame{Type: TypeHello, Version: ProtocolV1})
	if err := ReadFrame(client, &f); err == nil {
		t.Fatalf("draining server answered handshake: %+v", f)
	}
}

// TestFarmTCP is the end-to-end smoke over real sockets: a farmd-style
// server on a loopback listener, a TCP dispatcher, bit-identical
// results, and a clean shutdown.
func TestFarmTCP(t *testing.T) {
	srv := NewServer(ServerOptions{Capacity: 2, DrainTimeout: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	d := New([]string{ln.Addr().String()}, Options{
		AcquireTimeout: 100 * time.Millisecond,
		BackoffBase:    5 * time.Millisecond,
		Heartbeat:      50 * time.Millisecond,
	})
	defer d.Close()
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := workload(t, nil, 0)
	got := workload(t, d, d.Lanes())
	diffCounts(t, "tcp", got, want)

	srv.Shutdown()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after Shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}
