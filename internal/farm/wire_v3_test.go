package farm

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/duv/iounit"
	"repro/internal/sim"
)

// traceFrame is a representative chunk frame carrying the v3 trace
// trailer (campaign/batch/chunk identity plus the peer build string).
func traceFrame() Frame {
	return Frame{
		Type: TypeChunk, ID: 9, Unit: "iounit",
		Template: "template t { weight Mode { a: 1; } }", HasTemplate: true,
		Seed: 77, Lo: 8, Hi: 24,
		Campaign: "c000042", Batch: 13, Chunk: 123456, Build: "abc123def456",
	}
}

// TestFrameRoundTripV3 locks the trailer semantics per codec: v3 and v1
// (JSON) preserve the trace fields, a v2 session never carries them.
func TestFrameRoundTripV3(t *testing.T) {
	f := traceFrame()

	var buf bytes.Buffer
	v3 := &codec{version: ProtocolV3}
	if err := v3.write(&buf, &f); err != nil {
		t.Fatal(err)
	}
	var got Frame
	if err := v3.read(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("v3 round trip:\n%+v\nvs\n%+v", got, f)
	}

	buf.Reset()
	if err := WriteFrame(&buf, &f); err != nil {
		t.Fatal(err)
	}
	var v1 Frame
	if err := ReadFrame(&buf, &v1); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, v1) {
		t.Fatalf("v1 JSON round trip dropped trace fields:\n%+v\nvs\n%+v", v1, f)
	}

	// A v2 session encodes without the trailer: the decoded frame is the
	// same chunk minus its trace identity — exactly what an old peer sees.
	buf.Reset()
	v2 := &codec{version: ProtocolV2}
	if err := v2.write(&buf, &f); err != nil {
		t.Fatal(err)
	}
	var old Frame
	if err := v2.read(&buf, &old); err != nil {
		t.Fatal(err)
	}
	want := f
	want.Campaign, want.Batch, want.Chunk, want.Build = "", 0, 0, ""
	if !reflect.DeepEqual(want, old) {
		t.Fatalf("v2 round trip:\n%+v\nvs\n%+v", old, want)
	}
}

// TestV3TrailerStrictness locks the failure modes when payload and
// codec version disagree — sessions negotiate one version, so a
// mismatch is a protocol violation that must fail loudly, not decode
// into a half-right frame.
func TestV3TrailerStrictness(t *testing.T) {
	f := traceFrame()
	v3Bytes, err := appendFrameV3(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	var got Frame
	// v2 decoder on a v3 payload: the trailer is trailing garbage.
	if err := decodeFrameBinary(v3Bytes, &got, ProtocolV2); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("v2 decode of v3 payload: %v, want trailing-bytes error", err)
	}
	// v3 decoder on a v2 payload: the trailer is missing.
	v2Bytes, err := appendFrameV2(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	if err := decodeFrameBinary(v2Bytes, &got, ProtocolV3); err == nil {
		t.Fatal("v3 decode of v2 payload succeeded")
	}
}

// TestFrameRoundTripQuickV3 property-checks the v3 codec over frames
// with arbitrary trace identities: encode → decode is the identity, and
// the v1 JSON codec agrees field for field.
func TestFrameRoundTripQuickV3(t *testing.T) {
	prop := func(typeIdx uint8, id, seed uint64, lo, hi uint16, unit string,
		campaign, build string, batch, chunkID uint64, hits []uint64) bool {
		f := quickFrame(typeIdx, 1, 4, id, seed, uint64(len(hits)), lo, hi, unit, "", false, hits)
		f.Campaign = strings.ToValidUTF8(campaign, "?")
		f.Build = strings.ToValidUTF8(build, "?")
		f.Batch = batch
		f.Chunk = chunkID
		p, err := appendFrameV3(nil, &f)
		if err != nil {
			return false
		}
		var v3 Frame
		if err := decodeFrameBinary(p, &v3, ProtocolV3); err != nil {
			return false
		}
		if !reflect.DeepEqual(f, v3) {
			return false
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &f); err != nil {
			return false
		}
		var v1 Frame
		if err := ReadFrame(&buf, &v1); err != nil {
			return false
		}
		return reflect.DeepEqual(v1, v3)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestChunkFrameCarriesTraceIdentity locks the dispatcher-side fill
// path: a RemoteChunk's campaign/batch/chunk identity lands on the
// outbound frame.
func TestChunkFrameCarriesTraceIdentity(t *testing.T) {
	c := sim.RemoteChunk{
		Unit: iounit.UnitName, Seed: 1, Lo: 0, Hi: 8,
		Campaign: "c000007", Batch: 3, Chunk: 99,
	}
	var f Frame
	fillChunkFrame(&f, 11, c)
	if f.Campaign != "c000007" || f.Batch != 3 || f.Chunk != 99 {
		t.Fatalf("frame trace identity = %q/%d/%d", f.Campaign, f.Batch, f.Chunk)
	}
}
