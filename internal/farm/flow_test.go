package farm

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/duv/iounit"
)

// flowFingerprint reduces a flow report to everything the farm must
// preserve: the harvested template, the optimizer trajectory, every
// phase's exact per-event counts, and the simulation accounting.
type flowFingerprint struct {
	Best      string
	Weights   []float64
	Progress  []float64
	Phases    map[string][]uint64
	TotalSims uint64
}

func flowFP(r *core.Report) flowFingerprint {
	fp := flowFingerprint{
		Best:      r.BestTemplate.String(),
		Weights:   r.BestWeights,
		Phases:    map[string][]uint64{},
		TotalSims: r.TotalSims,
	}
	for _, h := range r.Progress {
		fp.Progress = append(fp.Progress, h.Best)
	}
	for _, p := range r.Phases {
		hits := make([]uint64, 0, p.Counts.Len()+1)
		for i := 0; i < p.Counts.Len(); i++ {
			hits = append(hits, p.Counts.Hits(i))
		}
		fp.Phases[p.Name] = append(hits, p.Counts.Sims())
	}
	return fp
}

func runFlow(t *testing.T, faults []Faults) flowFingerprint {
	return runFlowV(t, faults, nil, 0)
}

// runFlowV is runFlow over a version-mixed fleet: serverMax caps each
// worker's protocol (nil/0: highest), dispMax the dispatcher's.
func runFlowV(t *testing.T, faults []Faults, serverMax []int, dispMax int) flowFingerprint {
	t.Helper()
	cfg := core.Config{
		Seed:                  21,
		Workers:               3,
		CorpusSimsPerTemplate: 120,
		TopTemplates:          2,
		Subranges:             3,
		SampleTemplates:       12,
		SampleSims:            20,
		OptIterations:         5,
		OptDirections:         5,
		OptSims:               25,
		BestSims:              250,
	}
	if faults != nil {
		d, _ := farmFixtureV(t, faults, serverMax, dispMax, nil)
		if err := d.WaitReady(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		cfg.Runner = d
		cfg.RunnerLanes = d.Lanes()
	}
	flow := core.NewFlow(iounit.New(), cfg)
	defer flow.Close()
	report, err := flow.RunFamily(context.Background(), iounit.FamilyName, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return flowFP(report)
}

// TestFlowReportBitIdenticalWithFarm runs the paper's full per-family
// flow — corpus, TAC search, skeleton, sampling, optimization, harvest
// — locally, against a healthy fleet, and against a misbehaving fleet,
// and demands the identical report from a fixed seed. This is the
// system-level form of the farm's acceptance criterion: distribution
// (and distribution failures) must be invisible in every number the
// reproduction publishes.
func TestFlowReportBitIdenticalWithFarm(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow x3; skipped in -short")
	}
	local := runFlow(t, nil)
	healthy := runFlow(t, []Faults{{}, {}})
	if !reflect.DeepEqual(local, healthy) {
		t.Fatalf("healthy farm diverged from local flow:\n%+v\nvs\n%+v", healthy, local)
	}
	faulty := runFlow(t, []Faults{
		{DropAfterFrames: 10, Delay: time.Millisecond},
		{DuplicateEvery: 2, FailDials: 2},
	})
	if !reflect.DeepEqual(local, faulty) {
		t.Fatalf("faulty farm diverged from local flow:\n%+v\nvs\n%+v", faulty, local)
	}
}

// TestFlowReportBitIdenticalAcrossProtocols is the protocol-negotiation
// acceptance criterion at system level: the full flow's report must be
// bit-identical whether the fleet speaks v1 only, v2 only, the current
// v3 (with its trace-correlation trailer), or any mix of old and new
// peers — under fault injection — so a rolling fleet upgrade can never
// change a published number.
func TestFlowReportBitIdenticalAcrossProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow x5; skipped in -short")
	}
	faults := []Faults{
		{DropAfterFrames: 10, Delay: time.Millisecond},
		{DuplicateEvery: 2, FailDials: 2},
	}
	v1Only := runFlowV(t, faults, nil, 1)
	v2Only := runFlowV(t, faults, nil, 2)
	v3Only := runFlowV(t, faults, nil, 0)
	mixedOldNew := runFlowV(t, faults, []int{1, 0}, 0) // one v1-capped, one current worker
	mixedV2V3 := runFlowV(t, faults, []int{2, 0}, 0)   // one v2-capped (pre-trailer), one current
	if !reflect.DeepEqual(v1Only, v2Only) {
		t.Fatalf("v2 fleet diverged from v1 fleet:\n%+v\nvs\n%+v", v2Only, v1Only)
	}
	if !reflect.DeepEqual(v1Only, v3Only) {
		t.Fatalf("v3 fleet diverged from v1 fleet:\n%+v\nvs\n%+v", v3Only, v1Only)
	}
	if !reflect.DeepEqual(v1Only, mixedOldNew) {
		t.Fatalf("mixed v1/v3 fleet diverged:\n%+v\nvs\n%+v", mixedOldNew, v1Only)
	}
	if !reflect.DeepEqual(v1Only, mixedV2V3) {
		t.Fatalf("mixed v2/v3 fleet diverged:\n%+v\nvs\n%+v", mixedV2V3, v1Only)
	}
}
