package farm

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/failpoint"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ServerOptions configure a farm worker.
type ServerOptions struct {
	// Capacity bounds concurrently executing chunks (welcome frames
	// advertise it so dispatchers open a matching number of
	// connections). <= 0 selects GOMAXPROCS.
	Capacity int
	// PlanCacheSize bounds each unit environment's compiled-plan cache
	// (<= 0: sim.DefaultPlanCacheSize). Worth setting on long-lived
	// daemons: every chunk request re-parses its template, and only the
	// content-keyed cache keeps that from becoming a compile per chunk.
	PlanCacheSize int
	// DrainTimeout bounds Shutdown: connections executing a chunk get
	// this long to finish and write their result before being severed
	// (severed chunks are re-run by the dispatcher's fallback, so drain
	// is an optimization, never a correctness requirement). <= 0: 10s.
	DrainTimeout time.Duration
	// MaxVersion caps the protocol version this worker negotiates
	// (0 or out of range: ProtocolVersion). Set 1 to force the v1 JSON
	// codec for debugging mixed fleets (farmd's -proto flag).
	MaxVersion int
	// Rec receives the worker's metrics and traces (nil disables).
	Rec *obs.Recorder
	// Log receives structured session-lifecycle events with correlated
	// fields (peer, proto, chunk). nil discards.
	Log *slog.Logger
	// FP is the failpoint registry consulted at the worker's injection
	// points (farm/serve_read, farm/serve_write, farm/serve_chunk). nil
	// selects failpoint.Default — disarmed in production. The corrupt
	// policy at farm/serve_chunk turns this worker byzantine: results
	// are silently wrong but perfectly well-formed, which only the
	// dispatcher's integrity audit can catch.
	FP *failpoint.Registry
}

// Server executes chunk requests for any registered DUV. One Server
// serves many connections; each connection executes at most one chunk
// at a time (the dispatcher opens one connection per capacity slot),
// and a capacity semaphore bounds the total across connections.
type Server struct {
	opts ServerOptions
	sem  chan struct{}

	mu    sync.Mutex
	envs  map[string]*sim.Env
	conns map[*serverConn]struct{}
	wg    sync.WaitGroup

	draining atomic.Bool
	done     chan struct{} // closed when Shutdown begins

	log     *slog.Logger
	metrics *obs.Registry // labeled per-connection gauges (nil-safe)
	fp      *failpoint.Registry

	// Metric handles (all nil-safe).
	mConns   *obs.Gauge
	mChunks  *obs.Counter
	mErrors  *obs.Counter
	mRefused *obs.Counter
	mProto   *obs.Gauge   // farm.server.proto_version: last negotiated
	mConnsV1 *obs.Counter // connections negotiated at v1
	mConnsV2 *obs.Counter // connections negotiated at v2
	hChunkNs *obs.Histogram
	hSims    *obs.Histogram
	tracer   *obs.Tracer
}

// serverConn is one client connection plus the flag Shutdown uses to
// decide whether it may be severed immediately (idle, blocked in read)
// or should be left to finish its in-flight chunk.
type serverConn struct {
	conn net.Conn
	busy atomic.Bool
}

// NewServer builds a worker with the given options.
func NewServer(opts ServerOptions) *Server {
	if opts.Capacity <= 0 {
		opts.Capacity = runtime.GOMAXPROCS(0)
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 10 * time.Second
	}
	opts.MaxVersion = clampMaxVersion(opts.MaxVersion)
	s := &Server{
		opts:  opts,
		sem:   make(chan struct{}, opts.Capacity),
		envs:  map[string]*sim.Env{},
		conns: map[*serverConn]struct{}{},
		done:  make(chan struct{}),
	}
	s.log = obs.OrNop(opts.Log)
	s.fp = opts.FP
	if s.fp == nil {
		s.fp = failpoint.Default
	}
	if rec := opts.Rec; rec != nil {
		s.metrics = rec.Metrics
		s.mConns = rec.Gauge("farm.server.conns")
		s.mChunks = rec.Counter("farm.server.chunks")
		s.mErrors = rec.Counter("farm.server.chunk_errors")
		s.mRefused = rec.Counter("farm.server.refused")
		s.mProto = rec.Gauge("farm.server.proto_version")
		s.mConnsV1 = rec.Counter("farm.server.conns_v1")
		s.mConnsV2 = rec.Counter("farm.server.conns_v2")
		s.hChunkNs = rec.Histogram("farm.server.chunk_ns", obs.LatencyBounds())
		s.hSims = rec.Histogram("farm.server.chunk_size", obs.SizeBounds())
		s.tracer = rec.Trace
	}
	return s
}

// Capacity reports the worker's concurrent-chunk bound.
func (s *Server) Capacity() int { return cap(s.sem) }

// MaxVersion reports the highest protocol version the worker offers in
// its welcome frames.
func (s *Server) MaxVersion() int { return s.opts.MaxVersion }

// errDraining is Ready's failure once Shutdown has begun.
var errDraining = errors.New("farm: worker is draining")

// Ready is the worker's readiness check for /readyz: nil while the
// worker accepts sessions, errDraining once Shutdown has begun, so load
// balancers stop routing chunks at a node that is on its way out.
func (s *Server) Ready() error {
	if s.draining.Load() {
		return errDraining
	}
	return nil
}

// Serve accepts connections until the listener fails or Shutdown runs.
// Each connection is handled on its own goroutine via ServeConn.
func (s *Server) Serve(ln net.Listener) error {
	go func() {
		<-s.done
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn speaks the farm protocol on one connection until the peer
// hangs up, an I/O or protocol error occurs, or the server drains. It
// is exported so transports other than TCP (the in-memory fault-
// injection loopback, tests) can drive a server directly.
func (s *Server) ServeConn(conn net.Conn) {
	sc := &serverConn{conn: conn}
	if !s.track(sc) {
		conn.Close()
		return
	}
	s.mConns.Add(1)
	defer func() {
		s.untrack(sc)
		s.mConns.Add(-1)
		conn.Close()
	}()

	// Handshake, always in v1 JSON frames: refuse anything that is not
	// a hello at the (never-changing) handshake framing version, then
	// negotiate the chunk-path codec from the two Max fields. An old
	// peer sends no Max and negotiates v1; both sides switch codecs
	// only after the welcome, so any build handshakes with any other.
	var f Frame
	if err := ReadFrame(conn, &f); err != nil || f.Type != TypeHello {
		s.mRefused.Inc()
		return
	}
	if f.Version != ProtocolV1 {
		s.mRefused.Inc()
		WriteFrame(conn, &Frame{Type: TypeError,
			Err: fmt.Sprintf("handshake version %d, want %d", f.Version, ProtocolV1)})
		return
	}
	version := negotiate(f.Max, s.opts.MaxVersion)
	if err := WriteFrame(conn, &Frame{
		Type: TypeWelcome, Version: ProtocolV1, Max: version, Capacity: s.Capacity(),
		Build: buildinfo.Read().Short(),
	}); err != nil {
		return
	}
	s.mProto.Set(int64(version))
	if version >= ProtocolV2 {
		s.mConnsV2.Inc()
	} else {
		s.mConnsV1.Inc()
	}
	peer := conn.RemoteAddr().String()
	gauge := s.metrics.GaugeWith("farm.server.sessions",
		obs.Labels("proto", fmt.Sprintf("v%d", version)))
	gauge.Add(1)
	s.log.Info("farm: session started",
		"peer", peer, "proto", version, "peer_build", f.Build)
	defer func() {
		gauge.Add(-1)
		s.log.Debug("farm: session ended", "peer", peer, "proto", version)
	}()

	// Session state, all reused across the connection's frames: the
	// negotiated codec's scratch buffers, the response frame (its Hits
	// buffer grows once to the model size), and the chunk executor's
	// scratch aggregate — so a long-lived v2 connection executes chunks
	// with zero allocations on the protocol path.
	cdc := &codec{version: version}
	var resp Frame
	var scratch *coverage.Counts
	for {
		if err := cdc.read(conn, &f); err != nil {
			return // peer gone, or Shutdown severed an idle connection
		}
		// farm/serve_read simulates a worker that dies (or stalls) after
		// accepting a request — the chunk is in flight but no result will
		// ever come, so the dispatcher must time out and retry elsewhere.
		if err := s.fp.Eval("farm/serve_read"); err != nil {
			if errors.Is(err, failpoint.ErrInjected) {
				s.log.Debug("farm: failpoint severed session", "point", "farm/serve_read", "peer", peer)
			}
			return
		}
		switch f.Type {
		case TypePing:
			resp = Frame{Type: TypePong, ID: f.ID, Hits: resp.Hits[:0]}
			if err := cdc.write(conn, &resp); err != nil {
				return
			}
		case TypeChunk:
			sc.busy.Store(true)
			var drop bool
			scratch, drop = s.execute(&f, &resp, scratch, version)
			// farm/serve_write: drop swallows the computed result (the
			// session lives on, the dispatcher times out); any other
			// policy severs the session after the work was done.
			var err error
			switch werr := s.fp.Eval("farm/serve_write"); {
			case errors.Is(werr, failpoint.ErrDropped) || drop:
			case werr != nil:
				sc.busy.Store(false)
				return
			default:
				err = cdc.write(conn, &resp)
			}
			sc.busy.Store(false)
			if err != nil || s.draining.Load() {
				return
			}
		default:
			resp = Frame{Type: TypeError, Err: "farm: unexpected frame " + f.Type}
			cdc.write(conn, &resp)
			return
		}
	}
}

// execute runs one chunk request under the capacity semaphore and
// fills the caller's reusable result frame. Failures (unknown unit,
// unparsable template, bad range, oversized model) are reported
// in-band so the dispatcher can fall back locally without killing the
// connection. The scratch aggregate is connection-local and returned
// (possibly resized) for reuse by the next chunk.
func (s *Server) execute(f *Frame, resp *Frame, scratch *coverage.Counts, version int) (*coverage.Counts, bool) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	sp := s.tracer.Span("farm", "serve_chunk")
	start := time.Now()
	*resp = Frame{Type: TypeResult, ID: f.ID, Hits: resp.Hits[:0]}
	var err error
	drop := false
	scratch, err = s.runChunk(f, scratch, version)
	if err != nil {
		s.mErrors.Inc()
		resp.Err = err.Error()
	} else {
		s.mChunks.Inc()
		resp.Hits, resp.Sims = scratch.AppendRaw(resp.Hits[:0])
		s.hSims.Observe(resp.Sims)
		// farm/serve_chunk is the byzantine-worker seam: corrupt silently
		// mutates the (well-formed) result, delay turns this worker into
		// a straggler, drop swallows the result, error reports a compute
		// failure in-band.
		switch cerr := s.fp.Uints("farm/serve_chunk", resp.Hits); {
		case cerr == nil:
		case errors.Is(cerr, failpoint.ErrDropped):
			drop = true
		default:
			err = cerr
			s.mErrors.Inc()
			resp.Err = cerr.Error()
			resp.Hits, resp.Sims = resp.Hits[:0], 0
		}
	}
	s.hChunkNs.Observe(uint64(time.Since(start)))
	if sp != nil {
		sp.SetArg("unit", f.Unit)
		sp.SetArg("instances", f.Hi-f.Lo)
		sp.SetArg("ok", err == nil)
		// Echo the dispatcher's trace identity so merged fleet timelines
		// can join this span with its dispatcher-side parent.
		sp.SetArg("chunk", f.Chunk)
		sp.SetArg("batch", f.Batch)
		if f.Campaign != "" {
			sp.SetArg("campaign", f.Campaign)
		}
		sp.End()
	}
	if err != nil {
		s.log.Debug("farm: chunk failed", "unit", f.Unit,
			"campaign", f.Campaign, "batch", f.Batch, "chunk", f.Chunk, "err", err)
	}
	return scratch, drop
}

// runChunk resolves the request's unit environment and re-executes the
// chunk deterministically via sim.Env.RunChunkInto, merging into the
// connection's scratch aggregate (resized only when the model size
// changes between requests).
func (s *Server) runChunk(f *Frame, scratch *coverage.Counts, version int) (*coverage.Counts, error) {
	env, err := s.env(f.Unit)
	if err != nil {
		return scratch, err
	}
	events := env.Unit().Model().Size()
	if err := CheckModelFits(events, version); err != nil {
		// A model this large cannot travel in any result frame; tell
		// the dispatcher in-band instead of failing on the write.
		return scratch, err
	}
	tmpl, err := chunkTemplate(f)
	if err != nil {
		return scratch, err
	}
	if scratch == nil || scratch.Len() != events {
		scratch = coverage.NewCounts(events)
	} else {
		scratch.Reset()
	}
	if err := env.RunChunkInto(tmpl, f.Seed, f.Lo, f.Hi, scratch); err != nil {
		return scratch, err
	}
	return scratch, nil
}

// env returns the lazily created environment for a unit. Environments
// are single-worker: a chunk runs inline on its connection goroutine,
// and the capacity semaphore is the concurrency bound.
func (s *Server) env(unit string) (*sim.Env, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.envs[unit]; ok {
		return e, nil
	}
	u, err := duv.New(unit)
	if err != nil {
		return nil, err
	}
	e := sim.NewEnv(u, 1, 1) // seed irrelevant: RunChunk carries its own
	if s.opts.Rec != nil {
		e.SetRecorder(s.opts.Rec)
	}
	if s.opts.PlanCacheSize > 0 {
		e.SetPlanCacheSize(s.opts.PlanCacheSize)
	}
	s.envs[unit] = e
	return e, nil
}

// track registers a connection; it refuses once draining so Shutdown's
// sever pass cannot race with late arrivals.
func (s *Server) track(sc *serverConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.conns[sc] = struct{}{}
	return true
}

func (s *Server) untrack(sc *serverConn) {
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
}

// Shutdown drains the worker: new connections are refused, idle
// connections are severed immediately, and connections executing a
// chunk get DrainTimeout to finish and write their result before being
// severed too. Chunks lost to a hard sever are simply re-run elsewhere
// by the dispatcher — the farm never double-counts either way, because
// the scheduler merges each chunk exactly once whoever computes it.
// Shutdown is idempotent and returns once every handler has exited.
func (s *Server) Shutdown() {
	if s.draining.Swap(true) {
		s.wg.Wait()
		return
	}
	close(s.done) // stops Serve's accept loop

	// Sever idle connections; busy ones finish their in-flight chunk
	// and exit after writing the result (ServeConn checks draining).
	s.mu.Lock()
	for sc := range s.conns {
		if !sc.busy.Load() {
			sc.conn.Close()
		}
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(s.opts.DrainTimeout):
		s.mu.Lock()
		for sc := range s.conns {
			sc.conn.Close()
		}
		s.mu.Unlock()
		<-finished
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.envs {
		e.Close()
	}
}
