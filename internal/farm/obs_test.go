package farm

import (
	"os"
	"testing"
	"time"

	"repro/internal/coverage"
	"repro/internal/duv/iounit"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestServerReadyDrain locks the worker's readiness semantics: ready
// while accepting sessions, not ready (errDraining) from the moment
// Shutdown begins — the signal farmd's /readyz serves to orchestrators.
func TestServerReadyDrain(t *testing.T) {
	s := NewServer(ServerOptions{Capacity: 1})
	if err := s.Ready(); err != nil {
		t.Fatalf("fresh server not ready: %v", err)
	}
	s.Shutdown()
	if err := s.Ready(); err == nil {
		t.Fatal("server still ready after Shutdown")
	}
}

// TestFarmObservabilityOverheadGuard is the fleet-side CI benchmark
// guard: with metrics, tracing, and trace-identity propagation enabled
// on both the dispatcher and every worker, remote chunk throughput must
// stay within 5% of the uninstrumented fleet. Gated behind BENCH_GUARD=1
// because wall-clock comparisons are meaningless on noisy shared
// runners unless invoked deliberately.
func TestFarmObservabilityOverheadGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the farm observability overhead guard")
	}
	unit := iounit.New()
	events := unit.Model().Size()
	const instances = 256

	measure := func(instrumented bool) float64 {
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			lb := NewLoopback()
			addrs := []string{"w0", "w1"}
			servers := make([]*Server, 0, len(addrs))
			for _, addr := range addrs {
				var srec *obs.Recorder
				if instrumented {
					srec = obs.NewRecorder()
				}
				srv := NewServer(ServerOptions{Capacity: 2, Rec: srec})
				servers = append(servers, srv)
				lb.Add(addr, srv, Faults{})
			}
			opts := Options{Dial: lb.Dial}
			if instrumented {
				rec := obs.NewRecorder()
				rec.Campaign = "bench-guard"
				opts.Rec = rec
			}
			d := New(addrs, opts)
			if err := d.WaitReady(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			chunk := sim.RemoteChunk{
				Unit: iounit.UnitName, Seed: 42, Lo: 0, Hi: instances, Events: events,
				Campaign: opts.Rec.CampaignID(), Batch: 1, Chunk: 1,
			}
			dst := coverage.NewCounts(events)
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					dst.Reset()
					if err := d.RunChunkInto(chunk, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
			d.Close()
			for _, s := range servers {
				s.Shutdown()
			}
			perSim := float64(res.NsPerOp()) / instances
			if best == 0 || perSim < best {
				best = perSim
			}
		}
		return best
	}

	off := measure(false)
	on := measure(true)
	overhead := on/off - 1
	t.Logf("farm chunk path: obs off %.1f ns/sim, on %.1f ns/sim, overhead %.2f%%",
		off, on, overhead*100)
	if overhead > 0.05 {
		t.Fatalf("farm observability overhead %.2f%% exceeds the 5%% budget", overhead*100)
	}
}
