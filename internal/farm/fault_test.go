package farm

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/coverage"
	"repro/internal/duv/iounit"
	"repro/internal/failpoint"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/template"
)

// chunkPlan builds a fixed two-batch chunk list with explicit identity,
// the way the scheduler would shard a campaign. Chunks are driven
// through the dispatcher directly: on a single-core runner an
// environment's local workers win every race for the task queue, so
// only direct driving makes remote engagement deterministic.
func chunkPlan(t *testing.T, campaign string, perTemplate, size int) ([]sim.RemoteChunk, int) {
	t.Helper()
	unit := iounit.New()
	events := unit.Model().Size()
	templates := []*template.Template{unit.BaseTemplates()[0], altTemplate(t)}
	var chunks []sim.RemoteChunk
	id := uint64(0)
	for b, tmpl := range templates {
		for i := 0; i < perTemplate; i++ {
			id++
			chunks = append(chunks, sim.RemoteChunk{
				Unit: iounit.UnitName, Template: tmpl, Seed: 97,
				Lo: i * size, Hi: (i + 1) * size, Events: events,
				Campaign: campaign, Batch: uint64(b + 1), Chunk: id,
			})
		}
	}
	return chunks, events
}

// localCounts executes every chunk on a local environment — the ground
// truth any fault schedule must reproduce bit for bit.
func localCounts(t *testing.T, env *sim.Env, chunks []sim.RemoteChunk, events int) *coverage.Counts {
	t.Helper()
	want := coverage.NewCounts(events)
	for _, c := range chunks {
		if err := env.RunChunkInto(c.Template, c.Seed, c.Lo, c.Hi, want); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// driveChunks pushes the chunks through the dispatcher with the given
// driver concurrency, falling back to local execution on failure
// exactly like the scheduler's remote lanes, and returns the merged
// aggregate.
func driveChunks(t *testing.T, d *Dispatcher, env *sim.Env, chunks []sim.RemoteChunk, events, drivers int) *coverage.Counts {
	t.Helper()
	total := coverage.NewCounts(events)
	var mu sync.Mutex
	ch := make(chan sim.RemoteChunk)
	var wg sync.WaitGroup
	for i := 0; i < drivers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := coverage.NewCounts(events)
			for c := range ch {
				if err := d.RunChunkInto(c, dst); err != nil {
					if err := env.RunChunkInto(c.Template, c.Seed, c.Lo, c.Hi, dst); err != nil {
						t.Errorf("local fallback: %v", err)
						return
					}
				}
			}
			mu.Lock()
			total.Merge(dst)
			mu.Unlock()
		}()
	}
	for _, c := range chunks {
		ch <- c
	}
	close(ch)
	wg.Wait()
	return total
}

// waitGoroutines polls until the goroutine count returns to (at most)
// the baseline — the no-leak assertion every fault schedule must meet
// after teardown.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, base, buf[:runtime.Stack(buf, false)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFaultMatrix sweeps every farm injection point with every
// recoverable policy and asserts the one invariant that matters:
// whatever faults fire, wherever they fire, the run completes and its
// aggregate is bit-identical to a clean local execution — and nothing
// leaks. Corrupt policies at result-carrying points are caught by the
// integrity audit (AuditFraction 1), which substitutes local ground
// truth; every other policy resolves through retry, hedging-free
// timeout, or local fallback.
func TestFaultMatrix(t *testing.T) {
	points := []struct {
		name   string
		server bool // armed on the workers' registries, not the dispatcher's
	}{
		{"farm/dial", false},
		{"farm/handshake", false},
		{"farm/rpc_write", false},
		{"farm/rpc_read", false},
		{"farm/serve_read", true},
		{"farm/serve_write", true},
		{"farm/serve_chunk", true},
	}
	policies := []string{"error:0.5:4", "delay(3ms):0.5:4", "drop:0.5:4", "corrupt:0.5:4"}

	env := sim.NewEnv(iounit.New(), 1, 2)
	defer env.Close()
	chunks, events := chunkPlan(t, "c-fault-matrix", 5, 80)
	want := localCounts(t, env, chunks, events)
	base := runtime.NumGoroutine()

	for _, pt := range points {
		for _, spec := range policies {
			pol, err := failpoint.ParsePolicy(spec)
			if err != nil {
				t.Fatal(err)
			}
			t.Run(pt.name+"/"+spec, func(t *testing.T) {
				rec := obs.NewRecorder()
				lb := NewLoopback()
				addrs := make([]string, 3)
				servers := make([]*Server, 3)
				for i := range addrs {
					fp := failpoint.New(int64(100 + i))
					if pt.server {
						fp.Set(pt.name, pol)
					}
					servers[i] = NewServer(ServerOptions{Capacity: 2, DrainTimeout: time.Second, FP: fp})
					addrs[i] = string(rune('a' + i))
					lb.Add(addrs[i], servers[i], Faults{})
				}
				opts := testOptions(lb.Dial, rec)
				opts.ChunkTimeout = 300 * time.Millisecond
				opts.AuditFraction = 1
				opts.Health.Cooldown = 40 * time.Millisecond
				opts.FP = failpoint.New(7)
				if !pt.server {
					opts.FP.Set(pt.name, pol)
				}
				d := New(addrs, opts)
				t.Cleanup(d.Close)
				t.Cleanup(func() {
					for _, s := range servers {
						s.Shutdown()
					}
				})
				if err := d.WaitReady(10 * time.Second); err != nil {
					t.Fatal(err)
				}
				got := driveChunks(t, d, env, chunks, events, 2)
				diffCounts(t, pt.name+"/"+spec, got, want)
			})
		}
	}
	waitGoroutines(t, base)
}

// TestByzantineFleetAcceptance is the robustness acceptance criterion:
// a three-worker fleet where one worker silently corrupts results
// (byzantine), one straggles at 10× fleet latency, and one flaps its
// connections every few hundred milliseconds must complete a campaign
// workload bit-identically to a clean local run — with the byzantine
// worker permanently quarantined (farm.workers_quarantined >= 1) and
// hedging's duplicated work bounded at 15% of total simulations.
func TestByzantineFleetAcceptance(t *testing.T) {
	const drivers = 4
	base := runtime.NumGoroutine()
	env := sim.NewEnv(iounit.New(), 1, 2)
	defer env.Close()
	chunks, events := chunkPlan(t, "c-byzantine", 120, 80)
	want := localCounts(t, env, chunks, events)

	rec := obs.NewRecorder()
	lb := NewLoopback()

	// Worker a is byzantine: every served chunk's hit array is silently
	// perturbed — well-formed frames, wrong numbers. Only the audit can
	// tell.
	byzFP := failpoint.New(11)
	byzFP.Set("farm/serve_chunk", failpoint.Policy{Kind: failpoint.KindCorrupt})
	fleets := []struct {
		fp       *failpoint.Registry
		faults   Faults
		capacity int
	}{
		{byzFP, Faults{}, 4},
		// The straggler's latency sits an order of magnitude beyond any
		// clean exchange even under the race detector's overhead, and its
		// single connection keeps its slow samples a small minority of the
		// fleet's latency ring — so the hedge budget (2 x fleet p95)
		// always undercuts it. A straggler with enough capacity to serve
		// most of the fleet's traffic IS the p95 and is not hedgeable.
		{nil, Faults{Delay: 150 * time.Millisecond}, 1},
		{nil, Faults{FlapEvery: 150 * time.Millisecond}, 4}, // flappy: dies and rejoins
	}
	addrs := make([]string, len(fleets))
	servers := make([]*Server, len(fleets))
	for i, f := range fleets {
		fp := f.fp
		if fp == nil {
			fp = failpoint.New(int64(i))
		}
		servers[i] = NewServer(ServerOptions{Capacity: f.capacity, DrainTimeout: time.Second, FP: fp})
		addrs[i] = string(rune('a' + i))
		lb.Add(addrs[i], servers[i], f.faults)
	}
	opts := testOptions(lb.Dial, rec)
	opts.Hedge = 2
	opts.AuditFraction = 1
	// The fixture heartbeat (20ms interval doubling as the ping deadline)
	// would evict the straggler's connection at every idle pass — it
	// would never serve a chunk, and there would be nothing to hedge.
	// Liveness discovery is not under test here, so disable it.
	opts.Heartbeat = -1
	opts.FP = failpoint.New(1)
	opts.Health.Cooldown = 100 * time.Millisecond
	// The straggler is hedging's job here, not the breaker's: an
	// unreachable latency threshold keeps the quarantine assertion
	// pinned on the byzantine worker.
	opts.Health.LatencyFactor = 1000
	d := New(addrs, opts)
	defer d.Close()
	defer func() {
		for _, s := range servers {
			s.Shutdown()
		}
	}()
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	got := driveChunks(t, d, env, chunks, events, drivers)
	diffCounts(t, "byzantine fleet", got, want)

	// The byzantine worker must have been caught by the audit and
	// quarantined permanently.
	if n := rec.Counter("farm.audit_mismatches").Value(); n == 0 {
		t.Fatal("no audit mismatches recorded: the byzantine worker was never caught")
	}
	if g := rec.Gauge("farm.workers_quarantined").Value(); g < 1 {
		t.Fatalf("farm.workers_quarantined = %d, want >= 1", g)
	}
	var byz *WorkerHealth
	for _, h := range d.Health() {
		if h.Addr == "a" {
			hh := h
			byz = &hh
		}
	}
	if byz == nil || byz.State != "quarantined" || !byz.Permanent {
		t.Fatalf("byzantine worker health = %+v, want permanent quarantine", byz)
	}

	// Hedging's duplicated work stays bounded whatever it chose to do:
	// at most 15% of the workload's simulations. (Whether hedging
	// engages at all in this topology depends on how badly the two
	// non-byzantine workers pollute the latency ring; the dedicated
	// straggler test below asserts engagement in a topology where it is
	// deterministic.)
	hedged := rec.Counter("farm.hedged_sims").Value()
	totalSims := uint64(0)
	for _, c := range chunks {
		totalSims += uint64(c.Hi - c.Lo)
	}
	if ratio := float64(hedged) / float64(totalSims); ratio > 0.15 {
		t.Fatalf("hedged duplicate-work ratio %.3f exceeds 0.15 (hedged %d of %d sims)", ratio, hedged, totalSims)
	}
	t.Logf("hedges=%d wins=%d duplicate-work=%.2f%% quarantined=%d",
		rec.Counter("farm.hedges").Value(), rec.Counter("farm.hedge_wins").Value(),
		100*float64(hedged)/float64(totalSims),
		rec.Gauge("farm.workers_quarantined").Value())

	d.Close()
	for _, s := range servers {
		s.Shutdown()
	}
	waitGoroutines(t, base)
}

// TestHedgedStragglerExecution pins down hedged chunk execution in the
// topology where it must engage: two clean workers and one straggler
// whose single connection answers an order of magnitude slower than the
// fleet p95. Because the straggler's dial handshake is itself delayed,
// the latency ring warms up entirely from fast samples before the
// straggler ever completes an exchange — so every chunk unlucky enough
// to start on it is hedged onto a clean lane, the hedge wins, and the
// aggregate stays bit-identical with bounded duplicate work.
func TestHedgedStragglerExecution(t *testing.T) {
	const drivers = 8
	base := runtime.NumGoroutine()
	env := sim.NewEnv(iounit.New(), 1, 2)
	defer env.Close()
	chunks, events := chunkPlan(t, "c-hedge", 120, 80)
	want := localCounts(t, env, chunks, events)

	rec := obs.NewRecorder()
	lb := NewLoopback()
	// The straggler's one connection against twelve fast ones keeps its
	// slow samples far below the ring's 5% p95 tail, and its delayed
	// handshake means the ring warms up from fast samples before it ever
	// completes an exchange — every chunk that starts on it is hedged.
	caps := []int{6, 1, 6}
	faults := []Faults{{}, {Delay: 300 * time.Millisecond}, {}}
	addrs := make([]string, 3)
	servers := make([]*Server, 3)
	for i := range addrs {
		servers[i] = NewServer(ServerOptions{Capacity: caps[i], DrainTimeout: time.Second, FP: failpoint.New(int64(i))})
		addrs[i] = string(rune('a' + i))
		lb.Add(addrs[i], servers[i], faults[i])
	}
	opts := testOptions(lb.Dial, rec)
	opts.Hedge = 2
	opts.Heartbeat = -1 // see TestByzantineFleetAcceptance
	opts.FP = failpoint.New(1)
	// Hedging, not the breaker, is under test: keep the straggler
	// routable so there is something to hedge.
	opts.Health.LatencyFactor = 1000
	d := New(addrs, opts)
	defer d.Close()
	defer func() {
		for _, s := range servers {
			s.Shutdown()
		}
	}()
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	got := driveChunks(t, d, env, chunks, events, drivers)
	diffCounts(t, "hedged straggler", got, want)

	hedges := rec.Counter("farm.hedges").Value()
	wins := rec.Counter("farm.hedge_wins").Value()
	hedged := rec.Counter("farm.hedged_sims").Value()
	totalSims := uint64(0)
	for _, c := range chunks {
		totalSims += uint64(c.Hi - c.Lo)
	}
	if hedges == 0 || wins == 0 {
		t.Fatalf("hedging never engaged (hedges=%d wins=%d): straggler unmitigated", hedges, wins)
	}
	if ratio := float64(hedged) / float64(totalSims); ratio > 0.15 {
		t.Fatalf("hedged duplicate-work ratio %.3f exceeds 0.15 (hedged %d of %d sims)", ratio, hedged, totalSims)
	}
	// The straggler was slow, not wrong: hedging must have routed around
	// it without the breaker opening.
	for _, h := range d.Health() {
		if h.Addr == "b" && h.State == "quarantined" {
			t.Fatalf("straggler was quarantined, want hedged around: %+v", h)
		}
	}
	t.Logf("hedges=%d wins=%d duplicate-work=%.2f%%", hedges, wins, 100*float64(hedged)/float64(totalSims))

	d.Close()
	for _, s := range servers {
		s.Shutdown()
	}
	waitGoroutines(t, base)
}
