package farm

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Faults program the loopback transport's misbehavior. All counters are
// per-connection except FailDials, which is a per-worker budget.
type Faults struct {
	// FailDials fails this worker's first N dial attempts — exercises
	// the keeper's redial backoff and WaitReady.
	FailDials int
	// Delay is added before every server-side frame write — exercises
	// per-chunk deadlines when larger than ChunkTimeout, and plain
	// latency otherwise.
	Delay time.Duration
	// DuplicateEvery duplicates every Nth server-side frame (0: never) —
	// exercises the dispatcher's correlation-ID skip and, with the
	// scheduler's exactly-once merge, proves duplicates cannot
	// double-count.
	DuplicateEvery int
	// DropAfterFrames severs the connection after the server has
	// written N frames (0: never) — exercises mid-run worker loss,
	// chunk retry on other connections, and local fallback.
	DropAfterFrames int
	// FlapEvery severs every connection this long after it is
	// established (0: never) — a flappy worker that keeps dying and
	// rejoining, exercising the health breaker's quarantine/probe loop
	// under sustained instability.
	FlapEvery time.Duration
}

// Loopback is an in-memory farm transport for tests: worker addresses
// map to in-process Servers, and each connection's server side is
// wrapped with programmable fault injection. Its Dial method slots into
// Options.Dial, so the entire dispatcher stack — handshake, pooling,
// heartbeats, retries, fallback — runs unchanged against a misbehaving
// "network" with no sockets involved.
type Loopback struct {
	mu      sync.Mutex
	workers map[string]*loopWorker
}

type loopWorker struct {
	srv         *Server
	faults      Faults
	failedDials int
}

// NewLoopback returns an empty transport; register workers with Add.
func NewLoopback() *Loopback {
	return &Loopback{workers: map[string]*loopWorker{}}
}

// Add registers a worker under an address with its fault program.
func (l *Loopback) Add(addr string, srv *Server, f Faults) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.workers[addr] = &loopWorker{srv: srv, faults: f}
}

// Dial implements Options.Dial: it builds a synchronous in-memory pipe,
// wraps the server end in the worker's fault program, and serves the
// farm protocol on it.
func (l *Loopback) Dial(addr string) (net.Conn, error) {
	l.mu.Lock()
	w, ok := l.workers[addr]
	if !ok {
		l.mu.Unlock()
		return nil, fmt.Errorf("farm: loopback has no worker %q", addr)
	}
	if w.failedDials < w.faults.FailDials {
		w.failedDials++
		l.mu.Unlock()
		return nil, fmt.Errorf("farm: loopback: injected dial failure %d/%d for %q",
			w.failedDials, w.faults.FailDials, addr)
	}
	faults := w.faults
	l.mu.Unlock()

	client, server := net.Pipe()
	fc := newFaultConn(server, faults)
	go func() {
		w.srv.ServeConn(fc)
		fc.Close()
	}()
	return client, nil
}

// faultConn wraps the server side of a pipe. Writes are decoupled onto
// a background goroutine so injected delays and duplicates cannot
// deadlock the synchronous pipe (a duplicated frame would otherwise
// block the server until the client happens to read it). WriteFrame
// sends each frame as exactly one Write call, so counting writes counts
// frames.
type faultConn struct {
	net.Conn
	faults  Faults
	wch     chan []byte
	done    chan struct{}
	closeMu sync.Mutex
	closed  bool
}

func newFaultConn(conn net.Conn, f Faults) *faultConn {
	fc := &faultConn{
		Conn:   conn,
		faults: f,
		wch:    make(chan []byte, 64),
		done:   make(chan struct{}),
	}
	go fc.writer()
	if f.FlapEvery > 0 {
		go func() {
			select {
			case <-time.After(f.FlapEvery):
				fc.Close()
			case <-fc.done:
			}
		}()
	}
	return fc
}

func (fc *faultConn) Write(b []byte) (int, error) {
	buf := make([]byte, len(b))
	copy(buf, b)
	select {
	case fc.wch <- buf:
		return len(b), nil
	case <-fc.done:
		return 0, net.ErrClosed
	}
}

// writer applies the fault program to the outgoing frame stream.
func (fc *faultConn) writer() {
	frames := 0
	for {
		select {
		case <-fc.done:
			return
		case buf := <-fc.wch:
			frames++
			if fc.faults.DropAfterFrames > 0 && frames > fc.faults.DropAfterFrames {
				fc.Close() // sever: the client sees EOF mid-exchange
				return
			}
			if fc.faults.Delay > 0 {
				select {
				case <-time.After(fc.faults.Delay):
				case <-fc.done:
					return
				}
			}
			if _, err := fc.Conn.Write(buf); err != nil {
				return
			}
			if fc.faults.DuplicateEvery > 0 && frames%fc.faults.DuplicateEvery == 0 {
				if _, err := fc.Conn.Write(buf); err != nil {
					return
				}
			}
		}
	}
}

func (fc *faultConn) Close() error {
	fc.closeMu.Lock()
	defer fc.closeMu.Unlock()
	if fc.closed {
		return nil
	}
	fc.closed = true
	close(fc.done)
	return fc.Conn.Close()
}
