package farm

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestHealth builds a scored healthSet over the given worker
// addresses with a short, test-friendly cooldown.
func newTestHealth(addrs []string, opts HealthOptions, rec *obs.Recorder) *healthSet {
	if opts.Cooldown == 0 {
		opts.Cooldown = 25 * time.Millisecond
	}
	return newHealthSet(opts, addrs, rec, nil)
}

// fail scores n failed exchanges against addr.
func fail(hs *healthSet, addr string, n int) {
	for i := 0; i < n; i++ {
		hs.outcome(addr, 0, false)
	}
}

// succeed scores n successful exchanges of the given latency.
func succeed(hs *healthSet, addr string, dur time.Duration, n int) {
	for i := 0; i < n; i++ {
		hs.outcome(addr, dur, true)
	}
}

// TestHealthErrorQuarantineAndHeal walks the breaker through its full
// cycle: error-rate quarantine, the gate refusing dials during the
// cooldown, half-open admitting exactly one probe, and a successful
// probe healing the worker with its sample count reset.
func TestHealthErrorQuarantineAndHeal(t *testing.T) {
	rec := obs.NewRecorder()
	hs := newTestHealth([]string{"a", "b"}, HealthOptions{}, rec)

	// Four straight failures push errEWMA to 1-0.7^4 ≈ 0.76 > 0.5 with
	// samples == MinSamples, so the breaker opens on the fourth.
	fail(hs, "a", 4)
	if hs.allowed("a") {
		t.Fatalf("worker a still allowed after 4/4 failed exchanges")
	}
	if got := rec.Gauge("farm.workers_quarantined").Value(); got != 1 {
		t.Fatalf("workers_quarantined gauge = %d, want 1", got)
	}
	if got := rec.Counter("farm.quarantines").Value(); got != 1 {
		t.Fatalf("quarantines counter = %d, want 1", got)
	}

	// During the cooldown the gate refuses with a bounded poll interval.
	if ok, wait := hs.gate("a"); ok || wait <= 0 || wait > 250*time.Millisecond {
		t.Fatalf("gate during cooldown = (%v, %v), want refused with bounded wait", ok, wait)
	}

	// After the cooldown the first gate call becomes the half-open
	// probe; a second concurrent caller is refused until it resolves.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ok, _ := hs.gate("a"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate never admitted a half-open probe")
		}
		time.Sleep(time.Millisecond)
	}
	if got := rec.Counter("farm.health_probes").Value(); got != 1 {
		t.Fatalf("health_probes counter = %d, want 1", got)
	}
	if ok, _ := hs.gate("a"); ok {
		t.Fatalf("gate admitted a second caller while a probe is outstanding")
	}

	// The probe's successful exchange heals the worker: error score
	// forgiven, samples reset so MinSamples must re-accumulate.
	hs.outcome("a", time.Millisecond, true)
	if !hs.allowed("a") {
		t.Fatalf("worker a not allowed after successful probe")
	}
	if got := rec.Gauge("farm.workers_quarantined").Value(); got != 0 {
		t.Fatalf("workers_quarantined gauge = %d after heal, want 0", got)
	}
	var h WorkerHealth
	for _, w := range hs.snapshot() {
		if w.Addr == "a" {
			h = w
		}
	}
	if h.State != "healthy" || h.Samples != 0 || h.ErrorRate != 0 {
		t.Fatalf("healed worker = %+v, want healthy with reset error score", h)
	}

	// Three more failures alone must not re-trip the breaker: the
	// post-heal sample count restarts from zero.
	fail(hs, "a", 2)
	if !hs.allowed("a") {
		t.Fatalf("breaker tripped before MinSamples re-accumulated after heal")
	}
}

// TestHealthProbeFailureEscalates verifies that a failed half-open
// probe re-quarantines immediately and the cooldown escalates.
func TestHealthProbeFailureEscalates(t *testing.T) {
	rec := obs.NewRecorder()
	hs := newTestHealth([]string{"a"}, HealthOptions{Cooldown: 10 * time.Millisecond}, rec)

	fail(hs, "a", 4)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ok, _ := hs.gate("a"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate never went half-open")
		}
		time.Sleep(time.Millisecond)
	}
	hs.outcome("a", 0, false) // probe fails
	if hs.allowed("a") {
		t.Fatalf("worker allowed after failed probe")
	}
	if got := rec.Counter("farm.quarantines").Value(); got != 2 {
		t.Fatalf("quarantines counter = %d after failed probe, want 2", got)
	}
	var h WorkerHealth
	for _, w := range hs.snapshot() {
		if w.Addr == "a" {
			h = w
		}
	}
	if h.Quarantines != 2 {
		t.Fatalf("worker quarantines = %d, want 2", h.Quarantines)
	}
}

// TestHealthDialFailedReleasesProbe verifies that a probe whose dial
// itself fails releases the half-open token for the next caller
// instead of wedging the worker in probing forever.
func TestHealthDialFailedReleasesProbe(t *testing.T) {
	hs := newTestHealth([]string{"a"}, HealthOptions{Cooldown: 10 * time.Millisecond}, obs.NewRecorder())
	fail(hs, "a", 4)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ok, _ := hs.gate("a"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate never went half-open")
		}
		time.Sleep(time.Millisecond)
	}
	if ok, _ := hs.gate("a"); ok {
		t.Fatalf("second caller admitted while probe dial outstanding")
	}
	hs.dialFailed("a")
	if ok, _ := hs.gate("a"); !ok {
		t.Fatalf("probe token not released after dial failure")
	}
}

// TestHealthLatencyQuarantineNeedsPeers verifies the straggler cut:
// it must never fire while the slow worker is the only one with
// samples (a single-worker fleet cannot be its own baseline), and it
// fires once a faster peer has scored.
func TestHealthLatencyQuarantineNeedsPeers(t *testing.T) {
	rec := obs.NewRecorder()
	// LatencyFactor 0.1 makes the latency condition trivially true for
	// any sampled worker — isolating the othersSampled guard.
	hs := newTestHealth([]string{"a", "b"}, HealthOptions{LatencyFactor: 0.1}, rec)

	succeed(hs, "a", 10*time.Millisecond, 6)
	if !hs.allowed("a") {
		t.Fatalf("straggler cut fired with no peer samples")
	}

	succeed(hs, "b", time.Millisecond, 1)
	succeed(hs, "a", 10*time.Millisecond, 1)
	if hs.allowed("a") {
		t.Fatalf("straggler cut did not fire once a peer had samples")
	}
}

// TestHealthIntegrityQuarantineIsPermanent verifies that an audit
// mismatch quarantines forever: the gate keeps refusing long after any
// timed cooldown would have expired, and no probe is ever admitted.
func TestHealthIntegrityQuarantineIsPermanent(t *testing.T) {
	rec := obs.NewRecorder()
	hs := newTestHealth([]string{"a"}, HealthOptions{Cooldown: time.Millisecond}, rec)

	hs.integrityFailure("a")
	if got := rec.Counter("farm.integrity_failures").Value(); got != 1 {
		t.Fatalf("integrity_failures counter = %d, want 1", got)
	}
	time.Sleep(20 * time.Millisecond) // far past the 1ms cooldown
	if ok, _ := hs.gate("a"); ok {
		t.Fatalf("gate admitted a permanently quarantined worker")
	}
	if got := rec.Counter("farm.health_probes").Value(); got != 0 {
		t.Fatalf("permanent quarantine probed anyway (probes=%d)", got)
	}
	var h WorkerHealth
	for _, w := range hs.snapshot() {
		if w.Addr == "a" {
			h = w
		}
	}
	if h.State != "quarantined" || !h.Permanent || h.IntegrityFailures != 1 {
		t.Fatalf("worker = %+v, want permanent integrity quarantine", h)
	}
}

// TestHealthBetterOrdering verifies the hedging path's lane-selection
// order: fewer errors first, then lower latency.
func TestHealthBetterOrdering(t *testing.T) {
	hs := newTestHealth([]string{"a", "b", "c"}, HealthOptions{}, obs.NewRecorder())
	fail(hs, "a", 1)
	succeed(hs, "b", 10*time.Millisecond, 1)
	succeed(hs, "c", time.Millisecond, 1)

	if !hs.better("b", "a") || hs.better("a", "b") {
		t.Fatalf("error-free worker should beat erroring worker")
	}
	if !hs.better("c", "b") || hs.better("b", "c") {
		t.Fatalf("lower-latency worker should beat slower one at equal error rate")
	}
	var nilHS *healthSet
	if nilHS.better("a", "b") {
		t.Fatalf("nil healthSet should never prefer")
	}
}

// TestHealthLatencyP95Warmup verifies that the hedging percentile stays
// 0 until 16 samples exist, then reflects the tail of the ring.
func TestHealthLatencyP95Warmup(t *testing.T) {
	hs := newTestHealth([]string{"a"}, HealthOptions{}, obs.NewRecorder())
	succeed(hs, "a", time.Millisecond, 15)
	if got := hs.latencyP95(); got != 0 {
		t.Fatalf("latencyP95 = %v with 15 samples, want 0 during warmup", got)
	}
	succeed(hs, "a", 100*time.Millisecond, 1)
	if got := hs.latencyP95(); got != 100*time.Millisecond {
		t.Fatalf("latencyP95 = %v, want the 100ms tail sample", got)
	}
}
