package farm

import (
	"log/slog"
	"slices"
	"sync"
	"time"

	"repro/internal/obs"
)

// HealthOptions tune per-worker health scoring and the circuit breaker
// that quarantines misbehaving workers (DESIGN.md §13). The zero value
// selects the documented defaults; scoring is on by default because a
// fleet with no failures never trips it.
type HealthOptions struct {
	// Disable turns health scoring, quarantine, and hedging's
	// healthiest-lane selection off entirely.
	Disable bool
	// ErrorThreshold quarantines a worker once its exchange error-rate
	// EWMA exceeds it (default 0.5), after MinSamples outcomes.
	ErrorThreshold float64
	// LatencyFactor quarantines a worker once its latency EWMA exceeds
	// LatencyFactor × the fleet-wide EWMA (default 6) — the straggler
	// cut. It never fires while this worker is the only one with
	// samples, so a single-worker fleet cannot quarantine itself.
	LatencyFactor float64
	// MinSamples is how many exchange outcomes a worker needs before
	// the thresholds are consulted (default 4).
	MinSamples int
	// Cooldown is the first quarantine's duration (default 5s); each
	// further quarantine doubles it, up to 8×. After the cooldown one
	// probe connection is allowed through (half-open); its first
	// exchange outcome either heals the worker or re-quarantines it.
	// Integrity failures (audit mismatches) quarantine permanently.
	Cooldown time.Duration
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.3).
	Alpha float64
}

func (o *HealthOptions) setDefaults() {
	if o.ErrorThreshold <= 0 {
		o.ErrorThreshold = 0.5
	}
	if o.LatencyFactor <= 0 {
		o.LatencyFactor = 6
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 4
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.3
	}
}

// Worker health states.
const (
	healthHealthy     = "healthy"
	healthQuarantined = "quarantined"
	healthProbing     = "probing"
)

// WorkerHealth is one worker's externally visible health snapshot — the
// shape GET /v1/scheduler serves in its "farm" section.
type WorkerHealth struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
	// Permanent marks an integrity quarantine: the worker returned a
	// provably wrong result and is never probed again.
	Permanent bool `json:"permanent,omitempty"`
	// LatencyMs is the EWMA of successful exchange latencies.
	LatencyMs float64 `json:"latency_ms"`
	// ErrorRate is the EWMA of exchange failures in [0, 1].
	ErrorRate float64 `json:"error_rate"`
	// Samples counts scored exchange outcomes.
	Samples int `json:"samples"`
	// IntegrityFailures counts audit mismatches.
	IntegrityFailures int `json:"integrity_failures,omitempty"`
	// Quarantines counts how often the breaker opened for this worker.
	Quarantines int `json:"quarantines,omitempty"`
	// Conns is the worker's current live connection count.
	Conns int `json:"conns"`
}

// workerHealth is one worker's scorecard. Guarded by healthSet.mu.
type workerHealth struct {
	addr        string
	state       string
	permanent   bool
	until       time.Time     // quarantine expiry (ignored when permanent)
	cooldown    time.Duration // next quarantine's duration (escalates)
	probing     bool          // a half-open probe dial is outstanding
	latEWMA     float64       // ns, successful exchanges only
	errEWMA     float64
	samples     int
	integrity   int
	quarantines int
	conns       map[*wconn]struct{}
}

// healthSet scores every worker's exchanges and runs the circuit
// breaker. A nil *healthSet (scoring disabled) is valid: every method
// no-ops and every gate stays open.
type healthSet struct {
	opts HealthOptions
	log  *slog.Logger

	gQuarantined *obs.Gauge   // farm.workers_quarantined: currently open
	cQuarantines *obs.Counter // farm.quarantines: total breaker opens
	cIntegrity   *obs.Counter // farm.integrity_failures
	cProbes      *obs.Counter // farm.health_probes

	mu      sync.Mutex
	workers map[string]*workerHealth
	// lats is a ring of recent successful exchange latencies (ns),
	// fleet-wide — the percentile source for the hedging budget.
	lats     [128]uint64
	latPos   int
	latCount int
	fleetLat float64 // ns, EWMA across all workers
}

func newHealthSet(opts HealthOptions, addrs []string, rec *obs.Recorder, log *slog.Logger) *healthSet {
	if opts.Disable {
		return nil
	}
	opts.setDefaults()
	hs := &healthSet{
		opts:    opts,
		log:     obs.OrNop(log),
		workers: make(map[string]*workerHealth, len(addrs)),
	}
	if rec != nil {
		hs.gQuarantined = rec.Gauge("farm.workers_quarantined")
		hs.cQuarantines = rec.Counter("farm.quarantines")
		hs.cIntegrity = rec.Counter("farm.integrity_failures")
		hs.cProbes = rec.Counter("farm.health_probes")
	}
	for _, addr := range addrs {
		hs.workers[addr] = &workerHealth{
			addr:     addr,
			state:    healthHealthy,
			cooldown: opts.Cooldown,
			conns:    map[*wconn]struct{}{},
		}
	}
	return hs
}

// get returns the worker's scorecard, creating one for addresses the
// constructor did not know about (defensive; addrs are fixed).
// Caller holds hs.mu.
func (hs *healthSet) get(addr string) *workerHealth {
	h := hs.workers[addr]
	if h == nil {
		h = &workerHealth{addr: addr, state: healthHealthy, cooldown: hs.opts.Cooldown, conns: map[*wconn]struct{}{}}
		hs.workers[addr] = h
	}
	return h
}

// attach registers a live connection with its worker's scorecard.
func (hs *healthSet) attach(addr string, w *wconn) {
	if hs == nil {
		return
	}
	hs.mu.Lock()
	hs.get(addr).conns[w] = struct{}{}
	hs.mu.Unlock()
}

// detach removes an evicted connection.
func (hs *healthSet) detach(addr string, w *wconn) {
	if hs == nil {
		return
	}
	hs.mu.Lock()
	delete(hs.get(addr).conns, w)
	hs.mu.Unlock()
}

// allowed reports whether chunks may be routed to the worker right now.
func (hs *healthSet) allowed(addr string) bool {
	if hs == nil {
		return true
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return hs.get(addr).state != healthQuarantined
}

// gate decides whether a keeper may dial its worker now. While the
// worker is quarantined it returns (false, pollInterval); when a timed
// quarantine has expired it flips to half-open and admits exactly one
// prober (the caller), refusing other slots until the probe resolves.
func (hs *healthSet) gate(addr string) (bool, time.Duration) {
	if hs == nil {
		return true, 0
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	h := hs.get(addr)
	switch h.state {
	case healthHealthy:
		return true, 0
	case healthQuarantined:
		if h.permanent {
			return false, 500 * time.Millisecond
		}
		wait := time.Until(h.until)
		if wait > 0 {
			if wait > 250*time.Millisecond {
				wait = 250 * time.Millisecond
			}
			return false, wait
		}
		// Cooldown over: half-open. This caller becomes the probe.
		h.state = healthProbing
		h.probing = true
		hs.cProbes.Inc()
		hs.log.Info("farm: worker half-open, probing", "worker", addr, "quarantines", h.quarantines)
		return true, 0
	default: // probing
		if h.probing {
			return false, 100 * time.Millisecond
		}
		h.probing = true
		return true, 0
	}
}

// dialFailed releases the half-open probe token when the probe's dial
// itself failed, so another keeper (or a retry) can take it. Dial
// failures deliberately do not feed error scoring: a worker that is
// down just keeps its keepers in redial backoff, which the breaker
// would only slow down.
func (hs *healthSet) dialFailed(addr string) {
	if hs == nil {
		return
	}
	hs.mu.Lock()
	h := hs.get(addr)
	if h.state == healthProbing {
		h.probing = false
	}
	hs.mu.Unlock()
}

// outcome scores one exchange (dur meaningful only when ok) and runs
// the breaker. It returns the connections to evict when the breaker
// opened — the caller kills them outside the lock.
func (hs *healthSet) outcome(addr string, dur time.Duration, ok bool) []*wconn {
	if hs == nil {
		return nil
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	h := hs.get(addr)
	a := hs.opts.Alpha
	h.samples++
	if ok {
		h.errEWMA *= 1 - a
		h.latEWMA = a*float64(dur) + (1-a)*h.latEWMA
		if hs.fleetLat == 0 {
			hs.fleetLat = float64(dur)
		} else {
			hs.fleetLat = a*float64(dur) + (1-a)*hs.fleetLat
		}
		hs.lats[hs.latPos] = uint64(dur)
		hs.latPos = (hs.latPos + 1) % len(hs.lats)
		if hs.latCount < len(hs.lats) {
			hs.latCount++
		}
	} else {
		h.errEWMA = a + (1-a)*h.errEWMA
	}

	switch h.state {
	case healthProbing:
		h.probing = false
		if ok {
			hs.heal(h)
			return nil
		}
		return hs.quarantine(h, "probe failed", false)
	case healthHealthy:
		if h.samples < hs.opts.MinSamples {
			return nil
		}
		if h.errEWMA > hs.opts.ErrorThreshold {
			return hs.quarantine(h, "error rate", false)
		}
		if h.latEWMA > hs.opts.LatencyFactor*hs.fleetLat && hs.othersSampled(h) {
			return hs.quarantine(h, "straggling", false)
		}
	}
	return nil
}

// integrityFailure records an audit mismatch: the worker returned a
// provably wrong result, so it is quarantined permanently (no half-open
// probing — a byzantine worker does not get better by waiting). Returns
// the connections to evict.
func (hs *healthSet) integrityFailure(addr string) []*wconn {
	if hs == nil {
		return nil
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	h := hs.get(addr)
	h.integrity++
	hs.cIntegrity.Inc()
	return hs.quarantine(h, "integrity failure", true)
}

// othersSampled reports whether any other worker has scored samples —
// the guard that keeps a single-worker fleet from being its own
// latency baseline. Caller holds hs.mu.
func (hs *healthSet) othersSampled(h *workerHealth) bool {
	for _, o := range hs.workers {
		if o != h && o.samples > 0 {
			return true
		}
	}
	return false
}

// quarantine opens the breaker. Caller holds hs.mu; the returned
// connections must be killed after release.
func (hs *healthSet) quarantine(h *workerHealth, reason string, permanent bool) []*wconn {
	if h.state == healthQuarantined {
		if permanent {
			h.permanent = true
		}
		return nil
	}
	h.state = healthQuarantined
	h.probing = false
	h.permanent = h.permanent || permanent
	h.quarantines++
	h.until = time.Now().Add(h.cooldown)
	if next := h.cooldown * 2; next <= 8*hs.opts.Cooldown {
		h.cooldown = next
	}
	hs.gQuarantined.Add(1)
	hs.cQuarantines.Inc()
	hs.log.Warn("farm: worker quarantined",
		"worker", h.addr, "reason", reason, "permanent", h.permanent,
		"error_rate", h.errEWMA, "latency_ms", h.latEWMA/1e6,
		"samples", h.samples, "quarantines", h.quarantines)
	victims := make([]*wconn, 0, len(h.conns))
	for w := range h.conns {
		victims = append(victims, w)
	}
	return victims
}

// heal closes the breaker after a successful probe. The error score is
// forgiven and samples reset so MinSamples must re-accumulate before
// the breaker can trip again; latency memory is kept. Caller holds
// hs.mu.
func (hs *healthSet) heal(h *workerHealth) {
	h.state = healthHealthy
	h.errEWMA = 0
	h.samples = 0
	hs.gQuarantined.Add(-1)
	hs.log.Info("farm: worker healed", "worker", h.addr, "quarantines", h.quarantines)
}

// better reports whether worker a is currently healthier than b — the
// hedging path's lane-selection order (fewer errors, then lower
// latency).
func (hs *healthSet) better(a, b string) bool {
	if hs == nil {
		return false
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	ha, hb := hs.get(a), hs.get(b)
	if ha.errEWMA != hb.errEWMA {
		return ha.errEWMA < hb.errEWMA
	}
	return ha.latEWMA < hb.latEWMA
}

// latencyP95 estimates the 95th-percentile exchange latency from the
// recent-latency ring, or 0 until at least 16 samples exist (hedging
// stays off during warmup rather than hedging on noise).
func (hs *healthSet) latencyP95() time.Duration {
	if hs == nil {
		return 0
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if hs.latCount < 16 {
		return 0
	}
	buf := make([]uint64, hs.latCount)
	copy(buf, hs.lats[:hs.latCount])
	slices.Sort(buf)
	return time.Duration(buf[(len(buf)*95)/100])
}

// snapshot returns every worker's externally visible health, sorted by
// address.
func (hs *healthSet) snapshot() []WorkerHealth {
	if hs == nil {
		return nil
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	out := make([]WorkerHealth, 0, len(hs.workers))
	for _, h := range hs.workers {
		out = append(out, WorkerHealth{
			Addr:              h.addr,
			State:             h.state,
			Permanent:         h.permanent,
			LatencyMs:         h.latEWMA / 1e6,
			ErrorRate:         h.errEWMA,
			Samples:           h.samples,
			IntegrityFailures: h.integrity,
			Quarantines:       h.quarantines,
			Conns:             len(h.conns),
		})
	}
	slices.SortFunc(out, func(a, b WorkerHealth) int {
		if a.Addr < b.Addr {
			return -1
		}
		if a.Addr > b.Addr {
			return 1
		}
		return 0
	})
	return out
}
