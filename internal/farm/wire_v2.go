package farm

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Protocol v2: the chunk-path binary codec. Framing is unchanged — one
// 4-byte big-endian length, then the payload, bounded by MaxFrame, one
// Write call per frame — but the payload is a compact fixed layout
// instead of JSON: a type byte, varint scalar fields, length-prefixed
// strings, one fixed 8-byte seed, and the per-event hit counts as a
// dense varint array. No reflection and no encoding/json run anywhere
// on the chunk path, and both directions work against caller-owned,
// grow-once scratch buffers (the per-connection codec) or a shared
// sync.Pool (the stateless WriteFrameV2/ReadFrameV2), so steady-state
// encode/decode allocates nothing.
//
// Payload layout (all multi-byte scalars are unsigned varints except
// Seed, which is fixed64 little-endian; strings are varint length +
// bytes; every field of the flat Frame struct is always present, so
// any Frame round-trips exactly and the v1 and v2 codecs are
// interchangeable frame for frame):
//
//	type     byte    (see v2 type table)
//	version  uvarint
//	max      uvarint
//	capacity uvarint
//	id       uvarint
//	unit     string
//	has_tmpl byte (0/1)
//	template string
//	seed     fixed64 LE
//	lo       uvarint
//	hi       uvarint
//	sims     uvarint
//	err      string
//	nhits    uvarint, then nhits × uvarint hit counts
//
// Protocol v3 appends the trace-correlation trailer to the same
// layout — the strict v2 decoder rejects trailing bytes, which is
// exactly why the trailer rides behind a negotiated version bump
// instead of being bolted onto v2 frames:
//
//	campaign string
//	batch    uvarint
//	chunk    uvarint
//	build    string

// v2 type bytes. 0 is deliberately invalid so an all-zero payload is
// rejected.
const (
	v2TypeHello byte = iota + 1
	v2TypeWelcome
	v2TypeChunk
	v2TypeResult
	v2TypePing
	v2TypePong
	v2TypeError
)

var v2TypeToByte = map[string]byte{
	TypeHello:   v2TypeHello,
	TypeWelcome: v2TypeWelcome,
	TypeChunk:   v2TypeChunk,
	TypeResult:  v2TypeResult,
	TypePing:    v2TypePing,
	TypePong:    v2TypePong,
	TypeError:   v2TypeError,
}

var v2ByteToType = [...]string{
	v2TypeHello:   TypeHello,
	v2TypeWelcome: TypeWelcome,
	v2TypeChunk:   TypeChunk,
	v2TypeResult:  TypeResult,
	v2TypePing:    TypePing,
	v2TypePong:    TypePong,
	v2TypeError:   TypeError,
}

// appendFrameV2 appends f's v2 payload to dst and returns the extended
// slice. It fails on frames v2 cannot represent (unknown type,
// negative scalar fields) rather than encoding garbage.
func appendFrameV2(dst []byte, f *Frame) ([]byte, error) {
	tb, ok := v2TypeToByte[f.Type]
	if !ok {
		return dst, fmt.Errorf("farm: v2 encode: unknown frame type %q", f.Type)
	}
	if f.Version < 0 || f.Max < 0 || f.Capacity < 0 || f.Lo < 0 || f.Hi < 0 {
		return dst, fmt.Errorf("farm: v2 encode: negative field in %q frame", f.Type)
	}
	dst = append(dst, tb)
	dst = binary.AppendUvarint(dst, uint64(f.Version))
	dst = binary.AppendUvarint(dst, uint64(f.Max))
	dst = binary.AppendUvarint(dst, uint64(f.Capacity))
	dst = binary.AppendUvarint(dst, f.ID)
	dst = appendV2String(dst, f.Unit)
	if f.HasTemplate {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendV2String(dst, f.Template)
	dst = binary.LittleEndian.AppendUint64(dst, f.Seed)
	dst = binary.AppendUvarint(dst, uint64(f.Lo))
	dst = binary.AppendUvarint(dst, uint64(f.Hi))
	dst = binary.AppendUvarint(dst, f.Sims)
	dst = appendV2String(dst, f.Err)
	dst = binary.AppendUvarint(dst, uint64(len(f.Hits)))
	for _, h := range f.Hits {
		dst = binary.AppendUvarint(dst, h)
	}
	return dst, nil
}

// appendFrameV3 is appendFrameV2 plus the trace-correlation trailer.
func appendFrameV3(dst []byte, f *Frame) ([]byte, error) {
	dst, err := appendFrameV2(dst, f)
	if err != nil {
		return dst, err
	}
	dst = appendV2String(dst, f.Campaign)
	dst = binary.AppendUvarint(dst, f.Batch)
	dst = binary.AppendUvarint(dst, f.Chunk)
	dst = appendV2String(dst, f.Build)
	return dst, nil
}

func appendV2String(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// v2Reader walks a payload with sticky error state so decode code
// stays linear; every accessor is bounds-checked.
type v2Reader struct {
	p   []byte
	off int
	err error
}

func (r *v2Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("farm: v2 decode: truncated or malformed %s at offset %d", what, r.off)
	}
}

func (r *v2Reader) byte(what string) byte {
	if r.err != nil || r.off >= len(r.p) {
		r.fail(what)
		return 0
	}
	b := r.p[r.off]
	r.off++
	return b
}

func (r *v2Reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.p[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *v2Reader) varintInt(what string) int {
	v := r.uvarint(what)
	if r.err == nil && v > 1<<31-1 {
		// int fields (version, capacity, lo, hi, lengths) never
		// legitimately exceed 31 bits; reject before any conversion
		// trap. Lengths are additionally bounded by the payload.
		r.fail(what)
		return 0
	}
	return int(v)
}

func (r *v2Reader) str(what string) string {
	n := r.varintInt(what)
	if r.err != nil {
		return ""
	}
	if r.off+n > len(r.p) {
		r.fail(what)
		return ""
	}
	if n == 0 {
		return ""
	}
	s := string(r.p[r.off : r.off+n])
	r.off += n
	return s
}

func (r *v2Reader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.p) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v
}

// decodeFrameV2 decodes one v2 payload into f, reusing f's Hits
// capacity. Trailing bytes, truncated fields, unknown types and
// implausible lengths are all rejected.
func decodeFrameV2(p []byte, f *Frame) error {
	return decodeFrameBinary(p, f, ProtocolV2)
}

// decodeFrameV3 additionally decodes the trace-correlation trailer.
func decodeFrameV3(p []byte, f *Frame) error {
	return decodeFrameBinary(p, f, ProtocolV3)
}

func decodeFrameBinary(p []byte, f *Frame, version int) error {
	hits := f.Hits[:0]
	*f = Frame{}
	r := &v2Reader{p: p}
	tb := r.byte("type")
	if r.err == nil && (int(tb) >= len(v2ByteToType) || v2ByteToType[tb] == "") {
		return fmt.Errorf("farm: v2 decode: unknown frame type byte %d", tb)
	}
	f.Type = v2ByteToType[tb]
	f.Version = r.varintInt("version")
	f.Max = r.varintInt("max")
	f.Capacity = r.varintInt("capacity")
	f.ID = r.uvarint("id")
	f.Unit = r.str("unit")
	f.HasTemplate = r.byte("has_tmpl") != 0
	f.Template = r.str("template")
	f.Seed = r.u64("seed")
	f.Lo = r.varintInt("lo")
	f.Hi = r.varintInt("hi")
	f.Sims = r.uvarint("sims")
	f.Err = r.str("err")
	nhits := r.varintInt("nhits")
	if r.err == nil && nhits > len(p)-r.off {
		// Every hit count takes at least one byte, so a declared count
		// beyond the remaining payload is garbage — reject before
		// growing the hits buffer.
		r.fail("nhits")
	}
	if r.err == nil && nhits > 0 {
		if cap(hits) < nhits {
			hits = make([]uint64, 0, nhits)
		}
		for i := 0; i < nhits; i++ {
			hits = append(hits, r.uvarint("hit"))
		}
		f.Hits = hits[:nhits]
	}
	if version >= ProtocolV3 {
		f.Campaign = r.str("campaign")
		f.Batch = r.uvarint("batch")
		f.Chunk = r.uvarint("chunk")
		f.Build = r.str("build")
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(p) {
		return fmt.Errorf("farm: v2 decode: %d trailing bytes after %q frame", len(p)-r.off, f.Type)
	}
	return nil
}

// codec speaks one negotiated protocol version on one connection. A
// connection is owned by exactly one goroutine at a time (dispatcher
// lane, heartbeater, or server handler), so the codec's grow-once
// scratch buffers are reused across every frame of the session without
// synchronization — after warm-up the chunk path allocates nothing.
type codec struct {
	version int
	wbuf    []byte // encode scratch: 4-byte length prefix + payload
	rbuf    []byte // decode scratch: one payload
}

// write encodes f with the negotiated codec as one length-prefixed
// frame in a single Write call (the contract the fault-injection
// loopback counts on).
func (c *codec) write(w io.Writer, f *Frame) error {
	if c.version < ProtocolV2 {
		return WriteFrame(w, f)
	}
	if cap(c.wbuf) < 4 {
		c.wbuf = make([]byte, 4, 512)
	}
	var buf []byte
	var err error
	if c.version >= ProtocolV3 {
		buf, err = appendFrameV3(c.wbuf[:4], f)
	} else {
		buf, err = appendFrameV2(c.wbuf[:4], f)
	}
	if err != nil {
		return err
	}
	c.wbuf = buf[:0]
	if len(buf)-4 > MaxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	_, err = w.Write(buf)
	return err
}

// read decodes one frame with the negotiated codec into f, reusing the
// codec's payload scratch and f's Hits capacity.
func (c *codec) read(r io.Reader, f *Frame) error {
	if c.version < ProtocolV2 {
		return ReadFrame(r, f)
	}
	// The header goes through the codec scratch, not a local array: a
	// local would escape through the io.Reader interface and cost one
	// heap allocation per frame.
	if cap(c.rbuf) < 4 {
		c.rbuf = make([]byte, 0, 512)
	}
	hdr := c.rbuf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return err
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	if cap(c.rbuf) < n {
		c.rbuf = make([]byte, n)
	}
	p := c.rbuf[:n]
	if _, err := io.ReadFull(r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return decodeFrameBinary(p, f, c.version)
}

// codecPool backs the stateless WriteFrameV2/ReadFrameV2: transient
// callers (handshake-free tools, fuzzers, benches) share pooled
// scratch instead of allocating per frame.
var codecPool = sync.Pool{New: func() any { return &codec{version: ProtocolV2} }}

// WriteFrameV2 encodes f as one v2 binary frame using pooled scratch.
// Sessions should prefer a per-connection codec, which amortizes
// without pool traffic.
func WriteFrameV2(w io.Writer, f *Frame) error {
	c := codecPool.Get().(*codec)
	err := c.write(w, f)
	codecPool.Put(c)
	return err
}

// ReadFrameV2 decodes one v2 binary frame using pooled scratch.
func ReadFrameV2(r io.Reader, f *Frame) error {
	c := codecPool.Get().(*codec)
	err := c.read(r, f)
	codecPool.Put(c)
	return err
}
