package farm

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/duv/iounit"
	"repro/internal/obs"
	"repro/internal/sim"
)

// quickFrame builds a codec-representable frame from fuzz/quick raw
// material (valid type, non-negative ints, valid UTF-8 strings — the
// set both codecs promise to round-trip).
func quickFrame(typeIdx uint8, version, capacity uint16, id, seed, sims uint64,
	lo, hi uint16, unit, errMsg string, hasTmpl bool, hits []uint64) Frame {
	types := []string{TypeHello, TypeWelcome, TypeChunk, TypeResult, TypePing, TypePong, TypeError}
	f := Frame{
		Type:        types[int(typeIdx)%len(types)],
		Version:     int(version),
		Capacity:    int(capacity),
		ID:          id,
		Unit:        strings.ToValidUTF8(unit, "?"),
		Seed:        seed,
		Lo:          int(lo),
		Hi:          int(hi),
		HasTemplate: hasTmpl,
		Sims:        sims,
		Err:         strings.ToValidUTF8(errMsg, "?"),
	}
	if hasTmpl {
		f.Template = "template t { weight Mode { a: 1; } }"
	}
	if len(hits) > 0 { // both codecs fold empty slices to nil
		f.Hits = hits
	}
	return f
}

// TestFrameRoundTripQuickV2 property-checks the binary codec: any
// representable frame survives v2 encode → decode bit for bit, and the
// v1 and v2 codecs decode to the identical frame.
func TestFrameRoundTripQuickV2(t *testing.T) {
	prop := func(typeIdx uint8, version, capacity uint16, id, seed, sims uint64,
		lo, hi uint16, unit, errMsg string, hasTmpl bool, hits []uint64) bool {
		f := quickFrame(typeIdx, version, capacity, id, seed, sims, lo, hi, unit, errMsg, hasTmpl, hits)
		var buf bytes.Buffer
		if err := WriteFrameV2(&buf, &f); err != nil {
			return false
		}
		var v2 Frame
		if err := ReadFrameV2(&buf, &v2); err != nil {
			return false
		}
		if !reflect.DeepEqual(f, v2) {
			return false
		}
		buf.Reset()
		if err := WriteFrame(&buf, &f); err != nil {
			return false
		}
		var v1 Frame
		if err := ReadFrame(&buf, &v1); err != nil {
			return false
		}
		return reflect.DeepEqual(v1, v2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct{ client, server, want int }{
		{2, 2, 2},
		{1, 2, 1},
		{2, 1, 1},
		{0, 2, 1}, // field absent: pre-negotiation client
		{2, 0, 1},
		{1, 1, 1},
		{3, 2, 2}, // future client against this build
	}
	for _, c := range cases {
		if got := negotiate(c.client, c.server); got != c.want {
			t.Errorf("negotiate(%d, %d) = %d, want %d", c.client, c.server, got, c.want)
		}
	}
	clamp := []struct{ in, want int }{{0, ProtocolVersion}, {1, 1}, {2, 2}, {3, ProtocolVersion}, {-1, ProtocolVersion}}
	for _, c := range clamp {
		if got := clampMaxVersion(c.in); got != c.want {
			t.Errorf("clampMaxVersion(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestHandshakeNegotiation drives the server handshake directly and
// checks the negotiated version lands in the welcome's Max field and
// that the session actually speaks the negotiated codec afterwards.
func TestHandshakeNegotiation(t *testing.T) {
	cases := []struct {
		name      string
		serverMax int // ServerOptions.MaxVersion (0: highest)
		helloMax  int
		want      int
	}{
		{"both_current", 0, ProtocolVersion, ProtocolVersion},
		{"old_client_no_max", 0, 0, ProtocolV1},
		{"v1_capped_server", 1, ProtocolVersion, ProtocolV1},
		{"v1_capped_client", 0, 1, ProtocolV1},
		{"v2_capped_client", 0, 2, ProtocolV2},
		{"future_client", 0, ProtocolVersion + 5, ProtocolVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := NewServer(ServerOptions{Capacity: 1, MaxVersion: tc.serverMax})
			defer srv.Shutdown()
			client, server := net.Pipe()
			defer client.Close()
			go srv.ServeConn(server)
			client.SetDeadline(time.Now().Add(5 * time.Second))
			if err := WriteFrame(client, &Frame{Type: TypeHello, Version: ProtocolV1, Max: tc.helloMax}); err != nil {
				t.Fatal(err)
			}
			var welcome Frame
			if err := ReadFrame(client, &welcome); err != nil {
				t.Fatal(err)
			}
			if welcome.Type != TypeWelcome || welcome.Version != ProtocolV1 {
				t.Fatalf("welcome = %+v", welcome)
			}
			if welcome.Max != tc.want {
				t.Fatalf("negotiated v%d, want v%d", welcome.Max, tc.want)
			}
			// Prove the session switched codecs: a ping in the negotiated
			// codec gets a pong in the negotiated codec.
			cdc := &codec{version: welcome.Max}
			if err := cdc.write(client, &Frame{Type: TypePing, ID: 77}); err != nil {
				t.Fatal(err)
			}
			var pong Frame
			if err := cdc.read(client, &pong); err != nil {
				t.Fatal(err)
			}
			if pong.Type != TypePong || pong.ID != 77 {
				t.Fatalf("pong = %+v", pong)
			}
		})
	}
}

// TestDialNegotiation drives the dispatcher's side: what it stores in
// the connection codec for old, capped, and lying peers.
func TestDialNegotiation(t *testing.T) {
	t.Run("old_worker_no_max", func(t *testing.T) {
		// A pre-negotiation worker answers the welcome without Max and
		// then speaks v1 only.
		fakeDial := func(string) (net.Conn, error) {
			client, server := net.Pipe()
			go func() {
				defer server.Close()
				var f Frame
				if ReadFrame(server, &f) != nil {
					return
				}
				WriteFrame(server, &Frame{Type: TypeWelcome, Version: ProtocolV1, Capacity: 1})
				var p Frame
				if ReadFrame(server, &p) == nil && p.Type == TypePing {
					WriteFrame(server, &Frame{Type: TypePong, ID: p.ID})
				}
			}()
			return client, nil
		}
		d := New(nil, Options{Dial: fakeDial})
		defer d.Close()
		w, capacity, err := d.dial(0, "old")
		if err != nil {
			t.Fatal(err)
		}
		defer w.conn.Close()
		if w.cdc.version != ProtocolV1 || capacity != 1 {
			t.Fatalf("negotiated v%d cap %d, want v1 cap 1", w.cdc.version, capacity)
		}
		if err := d.ping(w); err != nil {
			t.Fatalf("v1 session ping: %v", err)
		}
	})
	t.Run("overbidding_worker", func(t *testing.T) {
		// A broken worker that "negotiates" above what we offered must be
		// refused — accepting would desynchronize the codecs.
		fakeDial := func(string) (net.Conn, error) {
			client, server := net.Pipe()
			go func() {
				defer server.Close()
				var f Frame
				if ReadFrame(server, &f) != nil {
					return
				}
				WriteFrame(server, &Frame{Type: TypeWelcome, Version: ProtocolV1, Max: ProtocolVersion + 7, Capacity: 1})
			}()
			return client, nil
		}
		d := New(nil, Options{Dial: fakeDial, Heartbeat: -1})
		defer d.Close()
		if _, _, err := d.dial(0, "liar"); !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("err = %v, want ErrVersionMismatch", err)
		}
	})
}

// TestV2EncodeRejects checks the encoder refuses frames v2 cannot
// represent instead of writing garbage.
func TestV2EncodeRejects(t *testing.T) {
	if _, err := appendFrameV2(nil, &Frame{Type: "martian"}); err == nil {
		t.Fatal("unknown type encoded")
	}
	if _, err := appendFrameV2(nil, &Frame{Type: TypeChunk, Lo: -1}); err == nil {
		t.Fatal("negative field encoded")
	}
}

// TestV2DecodeRejects checks malformed payloads are rejected rather
// than misread: empty input, unknown types, truncations at every
// boundary, phantom hit counts, and trailing bytes.
func TestV2DecodeRejects(t *testing.T) {
	valid, err := appendFrameV2(nil, &Frame{
		Type: TypeResult, ID: 9, Hits: []uint64{1, 0, 300}, Sims: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := decodeFrameV2(nil, &f); err == nil {
		t.Fatal("empty payload accepted")
	}
	for _, tb := range []byte{0, v2TypeError + 1, 200} {
		p := append([]byte{tb}, valid[1:]...)
		if err := decodeFrameV2(p, &f); err == nil {
			t.Fatalf("unknown type byte %d accepted", tb)
		}
	}
	for cut := 1; cut < len(valid); cut++ {
		if err := decodeFrameV2(valid[:cut], &f); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(valid))
		}
	}
	if err := decodeFrameV2(append(append([]byte{}, valid...), 0), &f); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A declared hit count beyond the remaining payload must be rejected
	// before any allocation: rebuild the frame with nhits=200 and no
	// hit bytes behind it.
	noHits, err := appendFrameV2(nil, &Frame{Type: TypeResult, ID: 9, Sims: 3})
	if err != nil {
		t.Fatal(err)
	}
	phantom := append(noHits[:len(noHits)-1], 200, 1) // nhits varint = 200
	if err := decodeFrameV2(phantom, &f); err == nil {
		t.Fatal("phantom hit count accepted")
	}
}

// countingWriter counts Write calls — the frame-counting contract the
// fault-injection loopback relies on.
type countingWriter struct {
	writes int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.writes++
	return len(p), nil
}

func TestCodecOneWritePerFrame(t *testing.T) {
	for _, version := range []int{ProtocolV1, ProtocolV2} {
		cw := &countingWriter{}
		c := &codec{version: version}
		if err := c.write(cw, &Frame{Type: TypeResult, ID: 1, Hits: []uint64{1, 2, 3}, Sims: 3}); err != nil {
			t.Fatal(err)
		}
		if cw.writes != 1 {
			t.Fatalf("v%d frame took %d Write calls, want 1", version, cw.writes)
		}
	}
}

// TestCodecV2RoundTripAllocs pins the steady-state promise: a warm
// per-connection codec moves result frames with zero allocations on
// both the encode and decode side.
func TestCodecV2RoundTripAllocs(t *testing.T) {
	c := &codec{version: ProtocolV2}
	hits := make([]uint64, 512)
	for i := range hits {
		hits[i] = uint64(i * 7)
	}
	f := &Frame{Type: TypeResult, ID: 3, Hits: hits, Sims: 99}
	got := Frame{Hits: make([]uint64, 0, len(hits))}
	var buf bytes.Buffer
	buf.Grow(16 << 10)
	// Warm the codec scratch once.
	if err := c.write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if err := c.read(&buf, &got); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf.Reset()
		if err := c.write(&buf, f); err != nil {
			t.Fatal(err)
		}
		if err := c.read(&buf, &got); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm v2 result round-trip allocates %.1f times per frame, want 0", allocs)
	}
	if !reflect.DeepEqual(f.Hits, got.Hits) || got.Sims != f.Sims {
		t.Fatal("round-trip corrupted the frame")
	}
}

func TestCheckModelFits(t *testing.T) {
	if err := CheckModelFits(MaxEventsV2(), ProtocolV2); err != nil {
		t.Fatalf("boundary model rejected: %v", err)
	}
	err := CheckModelFits(MaxEventsV2()+1, ProtocolV2)
	var mtl *ModelTooLargeError
	if !errors.As(err, &mtl) {
		t.Fatalf("err = %v, want *ModelTooLargeError", err)
	}
	if mtl.Events != MaxEventsV2()+1 || mtl.MaxEvents != MaxEventsV2() || mtl.Version != ProtocolV2 {
		t.Fatalf("error fields = %+v", mtl)
	}
	if errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("ModelTooLargeError must be distinguishable from ErrFrameTooLarge")
	}
	if err := CheckModelFits(1<<40, ProtocolV1); err == nil {
		t.Fatal("absurd model accepted at v1")
	}
}

// TestFarmModelTooLarge checks the dispatcher's behavior on a model
// that cannot fit a legal frame: the typed error surfaces immediately,
// nothing is retried, and the (healthy) connection survives and keeps
// serving.
func TestFarmModelTooLarge(t *testing.T) {
	rec := obs.NewRecorder()
	d, _ := farmFixture(t, []Faults{{}}, rec)
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	_, err := d.RunChunk(sim.RemoteChunk{
		Unit: iounit.UnitName, Seed: 1, Lo: 0, Hi: 4, Events: MaxEventsV2() + 1,
	})
	var mtl *ModelTooLargeError
	if !errors.As(err, &mtl) {
		t.Fatalf("err = %v, want *ModelTooLargeError", err)
	}
	snap := rec.Metrics.Snapshot()
	if snap.Counters["farm.conn_evictions"] != 0 {
		t.Fatal("healthy connection evicted over a permanent model-size error")
	}
	if snap.Counters["farm.retries"] != 0 {
		t.Fatal("permanent model-size error was retried")
	}
	// The same connection still executes normal chunks.
	unit := iounit.New()
	got, err := d.RunChunk(sim.RemoteChunk{
		Unit: iounit.UnitName, Seed: 42, Lo: 0, Hi: 10, Events: unit.Model().Size(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Sims() != 10 {
		t.Fatalf("post-error chunk sims = %d, want 10", got.Sims())
	}
}

// TestFarmMixedVersionFleet is the mixed-fleet acceptance test: one
// worker pinned to v1 and one speaking v2 (and a dispatcher forced to
// v1 against v2 workers), with and without fault injection, must all
// produce the bit-identical aggregate with exactly-once accounting.
func TestFarmMixedVersionFleet(t *testing.T) {
	want := workload(t, nil, 0)
	scenarios := []struct {
		name      string
		faults    []Faults
		serverMax []int
		dispMax   int
		wantV1    bool
		wantV2    bool
	}{
		{"one_v1_one_v2", []Faults{{}, {}}, []int{1, 0}, 0, true, true},
		{"dispatcher_forced_v1", []Faults{{}, {}}, nil, 1, true, false},
		{"mixed_under_faults", []Faults{{DuplicateEvery: 2}, {DropAfterFrames: 6}}, []int{1, 0}, 0, true, true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			rec := obs.NewRecorder()
			d, _ := farmFixtureV(t, sc.faults, sc.serverMax, sc.dispMax, rec)
			got := workload(t, d, d.Lanes())
			diffCounts(t, sc.name, got, want)
			// A tiny workload can finish on local fallback before every
			// keeper's handshake lands; the connection counters are about
			// the fleet, not the workload, so poll until the dials settle.
			deadline := time.Now().Add(5 * time.Second)
			snap := rec.Metrics.Snapshot()
			for (sc.wantV1 && snap.Counters["farm.conns_v1"] == 0) ||
				(sc.wantV2 && snap.Counters["farm.conns_v2"] == 0) {
				if time.Now().After(deadline) {
					break
				}
				time.Sleep(5 * time.Millisecond)
				snap = rec.Metrics.Snapshot()
			}
			if sc.wantV1 && snap.Counters["farm.conns_v1"] == 0 {
				t.Fatal("no v1 connections in a fleet that requires them")
			}
			if sc.wantV2 && snap.Counters["farm.conns_v2"] == 0 {
				t.Fatal("no v2 connections in a fleet that requires them")
			}
			if !sc.wantV2 && snap.Counters["farm.conns_v2"] != 0 {
				t.Fatalf("%d v2 connections under a v1-forced dispatcher", snap.Counters["farm.conns_v2"])
			}
		})
	}
}

// FuzzWireDecodeV2 fuzzes the binary decoder with raw payloads: any
// input either fails cleanly or yields a frame that re-encodes and
// re-decodes to itself (semantic idempotence — overlong varints may
// re-encode shorter, but never to a different frame).
func FuzzWireDecodeV2(f *testing.F) {
	seeds := []Frame{
		{Type: TypeHello, Version: ProtocolV1, Max: ProtocolV2},
		{Type: TypeWelcome, Version: ProtocolV1, Max: ProtocolV2, Capacity: 4},
		{Type: TypeChunk, ID: 7, Unit: "iounit", Template: "template t { weight Mode { a: 1; } }", HasTemplate: true, Seed: 99, Lo: 8, Hi: 24},
		{Type: TypeResult, ID: 7, Hits: []uint64{0, 1, 1 << 40}, Sims: 16},
		{Type: TypePing, ID: 3},
		{Type: TypeError, Err: "boom"},
	}
	for i := range seeds {
		p, err := appendFrameV2(nil, &seeds[i])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{v2TypeResult})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, p []byte) {
		var fr Frame
		if err := decodeFrameV2(p, &fr); err != nil {
			return
		}
		enc, err := appendFrameV2(nil, &fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v (%+v)", err, fr)
		}
		var fr2 Frame
		if err := decodeFrameV2(enc, &fr2); err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("round-trip diverged:\n%+v\nvs\n%+v", fr, fr2)
		}
	})
}

// FuzzWireCrossVersion fuzzes structured frames through both codecs
// and demands they agree: what v1 JSON round-trips and what v2 binary
// round-trips must be the same frame.
func FuzzWireCrossVersion(f *testing.F) {
	f.Add(uint8(3), uint16(1), uint16(2), uint64(7), uint64(99), uint64(16),
		uint16(0), uint16(64), "iounit", "", false, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(6), uint16(0), uint16(0), uint64(0), uint64(0), uint64(0),
		uint16(0), uint16(0), "", "it broke", false, []byte{})
	f.Fuzz(func(t *testing.T, typeIdx uint8, version, capacity uint16, id, seed, sims uint64,
		lo, hi uint16, unit, errMsg string, hasTmpl bool, hitsRaw []byte) {
		hits := make([]uint64, 0, len(hitsRaw)/8)
		for i := 0; i+8 <= len(hitsRaw); i += 8 {
			var h uint64
			for j := 0; j < 8; j++ {
				h = h<<8 | uint64(hitsRaw[i+j])
			}
			hits = append(hits, h)
		}
		fr := quickFrame(typeIdx, version, capacity, id, seed, sims, lo, hi, unit, errMsg, hasTmpl, hits)
		var buf bytes.Buffer
		if err := WriteFrameV2(&buf, &fr); err != nil {
			t.Fatalf("v2 encode: %v", err)
		}
		var v2 Frame
		if err := ReadFrameV2(&buf, &v2); err != nil {
			t.Fatalf("v2 decode: %v", err)
		}
		buf.Reset()
		if err := WriteFrame(&buf, &fr); err != nil {
			t.Fatalf("v1 encode: %v", err)
		}
		var v1 Frame
		if err := ReadFrame(&buf, &v1); err != nil {
			t.Fatalf("v1 decode: %v", err)
		}
		if !reflect.DeepEqual(fr, v2) {
			t.Fatalf("v2 diverged from input:\n%+v\nvs\n%+v", v2, fr)
		}
		if !reflect.DeepEqual(v1, v2) {
			t.Fatalf("codecs disagree:\n%+v\nvs\n%+v", v1, v2)
		}
	})
}

// TestReadFrameV2RejectsOversizedLength mirrors the v1 guard: a
// declared length beyond MaxFrame fails before allocating.
func TestReadFrameV2RejectsOversizedLength(t *testing.T) {
	var hdr [4]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0xff
	var f Frame
	if err := ReadFrameV2(bytes.NewReader(hdr[:]), &f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestWriteFrameV2RejectsOversized mirrors the v1 write guard.
func TestWriteFrameV2RejectsOversized(t *testing.T) {
	f := &Frame{Type: TypeChunk, Template: strings.Repeat("x", MaxFrame+1), HasTemplate: true}
	if err := WriteFrameV2(io.Discard, f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}
