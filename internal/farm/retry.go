package farm

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ApplyRetrySpec parses a -farm-retry specification into the options'
// retry/backoff parameters. The spec is comma-separated key=value
// pairs; keys not mentioned keep their previous value (and therefore
// the documented defaults):
//
//	base=50ms       first backoff step (Go duration)
//	cap=2s          backoff ceiling (Go duration)
//	attempts=3      connections a chunk tries before local fallback
//	jitter=0.25     ± jitter fraction in [0, 1]; 0 disables jitter
//
// An empty spec is a no-op. On error the options are left unchanged.
func (o *Options) ApplyRetrySpec(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	next := *o
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		key, val, ok := strings.Cut(pair, "=")
		if !ok || val == "" {
			return fmt.Errorf("farm: retry spec %q: want key=value", pair)
		}
		switch key {
		case "base", "cap":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return fmt.Errorf("farm: retry spec %s=%q: want a positive duration", key, val)
			}
			if key == "base" {
				next.BackoffBase = d
			} else {
				next.BackoffMax = d
			}
		case "attempts":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return fmt.Errorf("farm: retry spec attempts=%q: want an integer >= 1", val)
			}
			next.Attempts = n
		case "jitter":
			j, err := strconv.ParseFloat(val, 64)
			if err != nil || j < 0 || j > 1 {
				return fmt.Errorf("farm: retry spec jitter=%q: want a fraction in [0, 1]", val)
			}
			if j == 0 {
				j = -1 // explicit zero: disable (0 would re-select the default)
			}
			next.BackoffJitter = j
		default:
			return fmt.Errorf("farm: retry spec has unknown key %q (want base/cap/attempts/jitter)", key)
		}
	}
	if next.BackoffBase > 0 && next.BackoffMax > 0 && next.BackoffBase > next.BackoffMax {
		return fmt.Errorf("farm: retry spec: base %v exceeds cap %v", next.BackoffBase, next.BackoffMax)
	}
	*o = next
	return nil
}

// RetryString renders the effective retry configuration in the same
// key=value grammar ApplyRetrySpec accepts — for startup banners.
func (o Options) RetryString() string {
	o.setDefaults()
	return fmt.Sprintf("base=%v,cap=%v,attempts=%d,jitter=%g",
		o.BackoffBase, o.BackoffMax, o.Attempts, o.jitter())
}
