package farm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/template"
)

// TestFrameRoundTripQuick property-checks the codec: any frame survives
// WriteFrame → ReadFrame bit for bit.
func TestFrameRoundTripQuick(t *testing.T) {
	types := []string{TypeHello, TypeWelcome, TypeChunk, TypeResult, TypePing, TypePong, TypeError}
	prop := func(typeIdx uint8, version, capacity uint16, id, seed uint64,
		lo, hi uint16, hits []uint64, sims uint64, hasTmpl bool, errMsg string) bool {
		f := Frame{
			Type:        types[int(typeIdx)%len(types)],
			Version:     int(version),
			Capacity:    int(capacity),
			ID:          id,
			Unit:        "iounit",
			Seed:        seed,
			Lo:          int(lo),
			Hi:          int(hi),
			HasTemplate: hasTmpl,
			Sims:        sims,
			Err:         strings.ToValidUTF8(errMsg, "?"),
		}
		if hasTmpl {
			f.Template = "template t { weight Mode { a: 1; } }"
		}
		if len(hits) > 0 { // omitempty folds empty slices to nil
			f.Hits = hits
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &f); err != nil {
			return false
		}
		var got Frame
		if err := ReadFrame(&buf, &got); err != nil {
			return false
		}
		return reflect.DeepEqual(f, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFrameRejectsOversized(t *testing.T) {
	f := &Frame{Type: TypeChunk, Template: strings.Repeat("x", MaxFrame+1), HasTemplate: true}
	if err := WriteFrame(io.Discard, f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var f Frame
	if err := ReadFrame(bytes.NewReader(hdr[:]), &f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge (and no giant allocation)", err)
	}
}

func TestReadFrameRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: TypePing, ID: 42}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{1, 3, 4, len(whole) - 1} {
		var f Frame
		err := ReadFrame(bytes.NewReader(whole[:cut]), &f)
		if err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
		if cut >= 4 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	payload := []byte("!!! definitely not json !!!")
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	var f Frame
	if err := ReadFrame(&buf, &f); err == nil {
		t.Fatal("garbage payload accepted")
	}
}

func TestChunkFrameRoundTrip(t *testing.T) {
	tmpl, err := template.Parse("template rt { weight Mode { a: 3; b: 7; } }")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []*template.Template{tmpl, nil} {
		f := chunkFrame(7, sim.RemoteChunk{Unit: "iounit", Template: tc, Seed: 99, Lo: 8, Hi: 24})
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		var got Frame
		if err := ReadFrame(&buf, &got); err != nil {
			t.Fatal(err)
		}
		back, err := chunkTemplate(&got)
		if err != nil {
			t.Fatal(err)
		}
		if tc == nil {
			if back != nil {
				t.Fatal("nil template did not survive")
			}
			continue
		}
		if back.String() != tc.String() || back.Fingerprint() != tc.Fingerprint() {
			t.Fatalf("template diverged:\n%s\nvs\n%s", back.String(), tc.String())
		}
	}
}

// TestHandshakeVersionRefusal checks a server refuses a client speaking
// the wrong protocol version with an in-band error frame.
func TestHandshakeVersionRefusal(t *testing.T) {
	srv := NewServer(ServerOptions{Capacity: 1})
	defer srv.Shutdown()
	client, server := net.Pipe()
	defer client.Close()
	go srv.ServeConn(server)

	client.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(client, &Frame{Type: TypeHello, Version: ProtocolVersion + 1}); err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := ReadFrame(client, &f); err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeError || !strings.Contains(f.Err, "version") {
		t.Fatalf("refusal frame = %+v, want version error", f)
	}
}

// TestDialVersionMismatch checks the dispatcher maps a refusing or
// alien peer onto ErrVersionMismatch.
func TestDialVersionMismatch(t *testing.T) {
	// A peer that answers welcome with a future version.
	fakeDial := func(string) (net.Conn, error) {
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			var f Frame
			if ReadFrame(server, &f) != nil {
				return
			}
			WriteFrame(server, &Frame{Type: TypeWelcome, Version: ProtocolVersion + 1, Capacity: 1})
		}()
		return client, nil
	}
	d := New(nil, Options{Dial: fakeDial})
	defer d.Close()
	if _, _, err := d.dial(0, "fake"); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("future-version welcome: err = %v, want ErrVersionMismatch", err)
	}

	// A real server refusing an old client maps the error frame too.
	srv := NewServer(ServerOptions{Capacity: 1})
	defer srv.Shutdown()
	oldDial := func(string) (net.Conn, error) {
		client, server := net.Pipe()
		go srv.ServeConn(server)
		return client, nil
	}
	d2 := New(nil, Options{Dial: oldDial})
	defer d2.Close()
	// Impersonate an old client by dialing and speaking v0 by hand.
	conn, err := oldDial("w")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(conn, &Frame{Type: TypeHello, Version: 0}); err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := ReadFrame(conn, &f); err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeError {
		t.Fatalf("v0 hello answered with %q, want error frame", f.Type)
	}
}
