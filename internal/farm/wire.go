// Package farm is the distributed execution backend of the AS-CDG
// reproduction: the stand-in for the industrial simulation farm the
// paper's CDG-Runner submits jobs to (Section I, Fig. 2 — "the massive
// compute resources of the simulation farm").
//
// A farm deployment is a set of worker daemons (cmd/farmd) running
// Server, and a Dispatcher inside the flow process that implements
// sim.ChunkRunner: the scheduler's remote lanes hand it relocatable
// chunks — (unit, template source, batch-seed state, index range) — and
// it returns the chunk's aggregated coverage counts. Because instance i
// of a batch is seeded purely from (batch seed, i), a chunk computes the
// same bits on any worker, so the flow's reports are bit-identical at
// any fleet size, under any failure pattern, and with remote execution
// disabled entirely.
//
// The wire protocol has two codecs behind one framing. Every frame is
// one 4-byte big-endian length followed by exactly that many bytes of
// payload, bounded by MaxFrame — framing is the load-bearing part. The
// handshake (hello/welcome) is always v1: length-prefixed JSON, so it
// needs nothing beyond the standard library, stays debuggable with
// nc/tcpdump, and any build can negotiate with any other. The hello
// advertises the client's highest supported protocol version (Max) and
// the welcome answers with the negotiated one; when both ends support
// a binary version the rest of the session switches to the compact
// binary codec (wire_v2.go) — no reflection, no encoding/json, dense
// varint hit arrays — and otherwise it stays on v1 JSON frames, so
// mixed fleets keep working.
//
// v3 is v2 plus a trace-correlation trailer (campaign/batch/chunk IDs
// and the peer's build identity). The fields are purely observational —
// no result bit depends on them — and negotiation keeps old peers
// working unchanged: a v2 session simply omits the trailer (the strict
// v2 decoder never sees bytes it does not know), while v1 JSON carries
// the same fields as omitempty keys old JSON decoders ignore.
package farm

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/template"
)

// Protocol versions. The handshake itself is always spoken in v1 JSON
// frames with Version == ProtocolV1 — that field is the *handshake
// framing* version, which never changes — while the Max field carries
// the highest chunk-path codec the peer supports. The server answers
// with the negotiated version (min of both maxima) and both ends
// switch codecs after the welcome.
const (
	// ProtocolV1 is the original codec: length-prefixed JSON frames.
	ProtocolV1 = 1
	// ProtocolV2 is the compact binary codec: fixed header +
	// varint/fixed fields, dense varint-packed hit-count arrays, pooled
	// encode/decode buffers (see wire_v2.go).
	ProtocolV2 = 2
	// ProtocolV3 is the v2 binary codec plus the trace-correlation
	// trailer: campaign string, batch and chunk sequence uvarints, and
	// the peer's build string, so worker-side spans carry the
	// originating chunk's identity.
	ProtocolV3 = 3
	// ProtocolVersion is the highest protocol version this build
	// speaks. Bump on any frame layout or semantics change.
	ProtocolVersion = ProtocolV3
)

// negotiate picks the chunk-path codec for a session from the two
// peers' highest supported versions (0 means "field absent": a build
// that predates negotiation, which speaks exactly v1).
func negotiate(clientMax, serverMax int) int {
	if clientMax < ProtocolV1 {
		clientMax = ProtocolV1
	}
	if serverMax < ProtocolV1 {
		serverMax = ProtocolV1
	}
	if clientMax < serverMax {
		return clientMax
	}
	return serverMax
}

// clampMaxVersion normalizes a user-supplied protocol bound: 0 (or
// anything above ProtocolVersion) means "highest supported", anything
// below v1 is v1.
func clampMaxVersion(v int) int {
	if v <= 0 || v > ProtocolVersion {
		return ProtocolVersion
	}
	if v < ProtocolV1 {
		return ProtocolV1
	}
	return v
}

// MaxFrame bounds a frame's JSON payload. Chunk requests carry one
// template source (a few KiB) and results carry one hit-count slice
// (8 bytes per event), so 4 MiB is orders of magnitude above any
// legitimate frame while still rejecting garbage lengths (e.g. a peer
// that isn't speaking the protocol) before allocating.
const MaxFrame = 4 << 20

// Frame types. A session is: client sends TypeHello, server answers
// TypeWelcome (or TypeError and closes); then any number of
// TypeChunk→TypeResult and TypePing→TypePong exchanges.
const (
	TypeHello   = "hello"
	TypeWelcome = "welcome"
	TypeChunk   = "chunk"
	TypeResult  = "result"
	TypePing    = "ping"
	TypePong    = "pong"
	TypeError   = "error"
)

// Wire errors.
var (
	// ErrFrameTooLarge reports a frame whose declared length exceeds
	// MaxFrame (read side) or whose encoding would (write side).
	ErrFrameTooLarge = errors.New("farm: frame exceeds MaxFrame")
	// ErrVersionMismatch reports a handshake with an incompatible peer.
	ErrVersionMismatch = errors.New("farm: protocol version mismatch")
)

// ModelTooLargeError reports a coverage model whose dense per-event
// hit-count array cannot fit a legal frame: the dispatcher refuses the
// chunk before sending rather than shipping a request whose reply
// would be unreadable, and a server refuses in-band for the same
// reason. It is a typed error (not a bare ErrFrameTooLarge) so callers
// can distinguish "this model can never work at this protocol version"
// from a transient garbage frame.
type ModelTooLargeError struct {
	// Events is the model's event count; MaxEvents is the largest
	// count whose worst-case result payload fits MaxFrame at Version.
	Events, MaxEvents, Version int
}

func (e *ModelTooLargeError) Error() string {
	return fmt.Sprintf("farm: coverage model with %d events exceeds protocol v%d frame capacity (max %d events per %d-byte frame)",
		e.Events, e.Version, e.MaxEvents, MaxFrame)
}

// maxVarint64 is the worst-case encoded size of one uvarint field.
const maxVarint64 = 10 // binary.MaxVarintLen64

// v2ResultOverhead bounds every non-hits byte of a binary (v2/v3)
// result frame: type byte + fixed seed + a dozen worst-case varint
// fields, plus the v3 trace trailer (two varint IDs and two strings
// that are empty on results). Kept deliberately generous; it only has
// to be an upper bound.
const v2ResultOverhead = 256

// MaxEventsV2 is the largest coverage-model size whose worst-case v2
// result frame (every hit count varint-maximal) still fits MaxFrame.
func MaxEventsV2() int {
	return (MaxFrame - v2ResultOverhead) / maxVarint64
}

// CheckModelFits reports whether a model of the given event count can
// travel in result frames at the negotiated protocol version, computed
// from MaxFrame — the size check the dispatcher runs before shipping a
// chunk. v1's JSON encoding is bounded by the same worst case (a
// 20-digit decimal count + separator per event stays under the 10-byte
// varint bound only asymptotically, so v1 uses its own divisor).
func CheckModelFits(events, version int) error {
	max := MaxEventsV2()
	if version < ProtocolV2 {
		// Worst-case JSON: 20 digits + comma per count, plus slack for
		// the envelope.
		max = (MaxFrame - 1024) / 21
	}
	if events > max {
		return &ModelTooLargeError{Events: events, MaxEvents: max, Version: version}
	}
	return nil
}

// Frame is the single wire message shape; Type selects which fields are
// meaningful. A flat struct (rather than per-type messages) keeps the
// codec one Marshal/Unmarshal pair and lets readers skip frames they
// did not ask for (stale duplicates, heartbeat replies) by inspecting
// Type and ID only.
type Frame struct {
	Type    string `json:"t"`
	Version int    `json:"v,omitempty"`

	// Max is the version-negotiation field: on hello, the highest
	// chunk-path protocol the client supports; on welcome, the version
	// the server selected for the session. Absent (0) means v1 — a
	// build that predates negotiation — so old and new builds always
	// agree on a codec.
	Max int `json:"max,omitempty"`

	// Welcome: how many chunks the worker executes concurrently.
	Capacity int `json:"cap,omitempty"`

	// Chunk/Result/Ping/Pong correlation ID, unique per connection.
	ID uint64 `json:"id,omitempty"`

	// Chunk request: the relocatable chunk identity.
	Unit        string `json:"unit,omitempty"`
	Template    string `json:"tmpl,omitempty"`
	HasTemplate bool   `json:"has_tmpl,omitempty"`
	Seed        uint64 `json:"seed,omitempty"`
	Lo          int    `json:"lo,omitempty"`
	Hi          int    `json:"hi,omitempty"`

	// Result: the chunk's aggregate (per-event hit counts + sims), or
	// Err if execution failed. Err is also used by TypeError frames.
	Hits []uint64 `json:"hits,omitempty"`
	Sims uint64   `json:"sims,omitempty"`
	Err  string   `json:"err,omitempty"`

	// Trace correlation (purely observational — no result bit depends
	// on these): the originating campaign / batch / chunk identity the
	// dispatcher stamps on chunk requests so worker-side spans line up
	// with their dispatcher-side parents in a merged fleet trace. In v1
	// sessions they travel as omitempty JSON keys old decoders ignore;
	// v3 sessions append them as a binary trailer; v2 sessions drop
	// them (the strict v2 decoder predates them). Build carries the
	// peer's build identity on hello (client) and welcome (server).
	Campaign string `json:"camp,omitempty"`
	Batch    uint64 `json:"batch,omitempty"`
	Chunk    uint64 `json:"chunk,omitempty"`
	Build    string `json:"build,omitempty"`
}

// WriteFrame encodes f as one length-prefixed frame. The prefix and
// payload go out in a single Write call so stream wrappers that count
// or mutate writes (the fault-injection loopback) see exactly one write
// per frame.
func WriteFrame(w io.Writer, f *Frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("farm: encode frame: %w", err)
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = w.Write(buf)
	return err
}

// ReadFrame decodes one length-prefixed frame into f. It fails on
// truncated streams (io.ErrUnexpectedEOF), oversized declared lengths
// (ErrFrameTooLarge, before allocating), and payloads that are not a
// JSON frame. A clean EOF before any byte is io.EOF.
func ReadFrame(r io.Reader, f *Frame) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	*f = Frame{}
	if err := json.Unmarshal(payload, f); err != nil {
		return fmt.Errorf("farm: decode frame: %w", err)
	}
	return nil
}

// chunkFrame encodes a scheduler chunk as a request frame. The template
// travels as source text: Template.String() → template.Parse round-trips
// exactly, and the server's plan cache is content-keyed, so re-parsing
// per request costs one parse, not one compile.
func chunkFrame(id uint64, c sim.RemoteChunk) *Frame {
	f := &Frame{}
	fillChunkFrame(f, id, c)
	return f
}

// fillChunkFrame is chunkFrame into a caller-owned frame: the frame's
// Hits capacity survives the reset, so a connection's reusable frame
// keeps its decode buffer across requests.
func fillChunkFrame(f *Frame, id uint64, c sim.RemoteChunk) {
	*f = Frame{
		Type:     TypeChunk,
		ID:       id,
		Unit:     c.Unit,
		Seed:     c.Seed,
		Lo:       c.Lo,
		Hi:       c.Hi,
		Hits:     f.Hits[:0],
		Campaign: c.Campaign,
		Batch:    c.Batch,
		Chunk:    c.Chunk,
	}
	if c.Template != nil {
		f.Template = c.Template.String()
		f.HasTemplate = true
	}
}

// chunkTemplate recovers the request's template; nil with HasTemplate
// unset means the batch runs the unit's pure default behavior.
func chunkTemplate(f *Frame) (*template.Template, error) {
	if !f.HasTemplate {
		return nil, nil
	}
	return template.Parse(f.Template)
}
