// Package farm is the distributed execution backend of the AS-CDG
// reproduction: the stand-in for the industrial simulation farm the
// paper's CDG-Runner submits jobs to (Section I, Fig. 2 — "the massive
// compute resources of the simulation farm").
//
// A farm deployment is a set of worker daemons (cmd/farmd) running
// Server, and a Dispatcher inside the flow process that implements
// sim.ChunkRunner: the scheduler's remote lanes hand it relocatable
// chunks — (unit, template source, batch-seed state, index range) — and
// it returns the chunk's aggregated coverage counts. Because instance i
// of a batch is seeded purely from (batch seed, i), a chunk computes the
// same bits on any worker, so the flow's reports are bit-identical at
// any fleet size, under any failure pattern, and with remote execution
// disabled entirely.
//
// The wire protocol is deliberately primitive — length-prefixed JSON
// frames over a byte stream — so it needs nothing beyond the standard
// library and stays debuggable with nc/tcpdump. Framing, not JSON, is
// the load-bearing part: every frame is one 4-byte big-endian length
// followed by exactly that many bytes of payload, bounded by MaxFrame.
package farm

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/template"
)

// ProtocolVersion is negotiated in the hello/welcome handshake; a
// server refuses clients speaking any other version. Bump on any frame
// layout or semantics change.
const ProtocolVersion = 1

// MaxFrame bounds a frame's JSON payload. Chunk requests carry one
// template source (a few KiB) and results carry one hit-count slice
// (8 bytes per event), so 4 MiB is orders of magnitude above any
// legitimate frame while still rejecting garbage lengths (e.g. a peer
// that isn't speaking the protocol) before allocating.
const MaxFrame = 4 << 20

// Frame types. A session is: client sends TypeHello, server answers
// TypeWelcome (or TypeError and closes); then any number of
// TypeChunk→TypeResult and TypePing→TypePong exchanges.
const (
	TypeHello   = "hello"
	TypeWelcome = "welcome"
	TypeChunk   = "chunk"
	TypeResult  = "result"
	TypePing    = "ping"
	TypePong    = "pong"
	TypeError   = "error"
)

// Wire errors.
var (
	// ErrFrameTooLarge reports a frame whose declared length exceeds
	// MaxFrame (read side) or whose encoding would (write side).
	ErrFrameTooLarge = errors.New("farm: frame exceeds MaxFrame")
	// ErrVersionMismatch reports a handshake with an incompatible peer.
	ErrVersionMismatch = errors.New("farm: protocol version mismatch")
)

// Frame is the single wire message shape; Type selects which fields are
// meaningful. A flat struct (rather than per-type messages) keeps the
// codec one Marshal/Unmarshal pair and lets readers skip frames they
// did not ask for (stale duplicates, heartbeat replies) by inspecting
// Type and ID only.
type Frame struct {
	Type    string `json:"t"`
	Version int    `json:"v,omitempty"`

	// Welcome: how many chunks the worker executes concurrently.
	Capacity int `json:"cap,omitempty"`

	// Chunk/Result/Ping/Pong correlation ID, unique per connection.
	ID uint64 `json:"id,omitempty"`

	// Chunk request: the relocatable chunk identity.
	Unit        string `json:"unit,omitempty"`
	Template    string `json:"tmpl,omitempty"`
	HasTemplate bool   `json:"has_tmpl,omitempty"`
	Seed        uint64 `json:"seed,omitempty"`
	Lo          int    `json:"lo,omitempty"`
	Hi          int    `json:"hi,omitempty"`

	// Result: the chunk's aggregate (per-event hit counts + sims), or
	// Err if execution failed. Err is also used by TypeError frames.
	Hits []uint64 `json:"hits,omitempty"`
	Sims uint64   `json:"sims,omitempty"`
	Err  string   `json:"err,omitempty"`
}

// WriteFrame encodes f as one length-prefixed frame. The prefix and
// payload go out in a single Write call so stream wrappers that count
// or mutate writes (the fault-injection loopback) see exactly one write
// per frame.
func WriteFrame(w io.Writer, f *Frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("farm: encode frame: %w", err)
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = w.Write(buf)
	return err
}

// ReadFrame decodes one length-prefixed frame into f. It fails on
// truncated streams (io.ErrUnexpectedEOF), oversized declared lengths
// (ErrFrameTooLarge, before allocating), and payloads that are not a
// JSON frame. A clean EOF before any byte is io.EOF.
func ReadFrame(r io.Reader, f *Frame) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	*f = Frame{}
	if err := json.Unmarshal(payload, f); err != nil {
		return fmt.Errorf("farm: decode frame: %w", err)
	}
	return nil
}

// chunkFrame encodes a scheduler chunk as a request frame. The template
// travels as source text: Template.String() → template.Parse round-trips
// exactly, and the server's plan cache is content-keyed, so re-parsing
// per request costs one parse, not one compile.
func chunkFrame(id uint64, c sim.RemoteChunk) *Frame {
	f := &Frame{
		Type: TypeChunk,
		ID:   id,
		Unit: c.Unit,
		Seed: c.Seed,
		Lo:   c.Lo,
		Hi:   c.Hi,
	}
	if c.Template != nil {
		f.Template = c.Template.String()
		f.HasTemplate = true
	}
	return f
}

// chunkTemplate recovers the request's template; nil with HasTemplate
// unset means the batch runs the unit's pure default behavior.
func chunkTemplate(f *Frame) (*template.Template, error) {
	if !f.HasTemplate {
		return nil, nil
	}
	return template.Parse(f.Template)
}
