package farm

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/coverage"
	"repro/internal/duv/iounit"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/template"
)

// TestFleetTraceCorrelation is the observability acceptance criterion:
// a fault-injected three-worker fleet run produces per-process trace
// files (one dispatcher-side, one per worker) that merge — through the
// same parse/merge/write pipeline cmd/tracemerge uses — into a single
// valid Chrome-trace timeline in which every remote serve_chunk span
// carries the same chunk/batch/campaign identity as a dispatcher-side
// rpc span for that chunk.
func TestFleetTraceCorrelation(t *testing.T) {
	const campaign = "c-trace-accept"
	faults := []Faults{
		{DropAfterFrames: 10, Delay: time.Millisecond},
		{DuplicateEvery: 2, FailDials: 2},
		{},
	}

	// A fleet where every process records its own trace, like a real
	// cdgd + 3×farmd deployment (farmFixtureV shares one recorder, so
	// build the fixture by hand here).
	drec := obs.NewRecorder()
	drec.Campaign = campaign
	lb := NewLoopback()
	addrs := make([]string, len(faults))
	servers := make([]*Server, len(faults))
	srecs := make([]*obs.Recorder, len(faults))
	for i, f := range faults {
		srecs[i] = obs.NewRecorder()
		servers[i] = NewServer(ServerOptions{
			Capacity: 2, DrainTimeout: 2 * time.Second, Rec: srecs[i],
		})
		addrs[i] = string(rune('a' + i))
		lb.Add(addrs[i], servers[i], f)
	}
	d := New(addrs, testOptions(lb.Dial, drec))
	defer d.Close()
	defer func() {
		for _, s := range servers {
			s.Shutdown()
		}
	}()
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Drive chunks through the dispatcher directly rather than racing an
	// environment's local workers for them (on a single-core runner the
	// local workers win every race and the remote path never engages).
	// Identity (campaign/batch/chunk) is assigned the way the scheduler
	// would; faults make some exchanges retry or fail, which is part of
	// the point — failed attempts must still trace with the identity of
	// the chunk they carried.
	unit := iounit.New()
	events := unit.Model().Size()
	templates := []*template.Template{unit.BaseTemplates()[0], altTemplate(t)}
	chunkID := uint64(0)
	for batch, tmpl := range templates {
		for i := 0; i < 6; i++ {
			chunkID++
			c := sim.RemoteChunk{
				Unit: iounit.UnitName, Template: tmpl, Seed: 42,
				Lo: i * 80, Hi: (i + 1) * 80, Events: events,
				Campaign: campaign, Batch: uint64(batch + 1), Chunk: chunkID,
			}
			dst := coverage.NewCounts(events)
			// Errors are acceptable (a fault can exhaust all attempts);
			// the invariant under test is trace identity, not delivery.
			_ = d.RunChunkInto(c, dst)
		}
	}

	// Export each process's trace file and merge them the way
	// cmd/tracemerge does: parse → merge → write → reparse.
	export := func(tr *obs.Tracer) []obs.TraceEvent {
		var buf bytes.Buffer
		if err := tr.Export(&buf); err != nil {
			t.Fatal(err)
		}
		evs, err := obs.ParseTrace(buf.Bytes())
		if err != nil {
			t.Fatalf("exported trace does not reparse: %v", err)
		}
		return evs
	}
	files := []obs.TraceFile{{Name: "dispatcher", Events: export(drec.Trace)}}
	for i, srec := range srecs {
		files = append(files, obs.TraceFile{
			Name:   fmt.Sprintf("farmd-%s", addrs[i]),
			Events: export(srec.Trace),
		})
	}
	var merged bytes.Buffer
	if err := obs.WriteTrace(&merged, obs.MergeTraces(files)); err != nil {
		t.Fatal(err)
	}
	timeline, err := obs.ParseTrace(merged.Bytes())
	if err != nil {
		t.Fatalf("merged timeline is not a valid Chrome trace: %v", err)
	}

	// Each process must own a named lane group in the merged view.
	lanes := map[int]string{}
	for _, ev := range timeline {
		if ev.Ph == "M" && ev.Name == "process_name" {
			lanes[ev.Pid], _ = ev.Args["name"].(string)
		}
	}
	for pid, want := range map[int]string{1: "dispatcher", 2: "farmd-a", 3: "farmd-b", 4: "farmd-c"} {
		if lanes[pid] != want {
			t.Fatalf("merged lane %d = %q, want %q (lanes: %v)", pid, lanes[pid], want, lanes)
		}
	}

	// Index the dispatcher's rpc spans by chunk id. Faulty transports
	// retry, so one chunk may have several rpc spans — identity must
	// agree across all of them.
	type ident struct {
		batch    float64
		campaign string
	}
	rpcByChunk := map[float64]ident{}
	for _, ev := range timeline {
		if ev.Pid != 1 || ev.Name != "rpc" {
			continue
		}
		chunk, ok := ev.Args["chunk"].(float64)
		if !ok {
			t.Fatalf("dispatcher rpc span lacks a chunk id: %+v", ev)
		}
		batch, _ := ev.Args["batch"].(float64)
		camp, _ := ev.Args["campaign"].(string)
		if camp != campaign {
			t.Fatalf("dispatcher rpc span campaign = %q, want %q: %+v", camp, campaign, ev)
		}
		if prev, dup := rpcByChunk[chunk]; dup && prev != (ident{batch, camp}) {
			t.Fatalf("chunk %v has conflicting rpc identities: %+v vs %+v", chunk, prev, ident{batch, camp})
		}
		rpcByChunk[chunk] = ident{batch, camp}
	}
	if len(rpcByChunk) == 0 {
		t.Fatal("no dispatcher rpc spans in the merged timeline")
	}

	// Every remote serve_chunk span must join back to a dispatcher rpc
	// span with the identical chunk/batch/campaign identity.
	served := 0
	workerLanes := map[int]bool{}
	for _, ev := range timeline {
		if ev.Pid == 1 || ev.Name != "serve_chunk" {
			continue
		}
		served++
		workerLanes[ev.Pid] = true
		chunk, ok := ev.Args["chunk"].(float64)
		if !ok {
			t.Fatalf("serve_chunk span lacks a chunk id: %+v", ev)
		}
		parent, ok := rpcByChunk[chunk]
		if !ok {
			t.Fatalf("serve_chunk for chunk %v has no dispatcher-side rpc span", chunk)
		}
		batch, _ := ev.Args["batch"].(float64)
		camp, _ := ev.Args["campaign"].(string)
		if batch != parent.batch || camp != parent.campaign {
			t.Fatalf("serve_chunk identity %v/%q disagrees with dispatcher %v/%q for chunk %v",
				batch, camp, parent.batch, parent.campaign, chunk)
		}
	}
	if served == 0 {
		t.Fatal("no serve_chunk spans: the fleet never executed a remote chunk")
	}
	// Which workers served is fault-timing-dependent; the invariant is
	// that whatever served, it correlated.
	t.Logf("%d serve_chunk spans across %d worker lane(s), %d dispatcher rpc chunks",
		served, len(workerLanes), len(rpcByChunk))
}
