package farm

import (
	"testing"
	"time"
)

func TestApplyRetrySpec(t *testing.T) {
	t.Run("empty is a no-op", func(t *testing.T) {
		o := Options{Attempts: 7}
		if err := o.ApplyRetrySpec("  "); err != nil {
			t.Fatalf("ApplyRetrySpec(empty) = %v", err)
		}
		if o.Attempts != 7 {
			t.Fatalf("empty spec mutated options: %+v", o)
		}
	})

	t.Run("full spec", func(t *testing.T) {
		var o Options
		if err := o.ApplyRetrySpec("base=5ms, cap=100ms ,attempts=7,jitter=0.5"); err != nil {
			t.Fatalf("ApplyRetrySpec = %v", err)
		}
		if o.BackoffBase != 5*time.Millisecond || o.BackoffMax != 100*time.Millisecond ||
			o.Attempts != 7 || o.BackoffJitter != 0.5 {
			t.Fatalf("parsed options = %+v", o)
		}
	})

	t.Run("partial spec keeps other defaults", func(t *testing.T) {
		var o Options
		if err := o.ApplyRetrySpec("attempts=2"); err != nil {
			t.Fatalf("ApplyRetrySpec = %v", err)
		}
		o.setDefaults()
		if o.Attempts != 2 || o.BackoffBase != 50*time.Millisecond || o.BackoffMax != 2*time.Second {
			t.Fatalf("partial spec options = %+v", o)
		}
	})

	t.Run("explicit zero jitter disables", func(t *testing.T) {
		var o Options
		if err := o.ApplyRetrySpec("jitter=0"); err != nil {
			t.Fatalf("ApplyRetrySpec = %v", err)
		}
		// 0 would re-select the 0.25 default in setDefaults, so the
		// parser stores the -1 disable sentinel instead.
		if o.BackoffJitter != -1 {
			t.Fatalf("jitter=0 stored %v, want -1 sentinel", o.BackoffJitter)
		}
		o.setDefaults()
		if got := o.jitter(); got != 0 {
			t.Fatalf("effective jitter = %v, want 0", got)
		}
	})

	t.Run("bad specs leave options unchanged", func(t *testing.T) {
		bad := []string{
			"base",           // no =
			"base=",          // empty value
			"base=banana",    // not a duration
			"base=-5ms",      // negative
			"attempts=0",     // below 1
			"attempts=two",   // not an integer
			"jitter=1.5",     // above 1
			"jitter=-0.1",    // below 0
			"volume=11",      // unknown key
			"base=3s,cap=1s", // base exceeds cap
		}
		for _, spec := range bad {
			o := Options{Attempts: 9, BackoffBase: time.Second}
			if err := o.ApplyRetrySpec(spec); err == nil {
				t.Errorf("ApplyRetrySpec(%q) accepted a bad spec", spec)
			}
			if o.Attempts != 9 || o.BackoffBase != time.Second {
				t.Errorf("ApplyRetrySpec(%q) mutated options on error: %+v", spec, o)
			}
		}
	})
}

func TestRetryString(t *testing.T) {
	if got, want := (Options{}).RetryString(), "base=50ms,cap=2s,attempts=3,jitter=0.25"; got != want {
		t.Fatalf("default RetryString = %q, want %q", got, want)
	}
	var o Options
	if err := o.ApplyRetrySpec("base=5ms,cap=100ms,attempts=7,jitter=0"); err != nil {
		t.Fatalf("ApplyRetrySpec = %v", err)
	}
	if got, want := o.RetryString(), "base=5ms,cap=100ms,attempts=7,jitter=0"; got != want {
		t.Fatalf("RetryString = %q, want %q", got, want)
	}
}
