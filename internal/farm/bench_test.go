package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/coverage"
	"repro/internal/duv/iounit"
	"repro/internal/sim"
)

// benchResultFrame builds the representative hot-path frame: a chunk
// result with one small-valued hit count per coverage event, as the
// iounit fleet produces thousands of times per run.
func benchResultFrame(events int) *Frame {
	hits := make([]uint64, events)
	for i := range hits {
		hits[i] = uint64(i % 97)
	}
	return &Frame{Type: TypeResult, ID: 12345, Hits: hits, Sims: 256}
}

// benchCodecRoundTrip returns a benchmark closure that encodes and
// decodes the frame through a warm per-connection codec at the given
// version. SetBytes carries the *logical* coverage payload (8 bytes
// per event), so MB/s is comparable across codecs: how fast coverage
// data moves, not how fast each codec moves its own envelope.
func benchCodecRoundTrip(version int, f *Frame) func(b *testing.B) {
	return func(b *testing.B) {
		c := &codec{version: version}
		var buf bytes.Buffer
		got := Frame{Hits: make([]uint64, 0, len(f.Hits))}
		if err := c.write(&buf, f); err != nil {
			b.Fatal(err)
		}
		if err := c.read(&buf, &got); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(8 * len(f.Hits)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := c.write(&buf, f); err != nil {
				b.Fatal(err)
			}
			if err := c.read(&buf, &got); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWireCodec measures one result-frame round trip (encode +
// decode) per codec. This is the per-chunk protocol overhead with the
// transport and simulation subtracted out.
func BenchmarkWireCodec(b *testing.B) {
	f := benchResultFrame(256)
	b.Run("v1", benchCodecRoundTrip(ProtocolV1, f))
	b.Run("v2", benchCodecRoundTrip(ProtocolV2, f))
	b.Run("v3", benchCodecRoundTrip(ProtocolV3, f))
}

// benchFleet wires the standard two-worker loopback fleet at a
// protocol cap and hands it back with a cleanup.
func benchFleet(tb testing.TB, maxVersion int) *Dispatcher {
	lb := NewLoopback()
	addrs := []string{"bench-w0", "bench-w1"}
	for _, addr := range addrs {
		srv := NewServer(ServerOptions{Capacity: 2})
		tb.Cleanup(srv.Shutdown)
		lb.Add(addr, srv, Faults{})
	}
	d := New(addrs, Options{Dial: lb.Dial, MaxVersion: maxVersion})
	tb.Cleanup(d.Close)
	if err := d.WaitReady(5 * time.Second); err != nil {
		tb.Fatal(err)
	}
	return d
}

// BenchmarkFarmChunkPath measures the dispatcher-side cost of one
// remote chunk — request encode, server execution, result decode,
// merge into caller scratch — per protocol version. allocs/op is the
// allocs-per-chunk number the v2 codec drives toward zero.
func BenchmarkFarmChunkPath(b *testing.B) {
	unit := iounit.New()
	events := unit.Model().Size()
	const instances = 256
	for _, pv := range []struct {
		name string
		max  int
	}{{"v1", 1}, {"v2", 2}, {"v3", 0}} {
		b.Run(pv.name, func(b *testing.B) {
			d := benchFleet(b, pv.max)
			chunk := sim.RemoteChunk{
				Unit: iounit.UnitName, Seed: 42, Lo: 0, Hi: instances, Events: events,
			}
			dst := coverage.NewCounts(events)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst.Reset()
				if err := d.RunChunkInto(chunk, dst); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*instances)/b.Elapsed().Seconds(), "sims/sec")
		})
	}
}

// ---- Persistent bench trajectory (BENCH_farm.json) ----

// benchFile is the committed benchmark baseline at the repo root. The
// guard below reads it to detect regressions and rewrites it with
// fresh numbers (commit the rewrite to advance the baseline).
const benchFile = "../../BENCH_farm.json"

type codecBenchRecord struct {
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchRecord is BENCH_farm.json: absolute numbers for the trajectory,
// benchstat-comparable lines for tooling, and the machine-normalized
// ratio the regression guard compares (farm throughput relative to the
// same machine's local throughput, so a slower runner does not read as
// a protocol regression).
type benchRecord struct {
	Date            string           `json:"date"`
	GoOS            string           `json:"goos"`
	GoArch          string           `json:"goarch"`
	MaxProcs        int              `json:"maxprocs"`
	Benchstat       []string         `json:"benchstat"`
	CodecV1         codecBenchRecord `json:"codec_v1"`
	CodecV2         codecBenchRecord `json:"codec_v2"`
	LocalSimsPerSec float64          `json:"local_sims_per_sec"`
	FarmSimsPerSec  float64          `json:"farm_sims_per_sec"`
	FarmLocalRatio  float64          `json:"farm_local_ratio"`
}

func mbPerSec(r testing.BenchmarkResult, logicalBytes int) float64 {
	if r.T <= 0 {
		return 0
	}
	return float64(logicalBytes) * float64(r.N) / r.T.Seconds() / 1e6
}

func benchstatLine(name string, r testing.BenchmarkResult) string {
	return fmt.Sprintf("%s-%d\t%s\t%s", name, runtime.GOMAXPROCS(0), r.String(), r.MemString())
}

// measureFarmSimsPerSec is one chunk-path throughput sample over the
// loopback fleet.
func measureFarmSimsPerSec(t *testing.T, maxVersion int) float64 {
	unit := iounit.New()
	events := unit.Model().Size()
	const instances = 512
	d := benchFleet(t, maxVersion)
	defer d.Close()
	chunk := sim.RemoteChunk{Unit: iounit.UnitName, Seed: 42, Lo: 0, Hi: instances, Events: events}
	dst := coverage.NewCounts(events)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst.Reset()
			if err := d.RunChunkInto(chunk, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	return float64(instances) / (time.Duration(res.NsPerOp())).Seconds()
}

// measureLocalSimsPerSec is one sample of the same workload run by a
// local environment — the normalization denominator.
func measureLocalSimsPerSec(t *testing.T) float64 {
	unit := iounit.New()
	const instances = 512
	env := sim.NewEnv(unit, 1, 2)
	defer env.Close()
	dst := coverage.NewCountsFor(unit.Model())
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst.Reset()
			if err := env.RunChunkInto(nil, 42, 0, instances, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	return float64(instances) / (time.Duration(res.NsPerOp())).Seconds()
}

// TestFarmBenchTrajectory is the CI bench job: it measures both codecs
// and the full chunk path, enforces the v2 acceptance criteria (≥5×
// fewer allocs per chunk round trip and higher coverage MB/s than v1),
// guards the machine-normalized farm throughput against the committed
// BENCH_farm.json baseline (>10% regression fails), and rewrites the
// file with fresh numbers. Gated behind BENCH_FARM=1 because
// wall-clock numbers are meaningless on noisy runners unless invoked
// deliberately.
func TestFarmBenchTrajectory(t *testing.T) {
	if os.Getenv("BENCH_FARM") == "" {
		t.Skip("set BENCH_FARM=1 to run the farm bench trajectory guard")
	}
	frame := benchResultFrame(256)
	logical := 8 * len(frame.Hits)
	v1 := testing.Benchmark(benchCodecRoundTrip(ProtocolV1, frame))
	v2 := testing.Benchmark(benchCodecRoundTrip(ProtocolV2, frame))
	rec := benchRecord{
		Date:     time.Now().UTC().Format(time.RFC3339),
		GoOS:     runtime.GOOS,
		GoArch:   runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
		Benchstat: []string{
			benchstatLine("BenchmarkWireCodec/v1", v1),
			benchstatLine("BenchmarkWireCodec/v2", v2),
		},
		CodecV1: codecBenchRecord{
			NsPerOp: v1.NsPerOp(), MBPerSec: mbPerSec(v1, logical),
			AllocsPerOp: v1.AllocsPerOp(), BytesPerOp: v1.AllocedBytesPerOp(),
		},
		CodecV2: codecBenchRecord{
			NsPerOp: v2.NsPerOp(), MBPerSec: mbPerSec(v2, logical),
			AllocsPerOp: v2.AllocsPerOp(), BytesPerOp: v2.AllocedBytesPerOp(),
		},
	}
	t.Logf("codec v1: %d ns/op, %.1f MB/s, %d allocs/op", rec.CodecV1.NsPerOp, rec.CodecV1.MBPerSec, rec.CodecV1.AllocsPerOp)
	t.Logf("codec v2: %d ns/op, %.1f MB/s, %d allocs/op", rec.CodecV2.NsPerOp, rec.CodecV2.MBPerSec, rec.CodecV2.AllocsPerOp)

	// Acceptance: the binary codec must round-trip with at least 5x
	// fewer allocations and move coverage data faster than JSON.
	if rec.CodecV2.AllocsPerOp*5 > rec.CodecV1.AllocsPerOp {
		t.Errorf("v2 allocs/op = %d, want <= v1/5 (v1 = %d)", rec.CodecV2.AllocsPerOp, rec.CodecV1.AllocsPerOp)
	}
	if rec.CodecV2.MBPerSec <= rec.CodecV1.MBPerSec {
		t.Errorf("v2 = %.1f MB/s, want > v1 (%.1f MB/s)", rec.CodecV2.MBPerSec, rec.CodecV1.MBPerSec)
	}

	// Paired trials: local and farm throughput measured back to back,
	// guarding on the best per-pair ratio. Pairing cancels machine-wide
	// noise (a loaded runner slows both numerators and denominators);
	// taking the best of several pairs discards downward scheduling
	// spikes without hiding a real protocol regression, which would
	// depress every pair.
	for trial := 0; trial < 5; trial++ {
		local := measureLocalSimsPerSec(t)
		fleet := measureFarmSimsPerSec(t, 0)
		if local <= 0 {
			continue
		}
		if r := fleet / local; r > rec.FarmLocalRatio {
			rec.FarmLocalRatio = r
			rec.LocalSimsPerSec = local
			rec.FarmSimsPerSec = fleet
		}
	}
	t.Logf("sims/sec: local %.0f, farm %.0f, ratio %.3f (best of 5 paired trials)",
		rec.LocalSimsPerSec, rec.FarmSimsPerSec, rec.FarmLocalRatio)

	// Trajectory guard: compare the machine-normalized ratio against
	// the committed baseline; a >10% drop is a protocol regression.
	if raw, err := os.ReadFile(benchFile); err == nil {
		var base benchRecord
		if err := json.Unmarshal(raw, &base); err != nil {
			t.Fatalf("corrupt %s: %v", benchFile, err)
		}
		if base.FarmLocalRatio > 0 && rec.FarmLocalRatio < base.FarmLocalRatio*0.90 {
			t.Errorf("farm/local sims-per-sec ratio %.3f regressed >10%% vs committed baseline %.3f",
				rec.FarmLocalRatio, base.FarmLocalRatio)
		}
	} else if !os.IsNotExist(err) {
		t.Fatal(err)
	}

	out, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchFile, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", benchFile)
}
