package farm

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/failpoint"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Dispatcher errors.
var (
	// ErrNoWorkers reports that no remote connection was available
	// within AcquireTimeout. The scheduler treats it like any runner
	// failure: the chunk runs locally, so a dead or absent fleet
	// degrades throughput, never results.
	ErrNoWorkers = errors.New("farm: no remote workers available")
	// ErrDispatcherClosed reports a RunChunk after Close.
	ErrDispatcherClosed = errors.New("farm: dispatcher is closed")
)

// Options tune the dispatcher. The zero value gives sane defaults.
type Options struct {
	// ChunkTimeout is the per-attempt deadline for one remote exchange
	// (write request, read result). <= 0: 60s.
	ChunkTimeout time.Duration
	// AcquireTimeout bounds the wait for an idle connection before the
	// attempt is abandoned (and the chunk falls back locally). <= 0: 2s.
	AcquireTimeout time.Duration
	// Attempts is how many connections a chunk tries before giving up
	// remotely. Each failed attempt evicts its connection and backs off
	// (BackoffBase doubling per attempt, jittered, capped at
	// BackoffMax). <= 0: 3.
	Attempts int
	// Heartbeat is the idle-connection ping interval; dead connections
	// are evicted and their keeper redials (rejoin). <= 0: 5s. Negative
	// disables heartbeats.
	Heartbeat time.Duration
	// BackoffBase/BackoffMax bound the exponential redial and retry
	// backoff. <= 0: 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffJitter is the ± jitter fraction applied to every backoff
	// step, in [0, 1]. 0 selects the default 0.25; negative disables
	// jitter entirely (deterministic backoff, for tests).
	BackoffJitter float64
	// MaxConnsPerWorker caps connections per address; the effective
	// count is min(cap, worker's advertised capacity). <= 0: 8.
	MaxConnsPerWorker int
	// MaxVersion caps the chunk-path protocol version this dispatcher
	// offers in its hello (the -proto flag). 0 means the highest this
	// build speaks (ProtocolVersion); 1 forces v1 JSON frames even
	// against v2-capable workers. Each connection uses the minimum of
	// this and the worker's own maximum.
	MaxVersion int
	// Hedge, when > 0, enables hedged chunk execution: an exchange
	// still in flight after Hedge × the fleet's recent p95 exchange
	// latency is duplicated on the healthiest idle connection of a
	// different worker. The first result wins (the loser is canceled
	// and its connection evicted), and the scheduler's exactly-once
	// merge is preserved, so reports stay bit-identical — hedging only
	// caps tail latency. 1.5–3 are sensible values; the -hedge flag.
	Hedge float64
	// AuditFraction, in [0, 1], samples this fraction of successful
	// remote results for an integrity audit: the chunk is re-executed
	// locally (chunks are deterministic functions of their seed and
	// range) and the two digests cross-checked. A mismatch merges the
	// local ground truth, discards the remote result, and quarantines
	// the worker permanently. 0 disables; the -audit-fraction flag.
	AuditFraction float64
	// Health tunes worker health scoring and the quarantine breaker.
	Health HealthOptions
	// FP is the failpoint registry consulted at the dispatcher's
	// injection points (farm/dial, farm/handshake, farm/rpc_write,
	// farm/rpc_read). nil selects failpoint.Default — disarmed in
	// production, so the points cost one atomic load each.
	FP *failpoint.Registry
	// Dial opens a transport to a worker address. nil: TCP. The
	// fault-injection loopback substitutes its own.
	Dial func(addr string) (net.Conn, error)
	// Rec receives dispatcher metrics and per-worker trace lanes (nil
	// disables).
	Rec *obs.Recorder
	// Log receives structured connection-lifecycle and failure events
	// with correlated fields (worker, proto, chunk). nil discards.
	Log *slog.Logger
	// Context, when non-nil, cancels queued remote work: RunChunk stops
	// retrying, acquiring, and backing off the moment it is done, and
	// new calls fail immediately with its error. In-flight exchanges
	// drain under their ChunkTimeout as usual.
	Context context.Context
}

func (o *Options) setDefaults() {
	if o.ChunkTimeout <= 0 {
		o.ChunkTimeout = 60 * time.Second
	}
	if o.AcquireTimeout <= 0 {
		o.AcquireTimeout = 2 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.Heartbeat == 0 {
		o.Heartbeat = 5 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.BackoffJitter == 0 {
		o.BackoffJitter = 0.25
	}
	if o.BackoffJitter > 1 {
		o.BackoffJitter = 1
	}
	if o.MaxConnsPerWorker <= 0 {
		o.MaxConnsPerWorker = 8
	}
	if o.Hedge < 0 {
		o.Hedge = 0
	}
	if o.AuditFraction < 0 {
		o.AuditFraction = 0
	}
	if o.AuditFraction > 1 {
		o.AuditFraction = 1
	}
	o.MaxVersion = clampMaxVersion(o.MaxVersion)
	if o.FP == nil {
		o.FP = failpoint.Default
	}
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
}

// jitter is the effective backoff jitter fraction (negative disables).
func (o *Options) jitter() float64 {
	if o.BackoffJitter < 0 {
		return 0
	}
	return o.BackoffJitter
}

// Dispatcher hands scheduler chunks to a fleet of farm workers. It
// implements sim.ChunkRunner, so it plugs into a simulation environment
// with Env.AttachRunner(d, d.Lanes()); the scheduler's remote lanes and
// local workers then pull from one queue, mixing local and remote
// execution freely.
//
// Per worker address the dispatcher keeps a set of connection slots
// (one in-flight chunk each). Every slot has a keeper goroutine that
// dials, handshakes, and — whenever the connection dies — redials with
// exponential backoff, so workers may crash and rejoin at any time.
// Failed exchanges are retried on other connections with backoff and
// jitter, and the chunk is abandoned to the scheduler's local fallback
// after Attempts tries; combined with the scheduler's exactly-once
// merge, a chunk is never lost and never double-counted, whatever the
// failure pattern.
//
// Beyond crash failures, the dispatcher defends against workers that
// are merely slow, flappy, or wrong: every exchange outcome feeds a
// per-worker health score whose circuit breaker quarantines bad workers
// (health.go), stragglers can be hedged onto a healthier lane (Hedge),
// and sampled results can be audited against local ground truth
// (AuditFraction) — a provably wrong worker is quarantined permanently.
type Dispatcher struct {
	opts  Options
	addrs []string
	idle  chan *wconn

	closed   chan struct{}
	stop     sync.Once
	wg       sync.WaitGroup
	ready    chan struct{} // closed on the first successful handshake
	readyOne sync.Once
	live     atomic.Int64 // established, un-evicted connections

	log     *slog.Logger
	metrics *obs.Registry // labeled per-connection gauges (nil-safe)
	fp      *failpoint.Registry
	health  *healthSet // nil when Health.Disable

	// Audit state: a sampling RNG plus lazily built local environments,
	// one per unit (mirroring the server's), shared by every auditing
	// lane under auditMu. Audits are sampled, so the serialization is
	// off the common path.
	auditMu   sync.Mutex
	auditRng  *rand.Rand
	auditEnvs map[string]*sim.Env

	// Metric handles (all nil-safe).
	mDials      *obs.Counter
	mDialFails  *obs.Counter
	mChunks     *obs.Counter
	mErrors     *obs.Counter
	mRetries    *obs.Counter
	mEvicts     *obs.Counter
	mCanceled   *obs.Counter
	mInflight   *obs.Gauge
	mProto      *obs.Gauge
	mConnsV1    *obs.Counter
	mConnsV2    *obs.Counter
	mHedges     *obs.Counter
	mHedgeWins  *obs.Counter
	mHedgedSims *obs.Counter
	mAudits     *obs.Counter
	mMismatches *obs.Counter
	hRPCNs      *obs.Histogram
	tracer      *obs.Tracer
}

// ctxDone returns the configured context's done channel (nil — blocking
// forever — when no context was given).
func (d *Dispatcher) ctxDone() <-chan struct{} {
	if d.opts.Context == nil {
		return nil
	}
	return d.opts.Context.Done()
}

// ctxErr reports the configured context's error, if any.
func (d *Dispatcher) ctxErr() error {
	if d.opts.Context == nil {
		return nil
	}
	return d.opts.Context.Err()
}

// wconn is one live worker connection. It is owned by exactly one
// goroutine at a time — a scheduler lane mid-exchange, the heartbeater
// mid-ping, or the idle pool — so frames on it never interleave.
type wconn struct {
	conn    net.Conn
	addr    string
	addrIdx int
	nextID  uint64
	dead    atomic.Bool
	broken  chan struct{} // closed by kill; wakes the keeper to redial

	// hedgeCanceled marks an in-flight exchange deliberately canceled
	// because the hedged duplicate won; its failure is expected and must
	// not count against the worker's health score.
	hedgeCanceled atomic.Bool

	// cdc speaks the version negotiated for this connection; its
	// grow-once buffers plus the reusable read frame rf (whose Hits
	// capacity is retained across results) make the steady-state
	// exchange path allocation-free under v2.
	cdc codec
	rf  Frame

	// gauge is the connection's labeled farm.conns{peer,proto} gauge,
	// incremented on handshake and decremented on eviction (nil-safe).
	gauge *obs.Gauge
}

// New starts a dispatcher for the given worker addresses. It returns
// immediately; connections are established in the background (WaitReady
// blocks for the first). An empty address list yields a dispatcher
// whose RunChunk always reports ErrNoWorkers — graceful degradation to
// local-only execution.
func New(addrs []string, opts Options) *Dispatcher {
	opts.setDefaults()
	d := &Dispatcher{
		opts:   opts,
		addrs:  addrs,
		idle:   make(chan *wconn, len(addrs)*opts.MaxConnsPerWorker+1),
		closed: make(chan struct{}),
		ready:  make(chan struct{}),
	}
	d.log = obs.OrNop(opts.Log)
	d.fp = opts.FP
	d.health = newHealthSet(opts.Health, addrs, opts.Rec, d.log)
	if opts.AuditFraction > 0 {
		d.auditRng = rand.New(rand.NewSource(rand.Int63()))
		d.auditEnvs = map[string]*sim.Env{}
	}
	if rec := opts.Rec; rec != nil {
		d.metrics = rec.Metrics
		d.mDials = rec.Counter("farm.dials")
		d.mDialFails = rec.Counter("farm.dial_failures")
		d.mChunks = rec.Counter("farm.chunks")
		d.mErrors = rec.Counter("farm.chunk_errors")
		d.mRetries = rec.Counter("farm.retries")
		d.mEvicts = rec.Counter("farm.conn_evictions")
		d.mCanceled = rec.Counter("farm.chunks_canceled")
		d.mInflight = rec.Gauge("farm.inflight")
		d.mProto = rec.Gauge("farm.proto_version")
		d.mConnsV1 = rec.Counter("farm.conns_v1")
		d.mConnsV2 = rec.Counter("farm.conns_v2")
		d.mHedges = rec.Counter("farm.hedges")
		d.mHedgeWins = rec.Counter("farm.hedge_wins")
		d.mHedgedSims = rec.Counter("farm.hedged_sims")
		d.mAudits = rec.Counter("farm.audits")
		d.mMismatches = rec.Counter("farm.audit_mismatches")
		d.hRPCNs = rec.Histogram("farm.rpc_ns", obs.LatencyBounds())
		d.tracer = rec.Trace
	}
	for i, addr := range addrs {
		d.wg.Add(1)
		go d.keeper(i, addr, 0, &sync.Once{})
	}
	if opts.Heartbeat > 0 {
		d.wg.Add(1)
		go d.heartbeater()
	}
	return d
}

// Lanes is the recommended number of scheduler lanes to attach: one per
// potential connection slot, so a fully healthy fleet can be saturated
// while AcquireTimeout keeps lanes from stalling when slots are down.
func (d *Dispatcher) Lanes() int {
	return len(d.addrs) * d.opts.MaxConnsPerWorker
}

// LiveConns reports how many worker connections are established right
// now — the fleet-capacity signal the campaign service's admission
// control consumes (a dead fleet reads 0, deferring campaign starts
// instead of piling them onto local fallback).
func (d *Dispatcher) LiveConns() int {
	n := d.live.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// Health returns a point-in-time snapshot of every worker's health
// score and quarantine state, sorted by address — the farm section of
// GET /v1/scheduler. nil when health scoring is disabled.
func (d *Dispatcher) Health() []WorkerHealth {
	return d.health.snapshot()
}

// WaitReady blocks until at least one worker connection has completed
// its handshake, or the timeout expires (ErrNoWorkers), or the
// dispatcher closes. Callers that prefer pure graceful degradation can
// skip it: an unready dispatcher just falls back locally.
func (d *Dispatcher) WaitReady(timeout time.Duration) error {
	select {
	case <-d.ready:
		return nil
	case <-time.After(timeout):
		return ErrNoWorkers
	case <-d.closed:
		return ErrDispatcherClosed
	}
}

// RunChunk implements sim.ChunkRunner: it relocates the chunk to a
// worker and returns the aggregate, retrying across connections before
// reporting failure (which sends the chunk to the scheduler's local
// fallback).
func (d *Dispatcher) RunChunk(c sim.RemoteChunk) (*coverage.Counts, error) {
	counts := coverage.NewCounts(c.Events)
	if err := d.RunChunkInto(c, counts); err != nil {
		return nil, err
	}
	return counts, nil
}

// RunChunkInto implements sim.ChunkRunnerInto: like RunChunk, but the
// chunk's aggregate is merged into dst (which must be zeroed and sized
// to c.Events). The scheduler's remote lanes call this with per-lane
// scratch, so a healthy v2 session moves chunks with no per-chunk
// allocation on either end.
func (d *Dispatcher) RunChunkInto(c sim.RemoteChunk, dst *coverage.Counts) error {
	if dst.Len() != c.Events {
		return fmt.Errorf("farm: RunChunkInto: dst has %d events, chunk has %d", dst.Len(), c.Events)
	}
	select {
	case <-d.closed:
		return ErrDispatcherClosed
	default:
	}
	if err := d.ctxErr(); err != nil {
		d.mCanceled.Inc()
		return err
	}
	var lastErr error
	for attempt := 0; attempt < d.opts.Attempts; attempt++ {
		if attempt > 0 {
			d.mRetries.Inc()
			d.sleep(d.backoff(attempt - 1))
		}
		if err := d.ctxErr(); err != nil {
			d.mCanceled.Inc()
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		w := d.acquire()
		if w == nil {
			if lastErr == nil {
				lastErr = ErrNoWorkers
			}
			break
		}
		if err := CheckModelFits(c.Events, w.cdc.version); err != nil {
			// The connection is fine — the model simply cannot travel in
			// a legal frame at this session's version. Retrying would
			// fail identically, so surface the typed error immediately
			// and keep the connection.
			d.put(w)
			d.mErrors.Inc()
			return err
		}
		d.mInflight.Add(1)
		err := d.runAttempt(w, c, dst)
		d.mInflight.Add(-1)
		if err == nil {
			d.mChunks.Inc()
			return nil
		}
		lastErr = err
		d.mErrors.Inc()
	}
	return lastErr
}

// runAttempt runs one chunk attempt on an acquired connection, owning
// its lifecycle from here: on success the validated result is merged
// into dst exactly once (after an optional integrity audit) and the
// connection pooled; on failure the connection is evicted. When hedging
// is armed and warmed up, a straggling exchange is duplicated on a
// second worker with first-result-wins semantics.
func (d *Dispatcher) runAttempt(w *wconn, c sim.RemoteChunk, dst *coverage.Counts) error {
	budget := d.hedgeBudget()
	if budget <= 0 {
		dur, err := d.exchange(w, c)
		if err != nil {
			d.score(w, 0, false)
			d.kill(w)
			return err
		}
		d.score(w, dur, true)
		d.deliver(w, c, dst)
		return nil
	}
	return d.runHedged(w, c, dst, budget)
}

// runHedged is runAttempt's hedging variant: the primary exchange gets
// the latency budget; past it, a duplicate launches on the healthiest
// idle connection of a different worker. The first successful result is
// merged (exactly once — the loser's duplicate result is discarded, so
// reports stay bit-identical) and the losing exchange is canceled by
// expiring its read deadline, bounding the duplicated work.
func (d *Dispatcher) runHedged(w *wconn, c sim.RemoteChunk, dst *coverage.Counts, budget time.Duration) error {
	type result struct {
		w   *wconn
		dur time.Duration
		err error
	}
	resc := make(chan result, 2)
	launch := func(conn *wconn) {
		go func() {
			dur, err := d.exchange(conn, c)
			resc <- result{conn, dur, err}
		}()
	}
	launch(w)
	timer := time.NewTimer(budget)
	defer timer.Stop()
	var second *wconn
	var lastErr error
	outstanding := 1
	delivered := false
	for outstanding > 0 {
		select {
		case r := <-resc:
			outstanding--
			if r.err != nil {
				if !r.w.hedgeCanceled.Load() {
					d.score(r.w, 0, false)
				}
				d.kill(r.w)
				lastErr = r.err
				continue
			}
			d.score(r.w, r.dur, true)
			if delivered {
				// The loser finished anyway: discard its duplicate result —
				// the chunk was already merged exactly once.
				r.w.hedgeCanceled.Store(false)
				d.put(r.w)
				continue
			}
			delivered = true
			if second != nil && r.w == second {
				d.mHedgeWins.Inc()
			}
			// First result wins: cancel the other in-flight exchange by
			// expiring its read deadline. It errors out promptly and its
			// connection is evicted; the keeper redials.
			other := second
			if r.w == second {
				other = w
			}
			if other != nil {
				other.hedgeCanceled.Store(true)
				other.conn.SetReadDeadline(time.Now())
			}
			d.deliver(r.w, c, dst)
		case <-timer.C:
			if delivered || second != nil {
				continue
			}
			if w2 := d.acquireHedge(w.addr); w2 != nil {
				second = w2
				outstanding++
				d.mHedges.Inc()
				d.mHedgedSims.Add(uint64(c.Hi - c.Lo))
				d.log.Debug("farm: hedging straggling chunk",
					"worker", w.addr, "hedge_worker", w2.addr,
					"budget", budget, "campaign", c.Campaign, "batch", c.Batch, "chunk", c.Chunk)
				launch(second)
			}
		}
	}
	if delivered {
		return nil
	}
	return lastErr
}

// hedgeBudget is the straggler threshold: Hedge × the fleet's recent
// p95 exchange latency, 0 while hedging is off or still warming up.
func (d *Dispatcher) hedgeBudget() time.Duration {
	if d.opts.Hedge <= 0 {
		return 0
	}
	p95 := d.health.latencyP95()
	if p95 <= 0 {
		return 0
	}
	b := time.Duration(d.opts.Hedge * float64(p95))
	if b < time.Millisecond {
		b = time.Millisecond
	}
	return b
}

// acquireHedge non-blockingly picks the healthiest idle connection on a
// worker other than exclude. Unsuitable connections go straight back to
// the pool; nil means no hedge lane is available (the hedge is simply
// skipped).
func (d *Dispatcher) acquireHedge(exclude string) *wconn {
	var best *wconn
	var rejected []*wconn
	for {
		var w *wconn
		select {
		case w = <-d.idle:
		default:
		}
		if w == nil {
			break
		}
		if w.dead.Load() {
			continue
		}
		if w.addr == exclude || !d.health.allowed(w.addr) {
			rejected = append(rejected, w)
			continue
		}
		switch {
		case best == nil:
			best = w
		case d.health.better(w.addr, best.addr):
			rejected = append(rejected, best)
			best = w
		default:
			rejected = append(rejected, w)
		}
	}
	for _, w := range rejected {
		d.put(w)
	}
	return best
}

// score feeds one exchange outcome to the health breaker and evicts the
// connections of a worker the breaker just quarantined.
func (d *Dispatcher) score(w *wconn, dur time.Duration, ok bool) {
	for _, victim := range d.health.outcome(w.addr, dur, ok) {
		d.kill(victim)
	}
}

// deliver merges the validated result an exchange left in w.rf into dst
// exactly once and returns the connection to the pool. When audit
// sampling selects the chunk, the result is cross-checked against a
// local re-execution first: on a mismatch the local ground truth is
// merged instead, the remote result is discarded, and the worker is
// quarantined permanently.
func (d *Dispatcher) deliver(w *wconn, c sim.RemoteChunk, dst *coverage.Counts) {
	if d.shouldAudit() && !d.audit(w, c, dst) {
		return // mismatch: local counts merged, connection evicted
	}
	dst.AddRaw(w.rf.Hits, w.rf.Sims)
	d.put(w)
}

// shouldAudit samples AuditFraction of delivered chunks.
func (d *Dispatcher) shouldAudit() bool {
	f := d.opts.AuditFraction
	if f <= 0 {
		return false
	}
	if f >= 1 {
		return true
	}
	d.auditMu.Lock()
	hit := d.auditRng.Float64() < f
	d.auditMu.Unlock()
	return hit
}

// audit re-executes the chunk locally and cross-checks the remote
// result in w.rf. It reports true when the remote result is verified
// (the caller merges it). On a mismatch it merges the local ground
// truth into dst, quarantines the worker permanently, evicts its
// connections, and reports false. Audit infrastructure failures
// (unknown unit, local run error) accept the remote result — the audit
// is an opportunistic cross-check, not a gate.
func (d *Dispatcher) audit(w *wconn, c sim.RemoteChunk, dst *coverage.Counts) bool {
	local, err := d.auditRun(c)
	if err != nil {
		d.log.Warn("farm: audit re-execution failed; accepting remote result",
			"worker", w.addr, "unit", c.Unit, "err", err)
		return true
	}
	d.mAudits.Inc()
	hits, sims := local.Raw()
	if sims == w.rf.Sims && equalHits(hits, w.rf.Hits) {
		return true
	}
	d.mMismatches.Inc()
	d.log.Warn("farm: result integrity audit mismatch; quarantining worker",
		"worker", w.addr, "campaign", c.Campaign, "batch", c.Batch, "chunk", c.Chunk,
		"remote_digest", chunkDigest(w.rf.Hits, w.rf.Sims),
		"local_digest", chunkDigest(hits, sims))
	for _, victim := range d.health.integrityFailure(w.addr) {
		d.kill(victim)
	}
	d.kill(w) // idempotent: integrityFailure's sweep usually got it
	dst.AddRaw(hits, sims)
	return false
}

// auditRun re-executes a chunk on a local, lazily built environment for
// its unit — the dispatcher-side twin of the server's env map. Chunks
// are pure functions of (template, seed, range), so the local run is
// ground truth.
func (d *Dispatcher) auditRun(c sim.RemoteChunk) (*coverage.Counts, error) {
	d.auditMu.Lock()
	defer d.auditMu.Unlock()
	env, ok := d.auditEnvs[c.Unit]
	if !ok {
		u, err := duv.New(c.Unit)
		if err != nil {
			return nil, err
		}
		env = sim.NewEnv(u, 1, 1) // seed irrelevant: the chunk carries its own
		d.auditEnvs[c.Unit] = env
	}
	counts := coverage.NewCounts(c.Events)
	if err := env.RunChunkInto(c.Template, c.Seed, c.Lo, c.Hi, counts); err != nil {
		return nil, err
	}
	return counts, nil
}

// equalHits compares two dense hit arrays.
func equalHits(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chunkDigest is a short FNV-1a fingerprint of a chunk result, for
// audit-mismatch logs.
func chunkDigest(hits []uint64, sims uint64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range hits {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for i := 0; i < 8; i++ {
		buf[i] = byte(sims >> (8 * i))
	}
	h.Write(buf[:])
	return fmt.Sprintf("%016x", h.Sum64())
}

// exchange performs one chunk RPC on a connection the caller owns,
// under the per-chunk deadline, leaving the validated result in w.rf
// for the caller to merge (exactly once, possibly after an audit).
// Stale frames (duplicated results from a flaky transport, late
// heartbeat replies) are skipped by correlation ID, so a noisy
// connection either yields the right answer or an error — never a
// mismatched one. Returns the exchange's wall-clock duration for health
// scoring.
func (d *Dispatcher) exchange(w *wconn, c sim.RemoteChunk) (time.Duration, error) {
	sp := d.tracer.Span("farm", "rpc")
	if sp != nil {
		sp = sp.WithTid(200 + w.addrIdx)
		sp.SetArg("worker", w.addr)
		sp.SetArg("instances", c.Hi-c.Lo)
		sp.SetArg("chunk", c.Chunk)
		sp.SetArg("batch", c.Batch)
		if c.Campaign != "" {
			sp.SetArg("campaign", c.Campaign)
		}
	}
	start := time.Now()
	err := d.exchange1(w, c)
	dur := time.Since(start)
	d.hRPCNs.Observe(uint64(dur))
	if sp != nil {
		sp.SetArg("ok", err == nil)
		sp.End()
	}
	if err != nil {
		d.log.Debug("farm: chunk exchange failed",
			"worker", w.addr, "proto", w.cdc.version,
			"campaign", c.Campaign, "batch", c.Batch, "chunk", c.Chunk, "err", err)
	}
	return dur, err
}

func (d *Dispatcher) exchange1(w *wconn, c sim.RemoteChunk) error {
	if err := d.fp.Eval("farm/rpc_write"); err != nil {
		return err
	}
	w.conn.SetDeadline(time.Now().Add(d.opts.ChunkTimeout))
	defer w.conn.SetDeadline(time.Time{})
	id := w.nextID
	w.nextID++
	fillChunkFrame(&w.rf, id, c)
	if err := w.cdc.write(w.conn, &w.rf); err != nil {
		return err
	}
	for {
		f := &w.rf
		if err := w.cdc.read(w.conn, f); err != nil {
			return err
		}
		if f.Type != TypeResult || f.ID != id {
			continue // stale duplicate or heartbeat reply; keep reading
		}
		if f.Err != "" {
			return fmt.Errorf("farm: worker %s: %s", w.addr, f.Err)
		}
		n := uint64(c.Hi - c.Lo)
		if len(f.Hits) != c.Events || f.Sims != n {
			return fmt.Errorf("farm: worker %s: malformed result (%d events/%d sims, want %d/%d)",
				w.addr, len(f.Hits), f.Sims, c.Events, n)
		}
		// The corrupt policy here simulates a byzantine worker from the
		// dispatcher's own vantage point: the mutated hits pass framing
		// and shape validation and only the integrity audit can tell.
		if err := d.fp.Uints("farm/rpc_read", f.Hits); err != nil {
			return err
		}
		return nil
	}
}

// acquire pulls an idle connection, skipping any that died while
// pooled and evicting connections of quarantined workers. nil means no
// connection within AcquireTimeout (or closed).
func (d *Dispatcher) acquire() *wconn {
	deadline := time.NewTimer(d.opts.AcquireTimeout)
	defer deadline.Stop()
	for {
		select {
		case w := <-d.idle:
			if w.dead.Load() {
				continue
			}
			if !d.health.allowed(w.addr) {
				d.kill(w)
				continue
			}
			return w
		case <-deadline.C:
			return nil
		case <-d.ctxDone():
			return nil
		case <-d.closed:
			return nil
		}
	}
}

// put returns a healthy connection to the pool.
func (d *Dispatcher) put(w *wconn) {
	select {
	case <-d.closed:
		d.kill(w)
		return
	default:
	}
	select {
	case d.idle <- w:
	default:
		// Pool sized for every possible slot; overflow means bookkeeping
		// is off somewhere — evict rather than block a scheduler lane.
		d.kill(w)
	}
}

// kill evicts a connection: the keeper observes broken and redials.
func (d *Dispatcher) kill(w *wconn) {
	if w.dead.Swap(true) {
		return
	}
	d.mEvicts.Inc()
	d.live.Add(-1)
	w.gauge.Add(-1)
	d.health.detach(w.addr, w)
	d.log.Debug("farm: connection evicted", "worker", w.addr, "proto", w.cdc.version)
	w.conn.Close()
	close(w.broken)
}

// keeper maintains one connection slot for one worker address: dial,
// handshake, hand the connection to the pool, wait for it to break,
// redial with exponential backoff. Slot 0 discovers the worker's
// capacity from its welcome frame and spawns the remaining slots
// (capacity-driven fan-out, capped by MaxConnsPerWorker). While the
// worker is quarantined the keeper parks at the health gate instead of
// dialing; after the cooldown exactly one keeper is admitted as the
// half-open probe.
func (d *Dispatcher) keeper(addrIdx int, addr string, slot int, fanOut *sync.Once) {
	defer d.wg.Done()
	fails := 0
	for {
		select {
		case <-d.closed:
			return
		default:
		}
		if !d.gateDial(addr) {
			return // dispatcher closed while quarantined
		}
		d.mDials.Inc()
		w, capacity, err := d.dial(addrIdx, addr)
		if err != nil {
			d.mDialFails.Inc()
			d.health.dialFailed(addr)
			fails++
			d.log.Debug("farm: dial failed", "worker", addr, "slot", slot, "fails", fails, "err", err)
			d.sleep(d.backoff(fails - 1))
			continue
		}
		fails = 0
		d.readyOne.Do(func() { close(d.ready) })
		if slot == 0 {
			fanOut.Do(func() {
				n := capacity
				if n > d.opts.MaxConnsPerWorker {
					n = d.opts.MaxConnsPerWorker
				}
				for s := 1; s < n; s++ {
					d.wg.Add(1)
					go d.keeper(addrIdx, addr, s, fanOut)
				}
			})
		}
		select {
		case d.idle <- w:
		case <-d.closed:
			d.kill(w)
			return
		}
		select {
		case <-w.broken:
			// Evicted (I/O error, failed ping): loop and redial.
		case <-d.closed:
			d.kill(w)
			return
		}
	}
}

// gateDial parks until the worker's health gate admits a dial, or the
// dispatcher closes (false).
func (d *Dispatcher) gateDial(addr string) bool {
	for {
		ok, wait := d.health.gate(addr)
		if ok {
			return true
		}
		select {
		case <-time.After(wait):
		case <-d.closed:
			return false
		}
	}
}

// dial opens and handshakes one connection. The hello/welcome exchange
// is always v1 JSON — the hello advertises the dispatcher's highest
// supported chunk-path version in Max, the welcome answers with the
// negotiated one, and the connection's codec switches to it. A
// handshake refusal (error frame, wrong welcome, nonsense negotiation)
// maps onto ErrVersionMismatch.
func (d *Dispatcher) dial(addrIdx int, addr string) (*wconn, int, error) {
	if err := d.fp.Eval("farm/dial"); err != nil {
		return nil, 0, err
	}
	conn, err := d.opts.Dial(addr)
	if err != nil {
		return nil, 0, err
	}
	if err := d.fp.Eval("farm/handshake"); err != nil {
		conn.Close()
		return nil, 0, err
	}
	conn.SetDeadline(time.Now().Add(d.opts.ChunkTimeout))
	hello := &Frame{Type: TypeHello, Version: ProtocolV1, Max: d.opts.MaxVersion,
		Build: buildinfo.Read().Short()}
	if err := WriteFrame(conn, hello); err != nil {
		conn.Close()
		return nil, 0, err
	}
	var f Frame
	if err := ReadFrame(conn, &f); err != nil {
		conn.Close()
		return nil, 0, err
	}
	conn.SetDeadline(time.Time{})
	if f.Type == TypeError {
		conn.Close()
		return nil, 0, fmt.Errorf("%w: worker %s: %s", ErrVersionMismatch, addr, f.Err)
	}
	if f.Type != TypeWelcome || f.Version != ProtocolV1 {
		conn.Close()
		return nil, 0, fmt.Errorf("%w: worker %s answered %q v%d", ErrVersionMismatch, addr, f.Type, f.Version)
	}
	version := f.Max
	if version == 0 {
		version = ProtocolV1 // pre-negotiation worker: field absent
	}
	if version < ProtocolV1 || version > d.opts.MaxVersion {
		conn.Close()
		return nil, 0, fmt.Errorf("%w: worker %s negotiated v%d (offered max v%d)",
			ErrVersionMismatch, addr, version, d.opts.MaxVersion)
	}
	d.mProto.Set(int64(version))
	if version >= ProtocolV2 {
		d.mConnsV2.Inc()
	} else {
		d.mConnsV1.Inc()
	}
	capacity := f.Capacity
	if capacity < 1 {
		capacity = 1
	}
	// The labeled per-connection gauge: one series per (worker address,
	// negotiated version), so /metrics shows exactly which peers speak
	// which protocol. Worker addresses come from configuration, so the
	// label cardinality is bounded.
	gauge := d.metrics.GaugeWith("farm.conns",
		obs.Labels("peer", addr, "proto", fmt.Sprintf("v%d", version)))
	gauge.Add(1)
	d.live.Add(1)
	d.log.Info("farm: connection established",
		"worker", addr, "remote", conn.RemoteAddr().String(),
		"proto", version, "capacity", f.Capacity, "build", f.Build)
	w := &wconn{
		conn:    conn,
		addr:    addr,
		addrIdx: addrIdx,
		broken:  make(chan struct{}),
		cdc:     codec{version: version},
		gauge:   gauge,
	}
	d.health.attach(addr, w)
	return w, capacity, nil
}

// heartbeater periodically pings pooled (idle) connections and evicts
// the dead; their keepers redial, so a restarted worker rejoins without
// intervention. In-flight connections are not pinged — an active
// exchange is its own liveness proof, and exclusive ownership keeps
// ping/result frames from interleaving.
func (d *Dispatcher) heartbeater() {
	defer d.wg.Done()
	t := time.NewTicker(d.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-d.closed:
			return
		case <-t.C:
			for n := len(d.idle); n > 0; n-- {
				select {
				case w := <-d.idle:
					if w.dead.Load() {
						continue
					}
					if d.ping(w) != nil {
						d.kill(w)
					} else {
						d.put(w)
					}
				default:
					n = 0
				}
			}
		}
	}
}

func (d *Dispatcher) ping(w *wconn) error {
	w.conn.SetDeadline(time.Now().Add(d.opts.Heartbeat))
	defer w.conn.SetDeadline(time.Time{})
	id := w.nextID
	w.nextID++
	w.rf = Frame{Type: TypePing, ID: id, Hits: w.rf.Hits[:0]}
	if err := w.cdc.write(w.conn, &w.rf); err != nil {
		return err
	}
	for {
		if err := w.cdc.read(w.conn, &w.rf); err != nil {
			return err
		}
		if w.rf.Type == TypePong && w.rf.ID == id {
			return nil
		}
		// Skip stale duplicates from a flaky transport.
	}
}

// Close stops the dispatcher: keepers and the heartbeater exit, every
// connection is closed, audit environments shut down, and subsequent
// RunChunk calls report ErrDispatcherClosed (in-flight exchanges fail
// and fall back locally). Close is idempotent.
func (d *Dispatcher) Close() {
	d.stop.Do(func() { close(d.closed) })
	for {
		select {
		case w := <-d.idle:
			d.kill(w)
		default:
			d.wg.Wait()
			d.auditMu.Lock()
			for _, env := range d.auditEnvs {
				env.Close()
			}
			d.auditEnvs = nil
			d.auditMu.Unlock()
			return
		}
	}
}

// sleep waits for dur unless the dispatcher closes or its context is
// canceled first.
func (d *Dispatcher) sleep(dur time.Duration) {
	select {
	case <-time.After(dur):
	case <-d.ctxDone():
	case <-d.closed:
	}
}

// backoff is the attempt'th exponential backoff step under the
// dispatcher's retry configuration.
func (d *Dispatcher) backoff(attempt int) time.Duration {
	return backoff(d.opts.BackoffBase, d.opts.BackoffMax, attempt, d.opts.jitter())
}

// backoff is the attempt'th exponential backoff step with ±jitter
// (a fraction of the step; 0 disables).
func backoff(base, max time.Duration, attempt int, jitter float64) time.Duration {
	if attempt > 16 {
		attempt = 16
	}
	dur := base << uint(attempt)
	if dur > max || dur <= 0 {
		dur = max
	}
	if jitter > 0 {
		span := int64(float64(dur) * jitter)
		if span > 0 {
			dur += time.Duration(rand.Int63n(2*span+1) - span)
		}
	}
	return dur
}
