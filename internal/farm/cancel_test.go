package farm

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/duv/iounit"
	"repro/internal/obs"
	"repro/internal/sim"
)

func cancelChunk() sim.RemoteChunk {
	return sim.RemoteChunk{
		Unit: iounit.UnitName, Seed: 7, Lo: 0, Hi: 16,
		Events: iounit.New().Model().Size(),
	}
}

// TestRunChunkCanceledContext: once the dispatcher's context is
// canceled, queued remote work fails immediately with the context's
// error (the scheduler's abort path then drops the chunk without
// simulating) and the cancellation is counted.
func TestRunChunkCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	lb := NewLoopback()
	srv := NewServer(ServerOptions{Capacity: 2})
	defer srv.Shutdown()
	lb.Add("a", srv, Faults{})
	rec := obs.NewRecorder()
	opts := testOptions(lb.Dial, rec)
	opts.Context = ctx
	d := New([]string{"a"}, opts)
	defer d.Close()
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	if _, err := d.RunChunk(cancelChunk()); err != nil {
		t.Fatalf("healthy RunChunk: %v", err)
	}
	cancel()
	if _, err := d.RunChunk(cancelChunk()); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunChunk after cancel: err = %v, want context.Canceled", err)
	}
	if got := rec.Counter("farm.chunks_canceled").Value(); got != 1 {
		t.Fatalf("farm.chunks_canceled = %d, want 1", got)
	}
}

// TestCancelUnblocksAcquire: a cancellation arriving while RunChunk is
// waiting for a connection (dead fleet, long AcquireTimeout) unblocks
// it promptly instead of burning the full timeout and retry backoff.
func TestCancelUnblocksAcquire(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	lb := NewLoopback() // no workers registered: acquire always blocks
	opts := testOptions(lb.Dial, nil)
	opts.AcquireTimeout = 30 * time.Second
	opts.Context = ctx
	d := New(nil, opts)
	defer d.Close()

	done := make(chan error, 1)
	go func() {
		_, err := d.RunChunk(cancelChunk())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("RunChunk succeeded with no workers")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunChunk still blocked long after cancellation")
	}
}
