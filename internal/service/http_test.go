package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// The golden files pin every /v1 endpoint's JSON shape. Regenerate
// after an intentional API change with:
//
//	go test ./internal/service -run TestHTTP -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the HTTP API golden files")

const goldenDir = "../../testdata/service"

// timestampRe normalizes the only non-deterministic fields in API
// responses — RFC 3339 timestamps — so golden comparisons are stable.
var timestampRe = regexp.MustCompile(`"(submitted_at|started_at|finished_at)": "[^"]*"`)

func normalize(body []byte) string {
	return timestampRe.ReplaceAllString(string(body), `"$1": "TIME"`)
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join(goldenDir, name)
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden to create): %v", name, err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func doJSON(t *testing.T, client *http.Client, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestHTTPEndpointGoldens drives every /v1 endpoint against a live
// service and pins each response's JSON shape.
func TestHTTPEndpointGoldens(t *testing.T) {
	svc := newService(t, Config{MaxRunning: 1, MaxQueue: 16})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	// POST valid spec → 202 with the allocated id.
	resp, body := doJSON(t, client, "POST", ts.URL+"/v1/campaigns", tinySpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202: %s", resp.StatusCode, body)
	}
	checkGolden(t, "submit_accepted.json", normalize(body))
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}

	// POST malformed spec → 400.
	resp, body = doJSON(t, client, "POST", ts.URL+"/v1/campaigns", Spec{Unit: "iounit"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid POST status = %d, want 400: %s", resp.StatusCode, body)
	}
	checkGolden(t, "submit_invalid.json", normalize(body))

	// GET unknown id → 404.
	resp, body = doJSON(t, client, "GET", ts.URL+"/v1/campaigns/c999999", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown GET status = %d, want 404: %s", resp.StatusCode, body)
	}
	checkGolden(t, "get_unknown.json", normalize(body))

	// The submitted campaign runs to completion; GET then carries the
	// full deterministic report.
	waitDone(t, svc, accepted.ID)
	resp, body = doJSON(t, client, "GET", ts.URL+"/v1/campaigns/"+accepted.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d, want 200: %s", resp.StatusCode, body)
	}
	checkGolden(t, "get_done.json", normalize(body))

	// GET the list → one terminal campaign (reports omitted).
	resp, body = doJSON(t, client, "GET", ts.URL+"/v1/campaigns", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d, want 200: %s", resp.StatusCode, body)
	}
	checkGolden(t, "list.json", normalize(body))

	// The events stream replays the campaign's full JSONL history and
	// terminates because the campaign is done. The event-kind sequence
	// is deterministic; t_ms is not, so the golden keeps (event, phase)
	// pairs only.
	resp, body = doJSON(t, client, "GET", ts.URL+"/v1/campaigns/"+accepted.ID+"/events", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d, want 200: %s", resp.StatusCode, body)
	}
	var kinds strings.Builder
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Event string `json:"event"`
			Phase string `json:"phase"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		fmt.Fprintf(&kinds, "%s %s\n", ev.Event, ev.Phase)
	}
	checkGolden(t, "events_kinds.txt", kinds.String())
}

// TestHTTPCancelGolden pins DELETE's shape on a queued campaign (a
// deterministic state, unlike canceling a mid-run one).
func TestHTTPCancelGolden(t *testing.T) {
	svc, release := gatedService(t, Config{MaxRunning: 1, MaxQueue: 4})
	defer release()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	_, body := doJSON(t, client, "POST", ts.URL+"/v1/campaigns", tinySpec())
	var first struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	_, body = doJSON(t, client, "POST", ts.URL+"/v1/campaigns", tinySpec())
	var second struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}

	resp, body := doJSON(t, client, "DELETE", ts.URL+"/v1/campaigns/"+second.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d, want 200: %s", resp.StatusCode, body)
	}
	checkGolden(t, "cancel_queued.json", normalize(body))

	resp, body = doJSON(t, client, "DELETE", ts.URL+"/v1/campaigns/c999999", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown status = %d, want 404: %s", resp.StatusCode, body)
	}
	checkGolden(t, "delete_unknown.json", normalize(body))
}

// TestHTTPQueueFullGolden pins the 429 rejection: Retry-After header
// plus the error body.
func TestHTTPQueueFullGolden(t *testing.T) {
	svc, release := gatedService(t, Config{MaxRunning: 1, MaxQueue: 1, RetryAfter: 15 * time.Second})
	defer release()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	_, body := doJSON(t, client, "POST", ts.URL+"/v1/campaigns", tinySpec())
	var first struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Get(first.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first campaign never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, _ := doJSON(t, client, "POST", ts.URL+"/v1/campaigns", tinySpec()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST status = %d, want 202", resp.StatusCode)
	}

	resp, body := doJSON(t, client, "POST", ts.URL+"/v1/campaigns", tinySpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "15" {
		t.Fatalf("Retry-After = %q, want \"15\"", got)
	}
	checkGolden(t, "submit_rejected.json", normalize(body))
}
