package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/knowledge"
	"repro/internal/obs"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/campaigns             submit a Spec        → 202 {id, state}
//	GET    /v1/campaigns             list campaigns       → 200 [State...]
//	GET    /v1/campaigns/{id}        one campaign         → 200 State (reports once done)
//	GET    /v1/campaigns/{id}/events live JSONL progress  → 200 application/jsonl stream
//	DELETE /v1/campaigns/{id}        cancel               → 200 State
//	GET    /v1/scheduler             fair-share snapshot  → 200 SchedulerInfo
//	GET    /v1/knowledge             cross-campaign base  → 200 {count, entries}
//
// A full queue rejects submissions with 429 and a Retry-After header;
// malformed specs get 400; unknown ids get 404.
//
// The mux also serves the operational endpoints (/metrics in OpenMetrics
// text format, /healthz liveness, /readyz backed by Service.Ready) so a
// single listener covers both the API and its probes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/scheduler", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Scheduler())
	})
	mux.HandleFunc("GET /v1/knowledge", s.handleKnowledge)
	health := obs.NewHealth()
	health.Set("service", s.Ready)
	var reg *obs.Registry
	if s.rec != nil {
		reg = s.rec.Metrics
	}
	obs.RegisterOps(mux, reg, health)
	return mux
}

type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("invalid spec: %v", err)})
		return
	}
	id, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter()/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, httpError{Error: err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": StateQueued})
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

// handleKnowledge serves the merged cross-campaign knowledge base —
// every replica sees the same entries, so any replica can answer.
func (s *Service) handleKnowledge(w http.ResponseWriter, r *http.Request) {
	entries, err := s.Knowledge()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	if entries == nil {
		entries = []knowledge.Entry{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(entries),
		"entries": entries,
	})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	st := s.Get(r.PathValue("id"))
	if st == nil {
		writeJSON(w, http.StatusNotFound, httpError{Error: "unknown campaign"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st := s.Cancel(r.PathValue("id"))
	if st == nil {
		writeJSON(w, http.StatusNotFound, httpError{Error: "unknown campaign"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents tails the campaign's events.jsonl, streaming every line
// as it is appended and returning once the campaign reaches a terminal
// state (or the client goes away). Works for queued campaigns too: the
// stream waits for the file to appear.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	path := s.EventsPath(id)
	if path == "" {
		writeJSON(w, http.StatusNotFound, httpError{Error: "unknown campaign"})
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	buf := make([]byte, 64<<10)
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		// Sample the terminal flag BEFORE draining: the flow stops
		// appending before the campaign turns terminal, so a drain that
		// started after Done saw true cannot miss a tail write.
		done := s.Done(id)
		if f == nil {
			f, _ = os.Open(path) // appears when the campaign starts running
		}
		for f != nil {
			n, err := f.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			if err != nil {
				break // EOF (or a read error): caught up for now
			}
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
