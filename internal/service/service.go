// Package service is the campaign layer of the AS-CDG system: a
// long-running daemon core that accepts CDG campaigns, runs them with
// bounded concurrency, and persists everything so a daemon restart
// picks up exactly where the previous process died (DESIGN.md §11).
//
// Every campaign owns a directory under Config.DataDir:
//
//	<data>/<id>/campaign.json  current lifecycle state (atomic rename)
//	<data>/<id>/flow.journal   the flow's crash-safe journal
//	<data>/<id>/events.jsonl   the campaign's JSONL progress stream
//	<data>/<id>/report.json    the final per-round reports, once done
//
// The flow journal is the resume mechanism: a campaign that was
// "running" when the daemon stopped is re-enqueued at startup, and
// core.New recovers the journal, replaying the completed prefix, so
// the resumed campaign's reports are bit-identical to an uninterrupted
// run (the invariant internal/chaos sweeps).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/duv"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Campaign lifecycle states. queued and running are live; done, failed
// and canceled are terminal.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// ErrQueueFull rejects a submission when the admission queue is at
// capacity; the HTTP layer maps it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("service: campaign queue full")

// ErrClosed rejects submissions after Close began draining.
var ErrClosed = errors.New("service: draining")

// Config configures a Service. The zero value of every optional field
// selects the documented default.
type Config struct {
	// DataDir is the root of the campaign store (required). Each
	// campaign gets its own subdirectory.
	DataDir string

	// MaxRunning bounds concurrently running campaigns (default 1 —
	// campaigns are multi-phase simulation runs that each saturate the
	// worker pool).
	MaxRunning int

	// MaxQueue bounds campaigns waiting behind the running ones
	// (default 16). Submissions beyond it fail with ErrQueueFull.
	MaxQueue int

	// RetryAfter is the backoff hint attached to ErrQueueFull
	// rejections (default 15s).
	RetryAfter time.Duration

	// Workers sizes each campaign flow's simulation pool (<= 0:
	// GOMAXPROCS). A campaign spec may override it.
	Workers int

	// Runner and RunnerLanes pass a remote chunk runner (the farm
	// dispatcher) through to every campaign flow. Purely a throughput
	// knob: reports are bit-identical with or without it.
	Runner      sim.ChunkRunner
	RunnerLanes int

	// Rec instruments the service (service.* metrics, campaign spans)
	// and is shared as the Metrics/Trace sink of every campaign flow.
	// Each campaign additionally gets a private Progress sink writing
	// its events.jsonl.
	Rec *obs.Recorder

	// Log receives structured lifecycle events (submit, start, end,
	// recover, drain), every record carrying the campaign id as a
	// correlated field. nil discards.
	Log *slog.Logger

	// flowArmed, when non-nil, observes every campaign flow right after
	// construction and before the run starts — the test seam used to
	// interrupt campaigns at exact journal positions.
	flowArmed func(id string, f *core.Flow)
}

func (c Config) withDefaults() Config {
	if c.MaxRunning <= 0 {
		c.MaxRunning = 1
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 15 * time.Second
	}
	return c
}

// campaign is one submitted campaign: its persisted state plus the
// in-process handles needed to run and cancel it.
type campaign struct {
	dir string

	mu             sync.Mutex
	st             State
	cancel         context.CancelFunc // non-nil while running
	canceledByUser bool
	done           chan struct{} // closed when the campaign leaves the live states
}

// Service runs campaigns. Create with New, stop with Close.
type Service struct {
	cfg Config
	rec *obs.Recorder
	log *slog.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	campaigns map[string]*campaign
	queue     []string // FIFO of queued campaign ids
	running   int
	nextID    int
	closed    bool

	wg sync.WaitGroup // dispatcher + running campaigns
}

// New opens (or creates) the campaign store at cfg.DataDir, re-enqueues
// every campaign the previous daemon left queued or running — resumed
// campaigns go first, in submission order — and starts the dispatcher.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("service: Config.DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		rec:        cfg.Rec,
		log:        obs.OrNop(cfg.Log),
		baseCtx:    ctx,
		baseCancel: cancel,
		campaigns:  map[string]*campaign{},
		nextID:     1,
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// recover loads every persisted campaign and rebuilds the queue:
// previously-running campaigns first (their journals resume), then the
// previously-queued ones, both in submission order.
func (s *Service) recover() error {
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return err
	}
	var resumed, queued []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.cfg.DataDir, e.Name())
		st, err := loadState(dir)
		if err != nil {
			return fmt.Errorf("service: recovering %s: %w", e.Name(), err)
		}
		c := &campaign{dir: dir, st: *st, done: make(chan struct{})}
		switch st.State {
		case StateRunning:
			// The previous daemon died (or drained) mid-campaign. The flow
			// journal holds the completed prefix; re-running replays it.
			c.st.State = StateQueued
			resumed = append(resumed, st.ID)
			s.counter("service.resumed").Inc()
		case StateQueued:
			queued = append(queued, st.ID)
		default:
			close(c.done)
		}
		s.campaigns[st.ID] = c
		if n := idNumber(st.ID); n >= s.nextID {
			s.nextID = n + 1
		}
	}
	sort.Strings(resumed)
	sort.Strings(queued)
	s.queue = append(resumed, queued...)
	s.gauge("service.queued").Set(int64(len(s.queue)))
	for _, id := range resumed {
		s.log.Info("service: campaign resumed", "campaign", id)
	}
	if len(s.queue) > 0 {
		s.log.Info("service: recovery complete",
			"resumed", len(resumed), "queued", len(queued))
	}
	return nil
}

// Ready is the daemon's readiness check for /readyz. It fails once
// Close began draining, when the admission queue is saturated (new
// submissions would be rejected with 429 anyway), and when the data
// root is no longer writable (submissions would fail to persist).
func (s *Service) Ready() error {
	s.mu.Lock()
	closed, queued := s.closed, len(s.queue)
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if queued >= s.cfg.MaxQueue {
		return fmt.Errorf("%w (capacity %d)", ErrQueueFull, s.cfg.MaxQueue)
	}
	probe, err := os.CreateTemp(s.cfg.DataDir, ".readyz-*")
	if err != nil {
		return fmt.Errorf("service: data root not writable: %w", err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return nil
}

// Submit validates and enqueues a campaign, returning its id. The
// submission is durable before Submit returns: a daemon restart
// re-enqueues it.
func (s *Service) Submit(spec Spec) (string, error) {
	if err := spec.validate(); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", ErrClosed
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.counter("service.rejected").Inc()
		return "", fmt.Errorf("%w (capacity %d)", ErrQueueFull, s.cfg.MaxQueue)
	}
	id := fmt.Sprintf("c%06d", s.nextID)
	s.nextID++
	dir := filepath.Join(s.cfg.DataDir, id)
	c := &campaign{
		dir: dir,
		st: State{
			ID:          id,
			Spec:        spec,
			State:       StateQueued,
			SubmittedAt: time.Now().UTC(),
		},
		done: make(chan struct{}),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.mu.Unlock()
		return "", err
	}
	if err := saveState(dir, &c.st); err != nil {
		s.mu.Unlock()
		return "", err
	}
	s.campaigns[id] = c
	s.queue = append(s.queue, id)
	s.counter("service.submitted").Inc()
	s.gauge("service.queued").Set(int64(len(s.queue)))
	s.cond.Signal()
	s.mu.Unlock()
	s.rec.Emit("campaign_submitted", map[string]any{"id": id, "unit": spec.Unit})
	s.log.Info("service: campaign submitted", "campaign", id, "unit", spec.Unit)
	return id, nil
}

// Get returns a snapshot of the campaign's state (reports included once
// done), or nil if the id is unknown.
func (s *Service) Get(id string) *State {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return nil
	}
	c.mu.Lock()
	st := c.st.clone()
	c.mu.Unlock()
	if st.State == StateDone && st.Reports == nil {
		// Terminal reports live on disk, not in memory: load on demand so
		// a restarted daemon serves old campaigns without caching them.
		if reports, err := loadReports(c.dir); err == nil {
			st.Reports = reports
		}
	}
	return st
}

// List returns every campaign's state snapshot (without reports),
// sorted by id.
func (s *Service) List() []*State {
	s.mu.Lock()
	cs := make([]*campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		cs = append(cs, c)
	}
	s.mu.Unlock()
	out := make([]*State, 0, len(cs))
	for _, c := range cs {
		c.mu.Lock()
		out = append(out, c.st.clone())
		c.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Cancel stops a campaign: a queued one is withdrawn, a running one is
// interrupted (its journal keeps the completed prefix). Terminal
// campaigns are left untouched. Returns the post-cancel state, or nil
// for an unknown id.
func (s *Service) Cancel(id string) *State {
	s.mu.Lock()
	c := s.campaigns[id]
	if c == nil {
		s.mu.Unlock()
		return nil
	}
	c.mu.Lock()
	switch c.st.State {
	case StateQueued:
		c.st.State = StateCanceled
		c.st.FinishedAt = now()
		saveState(c.dir, &c.st)
		close(c.done)
		for i, qid := range s.queue {
			if qid == id {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.gauge("service.queued").Set(int64(len(s.queue)))
		s.counter("service.canceled").Inc()
	case StateRunning:
		c.canceledByUser = true
		c.cancel()
	}
	st := c.st.clone()
	c.mu.Unlock()
	s.mu.Unlock()
	return st
}

// Wait blocks until the campaign reaches a terminal state, the context
// is done, or the id is unknown (returns immediately).
func (s *Service) Wait(ctx context.Context, id string) {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return
	}
	select {
	case <-c.done:
	case <-ctx.Done():
	}
}

// EventsPath returns the campaign's JSONL progress file path (the file
// appears when the campaign starts running), or "" for an unknown id.
func (s *Service) EventsPath(id string) string {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return ""
	}
	return filepath.Join(c.dir, "events.jsonl")
}

// Done reports whether the campaign has reached a terminal state (also
// true for unknown ids, so event streams terminate).
func (s *Service) Done(id string) bool {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return true
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// RetryAfter is the backoff hint for ErrQueueFull rejections.
func (s *Service) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// Close drains the service: no new submissions, running campaigns are
// interrupted (their journals checkpoint the completed prefix and their
// state stays "running" on disk so the next daemon resumes them), and
// queued campaigns stay queued. Blocks until every campaign goroutine
// has exited.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.log.Info("service: draining")
	s.baseCancel()
	s.wg.Wait()
	s.log.Info("service: drained")
}

// dispatch pops queued campaigns in FIFO order whenever a running slot
// is free and spawns their runner goroutines.
func (s *Service) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && (len(s.queue) == 0 || s.running >= s.cfg.MaxRunning) {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		c := s.campaigns[id]
		s.running++
		s.gauge("service.queued").Set(int64(len(s.queue)))
		s.gauge("service.running").Set(int64(s.running))
		ctx, cancel := context.WithCancel(s.baseCtx)
		c.mu.Lock()
		c.st.State = StateRunning
		c.st.StartedAt = now()
		c.cancel = cancel
		saveState(c.dir, &c.st)
		c.mu.Unlock()
		s.wg.Add(1)
		go s.runCampaign(c, ctx, cancel)
		s.mu.Unlock()
	}
}

// runCampaign executes one campaign to a terminal state (or to an
// interruption that the next daemon resumes).
func (s *Service) runCampaign(c *campaign, ctx context.Context, cancel context.CancelFunc) {
	defer s.wg.Done()
	defer cancel()
	id := c.st.ID
	span := s.rec.Span("campaign", id)
	s.rec.Emit("campaign_start", map[string]any{"id": id, "unit": c.st.Spec.Unit})
	s.log.Info("service: campaign started", "campaign", id, "unit", c.st.Spec.Unit)

	reports, err := s.executeFlow(c, ctx)

	c.mu.Lock()
	c.cancel = nil
	interrupted := errors.Is(err, core.ErrInterrupted)
	byUser := c.canceledByUser
	switch {
	case err == nil:
		c.st.State = StateDone
		c.st.FinishedAt = now()
		c.st.Reports = reports
		if perr := saveReports(c.dir, reports); perr != nil {
			c.st.State = StateFailed
			c.st.Error = perr.Error()
		}
		saveState(c.dir, &c.st)
		close(c.done)
		s.counter("service.completed").Inc()
	case interrupted && byUser:
		c.st.State = StateCanceled
		c.st.FinishedAt = now()
		saveState(c.dir, &c.st)
		close(c.done)
		s.counter("service.canceled").Inc()
	case interrupted:
		// Daemon drain: the journal holds the completed prefix and the
		// on-disk state stays "running", which the next daemon's recover
		// re-enqueues. The in-memory campaign is finished for this
		// process's lifetime.
		close(c.done)
	default:
		c.st.State = StateFailed
		c.st.Error = err.Error()
		c.st.FinishedAt = now()
		saveState(c.dir, &c.st)
		close(c.done)
		s.counter("service.failed").Inc()
	}
	state := c.st.State
	c.mu.Unlock()

	s.rec.Emit("campaign_end", map[string]any{"id": id, "state": state})
	if err != nil && state == StateFailed {
		s.log.Warn("service: campaign failed", "campaign", id, "err", err)
	} else {
		s.log.Info("service: campaign ended", "campaign", id, "state", state)
	}
	span.End()

	s.mu.Lock()
	s.running--
	s.gauge("service.running").Set(int64(s.running))
	s.cond.Signal()
	s.mu.Unlock()
}

// executeFlow builds the campaign's journaled flow and runs the
// requested target, returning the per-round reports.
func (s *Service) executeFlow(c *campaign, ctx context.Context) ([]*ReportJSON, error) {
	spec := c.st.Spec
	unit, err := duv.New(spec.Unit)
	if err != nil {
		return nil, err
	}
	events, err := os.OpenFile(filepath.Join(c.dir, "events.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	defer events.Close()

	// Per-campaign recorder: metrics and trace aggregate into the
	// service's sinks, progress streams into the campaign's own file,
	// and Campaign stamps the id onto every chunk span and outbound
	// farm frame so fleet-wide traces correlate back to this campaign.
	rec := &obs.Recorder{Progress: obs.NewProgress(events), Campaign: c.st.ID}
	if s.rec != nil {
		rec.Metrics = s.rec.Metrics
		rec.Trace = s.rec.Trace
	}

	cfg := spec.coreConfig(s.cfg.Workers)
	cfg.Obs = rec
	cfg.Log = s.log.With("campaign", c.st.ID)
	cfg.Runner = s.cfg.Runner
	cfg.RunnerLanes = s.cfg.RunnerLanes
	cfg.Journal = filepath.Join(c.dir, "flow.journal")
	flow, err := core.New(unit, cfg)
	if err != nil {
		return nil, err
	}
	defer flow.Close()
	if s.cfg.flowArmed != nil {
		s.cfg.flowArmed(c.st.ID, flow)
	}

	var reports []*core.Report
	switch {
	case spec.Family != "":
		reports, err = flow.RunFamilyRefined(ctx, spec.Family, spec.decay(), spec.rounds())
	case spec.Cross != "":
		var r *core.Report
		r, err = flow.RunCross(ctx, spec.Cross)
		if r != nil {
			reports = append(reports, r)
		}
	default:
		var r *core.Report
		r, err = flow.RunEvents(ctx, spec.Events, spec.minSim())
		if r != nil {
			reports = append(reports, r)
		}
	}
	if err != nil {
		return nil, err
	}
	out := make([]*ReportJSON, len(reports))
	for i, r := range reports {
		out[i] = NewReportJSON(r, unit.Model())
	}
	return out, nil
}

func (s *Service) counter(name string) *obs.Counter { return s.rec.Counter(name) }
func (s *Service) gauge(name string) *obs.Gauge     { return s.rec.Gauge(name) }

func now() *time.Time {
	t := time.Now().UTC()
	return &t
}

// idNumber parses the numeric part of a campaign id ("c000042" → 42);
// foreign directory names yield 0 and never advance the allocator.
func idNumber(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "c%d", &n); err != nil {
		return 0
	}
	return n
}

const stateFile = "campaign.json"

func loadState(dir string) (*State, error) {
	data, err := os.ReadFile(filepath.Join(dir, stateFile))
	if err != nil {
		return nil, err
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// saveState persists the campaign's lifecycle record crash-safely.
// Reports are persisted separately (report.json); the state file stays
// small so every transition is one cheap atomic rename.
func saveState(dir string, st *State) error {
	slim := st.clone()
	slim.Reports = nil
	return atomicfile.WriteFile(filepath.Join(dir, stateFile), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(slim)
	})
}

func loadReports(dir string) ([]*ReportJSON, error) {
	data, err := os.ReadFile(filepath.Join(dir, "report.json"))
	if err != nil {
		return nil, err
	}
	var reports []*ReportJSON
	if err := json.Unmarshal(data, &reports); err != nil {
		return nil, err
	}
	return reports, nil
}

func saveReports(dir string, reports []*ReportJSON) error {
	return atomicfile.WriteFile(filepath.Join(dir, "report.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	})
}
