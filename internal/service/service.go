// Package service is the campaign layer of the AS-CDG system: a
// long-running daemon core that accepts CDG campaigns, runs them with
// bounded concurrency, and persists everything so a daemon restart —
// or a *peer replica* sharing the same data root — picks up exactly
// where a dead process left off (DESIGN.md §11, §12).
//
// Every campaign owns a directory under Config.DataDir:
//
//	<data>/<id>/campaign.json  current lifecycle state (atomic rename)
//	<data>/<id>/flow.journal   the flow's crash-safe journal
//	<data>/<id>/events.jsonl   the campaign's JSONL progress stream
//	<data>/<id>/report.json    the final per-round reports, once done
//	<data>/<id>/lease.json     ownership lease (internal/lease)
//
// The flow journal is the resume mechanism: a campaign that was
// "running" when its owner died is adopted by whichever replica's
// janitor first claims the expired lease, and core.New recovers the
// journal, replaying the completed prefix, so the adopted campaign's
// reports are bit-identical to an uninterrupted run (the invariant
// internal/chaos sweeps and cmd/cdgload drives at fleet scale).
//
// Scheduling is weighted fair-share rather than FIFO: every Spec
// carries a tenant, Config.TenantWeights assigns per-tenant weights,
// and the dispatcher stride-schedules backlogged tenants so campaign
// starts track the weights whenever the service is saturated.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/duv"
	"repro/internal/failpoint"
	"repro/internal/farm"
	"repro/internal/knowledge"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/sim"
)

// Campaign lifecycle states. queued and running are live; done, failed
// and canceled are terminal.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

func isTerminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// ErrQueueFull rejects a submission when the admission queue is at
// capacity; the HTTP layer maps it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("service: campaign queue full")

// ErrClosed rejects submissions after Close began draining.
var ErrClosed = errors.New("service: draining")

// Config configures a Service. The zero value of every optional field
// selects the documented default.
type Config struct {
	// DataDir is the root of the campaign store (required). Each
	// campaign gets its own subdirectory. Multiple replicas may share
	// one data root: campaign ownership is arbitrated by leases.
	DataDir string

	// Owner is this replica's identity in lease records (default
	// "<hostname>-<pid>"). Must be unique among live replicas sharing
	// the data root.
	Owner string

	// LeaseTTL is how long a campaign lease protects its owner without
	// renewal (default 10s). Shorter TTLs adopt dead replicas' campaigns
	// faster at the cost of more lease I/O; it also paces the janitor's
	// data-root rescans (every TTL/2).
	LeaseTTL time.Duration

	// TenantWeights assigns fair-share weights (default: every tenant
	// weighs 1). Only ratios matter: {"paid": 3, "free": 1} gives the
	// paid tenant 3 of every 4 campaign starts under saturation.
	TenantWeights map[string]float64

	// Capacity, when non-nil, reports how many campaigns the backing
	// simulation capacity can feed right now; the dispatcher defers
	// campaign starts beyond min(MaxRunning, Capacity()). cdgd wires it
	// to the farm dispatcher's live worker count so a fleet outage
	// pauses admissions instead of piling campaigns onto local
	// fallback. Must be fast and non-blocking (called under the
	// service's lock).
	Capacity func() int

	// MaxRunning bounds concurrently running campaigns (default 1 —
	// campaigns are multi-phase simulation runs that each saturate the
	// worker pool).
	MaxRunning int

	// MaxQueue bounds campaigns waiting behind the running ones
	// (default 16). Submissions beyond it fail with ErrQueueFull.
	MaxQueue int

	// RetryAfter is the backoff hint attached to ErrQueueFull
	// rejections (default 15s).
	RetryAfter time.Duration

	// Workers sizes each campaign flow's simulation pool (<= 0:
	// GOMAXPROCS). A campaign spec may override it.
	Workers int

	// Runner and RunnerLanes pass a remote chunk runner (the farm
	// dispatcher) through to every campaign flow. Purely a throughput
	// knob: reports are bit-identical with or without it.
	Runner      sim.ChunkRunner
	RunnerLanes int

	// FarmHealth, when non-nil, reports the farm fleet's per-worker
	// health and quarantine state; cdgd wires it to the dispatcher's
	// Health method and GET /v1/scheduler serves it in its "farm"
	// section. Must be fast and non-blocking.
	FarmHealth func() []farm.WorkerHealth

	// Rec instruments the service (service.* metrics — several carry a
	// tenant label — campaign spans, lease.* metrics) and is shared as
	// the Metrics/Trace sink of every campaign flow. Each campaign
	// additionally gets a private Progress sink writing its
	// events.jsonl.
	Rec *obs.Recorder

	// Log receives structured lifecycle events (submit, start, end,
	// adopt, fence, drain), every record carrying the campaign id as a
	// correlated field. nil discards.
	Log *slog.Logger

	// flowArmed, when non-nil, observes every campaign flow right after
	// construction and before the run starts — the test seam used to
	// interrupt campaigns at exact journal positions.
	flowArmed func(id string, f *core.Flow)
}

func (c Config) withDefaults() Config {
	if c.Owner == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "cdgd"
		}
		c.Owner = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.MaxRunning <= 0 {
		c.MaxRunning = 1
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 15 * time.Second
	}
	return c
}

// campaign is one submitted campaign: its persisted state plus the
// in-process handles needed to run and cancel it.
type campaign struct {
	dir string

	mu             sync.Mutex
	st             State
	lease          *lease.Handle      // non-nil while running locally
	cancel         context.CancelFunc // non-nil while running locally
	canceledByUser bool
	remote         bool          // a live peer replica owns it
	done           chan struct{} // closed when the campaign leaves the live states
}

// finishLocked closes the campaign's done channel (idempotently).
// Caller holds c.mu.
func (c *campaign) finishLocked() {
	select {
	case <-c.done:
	default:
		close(c.done)
	}
}

// Service runs campaigns. Create with New, stop with Close.
type Service struct {
	cfg    Config
	owner  string
	rec    *obs.Recorder
	log    *slog.Logger
	leases *lease.Manager
	know   *knowledge.Store

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu                sync.Mutex
	cond              *sync.Cond
	campaigns         map[string]*campaign
	sched             *fairSched
	running           int
	runningByTenant   map[string]int
	completedByTenant map[string]int
	nextID            int
	closed            bool

	wg sync.WaitGroup // dispatcher + janitor + running campaigns
}

// New opens (or creates) the campaign store at cfg.DataDir, scans it —
// adopting every claimable campaign the previous owner left queued or
// running (resumed campaigns first, in submission order) — and starts
// the dispatcher plus the janitor that keeps adopting peers' orphaned
// campaigns while the service lives.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("service: Config.DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	leases, err := lease.NewManager(lease.Options{
		Owner: cfg.Owner, TTL: cfg.LeaseTTL, Rec: cfg.Rec, Log: cfg.Log,
	})
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	know, err := knowledge.Open(filepath.Join(cfg.DataDir, "knowledge"), cfg.Owner, cfg.Rec, cfg.Log)
	if err != nil {
		leases.Close()
		return nil, fmt.Errorf("service: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:               cfg,
		owner:             cfg.Owner,
		rec:               cfg.Rec,
		log:               obs.OrNop(cfg.Log),
		leases:            leases,
		know:              know,
		baseCtx:           ctx,
		baseCancel:        cancel,
		campaigns:         map[string]*campaign{},
		sched:             newFairSched(cfg.TenantWeights),
		runningByTenant:   map[string]int{},
		completedByTenant: map[string]int{},
		nextID:            1,
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.scan(true); err != nil {
		cancel()
		know.Close()
		leases.Close()
		return nil, err
	}
	s.wg.Add(2)
	go s.dispatch()
	go s.janitor()
	return s, nil
}

// Owner returns this replica's lease identity.
func (s *Service) Owner() string { return s.owner }

// scan walks the data root and reconciles it with memory: new
// directories (peer submissions) are registered, terminal campaigns
// close their waiters, and live campaigns whose lease is claimable —
// never leased, released by a draining owner, or expired under a dead
// one — are (re-)enqueued for this replica to run. Campaigns held by a
// live peer are tracked as remote, with their on-disk state mirrored.
//
// Enqueue order is deterministic: previously-running campaigns first
// (their journals resume), then queued ones, each sorted by original
// submission time (ties by id) — directory-walk order never matters.
// initial is the startup pass, where a scan failure is fatal.
func (s *Service) scan(initial bool) error {
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return err
	}
	type candidate struct {
		id string
		st *State
	}
	var adopt []candidate
	for _, e := range entries {
		// Campaign directories are the allocator's c<number> names; the
		// shared knowledge base (and any foreign directory) is not one.
		if !e.IsDir() || idNumber(e.Name()) == 0 {
			continue
		}
		id := e.Name()
		dir := filepath.Join(s.cfg.DataDir, id)

		s.mu.Lock()
		c := s.campaigns[id]
		inSched := c != nil && s.sched.contains(id)
		s.mu.Unlock()
		if c != nil {
			c.mu.Lock()
			skip := c.lease != nil || isTerminal(c.st.State) || inSched
			c.mu.Unlock()
			if skip {
				continue // locally active or already settled
			}
		}

		st, err := loadState(dir)
		if err != nil {
			if initial {
				return fmt.Errorf("service: recovering %s: %w", id, err)
			}
			// A peer may be mid-submission (directory exists, state not yet
			// renamed in); skip and catch it on the next pass.
			continue
		}
		s.mu.Lock()
		if n := idNumber(id); n >= s.nextID {
			s.nextID = n + 1
		}
		c = s.campaigns[id]
		if c == nil {
			c = &campaign{dir: dir, st: *st, done: make(chan struct{})}
			s.campaigns[id] = c
		}
		s.mu.Unlock()

		if isTerminal(st.State) {
			c.mu.Lock()
			if c.lease == nil { // never clobber a local run's view
				c.st = *st
				c.finishLocked()
			}
			c.mu.Unlock()
			s.mu.Lock()
			if s.sched.remove(id) { // a peer canceled it out of our queue
				s.updateGaugesLocked()
			}
			s.mu.Unlock()
			continue
		}

		rec, err := lease.Peek(dir)
		if err != nil {
			if initial {
				return fmt.Errorf("service: recovering %s: %w", id, err)
			}
			continue
		}
		if !s.leases.Claimable(rec) {
			c.mu.Lock()
			if c.lease == nil {
				c.st = *st
				c.remote = true
			}
			c.mu.Unlock()
			continue
		}
		adopt = append(adopt, candidate{id: id, st: st})
	}

	// Deterministic enqueue order: resumed first, then queued, each by
	// (submission time, id).
	sort.Slice(adopt, func(i, j int) bool {
		a, b := adopt[i], adopt[j]
		if (a.st.State == StateRunning) != (b.st.State == StateRunning) {
			return a.st.State == StateRunning
		}
		if !a.st.SubmittedAt.Equal(b.st.SubmittedAt) {
			return a.st.SubmittedAt.Before(b.st.SubmittedAt)
		}
		return a.id < b.id
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	enqueued := 0
	for _, cand := range adopt {
		c := s.campaigns[cand.id]
		if s.sched.contains(cand.id) {
			continue
		}
		c.mu.Lock()
		racing := c.lease != nil || isTerminal(c.st.State)
		if !racing {
			wasRunning := cand.st.State == StateRunning
			c.st = *cand.st
			c.st.State = StateQueued // in-memory; on-disk state is untouched until claimed
			c.remote = false
			c.mu.Unlock()
			s.sched.push(cand.st.Spec.tenant(), cand.id)
			enqueued++
			if wasRunning {
				s.counter("service.resumed").Inc()
				s.log.Info("service: campaign re-enqueued for resume", "campaign", cand.id)
			} else if !initial {
				s.log.Debug("service: campaign adopted into queue", "campaign", cand.id)
			}
		} else {
			c.mu.Unlock()
		}
	}
	if enqueued > 0 {
		s.updateGaugesLocked()
		s.cond.Broadcast()
		if initial {
			s.log.Info("service: recovery complete", "enqueued", enqueued)
		}
	}
	return nil
}

// janitor periodically rescans the data root (every LeaseTTL/2),
// adopting campaigns whose owners died or drained, mirroring peer
// activity, and re-evaluating farm capacity for the dispatcher.
func (s *Service) janitor() {
	defer s.wg.Done()
	interval := s.cfg.LeaseTTL / 2
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
		}
		// service/janitor simulates a janitor pass failing wholesale
		// (data root briefly unreadable): the pass is skipped and the
		// next tick retries, exactly like a real scan failure.
		if err := failpoint.Eval("service/janitor"); err != nil {
			s.log.Warn("service: janitor scan failed", "err", err)
			continue
		}
		if err := s.scan(false); err != nil {
			s.log.Warn("service: janitor scan failed", "err", err)
		}
		// Merge the fleet's knowledge journals into the compacted
		// snapshot, so external consumers read one file.
		if err := s.know.Compact(); err != nil {
			s.log.Warn("service: knowledge compaction failed", "err", err)
		}
		s.mu.Lock()
		s.updateGaugesLocked()
		s.cond.Broadcast() // capacity may have changed
		s.mu.Unlock()
	}
}

// capacityLocked is the dispatcher's effective concurrency bound:
// MaxRunning clamped by the live farm capacity (when configured).
// Caller holds s.mu.
func (s *Service) capacityLocked() int {
	max := s.cfg.MaxRunning
	if s.cfg.Capacity != nil {
		if c := s.cfg.Capacity(); c < max {
			max = c
		}
	}
	if max < 0 {
		max = 0
	}
	return max
}

// updateGaugesLocked refreshes every queue-shaped gauge: totals,
// per-tenant labeled series, the capacity clamp, and the autoscaling
// hint (how many simulation workers the current backlog wants). Caller
// holds s.mu.
func (s *Service) updateGaugesLocked() {
	s.gauge("service.queued").Set(int64(s.sched.len()))
	s.gauge("service.running").Set(int64(s.running))
	s.gauge("service.capacity").Set(int64(s.capacityLocked()))
	s.gauge("service.desired_workers").Set(int64(s.desiredWorkersLocked()))
	for tenant, n := range s.sched.queuedByTenant() {
		s.tenantGauge("service.queued", tenant).Set(int64(n))
	}
	for tenant, n := range s.runningByTenant {
		s.tenantGauge("service.running", tenant).Set(int64(n))
	}
}

// desiredWorkersLocked is the autoscaling hint: enough simulation
// workers to feed every running and queued campaign at its configured
// pool size. Exported as the service.desired_workers gauge and by
// GET /v1/scheduler. Caller holds s.mu.
func (s *Service) desiredWorkersLocked() int {
	per := s.cfg.Workers
	if per <= 0 {
		per = runtime.GOMAXPROCS(0)
	}
	return (s.running + s.sched.len()) * per
}

// Ready is the daemon's readiness check for /readyz. It fails once
// Close began draining, when the admission queue is saturated (new
// submissions would be rejected with 429 anyway), when a locally
// running campaign has lost its lease (this replica is fenced and must
// not be routed to until it unwinds), and when the data root is no
// longer writable (submissions — and lease renewals — would fail).
func (s *Service) Ready() error {
	s.mu.Lock()
	closed, queued := s.closed, s.sched.len()
	var held []*lease.Handle
	var heldIDs []string
	for id, c := range s.campaigns {
		c.mu.Lock()
		if c.lease != nil {
			held = append(held, c.lease)
			heldIDs = append(heldIDs, id)
		}
		c.mu.Unlock()
	}
	s.mu.Unlock()
	var fenced []string
	for i, h := range held {
		// Verify (not Check): the slow probe detects a steal even when
		// the renewal goroutine is wedged — exactly the failure mode a
		// load balancer needs to see.
		if h.Verify() != nil {
			fenced = append(fenced, heldIDs[i])
		}
	}
	if closed {
		return ErrClosed
	}
	if queued >= s.cfg.MaxQueue {
		return fmt.Errorf("%w (capacity %d)", ErrQueueFull, s.cfg.MaxQueue)
	}
	if len(fenced) > 0 {
		sort.Strings(fenced)
		return fmt.Errorf("service: lost lease on running campaign %s", fenced[0])
	}
	probe, err := os.CreateTemp(s.cfg.DataDir, ".readyz-*")
	if err != nil {
		return fmt.Errorf("service: data root not writable: %w", err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return nil
}

// Submit validates and enqueues a campaign, returning its id. The
// submission is durable before Submit returns: a daemon restart — or
// any peer replica on the same data root — re-enqueues it. Campaign
// ids are allocated with an O_EXCL directory create, so concurrent
// submissions across replicas never collide.
func (s *Service) Submit(spec Spec) (string, error) {
	if err := spec.validate(); err != nil {
		return "", err
	}
	// service/admit simulates admission-path failure (store unwritable,
	// overload shedding) after validation but before any state exists.
	if err := failpoint.Eval("service/admit"); err != nil {
		return "", fmt.Errorf("service: admitting campaign: %w", err)
	}
	tenant := spec.tenant()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", ErrClosed
	}
	if s.sched.len() >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.counter("service.rejected").Inc()
		s.tenantCounter("service.rejected", tenant).Inc()
		return "", fmt.Errorf("%w (capacity %d)", ErrQueueFull, s.cfg.MaxQueue)
	}
	var id, dir string
	for {
		id = fmt.Sprintf("c%06d", s.nextID)
		s.nextID++
		dir = filepath.Join(s.cfg.DataDir, id)
		err := os.Mkdir(dir, 0o755)
		if err == nil {
			break
		}
		if !os.IsExist(err) {
			s.mu.Unlock()
			return "", err
		}
		// A peer replica allocated this id concurrently; skip past it.
	}
	c := &campaign{
		dir: dir,
		st: State{
			ID:          id,
			Spec:        spec,
			State:       StateQueued,
			SubmittedAt: time.Now().UTC(),
		},
		done: make(chan struct{}),
	}
	if err := saveState(dir, &c.st); err != nil {
		s.mu.Unlock()
		return "", err
	}
	s.campaigns[id] = c
	s.sched.push(tenant, id)
	s.counter("service.submitted").Inc()
	s.tenantCounter("service.submitted", tenant).Inc()
	s.engineCounter("service.submitted", spec.engineName()).Inc()
	s.updateGaugesLocked()
	s.cond.Signal()
	s.mu.Unlock()
	s.rec.Emit("campaign_submitted", map[string]any{"id": id, "unit": spec.Unit, "tenant": tenant})
	s.log.Info("service: campaign submitted", "campaign", id, "unit", spec.Unit, "tenant", tenant)
	return id, nil
}

// Get returns a snapshot of the campaign's state (reports included once
// done), or nil if the id is unknown. For campaigns this replica is not
// itself running or queueing, the snapshot is refreshed from disk, so
// any replica serves the fleet-wide truth.
func (s *Service) Get(id string) *State {
	s.mu.Lock()
	c := s.campaigns[id]
	inSched := c != nil && s.sched.contains(id)
	s.mu.Unlock()
	if c == nil {
		return nil
	}
	c.mu.Lock()
	local := c.lease != nil || inSched
	live := !isTerminal(c.st.State)
	st := c.st.clone()
	c.mu.Unlock()
	if live && !local {
		if dst, err := loadState(c.dir); err == nil {
			c.mu.Lock()
			if c.lease == nil { // still not ours
				c.st = *dst
				if isTerminal(dst.State) {
					c.finishLocked()
				}
			}
			st = c.st.clone()
			c.mu.Unlock()
		}
	}
	if st.State == StateDone && st.Reports == nil {
		// Terminal reports live on disk, not in memory: load on demand so
		// a restarted daemon serves old campaigns without caching them.
		if reports, err := loadReports(c.dir); err == nil {
			st.Reports = reports
		}
	}
	return st
}

// List returns every campaign's state snapshot (without reports),
// sorted by id. Remote campaigns' states are as of the janitor's last
// scan; Get refreshes an individual campaign on demand.
func (s *Service) List() []*State {
	s.mu.Lock()
	cs := make([]*campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		cs = append(cs, c)
	}
	s.mu.Unlock()
	out := make([]*State, 0, len(cs))
	for _, c := range cs {
		c.mu.Lock()
		out = append(out, c.st.clone())
		c.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Scheduler returns the fair-share scheduler's live snapshot: this
// replica's identity, capacity clamps, the autoscaling hint, and
// per-tenant weights/queue depths/virtual times.
func (s *Service) Scheduler() SchedulerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	running := make(map[string]int, len(s.runningByTenant))
	for k, v := range s.runningByTenant {
		running[k] = v
	}
	info := SchedulerInfo{
		Owner:          s.owner,
		MaxRunning:     s.cfg.MaxRunning,
		Capacity:       s.capacityLocked(),
		Running:        s.running,
		Queued:         s.sched.len(),
		DesiredWorkers: s.desiredWorkersLocked(),
		LeaseTTLMillis: s.cfg.LeaseTTL.Milliseconds(),
		Tenants:        s.sched.stats(running, s.completedByTenant),
	}
	if s.cfg.FarmHealth != nil {
		info.Farm = s.cfg.FarmHealth()
	}
	return info
}

// SchedulerInfo is GET /v1/scheduler's response body.
type SchedulerInfo struct {
	Owner          string       `json:"owner"`
	MaxRunning     int          `json:"max_running"`
	Capacity       int          `json:"capacity"`
	Running        int          `json:"running"`
	Queued         int          `json:"queued"`
	DesiredWorkers int          `json:"desired_workers"`
	LeaseTTLMillis int64        `json:"lease_ttl_ms"`
	Tenants        []TenantStat `json:"tenants"`
	// Farm is the per-worker health/quarantine state of the farm fleet
	// (omitted when the replica runs without a farm dispatcher).
	Farm []farm.WorkerHealth `json:"farm,omitempty"`
}

// Cancel stops a campaign: a queued one is withdrawn (arbitrated by a
// short-lived lease claim, so a peer replica cannot concurrently start
// it), a locally running one is interrupted (its journal keeps the
// completed prefix). A campaign running on a peer replica is left
// untouched — the returned state shows where it runs. Terminal
// campaigns are left untouched. Returns the post-cancel state, or nil
// for an unknown id.
func (s *Service) Cancel(id string) *State {
	s.mu.Lock()
	c := s.campaigns[id]
	if c == nil {
		s.mu.Unlock()
		return nil
	}
	removed := s.sched.remove(id)
	if removed {
		s.updateGaugesLocked()
	}
	s.mu.Unlock()

	c.mu.Lock()
	switch {
	case isTerminal(c.st.State):
		// nothing to do
	case c.cancel != nil:
		c.canceledByUser = true
		c.cancel()
	case removed:
		// Queued here: claim the lease so no peer can start it while we
		// write the terminal state.
		c.mu.Unlock()
		h, err := s.leases.Acquire(c.dir, id)
		c.mu.Lock()
		if err == nil {
			if dst, lerr := loadState(c.dir); lerr == nil && isTerminal(dst.State) {
				c.st = *dst // a peer finished it first
			} else {
				c.st.State = StateCanceled
				c.st.FinishedAt = now()
				saveState(c.dir, &c.st)
				s.counter("service.canceled").Inc()
				s.tenantCounter("service.canceled", c.st.Spec.tenant()).Inc()
			}
			c.finishLocked()
			h.Release()
		}
	case c.canceledByUser:
		// claim in flight; the runner observes the flag
	default:
		// Remote (or mid-claim by a peer): not cancelable from this
		// replica.
		s.log.Info("service: cancel ignored for campaign owned elsewhere", "campaign", id)
	}
	st := c.st.clone()
	c.mu.Unlock()
	return st
}

// Wait blocks until the campaign reaches a terminal state, the context
// is done, or the id is unknown (returns immediately). For campaigns
// running on peer replicas, termination is observed by the janitor's
// next scan.
func (s *Service) Wait(ctx context.Context, id string) {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return
	}
	select {
	case <-c.done:
	case <-ctx.Done():
	}
}

// EventsPath returns the campaign's JSONL progress file path (the file
// appears when the campaign starts running), or "" for an unknown id.
// The path is on the shared data root, so any replica can stream any
// campaign's events.
func (s *Service) EventsPath(id string) string {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return ""
	}
	return filepath.Join(c.dir, "events.jsonl")
}

// Done reports whether the campaign has reached a terminal state (also
// true for unknown ids, so event streams terminate).
func (s *Service) Done(id string) bool {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return true
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// RetryAfter is the backoff hint for ErrQueueFull rejections.
func (s *Service) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// Close drains the service: no new submissions, running campaigns are
// interrupted (their journals checkpoint the completed prefix, their
// state stays "running" on disk, and their leases are released so the
// next daemon — or a live peer — adopts them immediately), and queued
// campaigns stay queued. Blocks until every campaign goroutine has
// exited.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.log.Info("service: draining")
	s.baseCancel()
	s.wg.Wait()
	s.know.Close()
	s.leases.Close()
	s.log.Info("service: drained")
}

// dispatch pops campaigns in weighted fair-share order whenever a
// running slot is free within the capacity clamp, claims each one's
// lease, and spawns its runner goroutine. A campaign whose lease a
// peer holds is handed over (tracked as remote) without burning the
// slot.
func (s *Service) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && (s.sched.len() == 0 || s.running >= s.capacityLocked()) {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		id, tenant, _ := s.sched.pop()
		c := s.campaigns[id]
		s.running++
		s.runningByTenant[tenant]++
		s.updateGaugesLocked()
		s.mu.Unlock()

		if !s.claimAndRun(c, id, tenant) {
			s.mu.Lock()
			s.running--
			s.runningByTenant[tenant]--
			s.updateGaugesLocked()
			s.cond.Signal()
			s.mu.Unlock()
		}
	}
}

// claimAndRun acquires the campaign's lease and launches its runner,
// reporting whether the running slot was consumed.
func (s *Service) claimAndRun(c *campaign, id, tenant string) bool {
	h, err := s.leases.Acquire(c.dir, id)
	if err != nil {
		// A peer owns it (or the data root failed): hand it over and let
		// the janitor keep watching it.
		c.mu.Lock()
		if !isTerminal(c.st.State) {
			c.remote = true
		}
		c.mu.Unlock()
		s.counter("service.lease_conflicts").Inc()
		s.log.Debug("service: campaign claimed by peer", "campaign", id, "err", err)
		return false
	}
	// Re-read the authoritative state: a peer may have finished or
	// canceled the campaign while it sat in our queue.
	if st, err := loadState(c.dir); err == nil && isTerminal(st.State) {
		c.mu.Lock()
		c.st = *st
		c.finishLocked()
		c.mu.Unlock()
		h.Release()
		return false
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	h.OnLost(cancel) // lease loss interrupts the flow at its next checkpoint

	c.mu.Lock()
	c.st.State = StateRunning
	c.st.StartedAt = now()
	c.st.Owner = s.owner
	c.st.Epoch = h.Epoch()
	c.lease = h
	c.cancel = cancel
	c.remote = false
	if c.canceledByUser {
		cancel() // canceled while we were claiming
	}
	saveState(c.dir, &c.st)
	c.mu.Unlock()
	if h.Stolen() {
		s.counter("service.adopted").Inc()
		s.log.Info("service: campaign adopted from expired owner",
			"campaign", id, "epoch", h.Epoch())
	}
	s.wg.Add(1)
	go s.runCampaign(c, tenant, h, ctx, cancel)
	return true
}

// runCampaign executes one campaign to a terminal state (or to an
// interruption that the next owner resumes). Every terminal write is
// fenced by the lease epoch: if ownership was lost mid-run, nothing is
// written and the campaign is left to its new owner.
func (s *Service) runCampaign(c *campaign, tenant string, h *lease.Handle, ctx context.Context, cancel context.CancelFunc) {
	defer s.wg.Done()
	defer cancel()
	id := c.st.ID
	span := s.rec.Span("campaign", id)
	s.rec.Emit("campaign_start", map[string]any{
		"id": id, "unit": c.st.Spec.Unit, "tenant": tenant, "owner": s.owner, "epoch": h.Epoch()})
	s.log.Info("service: campaign started",
		"campaign", id, "unit", c.st.Spec.Unit, "tenant", tenant, "epoch", h.Epoch())

	reports, err := s.executeFlow(c, h, ctx)

	c.mu.Lock()
	c.cancel = nil
	c.lease = nil
	fenced := errors.Is(err, lease.ErrFenced) || (err != nil && h.Check() != nil)
	interrupted := errors.Is(err, core.ErrInterrupted)
	byUser := c.canceledByUser
	var state string
	switch {
	case fenced:
		// A peer owns the campaign now; its journal has everything this
		// run paid for. Nothing on disk is ours to write. The done
		// channel stays open until the janitor observes the new owner's
		// terminal state.
		c.remote = true
		state = "fenced"
		s.counter("service.fenced").Inc()
	case err == nil:
		if verr := saveReportsOwned(c.dir, reports, h); verr != nil {
			if errors.Is(verr, lease.ErrFenced) {
				c.remote = true
				state = "fenced"
				s.counter("service.fenced").Inc()
				break
			}
			c.st.State = StateFailed
			c.st.Error = verr.Error()
			c.st.FinishedAt = now()
			saveStateOwned(c.dir, &c.st, h)
			c.finishLocked()
			state = c.st.State
			s.counter("service.failed").Inc()
			break
		}
		s.feedKnowledge(c.st.ID, c.st.Spec, reports, h)
		c.st.State = StateDone
		c.st.FinishedAt = now()
		c.st.Reports = reports
		saveStateOwned(c.dir, &c.st, h)
		c.finishLocked()
		state = c.st.State
		s.counter("service.completed").Inc()
		s.tenantCounter("service.completed", tenant).Inc()
		s.engineCounter("service.completed", c.st.Spec.engineName()).Inc()
	case interrupted && byUser:
		c.st.State = StateCanceled
		c.st.FinishedAt = now()
		saveStateOwned(c.dir, &c.st, h)
		c.finishLocked()
		state = c.st.State
		s.counter("service.canceled").Inc()
		s.tenantCounter("service.canceled", tenant).Inc()
	case interrupted:
		// Daemon drain: the journal holds the completed prefix and the
		// on-disk state stays "running"; releasing the lease below lets
		// any peer adopt it immediately. The in-memory campaign is
		// finished for this process's lifetime.
		c.finishLocked()
		state = c.st.State
	default:
		c.st.State = StateFailed
		c.st.Error = err.Error()
		c.st.FinishedAt = now()
		saveStateOwned(c.dir, &c.st, h)
		c.finishLocked()
		state = c.st.State
		s.counter("service.failed").Inc()
		s.tenantCounter("service.failed", tenant).Inc()
		s.engineCounter("service.failed", c.st.Spec.engineName()).Inc()
	}
	c.mu.Unlock()
	h.Release()

	s.rec.Emit("campaign_end", map[string]any{"id": id, "state": state})
	switch {
	case state == "fenced":
		s.log.Warn("service: campaign fenced (adopted by a peer)", "campaign", id, "epoch", h.Epoch())
	case err != nil && state == StateFailed:
		s.log.Warn("service: campaign failed", "campaign", id, "err", err)
	default:
		s.log.Info("service: campaign ended", "campaign", id, "state", state)
	}
	span.End()

	s.mu.Lock()
	s.running--
	s.runningByTenant[tenant]--
	if state == StateDone {
		s.completedByTenant[tenant]++
	}
	s.updateGaugesLocked()
	s.cond.Signal()
	s.mu.Unlock()
}

// executeFlow builds the campaign's journaled flow — with the lease's
// fencing check wired into every journal append — and runs the
// requested target, returning the per-round reports.
func (s *Service) executeFlow(c *campaign, h *lease.Handle, ctx context.Context) ([]*ReportJSON, error) {
	if err := h.Check(); err != nil {
		return nil, err
	}
	spec := c.st.Spec
	unit, err := duv.New(spec.Unit)
	if err != nil {
		return nil, err
	}
	events, err := os.OpenFile(filepath.Join(c.dir, "events.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	defer events.Close()

	// Per-campaign recorder: metrics and trace aggregate into the
	// service's sinks, progress streams into the campaign's own file,
	// and Campaign stamps the id onto every chunk span and outbound
	// farm frame so fleet-wide traces correlate back to this campaign.
	rec := &obs.Recorder{Progress: obs.NewProgress(events), Campaign: c.st.ID}
	if s.rec != nil {
		rec.Metrics = s.rec.Metrics
		rec.Trace = s.rec.Trace
	}

	cfg := spec.coreConfig(s.cfg.Workers)
	if spec.useKnowledge() {
		kp, err := s.campaignKnowledge(c, h)
		if err != nil {
			return nil, err
		}
		cfg.Prior = kp.Prior
		cfg.TACPrior = kp.TAC
	}
	cfg.Obs = rec
	cfg.Log = s.log.With("campaign", c.st.ID)
	cfg.Runner = s.cfg.Runner
	cfg.RunnerLanes = s.cfg.RunnerLanes
	cfg.Journal = filepath.Join(c.dir, "flow.journal")
	flow, err := core.New(unit, cfg)
	if err != nil {
		return nil, err
	}
	defer flow.Close()
	// Every journal append from here on carries the fencing epoch: a
	// stale owner's appends are rejected before any byte hits the file.
	if cur := flow.Journal(); cur != nil {
		cur.Writer().SetFence(h.Check)
	}
	if s.cfg.flowArmed != nil {
		s.cfg.flowArmed(c.st.ID, flow)
	}

	var reports []*core.Report
	switch {
	case spec.Family != "":
		reports, err = flow.RunFamilyRefined(ctx, spec.Family, spec.decay(), spec.rounds())
	case spec.Cross != "":
		var r *core.Report
		r, err = flow.RunCross(ctx, spec.Cross)
		if r != nil {
			reports = append(reports, r)
		}
	default:
		var r *core.Report
		r, err = flow.RunEvents(ctx, spec.Events, spec.minSim())
		if r != nil {
			reports = append(reports, r)
		}
	}
	if err != nil {
		return nil, err
	}
	out := make([]*ReportJSON, len(reports))
	for i, r := range reports {
		out[i] = NewReportJSON(r, unit.Model())
	}
	return out, nil
}

func (s *Service) counter(name string) *obs.Counter { return s.rec.Counter(name) }
func (s *Service) gauge(name string) *obs.Gauge     { return s.rec.Gauge(name) }

// tenantCounter and tenantGauge are the per-tenant labeled series
// (service.submitted{tenant="x"}, ...). Tenant names are validated at
// submission, so label cardinality is caller-bounded.
func (s *Service) tenantCounter(name, tenant string) *obs.Counter {
	if s.rec == nil {
		return nil
	}
	return s.rec.Metrics.CounterWith(name, obs.Labels("tenant", tenant))
}

func (s *Service) tenantGauge(name, tenant string) *obs.Gauge {
	if s.rec == nil {
		return nil
	}
	return s.rec.Metrics.GaugeWith(name, obs.Labels("tenant", tenant))
}

// engineCounter is the per-engine labeled series
// (service.submitted{engine="ranker"}, ...). Engine names come from the
// registry, so label cardinality is bounded by opt.EngineNames().
func (s *Service) engineCounter(name, engine string) *obs.Counter {
	if s.rec == nil {
		return nil
	}
	return s.rec.Metrics.CounterWith(name, obs.Labels("engine", engine))
}

// Knowledge returns the merged fleet-wide knowledge base (the
// GET /v1/knowledge body).
func (s *Service) Knowledge() ([]knowledge.Entry, error) { return s.know.All() }

// maxPriorPoints bounds how many past harvests seed a warm campaign's
// engine — the best-scoring ones win.
const maxPriorPoints = 32

// knowledgeSnapshot freezes the priors a campaign consumed at first
// start. Priors are result-relevant (journal-hashed), so a resumed
// campaign must read byte-identical ones even after the knowledge base
// has grown — hence the per-campaign file, not a live query.
type knowledgeSnapshot struct {
	Prior []opt.PriorPoint   `json:"prior,omitempty"`
	TAC   map[string]float64 `json:"tac,omitempty"`
}

// campaignKnowledge loads the campaign's frozen knowledge snapshot, or
// computes it from the store on first start and persists it (fenced —
// only the lease owner may write into the campaign directory).
func (s *Service) campaignKnowledge(c *campaign, h *lease.Handle) (*knowledgeSnapshot, error) {
	path := filepath.Join(c.dir, "knowledge.json")
	if data, err := os.ReadFile(path); err == nil {
		var kp knowledgeSnapshot
		if err := json.Unmarshal(data, &kp); err != nil {
			return nil, fmt.Errorf("service: %s: %w", path, err)
		}
		return &kp, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	entries, err := s.know.All()
	if err != nil {
		return nil, err
	}
	unit := c.st.Spec.Unit
	kp := &knowledgeSnapshot{
		Prior: knowledge.Priors(entries, unit, maxPriorPoints),
		TAC:   knowledge.TACBoosts(entries, unit, knowledge.DefaultDamp),
	}
	if err := h.Verify(); err != nil {
		return nil, err
	}
	if err := atomicfile.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(kp)
	}); err != nil {
		return nil, err
	}
	return kp, nil
}

// feedKnowledge appends the campaign's harvests to the knowledge base.
// Fenced like every terminal write: a stale owner must not feed — its
// adopter will, and (campaign, round) keying deduplicates a replayed
// feed anyway.
func (s *Service) feedKnowledge(id string, spec Spec, reports []*ReportJSON, h *lease.Handle) {
	entries := knowledgeEntries(id, spec, reports)
	if len(entries) == 0 {
		return
	}
	if h.Verify() != nil {
		return
	}
	if err := s.know.Add(entries); err != nil {
		s.log.Warn("service: knowledge feed failed", "campaign", id, "err", err)
		return
	}
	s.log.Debug("service: knowledge fed", "campaign", id, "entries", len(entries))
}

// knowledgeEntries projects finished reports into knowledge entries:
// one per round, scored by the harvest's standalone evaluation (the
// "best" phase) as mean per-target-event hits per simulation.
func knowledgeEntries(id string, spec Spec, reports []*ReportJSON) []knowledge.Entry {
	var entries []knowledge.Entry
	for round, r := range reports {
		var best *PhaseJSON
		for i := range r.Phases {
			if r.Phases[i].Name == "best" {
				best = &r.Phases[i]
			}
		}
		if best == nil || best.Sims == 0 || len(best.TargetHits) == 0 || len(r.BestWeights) == 0 {
			continue
		}
		var hits uint64
		for _, n := range best.TargetHits {
			hits += n
		}
		sources := make([]string, 0, len(r.ChosenTemplates))
		for _, ts := range r.ChosenTemplates {
			sources = append(sources, ts.Name)
		}
		entries = append(entries, knowledge.Entry{
			Campaign: id,
			Round:    round,
			Unit:     spec.Unit,
			Target:   spec.targetDesc(),
			Template: fmt.Sprintf("%s_r%d_best", id, round),
			Weights:  r.BestWeights,
			Score:    float64(hits) / (float64(best.Sims) * float64(len(best.TargetHits))),
			Sims:     best.Sims,
			Sources:  sources,
		})
	}
	return entries
}

func now() *time.Time {
	t := time.Now().UTC()
	return &t
}

// idNumber parses the numeric part of a campaign id ("c000042" → 42);
// foreign directory names yield 0 and never advance the allocator.
func idNumber(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "c%d", &n); err != nil {
		return 0
	}
	return n
}

const stateFile = "campaign.json"

func loadState(dir string) (*State, error) {
	data, err := os.ReadFile(filepath.Join(dir, stateFile))
	if err != nil {
		return nil, err
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// saveState persists the campaign's lifecycle record crash-safely.
// Reports are persisted separately (report.json); the state file stays
// small so every transition is one cheap atomic rename.
func saveState(dir string, st *State) error {
	slim := st.clone()
	slim.Reports = nil
	return atomicfile.WriteFile(filepath.Join(dir, stateFile), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(slim)
	})
}

// saveStateOwned is saveState behind the lease fence: the write is
// refused once the handle's epoch is superseded, so a stale owner can
// never clobber the adopter's lifecycle record.
func saveStateOwned(dir string, st *State, h *lease.Handle) error {
	if err := h.Verify(); err != nil {
		return err
	}
	return saveState(dir, st)
}

func loadReports(dir string) ([]*ReportJSON, error) {
	data, err := os.ReadFile(filepath.Join(dir, "report.json"))
	if err != nil {
		return nil, err
	}
	var reports []*ReportJSON
	if err := json.Unmarshal(data, &reports); err != nil {
		return nil, err
	}
	return reports, nil
}

func saveReports(dir string, reports []*ReportJSON) error {
	return atomicfile.WriteFile(filepath.Join(dir, "report.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	})
}

// saveReportsOwned is saveReports behind the lease fence.
func saveReportsOwned(dir string, reports []*ReportJSON, h *lease.Handle) error {
	if err := h.Verify(); err != nil {
		return err
	}
	return saveReports(dir, reports)
}
