package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/duv/iounit"
)

// tinySpec is the fast iounit campaign every service test runs: big
// enough to exercise all flow phases, small enough to finish in well
// under a second.
func tinySpec() Spec {
	return Spec{
		Unit:   iounit.UnitName,
		Family: iounit.FamilyName,
		Decay:  0.4,
		Seed:   21,
		Config: SpecConfig{
			CorpusSims:      40,
			TopTemplates:    2,
			Subranges:       2,
			SampleTemplates: 6,
			SampleSims:      8,
			OptIterations:   3,
			OptDirections:   3,
			OptSims:         10,
			BestSims:        60,
			Workers:         3,
		},
	}
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Owner == "" {
		cfg.Owner = "replica-test" // fixed identity keeps goldens deterministic
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func waitDone(t *testing.T, svc *Service, id string) *State {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	svc.Wait(ctx, id)
	st := svc.Get(id)
	if st == nil {
		t.Fatalf("campaign %s vanished", id)
	}
	return st
}

func TestSubmitRunGet(t *testing.T) {
	svc := newService(t, Config{})
	id, err := svc.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, svc, id)
	if st.State != StateDone {
		t.Fatalf("state = %q (error %q), want done", st.State, st.Error)
	}
	if len(st.Reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(st.Reports))
	}
	r := st.Reports[0]
	if r.Unit != iounit.UnitName || r.TotalSims == 0 || r.BestTemplate == "" {
		t.Fatalf("report not populated: %+v", r)
	}
	if len(r.Phases) == 0 || len(r.TargetEvents) == 0 {
		t.Fatalf("report missing phases/targets: %+v", r)
	}
	for _, p := range r.Phases {
		if len(p.TargetHits) != len(r.TargetEvents) {
			t.Fatalf("phase %s: %d hit columns for %d targets", p.Name, len(p.TargetHits), len(r.TargetEvents))
		}
	}
	// The final reports and the campaign's progress stream are on disk.
	if _, err := os.Stat(filepath.Join(svc.cfg.DataDir, id, "report.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(svc.cfg.DataDir, id, "events.jsonl")); err != nil {
		t.Fatal(err)
	}
}

// TestSpecValidation: malformed submissions are rejected before they
// consume ids or disk.
func TestSpecValidation(t *testing.T) {
	svc := newService(t, Config{})
	bad := []Spec{
		{}, // no unit
		{Unit: "no_such_unit", Family: "x"},
		{Unit: iounit.UnitName}, // no target
		{Unit: iounit.UnitName, Family: "a", Cross: "b"}, // two targets
	}
	for i, spec := range bad {
		if _, err := svc.Submit(spec); err == nil {
			t.Errorf("spec %d accepted, want rejection", i)
		}
	}
	if got := len(svc.List()); got != 0 {
		t.Fatalf("rejected submissions left %d campaigns behind", got)
	}
}

// gatedService builds a service whose campaigns block at flow-armed
// time until the returned release func is called — a deterministic way
// to hold a campaign in the running state.
func gatedService(t *testing.T, cfg Config) (*Service, func()) {
	t.Helper()
	gate := make(chan struct{})
	var once sync.Once
	cfg.flowArmed = func(string, *core.Flow) { <-gate }
	svc := newService(t, cfg)
	return svc, func() { once.Do(func() { close(gate) }) }
}

// TestQueueSaturation: with one slot running and a one-deep queue, the
// third submission is rejected with ErrQueueFull — and accepted
// campaigns still all complete once the gate opens.
func TestQueueSaturation(t *testing.T) {
	svc, release := gatedService(t, Config{MaxRunning: 1, MaxQueue: 1})
	defer release()

	first, err := svc.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first campaign occupies the running slot, so the
	// second sits alone in the queue.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Get(first).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first campaign never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	second, err := svc.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(tinySpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission err = %v, want ErrQueueFull", err)
	}

	release()
	for _, id := range []string{first, second} {
		if st := waitDone(t, svc, id); st.State != StateDone {
			t.Fatalf("campaign %s state = %q (error %q), want done", id, st.State, st.Error)
		}
	}
}

// TestCancelQueued and TestCancelRunning cover both halves of DELETE.
func TestCancelQueued(t *testing.T) {
	svc, release := gatedService(t, Config{MaxRunning: 1, MaxQueue: 4})
	defer release()
	first, err := svc.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := svc.Cancel(second); st.State != StateCanceled {
		t.Fatalf("canceled queued campaign state = %q", st.State)
	}
	release()
	if st := waitDone(t, svc, first); st.State != StateDone {
		t.Fatalf("first campaign state = %q", st.State)
	}
	if st := svc.Get(second); st.State != StateCanceled {
		t.Fatalf("second campaign state = %q after run, want canceled", st.State)
	}
}

func TestCancelRunning(t *testing.T) {
	svc, release := gatedService(t, Config{})
	defer release()
	id, err := svc.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Get(id).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("campaign never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Cancel while the flow is gated: the run enters with an already
	// canceled context and stops at its first checkpoint.
	svc.Cancel(id)
	release()
	if st := waitDone(t, svc, id); st.State != StateCanceled {
		t.Fatalf("state = %q, want canceled", st.State)
	}
}

// TestRestartResume is the service's headline property: a daemon
// stopped mid-campaign (drain, not failure) leaves the campaign
// "running" on disk; a new service over the same data directory
// re-enqueues it, the flow journal replays the completed prefix, and
// the finished reports are bit-identical to an uninterrupted run —
// down to the persisted report.json bytes.
func TestRestartResume(t *testing.T) {
	// Uninterrupted baseline.
	baseSvc := newService(t, Config{})
	baseID, err := baseSvc.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, baseSvc, baseID); st.State != StateDone {
		t.Fatalf("baseline state = %q (error %q)", st.State, st.Error)
	}
	baseBytes, err := os.ReadFile(filepath.Join(baseSvc.cfg.DataDir, baseID, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	baseSvc.Close()

	// Interrupted run: the campaign's flow is gated until the service
	// starts draining, so the drain deterministically catches it in the
	// running state (every mid-run interruption point is swept by
	// TestSpecFlowKillSweep; this test pins the service mechanics).
	dataDir := t.TempDir()
	var svcp *Service
	svc, err := New(Config{DataDir: dataDir, flowArmed: func(string, *core.Flow) {
		<-svcp.baseCtx.Done()
	}})
	if err != nil {
		t.Fatal(err)
	}
	svcp = svc
	id, err := svc.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Get(id).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("campaign never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	svc.Close() // drain: the campaign checkpoints and stays "running" on disk

	st, err := loadState(filepath.Join(dataDir, id))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning {
		t.Fatalf("on-disk state after drain = %q, want running", st.State)
	}

	// Restart: the new service resumes the campaign automatically.
	restarted := newService(t, Config{DataDir: dataDir})
	if got := waitDone(t, restarted, id); got.State != StateDone {
		t.Fatalf("resumed state = %q (error %q), want done", got.State, got.Error)
	}
	resumedBytes, err := os.ReadFile(filepath.Join(dataDir, id, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resumedBytes) != string(baseBytes) {
		t.Fatal("resumed campaign's report.json differs from the uninterrupted baseline")
	}

	// The in-memory reports match too.
	baseReports, err := loadReports(filepath.Join(baseSvc.cfg.DataDir, baseID))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restarted.Get(id).Reports, baseReports) {
		t.Fatal("resumed reports differ from baseline reports")
	}
}

// TestSpecFlowKillSweep reuses the chaos harness against the exact
// flow a service campaign runs (spec → coreConfig → journaled
// core.New), proving a campaign killed at ANY journal append resumes
// bit-identically — the invariant TestRestartResume samples at one
// point, swept across every record.
func TestSpecFlowKillSweep(t *testing.T) {
	spec := tinySpec()
	campaign := chaos.Campaign{
		NewFlow: func(journal string) (*core.Flow, error) {
			cfg := spec.coreConfig(0)
			cfg.Journal = journal
			return core.New(iounit.New(), cfg)
		},
		Run: func(f *core.Flow) (any, error) {
			return f.RunFamilyRefined(context.Background(), spec.Family, spec.decay(), spec.rounds())
		},
	}
	trials, err := campaign.Sweep(t.TempDir(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if trials < 10 {
		t.Fatalf("sweep ran only %d trials", trials)
	}
}

// TestResumeValidatesSpec: restarting with a data directory whose
// journal no longer matches the campaign spec must fail that campaign,
// not silently produce different results. (Guarded by the flow
// journal's config hash.)
func TestFailedCampaignReported(t *testing.T) {
	svc := newService(t, Config{})
	spec := tinySpec()
	spec.Family = "" // switch to an invalid events target
	spec.Events = []string{"no_such_event"}
	id, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, svc, id)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("state = %q error = %q, want failed with message", st.State, st.Error)
	}
}
