package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/duv"
	"repro/internal/opt"
)

// Spec is a campaign submission: which unit to drive, what coverage to
// chase, and which flow knobs to override. Exactly one of Family, Cross
// or Events selects the target mode.
type Spec struct {
	// Unit names a built-in unit (duv.Names()).
	Unit string `json:"unit"`

	// Family targets a buffer-utilization event family (the paper's
	// Figs. 3/4 experiments). Decay weights the approximated target
	// (default 1.0 = plain family sum); Rounds is the number of
	// refinement rounds (default 1).
	Family string  `json:"family,omitempty"`
	Decay  float64 `json:"decay,omitempty"`
	Rounds int     `json:"rounds,omitempty"`

	// Cross targets a cross-product coverage model (the paper's IFU
	// experiment).
	Cross string `json:"cross,omitempty"`

	// Events targets an explicit event list; MinSim is the minimum
	// name-similarity for approximated-target neighbors (default 0.5).
	Events []string `json:"events,omitempty"`
	MinSim float64  `json:"min_sim,omitempty"`

	// Seed makes the campaign reproducible (default 1).
	Seed uint64 `json:"seed,omitempty"`

	// Tenant attributes the campaign for weighted fair-share scheduling
	// and per-tenant metrics (default "default"). Weights come from the
	// daemon's -tenant-weights configuration; unknown tenants weigh 1.
	Tenant string `json:"tenant,omitempty"`

	// Engine selects the optimization engine (nil: the paper's default,
	// implicit filtering, exactly as before the field existed).
	Engine *EngineSpec `json:"engine,omitempty"`

	// Config overrides individual flow budgets; zero fields keep the
	// flow's defaults.
	Config SpecConfig `json:"config,omitempty"`
}

// EngineSpec selects and parameterizes the campaign's optimization
// engine. Name must be registered (opt.EngineNames()); Params is the
// engine's own knob object, validated strictly at admission so a typo
// fails the submission with the full key list instead of being silently
// ignored mid-campaign.
type EngineSpec struct {
	Name   string          `json:"name,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`

	// Knowledge opts the campaign into the cross-campaign flywheel: at
	// start it reads the knowledge base — harvested (weights, score)
	// pairs become the engine's warm-start prior, damped per-template
	// scores boost the coarse-grained TAC ranking — and the consumed
	// snapshot is frozen in the campaign directory so a resumed campaign
	// sees byte-identical priors.
	Knowledge bool `json:"knowledge,omitempty"`
}

// SpecConfig is the subset of core.Config a campaign may override,
// with JSON names matching the ascdg flag vocabulary.
type SpecConfig struct {
	CorpusSims      int `json:"corpus_sims,omitempty"`
	TopTemplates    int `json:"top_templates,omitempty"`
	Subranges       int `json:"subranges,omitempty"`
	SampleTemplates int `json:"samples,omitempty"`
	SampleSims      int `json:"sample_sims,omitempty"`
	OptIterations   int `json:"iterations,omitempty"`
	OptDirections   int `json:"directions,omitempty"`
	OptSims         int `json:"opt_sims,omitempty"`
	BestSims        int `json:"best_sims,omitempty"`
	Workers         int `json:"workers,omitempty"`
}

func (s Spec) decay() float64 {
	if s.Decay <= 0 || s.Decay > 1 {
		return 1.0
	}
	return s.Decay
}

func (s Spec) rounds() int {
	if s.Rounds <= 0 {
		return 1
	}
	return s.Rounds
}

func (s Spec) minSim() float64 {
	if s.MinSim <= 0 {
		return 0.5
	}
	return s.MinSim
}

func (s Spec) tenant() string {
	if s.Tenant == "" {
		return "default"
	}
	return s.Tenant
}

func (s Spec) seed() uint64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// engineName is the campaign's resolved engine — the metrics label and
// the name replayed journals are verified against.
func (s Spec) engineName() string {
	if s.Engine == nil || s.Engine.Name == "" {
		return opt.DefaultEngine
	}
	return s.Engine.Name
}

func (s Spec) useKnowledge() bool {
	return s.Engine != nil && s.Engine.Knowledge
}

// targetDesc renders the campaign's target mode for knowledge entries.
func (s Spec) targetDesc() string {
	switch {
	case s.Family != "":
		return "family:" + s.Family
	case s.Cross != "":
		return "cross:" + s.Cross
	default:
		return "events:" + strings.Join(s.Events, ",")
	}
}

// validate rejects malformed submissions before they consume a
// campaign id. Target names (family, cross, event names) are validated
// by the flow itself at run time — the unit must exist, though, so a
// typo fails fast at submission.
func (s Spec) validate() error {
	if s.Unit == "" {
		return errors.New("service: spec: unit is required")
	}
	if _, err := duv.New(s.Unit); err != nil {
		return fmt.Errorf("service: spec: %w", err)
	}
	modes := 0
	if s.Family != "" {
		modes++
	}
	if s.Cross != "" {
		modes++
	}
	if len(s.Events) > 0 {
		modes++
	}
	if modes != 1 {
		return errors.New("service: spec: exactly one of family, cross or events is required")
	}
	if len(s.Tenant) > 64 {
		return errors.New("service: spec: tenant name too long (max 64)")
	}
	for _, r := range s.Tenant {
		if !(r == '-' || r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return fmt.Errorf("service: spec: invalid tenant name %q", s.Tenant)
		}
	}
	if s.Engine != nil {
		if err := opt.Validate(s.Engine.Name, s.Engine.Params); err != nil {
			return fmt.Errorf("service: spec: %w", err)
		}
	}
	return nil
}

// coreConfig expands the spec into the flow config it runs under.
func (s Spec) coreConfig(defaultWorkers int) core.Config {
	workers := s.Config.Workers
	if workers <= 0 {
		workers = defaultWorkers
	}
	cfg := core.Config{
		Seed:                  s.seed(),
		Workers:               workers,
		CorpusSimsPerTemplate: s.Config.CorpusSims,
		TopTemplates:          s.Config.TopTemplates,
		Subranges:             s.Config.Subranges,
		SampleTemplates:       s.Config.SampleTemplates,
		SampleSims:            s.Config.SampleSims,
		OptIterations:         s.Config.OptIterations,
		OptDirections:         s.Config.OptDirections,
		OptSims:               s.Config.OptSims,
		BestSims:              s.Config.BestSims,
	}
	if s.Engine != nil {
		cfg.Engine = s.Engine.Name
		cfg.EngineParams = s.Engine.Params
	}
	return cfg
}

// State is a campaign's externally visible record: the submission, its
// lifecycle position, and (once done) its reports. It is both the
// campaign.json schema and the GET /v1/campaigns/{id} response body.
type State struct {
	ID          string        `json:"id"`
	Spec        Spec          `json:"spec"`
	State       string        `json:"state"`
	Error       string        `json:"error,omitempty"`
	SubmittedAt time.Time     `json:"submitted_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	Reports     []*ReportJSON `json:"reports,omitempty"`

	// Owner and Epoch identify the replica that last ran (or is
	// running) the campaign and its lease fencing epoch — set at
	// dispatch, kept through terminal states so an adopted campaign
	// records who finished it.
	Owner string `json:"owner,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

func (st *State) clone() *State {
	dup := *st
	return &dup
}
