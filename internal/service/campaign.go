package service

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/duv"
)

// Spec is a campaign submission: which unit to drive, what coverage to
// chase, and which flow knobs to override. Exactly one of Family, Cross
// or Events selects the target mode.
type Spec struct {
	// Unit names a built-in unit (duv.Names()).
	Unit string `json:"unit"`

	// Family targets a buffer-utilization event family (the paper's
	// Figs. 3/4 experiments). Decay weights the approximated target
	// (default 1.0 = plain family sum); Rounds is the number of
	// refinement rounds (default 1).
	Family string  `json:"family,omitempty"`
	Decay  float64 `json:"decay,omitempty"`
	Rounds int     `json:"rounds,omitempty"`

	// Cross targets a cross-product coverage model (the paper's IFU
	// experiment).
	Cross string `json:"cross,omitempty"`

	// Events targets an explicit event list; MinSim is the minimum
	// name-similarity for approximated-target neighbors (default 0.5).
	Events []string `json:"events,omitempty"`
	MinSim float64  `json:"min_sim,omitempty"`

	// Seed makes the campaign reproducible (default 1).
	Seed uint64 `json:"seed,omitempty"`

	// Tenant attributes the campaign for weighted fair-share scheduling
	// and per-tenant metrics (default "default"). Weights come from the
	// daemon's -tenant-weights configuration; unknown tenants weigh 1.
	Tenant string `json:"tenant,omitempty"`

	// Config overrides individual flow budgets; zero fields keep the
	// flow's defaults.
	Config SpecConfig `json:"config,omitempty"`
}

// SpecConfig is the subset of core.Config a campaign may override,
// with JSON names matching the ascdg flag vocabulary.
type SpecConfig struct {
	CorpusSims      int `json:"corpus_sims,omitempty"`
	TopTemplates    int `json:"top_templates,omitempty"`
	Subranges       int `json:"subranges,omitempty"`
	SampleTemplates int `json:"samples,omitempty"`
	SampleSims      int `json:"sample_sims,omitempty"`
	OptIterations   int `json:"iterations,omitempty"`
	OptDirections   int `json:"directions,omitempty"`
	OptSims         int `json:"opt_sims,omitempty"`
	BestSims        int `json:"best_sims,omitempty"`
	Workers         int `json:"workers,omitempty"`
}

func (s Spec) decay() float64 {
	if s.Decay <= 0 || s.Decay > 1 {
		return 1.0
	}
	return s.Decay
}

func (s Spec) rounds() int {
	if s.Rounds <= 0 {
		return 1
	}
	return s.Rounds
}

func (s Spec) minSim() float64 {
	if s.MinSim <= 0 {
		return 0.5
	}
	return s.MinSim
}

func (s Spec) tenant() string {
	if s.Tenant == "" {
		return "default"
	}
	return s.Tenant
}

func (s Spec) seed() uint64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// validate rejects malformed submissions before they consume a
// campaign id. Target names (family, cross, event names) are validated
// by the flow itself at run time — the unit must exist, though, so a
// typo fails fast at submission.
func (s Spec) validate() error {
	if s.Unit == "" {
		return errors.New("service: spec: unit is required")
	}
	if _, err := duv.New(s.Unit); err != nil {
		return fmt.Errorf("service: spec: %w", err)
	}
	modes := 0
	if s.Family != "" {
		modes++
	}
	if s.Cross != "" {
		modes++
	}
	if len(s.Events) > 0 {
		modes++
	}
	if modes != 1 {
		return errors.New("service: spec: exactly one of family, cross or events is required")
	}
	if len(s.Tenant) > 64 {
		return errors.New("service: spec: tenant name too long (max 64)")
	}
	for _, r := range s.Tenant {
		if !(r == '-' || r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return fmt.Errorf("service: spec: invalid tenant name %q", s.Tenant)
		}
	}
	return nil
}

// coreConfig expands the spec into the flow config it runs under.
func (s Spec) coreConfig(defaultWorkers int) core.Config {
	workers := s.Config.Workers
	if workers <= 0 {
		workers = defaultWorkers
	}
	return core.Config{
		Seed:                  s.seed(),
		Workers:               workers,
		CorpusSimsPerTemplate: s.Config.CorpusSims,
		TopTemplates:          s.Config.TopTemplates,
		Subranges:             s.Config.Subranges,
		SampleTemplates:       s.Config.SampleTemplates,
		SampleSims:            s.Config.SampleSims,
		OptIterations:         s.Config.OptIterations,
		OptDirections:         s.Config.OptDirections,
		OptSims:               s.Config.OptSims,
		BestSims:              s.Config.BestSims,
	}
}

// State is a campaign's externally visible record: the submission, its
// lifecycle position, and (once done) its reports. It is both the
// campaign.json schema and the GET /v1/campaigns/{id} response body.
type State struct {
	ID          string        `json:"id"`
	Spec        Spec          `json:"spec"`
	State       string        `json:"state"`
	Error       string        `json:"error,omitempty"`
	SubmittedAt time.Time     `json:"submitted_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	Reports     []*ReportJSON `json:"reports,omitempty"`

	// Owner and Epoch identify the replica that last ran (or is
	// running) the campaign and its lease fencing epoch — set at
	// dispatch, kept through terminal states so an adopted campaign
	// records who finished it.
	Owner string `json:"owner,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

func (st *State) clone() *State {
	dup := *st
	return &dup
}
