package service

import (
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/opt"
)

// ReportJSON is the wire view of a core.Report: event ids become
// names, per-phase coverage is projected onto the target events, and
// the harvested template is rendered as source text. Building it is
// deterministic, so two bit-identical reports marshal to bit-identical
// JSON — the property the restart-resume tests compare.
type ReportJSON struct {
	Unit         string   `json:"unit"`
	TargetEvents []string `json:"target_events"`

	// ChosenTemplates are the coarse-grained (TAC) search winners.
	ChosenTemplates []TemplateScoreJSON `json:"chosen_templates"`

	// Phases carry each phase's simulation spend and its hit counts on
	// the target events, in flow order (before, sampling, optimization,
	// best).
	Phases []PhaseJSON `json:"phases"`

	// BestWeights/BestTemplate are the harvested optimum.
	BestWeights  []float64 `json:"best_weights,omitempty"`
	BestTemplate string    `json:"best_template,omitempty"`

	// Progress is the optimizer's per-iteration record (paper Fig. 6).
	Progress []opt.IterRecord `json:"progress,omitempty"`

	TotalSims uint64 `json:"total_sims"`
}

// TemplateScoreJSON is one coarse-search pick.
type TemplateScoreJSON struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
	Sims  uint64  `json:"sims"`
}

// PhaseJSON is one phase's aggregate outcome, projected onto the
// campaign's target events.
type PhaseJSON struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Sims        uint64 `json:"sims"`
	// TargetHits[i] is the phase's hit count for TargetEvents[i].
	TargetHits []uint64 `json:"target_hits"`
}

// NewReportJSON projects a report through the unit's coverage model.
func NewReportJSON(r *core.Report, m *coverage.Model) *ReportJSON {
	out := &ReportJSON{
		Unit:        r.Unit,
		BestWeights: r.BestWeights,
		Progress:    r.Progress,
		TotalSims:   r.TotalSims,
	}
	out.TargetEvents = make([]string, len(r.TargetEvents))
	for i, id := range r.TargetEvents {
		out.TargetEvents[i] = m.Name(id)
	}
	out.ChosenTemplates = make([]TemplateScoreJSON, len(r.ChosenTemplates))
	for i, ts := range r.ChosenTemplates {
		out.ChosenTemplates[i] = TemplateScoreJSON{Name: ts.Name, Score: ts.Score, Sims: ts.Sims}
	}
	out.Phases = make([]PhaseJSON, len(r.Phases))
	for i, p := range r.Phases {
		pj := PhaseJSON{
			Name:        p.Name,
			Description: p.Description,
			Sims:        p.Counts.Sims(),
			TargetHits:  make([]uint64, len(r.TargetEvents)),
		}
		for j, id := range r.TargetEvents {
			pj.TargetHits[j] = p.Counts.Hits(id)
		}
		out.Phases[i] = pj
	}
	if r.BestTemplate != nil {
		out.BestTemplate = r.BestTemplate.String()
	}
	return out
}
