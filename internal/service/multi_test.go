package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// waitState polls until the campaign (as served by svc) reaches the
// wanted state.
func waitState(t *testing.T, svc *Service, id, want string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := svc.Get(id)
		if st != nil && st.State == want {
			return
		}
		if time.Now().After(deadline) {
			got := "<unknown>"
			if st != nil {
				got = st.State
			}
			t.Fatalf("campaign %s state = %q, want %q", id, got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMultiReplicaAdoption is the drain→handoff path: replica A drains
// mid-campaign (releasing its lease), replica B on the same data root
// adopts the campaign without a restart of anything, and the finished
// report is byte-identical to an uninterrupted single-replica run.
func TestMultiReplicaAdoption(t *testing.T) {
	// Uninterrupted baseline for the byte comparison.
	base := newService(t, Config{})
	baseID, err := base.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, base, baseID); st.State != StateDone {
		t.Fatalf("baseline state = %q (error %q)", st.State, st.Error)
	}
	baseBytes, err := os.ReadFile(filepath.Join(base.cfg.DataDir, baseID, "report.json"))
	if err != nil {
		t.Fatal(err)
	}

	dataDir := t.TempDir()
	var ap *Service
	a, err := New(Config{
		DataDir: dataDir, Owner: "rA", LeaseTTL: 300 * time.Millisecond,
		flowArmed: func(string, *core.Flow) { <-ap.baseCtx.Done() },
	})
	if err != nil {
		t.Fatal(err)
	}
	ap = a
	id, err := a.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, id, StateRunning)
	a.Close() // drain: lease released, on-disk state stays "running"

	b := newService(t, Config{DataDir: dataDir, Owner: "rB", LeaseTTL: 300 * time.Millisecond})
	st := waitDone(t, b, id)
	if st.State != StateDone {
		t.Fatalf("adopted campaign state = %q (error %q)", st.State, st.Error)
	}
	if st.Owner != "rB" {
		t.Fatalf("adopted campaign owner = %q, want rB", st.Owner)
	}
	if st.Epoch < 2 {
		t.Fatalf("adopted campaign epoch = %d, want >= 2 (must fence rA's run)", st.Epoch)
	}
	got, err := os.ReadFile(filepath.Join(dataDir, id, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(baseBytes) {
		t.Fatal("adopted campaign's report.json differs from the uninterrupted baseline")
	}
}

// TestLeaseFencingOnSteal is the kill -9 path in miniature: replica A
// stalls mid-campaign without draining (its lease stops renewing),
// replica B steals the lease and finishes the campaign, and A — still
// holding its dead handle — is fenced out of every terminal write, so
// B's result survives untouched. While fenced, A also reports
// not-ready.
func TestLeaseFencingOnSteal(t *testing.T) {
	dataDir := t.TempDir()
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }

	a, err := New(Config{
		DataDir: dataDir, Owner: "rA", LeaseTTL: 250 * time.Millisecond,
		flowArmed: func(string, *core.Flow) { <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer release() // must unblock the gate before a.Close drains
	id, err := a.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, id, StateRunning)

	// Stall A's renewals — the moral equivalent of a SIGSTOP'd or
	// wedged replica. Its flow is still blocked on the gate.
	a.mu.Lock()
	c := a.campaigns[id]
	a.mu.Unlock()
	c.mu.Lock()
	h := c.lease
	c.mu.Unlock()
	if h == nil {
		t.Fatal("running campaign has no lease handle")
	}
	h.Suspend(true)

	b := newService(t, Config{DataDir: dataDir, Owner: "rB", LeaseTTL: 250 * time.Millisecond})
	st := waitDone(t, b, id)
	if st.State != StateDone {
		t.Fatalf("stolen campaign state = %q (error %q)", st.State, st.Error)
	}
	if st.Owner != "rB" {
		t.Fatalf("stolen campaign owner = %q, want rB", st.Owner)
	}

	// A still believes it is running the campaign; its lease is fenced,
	// so its readiness must fail until the runner unwinds.
	if err := a.Ready(); err == nil || !strings.Contains(err.Error(), "lost lease") {
		t.Fatalf("fenced replica Ready() = %v, want lost-lease error", err)
	}

	doneBytes, err := os.ReadFile(filepath.Join(dataDir, id, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	doneState, err := loadState(filepath.Join(dataDir, id))
	if err != nil {
		t.Fatal(err)
	}

	// Un-stall A: its flow wakes into a canceled context (OnLost fired),
	// hits the fence, and must not touch B's terminal result.
	release()
	deadline := time.Now().Add(15 * time.Second)
	for {
		a.mu.Lock()
		running := a.running
		a.mu.Unlock()
		if running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fenced campaign never unwound on A")
		}
		time.Sleep(5 * time.Millisecond)
	}
	afterBytes, err := os.ReadFile(filepath.Join(dataDir, id, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(afterBytes) != string(doneBytes) {
		t.Fatal("fenced replica clobbered the adopter's report.json")
	}
	afterState, err := loadState(filepath.Join(dataDir, id))
	if err != nil {
		t.Fatal(err)
	}
	if afterState.State != StateDone || afterState.Owner != doneState.Owner || afterState.Epoch != doneState.Epoch {
		t.Fatalf("fenced replica rewrote campaign.json: %+v", afterState)
	}
	if err := a.Ready(); err != nil {
		t.Fatalf("A not ready after unwinding the fenced campaign: %v", err)
	}
}

// TestRecoverOrderDeterministic locks the recovery enqueue order:
// previously-running campaigns first, then queued ones, each by
// submission time — never by directory-walk order.
func TestRecoverOrderDeterministic(t *testing.T) {
	dataDir := t.TempDir()
	mk := func(id, state string, submitted time.Time) {
		t.Helper()
		dir := filepath.Join(dataDir, id)
		if err := os.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		st := &State{ID: id, Spec: tinySpec(), State: state, SubmittedAt: submitted}
		if err := saveState(dir, st); err != nil {
			t.Fatal(err)
		}
	}
	t0 := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	// Deliberately inverted: directory order (c1, c2, c3, c4) must not
	// leak into the queue order.
	mk("c000001", StateQueued, t0.Add(3*time.Hour))
	mk("c000002", StateQueued, t0.Add(2*time.Hour))
	mk("c000003", StateRunning, t0.Add(4*time.Hour)) // resumed: jumps the queue
	mk("c000004", StateDone, t0)

	svc := newService(t, Config{
		DataDir:  dataDir,
		Capacity: func() int { return 0 }, // freeze dispatch so the queue is inspectable
	})
	svc.mu.Lock()
	var got []string
	if q := svc.sched.tenants["default"]; q != nil {
		got = append(got, q.ids...)
	}
	nextID := svc.nextID
	svc.mu.Unlock()

	want := []string{"c000003", "c000002", "c000001"}
	if len(got) != len(want) {
		t.Fatalf("recovered queue = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered queue = %v, want %v", got, want)
		}
	}
	if nextID != 5 {
		t.Fatalf("nextID after recovery = %d, want 5", nextID)
	}
	if !svc.Done("c000004") {
		t.Fatal("terminal campaign not closed after recovery")
	}
}

// TestTenantMetricsLabeled: every tenant-attributed series carries the
// tenant label in the OpenMetrics rendering, alongside the unlabeled
// aggregate.
func TestTenantMetricsLabeled(t *testing.T) {
	rec := obs.NewRecorder()
	svc := newService(t, Config{
		MaxQueue:      8,
		Rec:           rec,
		TenantWeights: map[string]float64{"acme": 3},
		Capacity:      func() int { return 0 }, // keep them queued
	})
	spec := tinySpec()
	spec.Tenant = "acme"
	if _, err := svc.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(tinySpec()); err != nil { // default tenant
		t.Fatal(err)
	}
	var om strings.Builder
	if err := obs.WriteOpenMetrics(&om, rec.Metrics); err != nil {
		t.Fatal(err)
	}
	page := om.String()
	for _, want := range []string{
		`service_submitted_total{tenant="acme"} 1`,
		`service_submitted_total{tenant="default"} 1`,
		`service_submitted_total 2`,
		`service_queued{tenant="acme"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics missing %q:\n%s", want, page)
		}
	}

	info := svc.Scheduler()
	if info.Capacity != 0 || info.Queued != 2 {
		t.Fatalf("scheduler info = %+v", info)
	}
	var acme *TenantStat
	for i := range info.Tenants {
		if info.Tenants[i].Tenant == "acme" {
			acme = &info.Tenants[i]
		}
	}
	if acme == nil || acme.Weight != 3 || acme.Queued != 1 {
		t.Fatalf("acme tenant stat = %+v", acme)
	}
}

// TestHTTPConcurrentSubmitSaturation hammers POST /v1/campaigns from
// many goroutines against a small queue: every rejection must carry
// Retry-After, every acceptance must be durable and unique, and
// accepted+rejected must account for every request — no submission
// lost or double-admitted.
func TestHTTPConcurrentSubmitSaturation(t *testing.T) {
	svc, release := gatedService(t, Config{MaxRunning: 1, MaxQueue: 4})
	defer release()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	const posts = 24
	ids := make(chan string, posts)
	var rejected, malformed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < posts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := doJSON(t, client, "POST", ts.URL+"/v1/campaigns", tinySpec())
			switch resp.StatusCode {
			case http.StatusAccepted:
				var out struct {
					ID string `json:"id"`
				}
				if err := json.Unmarshal(body, &out); err != nil || out.ID == "" {
					t.Errorf("202 with bad body %s: %v", body, err)
					return
				}
				ids <- out.ID
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				mu.Lock()
				rejected++
				mu.Unlock()
			default:
				mu.Lock()
				malformed++
				mu.Unlock()
				t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	close(ids)

	seen := map[string]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("campaign id %s admitted twice", id)
		}
		seen[id] = true
		// Durable: the campaign directory and state exist on disk.
		if _, err := loadState(filepath.Join(svc.cfg.DataDir, id)); err != nil {
			t.Fatalf("accepted campaign %s not durable: %v", id, err)
		}
	}
	if int64(len(seen))+rejected != posts || malformed != 0 {
		t.Fatalf("accounting: %d accepted + %d rejected != %d posts", len(seen), rejected, posts)
	}
	if len(seen) == 0 || rejected == 0 {
		t.Fatalf("saturation not exercised: %d accepted, %d rejected", len(seen), rejected)
	}

	// Everything accepted eventually completes once the gate opens.
	release()
	for id := range seen {
		if st := waitDone(t, svc, id); st.State != StateDone && st.State != StateCanceled {
			t.Fatalf("campaign %s state = %q (error %q)", id, st.State, st.Error)
		}
	}
}
