package service

import (
	"fmt"
	"testing"
)

// TestFairSchedWeightedShare: under a saturated queue, dispatch counts
// track configured weights exactly (stride scheduling is deterministic,
// not probabilistic).
func TestFairSchedWeightedShare(t *testing.T) {
	f := newFairSched(map[string]float64{"a": 3, "b": 1})
	for i := 0; i < 40; i++ {
		f.push("a", fmt.Sprintf("a%02d", i))
		f.push("b", fmt.Sprintf("b%02d", i))
	}
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		_, tenant, ok := f.pop()
		if !ok {
			t.Fatal("pop failed with campaigns queued")
		}
		counts[tenant]++
	}
	if counts["a"] != 30 || counts["b"] != 10 {
		t.Fatalf("40 dispatches split %v, want a:30 b:10 (weights 3:1)", counts)
	}
}

// TestFairSchedFIFOWithinTenant: a tenant's own campaigns keep
// submission order.
func TestFairSchedFIFOWithinTenant(t *testing.T) {
	f := newFairSched(nil)
	f.push("a", "a1")
	f.push("a", "a2")
	f.push("a", "a3")
	for _, want := range []string{"a1", "a2", "a3"} {
		id, _, ok := f.pop()
		if !ok || id != want {
			t.Fatalf("pop = %q ok=%v, want %q", id, ok, want)
		}
	}
}

// TestFairSchedIdleTenantBanksNoCredit: a tenant that idles while
// another works does not get to monopolize the scheduler when it
// returns — it re-enters at the current clock.
func TestFairSchedIdleTenantBanksNoCredit(t *testing.T) {
	f := newFairSched(nil)
	for i := 0; i < 10; i++ {
		f.push("busy", fmt.Sprintf("x%02d", i))
	}
	for i := 0; i < 8; i++ {
		f.pop()
	}
	// "fresh" arrives late; with equal weights the remaining dispatches
	// must alternate rather than draining fresh's backlog first.
	for i := 0; i < 4; i++ {
		f.push("fresh", fmt.Sprintf("f%02d", i))
	}
	counts := map[string]int{}
	for i := 0; i < 4; i++ {
		_, tenant, ok := f.pop()
		if !ok {
			t.Fatal("pop failed")
		}
		counts[tenant]++
	}
	if counts["busy"] != 2 || counts["fresh"] != 2 {
		t.Fatalf("post-idle dispatches split %v, want busy:2 fresh:2", counts)
	}
}

// TestFairSchedSoloTenantGetsEverything: weights only matter under
// contention.
func TestFairSchedSoloTenantGetsEverything(t *testing.T) {
	f := newFairSched(map[string]float64{"a": 1, "b": 100})
	for i := 0; i < 5; i++ {
		f.push("a", fmt.Sprintf("a%d", i))
	}
	for i := 0; i < 5; i++ {
		if _, tenant, ok := f.pop(); !ok || tenant != "a" {
			t.Fatalf("pop %d = tenant %q ok=%v", i, tenant, ok)
		}
	}
	if _, _, ok := f.pop(); ok {
		t.Fatal("pop succeeded on an empty scheduler")
	}
}

func TestFairSchedRemove(t *testing.T) {
	f := newFairSched(nil)
	f.push("a", "a1")
	f.push("a", "a2")
	if !f.remove("a1") {
		t.Fatal("remove of queued campaign failed")
	}
	if f.remove("a1") {
		t.Fatal("second remove succeeded")
	}
	if f.len() != 1 || !f.contains("a2") {
		t.Fatalf("len = %d, contains(a2) = %v", f.len(), f.contains("a2"))
	}
	id, _, _ := f.pop()
	if id != "a2" {
		t.Fatalf("pop = %q, want a2", id)
	}
}
