package service

import (
	"sort"
)

// fairSched is the service's weighted fair-share admission queue
// (DESIGN.md §12): per-tenant FIFO queues picked in stride-scheduling
// order. Each tenant carries a virtual time that advances by 1/weight
// per dispatched campaign, and the scheduler always dispatches the
// backlogged tenant with the smallest virtual time — so over any
// saturated interval, tenants receive campaign starts proportional to
// their weights, while a lone tenant still gets the whole service.
//
// Not safe for concurrent use; the Service guards it with its mutex.
type fairSched struct {
	weights map[string]float64 // configured weights; absent tenants weigh 1
	tenants map[string]*tenantQ
	clock   float64 // virtual time of the most recent dispatch
	size    int
}

type tenantQ struct {
	name  string
	ids   []string
	vtime float64
}

func newFairSched(weights map[string]float64) *fairSched {
	w := make(map[string]float64, len(weights))
	for k, v := range weights {
		if v > 0 {
			w[k] = v
		}
	}
	return &fairSched{weights: w, tenants: map[string]*tenantQ{}}
}

func (f *fairSched) weight(tenant string) float64 {
	if w, ok := f.weights[tenant]; ok {
		return w
	}
	return 1
}

// push appends a campaign to its tenant's FIFO. A tenant entering with
// an empty queue is brought up to the scheduler clock — idling never
// banks credit, which is what keeps one silent tenant from starving
// everyone once it wakes up.
func (f *fairSched) push(tenant, id string) {
	q := f.tenants[tenant]
	if q == nil {
		q = &tenantQ{name: tenant, vtime: f.clock}
		f.tenants[tenant] = q
	} else if len(q.ids) == 0 && q.vtime < f.clock {
		q.vtime = f.clock
	}
	q.ids = append(q.ids, id)
	f.size++
}

// pop dispatches the next campaign: the backlogged tenant with the
// smallest virtual time (ties broken by name, so scheduling is
// deterministic), FIFO within the tenant.
func (f *fairSched) pop() (id, tenant string, ok bool) {
	var best *tenantQ
	for _, q := range f.tenants {
		if len(q.ids) == 0 {
			continue
		}
		if best == nil || q.vtime < best.vtime || (q.vtime == best.vtime && q.name < best.name) {
			best = q
		}
	}
	if best == nil {
		return "", "", false
	}
	id = best.ids[0]
	best.ids = best.ids[1:]
	f.size--
	f.clock = best.vtime
	best.vtime += 1 / f.weight(best.name)
	return id, best.name, true
}

// remove withdraws a queued campaign (cancellation, peer adoption)
// without charging its tenant's virtual time.
func (f *fairSched) remove(id string) bool {
	for _, q := range f.tenants {
		for i, qid := range q.ids {
			if qid == id {
				q.ids = append(q.ids[:i], q.ids[i+1:]...)
				f.size--
				return true
			}
		}
	}
	return false
}

// contains reports whether the campaign is queued.
func (f *fairSched) contains(id string) bool {
	for _, q := range f.tenants {
		for _, qid := range q.ids {
			if qid == id {
				return true
			}
		}
	}
	return false
}

func (f *fairSched) len() int { return f.size }

// queuedByTenant returns the per-tenant queue depths (only tenants the
// scheduler has ever seen).
func (f *fairSched) queuedByTenant() map[string]int {
	out := make(map[string]int, len(f.tenants))
	for name, q := range f.tenants {
		out[name] = len(q.ids)
	}
	return out
}

// TenantStat is one tenant's scheduler snapshot, served by
// GET /v1/scheduler.
type TenantStat struct {
	Tenant    string  `json:"tenant"`
	Weight    float64 `json:"weight"`
	Queued    int     `json:"queued"`
	Running   int     `json:"running"`
	Completed int     `json:"completed"`
	VTime     float64 `json:"vtime"`
}

// stats renders a deterministic (name-sorted) snapshot; running and
// completed tallies come from the service.
func (f *fairSched) stats(running, completed map[string]int) []TenantStat {
	names := map[string]struct{}{}
	for n := range f.tenants {
		names[n] = struct{}{}
	}
	for n := range running {
		names[n] = struct{}{}
	}
	for n := range completed {
		names[n] = struct{}{}
	}
	out := make([]TenantStat, 0, len(names))
	for n := range names {
		st := TenantStat{Tenant: n, Weight: f.weight(n), Running: running[n], Completed: completed[n]}
		if q := f.tenants[n]; q != nil {
			st.Queued = len(q.ids)
			st.VTime = q.vtime
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
