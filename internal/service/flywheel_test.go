package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	_ "repro/internal/duv/l3cache"
)

// engineSpec is tinySpec under an explicit engine with the knowledge
// flywheel enabled.
func engineSpec(name string, params string, know bool) Spec {
	spec := tinySpec()
	spec.Engine = &EngineSpec{Name: name, Knowledge: know}
	if params != "" {
		spec.Engine.Params = json.RawMessage(params)
	}
	return spec
}

// harvestScore is the campaign's achieved coverage-per-simulation: the
// final round's standalone ("best" phase) mean per-target hit rate —
// the same score the knowledge base stores. Both sides of the A/B run
// identical simulation budgets, so comparing scores compares novel
// coverage per sim.
func harvestScore(t *testing.T, st *State) float64 {
	t.Helper()
	if len(st.Reports) == 0 {
		t.Fatal("campaign has no reports")
	}
	r := st.Reports[len(st.Reports)-1]
	for i := range r.Phases {
		p := &r.Phases[i]
		if p.Name != "best" || p.Sims == 0 || len(p.TargetHits) == 0 {
			continue
		}
		var hits uint64
		for _, n := range p.TargetHits {
			hits += n
		}
		return float64(hits) / (float64(p.Sims) * float64(len(p.TargetHits)))
	}
	t.Fatal("no best phase in final report")
	return 0
}

// TestHTTPEngineSpecGoldens pins the engine-aware API surface: the
// engine spec field round-trips through submission and GET, an unknown
// engine is rejected at admission with the registered-name list, and
// GET /v1/knowledge serves the store before and after a campaign feeds
// it.
func TestHTTPEngineSpecGoldens(t *testing.T) {
	svc := newService(t, Config{MaxRunning: 1, MaxQueue: 16})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	// Unknown engine → 400 listing every registered engine.
	resp, body := doJSON(t, client, "POST", ts.URL+"/v1/campaigns", engineSpec("annealing", "", false))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown engine POST status = %d, want 400: %s", resp.StatusCode, body)
	}
	checkGolden(t, "submit_bad_engine.json", normalize(body))

	// Known engine, misspelled knob → 400 from the strict params check.
	resp, body = doJSON(t, client, "POST", ts.URL+"/v1/campaigns",
		engineSpec("nelder_mead", `{"iteratoins": 4}`, false))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad params POST status = %d, want 400: %s", resp.StatusCode, body)
	}
	checkGolden(t, "submit_bad_engine_params.json", normalize(body))

	// The knowledge base starts empty.
	resp, body = doJSON(t, client, "GET", ts.URL+"/v1/knowledge", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("knowledge GET status = %d, want 200: %s", resp.StatusCode, body)
	}
	checkGolden(t, "knowledge_empty.json", normalize(body))

	// A campaign under an explicit engine: accepted, and the engine spec
	// round-trips through the campaign state.
	resp, body = doJSON(t, client, "POST", ts.URL+"/v1/campaigns",
		engineSpec("nelder_mead", `{"iterations": 4}`, true))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("engine POST status = %d, want 202: %s", resp.StatusCode, body)
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, accepted.ID)
	resp, body = doJSON(t, client, "GET", ts.URL+"/v1/campaigns/"+accepted.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d, want 200: %s", resp.StatusCode, body)
	}
	checkGolden(t, "get_engine_done.json", normalize(body))

	// The finished campaign fed the knowledge base; the endpoint now
	// serves its harvest entry.
	resp, body = doJSON(t, client, "GET", ts.URL+"/v1/knowledge", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("knowledge GET status = %d, want 200: %s", resp.StatusCode, body)
	}
	checkGolden(t, "knowledge_fed.json", normalize(body))
}

// abSpec is the A/B campaign: the L3 bypass family, whose ladder is
// gentle enough that these budgets newly cover target events (the
// iounit CRC targets need paper-scale budgets and would score zero on
// both sides, making the comparison vacuous).
func abSpec() Spec {
	return Spec{
		Unit:   "l3cache",
		Family: "byp_reqs",
		Seed:   2,
		Engine: &EngineSpec{Name: "ranker", Knowledge: true},
		Config: SpecConfig{
			CorpusSims:      150,
			TopTemplates:    2,
			Subranges:       3,
			SampleTemplates: 20,
			SampleSims:      25,
			OptIterations:   8,
			OptDirections:   6,
			OptSims:         30,
			BestSims:        400,
			Workers:         4,
		},
	}
}

// TestWarmRankerBeatsCold is the flywheel's acceptance criterion: two
// byte-identical ranker campaigns on one data root, run back to back —
// the second starts from the first's harvested knowledge (non-empty
// warm-start prior, TAC boosts) and must achieve at least as much novel
// coverage per simulation, at the identical simulation budget.
func TestWarmRankerBeatsCold(t *testing.T) {
	svc := newService(t, Config{MaxRunning: 1, MaxQueue: 16})
	spec := abSpec()

	coldID, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	cold := waitDone(t, svc, coldID)
	if cold.State != StateDone {
		t.Fatalf("cold campaign state = %q (error %q)", cold.State, cold.Error)
	}
	var coldSnap knowledgeSnapshot
	readSnapshot(t, filepath.Join(svc.cfg.DataDir, coldID, "knowledge.json"), &coldSnap)
	if len(coldSnap.Prior) != 0 || len(coldSnap.TAC) != 0 {
		t.Fatalf("cold campaign consumed a non-empty knowledge snapshot: %+v", coldSnap)
	}

	// The finished cold campaign fed the store.
	entries, err := svc.Knowledge()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("cold campaign fed no knowledge entries")
	}

	warmID, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	warm := waitDone(t, svc, warmID)
	if warm.State != StateDone {
		t.Fatalf("warm campaign state = %q (error %q)", warm.State, warm.Error)
	}
	var warmSnap knowledgeSnapshot
	readSnapshot(t, filepath.Join(svc.cfg.DataDir, warmID, "knowledge.json"), &warmSnap)
	if len(warmSnap.Prior) == 0 {
		t.Fatal("warm campaign froze an empty warm-start prior")
	}
	if len(warmSnap.TAC) == 0 {
		t.Fatal("warm campaign froze empty TAC boosts")
	}

	coldScore, warmScore := harvestScore(t, cold), harvestScore(t, warm)
	t.Logf("cold score = %.6f, warm score = %.6f", coldScore, warmScore)
	if warmScore < coldScore {
		t.Fatalf("warm ranker (%.6f) lost to cold (%.6f) on coverage per sim", warmScore, coldScore)
	}
}

func readSnapshot(t *testing.T, path string, into *knowledgeSnapshot) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, into); err != nil {
		t.Fatal(err)
	}
}

// TestKnowledgeSurvivesRestart: the knowledge base is part of the data
// root — a restarted service serves the previous process's entries.
func TestKnowledgeSurvivesRestart(t *testing.T) {
	dataDir := t.TempDir()
	svc := newService(t, Config{DataDir: dataDir})
	id, err := svc.Submit(engineSpec("ranker", "", true))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, svc, id); st.State != StateDone {
		t.Fatalf("state = %q (error %q)", st.State, st.Error)
	}
	before, err := svc.Knowledge()
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()

	restarted := newService(t, Config{DataDir: dataDir})
	after, err := restarted.Knowledge()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) || len(after) == 0 {
		t.Fatalf("restarted knowledge = %d entries, want %d (non-zero)", len(after), len(before))
	}
	if after[0].Campaign != id {
		t.Fatalf("restarted entry campaign = %q, want %q", after[0].Campaign, id)
	}
}
