package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestServiceOpsEndpoints covers the daemon's operational surface as
// mounted by Handler(): /metrics must render the service's registry as
// valid OpenMetrics, /healthz is always 200 (liveness), and /readyz
// follows Service.Ready — 200 while accepting work, 503 once the
// service drains.
func TestServiceOpsEndpoints(t *testing.T) {
	rec := obs.NewRecorder()
	svc := newService(t, Config{MaxRunning: 1, MaxQueue: 4, Rec: rec})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	fetch := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	rec.Counter("service.test_marker").Add(3)
	code, page, hdr := fetch("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != obs.OpenMetricsContentType {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if err := obs.ValidateOpenMetrics([]byte(page)); err != nil {
		t.Fatalf("/metrics is not valid OpenMetrics: %v\n%s", err, page)
	}
	if !strings.Contains(page, "service_test_marker_total 3\n") {
		t.Fatalf("/metrics lacks the service registry's series:\n%s", page)
	}

	if code, body, _ := fetch("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body, _ := fetch("/readyz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/readyz = %d %q", code, body)
	}

	// Draining flips readiness but not liveness.
	svc.Close()
	if code, body, _ := fetch("/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "service:") {
		t.Fatalf("/readyz after Close = %d %q, want 503 naming the service check", code, body)
	}
	if code, _, _ := fetch("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after Close = %d, want 200 (liveness is not readiness)", code)
	}
}

// TestServiceReadyQueueSaturation locks the back-pressure half of
// Service.Ready: a full queue reads as not-ready so a load balancer
// stops routing new submissions, without the service dying.
func TestServiceReadyQueueSaturation(t *testing.T) {
	svc := newService(t, Config{MaxRunning: 1, MaxQueue: 1})
	if err := svc.Ready(); err != nil {
		t.Fatalf("fresh service not ready: %v", err)
	}

	// Occupy the single runner slot, then fill the one-deep queue.
	blocked := tinySpec()
	blocked.Config.BestSims = 4000
	blocked.Config.CorpusSims = 4000
	id, err := svc.Submit(blocked)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Get(id).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never started running", id)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.Submit(tinySpec()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Ready(); err == nil {
		t.Fatal("service ready with a saturated queue")
	}
}
