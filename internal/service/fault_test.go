package service

import (
	"errors"
	"testing"

	"repro/internal/failpoint"
)

// TestSubmitAdmitFailpoint verifies the service/admit injection point:
// an injected admission failure rejects the submission with the
// failpoint sentinel before any campaign state exists, and the next
// clean submission runs to completion as if nothing happened.
func TestSubmitAdmitFailpoint(t *testing.T) {
	defer failpoint.Default.Clear("service/admit")
	svc := newService(t, Config{})

	failpoint.Default.Set("service/admit", failpoint.Policy{Kind: failpoint.KindError, Rate: 1, Times: 1})
	if _, err := svc.Submit(tinySpec()); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Submit under failpoint = %v, want ErrInjected", err)
	}

	id, err := svc.Submit(tinySpec())
	if err != nil {
		t.Fatalf("clean Submit after faulted one: %v", err)
	}
	if id != "c000001" {
		t.Fatalf("first admitted campaign id = %s, want c000001 (no id burned by the fault)", id)
	}
	st := waitDone(t, svc, id)
	if st.State != StateDone {
		t.Fatalf("state = %q (error %q), want done", st.State, st.Error)
	}
}
