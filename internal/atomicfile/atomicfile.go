// Package atomicfile writes files crash-safely: content is streamed to
// a temporary file in the destination directory, fsynced, and renamed
// over the target. Readers never observe a partial file — after a crash
// the target is either the old complete content or the new complete
// content, which is the property every artifact a resumable run
// persists (repositories, harvested suites) needs.
package atomicfile

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile writes the content produced by write to path atomically.
// On any error the target is left untouched and the temporary file is
// removed.
func WriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // the rename consumes it; nothing left to clean up
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
