package atomicfile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	for i := 0; i < 3; i++ {
		want := fmt.Sprintf("content %d", i)
		if err := WriteFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, want)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("read %q, want %q", got, want)
		}
	}
}

func TestWriteFileFailureLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("target corrupted: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}
