package buildinfo

import (
	"strings"
	"testing"
)

func TestReadNeverEmpty(t *testing.T) {
	i := Read()
	for name, v := range map[string]string{
		"Version":   i.Version,
		"Revision":  i.Revision,
		"Time":      i.Time,
		"GoVersion": i.GoVersion,
	} {
		if v == "" {
			t.Errorf("%s is empty; want a value or the \"unknown\" placeholder", name)
		}
	}
	if !strings.HasPrefix(i.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want a go toolchain version", i.GoVersion)
	}
}

func TestReadCached(t *testing.T) {
	if Read() != Read() {
		t.Fatal("Read is not stable across calls")
	}
}

func TestString(t *testing.T) {
	s := String("ascdg")
	for _, want := range []string{"ascdg version ", "revision ", "go"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestShortNeverEmpty(t *testing.T) {
	if Read().Short() == "" {
		t.Fatal("Short() is empty")
	}
}

func TestDirtySuffix(t *testing.T) {
	i := Info{Version: "(devel)", Revision: "abcdef0123456789abcdef", Time: "t", GoVersion: "go1.22"}
	if got := i.Short(); got != "abcdef012345" {
		t.Fatalf("Short() = %q, want the 12-char revision prefix", got)
	}
	tagged := Info{Version: "v1.2.3", Revision: "abc"}
	if got := tagged.Short(); got != "v1.2.3" {
		t.Fatalf("Short() = %q, want the tagged version", got)
	}
}
