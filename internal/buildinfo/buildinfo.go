// Package buildinfo exposes the binary's build identity — module
// version, VCS revision, and toolchain — read once from the build info
// embedded by the go tool. Every CLI's -version flag and the farmd
// handshake banner print it, and the OpenMetrics exposition emits it as
// the standard build_info gauge, so an operator can always tell which
// build a fleet node is running.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Info is the build identity of the running binary. Fields are "unknown"
// (never empty) when the binary was built without the corresponding
// metadata (e.g. `go test` binaries have no VCS stamp).
type Info struct {
	// Version is the main module's version ("(devel)" for plain builds).
	Version string
	// Revision is the VCS commit hash, suffixed with "+dirty" when the
	// working tree was modified.
	Revision string
	// Time is the VCS commit timestamp (RFC 3339) when stamped.
	Time string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

var (
	once   sync.Once
	cached Info
)

// Read returns the build identity, computed once per process.
func Read() Info {
	once.Do(func() { cached = read() })
	return cached
}

func read() Info {
	info := Info{
		Version:   "unknown",
		Revision:  "unknown",
		Time:      "unknown",
		GoVersion: runtime.Version(),
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && info.Revision != "unknown" {
		info.Revision += "+dirty"
	}
	return info
}

// Short is the one-token form used in banners: the module version, or
// the first 12 characters of the revision when the version is a
// placeholder.
func (i Info) Short() string {
	if i.Version != "unknown" && i.Version != "(devel)" {
		return i.Version
	}
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "unknown" {
		return i.Version
	}
	return rev
}

// String renders the full multi-field identity for -version output:
//
//	ascdg version (devel) (revision abc123def456, built 2026-08-07T00:00:00Z, go1.22.1)
func String(prog string) string {
	i := Read()
	return fmt.Sprintf("%s version %s (revision %s, built %s, %s)",
		prog, i.Version, i.Revision, i.Time, i.GoVersion)
}
