package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func writeN(t *testing.T, path string, n int) *Writer {
	t.Helper()
	w, err := Create(path, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append("rec", payload{N: i, S: "hello"}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	return w
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w := writeN(t, path, 5)
	if w.Appends() != 5 {
		t.Fatalf("Appends = %d, want 5", w.Appends())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, w2, err := Recover(path, nil, nil)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer w2.Close()
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
	if w2.Appends() != 5 {
		t.Fatalf("recovered writer Appends = %d, want 5", w2.Appends())
	}
	cur := NewCursor(w2, recs)
	for i := 0; i < 5; i++ {
		var p payload
		ok, err := cur.Take("rec", &p)
		if err != nil || !ok {
			t.Fatalf("Take %d: ok=%v err=%v", i, ok, err)
		}
		if p.N != i || p.S != "hello" {
			t.Fatalf("record %d decoded as %+v", i, p)
		}
	}
	if ok, _ := cur.Take("rec", nil); ok {
		t.Fatal("Take succeeded past the end")
	}
	// Replay exhausted: appends flow through to the file.
	if err := cur.Append("rec", payload{N: 5}); err != nil {
		t.Fatalf("Append after replay: %v", err)
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.journal")
	writeN(t, base, 4).Close()
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file at every byte boundary: recovery must always yield a
	// valid prefix and never error or panic (past the magic).
	for cut := len(Magic); cut <= len(data); cut++ {
		path := filepath.Join(dir, "cut.journal")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, w, err := Recover(path, nil, nil)
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		// The file must now be exactly the valid prefix, and appending must
		// extend it into a longer valid journal.
		if err := w.Append("extra", payload{N: 99}); err != nil {
			t.Fatalf("cut %d: Append after recovery: %v", cut, err)
		}
		w.Close()
		recs2, w2, err := Recover(path, nil, nil)
		if err != nil {
			t.Fatalf("cut %d: second Recover: %v", cut, err)
		}
		w2.Close()
		if len(recs2) != len(recs)+1 {
			t.Fatalf("cut %d: %d records after append, want %d", cut, len(recs2), len(recs)+1)
		}
		if recs2[len(recs2)-1].Type != "extra" {
			t.Fatalf("cut %d: last record is %q", cut, recs2[len(recs2)-1].Type)
		}
	}
}

func TestRecoverRejectsNonJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus")
	if err := os.WriteFile(path, []byte("this is not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(path, nil, nil); !errors.Is(err, ErrNotJournal) {
		t.Fatalf("Recover of non-journal: err=%v, want ErrNotJournal", err)
	}
	if err := os.WriteFile(path, []byte("AS"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(path, nil, nil); !errors.Is(err, ErrNotJournal) {
		t.Fatalf("Recover of short file: err=%v, want ErrNotJournal", err)
	}
}

func TestRecoverCorruptMiddleKeepsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	writeN(t, path, 6).Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the stream: everything from the
	// corrupt frame on is dropped.
	mid := len(Magic) + (len(data)-len(Magic))/2
	data[mid] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, w, err := Recover(path, nil, nil)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	w.Close()
	if len(recs) >= 6 {
		t.Fatalf("recovered %d records from a corrupt stream, want < 6", len(recs))
	}
	for i, r := range recs {
		var p payload
		ok, err := NewCursor(nil, []Record{r}).Take("rec", &p)
		if !ok || err != nil || p.N != i {
			t.Fatalf("surviving record %d: ok=%v err=%v p=%+v", i, ok, err, p)
		}
	}
}

func TestFailAppendsInjection(t *testing.T) {
	for _, tear := range []int{0, 5} {
		path := filepath.Join(t.TempDir(), "run.journal")
		w, err := Create(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		w.FailAppends(2, tear)
		if err := w.Append("rec", payload{N: 0}); err != nil {
			t.Fatal(err)
		}
		if err := w.Append("rec", payload{N: 1}); err != nil {
			t.Fatal(err)
		}
		if err := w.Append("rec", payload{N: 2}); !errors.Is(err, ErrInjected) {
			t.Fatalf("tear=%d: third append err=%v, want ErrInjected", tear, err)
		}
		// The writer is poisoned: later appends keep failing.
		if err := w.Append("rec", payload{N: 3}); !errors.Is(err, ErrInjected) {
			t.Fatalf("tear=%d: post-injection append err=%v, want ErrInjected", tear, err)
		}
		w.Close()
		recs, w2, err := Recover(path, nil, nil)
		if err != nil {
			t.Fatalf("tear=%d: Recover: %v", tear, err)
		}
		w2.Close()
		if len(recs) != 2 {
			t.Fatalf("tear=%d: recovered %d records, want 2", tear, len(recs))
		}
	}
}

func TestCursorAppendDuringReplayFails(t *testing.T) {
	cur := NewCursor(nil, []Record{{Type: "rec", Data: []byte(`{}`)}})
	if err := cur.Append("other", nil); err == nil {
		t.Fatal("Append during replay succeeded; want mismatch error")
	}
	if ok, _ := cur.Take("rec", nil); !ok {
		t.Fatal("Take failed")
	}
	if err := cur.Append("other", nil); err != nil {
		t.Fatalf("Append after replay: %v", err)
	}
}

func TestNilCursorIsInert(t *testing.T) {
	var cur *Cursor
	if cur.Replaying() {
		t.Fatal("nil cursor claims to be replaying")
	}
	if ok, err := cur.Take("rec", nil); ok || err != nil {
		t.Fatalf("nil Take: ok=%v err=%v", ok, err)
	}
	if err := cur.Append("rec", payload{}); err != nil {
		t.Fatalf("nil Append: %v", err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if cur.PeekType() != "" {
		t.Fatal("nil PeekType non-empty")
	}
}

func TestJournalMetrics(t *testing.T) {
	rec := obs.NewRecorder()
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := Create(path, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append("rec", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	if got := rec.Counter("journal.appends").Value(); got != 3 {
		t.Fatalf("journal.appends = %d, want 3", got)
	}
	if got := rec.Counter("journal.bytes").Value(); got == 0 {
		t.Fatal("journal.bytes = 0")
	}
	// Corrupt the tail and recover: recovery metrics fire.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, append(data, 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}
	_, w2, err := Recover(path, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if got := rec.Counter("journal.recoveries").Value(); got != 1 {
		t.Fatalf("journal.recoveries = %d, want 1", got)
	}
	if got := rec.Counter("journal.truncated_bytes").Value(); got != 2 {
		t.Fatalf("journal.truncated_bytes = %d, want 2", got)
	}
}

// TestSetFenceRejectsAppends: a fence that starts failing (the lease
// layer's fencing epoch was superseded) rejects the append before any
// byte reaches the file, poisons the writer, and stays rejected even
// after the fence would pass again — a fenced run must never resume
// writing.
func TestSetFenceRejectsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fenceErr := errors.New("epoch superseded")
	var fenced bool
	w.SetFence(func() error {
		if fenced {
			return fenceErr
		}
		return nil
	})
	if err := w.Append("rec", payload{N: 1}); err != nil {
		t.Fatalf("append with open fence: %v", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fenced = true
	if err := w.Append("rec", payload{N: 2}); !errors.Is(err, fenceErr) {
		t.Fatalf("fenced append err = %v, want the fence error", err)
	}
	fenced = false
	if err := w.Append("rec", payload{N: 3}); !errors.Is(err, fenceErr) {
		t.Fatalf("append after fencing err = %v, want the sticky fence error", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("fenced appends reached the file: %d -> %d bytes", len(before), len(after))
	}
	if w.Appends() != 1 {
		t.Fatalf("Appends = %d, want 1", w.Appends())
	}
}
