// Package journal implements the crash-safe run journal of the AS-CDG
// flow: an append-only, CRC-framed record stream that survives SIGKILL
// at any byte boundary.
//
// A journal file starts with an 8-byte magic and continues with frames:
//
//	4 bytes  big-endian payload length
//	4 bytes  big-endian CRC32-Castagnoli of the payload
//	payload  JSON envelope {"t": <record type>, "d": <record body>}
//
// Appends are atomic at the record level: one buffered write followed by
// fsync, so after a crash the file is a valid prefix plus at most one
// torn frame. Recover truncates the torn tail (the CRC and length checks
// reject it) and reopens the file for appending, handing the caller the
// surviving records for replay.
//
// The replay-then-append discipline is packaged as a Cursor: readers
// Take records while the journal still has history to replay, and
// Append new ones once it is exhausted. Appending while replay records
// remain is an error — it means the run diverged from the journal
// (different config, seed, or code path), and continuing would corrupt
// the stream.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"

	"repro/internal/failpoint"
	"repro/internal/obs"
)

// Magic identifies a journal file (8 bytes, version baked in).
const Magic = "ASCDGJ1\n"

// Tid is the Chrome-trace lane journal spans render on (after the
// flow's lane 1, workers 100+, farm RPC 200+, remote lanes 300+).
const Tid = 400

// maxFrame bounds a frame's payload so a corrupt length field cannot
// drive a giant allocation during recovery.
const maxFrame = 1 << 28

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrNotJournal reports a file without the journal magic.
	ErrNotJournal = errors.New("journal: not a journal file")
	// ErrInjected is returned by Append after FailAppends triggers — the
	// chaos harness's stand-in for a crash mid-run.
	ErrInjected = errors.New("journal: injected append failure")
)

// Record is one decoded journal record.
type Record struct {
	Type string
	Data json.RawMessage
}

// envelope is the JSON frame payload.
type envelope struct {
	T string          `json:"t"`
	D json.RawMessage `json:"d,omitempty"`
}

// encodeFrame renders one record as a length+CRC framed payload.
func encodeFrame(typ string, v any) ([]byte, error) {
	if typ == "" {
		return nil, fmt.Errorf("journal: empty record type")
	}
	var d json.RawMessage
	if v != nil {
		var err error
		d, err = json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("journal: encoding %q record: %w", typ, err)
		}
	}
	payload, err := json.Marshal(envelope{T: typ, D: d})
	if err != nil {
		return nil, fmt.Errorf("journal: encoding %q record: %w", typ, err)
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)
	return frame, nil
}

// DecodeAll decodes the longest valid prefix of a frame stream (the
// bytes after the magic) and returns the records plus the prefix length
// in bytes. It never panics and never errors: a short header, oversized
// or zero length, CRC mismatch, or malformed envelope simply ends the
// prefix — exactly the torn-tail discipline recovery needs.
func DecodeAll(data []byte) ([]Record, int) {
	var recs []Record
	off := 0
	for {
		if len(data)-off < 8 {
			return recs, off
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		if n <= 0 || n > maxFrame || len(data)-off-8 < n {
			return recs, off
		}
		sum := binary.BigEndian.Uint32(data[off+4:])
		payload := data[off+8 : off+8+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off
		}
		var env envelope
		if err := json.Unmarshal(payload, &env); err != nil || env.T == "" {
			return recs, off
		}
		recs = append(recs, Record{Type: env.T, Data: append(json.RawMessage(nil), env.D...)})
		off += 8 + n
	}
}

// Writer appends records to a journal file. Not safe for concurrent
// use; the flow appends from one goroutine.
type Writer struct {
	f       *os.File
	path    string
	appends int
	err     error // sticky: any failed append poisons the writer

	// Chaos-injection seam (FailAppends).
	failAfter int
	tearBytes int

	// fence, when set, is consulted before every append (SetFence).
	fence func() error

	mAppends *obs.Counter
	mBytes   *obs.Counter
	tracer   *obs.Tracer
}

func newWriter(f *os.File, path string, appends int, rec *obs.Recorder) *Writer {
	w := &Writer{f: f, path: path, appends: appends, failAfter: -1}
	if rec != nil {
		w.mAppends = rec.Counter("journal.appends")
		w.mBytes = rec.Counter("journal.bytes")
		w.tracer = rec.Trace
	}
	return w
}

// Create creates (or truncates) a journal at path and writes the magic.
func Create(path string, rec *obs.Recorder) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(Magic)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return newWriter(f, path, 0, rec), nil
}

// Recover reads a journal, truncates any torn tail, and reopens the
// file for appending. It returns the surviving records (for replay) and
// a writer positioned after them. The caller owns closing the writer.
// log (nil allowed) receives structured truncation/resume events.
func Recover(path string, rec *obs.Recorder, log *slog.Logger) ([]Record, *Writer, error) {
	log = obs.OrNop(log)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotJournal, path)
	}
	// journal/recover: corrupt flips a bit in the framed stream (past the
	// magic, so the torn-tail discipline — not ErrNotJournal — handles
	// it); error/drop abort recovery the way an unreadable disk would.
	if err := failpoint.Bytes("journal/recover", data[len(Magic):]); err != nil {
		return nil, nil, fmt.Errorf("journal: recovering %s: %w", path, err)
	}
	recs, n := DecodeAll(data[len(Magic):])
	valid := int64(len(Magic) + n)
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, nil, err
	}
	if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		rec.Counter("journal.truncated_bytes").Add(uint64(int64(len(data)) - valid))
		log.Warn("journal: torn tail truncated",
			"path", path, "dropped_bytes", int64(len(data))-valid)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	rec.Counter("journal.recoveries").Inc()
	log.Info("journal: recovered", "path", path, "records", len(recs))
	return recs, newWriter(f, path, len(recs), rec), nil
}

// SetFence installs a guard consulted before every append: a non-nil
// error rejects the append and poisons the writer. The campaign service
// threads a lease fencing check through it, so a replica whose campaign
// lease was stolen (its epoch superseded) can never append to a journal
// the new owner is now writing. Not safe to call concurrently with
// Append; install it before the run starts.
func (w *Writer) SetFence(fence func() error) {
	if w != nil {
		w.fence = fence
	}
}

// Append encodes one record, writes its frame in a single write, and
// fsyncs. Any failure (I/O, fencing, or injected) poisons the writer:
// every later Append returns the same error, so a run can never journal
// past a crash point.
func (w *Writer) Append(typ string, v any) error {
	if w.err != nil {
		return w.err
	}
	if w.fence != nil {
		if err := w.fence(); err != nil {
			w.err = err
			return err
		}
	}
	// journal/append simulates a failing disk: the error poisons the
	// writer exactly like a real write failure (delay models a stalling
	// fsync and is not an error).
	if err := failpoint.Eval("journal/append"); err != nil {
		w.err = fmt.Errorf("journal: appending %q: %w", typ, err)
		return w.err
	}
	frame, err := encodeFrame(typ, v)
	if err != nil {
		w.err = err
		return err
	}
	if w.failAfter >= 0 && w.appends >= w.failAfter {
		if w.tearBytes > 0 {
			// Simulate a crash mid-write: part of the frame reaches the
			// file, then the process "dies". Recovery must drop the tear.
			tear := w.tearBytes
			if tear >= len(frame) {
				tear = len(frame) - 1
			}
			w.f.Write(frame[:tear])
			w.f.Sync()
		}
		w.err = ErrInjected
		return w.err
	}
	sp := w.tracer.Span("journal", typ)
	if sp != nil {
		sp = sp.WithTid(Tid)
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("journal: appending %q: %w", typ, err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: syncing %q: %w", typ, err)
		return w.err
	}
	w.appends++
	w.mAppends.Inc()
	w.mBytes.Add(uint64(len(frame)))
	if sp != nil {
		sp.SetArg("bytes", len(frame))
		sp.End()
	}
	return nil
}

// Appends returns the number of records successfully appended through
// this writer plus any it was positioned after at recovery — i.e. the
// journal's record count.
func (w *Writer) Appends() int { return w.appends }

// Path returns the journal's file path.
func (w *Writer) Path() string { return w.path }

// FailAppends arms the chaos seam: the append with index `after`
// (0-based, counted across the journal's whole record stream) fails
// with ErrInjected. tearBytes > 0 additionally writes that many bytes
// of the doomed frame first — a torn mid-record crash; 0 is a clean
// crash at a record boundary.
func (w *Writer) FailAppends(after, tearBytes int) {
	w.failAfter = after
	w.tearBytes = tearBytes
}

// Close syncs and closes the file. Nil-safe and idempotent.
func (w *Writer) Close() error {
	if w == nil || w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	if w.err == nil {
		f.Sync()
	}
	return f.Close()
}

// Cursor is the replay-then-append view of a journal: Take consumes the
// recovered records in order, and Append writes new ones once replay is
// exhausted. A nil *Cursor is valid and disables journaling (Take
// reports nothing to replay, Append is a no-op), so flow code threads
// one unconditionally.
type Cursor struct {
	w    *Writer
	recs []Record
	pos  int
}

// NewCursor wraps a writer and the records recovered from it. recs is
// empty for a freshly created journal.
func NewCursor(w *Writer, recs []Record) *Cursor {
	return &Cursor{w: w, recs: recs}
}

// Replaying reports whether unconsumed replay records remain.
func (c *Cursor) Replaying() bool { return c != nil && c.pos < len(c.recs) }

// PeekType returns the next replay record's type, or "" when replay is
// exhausted (or the cursor is nil).
func (c *Cursor) PeekType() string {
	if c == nil || c.pos >= len(c.recs) {
		return ""
	}
	return c.recs[c.pos].Type
}

// Take consumes the next replay record if its type matches, decoding it
// into v (when non-nil). A type mismatch or exhausted replay returns
// (false, nil) without consuming — the caller then runs the phase live.
// A record that matches the type but fails to decode is an error.
func (c *Cursor) Take(typ string, v any) (bool, error) {
	if c == nil || c.pos >= len(c.recs) {
		return false, nil
	}
	r := c.recs[c.pos]
	if r.Type != typ {
		return false, nil
	}
	if v != nil {
		if err := json.Unmarshal(r.Data, v); err != nil {
			return false, fmt.Errorf("journal: decoding %q record %d: %w", typ, c.pos, err)
		}
	}
	c.pos++
	return true, nil
}

// Append writes a new record. It is an error while replay records
// remain: the live run produced a record the journal does not have at
// this position, so the journal belongs to a different run.
func (c *Cursor) Append(typ string, v any) error {
	if c == nil {
		return nil
	}
	if c.pos < len(c.recs) {
		return fmt.Errorf("journal: appending %q while %d replay records remain (journal does not match this run; next is %q)",
			typ, len(c.recs)-c.pos, c.recs[c.pos].Type)
	}
	if c.w == nil {
		return nil
	}
	return c.w.Append(typ, v)
}

// Writer exposes the underlying writer (nil for a nil cursor) — the
// chaos harness arms FailAppends through it.
func (c *Cursor) Writer() *Writer {
	if c == nil {
		return nil
	}
	return c.w
}

// Close closes the underlying writer. Nil-safe.
func (c *Cursor) Close() error {
	if c == nil {
		return nil
	}
	return c.w.Close()
}
