package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/failpoint"
)

// openFDs counts this process's open file descriptors via /proc.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot enumerate fds: %v", err)
	}
	return len(ents)
}

// TestAppendFailpointPoisonsWriter verifies that an injected append
// failure behaves exactly like a failing disk: the append errors with
// the failpoint sentinel and the writer stays poisoned even after the
// failpoint schedule is exhausted.
func TestAppendFailpointPoisonsWriter(t *testing.T) {
	defer failpoint.Default.Clear("journal/append")
	path := filepath.Join(t.TempDir(), "run.journal")
	w := writeN(t, path, 3)
	defer w.Close()

	failpoint.Default.Set("journal/append", failpoint.Policy{Kind: failpoint.KindError, Rate: 1, Times: 1})
	err := w.Append("rec", payload{N: 99})
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Append under failpoint = %v, want ErrInjected", err)
	}
	// The one-shot policy is spent, but the writer must stay poisoned —
	// a run can never journal past a crash point.
	if err2 := w.Append("rec", payload{N: 100}); !errors.Is(err2, failpoint.ErrInjected) {
		t.Fatalf("Append after poison = %v, want the sticky injected error", err2)
	}
	if w.Appends() != 3 {
		t.Fatalf("Appends = %d after poison, want 3", w.Appends())
	}
	w.Close()

	recs, w2, err := Recover(path, nil, nil)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer w2.Close()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want the 3 pre-poison ones", len(recs))
	}
}

// TestRecoverCorruptFailpoint verifies the byzantine-disk path: a bit
// flip in the framed stream is handled by the torn-tail discipline (a
// valid prefix survives, the rest is truncated away), recovery is
// idempotent, and the journal accepts appends afterwards.
func TestRecoverCorruptFailpoint(t *testing.T) {
	defer failpoint.Default.Clear("journal/recover")
	path := filepath.Join(t.TempDir(), "run.journal")
	w := writeN(t, path, 8)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}

	failpoint.Default.Set("journal/recover", failpoint.Policy{Kind: failpoint.KindCorrupt, Rate: 1, Times: 1})
	recs, w2, err := Recover(path, nil, nil)
	if err != nil {
		t.Fatalf("Recover with corrupt stream: %v (want torn-tail handling, not an error)", err)
	}
	if len(recs) >= 8 {
		t.Fatalf("recovered %d records from a corrupted stream, want < 8", len(recs))
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("Close recovered writer: %v", err)
	}
	truncated, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if truncated.Size() >= full.Size() {
		t.Fatalf("file size %d after corrupt recovery, want truncated below %d", truncated.Size(), full.Size())
	}

	// The failpoint is spent: a clean re-recovery must agree with the
	// corrupted one (the truncation already made the loss durable).
	recs2, w3, err := Recover(path, nil, nil)
	if err != nil {
		t.Fatalf("clean re-Recover: %v", err)
	}
	if len(recs2) != len(recs) {
		t.Fatalf("re-recovered %d records, want %d (recovery must be idempotent)", len(recs2), len(recs))
	}
	if err := w3.Append("rec", payload{N: 42}); err != nil {
		t.Fatalf("Append after corrupt recovery: %v", err)
	}
	if err := w3.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs3, w4, err := Recover(path, nil, nil)
	if err != nil {
		t.Fatalf("final Recover: %v", err)
	}
	defer w4.Close()
	if len(recs3) != len(recs)+1 {
		t.Fatalf("final journal has %d records, want %d", len(recs3), len(recs)+1)
	}
}

// TestRecoverFaultsLeakNoFDs drives Recover's error paths — injected
// read failures and drops — in a loop and asserts the process's open
// file descriptor count does not grow: a failed recovery must never
// leave the journal file open.
func TestRecoverFaultsLeakNoFDs(t *testing.T) {
	defer failpoint.Default.Clear("journal/recover")
	path := filepath.Join(t.TempDir(), "run.journal")
	w := writeN(t, path, 5)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	base := openFDs(t)
	for _, kind := range []failpoint.Kind{failpoint.KindError, failpoint.KindDrop} {
		failpoint.Default.Set("journal/recover", failpoint.Policy{Kind: kind, Rate: 1})
		for i := 0; i < 20; i++ {
			recs, w2, err := Recover(path, nil, nil)
			if !errors.Is(err, failpoint.ErrInjected) {
				t.Fatalf("Recover under %v = (%d recs, %v), want ErrInjected", kind, len(recs), err)
			}
			if w2 != nil {
				t.Fatalf("Recover returned a writer alongside an error")
			}
		}
	}
	failpoint.Default.Clear("journal/recover")
	// A couple of poisoned-append cycles must not leak either.
	failpoint.Default.Set("journal/append", failpoint.Policy{Kind: failpoint.KindError, Rate: 1})
	for i := 0; i < 10; i++ {
		_, w2, err := Recover(path, nil, nil)
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		if err := w2.Append("rec", payload{N: i}); !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("Append = %v, want ErrInjected", err)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("Close poisoned writer: %v", err)
		}
	}
	failpoint.Default.Clear("journal/append")
	if got := openFDs(t); got > base {
		t.Fatalf("open fds grew from %d to %d across faulted recoveries", base, got)
	}
}
