package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode feeds arbitrary bytes to the recovery decoder. The
// decoder must never panic, must report a prefix no longer than the
// input, and must be prefix-stable: re-decoding exactly the reported
// valid prefix yields the same records and consumes all of it.
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ASCDGJ1\n"))
	f.Add([]byte{0, 0, 0, 1, 0xde, 0xad, 0xbe, 0xef, 'x'})
	// A genuine frame stream as a seed.
	w := &bytes.Buffer{}
	for _, typ := range []string{"run_start", "sample", "opt_iter"} {
		frame, err := encodeFrame(typ, map[string]int{"i": len(typ)})
		if err != nil {
			f.Fatal(err)
		}
		w.Write(frame)
	}
	f.Add(w.Bytes())
	f.Add(append(w.Bytes(), 0x00, 0x00, 0x00))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n := DecodeAll(data)
		if n < 0 || n > len(data) {
			t.Fatalf("DecodeAll consumed %d of %d bytes", n, len(data))
		}
		recs2, n2 := DecodeAll(data[:n])
		if n2 != n || len(recs2) != len(recs) {
			t.Fatalf("prefix instability: (%d recs, %d bytes) then (%d recs, %d bytes)",
				len(recs), n, len(recs2), n2)
		}
		for i := range recs {
			if recs[i].Type != recs2[i].Type || !bytes.Equal(recs[i].Data, recs2[i].Data) {
				t.Fatalf("record %d differs between decodes", i)
			}
			if recs[i].Type == "" {
				t.Fatalf("record %d has empty type", i)
			}
		}
	})
}
