package template

import "fmt"

// Validate checks structural invariants of a template that may have been
// constructed programmatically (the parser enforces the same rules for
// parsed templates):
//
//   - the template and every parameter have non-empty names,
//   - parameter names are unique,
//   - every weight parameter has at least one entry,
//   - entry labels within a weight parameter are unique,
//   - weights are non-negative,
//   - subrange and range bounds satisfy lo <= hi.
//
// A weight parameter whose weights are all zero is legal: the stimuli
// generator treats it as a uniform distribution, mirroring the paper's
// note that zero weights flag values that should normally not be used.
func (t *Template) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("template has no name")
	}
	seen := map[string]bool{}
	for _, p := range t.Params {
		name := p.ParamName()
		if name == "" {
			return fmt.Errorf("template %q: parameter with empty name", t.Name)
		}
		if seen[name] {
			return fmt.Errorf("template %q: duplicate parameter %q", t.Name, name)
		}
		seen[name] = true
		switch param := p.(type) {
		case *WeightParam:
			if len(param.Entries) == 0 {
				return fmt.Errorf("template %q: weight %q has no entries", t.Name, name)
			}
			labels := map[string]bool{}
			for _, e := range param.Entries {
				label := e.Label()
				if !e.IsRange && e.Value == "" {
					return fmt.Errorf("template %q: weight %q has an entry with no value", t.Name, name)
				}
				if labels[label] {
					return fmt.Errorf("template %q: weight %q: duplicate entry %q", t.Name, name, label)
				}
				labels[label] = true
				if e.Weight < 0 {
					return fmt.Errorf("template %q: weight %q entry %q: negative weight %d",
						t.Name, name, label, e.Weight)
				}
				if e.IsRange && e.Hi < e.Lo {
					return fmt.Errorf("template %q: weight %q subrange [%d:%d] has hi < lo",
						t.Name, name, e.Lo, e.Hi)
				}
			}
		case *RangeParam:
			if param.Hi < param.Lo {
				return fmt.Errorf("template %q: range %q [%d:%d] has hi < lo",
					t.Name, name, param.Lo, param.Hi)
			}
		default:
			return fmt.Errorf("template %q: parameter %q has unknown type %T", t.Name, name, p)
		}
	}
	return nil
}
