package template

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestParseNeverPanics throws structured garbage at the parser: random
// token soup assembled from the language's alphabet plus binary noise.
// The parser must always return (result, error), never panic.
func TestParseNeverPanics(t *testing.T) {
	pieces := []string{
		"template", "weight", "range", "{", "}", "[", "]", ":", ";",
		"<?>", "ident", "Mnemonic", "-", "123", "-45", "0", "//x\n", "#y\n",
		" ", "\n", "\t", "\x00", "\xff\xfe", "日本", "<", "?", ">",
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var b strings.Builder
		n := r.Intn(60)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
		}
		src := b.String()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse panicked on %q: %v", src, p)
				}
			}()
			_, _ = Parse(src)
			_, _, _ = ParseSkeleton(src)
		}()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestParseRandomBytesNeverPanics feeds raw random bytes.
func TestParseRandomBytesNeverPanics(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		buf := make([]byte, r.Intn(200))
		for i := range buf {
			buf[i] = byte(r.Intn(256))
		}
		src := string(buf)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse panicked on %q: %v", src, p)
				}
			}()
			_, _ = Parse(src)
		}()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestParseDeepNesting guards against stack abuse: long runs of braces
// and entries parse (or fail) in bounded time without recursion blowups.
func TestParseDeepNesting(t *testing.T) {
	var b strings.Builder
	b.WriteString("template deep {\n")
	for i := 0; i < 5000; i++ {
		b.WriteString("    range R")
		b.WriteString(string(rune('a' + i%26)))
		// Force unique names: Ra0, Rb1, ...
		for _, d := range []byte(intToDigits(i)) {
			b.WriteByte(d)
		}
		b.WriteString(" [0 : 1];\n")
	}
	b.WriteString("}\n")
	tmpl, err := Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpl.Params) != 5000 {
		t.Fatalf("params = %d", len(tmpl.Params))
	}
	// And the canonical form round-trips even at this size.
	if _, err := Parse(tmpl.String()); err != nil {
		t.Fatal(err)
	}
}

func intToDigits(i int) string {
	if i == 0 {
		return "0"
	}
	var out []byte
	for i > 0 {
		out = append([]byte{byte('0' + i%10)}, out...)
		i /= 10
	}
	return string(out)
}
