package template

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates the lexical token types of the template language.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLBrace   // {
	tokRBrace   // }
	tokLBracket // [
	tokRBracket // ]
	tokColon    // :
	tokSemi     // ;
	tokMark     // <?> placeholder (skeleton files only)
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokColon:
		return "':'"
	case tokSemi:
		return "';'"
	case tokMark:
		return "'<?>'"
	}
	return "unknown token"
}

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer produces tokens from template source text. Comments run from
// "//" or "#" to end of line.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// errorf formats a positioned lexical error.
func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *lexer) advance() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, size := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// skipSpaceAndComments consumes whitespace and line comments.
func (l *lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == -1:
			return
		case unicode.IsSpace(r):
			l.advance()
		case r == '#':
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		case r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	r := l.peek()
	switch {
	case r == -1:
		return token{kind: tokEOF, line: line, col: col}, nil
	case r == '{':
		l.advance()
		return token{kind: tokLBrace, text: "{", line: line, col: col}, nil
	case r == '}':
		l.advance()
		return token{kind: tokRBrace, text: "}", line: line, col: col}, nil
	case r == '[':
		l.advance()
		return token{kind: tokLBracket, text: "[", line: line, col: col}, nil
	case r == ']':
		l.advance()
		return token{kind: tokRBracket, text: "]", line: line, col: col}, nil
	case r == ':':
		l.advance()
		return token{kind: tokColon, text: ":", line: line, col: col}, nil
	case r == ';':
		l.advance()
		return token{kind: tokSemi, text: ";", line: line, col: col}, nil
	case r == '<':
		// Skeleton mark "<?>".
		l.advance()
		if l.peek() != '?' {
			return token{}, l.errorf(line, col, "unexpected character %q after '<' (expected '?')", l.peek())
		}
		l.advance()
		if l.peek() != '>' {
			return token{}, l.errorf(line, col, "unterminated mark: expected '>'")
		}
		l.advance()
		return token{kind: tokMark, text: "<?>", line: line, col: col}, nil
	case r == '-' || unicode.IsDigit(r):
		start := l.pos
		l.advance()
		if r == '-' && !unicode.IsDigit(l.peek()) {
			return token{}, l.errorf(line, col, "'-' must be followed by a digit")
		}
		for unicode.IsDigit(l.peek()) {
			l.advance()
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col}, nil
	case isIdentStart(r):
		start := l.pos
		for isIdentPart(l.peek()) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	default:
		return token{}, l.errorf(line, col, "unexpected character %q", r)
	}
}
