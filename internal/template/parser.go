package template

import (
	"fmt"
	"os"
	"strconv"
)

// parser turns a token stream into a Template. The grammar:
//
//	file     := template
//	template := "template" IDENT "{" param* "}"
//	param    := weight | range
//	weight   := "weight" IDENT "{" entry* "}"
//	entry    := (IDENT | subrange) ":" weightVal ";"
//	subrange := "[" NUMBER ":" NUMBER "]"
//	range    := "range" IDENT "[" NUMBER ":" NUMBER "]" ";"
//	weightVal:= NUMBER | "<?>"          (marks allowed only in skeletons)
type parser struct {
	lex        *lexer
	tok        token
	allowMarks bool
	// marks collects the positions of "<?>" weight values found while
	// parsing a skeleton file: parameter name + entry label in order.
	marks []markPos
}

// markPos records where a skeleton mark appeared.
type markPos struct {
	Param string
	Label string
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, fmt.Errorf("%d:%d: expected %s, found %s %q",
			p.tok.line, p.tok.col, kind, p.tok.kind, p.tok.text)
	}
	tok := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return tok, nil
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || p.tok.text != kw {
		return fmt.Errorf("%d:%d: expected %q, found %q", p.tok.line, p.tok.col, kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) number() (int, error) {
	tok, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(tok.text)
	if err != nil {
		return 0, fmt.Errorf("%d:%d: bad number %q: %v", tok.line, tok.col, tok.text, err)
	}
	return n, nil
}

func (p *parser) parseTemplate() (*Template, error) {
	if err := p.expectKeyword("template"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	t := &Template{Name: name.text}
	seen := map[string]bool{}
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return nil, fmt.Errorf("%d:%d: unexpected end of input inside template %q", p.tok.line, p.tok.col, t.Name)
		}
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		if seen[param.ParamName()] {
			return nil, fmt.Errorf("template %q: duplicate parameter %q", t.Name, param.ParamName())
		}
		seen[param.ParamName()] = true
		t.Params = append(t.Params, param)
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("%d:%d: unexpected %s after template body", p.tok.line, p.tok.col, p.tok.kind)
	}
	return t, nil
}

func (p *parser) parseParam() (Param, error) {
	if p.tok.kind != tokIdent {
		return nil, fmt.Errorf("%d:%d: expected 'weight' or 'range', found %s %q",
			p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
	}
	switch p.tok.text {
	case "weight":
		return p.parseWeight()
	case "range":
		return p.parseRange()
	default:
		return nil, fmt.Errorf("%d:%d: expected 'weight' or 'range', found %q", p.tok.line, p.tok.col, p.tok.text)
	}
}

func (p *parser) parseWeight() (Param, error) {
	if err := p.advance(); err != nil { // consume "weight"
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	wp := &WeightParam{Name: name.text}
	seen := map[string]bool{}
	for p.tok.kind != tokRBrace {
		var entry WeightEntry
		switch p.tok.kind {
		case tokIdent:
			entry.Value = p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokLBracket:
			if err := p.advance(); err != nil {
				return nil, err
			}
			lo, err := p.number()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			hi, err := p.number()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			if hi < lo {
				return nil, fmt.Errorf("weight %q: subrange [%d:%d] has hi < lo", name.text, lo, hi)
			}
			entry.IsRange = true
			entry.Lo, entry.Hi = lo, hi
		case tokEOF:
			return nil, fmt.Errorf("%d:%d: unexpected end of input in weight %q", p.tok.line, p.tok.col, name.text)
		default:
			return nil, fmt.Errorf("%d:%d: expected weight entry, found %s %q",
				p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		switch p.tok.kind {
		case tokNumber:
			w, err := p.number()
			if err != nil {
				return nil, err
			}
			if w < 0 {
				return nil, fmt.Errorf("weight %q entry %q: negative weight %d", name.text, entry.Label(), w)
			}
			entry.Weight = w
		case tokMark:
			if !p.allowMarks {
				return nil, fmt.Errorf("%d:%d: mark '<?>' is only valid in skeleton files", p.tok.line, p.tok.col)
			}
			p.marks = append(p.marks, markPos{Param: name.text, Label: entry.Label()})
			entry.Weight = 0
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%d:%d: expected weight value, found %s %q",
				p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		if seen[entry.Label()] {
			return nil, fmt.Errorf("weight %q: duplicate entry %q", name.text, entry.Label())
		}
		seen[entry.Label()] = true
		wp.Entries = append(wp.Entries, entry)
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	if len(wp.Entries) == 0 {
		return nil, fmt.Errorf("weight %q has no entries", name.text)
	}
	return wp, nil
}

func (p *parser) parseRange() (Param, error) {
	if err := p.advance(); err != nil { // consume "range"
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	lo, err := p.number()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	hi, err := p.number()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	if hi < lo {
		return nil, fmt.Errorf("range %q: [%d:%d] has hi < lo", name.text, lo, hi)
	}
	return &RangeParam{Name: name.text, Lo: lo, Hi: hi}, nil
}

func parse(src string, allowMarks bool) (*Template, []markPos, error) {
	p := &parser{lex: newLexer(src), allowMarks: allowMarks}
	if err := p.advance(); err != nil {
		return nil, nil, err
	}
	t, err := p.parseTemplate()
	if err != nil {
		return nil, nil, err
	}
	return t, p.marks, nil
}

// Parse parses template source text. Skeleton marks ("<?>") are rejected;
// use ParseSkeleton for skeleton files.
func Parse(src string) (*Template, error) {
	t, _, err := parse(src, false)
	return t, err
}

// ParseFile parses the template in the named file.
func ParseFile(path string) (*Template, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// ParseSkeleton parses skeleton source text, in which weight values may
// be the mark "<?>". It returns the template (marked weights read as 0)
// and the ordered list of (parameter, entry label) mark positions.
func ParseSkeleton(src string) (*Template, []markPos, error) {
	return parse(src, true)
}
