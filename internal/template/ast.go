// Package template implements the parametrized test-template language of
// the AS-CDG reproduction.
//
// A test-template is the input to the biased-random stimuli generator
// (paper Section III). It modifies the default settings of a subset of
// the verification environment's parameters and leaves the rest at their
// defaults. The language supports the paper's two parameter types:
//
//   - weight parameters: a set of value:weight pairs used as a
//     distribution for random decisions, e.g.
//
//     weight Mnemonic {
//     load:  40;
//     store: 40;
//     add:   0;
//     mul:   20;
//     }
//
//   - range parameters: an inclusive integer range from which values are
//     drawn uniformly, e.g.
//
//     range CacheDelay [0 : 100];
//
// A weight parameter may also carry subrange entries of the form
// "[lo:hi]: w;" — this is the form the Skeletonizer produces when it
// replaces a range parameter with weighted subranges (paper Fig. 1(b)),
// and it lets the CDG-Runner control the distribution over the original
// range.
package template

import (
	"fmt"
	"sort"
	"strings"
)

// Template is a parsed test-template: a named, ordered list of parameter
// settings.
type Template struct {
	// Name identifies the template (unique within a corpus).
	Name string
	// Params holds the parameter settings in source order.
	Params []Param
}

// Param is a parameter setting inside a template; it is either a
// *WeightParam or a *RangeParam.
type Param interface {
	// ParamName returns the parameter's name.
	ParamName() string
	// CloneParam returns a deep copy.
	CloneParam() Param
	// write appends the canonical source form to b at the given indent.
	write(b *strings.Builder, indent string)
}

// WeightEntry is one value:weight pair of a weight parameter. An entry is
// either symbolic (Value set, IsRange false) or a subrange (IsRange true,
// Lo/Hi set) as produced by the Skeletonizer.
type WeightEntry struct {
	Value   string // symbolic value; empty for subrange entries
	Lo, Hi  int    // inclusive subrange bounds; valid when IsRange
	IsRange bool   // true for "[lo:hi]: w" entries
	Weight  int    // non-negative selection weight
}

// Label returns a human-readable identity for the entry: the symbolic
// value, or "[lo:hi]" for subrange entries.
func (e WeightEntry) Label() string {
	if e.IsRange {
		return fmt.Sprintf("[%d:%d]", e.Lo, e.Hi)
	}
	return e.Value
}

// WeightParam is a weight parameter: a distribution over symbolic values
// and/or subranges.
type WeightParam struct {
	Name    string
	Entries []WeightEntry
}

// ParamName implements Param.
func (p *WeightParam) ParamName() string { return p.Name }

// CloneParam implements Param.
func (p *WeightParam) CloneParam() Param {
	entries := make([]WeightEntry, len(p.Entries))
	copy(entries, p.Entries)
	return &WeightParam{Name: p.Name, Entries: entries}
}

// TotalWeight returns the sum of the (non-negative) entry weights.
func (p *WeightParam) TotalWeight() int {
	total := 0
	for _, e := range p.Entries {
		if e.Weight > 0 {
			total += e.Weight
		}
	}
	return total
}

// Entry returns the entry with the given label and whether it exists.
func (p *WeightParam) Entry(label string) (WeightEntry, bool) {
	for _, e := range p.Entries {
		if e.Label() == label {
			return e, true
		}
	}
	return WeightEntry{}, false
}

func (p *WeightParam) write(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sweight %s {\n", indent, p.Name)
	width := 0
	for _, e := range p.Entries {
		if n := len(e.Label()); n > width {
			width = n
		}
	}
	for _, e := range p.Entries {
		fmt.Fprintf(b, "%s    %-*s %d;\n", indent, width+1, e.Label()+":", e.Weight)
	}
	fmt.Fprintf(b, "%s}\n", indent)
}

// RangeParam is a range parameter: values are drawn uniformly from the
// inclusive range [Lo, Hi].
type RangeParam struct {
	Name   string
	Lo, Hi int
}

// ParamName implements Param.
func (p *RangeParam) ParamName() string { return p.Name }

// CloneParam implements Param.
func (p *RangeParam) CloneParam() Param {
	q := *p
	return &q
}

// Width returns the number of values in the range.
func (p *RangeParam) Width() int { return p.Hi - p.Lo + 1 }

func (p *RangeParam) write(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%srange %s [%d : %d];\n", indent, p.Name, p.Lo, p.Hi)
}

// New returns an empty template with the given name.
func New(name string) *Template {
	return &Template{Name: name}
}

// Clone returns a deep copy of the template.
func (t *Template) Clone() *Template {
	c := &Template{Name: t.Name, Params: make([]Param, len(t.Params))}
	for i, p := range t.Params {
		c.Params[i] = p.CloneParam()
	}
	return c
}

// Param returns the parameter with the given name and whether it exists.
func (t *Template) Param(name string) (Param, bool) {
	for _, p := range t.Params {
		if p.ParamName() == name {
			return p, true
		}
	}
	return nil, false
}

// Weight returns the weight parameter with the given name, or nil if the
// template has no such weight parameter.
func (t *Template) Weight(name string) *WeightParam {
	if p, ok := t.Param(name); ok {
		if wp, ok := p.(*WeightParam); ok {
			return wp
		}
	}
	return nil
}

// Range returns the range parameter with the given name, or nil.
func (t *Template) Range(name string) *RangeParam {
	if p, ok := t.Param(name); ok {
		if rp, ok := p.(*RangeParam); ok {
			return rp
		}
	}
	return nil
}

// SetParam adds p to the template, replacing any existing parameter with
// the same name (preserving its position).
func (t *Template) SetParam(p Param) {
	for i, q := range t.Params {
		if q.ParamName() == p.ParamName() {
			t.Params[i] = p
			return
		}
	}
	t.Params = append(t.Params, p)
}

// ParamNames returns the parameter names in source order.
func (t *Template) ParamNames() []string {
	names := make([]string, len(t.Params))
	for i, p := range t.Params {
		names[i] = p.ParamName()
	}
	return names
}

// String returns the canonical source form of the template; Parse of the
// result reproduces the template exactly.
func (t *Template) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "template %s {\n", t.Name)
	for _, p := range t.Params {
		p.write(&b, "    ")
	}
	b.WriteString("}\n")
	return b.String()
}

// Fingerprint returns a stable identity string for the template's
// *contents* (name excluded): equal settings yield equal fingerprints
// regardless of parameter order.
func (t *Template) Fingerprint() string {
	parts := make([]string, 0, len(t.Params))
	for _, p := range t.Params {
		var b strings.Builder
		p.write(&b, "")
		parts = append(parts, b.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, "")
}
