package template

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// lsuSource mirrors the paper's Fig. 1(a) test-template snippet.
const lsuSource = `
// Test-template for stressing the load store unit.
template lsu_stress {
    weight Mnemonic {
        load:  40;
        store: 40;
        add:   0;
        mul:   20;
    }
    range CacheDelay [0 : 100];
}
`

func TestParseLSU(t *testing.T) {
	tmpl, err := Parse(lsuSource)
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.Name != "lsu_stress" {
		t.Fatalf("name = %q", tmpl.Name)
	}
	if len(tmpl.Params) != 2 {
		t.Fatalf("params = %d, want 2", len(tmpl.Params))
	}
	wp := tmpl.Weight("Mnemonic")
	if wp == nil {
		t.Fatal("Mnemonic weight param missing")
	}
	if len(wp.Entries) != 4 {
		t.Fatalf("Mnemonic entries = %d, want 4", len(wp.Entries))
	}
	if e, ok := wp.Entry("add"); !ok || e.Weight != 0 {
		t.Fatalf("add entry = %+v, ok=%v", e, ok)
	}
	if wp.TotalWeight() != 100 {
		t.Fatalf("total weight = %d, want 100", wp.TotalWeight())
	}
	rp := tmpl.Range("CacheDelay")
	if rp == nil {
		t.Fatal("CacheDelay range param missing")
	}
	if rp.Lo != 0 || rp.Hi != 100 {
		t.Fatalf("CacheDelay = [%d:%d], want [0:100]", rp.Lo, rp.Hi)
	}
	if rp.Width() != 101 {
		t.Fatalf("Width = %d, want 101", rp.Width())
	}
}

func TestParseSubrangeEntries(t *testing.T) {
	src := `
template skel {
    weight CacheDelay {
        [0:32]:   70;
        [33:66]:  20;
        [67:100]: 10;
    }
}
`
	tmpl, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	wp := tmpl.Weight("CacheDelay")
	if wp == nil {
		t.Fatal("CacheDelay missing")
	}
	if len(wp.Entries) != 3 {
		t.Fatalf("entries = %d", len(wp.Entries))
	}
	e := wp.Entries[1]
	if !e.IsRange || e.Lo != 33 || e.Hi != 66 || e.Weight != 20 {
		t.Fatalf("entry = %+v", e)
	}
	if e.Label() != "[33:66]" {
		t.Fatalf("label = %q", e.Label())
	}
}

func TestParseComments(t *testing.T) {
	src := "# hash comment\ntemplate t { // trailing\n  range R [1:2]; # after\n}\n"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"empty", "", "expected \"template\""},
		{"no name", "template { }", "expected identifier"},
		{"bad keyword", "template t { foo X [1:2]; }", "expected 'weight' or 'range'"},
		{"range hi<lo", "template t { range R [5:2]; }", "hi < lo"},
		{"subrange hi<lo", "template t { weight W { [5:2]: 1; } }", "hi < lo"},
		{"negative weight", "template t { weight W { a: -3; } }", "negative weight"},
		{"dup param", "template t { range R [1:2]; range R [1:2]; }", "duplicate parameter"},
		{"dup entry", "template t { weight W { a: 1; a: 2; } }", "duplicate entry"},
		{"empty weight", "template t { weight W { } }", "no entries"},
		{"unterminated", "template t { range R [1:2];", "unexpected end of input"},
		{"trailing junk", "template t { } extra", "unexpected"},
		{"mark outside skeleton", "template t { weight W { a: <?>; } }", "only valid in skeleton"},
		{"bad char", "template t { weight W { a: 1; } % }", "unexpected character"},
		{"missing semi", "template t { range R [1:2] }", "expected ';'"},
		{"dash not number", "template t { range R [-:2]; }", "'-' must be followed by a digit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestNegativeRangeBounds(t *testing.T) {
	tmpl, err := Parse("template t { range R [-10:-2]; }")
	if err != nil {
		t.Fatal(err)
	}
	rp := tmpl.Range("R")
	if rp.Lo != -10 || rp.Hi != -2 {
		t.Fatalf("R = [%d:%d]", rp.Lo, rp.Hi)
	}
}

func TestParseSkeletonMarks(t *testing.T) {
	src := `
template skel {
    weight Mnemonic {
        load:  <?>;
        store: <?>;
        add:   0;
    }
    weight CacheDelay {
        [0:32]:   <?>;
        [33:100]: <?>;
    }
}
`
	tmpl, marks, err := ParseSkeleton(src)
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.Name != "skel" {
		t.Fatalf("name = %q", tmpl.Name)
	}
	want := []markPos{
		{"Mnemonic", "load"},
		{"Mnemonic", "store"},
		{"CacheDelay", "[0:32]"},
		{"CacheDelay", "[33:100]"},
	}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("mark %d = %v, want %v", i, marks[i], want[i])
		}
	}
}

func TestRoundTripFixed(t *testing.T) {
	tmpl, err := Parse(lsuSource)
	if err != nil {
		t.Fatal(err)
	}
	out := tmpl.String()
	tmpl2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, out)
	}
	if tmpl2.String() != out {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", out, tmpl2.String())
	}
}

// randomTemplate builds an arbitrary valid template from a seed, for
// property-based round-trip testing.
func randomTemplate(seed uint64) *Template {
	r := rng.New(seed)
	t := New("t" + string(rune('a'+r.Intn(26))))
	nParams := 1 + r.Intn(5)
	for i := 0; i < nParams; i++ {
		name := "P" + string(rune('A'+i))
		if r.Bool(0.5) {
			wp := &WeightParam{Name: name}
			nEntries := 1 + r.Intn(5)
			for j := 0; j < nEntries; j++ {
				var e WeightEntry
				if r.Bool(0.3) {
					lo := r.Intn(100) - 50
					e = WeightEntry{IsRange: true, Lo: lo, Hi: lo + r.Intn(40), Weight: r.Intn(101)}
					// Subrange labels can collide; skip duplicates.
					if _, dup := wp.Entry(e.Label()); dup {
						continue
					}
				} else {
					e = WeightEntry{Value: "v" + string(rune('a'+j)), Weight: r.Intn(101)}
				}
				wp.Entries = append(wp.Entries, e)
			}
			if len(wp.Entries) == 0 {
				wp.Entries = append(wp.Entries, WeightEntry{Value: "fallback", Weight: 1})
			}
			t.Params = append(t.Params, wp)
		} else {
			lo := r.Intn(200) - 100
			t.Params = append(t.Params, &RangeParam{Name: name, Lo: lo, Hi: lo + r.Intn(100)})
		}
	}
	return t
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		orig := randomTemplate(seed)
		if err := orig.Validate(); err != nil {
			t.Logf("seed %d: generated invalid template: %v", seed, err)
			return false
		}
		src := orig.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Logf("seed %d: parse failed: %v\n%s", seed, err, src)
			return false
		}
		return parsed.String() == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCloneIsDeepAndEqual(t *testing.T) {
	f := func(seed uint64) bool {
		orig := randomTemplate(seed)
		clone := orig.Clone()
		if clone.String() != orig.String() {
			return false
		}
		// Mutating the clone must not affect the original.
		for _, p := range clone.Params {
			if wp, ok := p.(*WeightParam); ok {
				wp.Entries[0].Weight += 7
			}
			if rp, ok := p.(*RangeParam); ok {
				rp.Hi += 5
			}
		}
		reparsed, err := Parse(orig.String())
		return err == nil && reparsed.String() == orig.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSetParamReplaces(t *testing.T) {
	tmpl, _ := Parse(lsuSource)
	tmpl.SetParam(&RangeParam{Name: "CacheDelay", Lo: 5, Hi: 9})
	if len(tmpl.Params) != 2 {
		t.Fatalf("params = %d, want 2 after replace", len(tmpl.Params))
	}
	rp := tmpl.Range("CacheDelay")
	if rp.Lo != 5 || rp.Hi != 9 {
		t.Fatalf("replace failed: %+v", rp)
	}
	tmpl.SetParam(&RangeParam{Name: "New", Lo: 1, Hi: 2})
	if len(tmpl.Params) != 3 {
		t.Fatal("append failed")
	}
}

func TestParamLookupsWrongKind(t *testing.T) {
	tmpl, _ := Parse(lsuSource)
	if tmpl.Weight("CacheDelay") != nil {
		t.Error("Weight on a range param should return nil")
	}
	if tmpl.Range("Mnemonic") != nil {
		t.Error("Range on a weight param should return nil")
	}
	if tmpl.Weight("NoSuch") != nil || tmpl.Range("NoSuch") != nil {
		t.Error("lookup of missing param should return nil")
	}
}

func TestFingerprintOrderIndependent(t *testing.T) {
	a, _ := Parse("template x { range A [1:2]; range B [3:4]; }")
	b, _ := Parse("template y { range B [3:4]; range A [1:2]; }")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints should ignore parameter order and template name")
	}
	c, _ := Parse("template x { range A [1:2]; range B [3:5]; }")
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different settings must give different fingerprints")
	}
}

func TestValidateProgrammatic(t *testing.T) {
	cases := []struct {
		name string
		tmpl *Template
		want string
	}{
		{"no name", &Template{}, "no name"},
		{"empty param name", &Template{Name: "t", Params: []Param{&RangeParam{Name: ""}}}, "empty name"},
		{"dup", &Template{Name: "t", Params: []Param{
			&RangeParam{Name: "A", Lo: 0, Hi: 1},
			&RangeParam{Name: "A", Lo: 0, Hi: 1},
		}}, "duplicate parameter"},
		{"empty weight", &Template{Name: "t", Params: []Param{&WeightParam{Name: "W"}}}, "no entries"},
		{"empty entry value", &Template{Name: "t", Params: []Param{
			&WeightParam{Name: "W", Entries: []WeightEntry{{Value: "", Weight: 1}}},
		}}, "no value"},
		{"neg weight", &Template{Name: "t", Params: []Param{
			&WeightParam{Name: "W", Entries: []WeightEntry{{Value: "a", Weight: -1}}},
		}}, "negative weight"},
		{"bad subrange", &Template{Name: "t", Params: []Param{
			&WeightParam{Name: "W", Entries: []WeightEntry{{IsRange: true, Lo: 9, Hi: 2, Weight: 1}}},
		}}, "hi < lo"},
		{"bad range", &Template{Name: "t", Params: []Param{
			&RangeParam{Name: "R", Lo: 3, Hi: 1},
		}}, "hi < lo"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tmpl.Validate()
			if err == nil {
				t.Fatalf("Validate passed, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
	good, _ := Parse(lsuSource)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid template rejected: %v", err)
	}
}

func TestAllZeroWeightsAreValid(t *testing.T) {
	tmpl, err := Parse("template t { weight W { a: 0; b: 0; } }")
	if err != nil {
		t.Fatal(err)
	}
	if err := tmpl.Validate(); err != nil {
		t.Fatalf("all-zero weight param should validate: %v", err)
	}
	if tmpl.Weight("W").TotalWeight() != 0 {
		t.Fatal("total weight should be 0")
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lsu.tmpl")
	if err := os.WriteFile(path, []byte(lsuSource), 0o644); err != nil {
		t.Fatal(err)
	}
	tmpl, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.Name != "lsu_stress" {
		t.Fatalf("name = %q", tmpl.Name)
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.tmpl")); err == nil {
		t.Fatal("ParseFile of missing file should error")
	}
	bad := filepath.Join(dir, "bad.tmpl")
	os.WriteFile(bad, []byte("nonsense"), 0o644)
	if _, err := ParseFile(bad); err == nil || !strings.Contains(err.Error(), "bad.tmpl") {
		t.Fatalf("ParseFile error should name the file, got %v", err)
	}
}
