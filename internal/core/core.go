// Package core implements the AS-CDG flow (paper Section IV, Fig. 2):
// the CDG-Runner orchestration that ties the substrates together.
//
// Given target coverage events, the flow
//
//  1. builds (or reuses) the "Before CDG" corpus: the unit's base
//     regression suite simulated into a coverage repository;
//  2. forms the approximated target from neighbor events;
//  3. runs the coarse-grained search: TAC finds the best existing
//     test-templates for the approximated target, and the parameters of
//     the top-n templates are merged into one candidate template;
//  4. skeletonizes the candidate, defining the fine-grained search box;
//  5. random-samples the box (n templates x N sims each) and picks the
//     best starting point;
//  6. optimizes with implicit filtering (n+1 templates per iteration,
//     N sims per template);
//  7. harvests the best template and measures it standalone.
//
// Every phase's aggregate coverage is retained so the paper's result
// tables (Figs. 3-5) and the optimization progress curve (Fig. 6) can be
// reproduced directly from one Report.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"

	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/journal"
	"repro/internal/neighbors"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/skeleton"
	"repro/internal/tac"
	"repro/internal/template"
)

// Config holds every knob of the flow. The zero value selects the
// defaults documented per field; the paper's per-unit settings live in
// the repro harness (cmd/repro).
type Config struct {
	// Seed makes the entire flow reproducible.
	Seed uint64
	// Workers sizes the batch environment's pool (<= 0: GOMAXPROCS).
	Workers int
	// Runner, when non-nil, adds remote chunk-execution lanes to the
	// environment (see sim.ChunkRunner; internal/farm provides the
	// distributed implementation). RunnerLanes sizes them (default 1).
	// Purely a throughput knob: results are bit-identical with or
	// without a runner, at any lane count, under any runner failures.
	Runner      sim.ChunkRunner
	RunnerLanes int

	// CorpusSimsPerTemplate is the number of simulations of each base
	// template when building the "Before CDG" corpus (default 1000).
	CorpusSimsPerTemplate int

	// TopTemplates is how many best TAC templates contribute parameters
	// to the fine-grained search (default 2).
	TopTemplates int

	// Subranges, SubrangeMode and IncludeZeroWeights configure the
	// Skeletonizer (defaults: 4, Linear, false).
	Subranges          int
	SubrangeMode       skeleton.SubrangeMode
	IncludeZeroWeights bool

	// SampleTemplates (n) and SampleSims (N) configure the random
	// sample phase (defaults 50 and 100).
	SampleTemplates int
	SampleSims      int

	// OptIterations, OptDirections and OptSims configure implicit
	// filtering (defaults 10, 10, 100). InitialStep and MinStep default
	// to a quarter and 1/64 of the weight box. NoResampleCenter disables
	// the center-resampling noise guard (ablation).
	OptIterations    int
	OptDirections    int
	OptSims          int
	InitialStep      float64
	MinStep          float64
	NoResampleCenter bool
	// TargetValue optionally stops the optimizer early (0 = disabled).
	TargetValue float64

	// BestSims is the standalone evaluation budget for the harvested
	// template (default 2000).
	BestSims int

	// Engine selects the fine-grained optimizer by registry name
	// ("" = implicit_filtering, the paper's Algorithm 1; see
	// opt.EngineNames). EngineParams is the engine's opaque knob blob
	// (a JSON object) overlaid on the flow's generic optimizer knobs
	// (iterations, directions, steps). Both are result-relevant and
	// journal-hashed.
	Engine       string
	EngineParams json.RawMessage

	// Prior offers past observations from the cross-campaign knowledge
	// base to engines that learn from history (ranker, bayes): each
	// point is a previously harvested weight vector and its measured
	// coverage score. Stencil engines ignore it. Result-relevant when
	// the selected engine uses it, so its content digest is part of the
	// journal's config hash.
	Prior []opt.PriorPoint

	// TACPrior blends knowledge-base evidence into the coarse-grained
	// search: per-template score boosts (already damped by the
	// producer) added to the TAC ranking before the top templates are
	// chosen. Empty leaves the ranking untouched — the default flow is
	// bit-identical with or without the field. Result-relevant and
	// journal-hashed.
	TACPrior map[string]float64

	// Obs, when non-nil, instruments the run: phase spans and progress
	// events from the flow, scheduler metrics from the environment, and
	// per-iteration records from the optimizer. Purely observational —
	// reports are bit-identical with it set or nil (default nil).
	Obs *obs.Recorder

	// Repository, when non-nil, installs a pre-built "Before CDG" corpus
	// at construction, so multiple flows against the same unit share the
	// expensive regression phase. Not part of the journal's config hash:
	// the journal's run_start record validates the targets the corpus
	// induces instead.
	Repository *coverage.Repository

	// Journal, when non-empty, is the path of the flow's crash-safe
	// journal file. New arms it at construction: a missing (or empty)
	// file starts a fresh journal; an existing one is recovered and
	// replayed, re-entering the interrupted run mid-phase (its header
	// must match this flow's unit, seed, coverage model, and
	// result-relevant config). The flow owns the journal and closes it
	// with Close.
	Journal string

	// Log, when non-nil, receives structured journal lifecycle events
	// (resume, torn-tail truncation). Like Obs, it is throughput-only:
	// excluded from the journal's config hash, never result-relevant.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.CorpusSimsPerTemplate <= 0 {
		c.CorpusSimsPerTemplate = 1000
	}
	if c.TopTemplates <= 0 {
		c.TopTemplates = 2
	}
	if c.Subranges <= 0 {
		c.Subranges = 4
	}
	if c.SampleTemplates <= 0 {
		c.SampleTemplates = 50
	}
	if c.SampleSims <= 0 {
		c.SampleSims = 100
	}
	if c.OptIterations <= 0 {
		c.OptIterations = 10
	}
	if c.OptDirections <= 0 {
		c.OptDirections = 10
	}
	if c.OptSims <= 0 {
		c.OptSims = 100
	}
	if c.BestSims <= 0 {
		c.BestSims = 2000
	}
	return c
}

// engineName resolves the configured optimization engine ("" means the
// paper's default, implicit filtering).
func (c Config) engineName() string {
	if c.Engine == "" {
		return opt.DefaultEngine
	}
	return c.Engine
}

// engineParams builds the engine's parameter blob: the flow's generic
// optimizer knobs as the base, with the user's EngineParams overlaid.
// Engines decode leniently, so stencil-specific knobs (directions,
// min_step) are simply ignored by engines without them.
func (c Config) engineParams() (json.RawMessage, error) {
	base := map[string]any{
		"iterations": c.OptIterations,
		"directions": c.OptDirections,
	}
	if c.InitialStep > 0 {
		base["initial_step"] = c.InitialStep
	}
	if c.MinStep > 0 {
		base["min_step"] = c.MinStep
	}
	if c.NoResampleCenter {
		base["no_resample_center"] = true
	}
	return opt.MergeParams(base, c.EngineParams)
}

// blendTACPrior folds cross-campaign knowledge into a TAC ranking: each
// template named in prior gets its boost added to the measured score,
// then the ranking is re-sorted (score descending, name ascending for
// determinism). An empty prior returns ranked untouched, keeping the
// default flow bit-identical.
func blendTACPrior(ranked []tac.TemplateScore, prior map[string]float64) []tac.TemplateScore {
	if len(prior) == 0 {
		return ranked
	}
	out := append([]tac.TemplateScore(nil), ranked...)
	for i := range out {
		if boost, ok := prior[out[i].Name]; ok {
			out[i].Score += boost
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// PhaseStats is one phase's aggregate coverage — one column group of the
// paper's Figs. 3 and 4.
type PhaseStats struct {
	// Name is "before", "sampling", "optimization" or "best".
	Name string
	// Description summarizes the phase's budget, e.g. "200 tests x 100
	// sims each".
	Description string
	// Counts aggregates every simulation of the phase.
	Counts *coverage.Counts
}

// Report is the full outcome of one AS-CDG run.
type Report struct {
	Unit         string
	Target       *neighbors.Target
	TargetEvents []int // the real (uncovered) target events

	// ChosenTemplates are the coarse-grained search winners.
	ChosenTemplates []tac.TemplateScore
	// Candidate is the merged template handed to the Skeletonizer.
	Candidate *template.Template
	// Skeleton is the fine-grained search space.
	Skeleton *skeleton.Skeleton

	Phases []PhaseStats

	// BestWeights/BestTemplate are the harvested optimum.
	BestWeights  []float64
	BestTemplate *template.Template

	// Progress is the optimizer's per-iteration best target value — the
	// paper's Fig. 6 series.
	Progress []opt.IterRecord

	// TotalSims is the number of simulations consumed by the whole run
	// (excluding a pre-built corpus).
	TotalSims uint64
}

// Phase returns the named phase's stats, or nil.
func (r *Report) Phase(name string) *PhaseStats {
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// Flow runs AS-CDG against one unit.
type Flow struct {
	env   *sim.Env
	cfg   Config
	rec   *obs.Recorder // nil when observability is off
	repo  *coverage.Repository
	extra map[string]*template.Template // harvested templates, by name
	round int                           // successfully harvested rounds (names harvested templates)
	ctx   context.Context               // nil = never canceled
	cur   *journal.Cursor               // nil = journaling off
}

// ErrInterrupted reports a run stopped by context cancellation rather
// than a real failure: the flow checkpointed its state (when journaled)
// and can be resumed. All run entry points return an error satisfying
// errors.Is(err, ErrInterrupted) on cancellation, so callers decide
// exit codes without string matching. The underlying ctx.Err() stays in
// the chain, so errors.Is(err, context.Canceled) keeps working too.
var ErrInterrupted = errors.New("core: run interrupted")

// New creates a fully configured flow for the unit: cfg.Repository
// installs a pre-built corpus and cfg.Journal arms the crash-safe
// journal (fresh when the file is missing, resumed when it exists).
// This is the declarative construction path — nothing needs to be
// mutated on the flow before running it.
func New(unit duv.DUV, cfg Config) (*Flow, error) {
	cfg = cfg.withDefaults()
	env := sim.NewEnv(unit, cfg.Seed, cfg.Workers)
	env.SetRecorder(cfg.Obs)
	if cfg.Runner != nil {
		lanes := cfg.RunnerLanes
		if lanes <= 0 {
			lanes = 1
		}
		env.AttachRunner(cfg.Runner, lanes)
	}
	f := &Flow{
		env:   env,
		cfg:   cfg,
		rec:   cfg.Obs,
		repo:  cfg.Repository,
		extra: map[string]*template.Template{},
	}
	if cfg.Journal != "" {
		if err := f.openJournal(cfg.Journal); err != nil {
			env.Close()
			return nil, err
		}
	}
	return f, nil
}

// NewFlow is New for configs without a journal. It panics if cfg
// names a journal that cannot be opened; prefer New when cfg.Journal
// is set.
func NewFlow(unit duv.DUV, cfg Config) *Flow {
	f, err := New(unit, cfg)
	if err != nil {
		panic(fmt.Sprintf("core.NewFlow: %v (use core.New for journaled flows)", err))
	}
	return f
}

// Env exposes the flow's batch environment (for accounting).
func (f *Flow) Env() *sim.Env { return f.env }

// Close releases the environment's worker pool and the journal, if any.
// The flow must not be run afterwards.
func (f *Flow) Close() {
	f.env.Close()
	f.cur.Close()
}

// begin installs the run's context on the flow and its environment
// (nil means never canceled). Entry points call it before any phase.
func (f *Flow) begin(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	f.ctx = ctx
	f.env.SetContext(ctx)
}

// ctxErr is the flow's nil-tolerant cancellation probe.
func (f *Flow) ctxErr() error {
	if f.ctx == nil {
		return nil
	}
	return f.ctx.Err()
}

// finish normalizes an entry point's error: a run that failed because
// its context was canceled is an interruption, not a failure — the
// error is wrapped so errors.Is(err, ErrInterrupted) holds (the
// original cause stays in the chain) and the cancellation metric is
// bumped. Errors from live runs pass through untouched.
func (f *Flow) finish(err error) error {
	if err == nil || f.ctxErr() == nil || errors.Is(err, ErrInterrupted) {
		return err
	}
	f.rec.Counter("flow.cancellations").Inc()
	return fmt.Errorf("%w: %w", ErrInterrupted, err)
}

// Repository returns the flow's corpus (nil until built or configured).
func (f *Flow) Repository() *coverage.Repository { return f.repo }

// RunFamily is the common entry point for buffer-utilization families:
// the real targets are the family's uncovered events, and the
// approximated target is the decay-weighted family (decay 1 = the
// paper's plain family sum). ctx aborts the run between simulations
// with an ErrInterrupted-wrapped error, leaving any journal consistent
// for resumption.
func (f *Flow) RunFamily(ctx context.Context, family string, decay float64) (*Report, error) {
	report, err := f.runFamily(ctx, family, decay)
	return report, f.finish(err)
}

func (f *Flow) runFamily(ctx context.Context, family string, decay float64) (*Report, error) {
	f.begin(ctx)
	model := f.env.Unit().Model()
	famIDs, ok := model.Family(family)
	if !ok {
		return nil, fmt.Errorf("core: unit %q has no family %q", f.env.Unit().Name(), family)
	}
	if err := f.ensureCorpus(); err != nil {
		return nil, err
	}
	// Real targets: the family events still uncovered after the corpus.
	ph := f.rec.PhaseStart("neighbors", map[string]any{"family": family, "decay": decay})
	var targets []int
	for _, id := range famIDs {
		if f.repo.Total().Hits(id) == 0 {
			targets = append(targets, id)
		}
	}
	if len(targets) == 0 {
		// Everything already covered: aim at the deepest (last) member.
		targets = famIDs[len(famIDs)-1:]
	}
	ws, err := neighbors.Ordinal(model, family, targets, decay)
	ph.End(map[string]any{"targets": len(targets), "approx_events": len(ws)})
	if err != nil {
		return nil, err
	}
	return f.Run(ctx, neighbors.NewTarget(ws), targets)
}

// RunCross is the entry point for cross-product coverage (the paper's
// IFU experiment): the targets are the cross's uncovered events, and the
// approximated target spans the whole cross product uniformly. ctx
// cancels as in RunFamily.
func (f *Flow) RunCross(ctx context.Context, crossName string) (*Report, error) {
	report, err := f.runCross(ctx, crossName)
	return report, f.finish(err)
}

func (f *Flow) runCross(ctx context.Context, crossName string) (*Report, error) {
	f.begin(ctx)
	model := f.env.Unit().Model()
	cp, ok := model.Cross(crossName)
	if !ok {
		return nil, fmt.Errorf("core: unit %q has no cross product %q", f.env.Unit().Name(), crossName)
	}
	if err := f.ensureCorpus(); err != nil {
		return nil, err
	}
	ph := f.rec.PhaseStart("neighbors", map[string]any{"cross": crossName})
	ids, err := model.IDs(cp.EventNames())
	if err != nil {
		ph.End(nil)
		return nil, err
	}
	var targets []int
	for _, id := range ids {
		if f.repo.Total().Hits(id) == 0 {
			targets = append(targets, id)
		}
	}
	if len(targets) == 0 {
		targets = ids
	}
	ph.End(map[string]any{"targets": len(targets), "approx_events": len(ids)})
	return f.Run(ctx, neighbors.Uniform(ids), targets)
}

// RunFamilyRefined repeats RunFamily up to rounds times, implementing
// the paper's closing observation in Section IV-E: "Once there is good
// evidence for the target event, we can repeat the process." Each round
// re-derives the real targets from the updated repository (events the
// previous round newly covered drop out), and the previous round's
// harvested template competes in the coarse-grained search, so the
// skeleton of round k+1 starts from the best knowledge of round k. The
// loop stops early once every family event has evidence.
//
// The loop is driven by the flow's harvested-round counter rather than
// a local one, so a resumed flow replays its completed rounds and then
// runs only the remainder of the campaign. ctx cancels as in RunFamily;
// completed rounds' reports are returned alongside the error.
func (f *Flow) RunFamilyRefined(ctx context.Context, family string, decay float64, rounds int) ([]*Report, error) {
	if rounds <= 0 {
		rounds = 1
	}
	var reports []*Report
	for f.round < rounds {
		if f.round > 0 && f.familyCovered(family) {
			break
		}
		report, err := f.RunFamily(ctx, family, decay)
		if err != nil {
			return reports, err
		}
		reports = append(reports, report)
	}
	return reports, nil
}

// familyCovered reports whether every event of the family has evidence
// in the repository.
func (f *Flow) familyCovered(family string) bool {
	famIDs, _ := f.env.Unit().Model().Family(family)
	for _, id := range famIDs {
		if f.repo.Total().Hits(id) == 0 {
			return false
		}
	}
	return true
}

func (f *Flow) ensureCorpus() error {
	if f.repo != nil {
		return nil
	}
	ph := f.rec.PhaseStart("corpus", map[string]any{
		"sims_per_template": f.cfg.CorpusSimsPerTemplate,
	})
	repo, err := f.env.BuildCorpusJournaled(f.cfg.CorpusSimsPerTemplate, f.cur)
	if err != nil {
		ph.End(nil)
		return err
	}
	f.repo = repo
	ph.End(map[string]any{"sims": f.repo.Sims()})
	return nil
}

// Run executes the flow for an approximated target and the list of
// real target events, with cancellation and journal replay. With a
// journal armed (Config.Journal), completed phases replay from the
// record stream without simulating and the run re-enters live execution
// mid-phase; either way the Report is bit-identical to an uninterrupted
// unjournaled run. On cancellation the flow stops between simulations,
// never journals post-cancellation state, and returns an
// ErrInterrupted-wrapped error — the journal then resumes from the last
// completed record.
func (f *Flow) Run(ctx context.Context, target *neighbors.Target, targetEvents []int) (*Report, error) {
	f.begin(ctx)
	report, err := f.run(target, targetEvents)
	return report, f.finish(err)
}

func (f *Flow) run(target *neighbors.Target, targetEvents []int) (*Report, error) {
	if target == nil || target.Len() == 0 {
		return nil, fmt.Errorf("core: empty approximated target")
	}
	if err := f.ensureCorpus(); err != nil {
		return nil, err
	}
	if err := f.syncRunStart(target, targetEvents); err != nil {
		return nil, err
	}
	model := f.env.Unit().Model()
	simsAtStart := f.env.Simulations()
	report := &Report{
		Unit:         f.env.Unit().Name(),
		Target:       target,
		TargetEvents: append([]int(nil), targetEvents...),
	}
	report.Phases = append(report.Phases, PhaseStats{
		Name:        "before",
		Description: fmt.Sprintf("%d sims", f.repo.Sims()),
		Counts:      f.repo.Total().Clone(),
	})

	// Coarse-grained search (paper Section IV-B). The repository may
	// contain statistics for templates whose bodies the flow does not
	// have (e.g. templates harvested by earlier runs against a shared
	// corpus); only templates with known bodies can seed the skeleton,
	// so rank all templates and keep the best TopTemplates known ones.
	phTac := f.rec.PhaseStart("tac", map[string]any{"approx_events": target.Len()})
	stats := tac.New(f.repo)
	ranked, err := stats.BestTemplates(target.Events(), target.Weights(), 0)
	if err != nil {
		phTac.End(nil)
		return nil, err
	}
	ranked = blendTACPrior(ranked, f.cfg.TACPrior)
	byName := map[string]*template.Template{}
	for _, t := range f.env.Unit().BaseTemplates() {
		byName[t.Name] = t
	}
	for name, t := range f.extra {
		byName[name] = t
	}
	var best []tac.TemplateScore
	var chosen []*template.Template
	for _, ts := range ranked {
		t, ok := byName[ts.Name]
		if !ok {
			continue
		}
		best = append(best, ts)
		chosen = append(chosen, t)
		if len(best) == f.cfg.TopTemplates {
			break
		}
	}
	phTac.End(map[string]any{"chosen": len(best)})
	if len(best) == 0 || best[0].Score == 0 {
		return nil, fmt.Errorf("core: no existing template shows evidence for the approximated target; widen the neighborhood")
	}
	report.ChosenTemplates = best
	candidate := MergeTemplates(f.env.Unit().Name()+"_cdg_candidate", chosen)
	report.Candidate = candidate

	// Skeletonize (paper Section IV-C).
	phSkel := f.rec.PhaseStart("skeleton", map[string]any{"candidate": candidate.Name})
	skel, err := skeleton.Skeletonize(candidate, skeleton.Options{
		IncludeZeroWeights: f.cfg.IncludeZeroWeights,
		Subranges:          f.cfg.Subranges,
		Mode:               f.cfg.SubrangeMode,
	})
	if err != nil {
		phSkel.End(nil)
		return nil, err
	}
	report.Skeleton = skel
	phSkel.End(map[string]any{"dim": skel.Dim()})

	r := rng.New(f.cfg.Seed).SplitString("cdg-runner")

	// Random sample phase (paper Section IV-D).
	phSample := f.rec.PhaseStart("sampling", map[string]any{
		"templates": f.cfg.SampleTemplates, "sims_each": f.cfg.SampleSims,
	})
	samples, samplePhase, err := f.samplePhase(skel, r.SplitString("sample"))
	if err != nil {
		phSample.End(nil)
		return nil, err
	}
	bestX, bestStart := bestSample(samples, target)
	phSample.End(map[string]any{"best_score": bestStart})
	report.Phases = append(report.Phases, PhaseStats{
		Name:        "sampling",
		Description: fmt.Sprintf("%d tests x %d sims each", f.cfg.SampleTemplates, f.cfg.SampleSims),
		Counts:      samplePhase,
	})

	// Optimization phase (paper Section IV-E, Algorithm 1). The n
	// stencil probes of an iteration are independent, so they are
	// submitted as concurrent jobs on the environment's scheduler; batch
	// seeds are assigned in point order, keeping the run bit-identical
	// to sequential evaluation.
	phOpt := f.rec.PhaseStart("optimization", map[string]any{
		"iterations": f.cfg.OptIterations, "directions": f.cfg.OptDirections,
		"sims_per_point": f.cfg.OptSims, "start_score": bestStart,
	})
	// Replay checkpointed iterations: the last opt_iter record carries
	// the engine's complete resumable state and the cumulative phase
	// aggregate, so the engine re-enters at the following iteration.
	engineName := f.cfg.engineName()
	optPhase := coverage.NewCountsFor(model)
	var optResume json.RawMessage
	for {
		var rec optIterRec
		ok, err := f.cur.Take("opt_iter", &rec)
		if err != nil {
			phOpt.End(nil)
			return nil, err
		}
		if !ok {
			break
		}
		if rec.Engine != engineName {
			phOpt.End(nil)
			return nil, fmt.Errorf("core: journal opt_iter record is from engine %q, flow uses %q", rec.Engine, engineName)
		}
		if len(rec.PhaseHits) != model.Size() {
			phOpt.End(nil)
			return nil, fmt.Errorf("core: journal opt_iter record has %d events, want %d", len(rec.PhaseHits), model.Size())
		}
		optPhase = coverage.CountsFromRaw(rec.PhaseHits, rec.PhaseSims)
		optResume = rec.State
		f.env.RestoreCounters(rec.Batches, rec.EnvSims)
	}
	var batchErr error
	checkpoint := func(state json.RawMessage) error {
		// An iteration evaluated on a failed or canceled batch must not
		// reach the journal: its values are not real simulation results.
		if batchErr != nil {
			return batchErr
		}
		if err := f.ctxErr(); err != nil {
			return err
		}
		hits, sims := optPhase.Raw()
		return f.cur.Append("opt_iter", optIterRec{
			Engine: engineName, State: state, PhaseHits: hits, PhaseSims: sims,
			Batches: f.env.Batches(), EnvSims: f.env.Simulations(),
		})
	}
	params, err := f.cfg.engineParams()
	if err != nil {
		phOpt.End(nil)
		return nil, err
	}
	eng, err := opt.New(engineName, opt.EngineConfig{
		X0:          bestX,
		Lo:          0,
		Hi:          float64(skel.MaxWeight()),
		TargetValue: f.cfg.TargetValue,
		RNG:         r.SplitString("optimize"),
		Recorder:    f.rec,
		Prior:       f.cfg.Prior,
	}, params)
	if err != nil {
		phOpt.End(nil)
		return nil, err
	}
	res, err := opt.Drive(eng, opt.DriveOptions{
		Batch:      f.batchObjective(skel, target, optPhase, &batchErr),
		BatchSize:  f.cfg.OptDirections,
		Context:    f.ctx,
		Checkpoint: checkpoint,
		Resume:     optResume,
	})
	if err == nil && batchErr != nil {
		err = batchErr
	}
	if err != nil {
		phOpt.End(nil)
		return nil, err
	}
	phOpt.End(map[string]any{"best": res.Value, "evals": res.Evals})
	report.Progress = res.History
	report.Phases = append(report.Phases, PhaseStats{
		Name: "optimization",
		Description: fmt.Sprintf("%d iterations x %d tests x %d sims",
			len(res.History), f.cfg.OptDirections+1, f.cfg.OptSims),
		Counts: optPhase,
	})

	// Harvest (paper Section IV-F): measure the best template standalone.
	// The round counter advances only after the phase succeeds, so a
	// failed harvest neither skips a round number nor leaves the report
	// and repository half-updated.
	report.BestWeights = res.X
	name := fmt.Sprintf("%s_cdg_best_%d", f.env.Unit().Name(), f.round+1)
	phHarvest := f.rec.PhaseStart("harvest", map[string]any{"sims": f.cfg.BestSims})
	bestTemplate, err := skel.Instantiate(name, res.X)
	if err != nil {
		phHarvest.End(nil)
		return nil, err
	}
	report.BestTemplate = bestTemplate
	bestCounts, err := f.harvestCounts(bestTemplate)
	if err != nil {
		phHarvest.End(nil)
		return nil, err
	}
	phHarvest.End(map[string]any{"template": bestTemplate.Name})
	report.Phases = append(report.Phases, PhaseStats{
		Name:        "best",
		Description: fmt.Sprintf("%d sims", f.cfg.BestSims),
		Counts:      bestCounts,
	})

	// The harvested template joins the regression suite: record its runs
	// in the repository and keep its body so a refinement round's
	// coarse-grained search may select it.
	f.repo.RecordCounts(bestTemplate.Name, bestCounts)
	f.extra[bestTemplate.Name] = bestTemplate
	f.round++

	report.TotalSims = f.env.Simulations() - simsAtStart
	if err := f.syncRunDone(report.TotalSims); err != nil {
		return nil, err
	}
	return report, nil
}

// harvestCounts measures the harvested template standalone — from the
// journal when replaying, live (and journaled) otherwise.
func (f *Flow) harvestCounts(tmpl *template.Template) (*coverage.Counts, error) {
	var rec harvestRec
	ok, err := f.cur.Take("harvest", &rec)
	if err != nil {
		return nil, err
	}
	if ok {
		if rec.Name != tmpl.Name || len(rec.Hits) != f.env.Unit().Model().Size() {
			return nil, fmt.Errorf("core: journal harvest record %q does not match template %q", rec.Name, tmpl.Name)
		}
		f.env.RestoreCounters(rec.Batches, rec.EnvSims)
		return coverage.CountsFromRaw(rec.Hits, rec.Sims), nil
	}
	job, err := f.env.Submit(tmpl, f.cfg.BestSims)
	if err != nil {
		return nil, err
	}
	batches, envSims := f.env.Batches(), f.env.Simulations()
	counts := job.Wait()
	if err := f.ctxErr(); err != nil {
		return nil, err
	}
	hits, sims := counts.Raw()
	if err := f.cur.Append("harvest", harvestRec{
		Name: tmpl.Name, Hits: hits, Sims: sims, Batches: batches, EnvSims: envSims,
	}); err != nil {
		return nil, err
	}
	return counts, nil
}

// syncRunStart validates (replay) or records (live) a run's opening
// record: the real targets and the approximated target are pure
// functions of the repository, so a mismatch means the journal belongs
// to a different campaign.
func (f *Flow) syncRunStart(target *neighbors.Target, targetEvents []int) error {
	want := runStartRec{
		Targets:       append([]int{}, targetEvents...),
		ApproxEvents:  target.Events(),
		ApproxWeights: target.Weights(),
	}
	var got runStartRec
	ok, err := f.cur.Take("run_start", &got)
	if err != nil {
		return err
	}
	if !ok {
		return f.cur.Append("run_start", want)
	}
	if !intsEqual(got.Targets, want.Targets) || !intsEqual(got.ApproxEvents, want.ApproxEvents) ||
		!floatsEqual(got.ApproxWeights, want.ApproxWeights) {
		return fmt.Errorf("core: journal run_start record does not match this run's targets (journal belongs to a different campaign)")
	}
	return nil
}

// syncRunDone validates (replay) or records (live) a run's closing
// integrity check.
func (f *Flow) syncRunDone(totalSims uint64) error {
	var got runDoneRec
	ok, err := f.cur.Take("run_done", &got)
	if err != nil {
		return err
	}
	if !ok {
		return f.cur.Append("run_done", runDoneRec{Round: f.round, TotalSims: totalSims})
	}
	if got.Round != f.round || got.TotalSims != totalSims {
		return fmt.Errorf("core: journal run_done record (round %d, %d sims) does not match this run (round %d, %d sims)",
			got.Round, got.TotalSims, f.round, totalSims)
	}
	return nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// batchObjective builds the optimizer's objective: every point becomes a
// (template, OptSims) job on the environment's scheduler. Points are
// submitted in order — so batch seeds, and therefore results, match a
// sequential evaluation exactly — and waited on in order, keeping the
// phase aggregate's merge order deterministic too. A failure (closed or
// canceled environment) is parked in errOut and zeros are returned; the
// optimizer's checkpoint hook surfaces the error and aborts the run
// before the poisoned values can be journaled or acted on.
func (f *Flow) batchObjective(skel *skeleton.Skeleton, target *neighbors.Target, phase *coverage.Counts, errOut *error) opt.BatchObjective {
	return func(points [][]float64) []float64 {
		vals := make([]float64, len(points))
		if *errOut != nil {
			return vals
		}
		jobs := make([]*sim.Job, len(points))
		for i, x := range points {
			tmpl, err := skel.Instantiate("cand", x)
			if err != nil {
				*errOut = err
				return vals
			}
			job, err := f.env.Submit(tmpl, f.cfg.OptSims)
			if err != nil {
				*errOut = err
				return vals
			}
			jobs[i] = job
		}
		for i, job := range jobs {
			counts := job.Wait()
			if err := f.ctxErr(); err != nil {
				*errOut = err
				return vals
			}
			phase.Merge(counts)
			vals[i] = target.Score(counts)
		}
		return vals
	}
}

// sample is one evaluated point of the random-sample phase.
type sample struct {
	x      []float64
	counts *coverage.Counts
}

// samplePhase runs the random-sample phase: SampleTemplates uniform
// points in the skeleton's weight box, SampleSims sims each. All points
// are submitted up front and simulated concurrently on the scheduler
// (the coarse-phase sweep); submission order fixes the batch seeds, so
// the result is identical to running them one at a time. It returns the
// individual samples (so several targets can each pick their own best
// starting point from the same simulations) and the phase aggregate.
func (f *Flow) samplePhase(skel *skeleton.Skeleton, r *rng.RNG) ([]sample, *coverage.Counts, error) {
	model := f.env.Unit().Model()
	aggregate := coverage.NewCountsFor(model)
	n := f.cfg.SampleTemplates
	samples := make([]sample, 0, n)
	// Replay prefix: weights are still drawn from the RNG (the stream
	// must advance exactly as the live run's did); the counts come from
	// the journal and the environment's seeding counters are restored so
	// the live remainder draws the original batch seeds.
	for len(samples) < n {
		var rec sampleRec
		ok, err := f.cur.Take("sample", &rec)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		if rec.I != len(samples) || len(rec.Hits) != model.Size() {
			return nil, nil, fmt.Errorf("core: journal sample record %d does not match phase index %d", rec.I, len(samples))
		}
		x := skel.RandomWeights(r)
		counts := coverage.CountsFromRaw(rec.Hits, rec.Sims)
		aggregate.Merge(counts)
		samples = append(samples, sample{x: x, counts: counts})
		f.env.RestoreCounters(rec.Batches, rec.EnvSims)
	}
	first := len(samples)
	if first == n {
		return samples, aggregate, nil
	}
	type pending struct {
		job              *sim.Job
		batches, envSims uint64
	}
	jobs := make([]pending, 0, n-first)
	for i := first; i < n; i++ {
		x := skel.RandomWeights(r)
		tmpl, err := skel.Instantiate(fmt.Sprintf("sample_%03d", i), x)
		if err != nil {
			return nil, nil, err
		}
		job, err := f.env.Submit(tmpl, f.cfg.SampleSims)
		if err != nil {
			return nil, nil, err
		}
		jobs = append(jobs, pending{job, f.env.Batches(), f.env.Simulations()})
		samples = append(samples, sample{x: x})
	}
	for k, p := range jobs {
		counts := p.job.Wait()
		if err := f.ctxErr(); err != nil {
			return nil, nil, err
		}
		aggregate.Merge(counts)
		samples[first+k].counts = counts
		hits, sims := counts.Raw()
		if err := f.cur.Append("sample", sampleRec{
			I: first + k, Hits: hits, Sims: sims, Batches: p.batches, EnvSims: p.envSims,
		}); err != nil {
			return nil, nil, err
		}
	}
	return samples, aggregate, nil
}

// bestSample returns the sampled point with the highest target score,
// and that score.
func bestSample(samples []sample, target *neighbors.Target) ([]float64, float64) {
	best := samples[0].x
	bestScore := target.Score(samples[0].counts)
	for _, s := range samples[1:] {
		if score := target.Score(s.counts); score > bestScore {
			bestScore = score
			best = s.x
		}
	}
	return best, bestScore
}

// MergeTemplates unions the parameters of the given templates (highest
// TAC rank first) into one candidate template. For weight parameters
// appearing in several templates, entries are unioned and each entry
// keeps its maximum weight; range parameters merge to the widest span.
// If the same name appears as different parameter kinds, the
// higher-ranked template's kind wins. This realizes the paper's "the
// parameters in these test-templates are ... the ones used in the
// fine-grained search" with a concrete, deterministic policy.
func MergeTemplates(name string, ts []*template.Template) *template.Template {
	merged := template.New(name)
	for _, t := range ts {
		for _, p := range t.Params {
			existing, ok := merged.Param(p.ParamName())
			if !ok {
				merged.Params = append(merged.Params, p.CloneParam())
				continue
			}
			switch have := existing.(type) {
			case *template.WeightParam:
				add, ok := p.(*template.WeightParam)
				if !ok {
					continue // kind conflict: first (higher-ranked) wins
				}
				for _, e := range add.Entries {
					if cur, ok := have.Entry(e.Label()); ok {
						if e.Weight > cur.Weight {
							for i := range have.Entries {
								if have.Entries[i].Label() == e.Label() {
									have.Entries[i].Weight = e.Weight
								}
							}
						}
						continue
					}
					have.Entries = append(have.Entries, e)
				}
			case *template.RangeParam:
				add, ok := p.(*template.RangeParam)
				if !ok {
					continue
				}
				if add.Lo < have.Lo {
					have.Lo = add.Lo
				}
				if add.Hi > have.Hi {
					have.Hi = add.Hi
				}
			}
		}
	}
	return merged
}
