package core

import (
	"context"
	"testing"

	"repro/internal/duv/l3cache"
)

func TestRunPerEventSharedBasics(t *testing.T) {
	flow := NewFlow(l3cache.New(), smallConfig(21))
	reports, err := flow.RunPerEventShared(context.Background(), l3cache.FamilyName, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 2 {
		t.Fatalf("expected several per-event reports, got %d", len(reports))
	}
	names := map[string]bool{}
	for _, r := range reports {
		if len(r.TargetEvents) != 1 {
			t.Fatalf("per-event report has %d targets", len(r.TargetEvents))
		}
		if r.BestTemplate == nil {
			t.Fatal("missing best template")
		}
		if names[r.BestTemplate.Name] {
			t.Fatalf("duplicate harvested name %q", r.BestTemplate.Name)
		}
		names[r.BestTemplate.Name] = true
		if len(r.Phases) != 4 {
			t.Fatalf("phases = %d", len(r.Phases))
		}
		if err := r.BestTemplate.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// The shared sampling aggregate must literally be shared.
	if reports[0].Phase("sampling").Counts != reports[1].Phase("sampling").Counts {
		t.Fatal("sampling phase not shared")
	}
}

func TestRunPerEventSharedSavesSimulations(t *testing.T) {
	cfg := smallConfig(22)

	shared := NewFlow(l3cache.New(), cfg)
	sharedReports, err := shared.RunPerEventShared(context.Background(), l3cache.FamilyName, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	sharedTotal := shared.Env().Simulations()

	// Independent runs: one full RunFamily per target, each rebuilding
	// sampling (corpus shared via Config.Repository to isolate the
	// sampling saving).
	indepCfg := cfg
	indepCfg.Repository = shared.Repository() // corpus for free
	indep := NewFlow(l3cache.New(), indepCfg)
	base := indep.Env().Simulations()
	k := len(sharedReports)
	for i := 0; i < k; i++ {
		if _, err := indep.RunFamily(context.Background(), l3cache.FamilyName, 0.4); err != nil {
			t.Fatal(err)
		}
	}
	indepTotal := indep.Env().Simulations() - base

	// Shared flow pays sampling once; independent pays it k times. The
	// shared total includes the corpus, so compare sampling counts
	// directly.
	samplingCost := uint64(cfg.SampleTemplates * cfg.SampleSims)
	if sharedTotal > uint64(cfg.CorpusSimsPerTemplate*6)+samplingCost+indepTotal {
		t.Fatalf("shared flow did not save simulations: shared=%d indep=%d", sharedTotal, indepTotal)
	}
	t.Logf("shared=%d sims for %d targets; independent=%d sims (excl. corpus)", sharedTotal, k, indepTotal)
}

func TestRunPerEventSharedErrors(t *testing.T) {
	flow := NewFlow(l3cache.New(), smallConfig(23))
	if _, err := flow.RunPerEventShared(context.Background(), "no_such_family", 0.4); err == nil {
		t.Fatal("unknown family should fail")
	}
}

func TestRunPerEventSharedAccounting(t *testing.T) {
	flow := NewFlow(l3cache.New(), smallConfig(24))
	reports, err := flow.RunPerEventShared(context.Background(), l3cache.FamilyName, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, r := range reports {
		if r.TotalSims == 0 {
			t.Fatal("per-target accounting missing")
		}
		sum += r.TotalSims
	}
	// The per-target totals (own spend + shared share) must not exceed
	// the environment's grand total.
	if sum > flow.Env().Simulations() {
		t.Fatalf("per-target sims sum %d exceeds environment total %d", sum, flow.Env().Simulations())
	}
}
