package core

import (
	"context"

	"repro/internal/coverage"
	"repro/internal/neighbors"
)

// This file holds the pre-context-first API as thin shims, kept so
// embedders written against earlier revisions keep compiling. New code
// takes the context-first entry points (Run, RunFamily, RunCross,
// RunFamilyRefined, RunEvents) and builds flows declaratively with New
// (Config.Repository, Config.Journal). The staticcheck CI step gates
// any use of these shims inside cmd/ and internal/.

// RunContext is the former name of Run.
//
// Deprecated: use Run.
func (f *Flow) RunContext(ctx context.Context, target *neighbors.Target, targetEvents []int) (*Report, error) {
	return f.Run(ctx, target, targetEvents)
}

// SetRepository installs a pre-built "Before CDG" corpus after
// construction.
//
// Deprecated: set Config.Repository and build the flow with New.
func (f *Flow) SetRepository(repo *coverage.Repository) { f.repo = repo }

// StartJournal creates a fresh journal at path and arms the flow to
// checkpoint into it. Call before the first Run*.
//
// Deprecated: set Config.Journal and build the flow with New, which
// also resumes an existing journal automatically.
func (f *Flow) StartJournal(path string) error { return f.startJournal(path) }

// Resume recovers the journal at path and arms the flow to replay it.
//
// Deprecated: set Config.Journal and build the flow with New, which
// resumes an existing journal automatically.
func (f *Flow) Resume(path string) error { return f.resumeJournal(path) }

// RunFamilyContext is the former name of RunFamily.
//
// Deprecated: use RunFamily.
func (f *Flow) RunFamilyContext(ctx context.Context, family string, decay float64) (*Report, error) {
	return f.RunFamily(ctx, family, decay)
}

// RunCrossContext is the former name of RunCross.
//
// Deprecated: use RunCross.
func (f *Flow) RunCrossContext(ctx context.Context, crossName string) (*Report, error) {
	return f.RunCross(ctx, crossName)
}

// RunFamilyRefinedContext is the former name of RunFamilyRefined.
//
// Deprecated: use RunFamilyRefined.
func (f *Flow) RunFamilyRefinedContext(ctx context.Context, family string, decay float64, rounds int) ([]*Report, error) {
	return f.RunFamilyRefined(ctx, family, decay, rounds)
}

// RunEventsContext is the former name of RunEvents.
//
// Deprecated: use RunEvents.
func (f *Flow) RunEventsContext(ctx context.Context, eventNames []string, minSim float64) (*Report, error) {
	return f.RunEvents(ctx, eventNames, minSim)
}
