package core

import (
	"strings"
	"testing"

	"repro/internal/opt"
)

func TestFormatProgressSingleIteration(t *testing.T) {
	r := &Report{Unit: "iounit", Progress: []opt.IterRecord{
		{Iter: 1, Best: 0.75, Moved: true},
	}}
	out := r.FormatProgress()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 { // header + one iteration
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	// A single iteration is its own maximum: full 40-char sparkline.
	if !strings.Contains(lines[1], strings.Repeat("#", 40)) {
		t.Fatalf("single iteration must render a full bar:\n%s", out)
	}
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("moved iteration must be starred:\n%s", out)
	}
}

func TestFormatProgressAllEqualValues(t *testing.T) {
	r := &Report{Unit: "l3cache", Progress: []opt.IterRecord{
		{Iter: 1, Best: 0.5}, {Iter: 2, Best: 0.5}, {Iter: 3, Best: 0.5},
	}}
	out := r.FormatProgress()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 iterations:\n%s", len(lines), out)
	}
	full := strings.Repeat("#", 40)
	for _, line := range lines[1:] {
		if !strings.HasSuffix(line, "|"+full) {
			t.Fatalf("equal values must all render full bars:\n%s", out)
		}
	}
}

func TestFormatProgressAllZero(t *testing.T) {
	r := &Report{Unit: "ifu", Progress: []opt.IterRecord{
		{Iter: 1, Best: 0}, {Iter: 2, Best: 0},
	}}
	out := r.FormatProgress()
	if strings.Contains(out, "#") {
		t.Fatalf("zero values must render empty bars:\n%s", out)
	}
}

func TestFormatProgressNegativeValuesDoNotPanic(t *testing.T) {
	// A below-zero iteration (possible for custom targets) must render
	// an empty bar, not panic strings.Repeat with a negative count.
	r := &Report{Unit: "noc", Progress: []opt.IterRecord{
		{Iter: 1, Best: 0.4}, {Iter: 2, Best: -0.2},
	}}
	out := r.FormatProgress()
	if !strings.Contains(out, "-0.2") {
		t.Fatalf("negative value missing from output:\n%s", out)
	}
}
