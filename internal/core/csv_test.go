package core

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"repro/internal/duv/iounit"
)

func csvReport(t *testing.T) (*Report, *Flow) {
	t.Helper()
	flow := NewFlow(iounit.New(), smallConfig(41))
	report, err := flow.RunFamily(context.Background(), iounit.FamilyName, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return report, flow
}

func TestFamilyCSV(t *testing.T) {
	report, flow := csvReport(t)
	m := flow.Env().Unit().Model()
	csv, err := report.FamilyCSV(m, iounit.FamilyName)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 7 { // header + 6 family events
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "event" || len(header) != 1+2*len(report.Phases) {
		t.Fatalf("header = %v", header)
	}
	row := strings.Split(lines[1], ",")
	if row[0] != "crc_004" {
		t.Fatalf("first row = %v", row)
	}
	if _, err := strconv.ParseUint(row[1], 10, 64); err != nil {
		t.Fatalf("hits column not numeric: %v", row)
	}
	if rate, err := strconv.ParseFloat(row[2], 64); err != nil || rate < 0 || rate > 1 {
		t.Fatalf("rate column invalid: %v", row)
	}
	if _, err := report.FamilyCSV(m, "nope"); err == nil {
		t.Fatal("unknown family should fail")
	}
}

func TestStatusCSV(t *testing.T) {
	report, flow := csvReport(t)
	m := flow.Env().Unit().Model()
	fam, _ := m.Family(iounit.FamilyName)
	csv := report.StatusCSV(fam)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(report.Phases) {
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "phase,never,lightly,well" {
		t.Fatalf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			t.Fatalf("row = %q", line)
		}
		total := 0
		for _, p := range parts[1:] {
			n, err := strconv.Atoi(p)
			if err != nil {
				t.Fatalf("non-numeric count in %q", line)
			}
			total += n
		}
		if total != len(fam) {
			t.Fatalf("status counts sum to %d, want %d: %q", total, len(fam), line)
		}
	}
}

func TestProgressCSV(t *testing.T) {
	report, _ := csvReport(t)
	csv := report.ProgressCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(report.Progress) {
		t.Fatalf("lines = %d, progress = %d", len(lines), len(report.Progress))
	}
	if lines[0] != "iteration,best,step,moved,evals" {
		t.Fatalf("header = %q", lines[0])
	}
	row := strings.Split(lines[1], ",")
	if row[0] != "1" {
		t.Fatalf("first iteration row = %v", row)
	}
}
