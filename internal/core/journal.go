// Flow journaling: the crash-safe checkpoint/resume layer (DESIGN.md
// §10). A journaled flow appends one record per unit of paid-for
// simulation — corpus template aggregates, per-sample aggregates,
// optimizer iteration states, harvest results — plus structural records
// (header, run boundaries) that reject a journal belonging to a
// different run. Replay is transparent: a flow constructed with
// Config.Journal naming an existing file consumes the journal's
// history from the normal entry points (Run and friends) instead of
// simulating, then switches to live execution mid-phase, producing a
// Report bit-identical to an uninterrupted run.
package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"

	"repro/internal/journal"
	"repro/internal/opt"
)

// flowHeader is the journal's first record. Resume compares it
// field-for-field against the resuming flow: a journal written under a
// different unit, seed, coverage model, or any result-relevant config
// knob must not replay into this run. Throughput-only knobs (Workers,
// Runner, RunnerLanes, Obs) are deliberately excluded — the flow is
// bit-identical across them, so a run may resume on different hardware.
// Plumbing fields (Journal itself, Repository — whose induced targets
// the run_start record validates instead) are excluded too.
type flowHeader struct {
	Kind    string `json:"kind"`
	Unit    string `json:"unit"`
	Seed    uint64 `json:"seed"`
	Events  int    `json:"events"`
	CfgHash uint64 `json:"cfg_hash"`
}

// cfgHash digests the result-relevant Config fields.
func cfgHash(c Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%t|%d|%d|%d|%d|%d|%v|%v|%t|%v|%d",
		c.Seed, c.CorpusSimsPerTemplate, c.TopTemplates,
		c.Subranges, c.SubrangeMode, c.IncludeZeroWeights,
		c.SampleTemplates, c.SampleSims,
		c.OptIterations, c.OptDirections, c.OptSims,
		c.InitialStep, c.MinStep, c.NoResampleCenter, c.TargetValue,
		c.BestSims)
	// Engine selection, engine params, and the knowledge priors all steer
	// proposals, so a journal written under different ones must not
	// replay. The default engine with no extras hashes the same as before
	// this field existed, keeping old journals resumable.
	if name := c.engineName(); name != opt.DefaultEngine || len(c.EngineParams) > 0 ||
		len(c.Prior) > 0 || len(c.TACPrior) > 0 {
		fmt.Fprintf(h, "|%s|%s", name, c.EngineParams)
		for _, p := range c.Prior {
			fmt.Fprintf(h, "|%v=%v", p.X, p.Value)
		}
		names := make([]string, 0, len(c.TACPrior))
		for n := range c.TACPrior {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(h, "|%s=%v", n, c.TACPrior[n])
		}
	}
	return h.Sum64()
}

func (f *Flow) header() flowHeader {
	return flowHeader{
		Kind:    "flow",
		Unit:    f.env.Unit().Name(),
		Seed:    f.cfg.Seed,
		Events:  f.env.Unit().Model().Size(),
		CfgHash: cfgHash(f.cfg),
	}
}

// runStartRec opens one Run's record group. The targets and the
// approximated target are recomputed on replay (they are pure functions
// of the repository) and validated against the record, catching a
// journal that belongs to a different campaign before any divergence.
type runStartRec struct {
	Targets       []int     `json:"targets"`
	ApproxEvents  []int     `json:"approx_events"`
	ApproxWeights []float64 `json:"approx_weights"`
}

// sampleRec is one random-sample point's aggregate, with the
// environment's seeding counters captured right after the sample's
// batch was submitted (replay restores them so later submissions draw
// the original seeds).
type sampleRec struct {
	I       int      `json:"i"`
	Hits    []uint64 `json:"hits"`
	Sims    uint64   `json:"sims"`
	Batches uint64   `json:"batches"`
	EnvSims uint64   `json:"env_sims"`
}

// optIterRec checkpoints one optimizer iteration: the engine's opaque
// resumable state plus the cumulative optimization-phase aggregate and
// the environment counters after the iteration's submissions. Replay
// verifies Engine against the flow's configured engine — a checkpoint
// is only meaningful to the engine that wrote it.
type optIterRec struct {
	Engine    string          `json:"engine"`
	State     json.RawMessage `json:"state"`
	PhaseHits []uint64        `json:"phase_hits"`
	PhaseSims uint64          `json:"phase_sims"`
	Batches   uint64          `json:"batches"`
	EnvSims   uint64          `json:"env_sims"`
}

// harvestRec is the harvested template's standalone evaluation.
type harvestRec struct {
	Name    string   `json:"name"`
	Hits    []uint64 `json:"hits"`
	Sims    uint64   `json:"sims"`
	Batches uint64   `json:"batches"`
	EnvSims uint64   `json:"env_sims"`
}

// runDoneRec closes a Run's record group; replay validates the round
// counter and simulation total as an end-to-end integrity check.
type runDoneRec struct {
	Round     int    `json:"round"`
	TotalSims uint64 `json:"total_sims"`
}

// openJournal arms the flow's journal at path: a missing or empty file
// starts fresh, an existing one is recovered and replayed. This is the
// construction path behind Config.Journal — a daemon that re-opens its
// campaign directories after a restart resumes interrupted runs with no
// extra bookkeeping.
func (f *Flow) openJournal(path string) error {
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return f.resumeJournal(path)
	} else if err != nil && !os.IsNotExist(err) {
		return err
	}
	return f.startJournal(path)
}

// startJournal creates a fresh journal at path and arms the flow to
// checkpoint into it. The flow owns the journal and closes it with
// Close.
func (f *Flow) startJournal(path string) error {
	w, err := journal.Create(path, f.rec)
	if err != nil {
		return err
	}
	cur := journal.NewCursor(w, nil)
	if err := cur.Append("flow_header", f.header()); err != nil {
		w.Close()
		return err
	}
	f.cur = cur
	return nil
}

// resumeJournal recovers the journal at path (truncating any torn tail)
// and arms the flow to replay it: the next Run* calls — with the same
// arguments as the interrupted run — consume the journal's history
// instead of simulating, re-enter mid-phase where it ends, and continue
// live, appending to the same journal. The journal's header must match
// this flow's unit, seed, coverage model, and result-relevant config.
func (f *Flow) resumeJournal(path string) error {
	recs, w, err := journal.Recover(path, f.rec, f.cfg.Log)
	if err != nil {
		return err
	}
	cur := journal.NewCursor(w, recs)
	var got flowHeader
	ok, err := cur.Take("flow_header", &got)
	if err != nil {
		w.Close()
		return err
	}
	if want := f.header(); !ok || got != want {
		w.Close()
		return fmt.Errorf("core: journal %s does not match this flow (unit %q, seed %d, config hash %#x)",
			path, want.Unit, want.Seed, want.CfgHash)
	}
	f.cur = cur
	f.rec.Counter("flow.resumes").Inc()
	return nil
}

// Journal exposes the flow's journal cursor (nil when journaling is
// off) — the chaos harness arms fault injection through it.
func (f *Flow) Journal() *journal.Cursor { return f.cur }

// Round returns the number of successfully harvested rounds.
func (f *Flow) Round() int { return f.round }
