package core

import (
	"context"
	"fmt"

	"repro/internal/neighbors"
)

// RunEvents targets an arbitrary set of events by name, without
// requiring them to belong to a declared family or cross product. The
// approximated target is mined from the coverage repository with the
// correlation method (the FRIENDS substitute, paper Section IV-A): the
// targets themselves at weight 1, plus every event whose per-template
// hit profile resembles theirs, weighted by similarity.
//
// minSim in [0, 1] sets the similarity cutoff; 0.5 is a reasonable
// default. At least one target must already have evidence in the
// repository — for fully dark targets, structural neighbors (RunFamily,
// RunCross) are the right tool, exactly as in the paper. ctx cancels as
// in RunFamily.
func (f *Flow) RunEvents(ctx context.Context, eventNames []string, minSim float64) (*Report, error) {
	report, err := f.runEvents(ctx, eventNames, minSim)
	return report, f.finish(err)
}

func (f *Flow) runEvents(ctx context.Context, eventNames []string, minSim float64) (*Report, error) {
	f.begin(ctx)
	if len(eventNames) == 0 {
		return nil, fmt.Errorf("core: no target events given")
	}
	model := f.env.Unit().Model()
	targets, err := model.IDs(eventNames)
	if err != nil {
		return nil, err
	}
	if err := f.ensureCorpus(); err != nil {
		return nil, err
	}
	ph := f.rec.PhaseStart("neighbors", map[string]any{"min_sim": minSim})
	ws, err := neighbors.Correlated(f.repo, targets, minSim)
	ph.End(map[string]any{"targets": len(targets), "approx_events": len(ws)})
	if err != nil {
		return nil, err
	}
	return f.Run(ctx, neighbors.NewTarget(ws), targets)
}
