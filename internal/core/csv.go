package core

import (
	"fmt"
	"strings"

	"repro/internal/coverage"
)

// FamilyCSV renders the Figs. 3/4 table as CSV: one row per family
// event, hits and hit-rate columns per phase. Machine-readable
// counterpart of FormatFamilyTable for plotting.
func (r *Report) FamilyCSV(m *coverage.Model, family string) (string, error) {
	ids, ok := m.Family(family)
	if !ok {
		return "", fmt.Errorf("core: unknown family %q", family)
	}
	var b strings.Builder
	b.WriteString("event")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, ",%s_hits,%s_rate", p.Name, p.Name)
	}
	b.WriteString("\n")
	for _, id := range ids {
		b.WriteString(m.Name(id))
		for _, p := range r.Phases {
			fmt.Fprintf(&b, ",%d,%.6f", p.Counts.Hits(id), p.Counts.HitRate(id))
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// StatusCSV renders the Fig. 5 series as CSV: one row per phase with
// never/lightly/well counts over the given events.
func (r *Report) StatusCSV(events []int) string {
	var b strings.Builder
	b.WriteString("phase,never,lightly,well\n")
	for _, p := range r.Phases {
		sc := p.Counts.StatusCounts(events)
		fmt.Fprintf(&b, "%s,%d,%d,%d\n", p.Name,
			sc[coverage.StatusNever], sc[coverage.StatusLightly], sc[coverage.StatusWell])
	}
	return b.String()
}

// ProgressCSV renders the Fig. 6 series as CSV: one row per optimizer
// iteration.
func (r *Report) ProgressCSV() string {
	var b strings.Builder
	b.WriteString("iteration,best,step,moved,evals\n")
	for _, h := range r.Progress {
		fmt.Fprintf(&b, "%d,%.6f,%.4f,%t,%d\n", h.Iter, h.Best, h.Step, h.Moved, h.Evals)
	}
	return b.String()
}
