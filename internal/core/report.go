package core

import (
	"fmt"
	"strings"

	"repro/internal/coverage"
)

// FormatFamilyTable renders a report as the paper's Figs. 3/4 table: one
// row per family event, one (hits, hit rate) column pair per phase.
func (r *Report) FormatFamilyTable(m *coverage.Model, family string) (string, error) {
	ids, ok := m.Family(family)
	if !ok {
		return "", fmt.Errorf("core: unknown family %q", family)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Hit statistics for family %q on unit %q\n", family, r.Unit)
	header := fmt.Sprintf("%-12s", "Event")
	for _, p := range r.Phases {
		header += fmt.Sprintf(" | %-24s", fmt.Sprintf("%s (%s)", p.Name, p.Description))
	}
	b.WriteString(header + "\n")
	sub := fmt.Sprintf("%-12s", "")
	for range r.Phases {
		sub += fmt.Sprintf(" | %10s %13s", "#hits", "hit rate")
	}
	b.WriteString(sub + "\n")
	b.WriteString(strings.Repeat("-", len(sub)) + "\n")
	for _, id := range ids {
		row := fmt.Sprintf("%-12s", m.Name(id))
		for _, p := range r.Phases {
			row += fmt.Sprintf(" | %10d %12.3f%%", p.Counts.Hits(id), p.Counts.HitRate(id)*100)
		}
		b.WriteString(row + "\n")
	}
	return b.String(), nil
}

// FormatStatusTable renders a report as the paper's Fig. 5 chart data:
// the number of never/lightly/well-hit events among the given events at
// every phase.
func (r *Report) FormatStatusTable(m *coverage.Model, events []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Event status over %d events on unit %q\n", len(events), r.Unit)
	fmt.Fprintf(&b, "%-32s | %8s | %8s | %8s\n", "Phase", "never", "lightly", "well")
	b.WriteString(strings.Repeat("-", 66) + "\n")
	for _, p := range r.Phases {
		sc := p.Counts.StatusCounts(events)
		fmt.Fprintf(&b, "%-32s | %8d | %8d | %8d\n",
			fmt.Sprintf("%s (%s)", p.Name, p.Description),
			sc[coverage.StatusNever], sc[coverage.StatusLightly], sc[coverage.StatusWell])
	}
	return b.String()
}

// FormatProgress renders the optimizer's per-iteration best target value
// — the paper's Fig. 6 series — as an aligned two-column table with a
// crude text sparkline.
func (r *Report) FormatProgress() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Optimization progress on unit %q (max target value per iteration)\n", r.Unit)
	if len(r.Progress) == 0 {
		b.WriteString("(no iterations)\n")
		return b.String()
	}
	maxVal := r.Progress[0].Best
	for _, h := range r.Progress {
		if h.Best > maxVal {
			maxVal = h.Best
		}
	}
	for _, h := range r.Progress {
		bar := 0
		if maxVal > 0 {
			bar = int(h.Best / maxVal * 40)
		}
		if bar < 0 {
			bar = 0 // iterations below zero render an empty sparkline
		}
		moved := " "
		if h.Moved {
			moved = "*"
		}
		fmt.Fprintf(&b, "iter %3d %s %10.4f |%s\n", h.Iter, moved, h.Best, strings.Repeat("#", bar))
	}
	return b.String()
}

// Summary renders a compact textual overview of the run.
func (r *Report) Summary(m *coverage.Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "AS-CDG run on unit %q\n", r.Unit)
	fmt.Fprintf(&b, "  approximated target: %d events; real targets: %d uncovered events\n",
		r.Target.Len(), len(r.TargetEvents))
	names := make([]string, 0, len(r.TargetEvents))
	for _, id := range r.TargetEvents {
		names = append(names, m.Name(id))
	}
	fmt.Fprintf(&b, "  targets: %s\n", strings.Join(names, ", "))
	for _, ts := range r.ChosenTemplates {
		fmt.Fprintf(&b, "  coarse search pick: %s (score %.4f over %d sims)\n", ts.Name, ts.Score, ts.Sims)
	}
	if r.Skeleton != nil {
		fmt.Fprintf(&b, "  skeleton: %d modifiable settings\n", r.Skeleton.Dim())
	}
	fmt.Fprintf(&b, "  simulations spent: %d\n", r.TotalSims)
	if best := r.Phase("best"); best != nil {
		hit, total := 0, 0
		for _, id := range r.TargetEvents {
			total++
			if best.Counts.Hits(id) > 0 {
				hit++
			}
		}
		fmt.Fprintf(&b, "  previously-uncovered targets hit by the best template: %d/%d\n", hit, total)
	}
	return b.String()
}
