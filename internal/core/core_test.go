package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/duv/iounit"
	"repro/internal/duv/l3cache"
	"repro/internal/neighbors"
	"repro/internal/template"
)

func mustParse(t *testing.T, src string) *template.Template {
	t.Helper()
	tmpl, err := template.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

func TestMergeTemplatesWeights(t *testing.T) {
	a := mustParse(t, `
template a {
    weight W { x: 10; y: 50; }
    range R [0 : 10];
}
`)
	b := mustParse(t, `
template b {
    weight W { y: 80; z: 5; }
    range R [5 : 30];
    range Extra [1 : 2];
}
`)
	m := MergeTemplates("merged", []*template.Template{a, b})
	if m.Name != "merged" {
		t.Fatalf("name = %q", m.Name)
	}
	w := m.Weight("W")
	if w == nil || len(w.Entries) != 3 {
		t.Fatalf("W = %+v", w)
	}
	if e, _ := w.Entry("y"); e.Weight != 80 {
		t.Fatalf("y = %d, want max(50,80)", e.Weight)
	}
	if e, _ := w.Entry("x"); e.Weight != 10 {
		t.Fatalf("x = %d", e.Weight)
	}
	r := m.Range("R")
	if r == nil || r.Lo != 0 || r.Hi != 30 {
		t.Fatalf("R = %+v, want widest span", r)
	}
	if m.Range("Extra") == nil {
		t.Fatal("Extra missing")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTemplatesKindConflict(t *testing.T) {
	a := mustParse(t, "template a { weight P { x: 1; } }")
	b := mustParse(t, "template b { range P [0 : 9]; }")
	m := MergeTemplates("m", []*template.Template{a, b})
	if m.Weight("P") == nil {
		t.Fatal("higher-ranked kind should win")
	}
	m2 := MergeTemplates("m2", []*template.Template{b, a})
	if m2.Range("P") == nil {
		t.Fatal("higher-ranked kind should win (range first)")
	}
}

func TestMergeTemplatesDoesNotAliasInputs(t *testing.T) {
	a := mustParse(t, "template a { weight W { x: 10; } }")
	m := MergeTemplates("m", []*template.Template{a})
	m.Weight("W").Entries[0].Weight = 99
	if e, _ := a.Weight("W").Entry("x"); e.Weight != 10 {
		t.Fatal("merge aliased the input template")
	}
}

// smallConfig keeps end-to-end flow tests fast.
func smallConfig(seed uint64) Config {
	return Config{
		Seed:                  seed,
		CorpusSimsPerTemplate: 150,
		TopTemplates:          2,
		Subranges:             3,
		SampleTemplates:       20,
		SampleSims:            25,
		OptIterations:         8,
		OptDirections:         6,
		OptSims:               30,
		BestSims:              400,
	}
}

func TestFlowEndToEndIOUnit(t *testing.T) {
	flow := NewFlow(iounit.New(), smallConfig(1))
	report, err := flow.RunFamily(context.Background(), iounit.FamilyName, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Phases) != 4 {
		t.Fatalf("phases = %d", len(report.Phases))
	}
	for i, name := range []string{"before", "sampling", "optimization", "best"} {
		if report.Phases[i].Name != name {
			t.Fatalf("phase %d = %q, want %q", i, report.Phases[i].Name, name)
		}
		if report.Phases[i].Counts.Sims() == 0 {
			t.Fatalf("phase %q has no simulations", name)
		}
	}
	if report.BestTemplate == nil {
		t.Fatal("no best template harvested")
	}
	if err := report.BestTemplate.Validate(); err != nil {
		t.Fatalf("best template invalid: %v", err)
	}
	if len(report.Progress) == 0 {
		t.Fatal("no optimization history")
	}
	if report.TotalSims == 0 {
		t.Fatal("no simulation accounting")
	}
	// The harvested template must be recorded in the repository.
	if _, ok := flow.Repository().Template(report.BestTemplate.Name); !ok {
		t.Fatal("best template not recorded in repository")
	}
	// The real targets were uncovered before the run by construction.
	before := report.Phase("before").Counts
	for _, id := range report.TargetEvents {
		if before.Hits(id) != 0 {
			t.Fatalf("target %d was already covered before CDG", id)
		}
	}
}

func TestFlowImprovesFamilyFrontier(t *testing.T) {
	// At unit-test budgets the deepest I/O family members stay out of
	// reach (they need the paper-scale budgets of cmd/repro), but the
	// frontier must advance: the deepest covered event is hit far more
	// often by the harvested template than by the regression mix.
	flow := NewFlow(iounit.New(), smallConfig(2))
	report, err := flow.RunFamily(context.Background(), iounit.FamilyName, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	m := flow.Env().Unit().Model()
	before := report.Phase("before").Counts
	best := report.Phase("best").Counts
	id := m.MustLookup("crc_032")
	if best.HitRate(id) < 4*before.HitRate(id) {
		t.Errorf("crc_032: best %.4f not well above before %.4f", best.HitRate(id), before.HitRate(id))
	}
}

func TestFlowHitsUncoveredTargetsL3(t *testing.T) {
	// The L3 bypass ladder is gentle enough that even small budgets must
	// newly cover some previously-uncovered family events — the paper's
	// headline claim.
	flow := NewFlow(l3cache.New(), smallConfig(2))
	report, err := flow.RunFamily(context.Background(), l3cache.FamilyName, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	before := report.Phase("before").Counts
	best := report.Phase("best").Counts
	newlyHit := 0
	for _, ev := range report.TargetEvents {
		if before.Hits(ev) != 0 {
			t.Fatalf("target %d was covered before CDG", ev)
		}
		if best.Hits(ev) > 0 {
			newlyHit++
		}
	}
	if newlyHit == 0 {
		t.Error("no previously-uncovered L3 target was hit by the best template")
	}
}

func TestRunFamilyRefinedProgresses(t *testing.T) {
	flow := NewFlow(l3cache.New(), smallConfig(9))
	reports, err := flow.RunFamilyRefined(context.Background(), l3cache.FamilyName, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	if len(reports) == 2 {
		// Round 2 must start from strictly more evidence.
		a := reports[0].Phase("before").Counts.Sims()
		b := reports[1].Phase("before").Counts.Sims()
		if b <= a {
			t.Fatalf("round 2 corpus (%d sims) not larger than round 1 (%d)", b, a)
		}
	}
	// Harvested templates get distinct names per round.
	if len(reports) == 2 && reports[0].BestTemplate.Name == reports[1].BestTemplate.Name {
		t.Fatal("refinement rounds reused the harvested template name")
	}
}

func TestFlowSharedRepository(t *testing.T) {
	unit := iounit.New()
	flowA := NewFlow(unit, smallConfig(3))
	if _, err := flowA.RunFamily(context.Background(), iounit.FamilyName, 1.0); err != nil {
		t.Fatal(err)
	}
	repo := flowA.Repository()

	cfgB := smallConfig(4)
	cfgB.Repository = repo
	flowB := NewFlow(unit, cfgB)
	simsBefore := flowB.Env().Simulations()
	report, err := flowB.RunFamily(context.Background(), iounit.FamilyName, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if flowB.Env().Simulations()-simsBefore != report.TotalSims {
		t.Fatal("accounting mismatch")
	}
	// Shared corpus: flowB must not have re-simulated the base suite, so
	// its spend is sampling+optimization+best only.
	expected := uint64(20*25 + len(report.Progress)*0 + 400)
	if report.TotalSims < expected {
		t.Fatalf("sims = %d, below the sampling+best floor %d", report.TotalSims, expected)
	}
}

func TestFlowRunErrors(t *testing.T) {
	flow := NewFlow(iounit.New(), smallConfig(5))
	if _, err := flow.Run(context.Background(), nil, nil); err == nil {
		t.Error("nil target should fail")
	}
	if _, err := flow.Run(context.Background(), neighbors.Uniform(nil), nil); err == nil {
		t.Error("empty target should fail")
	}
	if _, err := flow.RunFamily(context.Background(), "no_such_family", 1.0); err == nil {
		t.Error("unknown family should fail")
	}
	if _, err := flow.RunCross(context.Background(), "no_such_cross"); err == nil {
		t.Error("unknown cross should fail")
	}
}

func TestFlowNoEvidenceFails(t *testing.T) {
	// A target consisting solely of uncovered events with no covered
	// neighbors must fail with guidance rather than optimize noise.
	unit := iounit.New()
	flow := NewFlow(unit, smallConfig(6))
	m := unit.Model()
	dark := neighbors.Uniform([]int{m.MustLookup("crc_096")})
	if _, err := flow.Run(context.Background(), dark, dark.Events()); err == nil {
		t.Fatal("expected failure for evidence-free target")
	} else if !strings.Contains(err.Error(), "no existing template") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestReportFormatters(t *testing.T) {
	unit := l3cache.New()
	flow := NewFlow(unit, smallConfig(7))
	report, err := flow.RunFamily(context.Background(), l3cache.FamilyName, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	m := unit.Model()

	table, err := report.FormatFamilyTable(m, l3cache.FamilyName)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"byp_reqs01", "byp_reqs16", "before", "best", "hit rate"} {
		if !strings.Contains(table, want) {
			t.Errorf("family table missing %q:\n%s", want, table)
		}
	}
	if _, err := report.FormatFamilyTable(m, "nope"); err == nil {
		t.Error("unknown family should fail")
	}

	fam, _ := m.Family(l3cache.FamilyName)
	status := report.FormatStatusTable(m, fam)
	for _, want := range []string{"never", "lightly", "well", "optimization"} {
		if !strings.Contains(status, want) {
			t.Errorf("status table missing %q:\n%s", want, status)
		}
	}

	progress := report.FormatProgress()
	if !strings.Contains(progress, "iter") {
		t.Errorf("progress missing iterations:\n%s", progress)
	}

	summary := report.Summary(m)
	for _, want := range []string{"AS-CDG run", "coarse search pick", "simulations spent"} {
		if !strings.Contains(summary, want) {
			t.Errorf("summary missing %q:\n%s", want, summary)
		}
	}
}

func TestFormatProgressEmpty(t *testing.T) {
	r := &Report{Unit: "x"}
	if !strings.Contains(r.FormatProgress(), "no iterations") {
		t.Fatal("empty progress should say so")
	}
}

func TestPhaseLookup(t *testing.T) {
	r := &Report{Phases: []PhaseStats{{Name: "before"}, {Name: "best"}}}
	if r.Phase("best") == nil || r.Phase("nope") != nil {
		t.Fatal("Phase lookup broken")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.CorpusSimsPerTemplate != 1000 || c.TopTemplates != 2 || c.SampleTemplates != 50 ||
		c.OptIterations != 10 || c.BestSims != 2000 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestFlowDeterministicAcrossRuns(t *testing.T) {
	run := func() *Report {
		flow := NewFlow(iounit.New(), smallConfig(11))
		report, err := flow.RunFamily(context.Background(), iounit.FamilyName, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	a, b := run(), run()
	if a.BestTemplate.String() != b.BestTemplate.String() {
		t.Fatal("flow not deterministic for a fixed seed")
	}
	if len(a.Progress) != len(b.Progress) {
		t.Fatal("progress histories differ")
	}
	for i := range a.Progress {
		if a.Progress[i].Best != b.Progress[i].Best {
			t.Fatal("iteration values differ")
		}
	}
	var aHits, bHits uint64
	for _, p := range a.Phases {
		aHits += p.Counts.Hits(0)
	}
	for _, p := range b.Phases {
		bHits += p.Counts.Hits(0)
	}
	if aHits != bHits {
		t.Fatal("phase counts differ")
	}
}

func TestRunCrossOnFamilyUnitFails(t *testing.T) {
	flow := NewFlow(iounit.New(), smallConfig(12))
	if _, err := flow.RunCross(context.Background(), "anything"); err == nil {
		t.Fatal("iounit has no cross products; RunCross must fail")
	}
}
