package core

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/duv/iounit"
	"repro/internal/duv/l3cache"
)

// The default-engine byte-identity lock: the pluggable-engine refactor
// must not change a single bit of the reports the hard-wired
// implicit-filtering flow produced. The golden files were generated on
// the pre-refactor code (opt.ImplicitFiltering called directly from the
// flow) and must never be regenerated casually — a diff here means the
// default engine's evaluation order, RNG consumption, or history
// bookkeeping drifted from the paper flow.
//
//	go test ./internal/core -run TestDefaultEngineReportGolden -update-engine-golden
var updateEngineGolden = flag.Bool("update-engine-golden", false, "rewrite the default-engine report goldens (ONLY for deliberate behavior changes)")

// canonicalReport projects a Report into a deterministic JSON document
// covering every result-relevant field: phase aggregates bit-for-bit,
// the optimizer trajectory, the harvested template text and weights.
func canonicalReport(t *testing.T, r *Report) []byte {
	t.Helper()
	type phase struct {
		Name        string   `json:"name"`
		Description string   `json:"description"`
		Hits        []uint64 `json:"hits"`
		Sims        uint64   `json:"sims"`
	}
	doc := struct {
		Unit         string  `json:"unit"`
		TargetEvents []int   `json:"target_events"`
		Chosen       []any   `json:"chosen"`
		Phases       []phase `json:"phases"`
		BestWeights  []float64 `json:"best_weights"`
		BestTemplate string    `json:"best_template"`
		Progress     any       `json:"progress"`
		TotalSims    uint64    `json:"total_sims"`
	}{
		Unit:         r.Unit,
		TargetEvents: r.TargetEvents,
		BestWeights:  r.BestWeights,
		Progress:     r.Progress,
		TotalSims:    r.TotalSims,
	}
	for _, ts := range r.ChosenTemplates {
		doc.Chosen = append(doc.Chosen, map[string]any{"name": ts.Name, "score": ts.Score, "sims": ts.Sims})
	}
	for _, ph := range r.Phases {
		hits, sims := ph.Counts.Raw()
		doc.Phases = append(doc.Phases, phase{Name: ph.Name, Description: ph.Description, Hits: hits, Sims: sims})
	}
	if r.BestTemplate != nil {
		doc.BestTemplate = r.BestTemplate.String()
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

func checkReportGolden(t *testing.T, name string, reports []*Report) {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range reports {
		buf.Write(canonicalReport(t, r))
	}
	path := filepath.Join("testdata", name)
	if *updateEngineGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-engine-golden to create): %v", name, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("default-engine report diverged from the pre-refactor golden %s\ngot %d bytes, want %d bytes\n--- got ---\n%.2000s\n--- want ---\n%.2000s",
			name, buf.Len(), len(want), buf.String(), want)
	}
}

// TestDefaultEngineReportGolden runs small deterministic family and
// cross flows with the default configuration (no engine named — the
// implicit-filtering path) and compares the full reports byte-for-byte
// against goldens captured before the opt.Engine refactor.
func TestDefaultEngineReportGolden(t *testing.T) {
	famCfg := Config{
		Seed:                  7,
		CorpusSimsPerTemplate: 120,
		TopTemplates:          2,
		Subranges:             2,
		SampleTemplates:       8,
		SampleSims:            12,
		OptIterations:         4,
		OptDirections:         4,
		OptSims:               15,
		BestSims:              100,
		Workers:               3,
	}
	flow, err := New(iounit.New(), famCfg)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := flow.RunFamilyRefined(context.Background(), iounit.FamilyName, 0.4, 2)
	flow.Close()
	if err != nil {
		t.Fatal(err)
	}
	checkReportGolden(t, "engine_default_family.golden", reports)

	crossCfg := Config{
		Seed:                  11,
		CorpusSimsPerTemplate: 150,
		TopTemplates:          2,
		Subranges:             2,
		SampleTemplates:       6,
		SampleSims:            10,
		OptIterations:         3,
		OptDirections:         5,
		OptSims:               12,
		BestSims:              80,
		Workers:               2,
	}
	l3, err := New(l3cache.New(), crossCfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l3.RunFamily(context.Background(), l3cache.FamilyName, 0.5)
	l3.Close()
	if err != nil {
		t.Fatal(err)
	}
	checkReportGolden(t, "engine_default_l3.golden", []*Report{rep})
}
