package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/duv/iounit"
	"repro/internal/obs"
)

// flowPhases is every phase of the AS-CDG flow, in execution order —
// each must appear as one "phase"-category span in an instrumented run.
var flowPhases = []string{
	"corpus", "neighbors", "tac", "skeleton", "sampling", "optimization", "harvest",
}

func runInstrumented(t *testing.T, workers int, rec *obs.Recorder) reportFingerprint {
	t.Helper()
	cfg := smallConfig(21)
	cfg.Workers = workers
	cfg.Obs = rec
	flow := NewFlow(iounit.New(), cfg)
	defer flow.Close()
	report, err := flow.RunFamily(context.Background(), iounit.FamilyName, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint(report)
}

// TestFlowBitIdenticalWithObservability extends the worker-count
// determinism guarantee to the observability axis: the report is bit
// identical with obs off and on, at 1 and at N workers.
func TestFlowBitIdenticalWithObservability(t *testing.T) {
	plain := runInstrumented(t, 1, nil)
	for _, v := range []struct {
		name    string
		workers int
		rec     *obs.Recorder
	}{
		{"workers1_obs", 1, obs.NewRecorder()},
		{"workers4_plain", 4, nil},
		{"workers4_obs", 4, obs.NewRecorder()},
	} {
		if got := runInstrumented(t, v.workers, v.rec); !reflect.DeepEqual(plain, got) {
			t.Fatalf("%s diverged from the uninstrumented single-worker run:\n%+v\n%+v",
				v.name, got, plain)
		}
	}
}

// TestFlowEmitsAllPhaseSpans checks an instrumented run records one
// "phase" span per flow phase, with spans for every one of the seven.
func TestFlowEmitsAllPhaseSpans(t *testing.T) {
	rec := obs.NewRecorder()
	runInstrumented(t, 2, rec)

	byName := map[string]int{}
	for _, ev := range rec.Trace.Events() {
		if ev.Cat == "phase" {
			if ev.Ph != "X" {
				t.Fatalf("phase span with ph %q, want X", ev.Ph)
			}
			byName[ev.Name]++
		}
	}
	for _, name := range flowPhases {
		if byName[name] == 0 {
			t.Fatalf("no %q phase span recorded; got %v", name, byName)
		}
	}

	// The flow's scheduler and optimizer instrumentation ride along.
	snap := rec.Metrics.Snapshot()
	if snap.Counters["sim.instances_completed"] == 0 {
		t.Fatalf("flow run recorded no simulations")
	}
	if snap.Counters["opt.iterations"] == 0 {
		t.Fatalf("flow run recorded no optimizer iterations")
	}
}
