package core

import (
	"context"
	"testing"

	"repro/internal/duv/iounit"
)

// paperConfig mirrors the paper's Fig. 3 budgets at one tenth of the
// corpus scale: sampling 200 tests x 100 sims, optimization 7 iterations
// x 20 tests x 200 sims, best 10000 sims.
func paperConfig(seed uint64) Config {
	return Config{
		Seed:                  seed,
		CorpusSimsPerTemplate: 11150, // ~66.9k total across 6 templates
		TopTemplates:          2,
		Subranges:             4,
		SampleTemplates:       200,
		SampleSims:            100,
		OptIterations:         7,
		OptDirections:         19, // +1 center = 20 tests per iteration
		OptSims:               200,
		BestSims:              10000,
	}
}

// TestPaperScaleIOUnit exercises the Fig. 3 scenario end to end: two
// refinement rounds must cover crc_064 (uncovered by ~67k regression
// sims) and push the family's hit rates far beyond the corpus. Skipped
// in -short; the full run takes a few seconds.
func TestPaperScaleIOUnit(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short")
	}
	flow := NewFlow(iounit.New(), paperConfig(1))
	reports, err := flow.RunFamilyRefined(context.Background(), iounit.FamilyName, 0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := flow.Env().Unit().Model()
	final := reports[len(reports)-1]
	table, err := final.FormatFamilyTable(m, iounit.FamilyName)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("final round (%d rounds run):\n%s", len(reports), table)
	t.Logf("%s", final.FormatProgress())

	best := final.Phase("best").Counts
	id64 := m.MustLookup("crc_064")
	if best.Hits(id64) == 0 {
		t.Errorf("crc_064 still uncovered after paper-scale refinement")
	}
	id32 := m.MustLookup("crc_032")
	if best.HitRate(id32) < 0.5 {
		t.Errorf("crc_032 best rate = %.3f, want > 0.5", best.HitRate(id32))
	}
}
