package core

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/coverage"
	"repro/internal/neighbors"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/skeleton"
	"repro/internal/tac"
	"repro/internal/template"
)

// RunPerEventShared implements the paper's future-work direction
// (Section VI): amortizing simulations across several target events.
// Every uncovered event of the family becomes its own optimization
// target with its own distance-weighted approximated target, but the
// expensive shared phases run once:
//
//   - the "Before CDG" corpus,
//   - the coarse-grained TAC search and the skeleton,
//   - the random-sample phase — each target picks its own best starting
//     point from the same n x N simulations.
//
// Only the optimization and harvest phases run per target. Compared to
// independent Run calls for k targets this saves (k-1) x (corpus +
// sampling) simulations.
//
// It returns one report per target event, in family order. ctx cancels
// as in RunFamily.
func (f *Flow) RunPerEventShared(ctx context.Context, family string, decay float64) ([]*Report, error) {
	reports, err := f.runPerEventShared(ctx, family, decay)
	return reports, f.finish(err)
}

func (f *Flow) runPerEventShared(ctx context.Context, family string, decay float64) ([]*Report, error) {
	f.begin(ctx)
	model := f.env.Unit().Model()
	famIDs, ok := model.Family(family)
	if !ok {
		return nil, fmt.Errorf("core: unit %q has no family %q", f.env.Unit().Name(), family)
	}
	if err := f.ensureCorpus(); err != nil {
		return nil, err
	}
	simsAtStart := f.env.Simulations()

	var targets []int
	for _, id := range famIDs {
		if f.repo.Total().Hits(id) == 0 {
			targets = append(targets, id)
		}
	}
	if len(targets) == 0 {
		targets = famIDs[len(famIDs)-1:]
	}

	// Shared coarse-grained search, driven by the union target.
	phN := f.rec.PhaseStart("neighbors", map[string]any{"family": family, "decay": decay})
	unionWS, err := neighbors.Ordinal(model, family, targets, decay)
	phN.End(map[string]any{"targets": len(targets), "approx_events": len(unionWS)})
	if err != nil {
		return nil, err
	}
	union := neighbors.NewTarget(unionWS)
	phTac := f.rec.PhaseStart("tac", map[string]any{"approx_events": union.Len()})
	stats := tac.New(f.repo)
	ranked, err := stats.BestTemplates(union.Events(), union.Weights(), 0)
	if err != nil {
		phTac.End(nil)
		return nil, err
	}
	ranked = blendTACPrior(ranked, f.cfg.TACPrior)
	byName := map[string]*template.Template{}
	for _, t := range f.env.Unit().BaseTemplates() {
		byName[t.Name] = t
	}
	for name, t := range f.extra {
		byName[name] = t
	}
	var chosenScores []tac.TemplateScore
	var chosen []*template.Template
	for _, ts := range ranked {
		t, ok := byName[ts.Name]
		if !ok {
			continue
		}
		chosenScores = append(chosenScores, ts)
		chosen = append(chosen, t)
		if len(chosen) == f.cfg.TopTemplates {
			break
		}
	}
	phTac.End(map[string]any{"chosen": len(chosen)})
	if len(chosen) == 0 || chosenScores[0].Score == 0 {
		return nil, fmt.Errorf("core: no existing template shows evidence for the family %q", family)
	}
	candidate := MergeTemplates(f.env.Unit().Name()+"_cdg_candidate", chosen)
	phSkel := f.rec.PhaseStart("skeleton", map[string]any{"candidate": candidate.Name})
	skel, err := skeleton.Skeletonize(candidate, skeleton.Options{
		IncludeZeroWeights: f.cfg.IncludeZeroWeights,
		Subranges:          f.cfg.Subranges,
		Mode:               f.cfg.SubrangeMode,
	})
	if err != nil {
		phSkel.End(nil)
		return nil, err
	}
	phSkel.End(map[string]any{"dim": skel.Dim()})

	// Shared random sampling.
	phSample := f.rec.PhaseStart("sampling", map[string]any{
		"templates": f.cfg.SampleTemplates, "sims_each": f.cfg.SampleSims,
	})
	r := rng.New(f.cfg.Seed).SplitString("cdg-runner-shared")
	samples, sampleAggregate, err := f.samplePhase(skel, r.SplitString("sample"))
	phSample.End(nil)
	if err != nil {
		return nil, err
	}
	sharedSims := f.env.Simulations() - simsAtStart

	before := f.repo.Total().Clone()
	reports := make([]*Report, 0, len(targets))
	for _, ev := range targets {
		ws, err := neighbors.Ordinal(model, family, []int{ev}, decay)
		if err != nil {
			return nil, err
		}
		target := neighbors.NewTarget(ws)
		report := &Report{
			Unit:            f.env.Unit().Name(),
			Target:          target,
			TargetEvents:    []int{ev},
			ChosenTemplates: chosenScores,
			Candidate:       candidate,
			Skeleton:        skel,
		}
		report.Phases = append(report.Phases, PhaseStats{
			Name:        "before",
			Description: fmt.Sprintf("%d sims (shared)", before.Sims()),
			Counts:      before,
		})
		report.Phases = append(report.Phases, PhaseStats{
			Name: "sampling",
			Description: fmt.Sprintf("%d tests x %d sims each (shared)",
				f.cfg.SampleTemplates, f.cfg.SampleSims),
			Counts: sampleAggregate,
		})

		perTargetStart := f.env.Simulations()
		optPhase := coverage.NewCountsFor(model)
		x0, startScore := bestSample(samples, target)
		phOpt := f.rec.PhaseStart("optimization", map[string]any{
			"target": model.Name(ev), "start_score": startScore,
		})
		var batchErr error
		params, err := f.cfg.engineParams()
		if err != nil {
			phOpt.End(nil)
			return nil, err
		}
		eng, err := opt.New(f.cfg.engineName(), opt.EngineConfig{
			X0:          x0,
			Lo:          0,
			Hi:          float64(skel.MaxWeight()),
			TargetValue: f.cfg.TargetValue,
			RNG:         r.SplitString("optimize-" + model.Name(ev)),
			Recorder:    f.rec,
			Prior:       f.cfg.Prior,
		}, params)
		if err != nil {
			phOpt.End(nil)
			return nil, err
		}
		res, err := opt.Drive(eng, opt.DriveOptions{
			Batch:      f.batchObjective(skel, target, optPhase, &batchErr),
			BatchSize:  f.cfg.OptDirections,
			Context:    f.ctx,
			Checkpoint: func(json.RawMessage) error { return batchErr },
		})
		if err == nil && batchErr != nil {
			err = batchErr
		}
		if err != nil {
			phOpt.End(nil)
			return nil, err
		}
		phOpt.End(map[string]any{"best": res.Value, "evals": res.Evals})
		report.Progress = res.History
		report.Phases = append(report.Phases, PhaseStats{
			Name: "optimization",
			Description: fmt.Sprintf("%d iterations x %d tests x %d sims",
				len(res.History), f.cfg.OptDirections+1, f.cfg.OptSims),
			Counts: optPhase,
		})

		report.BestWeights = res.X
		phHarvest := f.rec.PhaseStart("harvest", map[string]any{
			"target": model.Name(ev), "sims": f.cfg.BestSims,
		})
		bestTemplate, err := skel.Instantiate(
			fmt.Sprintf("%s_cdg_%s_best", f.env.Unit().Name(), model.Name(ev)), res.X)
		if err != nil {
			phHarvest.End(nil)
			return nil, err
		}
		report.BestTemplate = bestTemplate
		bestCounts, err := f.env.Run(bestTemplate, f.cfg.BestSims)
		if err != nil {
			phHarvest.End(nil)
			return nil, err
		}
		phHarvest.End(map[string]any{"template": bestTemplate.Name})
		report.Phases = append(report.Phases, PhaseStats{
			Name:        "best",
			Description: fmt.Sprintf("%d sims", f.cfg.BestSims),
			Counts:      bestCounts,
		})
		f.repo.RecordCounts(bestTemplate.Name, bestCounts)
		f.extra[bestTemplate.Name] = bestTemplate
		f.round++

		// Per-target accounting: this target's own spend plus its share
		// of the common phases.
		report.TotalSims = f.env.Simulations() - perTargetStart + sharedSims/uint64(len(targets))
		reports = append(reports, report)
	}
	return reports, nil
}
