package core

import (
	"context"
	"testing"

	"repro/internal/coverage"
	"repro/internal/duv/noc"
)

func TestFlowNoCFamily(t *testing.T) {
	flow := NewFlow(noc.New(), smallConfig(51))
	report, err := flow.RunFamily(context.Background(), noc.FamilyName, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	before := report.Phase("before").Counts
	best := report.Phase("best").Counts
	newly := 0
	for _, ev := range report.TargetEvents {
		if before.Hits(ev) != 0 {
			t.Fatalf("target %d covered before CDG", ev)
		}
		if best.Hits(ev) > 0 {
			newly++
		}
	}
	if newly == 0 {
		t.Error("no previously-uncovered retry-depth target was hit")
	}
}

func TestFlowNoCCrossUTurnsStayDark(t *testing.T) {
	unit := noc.New()
	flow := NewFlow(unit, smallConfig(52))
	report, err := flow.RunCross(context.Background(), noc.CrossName)
	if err != nil {
		t.Fatal(err)
	}
	m := unit.Model()
	best := report.Phase("best").Counts

	// The 16 u-turn events (in==out) must stay uncovered — the unit
	// capability limit the flow surfaces rather than hides.
	cp := unit.Cross()
	uturns := 0
	for _, name := range cp.EventNames() {
		coords, err := cp.Coords(name)
		if err != nil {
			t.Fatal(err)
		}
		if coords[0] == coords[2] { // inport index == outport index
			uturns++
			if best.Hits(m.MustLookup(name)) != 0 {
				t.Fatalf("u-turn event %s hit", name)
			}
		}
	}
	if uturns != 16 {
		t.Fatalf("u-turn slice = %d events, want 16", uturns)
	}

	// Uniform default traffic already covers every routable pair, so the
	// only targets left are the unroutable u-turns — which the flow must
	// surface as still-never-hit, exactly like the paper's entry7 events,
	// while keeping the routable events covered.
	ids, err := m.IDs(cp.EventNames())
	if err != nil {
		t.Fatal(err)
	}
	bestSC := best.StatusCounts(ids)
	if bestSC[coverage.StatusNever] != 16 {
		t.Errorf("never-hit = %d, want exactly the 16 u-turns", bestSC[coverage.StatusNever])
	}
	if bestSC[coverage.StatusWell]+bestSC[coverage.StatusLightly] != 64 {
		t.Errorf("routable events covered = %d, want 64",
			bestSC[coverage.StatusWell]+bestSC[coverage.StatusLightly])
	}
	// Every real target the flow reported is a u-turn.
	for _, ev := range report.TargetEvents {
		coords, err := cp.Coords(m.Name(ev))
		if err != nil {
			t.Fatal(err)
		}
		if coords[0] != coords[2] {
			t.Errorf("routable event %s was reported as an uncovered target", m.Name(ev))
		}
	}
}
