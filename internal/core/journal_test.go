package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/duv/iounit"
	"repro/internal/obs"
)

// journalTestConfig is the small iounit campaign the journal tests run:
// big enough to exercise every phase, small enough to run many times.
func journalTestConfig() Config {
	return Config{
		Seed:                  21,
		Workers:               3,
		CorpusSimsPerTemplate: 120,
		TopTemplates:          2,
		Subranges:             3,
		SampleTemplates:       12,
		SampleSims:            20,
		OptIterations:         5,
		OptDirections:         5,
		OptSims:               25,
		BestSims:              250,
	}
}

func runRefined(t *testing.T, flow *Flow, rounds int) []*Report {
	t.Helper()
	reports, err := flow.RunFamilyRefined(iounit.FamilyName, 0.4, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return reports
}

// TestJournaledRunMatchesPlainRun: journaling on (StartJournal) must
// not perturb a run — every Report is bit-identical to the unjournaled
// flow's — and a full replay of the finished journal must reproduce the
// same Reports without simulating anything.
func TestJournaledRunMatchesPlainRun(t *testing.T) {
	const rounds = 2
	plain := NewFlow(iounit.New(), journalTestConfig())
	defer plain.Close()
	want := runRefined(t, plain, rounds)

	path := filepath.Join(t.TempDir(), "run.journal")
	live := NewFlow(iounit.New(), journalTestConfig())
	if err := live.StartJournal(path); err != nil {
		t.Fatal(err)
	}
	got := runRefined(t, live, rounds)
	live.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("journaled run diverged from plain run")
	}

	replay := NewFlow(iounit.New(), journalTestConfig())
	defer replay.Close()
	if err := replay.Resume(path); err != nil {
		t.Fatal(err)
	}
	replayed := runRefined(t, replay, rounds)
	if !reflect.DeepEqual(replayed, want) {
		t.Fatal("replayed run diverged from plain run")
	}
	if sims := replay.Env().Simulations(); sims != plain.Env().Simulations() {
		t.Fatalf("replay's simulation counter = %d, want the original %d", sims, plain.Env().Simulations())
	}
	if replay.Round() != rounds {
		t.Fatalf("replayed flow round = %d, want %d", replay.Round(), rounds)
	}
}

// TestResumeRejectsMismatchedFlow: a journal must only resume into a
// flow with the identical unit, seed, and result-relevant config.
func TestResumeRejectsMismatchedFlow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	flow := NewFlow(iounit.New(), journalTestConfig())
	if err := flow.StartJournal(path); err != nil {
		t.Fatal(err)
	}
	flow.Close()

	seedCfg := journalTestConfig()
	seedCfg.Seed = 22
	other := NewFlow(iounit.New(), seedCfg)
	defer other.Close()
	if err := other.Resume(path); err == nil {
		t.Fatal("resume with a different seed succeeded")
	}

	simsCfg := journalTestConfig()
	simsCfg.OptSims = 26
	tweaked := NewFlow(iounit.New(), simsCfg)
	defer tweaked.Close()
	if err := tweaked.Resume(path); err == nil {
		t.Fatal("resume with a different config succeeded")
	}

	// Throughput-only knobs must NOT block a resume: a run may move to a
	// machine with a different worker count.
	workersCfg := journalTestConfig()
	workersCfg.Workers = 7
	moved := NewFlow(iounit.New(), workersCfg)
	defer moved.Close()
	if err := moved.Resume(path); err != nil {
		t.Fatalf("resume with a different worker count failed: %v", err)
	}

	if err := moved.Resume(filepath.Join(t.TempDir(), "missing.journal")); err == nil {
		t.Fatal("resume of a missing journal succeeded")
	}
}

// cancelOnPhase is an obs progress sink that cancels a context the
// moment a named phase starts — a deterministic way to interrupt the
// flow at an exact phase boundary.
type cancelOnPhase struct {
	needle []byte
	cancel context.CancelFunc
}

func (c *cancelOnPhase) Write(p []byte) (int, error) {
	if bytes.Contains(p, c.needle) {
		c.cancel()
	}
	return len(p), nil
}

// TestRoundSurvivesFailedHarvest is the regression test for the
// round-counter leak: a run that dies inside the harvest phase must not
// consume a round number, and the next successful run must harvest
// round 1, not round 2.
func TestRoundSurvivesFailedHarvest(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sink := &cancelOnPhase{needle: []byte(`"phase":"harvest"`), cancel: cancel}
	rec := obs.NewRecorder()
	rec.Progress = obs.NewProgress(sink)
	cfg := journalTestConfig()
	cfg.Obs = rec

	flow := NewFlow(iounit.New(), cfg)
	defer flow.Close()
	_, err := flow.RunFamilyContext(ctx, iounit.FamilyName, 0.4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if flow.Round() != 0 {
		t.Fatalf("failed harvest consumed round: Round() = %d, want 0", flow.Round())
	}
	if got := rec.Counter("flow.cancellations").Value(); got != 1 {
		t.Fatalf("flow.cancellations = %d, want 1", got)
	}

	// A fresh context completes the run; the harvested template must be
	// round 1 — no skipped number.
	rec.Progress = nil
	report, err := flow.RunFamilyContext(context.Background(), iounit.FamilyName, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(report.BestTemplate.Name, "_cdg_best_1") {
		t.Fatalf("harvested template %q, want round-1 name", report.BestTemplate.Name)
	}
	if flow.Round() != 1 {
		t.Fatalf("Round() = %d, want 1", flow.Round())
	}
}
