package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/duv/iounit"
	"repro/internal/obs"
)

// journalTestConfig is the small iounit campaign the journal tests run:
// big enough to exercise every phase, small enough to run many times.
func journalTestConfig() Config {
	return Config{
		Seed:                  21,
		Workers:               3,
		CorpusSimsPerTemplate: 120,
		TopTemplates:          2,
		Subranges:             3,
		SampleTemplates:       12,
		SampleSims:            20,
		OptIterations:         5,
		OptDirections:         5,
		OptSims:               25,
		BestSims:              250,
	}
}

func runRefined(t *testing.T, flow *Flow, rounds int) []*Report {
	t.Helper()
	reports, err := flow.RunFamilyRefined(context.Background(), iounit.FamilyName, 0.4, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return reports
}

// newJournaled builds a flow journaled at path via the declarative
// construction API: a missing file starts fresh, an existing one is
// recovered and replayed.
func newJournaled(t *testing.T, cfg Config, path string) *Flow {
	t.Helper()
	cfg.Journal = path
	flow, err := New(iounit.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return flow
}

// TestJournaledRunMatchesPlainRun: journaling on (Config.Journal) must
// not perturb a run — every Report is bit-identical to the unjournaled
// flow's — and a full replay of the finished journal must reproduce the
// same Reports without simulating anything.
func TestJournaledRunMatchesPlainRun(t *testing.T) {
	const rounds = 2
	plain := NewFlow(iounit.New(), journalTestConfig())
	defer plain.Close()
	want := runRefined(t, plain, rounds)

	path := filepath.Join(t.TempDir(), "run.journal")
	live := newJournaled(t, journalTestConfig(), path)
	got := runRefined(t, live, rounds)
	live.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("journaled run diverged from plain run")
	}

	// New sees the finished journal on disk and arms a full replay.
	replay := newJournaled(t, journalTestConfig(), path)
	defer replay.Close()
	replayed := runRefined(t, replay, rounds)
	if !reflect.DeepEqual(replayed, want) {
		t.Fatal("replayed run diverged from plain run")
	}
	if sims := replay.Env().Simulations(); sims != plain.Env().Simulations() {
		t.Fatalf("replay's simulation counter = %d, want the original %d", sims, plain.Env().Simulations())
	}
	if replay.Round() != rounds {
		t.Fatalf("replayed flow round = %d, want %d", replay.Round(), rounds)
	}
}

// TestResumeRejectsMismatchedFlow: a journal must only resume into a
// flow with the identical unit, seed, and result-relevant config.
func TestResumeRejectsMismatchedFlow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	flow := newJournaled(t, journalTestConfig(), path)
	flow.Close()

	seedCfg := journalTestConfig()
	seedCfg.Seed = 22
	seedCfg.Journal = path
	if other, err := New(iounit.New(), seedCfg); err == nil {
		other.Close()
		t.Fatal("resume with a different seed succeeded")
	}

	simsCfg := journalTestConfig()
	simsCfg.OptSims = 26
	simsCfg.Journal = path
	if tweaked, err := New(iounit.New(), simsCfg); err == nil {
		tweaked.Close()
		t.Fatal("resume with a different config succeeded")
	}

	// Throughput-only knobs must NOT block a resume: a run may move to a
	// machine with a different worker count.
	workersCfg := journalTestConfig()
	workersCfg.Workers = 7
	moved := newJournaled(t, workersCfg, path)
	moved.Close()

	// An explicit resume of a missing journal must fail; New's
	// auto-detect treats it as a fresh start instead.
	fresh := NewFlow(iounit.New(), journalTestConfig())
	defer fresh.Close()
	if err := fresh.resumeJournal(filepath.Join(t.TempDir(), "missing.journal")); err == nil {
		t.Fatal("resume of a missing journal succeeded")
	}
}

// cancelOnPhase is an obs progress sink that cancels a context the
// moment a named phase starts — a deterministic way to interrupt the
// flow at an exact phase boundary.
type cancelOnPhase struct {
	needle []byte
	cancel context.CancelFunc
}

func (c *cancelOnPhase) Write(p []byte) (int, error) {
	if bytes.Contains(p, c.needle) {
		c.cancel()
	}
	return len(p), nil
}

// TestRoundSurvivesFailedHarvest is the regression test for the
// round-counter leak: a run that dies inside the harvest phase must not
// consume a round number, and the next successful run must harvest
// round 1, not round 2.
func TestRoundSurvivesFailedHarvest(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sink := &cancelOnPhase{needle: []byte(`"phase":"harvest"`), cancel: cancel}
	rec := obs.NewRecorder()
	rec.Progress = obs.NewProgress(sink)
	cfg := journalTestConfig()
	cfg.Obs = rec

	flow := NewFlow(iounit.New(), cfg)
	defer flow.Close()
	_, err := flow.RunFamily(ctx, iounit.FamilyName, 0.4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if flow.Round() != 0 {
		t.Fatalf("failed harvest consumed round: Round() = %d, want 0", flow.Round())
	}
	if got := rec.Counter("flow.cancellations").Value(); got != 1 {
		t.Fatalf("flow.cancellations = %d, want 1", got)
	}

	// A fresh context completes the run; the harvested template must be
	// round 1 — no skipped number.
	rec.Progress = nil
	report, err := flow.RunFamily(context.Background(), iounit.FamilyName, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(report.BestTemplate.Name, "_cdg_best_1") {
		t.Fatalf("harvested template %q, want round-1 name", report.BestTemplate.Name)
	}
	if flow.Round() != 1 {
		t.Fatalf("Round() = %d, want 1", flow.Round())
	}
}
