package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/duv/iounit"
	"repro/internal/duv/l3cache"
)

// reportFingerprint reduces a report to everything determinism must
// preserve: the harvested template, the optimizer trajectory, the exact
// per-event counts of every phase, and the simulation accounting.
type reportFingerprint struct {
	Best      string
	Weights   []float64
	Progress  []float64
	Phases    map[string][]uint64
	TotalSims uint64
}

func fingerprint(r *Report) reportFingerprint {
	fp := reportFingerprint{
		Best:      r.BestTemplate.String(),
		Weights:   r.BestWeights,
		Phases:    map[string][]uint64{},
		TotalSims: r.TotalSims,
	}
	for _, h := range r.Progress {
		fp.Progress = append(fp.Progress, h.Best)
	}
	for _, p := range r.Phases {
		hits := make([]uint64, 0, p.Counts.Len()+1)
		for i := 0; i < p.Counts.Len(); i++ {
			hits = append(hits, p.Counts.Hits(i))
		}
		fp.Phases[p.Name] = append(hits, p.Counts.Sims())
	}
	return fp
}

func runWithWorkers(t *testing.T, workers int) reportFingerprint {
	t.Helper()
	cfg := smallConfig(21)
	cfg.Workers = workers
	flow := NewFlow(iounit.New(), cfg)
	defer flow.Close()
	report, err := flow.RunFamily(context.Background(), iounit.FamilyName, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint(report)
}

func TestFlowBitIdenticalAcrossWorkerCounts(t *testing.T) {
	// The tentpole determinism guarantee: the sequential path (Workers 1),
	// the scheduler path, and the batch-objective path all produce the
	// same report bit for bit under a fixed seed, because batch seeds are
	// assigned at submission in caller order and instance seeds depend
	// only on (batch seed, index).
	one := runWithWorkers(t, 1)
	four := runWithWorkers(t, 4)
	nine := runWithWorkers(t, 9)
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("workers 1 vs 4 diverged:\n%+v\n%+v", one, four)
	}
	if !reflect.DeepEqual(one, nine) {
		t.Fatalf("workers 1 vs 9 diverged:\n%+v\n%+v", one, nine)
	}
}

func TestPerEventSharedDeterministicAcrossWorkers(t *testing.T) {
	// The shared multi-target flow drives the batch objective hardest
	// (many optimizers over one env); it must be worker-count invariant
	// too.
	run := func(workers int) []reportFingerprint {
		cfg := smallConfig(31)
		cfg.Workers = workers
		flow := NewFlow(l3cache.New(), cfg)
		defer flow.Close()
		reports, err := flow.RunPerEventShared(context.Background(), l3cache.FamilyName, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]reportFingerprint, len(reports))
		for i, r := range reports {
			out[i] = fingerprint(r)
		}
		return out
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunPerEventShared diverged across worker counts")
	}
}

func TestBatchObjectiveAccountsEverySimulation(t *testing.T) {
	// Every probe the batch objective runs must land in both the
	// optimization phase aggregate and the flow's total accounting.
	flow := NewFlow(iounit.New(), smallConfig(33))
	defer flow.Close()
	report, err := flow.RunFamily(context.Background(), iounit.FamilyName, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	opt := report.Phase("optimization")
	if opt == nil || opt.Counts.Sims() == 0 {
		t.Fatal("optimization phase has no merged counts")
	}
	// TotalSims covers sampling + optimization + best; the "before"
	// corpus is accounted separately (it may be shared across runs).
	var total uint64
	for _, p := range report.Phases {
		if p.Name != "before" {
			total += p.Counts.Sims()
		}
	}
	if report.TotalSims != total {
		t.Fatalf("TotalSims %d != sampling+optimization+best %d", report.TotalSims, total)
	}
}
