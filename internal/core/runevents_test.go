package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/duv/l3cache"
)

func TestRunEventsCorrelatedTarget(t *testing.T) {
	flow := NewFlow(l3cache.New(), smallConfig(31))
	// byp_reqs03 has evidence in the corpus; correlation mining should
	// recruit its ladder siblings as neighbors and the flow should
	// sharply improve its hit rate.
	report, err := flow.RunEvents(context.Background(), []string{"byp_reqs03"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m := flow.Env().Unit().Model()
	id := m.MustLookup("byp_reqs03")
	before := report.Phase("before").Counts
	best := report.Phase("best").Counts
	if best.HitRate(id) <= before.HitRate(id) {
		t.Errorf("byp_reqs03: best %.4f <= before %.4f", best.HitRate(id), before.HitRate(id))
	}
	// The mined target must include more than just the target itself.
	if report.Target.Len() < 2 {
		t.Errorf("correlation mining found no neighbors: target size %d", report.Target.Len())
	}
	if report.Target.Weight(id) != 1 {
		t.Errorf("target event weight = %v, want 1", report.Target.Weight(id))
	}
}

func TestRunEventsErrors(t *testing.T) {
	flow := NewFlow(l3cache.New(), smallConfig(32))
	if _, err := flow.RunEvents(context.Background(), nil, 0.5); err == nil {
		t.Error("no events should fail")
	}
	if _, err := flow.RunEvents(context.Background(), []string{"no_such_event"}, 0.5); err == nil {
		t.Error("unknown event should fail")
	}
	// A completely dark target has no profile to correlate with.
	_, err := flow.RunEvents(context.Background(), []string{"byp_reqs16"}, 0.5)
	if err == nil {
		t.Fatal("dark target should fail with guidance")
	}
	if !strings.Contains(err.Error(), "Ordinal or CrossNeighbors") {
		t.Fatalf("error should point at the structural methods: %v", err)
	}
}
