package core

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"repro/internal/duv/iounit"
	"repro/internal/opt"
	"repro/internal/tac"
)

// TestEngineSelection runs the full flow under every registered
// non-default engine (the default is pinned byte-for-byte by
// TestDefaultEngineReportGolden) and checks the runs complete, harvest a
// valid template, and are deterministic rerun-to-rerun.
func TestEngineSelection(t *testing.T) {
	for _, name := range opt.EngineNames() {
		if name == opt.DefaultEngine {
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig(5)
			cfg.Engine = name
			run := func() *Report {
				flow := NewFlow(iounit.New(), cfg)
				report, err := flow.RunFamily(context.Background(), iounit.FamilyName, 1.0)
				if err != nil {
					t.Fatal(err)
				}
				return report
			}
			report := run()
			if len(report.Phases) != 4 {
				t.Fatalf("phases = %d, want 4", len(report.Phases))
			}
			if report.BestTemplate == nil {
				t.Fatal("no best template harvested")
			}
			if err := report.BestTemplate.Validate(); err != nil {
				t.Fatalf("best template invalid: %v", err)
			}
			if len(report.Progress) == 0 {
				t.Fatal("no optimization history")
			}
			if !bytes.Equal(canonicalReport(t, report), canonicalReport(t, run())) {
				t.Fatalf("engine %s is not deterministic across identical runs", name)
			}
		})
	}
}

// TestEngineJournalReplay: a journaled flow under a non-default engine
// replays to bit-identical reports, and the journal refuses a flow
// configured with a different engine (the engine is result-relevant, so
// it is part of the config hash).
func TestEngineJournalReplay(t *testing.T) {
	cfg := smallConfig(9)
	cfg.Engine = "ranker"
	cfg.Journal = filepath.Join(t.TempDir(), "flow.journal")

	flow, err := New(iounit.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	report1, err := flow.RunFamily(context.Background(), iounit.FamilyName, 1.0)
	flow.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Same config over the completed journal: pure replay, same bytes.
	flow2, err := New(iounit.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	report2, err := flow2.RunFamily(context.Background(), iounit.FamilyName, 1.0)
	flow2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonicalReport(t, report1), canonicalReport(t, report2)) {
		t.Fatal("replayed report differs from the original run")
	}

	// A different engine must not silently resume this journal.
	cfg.Engine = "nelder_mead"
	if _, err := New(iounit.New(), cfg); err == nil {
		t.Fatal("journal written under ranker accepted by a nelder_mead flow")
	}
}

// TestBlendTACPriorOrdering: the knowledge-base TAC prior reorders a
// coarse-grained ranking exactly as specified — boosted templates are
// promoted, an empty prior is a no-op.
func TestBlendTACPriorOrdering(t *testing.T) {
	ranked := []tac.TemplateScore{
		{Name: "a", Score: 0.5},
		{Name: "b", Score: 0.3},
		{Name: "c", Score: 0.1},
	}
	blended := blendTACPrior(ranked, map[string]float64{"c": 0.45})
	if blended[0].Name != "c" || blended[0].Score != 0.55 {
		t.Fatalf("boosted template not promoted: %+v", blended)
	}
	// Empty prior: untouched.
	same := blendTACPrior(ranked, nil)
	for i := range ranked {
		if same[i] != ranked[i] {
			t.Fatalf("nil prior changed ranking at %d: %+v", i, same[i])
		}
	}
}
