package figures

import (
	"strings"
	"testing"

	"repro/internal/coverage"
	"repro/internal/duv/ifu"
)

// tinyOpts keeps figure tests fast; the optimization budgets are fixed
// by the figure definitions, so these still take a few seconds each.
func tinyOpts(seed uint64) Options {
	return Options{Scale: 0.005, Seed: seed, Rounds: 1}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 0.1 || o.Seed != 1 || o.Rounds != 5 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestScaled(t *testing.T) {
	if scaled(1000, 0.1) != 100 {
		t.Fatal("scaled(1000, 0.1) != 100")
	}
	if scaled(3, 0.001) != 1 {
		t.Fatal("scaled should floor at 1")
	}
}

func TestFig3Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs skipped in -short")
	}
	res, err := Fig3(tinyOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "fig3" || res.Sims == 0 || len(res.Reports) == 0 {
		t.Fatalf("result = %+v", res)
	}
	for _, want := range []string{"crc_004", "crc_096", "before", "sampling", "optimization", "best"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("fig3 text missing %q", want)
		}
	}
}

func TestFig4Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs skipped in -short")
	}
	res, err := Fig4(tinyOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"byp_reqs01", "byp_reqs16", "refinement rounds"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("fig4 text missing %q", want)
		}
	}
	// The harvested template must beat the corpus on the mid ladder.
	final := res.Reports[len(res.Reports)-1]
	before := final.Phase("before").Counts
	best := final.Phase("best").Counts
	deeperBefore, deeperBest := 0, 0
	for id := 0; id < 16; id++ {
		if before.Hits(id) > 0 {
			deeperBefore = id + 1
		}
		if best.Hits(id) > 0 {
			deeperBest = id + 1
		}
	}
	if deeperBest < deeperBefore {
		t.Errorf("best covers to level %d, corpus to %d", deeperBest, deeperBefore)
	}
}

func TestFig5Entry7StaysUncovered(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs skipped in -short")
	}
	res, err := Fig5(tinyOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "entry7 events still uncovered: 32/32") {
		t.Fatalf("fig5 must report the 32 unhittable events:\n%s", res.Text)
	}
	unit := ifu.New()
	ids, err := unit.Model().IDs(unit.Cross().EventNames())
	if err != nil {
		t.Fatal(err)
	}
	byPhase := StatusCountsByPhase(res.Reports[0], ids)
	if byPhase["best"][coverage.StatusNever] < 32 {
		t.Fatalf("best phase never-hit = %d, want >= 32", byPhase["best"][coverage.StatusNever])
	}
	// Sampling must have uncovered a substantial number of events
	// relative to the corpus (the paper's Fig. 5 narrative).
	if byPhase["sampling"][coverage.StatusNever] >= byPhase["before"][coverage.StatusNever] {
		t.Errorf("sampling did not reduce never-hit: before=%d sampling=%d",
			byPhase["before"][coverage.StatusNever], byPhase["sampling"][coverage.StatusNever])
	}
}

func TestFig6Progress(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs skipped in -short")
	}
	res, err := Fig6(tinyOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "iter") {
		t.Fatalf("fig6 text missing iterations:\n%s", res.Text)
	}
	final := res.Reports[len(res.Reports)-1]
	if len(final.Progress) != 25 {
		t.Errorf("L3 optimization should run 25 iterations, got %d", len(final.Progress))
	}
}

func TestCompositeReport(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs skipped in -short")
	}
	res, err := Fig3(Options{Scale: 0.005, Seed: 2, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	composite := compositeReport(res.Reports)
	if len(composite.Phases) != 4 {
		t.Fatalf("composite phases = %d", len(composite.Phases))
	}
	if composite.Phases[0].Name != "before" {
		t.Fatal("composite must lead with the first round's corpus")
	}
	// The composite 'before' is the FIRST round's corpus, not the last's.
	if len(res.Reports) > 1 {
		first := res.Reports[0].Phase("before").Counts.Sims()
		if composite.Phases[0].Counts.Sims() != first {
			t.Fatal("composite before-phase is not round 1's")
		}
	}
}
