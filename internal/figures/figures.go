// Package figures regenerates every table and figure of the paper's
// evaluation section (Section V): Fig. 3 (I/O unit crc family), Fig. 4
// (L3 byp_reqs family), Fig. 5 (IFU cross-product status counts) and
// Fig. 6 (optimization progress). cmd/repro exposes it as a CLI and the
// root bench_test.go as testing.B benchmarks.
//
// Scaling: the paper's "Before CDG" corpora are 669k-1M simulations.
// Options.Scale multiplies the corpus and harvest budgets (default 0.1)
// while keeping the per-point simulation counts N at paper values, since
// N controls the sampling noise the optimizer must absorb — shrinking it
// would change the problem, not just the runtime.
package figures

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/duv/ifu"
	"repro/internal/duv/iounit"
	"repro/internal/duv/l3cache"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Options configure a figure run.
type Options struct {
	// Scale multiplies corpus and harvest budgets (default 0.1; 1.0
	// reproduces the paper's simulation counts).
	Scale float64
	// Seed drives the whole run (default 1).
	Seed uint64
	// Rounds bounds the refinement rounds for family experiments
	// (default 5; the flow stops early once the family is covered).
	Rounds int
	// Workers sizes each flow's simulation pool (<= 0: GOMAXPROCS).
	Workers int
	// Obs, when non-nil, instruments every flow of the figure run
	// (phase spans, scheduler metrics, optimizer progress events).
	Obs *obs.Recorder
	// Runner, when non-nil, adds remote chunk-execution lanes (sized by
	// RunnerLanes) to every flow of the figure run — the internal/farm
	// dispatcher plugs in here. Results are bit-identical with or
	// without it.
	Runner      sim.ChunkRunner
	RunnerLanes int
	// Ctx, when non-nil, cancels the figure run: the current flow
	// checkpoints (if journaled) and returns an error satisfying
	// errors.Is(err, core.ErrInterrupted).
	Ctx context.Context
	// JournalDir, when non-empty, checkpoints each figure's flow into
	// <JournalDir>/<figN>.journal (crash-safe, see internal/journal).
	JournalDir string
	// Resume recovers existing journals in JournalDir instead of
	// starting over; figures whose journal is missing start fresh.
	Resume bool
	// Engine selects the optimization engine for every figure flow
	// ("" keeps the paper's implicit filtering); EngineParams is the
	// engine's knob object as JSON. The A/B study in EXPERIMENTS.md
	// sweeps these across the registered engines.
	Engine       string
	EngineParams json.RawMessage
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Rounds <= 0 {
		o.Rounds = 5
	}
	return o
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// journalPath resolves the figure's journal file for Config.Journal.
// With Resume set, an existing journal is recovered and replayed (a
// missing one — the previous run died before reaching this figure —
// starts fresh); without it, any stale journal is removed so the run
// starts over, matching the historical create-and-truncate behavior.
func (o Options) journalPath(name string) (string, error) {
	if o.JournalDir == "" {
		return "", nil
	}
	path := filepath.Join(o.JournalDir, name+".journal")
	if !o.Resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return "", err
		}
	}
	return path, nil
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Result is one regenerated figure.
type Result struct {
	// Name identifies the figure ("fig3", ...).
	Name string
	// Title is a human-readable caption.
	Title string
	// Text is the regenerated table/series, ready to print.
	Text string
	// CSV is the machine-readable form of the same series.
	CSV string
	// Reports holds the underlying per-round flow reports.
	Reports []*core.Report
	// Sims is the total simulation count consumed.
	Sims uint64
}

// compositeReport builds the paper's presentation: the "Before CDG"
// column from the first round's corpus and the sampling/optimization/
// best columns from the final round (the run that made the jump). The
// paper's single displayed run follows a TAC+expert template selection
// that our flow reaches via refinement rounds; EXPERIMENTS.md documents
// the deviation.
func compositeReport(reports []*core.Report) *core.Report {
	first, last := reports[0], reports[len(reports)-1]
	composite := &core.Report{Unit: last.Unit, TargetEvents: first.TargetEvents}
	composite.Phases = append(composite.Phases, first.Phases[0])
	composite.Phases = append(composite.Phases, last.Phases[1:]...)
	composite.Progress = last.Progress
	composite.BestTemplate = last.BestTemplate
	return composite
}

// Fig3 regenerates the paper's Fig. 3: hit statistics for the crc_*
// family of the I/O unit across the four phases. Paper budgets: before
// 669,000 sims; sampling 200 tests x 100 sims; optimization 7
// iterations x 20 tests x 200 sims; best 10,000 sims.
func Fig3(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	unit := iounit.New()
	cfg := core.Config{
		Seed:                  opts.Seed,
		Workers:               opts.Workers,
		Obs:                   opts.Obs,
		Runner:                opts.Runner,
		RunnerLanes:           opts.RunnerLanes,
		Engine:                opts.Engine,
		EngineParams:          opts.EngineParams,
		CorpusSimsPerTemplate: scaled(669000, opts.Scale) / len(unit.BaseTemplates()),
		TopTemplates:          2,
		Subranges:             4,
		SampleTemplates:       scaled(200, opts.Scale*10), // 200 at default scale
		SampleSims:            100,
		OptIterations:         7,
		OptDirections:         19, // +1 center = 20 tests/iteration
		OptSims:               200,
		BestSims:              scaled(10000, opts.Scale*10),
	}
	jp, err := opts.journalPath("fig3")
	if err != nil {
		return nil, err
	}
	cfg.Journal = jp
	flow, err := core.New(unit, cfg)
	if err != nil {
		return nil, err
	}
	defer flow.Close()
	reports, err := flow.RunFamilyRefined(opts.ctx(), iounit.FamilyName, 0.4, opts.Rounds)
	if err != nil {
		return nil, err
	}
	composite := compositeReport(reports)
	table, err := composite.FormatFamilyTable(unit.Model(), iounit.FamilyName)
	if err != nil {
		return nil, err
	}
	csv, err := composite.FamilyCSV(unit.Model(), iounit.FamilyName)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString(table)
	fmt.Fprintf(&b, "\n(%d refinement rounds; composite of round 1 'before' and final-round phases)\n",
		len(reports))
	return &Result{
		Name:    "fig3",
		Title:   "Fig. 3: hit statistics for a family of events in one of the I/O units",
		Text:    b.String(),
		CSV:     csv,
		Reports: reports,
		Sims:    flow.Env().Simulations(),
	}, nil
}

// Fig4 regenerates the paper's Fig. 4: hit statistics for the
// byp_reqs01..16 family of the L3 unit. Paper budgets: before 1,000,000
// sims; sampling 210 tests x 100 sims; optimization 25 iterations x 12
// tests x 100 sims; best 15,000 sims.
func Fig4(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	unit := l3cache.New()
	cfg := core.Config{
		Seed:                  opts.Seed,
		Workers:               opts.Workers,
		Obs:                   opts.Obs,
		Runner:                opts.Runner,
		RunnerLanes:           opts.RunnerLanes,
		Engine:                opts.Engine,
		EngineParams:          opts.EngineParams,
		CorpusSimsPerTemplate: scaled(1000000, opts.Scale) / len(unit.BaseTemplates()),
		TopTemplates:          2,
		Subranges:             4,
		SampleTemplates:       scaled(210, opts.Scale*10),
		SampleSims:            100,
		OptIterations:         25,
		OptDirections:         11, // +1 center = 12 tests/iteration
		OptSims:               100,
		BestSims:              scaled(15000, opts.Scale*10),
	}
	jp, err := opts.journalPath("fig4")
	if err != nil {
		return nil, err
	}
	cfg.Journal = jp
	flow, err := core.New(unit, cfg)
	if err != nil {
		return nil, err
	}
	defer flow.Close()
	reports, err := flow.RunFamilyRefined(opts.ctx(), l3cache.FamilyName, 0.4, opts.Rounds)
	if err != nil {
		return nil, err
	}
	composite := compositeReport(reports)
	table, err := composite.FormatFamilyTable(unit.Model(), l3cache.FamilyName)
	if err != nil {
		return nil, err
	}
	csv, err := composite.FamilyCSV(unit.Model(), l3cache.FamilyName)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString(table)
	fmt.Fprintf(&b, "\n(%d refinement rounds; composite of round 1 'before' and final-round phases)\n",
		len(reports))
	return &Result{
		Name:    "fig4",
		Title:   "Fig. 4: hit statistics for a family of events in a processor's L3 unit",
		Text:    b.String(),
		CSV:     csv,
		Reports: reports,
		Sims:    flow.Env().Simulations(),
	}, nil
}

// Fig5 regenerates the paper's Fig. 5: the status (never/lightly/well
// hit) of the IFU's 256 cross-product events at each phase. 32 events
// (all entry7) must remain uncovered — they are beyond the unit's
// capabilities.
func Fig5(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	unit := ifu.New()
	cfg := core.Config{
		Seed:                  opts.Seed,
		Workers:               opts.Workers,
		Obs:                   opts.Obs,
		Runner:                opts.Runner,
		RunnerLanes:           opts.RunnerLanes,
		Engine:                opts.Engine,
		EngineParams:          opts.EngineParams,
		CorpusSimsPerTemplate: scaled(300000, opts.Scale) / len(unit.BaseTemplates()),
		TopTemplates:          3,
		Subranges:             4,
		SampleTemplates:       scaled(200, opts.Scale*10),
		SampleSims:            100,
		OptIterations:         10,
		OptDirections:         15,
		OptSims:               200,
		BestSims:              scaled(20000, opts.Scale*10),
	}
	jp, err := opts.journalPath("fig5")
	if err != nil {
		return nil, err
	}
	cfg.Journal = jp
	flow, err := core.New(unit, cfg)
	if err != nil {
		return nil, err
	}
	defer flow.Close()
	report, err := flow.RunCross(opts.ctx(), ifu.CrossName)
	if err != nil {
		return nil, err
	}
	ids, err := unit.Model().IDs(unit.Cross().EventNames())
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString(report.FormatStatusTable(unit.Model(), ids))

	// The paper's headline finding: the 32 entry7 events stay uncovered.
	best := report.Phase("best")
	entry7Uncovered := 0
	for _, name := range unit.Cross().EventNames() {
		coords, err := unit.Cross().Coords(name)
		if err != nil {
			return nil, err
		}
		if coords[0] == 7 && best.Counts.Hits(unit.Model().MustLookup(name)) == 0 {
			entry7Uncovered++
		}
	}
	fmt.Fprintf(&b, "\nentry7 events still uncovered: %d/32 (unit capability limit)\n", entry7Uncovered)
	return &Result{
		Name:    "fig5",
		Title:   "Fig. 5: event status while running AS-CDG on a cross-product (IFU)",
		Text:    b.String(),
		CSV:     report.StatusCSV(ids),
		Reports: []*core.Report{report},
		Sims:    flow.Env().Simulations(),
	}, nil
}

// Fig6 regenerates the paper's Fig. 6: the maximal target value per
// optimization iteration on the L3 example, showing gradual progress
// with absorbed noise disturbances. It runs the Fig. 4 flow and renders
// the round whose optimization climbed the most — later refinement
// rounds start near their optimum and are flat, which is convergence,
// not progress.
func Fig6(opts Options) (*Result, error) {
	res, err := Fig4(opts)
	if err != nil {
		return nil, err
	}
	climbing := climbingReport(res.Reports)
	return &Result{
		Name:    "fig6",
		Title:   "Fig. 6: optimization progress on the L3 example",
		Text:    climbing.FormatProgress(),
		CSV:     climbing.ProgressCSV(),
		Reports: res.Reports,
		Sims:    res.Sims,
	}, nil
}

// climbingReport picks the report whose optimization history gained the
// most between its first and best iteration.
func climbingReport(reports []*core.Report) *core.Report {
	best := reports[0]
	bestGain := -1.0
	for _, r := range reports {
		if len(r.Progress) == 0 {
			continue
		}
		top := r.Progress[0].Best
		for _, h := range r.Progress {
			if h.Best > top {
				top = h.Best
			}
		}
		if gain := top - r.Progress[0].Best; gain > bestGain {
			bestGain = gain
			best = r
		}
	}
	return best
}

// All regenerates every figure in order.
func All(opts Options) ([]*Result, error) {
	fig4, err := Fig4(opts)
	if err != nil {
		return nil, err
	}
	fig3, err := Fig3(opts)
	if err != nil {
		return nil, err
	}
	fig5, err := Fig5(opts)
	if err != nil {
		return nil, err
	}
	climbing := climbingReport(fig4.Reports)
	fig6 := &Result{
		Name:    "fig6",
		Title:   "Fig. 6: optimization progress on the L3 example",
		Text:    climbing.FormatProgress(),
		CSV:     climbing.ProgressCSV(),
		Reports: fig4.Reports,
		Sims:    0, // shares Fig 4's run
	}
	return []*Result{fig3, fig4, fig5, fig6}, nil
}

// StatusCountsByPhase extracts Fig. 5's raw series (for tests and
// benches): per phase, the number of events in each status.
func StatusCountsByPhase(report *core.Report, events []int) map[string]map[coverage.Status]int {
	out := map[string]map[coverage.Status]int{}
	for _, p := range report.Phases {
		out[p.Name] = p.Counts.StatusCounts(events)
	}
	return out
}
