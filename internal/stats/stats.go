// Package stats provides the small statistical toolbox the AS-CDG
// reproduction needs around empirical hit probabilities: binomial
// confidence intervals for e_N(t) estimates, rate comparison, and
// simple summary statistics for optimizer traces.
//
// Coverage hit rates are Bernoulli estimates from N simulations. The
// Wilson score interval behaves sensibly at the extremes that dominate
// CDG work (rates near 0 for uncovered events, near 1 for saturated
// ones), unlike the normal-approximation interval.
package stats

import (
	"fmt"
	"math"
)

// z95 is the standard normal quantile for a 95% two-sided interval.
const z95 = 1.959963984540054

// Interval is a confidence interval for a proportion.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether p lies inside the interval.
func (iv Interval) Contains(p float64) bool {
	return p >= iv.Lo && p <= iv.Hi
}

// String renders the interval as percentages.
func (iv Interval) String() string {
	return fmt.Sprintf("[%.3f%%, %.3f%%]", iv.Lo*100, iv.Hi*100)
}

// Wilson returns the 95% Wilson score interval for hits successes out
// of n trials. n == 0 yields the vacuous interval [0, 1].
func Wilson(hits, n uint64) Interval {
	if n == 0 {
		return Interval{0, 1}
	}
	return WilsonZ(hits, n, z95)
}

// WilsonZ is Wilson with an explicit z quantile.
func WilsonZ(hits, n uint64, z float64) Interval {
	if n == 0 {
		return Interval{0, 1}
	}
	nf := float64(n)
	p := float64(hits) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo := center - margin
	hi := center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{lo, hi}
}

// RatesDiffer reports whether two empirical rates are distinguishable at
// ~95% confidence: their Wilson intervals do not overlap. This is a
// conservative test, which is the right default when deciding whether a
// candidate template truly beats another rather than winning on noise.
func RatesDiffer(hitsA, nA, hitsB, nB uint64) bool {
	a := Wilson(hitsA, nA)
	b := Wilson(hitsB, nB)
	return a.Hi < b.Lo || b.Hi < a.Lo
}

// RuleOfThree returns the 95% upper bound on the hit probability of an
// event never hit in n simulations (the "rule of three": 3/n). It
// answers the question coverage closure keeps asking: "how rare could
// this still-uncovered event be, given the budget already spent?"
func RuleOfThree(n uint64) float64 {
	if n == 0 {
		return 1
	}
	return 3 / float64(n)
}

// Summary holds simple descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// Summarize computes descriptive statistics; an empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}
