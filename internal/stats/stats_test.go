package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestWilsonKnownValues(t *testing.T) {
	// 50/100 at 95%: approximately [0.404, 0.596].
	iv := Wilson(50, 100)
	if math.Abs(iv.Lo-0.404) > 0.005 || math.Abs(iv.Hi-0.596) > 0.005 {
		t.Fatalf("Wilson(50,100) = %v", iv)
	}
	// 0/100: lower bound exactly 0, upper around 0.037.
	iv = Wilson(0, 100)
	if iv.Lo > 1e-12 {
		t.Fatalf("Wilson(0,100).Lo = %v", iv.Lo)
	}
	if iv.Hi < 0.025 || iv.Hi > 0.05 {
		t.Fatalf("Wilson(0,100).Hi = %v", iv.Hi)
	}
	// 100/100: upper bound exactly 1.
	iv = Wilson(100, 100)
	if iv.Hi != 1 {
		t.Fatalf("Wilson(100,100).Hi = %v", iv.Hi)
	}
}

func TestWilsonZeroTrials(t *testing.T) {
	iv := Wilson(0, 0)
	if iv.Lo != 0 || iv.Hi != 1 {
		t.Fatalf("vacuous interval = %v", iv)
	}
}

func TestWilsonPropertyBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := uint64(1 + r.Intn(100000))
		hits := uint64(r.Intn(int(n) + 1))
		iv := Wilson(hits, n)
		p := float64(hits) / float64(n)
		// Interval is within [0,1], ordered, and contains the point
		// estimate.
		return iv.Lo >= 0 && iv.Hi <= 1 && iv.Lo <= iv.Hi && iv.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	// Property: for a fixed rate, more trials tighten the interval.
	prev := 1.0
	for _, n := range []uint64{10, 100, 1000, 10000} {
		iv := Wilson(n/2, n)
		width := iv.Hi - iv.Lo
		if width >= prev {
			t.Fatalf("interval did not shrink at n=%d: %v", n, iv)
		}
		prev = width
	}
}

func TestWilsonCoverageSimulation(t *testing.T) {
	// Empirical check: the 95% interval covers the true rate ~95% of the
	// time (allow 92-99% over 2000 experiments).
	r := rng.New(7)
	trueP := 0.13
	const experiments = 2000
	const n = 150
	covered := 0
	for e := 0; e < experiments; e++ {
		hits := uint64(0)
		for i := 0; i < n; i++ {
			if r.Bool(trueP) {
				hits++
			}
		}
		if Wilson(hits, n).Contains(trueP) {
			covered++
		}
	}
	rate := float64(covered) / experiments
	if rate < 0.92 || rate > 0.995 {
		t.Fatalf("empirical coverage = %.3f, want ~0.95", rate)
	}
}

func TestRatesDiffer(t *testing.T) {
	if !RatesDiffer(10, 1000, 200, 1000) {
		t.Error("1% vs 20% at n=1000 should differ")
	}
	if RatesDiffer(100, 1000, 110, 1000) {
		t.Error("10% vs 11% at n=1000 should not clearly differ")
	}
	if RatesDiffer(0, 10, 1, 10) {
		t.Error("tiny samples should not be distinguishable")
	}
}

func TestRuleOfThree(t *testing.T) {
	if got := RuleOfThree(1000); math.Abs(got-0.003) > 1e-12 {
		t.Fatalf("RuleOfThree(1000) = %v", got)
	}
	if RuleOfThree(0) != 1 {
		t.Fatal("RuleOfThree(0) should be vacuous")
	}
}

func TestIntervalString(t *testing.T) {
	s := Interval{0.01, 0.05}.String()
	if !strings.Contains(s, "1.000%") || !strings.Contains(s, "5.000%") {
		t.Fatalf("String = %q", s)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Std-1.2909944487358056) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 {
		t.Fatalf("single-sample summary = %+v", one)
	}
}
