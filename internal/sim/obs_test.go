package sim

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/duv/iounit"
	"repro/internal/obs"
)

// TestSchedulerObsMetrics drives concurrent jobs through an instrumented
// pool and checks every gauge and counter settles on the exact totals.
// Run under -race this also exercises the publication of the obs handles
// to the lazily started workers.
func TestSchedulerObsMetrics(t *testing.T) {
	const workers, jobs, batch = 4, 6, 96
	env := NewEnv(newToy(), 1, workers)
	defer env.Close()
	rec := obs.NewRecorder()
	env.SetRecorder(rec)

	handles := make([]*Job, jobs)
	for i := range handles {
		handles[i] = submit(t, env, modeB(t), batch)
	}
	total := uint64(0)
	for _, j := range handles {
		total += uint64(j.Wait().Sims())
	}
	if total != jobs*batch {
		t.Fatalf("sims = %d, want %d", total, jobs*batch)
	}

	snap := rec.Metrics.Snapshot()
	if got := snap.Counters["sim.batches_submitted"]; got != jobs {
		t.Fatalf("batches_submitted = %d, want %d", got, jobs)
	}
	if got := snap.Counters["sim.jobs_submitted"]; got != jobs {
		t.Fatalf("jobs_submitted = %d, want %d", got, jobs)
	}
	if got := snap.Counters["sim.jobs_completed"]; got != jobs {
		t.Fatalf("jobs_completed = %d, want %d", got, jobs)
	}
	if got := snap.Counters["sim.instances_completed"]; got != jobs*batch {
		t.Fatalf("instances_completed = %d, want %d", got, jobs*batch)
	}
	if got := snap.Gauges["sim.queue_depth"]; got != 0 {
		t.Fatalf("queue_depth = %d, want 0 after all jobs drained", got)
	}
	if got := snap.Histograms["sim.batch_size"]; got.Count != jobs || got.Max != batch {
		t.Fatalf("batch_size histogram = %+v", got)
	}
	chunks := snap.Counters["sim.chunks_completed"]
	if chunks == 0 {
		t.Fatalf("no chunks recorded")
	}
	if hc := snap.Histograms["sim.chunk_ns"].Count; hc != chunks {
		t.Fatalf("chunk_ns count = %d, want %d", hc, chunks)
	}
	if hc := snap.Histograms["sim.sim_ns"].Count; hc != chunks {
		t.Fatalf("sim_ns count = %d, want %d", hc, chunks)
	}
	busyTotal := uint64(0)
	for w := 0; w < workers; w++ {
		busyTotal += snap.Counters[fmt.Sprintf("sim.worker.%02d.busy_ns", w)]
	}
	if busyTotal == 0 {
		t.Fatalf("no worker busy time recorded")
	}

	// Every chunk became one "sim"-category span on a worker lane.
	spans := 0
	for _, ev := range rec.Trace.Events() {
		if ev.Cat != "sim" || ev.Name != "chunk" {
			continue
		}
		spans++
		if ev.Tid < 100 || ev.Tid >= 100+workers {
			t.Fatalf("chunk span on unexpected lane %d", ev.Tid)
		}
	}
	if uint64(spans) != chunks {
		t.Fatalf("chunk spans = %d, want %d", spans, chunks)
	}
}

// TestSchedulerObsEquivalence checks instrumentation is purely
// observational: the aggregate is bit-identical with obs on or off, at 1
// and at many workers.
func TestSchedulerObsEquivalence(t *testing.T) {
	results := make([]*struct{ hits0, hits1, sims uint64 }, 0, 4)
	for _, workers := range []int{1, 4} {
		for _, instrument := range []bool{false, true} {
			env := NewEnv(newToy(), 42, workers)
			if instrument {
				env.SetRecorder(obs.NewRecorder())
			}
			c := run(t, env, modeB(t), 200)
			env.Close()
			results = append(results, &struct{ hits0, hits1, sims uint64 }{
				c.Hits(0), c.Hits(1), c.Sims(),
			})
		}
	}
	first := results[0]
	for i, r := range results[1:] {
		if *r != *first {
			t.Fatalf("variant %d diverged: %+v vs %+v", i+1, r, first)
		}
	}
}

// TestObservabilityOverheadGuard is the CI benchmark guard: with metrics
// and tracing enabled, scheduler throughput must stay within 5% of the
// uninstrumented pool. Gated behind BENCH_GUARD=1 because wall-clock
// comparisons are meaningless on noisy shared runners unless invoked
// deliberately.
func TestObservabilityOverheadGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the observability overhead guard")
	}
	unit := iounit.New()
	tmpl := unit.BaseTemplates()[0]
	const batch = 2048
	measure := func(rec *obs.Recorder) float64 {
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			env := NewEnv(unit, 1, 4)
			env.SetRecorder(rec)
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					job, err := env.Submit(tmpl, batch)
					if err != nil {
						b.Fatal(err)
					}
					_ = job.Wait()
				}
			})
			env.Close()
			perSim := float64(res.NsPerOp()) / batch
			if best == 0 || perSim < best {
				best = perSim
			}
		}
		return best
	}
	off := measure(nil)
	on := measure(obs.NewRecorder())
	overhead := on/off - 1
	t.Logf("scheduler throughput: obs off %.1f ns/sim, on %.1f ns/sim, overhead %.2f%%",
		off, on, overhead*100)
	if overhead > 0.05 {
		t.Fatalf("observability overhead %.2f%% exceeds the 5%% budget", overhead*100)
	}
}
