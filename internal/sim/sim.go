// Package sim implements the batch simulation environment of the AS-CDG
// reproduction: the stand-in for the proprietary simulation farm the
// CDG-Runner submits jobs to (paper Section I, Fig. 2).
//
// The environment takes (test-template, N) jobs, shards each job into
// chunks that stream through one persistent worker-pool scheduler, and
// returns the aggregated coverage counts. Many jobs may be in flight at
// once (Submit/Wait); the pool is shared by all of them. Seeding is
// deterministic: every batch gets a fresh seed stream derived from the
// environment's base seed and a batch counter assigned at submission, so
// an entire AS-CDG run is reproducible from one seed — and bit-identical
// across worker counts and scheduling orders — while repeated
// submissions of the same template still see fresh sampling noise (the
// "dynamic noise" the optimizer must absorb, Section IV-E).
//
// Each job's template is compiled once into a generator.Plan (cached,
// content-keyed, size-bounded) and shared read-only by all N instances,
// so per-decision parameter resolution and allocation are off the
// per-simulation path.
//
// Chunks are relocatable: instance i of a batch is seeded purely from
// (batch seed, i), never from which worker runs it or in which order, so
// a chunk may execute in another goroutine — or another process, via a
// ChunkRunner such as the internal/farm dispatcher — and contribute the
// same bits to the aggregate.
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/generator"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/template"
)

// ErrClosed is returned by Submit, Run and friends after Close.
var ErrClosed = errors.New("sim: environment is closed")

// Env is a batch simulation environment bound to one DUV.
type Env struct {
	unit     duv.DUV
	unitName string
	workers  int
	seed     *rng.RNG
	batch    atomic.Uint64
	sims     atomic.Uint64
	closed   atomic.Bool
	defaults generator.Defaults
	sched    *Scheduler
	plans    *planCache
	ctx      context.Context // nil = never canceled (SetContext)
	campaign string          // trace-correlation identity (SetRecorder)

	// Observability handles (nil when disabled; all nil-safe).
	mBatches   *obs.Counter
	mInstances *obs.Counter // sequential-path instances (the scheduler counts its own)
	hBatchSize *obs.Histogram
}

// NewEnv creates an environment for the unit with the given base seed.
// workers <= 0 selects GOMAXPROCS.
func NewEnv(unit duv.DUV, seed uint64, workers int) *Env {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Env{
		unit:     unit,
		unitName: unit.Name(),
		workers:  workers,
		seed:     rng.New(seed),
		defaults: unit.Defaults(),
		sched:    newScheduler(workers),
		plans:    newPlanCache(DefaultPlanCacheSize),
	}
}

// SetRecorder installs the environment's observability. It must be
// called before the first simulation is requested (the worker pool
// starts lazily on the first job, which publishes the handles to the
// workers). A nil recorder — the default — keeps every simulate path
// free of clocks and atomics. Instrumentation is purely observational:
// seeding, sharding, and merge order are identical with it on or off.
func (e *Env) SetRecorder(rec *obs.Recorder) {
	e.campaign = rec.CampaignID()
	e.mBatches = rec.Counter("sim.batches_submitted")
	e.mInstances = rec.Counter("sim.instances_completed")
	e.hBatchSize = rec.Histogram("sim.batch_size", obs.SizeBounds())
	e.plans.setRecorder(rec)
	e.sched.setRecorder(rec)
}

// SetContext installs a cancellation context. Submissions after the
// context is canceled fail with ctx.Err(); chunks already queued on the
// scheduler abort without simulating (their jobs complete with the
// counts collected so far), while chunks a worker already picked up
// drain normally. Like SetRecorder it must be called from the goroutine
// that submits jobs, before they are submitted; a nil context (the
// default) disables cancellation.
func (e *Env) SetContext(ctx context.Context) { e.ctx = ctx }

// ctxErr reports the environment's cancellation state.
func (e *Env) ctxErr() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// SetPlanCacheSize rebounds the compiled-plan cache (default
// DefaultPlanCacheSize). Long-lived daemons that stream arbitrary
// template bodies set this to match their memory budget; evicted plans
// are simply recompiled on next use, so any bound is semantically
// neutral.
func (e *Env) SetPlanCacheSize(n int) { e.plans.setCap(n) }

// AttachRunner adds lanes remote-execution goroutines that pull chunks
// from the same queue as the local workers and delegate them to r —
// the seam where a distributed backend (internal/farm) plugs in. Local
// and remote execution mix freely: whichever lane pulls a chunk runs
// it, and if r fails the chunk is re-executed locally by the same lane,
// so a runner may fail, stall, or disappear without affecting results
// or double-counting a chunk. Call before the first Submit.
func (e *Env) AttachRunner(r ChunkRunner, lanes int) {
	e.sched.attachRunner(r, lanes)
}

// Close releases the environment's worker pool. Simulation requests
// after Close return ErrClosed. Leaving an environment unclosed leaks
// its idle workers until process exit — harmless for CLIs, worth
// avoiding in long-lived servers and benchmarks. Close is idempotent.
func (e *Env) Close() {
	if e.closed.Swap(true) {
		return
	}
	e.sched.Close()
}

// Unit returns the DUV the environment simulates.
func (e *Env) Unit() duv.DUV { return e.unit }

// Simulations returns the total number of simulations run so far — the
// cost metric every phase of the paper's evaluation reports. Submitted
// but unfinished jobs are already counted.
func (e *Env) Simulations() uint64 { return e.sims.Load() }

// Batches returns the number of batches submitted so far. Together with
// Simulations it is the environment's deterministic seeding state: a
// journal checkpoint records both, and RestoreCounters replays them so
// a resumed run draws the exact batch seeds the original would have.
func (e *Env) Batches() uint64 { return e.batch.Load() }

// Seed returns the environment's base seed (splitting never advances
// the base stream, so this is the NewEnv seed for the environment's
// whole life).
func (e *Env) Seed() uint64 { return e.seed.State() }

// RestoreCounters rewinds (or fast-forwards) the batch and simulation
// counters to a journaled checkpoint. Only meaningful while no jobs are
// in flight — the flow calls it between replayed phases.
func (e *Env) RestoreCounters(batches, sims uint64) {
	e.batch.Store(batches)
	e.sims.Store(sims)
}

// plan returns the unit's compiled sampling plan for tmpl, compiling
// and caching it on first use. Plans are keyed by template content, so
// re-parsed or renamed copies of one body share one table; the cache is
// size-bounded (SetPlanCacheSize).
func (e *Env) plan(tmpl *template.Template) *generator.Plan {
	return e.plans.get(planKey(tmpl), func() *generator.Plan {
		return generator.Compile(tmpl, e.defaults)
	})
}

// Submit enqueues a batch of n test-instances of tmpl (nil = pure
// default behavior) on the scheduler and returns immediately. The batch
// seed is drawn from the environment's counter at submission, so a fixed
// submission order reproduces a fixed result regardless of worker count
// or completion order. Wait on the returned job for the aggregate.
// After Close, Submit returns ErrClosed.
func (e *Env) Submit(tmpl *template.Template, n int) (*Job, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := e.ctxErr(); err != nil {
		return nil, err
	}
	batchNum := e.batch.Add(1)
	batchSeed := e.seed.SplitIndex(batchNum)
	job := &Job{
		unit:      e.unit,
		unitName:  e.unitName,
		tmpl:      tmpl,
		plan:      e.plan(tmpl),
		seed:      batchSeed,
		seedState: batchSeed.State(),
		total:     coverage.NewCountsFor(e.unit.Model()),
		done:      make(chan struct{}),
		ctx:       e.ctx,
		campaign:  e.campaign,
		batch:     batchNum,
	}
	if n <= 0 {
		close(job.done)
		return job, nil
	}
	e.sims.Add(uint64(n))
	e.mBatches.Inc()
	e.hBatchSize.Observe(uint64(n))
	e.sched.enqueue(job, n)
	return job, nil
}

// Run simulates n test-instances of tmpl (nil = pure default behavior)
// and returns the aggregated counts. Single-worker environments run the
// batch inline — the sequential reference path the scheduler is tested
// against. After Close, Run returns ErrClosed.
func (e *Env) Run(tmpl *template.Template, n int) (*coverage.Counts, error) {
	if e.workers > 1 && n > 1 {
		job, err := e.Submit(tmpl, n)
		if err != nil {
			return nil, err
		}
		counts := job.Wait()
		if err := e.ctxErr(); err != nil {
			return nil, err
		}
		return counts, nil
	}
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := e.ctxErr(); err != nil {
		return nil, err
	}
	batchSeed := e.seed.SplitIndex(e.batch.Add(1))
	plan := e.plan(tmpl)
	c := coverage.NewCountsFor(e.unit.Model())
	for i := 0; i < n; i++ {
		if err := e.ctxErr(); err != nil {
			return nil, err
		}
		g := generator.NewFromPlan(plan, batchSeed.SplitIndex(uint64(i)).Uint64())
		c.Add(e.unit.Simulate(g))
	}
	if n > 0 {
		e.sims.Add(uint64(n))
		e.mBatches.Inc()
		e.mInstances.Add(uint64(n))
		e.hBatchSize.Observe(uint64(n))
	}
	return c, nil
}

// RunChunk simulates instances [lo, hi) of a relocated batch: tmpl (nil
// = pure default behavior) under the given batch seed state. Instance
// i's generator seed depends only on (batch seed, i), so the result is
// bit-identical to the chunk's execution inside the originating
// environment, whichever process runs it — this is the farm worker's
// entry point. The environment's own batch counter is not consumed.
func (e *Env) RunChunk(tmpl *template.Template, seedState uint64, lo, hi int) (*coverage.Counts, error) {
	c := coverage.NewCountsFor(e.unit.Model())
	if err := e.RunChunkInto(tmpl, seedState, lo, hi, c); err != nil {
		return nil, err
	}
	return c, nil
}

// RunChunkInto is RunChunk merging into a caller-owned aggregate —
// the allocation-free variant for callers that reuse a scratch Counts
// across chunks (the farm server's per-connection scratch, benches).
// dst must be sized to the unit's model; it is added to, not reset.
func (e *Env) RunChunkInto(tmpl *template.Template, seedState uint64, lo, hi int, dst *coverage.Counts) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if lo < 0 || hi < lo {
		return fmt.Errorf("sim: bad chunk range [%d, %d)", lo, hi)
	}
	if dst.Len() != e.unit.Model().Size() {
		return fmt.Errorf("sim: chunk aggregate tracks %d events, model has %d", dst.Len(), e.unit.Model().Size())
	}
	plan := e.plan(tmpl)
	seed := rng.New(seedState)
	for i := lo; i < hi; i++ {
		g := generator.NewFromPlan(plan, seed.SplitIndex(uint64(i)).Uint64())
		dst.Add(e.unit.Simulate(g))
	}
	if n := hi - lo; n > 0 {
		e.sims.Add(uint64(n))
		e.mInstances.Add(uint64(n))
	}
	return nil
}

// RunEach simulates n instances of every template and returns one
// aggregate per template, in order. All batches are submitted up front
// and run concurrently on the scheduler.
func (e *Env) RunEach(templates []*template.Template, n int) ([]*coverage.Counts, error) {
	out := make([]*coverage.Counts, len(templates))
	if e.workers <= 1 {
		for i, t := range templates {
			c, err := e.Run(t, n)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	}
	jobs := make([]*Job, len(templates))
	for i, t := range templates {
		job, err := e.Submit(t, n)
		if err != nil {
			return nil, err
		}
		jobs[i] = job
	}
	for i, j := range jobs {
		out[i] = j.Wait()
		if err := e.ctxErr(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunInto simulates n instances of tmpl and records the aggregate in the
// repository under the template's name, returning the aggregate.
func (e *Env) RunInto(repo *coverage.Repository, tmpl *template.Template, n int) (*coverage.Counts, error) {
	c, err := e.Run(tmpl, n)
	if err != nil {
		return nil, err
	}
	repo.RecordCounts(tmpl.Name, c)
	return c, nil
}

// BuildCorpus simulates the unit's entire base regression suite,
// simsPerTemplate instances each, into a fresh repository. This stands
// in for the "several weeks of mainstream unit simulation" that precede
// AS-CDG in the paper's result tables ("Before CDG" columns). All
// templates' batches run concurrently on the scheduler.
func (e *Env) BuildCorpus(simsPerTemplate int) (*coverage.Repository, error) {
	return e.BuildCorpusJournaled(simsPerTemplate, nil)
}

// CorpusTemplateRec is the journal record of one corpus template's
// aggregate: the counts plus the environment's seeding counters right
// after the template's batch was submitted, so a resumed build draws
// the exact batch seeds the original would have for the remainder.
type CorpusTemplateRec struct {
	I       int      `json:"i"`
	Name    string   `json:"name"`
	Hits    []uint64 `json:"hits"`
	Sims    uint64   `json:"sims"`
	Batches uint64   `json:"batches"`
	EnvSims uint64   `json:"env_sims"`
}

// BuildCorpusJournaled is BuildCorpus with crash-safe checkpointing:
// each template's aggregate is replayed from (or appended to) the
// cursor, in base-template order. A nil cursor degrades to a plain
// build. Replay consumes no simulations; the live remainder is
// submitted up front and journaled in submission order.
func (e *Env) BuildCorpusJournaled(simsPerTemplate int, cur *journal.Cursor) (*coverage.Repository, error) {
	repo := coverage.NewRepository(e.unit.Model())
	templates := e.unit.BaseTemplates()
	start := 0
	for start < len(templates) {
		var rec CorpusTemplateRec
		ok, err := cur.Take("corpus_template", &rec)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if rec.I != start || rec.Name != templates[start].Name || len(rec.Hits) != e.unit.Model().Size() {
			return nil, fmt.Errorf("sim: journal corpus record %d (%q) does not match template %d (%q)",
				rec.I, rec.Name, start, templates[start].Name)
		}
		repo.RecordCounts(rec.Name, coverage.CountsFromRaw(rec.Hits, rec.Sims))
		e.RestoreCounters(rec.Batches, rec.EnvSims)
		start++
	}
	if start == len(templates) {
		return repo, nil
	}
	type pending struct {
		job              *Job
		batches, envSims uint64
	}
	jobs := make([]pending, 0, len(templates)-start)
	for _, t := range templates[start:] {
		job, err := e.Submit(t, simsPerTemplate)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, pending{job, e.batch.Load(), e.sims.Load()})
	}
	for i, p := range jobs {
		counts := p.job.Wait()
		if err := e.ctxErr(); err != nil {
			return nil, err
		}
		name := templates[start+i].Name
		repo.RecordCounts(name, counts)
		hits, n := counts.Raw()
		if err := cur.Append("corpus_template", CorpusTemplateRec{
			I: start + i, Name: name, Hits: hits, Sims: n,
			Batches: p.batches, EnvSims: p.envSims,
		}); err != nil {
			return nil, err
		}
	}
	return repo, nil
}

// corpusHeader identifies a standalone corpus journal; resume rejects a
// journal whose header does not match the requested build.
type corpusHeader struct {
	Kind            string `json:"kind"`
	Unit            string `json:"unit"`
	Seed            uint64 `json:"seed"`
	SimsPerTemplate int    `json:"sims_per_template"`
	Events          int    `json:"events"`
}

// OpenCorpusJournal creates (resume false) or recovers (resume true) a
// standalone corpus-build journal for this environment — the
// crash-safety entry point for CLIs whose only simulation phase is
// BuildCorpus (regress, tacquery). On resume, the journal's header must
// match this environment's unit, seed and budget exactly; a mismatched
// journal is rejected rather than silently replayed into a different
// run. The caller owns closing the returned cursor.
func (e *Env) OpenCorpusJournal(path string, resume bool, simsPerTemplate int, rec *obs.Recorder) (*journal.Cursor, error) {
	want := corpusHeader{
		Kind: "corpus", Unit: e.unitName, Seed: e.Seed(),
		SimsPerTemplate: simsPerTemplate, Events: e.unit.Model().Size(),
	}
	if resume {
		recs, w, err := journal.Recover(path, rec, nil)
		if err != nil {
			return nil, err
		}
		cur := journal.NewCursor(w, recs)
		var got corpusHeader
		ok, err := cur.Take("corpus_header", &got)
		if err != nil {
			w.Close()
			return nil, err
		}
		if !ok || got != want {
			w.Close()
			return nil, fmt.Errorf("sim: journal %s does not match this corpus build (unit %q, seed %d, %d sims/template)",
				path, want.Unit, want.Seed, want.SimsPerTemplate)
		}
		rec.Counter("sim.corpus_resumes").Inc()
		return cur, nil
	}
	w, err := journal.Create(path, rec)
	if err != nil {
		return nil, err
	}
	cur := journal.NewCursor(w, nil)
	if err := cur.Append("corpus_header", want); err != nil {
		w.Close()
		return nil, err
	}
	return cur, nil
}
