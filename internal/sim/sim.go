// Package sim implements the batch simulation environment of the AS-CDG
// reproduction: the stand-in for the proprietary simulation farm the
// CDG-Runner submits jobs to (paper Section I, Fig. 2).
//
// The environment takes (test-template, N) jobs, shards each job into
// chunks that stream through one persistent worker-pool scheduler, and
// returns the aggregated coverage counts. Many jobs may be in flight at
// once (Submit/Wait); the pool is shared by all of them. Seeding is
// deterministic: every batch gets a fresh seed stream derived from the
// environment's base seed and a batch counter assigned at submission, so
// an entire AS-CDG run is reproducible from one seed — and bit-identical
// across worker counts and scheduling orders — while repeated
// submissions of the same template still see fresh sampling noise (the
// "dynamic noise" the optimizer must absorb, Section IV-E).
//
// Each job's template is compiled once into a generator.Plan (cached per
// template) and shared read-only by all N instances, so per-decision
// parameter resolution and allocation are off the per-simulation path.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/generator"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/template"
)

// Env is a batch simulation environment bound to one DUV.
type Env struct {
	unit     duv.DUV
	workers  int
	seed     *rng.RNG
	batch    atomic.Uint64
	sims     atomic.Uint64
	defaults generator.Defaults
	sched    *Scheduler

	// Observability handles (nil when disabled; all nil-safe).
	mBatches   *obs.Counter
	mInstances *obs.Counter // sequential-path instances (the scheduler counts its own)
	hBatchSize *obs.Histogram

	planMu sync.RWMutex
	plans  map[*template.Template]*generator.Plan
}

// NewEnv creates an environment for the unit with the given base seed.
// workers <= 0 selects GOMAXPROCS.
func NewEnv(unit duv.DUV, seed uint64, workers int) *Env {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Env{
		unit:     unit,
		workers:  workers,
		seed:     rng.New(seed),
		defaults: unit.Defaults(),
		sched:    newScheduler(workers),
		plans:    map[*template.Template]*generator.Plan{},
	}
}

// SetRecorder installs the environment's observability. It must be
// called before the first simulation is requested (the worker pool
// starts lazily on the first job, which publishes the handles to the
// workers). A nil recorder — the default — keeps every simulate path
// free of clocks and atomics. Instrumentation is purely observational:
// seeding, sharding, and merge order are identical with it on or off.
func (e *Env) SetRecorder(rec *obs.Recorder) {
	e.mBatches = rec.Counter("sim.batches_submitted")
	e.mInstances = rec.Counter("sim.instances_completed")
	e.hBatchSize = rec.Histogram("sim.batch_size", obs.SizeBounds())
	e.sched.setRecorder(rec)
}

// Close releases the environment's worker pool. No simulation may be
// requested afterwards. Leaving an environment unclosed leaks its idle
// workers until process exit — harmless for CLIs, worth avoiding in
// long-lived servers and benchmarks.
func (e *Env) Close() { e.sched.Close() }

// Unit returns the DUV the environment simulates.
func (e *Env) Unit() duv.DUV { return e.unit }

// Simulations returns the total number of simulations run so far — the
// cost metric every phase of the paper's evaluation reports. Submitted
// but unfinished jobs are already counted.
func (e *Env) Simulations() uint64 { return e.sims.Load() }

// plan returns the unit's compiled sampling plan for tmpl, compiling and
// caching it on first use. Plans are keyed by template identity; the
// cache holds every distinct template the environment has simulated.
func (e *Env) plan(tmpl *template.Template) *generator.Plan {
	e.planMu.RLock()
	p, ok := e.plans[tmpl]
	e.planMu.RUnlock()
	if ok {
		return p
	}
	p = generator.Compile(tmpl, e.defaults)
	e.planMu.Lock()
	// Re-check: a racing compiler may have won; keep the first plan so
	// every instance of the template shares one table.
	if q, ok := e.plans[tmpl]; ok {
		p = q
	} else {
		e.plans[tmpl] = p
	}
	e.planMu.Unlock()
	return p
}

// Submit enqueues a batch of n test-instances of tmpl (nil = pure
// default behavior) on the scheduler and returns immediately. The batch
// seed is drawn from the environment's counter at submission, so a fixed
// submission order reproduces a fixed result regardless of worker count
// or completion order. Wait on the returned job for the aggregate.
func (e *Env) Submit(tmpl *template.Template, n int) *Job {
	batchSeed := e.seed.SplitIndex(e.batch.Add(1))
	job := &Job{
		unit:  e.unit,
		plan:  e.plan(tmpl),
		seed:  batchSeed,
		total: coverage.NewCountsFor(e.unit.Model()),
		done:  make(chan struct{}),
	}
	if n <= 0 {
		close(job.done)
		return job
	}
	e.sims.Add(uint64(n))
	e.mBatches.Inc()
	e.hBatchSize.Observe(uint64(n))
	e.sched.enqueue(job, n)
	return job
}

// Run simulates n test-instances of tmpl (nil = pure default behavior)
// and returns the aggregated counts. Single-worker environments run the
// batch inline — the sequential reference path the scheduler is tested
// against.
func (e *Env) Run(tmpl *template.Template, n int) *coverage.Counts {
	if e.workers > 1 && n > 1 {
		return e.Submit(tmpl, n).Wait()
	}
	batchSeed := e.seed.SplitIndex(e.batch.Add(1))
	plan := e.plan(tmpl)
	c := coverage.NewCountsFor(e.unit.Model())
	for i := 0; i < n; i++ {
		g := generator.NewFromPlan(plan, batchSeed.SplitIndex(uint64(i)).Uint64())
		c.Add(e.unit.Simulate(g))
	}
	if n > 0 {
		e.sims.Add(uint64(n))
		e.mBatches.Inc()
		e.mInstances.Add(uint64(n))
		e.hBatchSize.Observe(uint64(n))
	}
	return c
}

// RunEach simulates n instances of every template and returns one
// aggregate per template, in order. All batches are submitted up front
// and run concurrently on the scheduler.
func (e *Env) RunEach(templates []*template.Template, n int) []*coverage.Counts {
	out := make([]*coverage.Counts, len(templates))
	if e.workers <= 1 {
		for i, t := range templates {
			out[i] = e.Run(t, n)
		}
		return out
	}
	jobs := make([]*Job, len(templates))
	for i, t := range templates {
		jobs[i] = e.Submit(t, n)
	}
	for i, j := range jobs {
		out[i] = j.Wait()
	}
	return out
}

// RunInto simulates n instances of tmpl and records the aggregate in the
// repository under the template's name, returning the aggregate.
func (e *Env) RunInto(repo *coverage.Repository, tmpl *template.Template, n int) *coverage.Counts {
	c := e.Run(tmpl, n)
	repo.RecordCounts(tmpl.Name, c)
	return c
}

// BuildCorpus simulates the unit's entire base regression suite,
// simsPerTemplate instances each, into a fresh repository. This stands
// in for the "several weeks of mainstream unit simulation" that precede
// AS-CDG in the paper's result tables ("Before CDG" columns). All
// templates' batches run concurrently on the scheduler.
func (e *Env) BuildCorpus(simsPerTemplate int) *coverage.Repository {
	repo := coverage.NewRepository(e.unit.Model())
	templates := e.unit.BaseTemplates()
	for i, c := range e.RunEach(templates, simsPerTemplate) {
		repo.RecordCounts(templates[i].Name, c)
	}
	return repo
}
