// Package sim implements the batch simulation environment of the AS-CDG
// reproduction: the stand-in for the proprietary simulation farm the
// CDG-Runner submits jobs to (paper Section I, Fig. 2).
//
// The environment takes (test-template, N) jobs, fans the N
// test-instances out over a worker pool, and returns the aggregated
// coverage counts. Seeding is deterministic: every batch gets a fresh
// seed stream derived from the environment's base seed and a batch
// counter, so an entire AS-CDG run is reproducible from one seed while
// repeated submissions of the same template still see fresh sampling
// noise — the "dynamic noise" the optimizer must absorb (Section IV-E).
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/generator"
	"repro/internal/rng"
	"repro/internal/template"
)

// Env is a batch simulation environment bound to one DUV.
type Env struct {
	unit    duv.DUV
	workers int
	seed    *rng.RNG
	batch   atomic.Uint64
	sims    atomic.Uint64
}

// NewEnv creates an environment for the unit with the given base seed.
// workers <= 0 selects GOMAXPROCS.
func NewEnv(unit duv.DUV, seed uint64, workers int) *Env {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Env{unit: unit, workers: workers, seed: rng.New(seed)}
}

// Unit returns the DUV the environment simulates.
func (e *Env) Unit() duv.DUV { return e.unit }

// Simulations returns the total number of simulations run so far — the
// cost metric every phase of the paper's evaluation reports.
func (e *Env) Simulations() uint64 { return e.sims.Load() }

// Run simulates n test-instances of tmpl (nil = pure default behavior)
// and returns the aggregated counts.
func (e *Env) Run(tmpl *template.Template, n int) *coverage.Counts {
	batchSeed := e.seed.SplitIndex(e.batch.Add(1))
	model := e.unit.Model()

	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		c := coverage.NewCountsFor(model)
		for i := 0; i < n; i++ {
			g := generator.New(tmpl, e.unit.Defaults(), batchSeed.SplitIndex(uint64(i)).Uint64())
			c.Add(e.unit.Simulate(g))
		}
		e.sims.Add(uint64(n))
		return c
	}

	parts := make([]*coverage.Counts, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := coverage.NewCountsFor(model)
			for i := w; i < n; i += workers {
				g := generator.New(tmpl, e.unit.Defaults(), batchSeed.SplitIndex(uint64(i)).Uint64())
				c.Add(e.unit.Simulate(g))
			}
			parts[w] = c
		}(w)
	}
	wg.Wait()
	total := coverage.NewCountsFor(model)
	for _, p := range parts {
		total.Merge(p)
	}
	e.sims.Add(uint64(n))
	return total
}

// RunEach simulates n instances of every template and returns one
// aggregate per template, in order.
func (e *Env) RunEach(templates []*template.Template, n int) []*coverage.Counts {
	out := make([]*coverage.Counts, len(templates))
	for i, t := range templates {
		out[i] = e.Run(t, n)
	}
	return out
}

// RunInto simulates n instances of tmpl and records the aggregate in the
// repository under the template's name, returning the aggregate.
func (e *Env) RunInto(repo *coverage.Repository, tmpl *template.Template, n int) *coverage.Counts {
	c := e.Run(tmpl, n)
	repo.RecordCounts(tmpl.Name, c)
	return c
}

// BuildCorpus simulates the unit's entire base regression suite,
// simsPerTemplate instances each, into a fresh repository. This stands
// in for the "several weeks of mainstream unit simulation" that precede
// AS-CDG in the paper's result tables ("Before CDG" columns).
func (e *Env) BuildCorpus(simsPerTemplate int) *coverage.Repository {
	repo := coverage.NewRepository(e.unit.Model())
	for _, tmpl := range e.unit.BaseTemplates() {
		e.RunInto(repo, tmpl, simsPerTemplate)
	}
	return repo
}
