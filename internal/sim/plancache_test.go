package sim

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/template"
)

// weighted returns a template whose content (and therefore fingerprint)
// varies with a: distinct cache entries for distinct a.
func weighted(t *testing.T, a int) *template.Template {
	t.Helper()
	tmpl, err := template.Parse(fmt.Sprintf(
		"template w%d { weight Mode { a: %d; b: 100; } }", a, a))
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

// TestPlanCacheBounded checks the compiled-plan cache respects its bound,
// evicts in LRU order, and reports hits/misses/evictions.
func TestPlanCacheBounded(t *testing.T) {
	env := NewEnv(newToy(), 1, 1)
	defer env.Close()
	rec := obs.NewRecorder()
	env.SetRecorder(rec)
	env.SetPlanCacheSize(2)

	for i := 0; i < 4; i++ {
		run(t, env, weighted(t, i), 4)
	}
	if n := env.plans.len(); n != 2 {
		t.Fatalf("cache holds %d plans, want bound of 2", n)
	}
	snap := rec.Metrics.Snapshot()
	if got := snap.Counters["sim.plan_cache.misses"]; got != 4 {
		t.Fatalf("misses = %d, want 4", got)
	}
	if got := snap.Counters["sim.plan_cache.evictions"]; got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
	if got := snap.Counters["sim.plan_cache.hits"]; got != 0 {
		t.Fatalf("hits = %d, want 0", got)
	}

	// The two most recent templates are resident: re-running them hits.
	run(t, env, weighted(t, 2), 4)
	run(t, env, weighted(t, 3), 4)
	snap = rec.Metrics.Snapshot()
	if got := snap.Counters["sim.plan_cache.hits"]; got != 2 {
		t.Fatalf("hits after re-run = %d, want 2", got)
	}
	// The oldest was evicted: re-running it misses and evicts again.
	run(t, env, weighted(t, 0), 4)
	snap = rec.Metrics.Snapshot()
	if got := snap.Counters["sim.plan_cache.misses"]; got != 5 {
		t.Fatalf("misses after LRU re-run = %d, want 5", got)
	}
	if got := snap.Counters["sim.plan_cache.evictions"]; got != 3 {
		t.Fatalf("evictions after LRU re-run = %d, want 3", got)
	}
}

// TestPlanCacheContentKeyed checks the cache key is the template's
// content, not its name or pointer: a re-parse under a different name
// hits the same entry — the property that keeps cmd/farmd (which parses
// every template off the wire) from compiling per request.
func TestPlanCacheContentKeyed(t *testing.T) {
	env := NewEnv(newToy(), 1, 1)
	defer env.Close()
	rec := obs.NewRecorder()
	env.SetRecorder(rec)

	a, err := template.Parse("template first { weight Mode { a: 10; b: 90; } }")
	if err != nil {
		t.Fatal(err)
	}
	b, err := template.Parse("template second { weight Mode { a: 10; b: 90; } }")
	if err != nil {
		t.Fatal(err)
	}
	run(t, env, a, 4)
	run(t, env, b, 4)
	snap := rec.Metrics.Snapshot()
	if got := snap.Counters["sim.plan_cache.misses"]; got != 1 {
		t.Fatalf("misses = %d, want 1 (same content must share one plan)", got)
	}
	if got := snap.Counters["sim.plan_cache.hits"]; got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if n := env.plans.len(); n != 1 {
		t.Fatalf("cache holds %d plans, want 1", n)
	}
}

// TestPlanCacheEvictionIsNeutral checks an evicted plan recompiles to
// the same sampling behavior: a cache bound of 1 under alternating
// templates gives bit-identical aggregates to an unbounded cache.
func TestPlanCacheEvictionIsNeutral(t *testing.T) {
	mk := func(bound int) []uint64 {
		env := NewEnv(newToy(), 77, 1)
		defer env.Close()
		if bound > 0 {
			env.SetPlanCacheSize(bound)
		}
		var hits []uint64
		for i := 0; i < 3; i++ {
			for j := 0; j < 2; j++ {
				c := run(t, env, weighted(t, 30+j), 50)
				hits = append(hits, c.Hits(0), c.Hits(1))
			}
		}
		return hits
	}
	unbounded, thrashing := mk(0), mk(1)
	for i := range unbounded {
		if unbounded[i] != thrashing[i] {
			t.Fatalf("sample %d diverged: %d != %d", i, unbounded[i], thrashing[i])
		}
	}
}
