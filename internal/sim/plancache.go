package sim

import (
	"container/list"
	"sync"

	"repro/internal/generator"
	"repro/internal/obs"
	"repro/internal/template"
)

// DefaultPlanCacheSize bounds the environment's compiled-plan cache. A
// full AS-CDG flow touches far fewer distinct template bodies than this
// at any one time, so CLIs never evict; the bound exists for long-lived
// daemons (cmd/farmd) that parse templates off the wire — a fresh
// pointer per request — and would otherwise retain every body ever
// simulated.
const DefaultPlanCacheSize = 256

// planCache is a size-bounded LRU of compiled sampling plans keyed by
// template *content* (name-independent fingerprint), so two parses of
// the same source — or two sampling candidates that happen to coincide —
// share one read-only decision table.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	// Metric handles (nil when observability is off; all nil-safe).
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// planEntry is one cached plan with its key (needed to unmap on evict).
type planEntry struct {
	key  string
	plan *generator.Plan
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		cap:     capacity,
		entries: map[string]*list.Element{},
		order:   list.New(),
	}
}

// setRecorder installs the cache's hit/miss/evict counters.
func (c *planCache) setRecorder(rec *obs.Recorder) {
	c.hits = rec.Counter("sim.plan_cache.hits")
	c.misses = rec.Counter("sim.plan_cache.misses")
	c.evictions = rec.Counter("sim.plan_cache.evictions")
}

// setCap rebounds the cache, evicting least-recently-used plans if the
// new bound is already exceeded.
func (c *planCache) setCap(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	c.cap = capacity
	c.evictOverflow()
	c.mu.Unlock()
}

// planKey is the cache identity of a template body. The nil template
// (pure default behavior) hashes to the empty key; otherwise the
// name-independent content fingerprint, so renaming a template does not
// duplicate its plan.
func planKey(tmpl *template.Template) string {
	if tmpl == nil {
		return ""
	}
	return tmpl.Fingerprint()
}

// get returns the cached plan for key, compiling via compile on a miss.
// Compilation happens under the cache lock: plans must be unique per key
// (every instance of a template shares one table), and compiles are
// per-batch, not per-instance, so contention is negligible.
func (c *planCache) get(key string, compile func() *generator.Plan) *generator.Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*planEntry).plan
	}
	c.misses.Inc()
	p := compile()
	c.entries[key] = c.order.PushFront(&planEntry{key: key, plan: p})
	c.evictOverflow()
	return p
}

// evictOverflow drops least-recently-used entries down to the bound.
// Caller holds c.mu.
func (c *planCache) evictOverflow() {
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*planEntry).key)
		c.evictions.Inc()
	}
}

// len reports the number of cached plans (for tests).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
