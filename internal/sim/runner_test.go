package sim

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/coverage"
	"repro/internal/obs"
)

// TestClosedEnvReturnsErrClosed checks every simulation entry point
// reports ErrClosed — rather than hanging on a closed scheduler or
// panicking — after Close.
func TestClosedEnvReturnsErrClosed(t *testing.T) {
	env := Env2Workers(t)
	run(t, env, modeB(t), 10) // env works before Close
	env.Close()
	env.Close() // idempotent

	if _, err := env.Submit(modeB(t), 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	if _, err := env.Run(modeB(t), 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close: err = %v, want ErrClosed", err)
	}
	if _, err := env.Run(nil, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("sequential Run after Close: err = %v, want ErrClosed", err)
	}
	if _, err := env.RunEach(env.Unit().BaseTemplates(), 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunEach after Close: err = %v, want ErrClosed", err)
	}
	repo := coverage.NewRepository(env.Unit().Model())
	if _, err := env.RunInto(repo, modeB(t), 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunInto after Close: err = %v, want ErrClosed", err)
	}
	if _, err := env.BuildCorpus(10); !errors.Is(err, ErrClosed) {
		t.Fatalf("BuildCorpus after Close: err = %v, want ErrClosed", err)
	}
	if _, err := env.RunChunk(modeB(t), 1, 0, 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunChunk after Close: err = %v, want ErrClosed", err)
	}
}

// Env2Workers builds a 2-worker toy env (helper so the closed test hits
// both the scheduler and the sequential Run paths).
func Env2Workers(t *testing.T) *Env {
	t.Helper()
	return NewEnv(newToy(), 1, 2)
}

func TestRunChunkRejectsBadRange(t *testing.T) {
	env := NewEnv(newToy(), 1, 1)
	defer env.Close()
	if _, err := env.RunChunk(nil, 1, -1, 3); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := env.RunChunk(nil, 1, 5, 3); err == nil {
		t.Fatal("inverted range accepted")
	}
}

// TestRunChunkRelocatable is the farm's core determinism property: a
// chunk re-executed in a *different* environment (different base seed,
// different process in real deployments) from just (template, seed
// state, index range) contributes exactly the bits the originating
// scheduler would have computed.
func TestRunChunkRelocatable(t *testing.T) {
	env := NewEnv(newToy(), 5, 4)
	defer env.Close()
	base := env.Unit().BaseTemplates()[0]
	job := submit(t, env, base, 137)
	want := job.Wait()

	worker := NewEnv(newToy(), 999, 1) // unrelated seed: RunChunk ignores it
	defer worker.Close()
	got := coverage.NewCountsFor(worker.Unit().Model())
	for _, r := range [][2]int{{0, 50}, {50, 51}, {51, 137}} {
		c, err := worker.RunChunk(job.tmpl, job.seedState, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		got.Merge(c)
	}
	if got.Sims() != want.Sims() || got.Hits(0) != want.Hits(0) || got.Hits(1) != want.Hits(1) {
		t.Fatalf("relocated chunks diverged: got %d/%d/%d, want %d/%d/%d",
			got.Sims(), got.Hits(0), got.Hits(1), want.Sims(), want.Hits(0), want.Hits(1))
	}
}

// envRunner relocates chunks into a second environment via RunChunk —
// an in-process stand-in for a farm worker daemon.
type envRunner struct {
	env     *Env
	invoked atomic.Int64
}

func (r *envRunner) RunChunk(c RemoteChunk) (*coverage.Counts, error) {
	r.invoked.Add(1)
	return r.env.RunChunk(c.Template, c.Seed, c.Lo, c.Hi)
}

// errRunner always fails, forcing the local fallback path.
type errRunner struct{ invoked atomic.Int64 }

func (r *errRunner) RunChunk(RemoteChunk) (*coverage.Counts, error) {
	r.invoked.Add(1)
	return nil, errors.New("worker unreachable")
}

// badRunner returns a well-formed-looking but wrong-sized aggregate; the
// scheduler must detect and discard it.
type badRunner struct{}

func (badRunner) RunChunk(c RemoteChunk) (*coverage.Counts, error) {
	return coverage.NewCounts(c.Events), nil // zero sims: malformed
}

// runWithRunner runs a fixed workload with an optional ChunkRunner
// attached and returns the aggregate of both batches.
func runWithRunner(t *testing.T, r ChunkRunner, lanes, workers int) *coverage.Counts {
	t.Helper()
	env := NewEnv(newToy(), 123, workers)
	defer env.Close()
	if r != nil {
		env.AttachRunner(r, lanes)
	}
	base := env.Unit().BaseTemplates()[0]
	total := coverage.NewCountsFor(env.Unit().Model())
	jobs := []*Job{submit(t, env, base, 500), submit(t, env, modeB(t), 300)}
	for _, j := range jobs {
		total.Merge(j.Wait())
	}
	return total
}

func countsEqual(a, b *coverage.Counts) bool {
	return a.Sims() == b.Sims() && a.Hits(0) == b.Hits(0) && a.Hits(1) == b.Hits(1)
}

// TestChunkRunnerBitIdentical checks attaching a remote backend changes
// nothing about results: local-only, remote-assisted, failing-remote and
// malformed-remote runs of the same seed agree bit for bit — the
// acceptance criterion of the farm's determinism contract.
func TestChunkRunnerBitIdentical(t *testing.T) {
	want := runWithRunner(t, nil, 0, 4)

	workerEnv := NewEnv(newToy(), 1, 1)
	defer workerEnv.Close()
	remote := &envRunner{env: workerEnv}
	if got := runWithRunner(t, remote, 2, 4); !countsEqual(got, want) {
		t.Fatalf("remote-assisted run diverged: %d/%d/%d vs %d/%d/%d",
			got.Sims(), got.Hits(0), got.Hits(1), want.Sims(), want.Hits(0), want.Hits(1))
	}

	failing := &errRunner{}
	if got := runWithRunner(t, failing, 2, 4); !countsEqual(got, want) {
		t.Fatalf("failing-remote run diverged")
	}
	if got := runWithRunner(t, badRunner{}, 2, 4); !countsEqual(got, want) {
		t.Fatalf("malformed-remote run diverged")
	}
}

// TestChunkRunnerObsAccounting drives a workload where remote lanes
// dominate (1 local worker, 4 remote lanes) and checks the scheduler's
// farm-side accounting: every chunk lands exactly once, remote + local
// chunk counts add up, and failures surface as fallbacks, not as lost
// or doubled instances.
func TestChunkRunnerObsAccounting(t *testing.T) {
	const n = 2000
	for _, tc := range []struct {
		name   string
		runner ChunkRunner
	}{
		{"healthy", nil}, // replaced below with an envRunner
		{"failing", &errRunner{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env := NewEnv(newToy(), 9, 1)
			defer env.Close()
			rec := obs.NewRecorder()
			env.SetRecorder(rec)
			r := tc.runner
			if r == nil {
				workerEnv := NewEnv(newToy(), 1, 1)
				defer workerEnv.Close()
				r = &envRunner{env: workerEnv}
			}
			env.AttachRunner(r, 4)
			c := run(t, env, env.Unit().BaseTemplates()[0], n)
			if c.Sims() != n {
				t.Fatalf("sims = %d, want %d (chunks lost or doubled)", c.Sims(), n)
			}
			snap := rec.Metrics.Snapshot()
			if got := snap.Counters["sim.instances_completed"]; got != n {
				t.Fatalf("instances_completed = %d, want %d", got, n)
			}
			remote := snap.Counters["sim.chunks_remote"]
			fallbacks := snap.Counters["sim.remote_fallbacks"]
			if tc.name == "failing" && remote != 0 {
				t.Fatalf("failing runner credited with %d remote chunks", remote)
			}
			if tc.name == "healthy" && fallbacks != 0 {
				t.Fatalf("healthy runner charged %d fallbacks", fallbacks)
			}
			t.Logf("%s: %d chunks, %d remote, %d fallbacks",
				tc.name, snap.Counters["sim.chunks_completed"], remote, fallbacks)
		})
	}
}
