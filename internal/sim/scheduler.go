package sim

import (
	"sync"
	"sync/atomic"

	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/generator"
	"repro/internal/rng"
)

// Job is a batch simulation accepted by the environment's scheduler: N
// test-instances of one compiled template. Results are retrieved with
// Wait; a Job may be waited on by at most one goroutine and is fulfilled
// even if the submitter never waits.
type Job struct {
	unit    duv.DUV
	plan    *generator.Plan
	seed    *rng.RNG // the job's batch seed stream
	pending atomic.Int64
	mu      sync.Mutex
	total   *coverage.Counts
	done    chan struct{}
}

// Wait blocks until every instance of the job has been simulated and
// returns the aggregated counts.
func (j *Job) Wait() *coverage.Counts {
	<-j.done
	return j.total
}

// chunk is one contiguous shard [lo, hi) of a job's instance indices.
// Instance i's generator seed depends only on the job's batch seed and i,
// never on which worker runs it or in which order, so any sharding of a
// job yields bit-identical aggregates.
type chunk struct {
	job    *Job
	lo, hi int
}

// Scheduler is a persistent worker pool for batch simulation. Workers
// are started once (lazily, on the first job) and live until Close;
// every job, from any goroutine, is sharded into chunks and streamed
// through the same pool, so concurrent jobs fill the machine instead of
// spawning and joining a fresh goroutine set per batch.
type Scheduler struct {
	workers int
	tasks   chan chunk
	start   sync.Once
	stop    sync.Once
}

// newScheduler sizes a pool with the given worker count (>= 1). The task
// queue is buffered so submitters rarely block while the pool drains.
func newScheduler(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	return &Scheduler{workers: workers, tasks: make(chan chunk, workers*8)}
}

// enqueue shards a job of n instances into chunks and hands them to the
// pool. It may block if the task queue is full; workers always drain it,
// so submission cannot deadlock.
func (s *Scheduler) enqueue(j *Job, n int) {
	s.start.Do(func() {
		for w := 0; w < s.workers; w++ {
			go s.work()
		}
	})
	// Shard into at most 2 chunks per worker, at least 8 instances per
	// chunk so chunk bookkeeping stays negligible next to simulation.
	size := (n + 2*s.workers - 1) / (2 * s.workers)
	if size < 8 {
		size = 8
	}
	chunks := (n + size - 1) / size
	j.pending.Store(int64(chunks))
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		s.tasks <- chunk{job: j, lo: lo, hi: hi}
	}
}

// work is one worker's loop: simulate a chunk into a private aggregate,
// merge it into the job, and complete the job when its last chunk lands.
// Counts merging is commutative, so completion order does not affect the
// result.
func (s *Scheduler) work() {
	for t := range s.tasks {
		j := t.job
		local := coverage.NewCounts(j.total.Len())
		for i := t.lo; i < t.hi; i++ {
			g := generator.NewFromPlan(j.plan, j.seed.SplitIndex(uint64(i)).Uint64())
			local.Add(j.unit.Simulate(g))
		}
		j.mu.Lock()
		j.total.Merge(local)
		j.mu.Unlock()
		if j.pending.Add(-1) == 0 {
			close(j.done)
		}
	}
}

// Close shuts the pool down; idle workers exit after finishing queued
// work. No job may be submitted after Close. Close is idempotent.
func (s *Scheduler) Close() {
	s.stop.Do(func() { close(s.tasks) })
}
