package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/generator"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/template"
)

// Job is a batch simulation accepted by the environment's scheduler: N
// test-instances of one compiled template. Results are retrieved with
// Wait; a Job may be waited on by at most one goroutine and is fulfilled
// even if the submitter never waits.
type Job struct {
	unit    duv.DUV
	plan    *generator.Plan
	seed    *rng.RNG // the job's batch seed stream
	pending atomic.Int64
	mu      sync.Mutex
	total   *coverage.Counts
	done    chan struct{}

	// Relocation identity: everything a remote worker needs to reproduce
	// a chunk of this job bit-identically (read-only after Submit).
	unitName  string
	tmpl      *template.Template // nil = pure defaults
	seedState uint64             // seed's raw state; rng.New(seedState) reproduces it

	// Trace-correlation identity (read-only after Submit, purely
	// observational): the owning campaign and the job's batch sequence
	// number, stamped onto chunk spans and outbound farm frames.
	campaign string
	batch    uint64

	// ctx, when non-nil, lets queued chunks abort without simulating. The
	// job still completes (Wait returns), but with partial counts — the
	// submitter is expected to notice ctx.Err() and discard them.
	ctx context.Context
}

// canceled reports whether the job's context has been canceled. Safe on
// a nil context (never canceled).
func (j *Job) canceled() bool {
	return j.ctx != nil && j.ctx.Err() != nil
}

// Wait blocks until every instance of the job has been simulated and
// returns the aggregated counts.
func (j *Job) Wait() *coverage.Counts {
	<-j.done
	return j.total
}

// chunk is one contiguous shard [lo, hi) of a job's instance indices.
// Instance i's generator seed depends only on the job's batch seed and i,
// never on which worker runs it or in which order, so any sharding of a
// job yields bit-identical aggregates. id is the process-unique chunk
// sequence number used for cross-process trace correlation; it plays no
// part in seeding or merging.
type chunk struct {
	job    *Job
	lo, hi int
	id     uint64
}

// chunkSeq issues process-unique chunk IDs. A plain counter (not
// per-environment) so merged fleet traces never alias two chunks from
// different environments of the same process.
var chunkSeq atomic.Uint64

// RemoteChunk is a relocatable chunk description: everything another
// process needs to reproduce the chunk's simulations bit for bit.
// Instance i draws its generator seed from Seed's stream via
// SplitIndex(i), exactly as the local workers do.
type RemoteChunk struct {
	// Unit names the DUV (duv.New on the remote side).
	Unit string
	// Template is the batch's template; nil means pure default behavior.
	Template *template.Template
	// Seed is the batch seed's raw state (rng.New(Seed) reconstructs it).
	Seed uint64
	// Lo, Hi bound the chunk's instance indices: [Lo, Hi).
	Lo, Hi int
	// Events is the unit's coverage model size, for response validation.
	Events int

	// Campaign, Batch and Chunk are the chunk's trace-correlation
	// identity: the owning campaign ID ("" for standalone runs), the
	// job's batch sequence number, and the process-unique chunk
	// sequence number. Purely observational — runners carry them onto
	// worker-side spans so a merged fleet trace lines up, and no result
	// bit ever depends on them.
	Campaign string
	Batch    uint64
	Chunk    uint64
}

// ChunkRunner executes relocated chunks — the seam where a distributed
// backend (internal/farm's dispatcher) plugs into the scheduler. A
// runner returns the chunk's aggregate or an error; on error (or a
// malformed aggregate) the scheduler re-executes the chunk locally, so
// runners may fail freely without affecting results. Implementations
// must be safe for concurrent use by many lanes.
type ChunkRunner interface {
	RunChunk(c RemoteChunk) (*coverage.Counts, error)
}

// ChunkRunnerInto is the allocation-free refinement of ChunkRunner:
// the chunk's aggregate is merged into a caller-owned dst (sized to
// c.Events) instead of being returned in a fresh Counts. Remote lanes
// probe for it and keep one scratch aggregate per lane, so a healthy
// farm path allocates nothing per chunk. On error dst must be left
// untouched; the lane then falls back to local execution as usual.
type ChunkRunnerInto interface {
	RunChunkInto(c RemoteChunk, dst *coverage.Counts) error
}

// Scheduler is a persistent worker pool for batch simulation. Workers
// are started once (lazily, on the first job) and live until Close;
// every job, from any goroutine, is sharded into chunks and streamed
// through the same pool, so concurrent jobs fill the machine instead of
// spawning and joining a fresh goroutine set per batch. Remote lanes
// (attachRunner) pull from the same queue as the local workers.
type Scheduler struct {
	workers int
	tasks   chan chunk
	start   sync.Once
	stop    sync.Once
	obs     *schedObs
}

// schedObs holds the scheduler's pre-resolved metric handles so the
// worker loop updates them with plain atomic ops — no registry lookups,
// no locks — and a disabled run (obs == nil) pays one pointer check per
// chunk. Purely observational: results and seeding are untouched.
type schedObs struct {
	tracer    *obs.Tracer
	jobs      *obs.Counter // jobs submitted
	jobsDone  *obs.Counter // jobs fully completed
	chunks    *obs.Counter // chunks completed
	instances *obs.Counter // test-instances simulated
	remote    *obs.Counter // chunks completed by a remote runner
	fallbacks *obs.Counter // remote failures re-executed locally
	aborted   *obs.Counter // queued chunks dropped by cancellation
	queue     *obs.Gauge   // chunks queued but not yet picked up
	chunkNs   *obs.Histogram
	chunkSize *obs.Histogram
	simNs     *obs.Histogram // per-instance latency (chunk mean)
	busy      []*obs.Counter // per-worker busy nanoseconds
}

func newSchedObs(rec *obs.Recorder, workers int) *schedObs {
	if rec == nil || (rec.Metrics == nil && rec.Trace == nil) {
		return nil
	}
	o := &schedObs{
		tracer:    rec.Trace,
		jobs:      rec.Counter("sim.jobs_submitted"),
		jobsDone:  rec.Counter("sim.jobs_completed"),
		chunks:    rec.Counter("sim.chunks_completed"),
		instances: rec.Counter("sim.instances_completed"),
		remote:    rec.Counter("sim.chunks_remote"),
		fallbacks: rec.Counter("sim.remote_fallbacks"),
		aborted:   rec.Counter("sim.chunks_aborted"),
		queue:     rec.Gauge("sim.queue_depth"),
		chunkNs:   rec.Histogram("sim.chunk_ns", obs.LatencyBounds()),
		chunkSize: rec.Histogram("sim.chunk_size", obs.SizeBounds()),
		simNs:     rec.Histogram("sim.sim_ns", obs.LatencyBounds()),
		busy:      make([]*obs.Counter, workers),
	}
	for w := range o.busy {
		o.busy[w] = rec.Counter(fmt.Sprintf("sim.worker.%02d.busy_ns", w))
	}
	return o
}

// setRecorder installs the scheduler's observability. It must be called
// before the first job is enqueued (workers start lazily, so the
// handles are published to them by the pool-start synchronization).
func (s *Scheduler) setRecorder(rec *obs.Recorder) {
	s.obs = newSchedObs(rec, s.workers)
}

// newScheduler sizes a pool with the given worker count (>= 1). The task
// queue is buffered so submitters rarely block while the pool drains.
func newScheduler(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	return &Scheduler{workers: workers, tasks: make(chan chunk, workers*8)}
}

// enqueue shards a job of n instances into chunks and hands them to the
// pool. It may block if the task queue is full; workers always drain it,
// so submission cannot deadlock.
func (s *Scheduler) enqueue(j *Job, n int) {
	s.start.Do(func() {
		for w := 0; w < s.workers; w++ {
			go s.work(w)
		}
	})
	// Shard into at most 2 chunks per worker, at least 8 instances per
	// chunk so chunk bookkeeping stays negligible next to simulation.
	size := (n + 2*s.workers - 1) / (2 * s.workers)
	if size < 8 {
		size = 8
	}
	chunks := (n + size - 1) / size
	j.pending.Store(int64(chunks))
	o := s.obs
	o.countJob()
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		o.countEnqueue()
		s.tasks <- chunk{job: j, lo: lo, hi: hi, id: chunkSeq.Add(1)}
	}
}

// attachRunner starts lanes goroutines that delegate chunks to r,
// falling back to local execution when r fails. Lanes exit when the
// scheduler closes, exactly like local workers.
func (s *Scheduler) attachRunner(r ChunkRunner, lanes int) {
	if r == nil || lanes < 1 {
		return
	}
	for i := 0; i < lanes; i++ {
		go s.remoteWork(i, r)
	}
}

// countJob / countEnqueue are nil-safe submission-side hooks.
func (o *schedObs) countJob() {
	if o != nil {
		o.jobs.Inc()
	}
}

func (o *schedObs) countEnqueue() {
	if o != nil {
		o.queue.Add(1)
	}
}

// scratchFor returns a lane-local scratch aggregate for an n-event
// chunk: the previous scratch reset in place when the size still
// matches, a fresh one otherwise. Jobs against one model share a size,
// so steady state allocates nothing.
func scratchFor(scratch *coverage.Counts, n int) *coverage.Counts {
	if scratch == nil || scratch.Len() != n {
		return coverage.NewCounts(n)
	}
	scratch.Reset()
	return scratch
}

// work is one worker's loop: simulate a chunk into the worker's scratch
// aggregate, merge it into the job, and complete the job when its last
// chunk lands. Counts merging is commutative, so completion order does
// not affect the result; the scratch is private to the worker and reset
// per chunk, so the loop allocates nothing in steady state.
func (s *Scheduler) work(id int) {
	var scratch *coverage.Counts
	for t := range s.tasks {
		o := s.obs
		if t.job.canceled() {
			// Cancellation: the chunk still lands (so Wait returns and the
			// job drains) but contributes nothing — no simulation runs.
			completed := s.complete(t, nil)
			if o != nil {
				o.queue.Add(-1)
				o.aborted.Inc()
				if completed {
					o.jobsDone.Inc()
				}
			}
			continue
		}
		scratch = scratchFor(scratch, t.job.total.Len())
		if o == nil {
			s.simulateChunkInto(t, scratch)
			s.complete(t, scratch)
			continue
		}
		o.queue.Add(-1)
		sp := o.tracer.Span("sim", "chunk").WithTid(100 + id)
		start := time.Now()
		s.simulateChunkInto(t, scratch)
		completed := s.complete(t, scratch)
		dur := time.Since(start)
		n := uint64(t.hi - t.lo)
		if sp != nil {
			sp.SetArg("instances", n)
			setTraceIdentity(sp, t)
			sp.End()
		}
		o.busy[id].Add(uint64(dur))
		o.chunkNs.Observe(uint64(dur))
		o.chunkSize.Observe(n)
		o.simNs.Observe(uint64(dur) / n)
		o.chunks.Inc()
		o.instances.Add(n)
		if completed {
			o.jobsDone.Inc()
		}
	}
}

// remoteWork is one remote lane's loop: hand a chunk to the runner and
// merge its aggregate, re-executing locally if the runner fails or
// returns a malformed result. Either way the chunk lands exactly once,
// so aggregates can never double-count — the core of the farm's
// fault-tolerance contract. Runners that implement ChunkRunnerInto
// merge straight into the lane's scratch aggregate, so the healthy
// remote path allocates nothing per chunk.
func (s *Scheduler) remoteWork(lane int, r ChunkRunner) {
	rInto, _ := r.(ChunkRunnerInto)
	var scratch *coverage.Counts
	for t := range s.tasks {
		o := s.obs
		if t.job.canceled() {
			completed := s.complete(t, nil)
			if o != nil {
				o.queue.Add(-1)
				o.aborted.Inc()
				if completed {
					o.jobsDone.Inc()
				}
			}
			continue
		}
		n := uint64(t.hi - t.lo)
		var sp *obs.Span
		var start time.Time
		if o != nil {
			o.queue.Add(-1)
			sp = o.tracer.Span("sim", "chunk_remote").WithTid(300 + lane)
			start = time.Now()
		}
		events := t.job.total.Len()
		rc := RemoteChunk{
			Unit:     t.job.unitName,
			Template: t.job.tmpl,
			Seed:     t.job.seedState,
			Lo:       t.lo,
			Hi:       t.hi,
			Events:   events,
			Campaign: t.job.campaign,
			Batch:    t.job.batch,
			Chunk:    t.id,
		}
		scratch = scratchFor(scratch, events)
		remote := false
		if rInto != nil {
			if err := rInto.RunChunkInto(rc, scratch); err == nil &&
				scratch.Len() == events && scratch.Sims() == n {
				remote = true
			} else {
				scratch.Reset() // discard any partial merge before fallback
			}
		} else if counts, err := r.RunChunk(rc); err == nil && counts != nil &&
			counts.Len() == events && counts.Sims() == n {
			scratch.Merge(counts)
			remote = true
		}
		if !remote {
			// Remote execution failed (worker down, timeout, bad frame):
			// the chunk must still land exactly once, so run it here —
			// unless cancellation arrived while the remote attempt ran.
			if o != nil {
				o.fallbacks.Inc()
			}
			if t.job.canceled() {
				if o != nil {
					o.aborted.Inc()
				}
			} else {
				s.simulateChunkInto(t, scratch)
			}
		}
		completed := s.complete(t, scratch)
		if o == nil {
			continue
		}
		dur := time.Since(start)
		if sp != nil {
			sp.SetArg("instances", n)
			sp.SetArg("remote", remote)
			setTraceIdentity(sp, t)
			sp.End()
		}
		o.chunkNs.Observe(uint64(dur))
		o.chunkSize.Observe(n)
		if n > 0 {
			o.simNs.Observe(uint64(dur) / n)
		}
		o.chunks.Inc()
		o.instances.Add(n)
		if remote {
			o.remote.Inc()
		}
		if completed {
			o.jobsDone.Inc()
		}
	}
}

// setTraceIdentity stamps the chunk's correlation identity onto its
// span: the IDs a worker-side span on another host echoes back, so the
// merged fleet trace lines parent and child up.
func setTraceIdentity(sp *obs.Span, t chunk) {
	sp.SetArg("chunk", t.id)
	sp.SetArg("batch", t.job.batch)
	if t.job.campaign != "" {
		sp.SetArg("campaign", t.job.campaign)
	}
}

// simulateChunkInto runs one chunk locally, merging into the caller's
// scratch aggregate. This is the simulate hot path: it takes no locks,
// touches no observability state, and allocates nothing itself.
func (s *Scheduler) simulateChunkInto(t chunk, dst *coverage.Counts) {
	j := t.job
	for i := t.lo; i < t.hi; i++ {
		g := generator.NewFromPlan(j.plan, j.seed.SplitIndex(uint64(i)).Uint64())
		dst.Add(j.unit.Simulate(g))
	}
}

// complete merges one chunk's aggregate into its job — exactly once per
// chunk, whoever computed it — and reports whether it was the job's last
// chunk (nil counts means the chunk contributes nothing: cancellation).
// Counts merging is commutative, so completion order does not affect
// the result, and merging copies, so callers may reuse counts as their
// scratch for the next chunk.
func (s *Scheduler) complete(t chunk, counts *coverage.Counts) bool {
	j := t.job
	j.mu.Lock()
	j.total.Merge(counts)
	j.mu.Unlock()
	if j.pending.Add(-1) == 0 {
		close(j.done)
		return true
	}
	return false
}

// Close shuts the pool down; idle workers and remote lanes exit after
// finishing queued work. No job may be submitted after Close. Close is
// idempotent.
func (s *Scheduler) Close() {
	s.stop.Do(func() { close(s.tasks) })
}
