package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/generator"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Job is a batch simulation accepted by the environment's scheduler: N
// test-instances of one compiled template. Results are retrieved with
// Wait; a Job may be waited on by at most one goroutine and is fulfilled
// even if the submitter never waits.
type Job struct {
	unit    duv.DUV
	plan    *generator.Plan
	seed    *rng.RNG // the job's batch seed stream
	pending atomic.Int64
	mu      sync.Mutex
	total   *coverage.Counts
	done    chan struct{}
}

// Wait blocks until every instance of the job has been simulated and
// returns the aggregated counts.
func (j *Job) Wait() *coverage.Counts {
	<-j.done
	return j.total
}

// chunk is one contiguous shard [lo, hi) of a job's instance indices.
// Instance i's generator seed depends only on the job's batch seed and i,
// never on which worker runs it or in which order, so any sharding of a
// job yields bit-identical aggregates.
type chunk struct {
	job    *Job
	lo, hi int
}

// Scheduler is a persistent worker pool for batch simulation. Workers
// are started once (lazily, on the first job) and live until Close;
// every job, from any goroutine, is sharded into chunks and streamed
// through the same pool, so concurrent jobs fill the machine instead of
// spawning and joining a fresh goroutine set per batch.
type Scheduler struct {
	workers int
	tasks   chan chunk
	start   sync.Once
	stop    sync.Once
	obs     *schedObs
}

// schedObs holds the scheduler's pre-resolved metric handles so the
// worker loop updates them with plain atomic ops — no registry lookups,
// no locks — and a disabled run (obs == nil) pays one pointer check per
// chunk. Purely observational: results and seeding are untouched.
type schedObs struct {
	tracer    *obs.Tracer
	jobs      *obs.Counter // jobs submitted
	jobsDone  *obs.Counter // jobs fully completed
	chunks    *obs.Counter // chunks completed
	instances *obs.Counter // test-instances simulated
	queue     *obs.Gauge   // chunks queued but not yet picked up
	chunkNs   *obs.Histogram
	chunkSize *obs.Histogram
	simNs     *obs.Histogram // per-instance latency (chunk mean)
	busy      []*obs.Counter // per-worker busy nanoseconds
}

func newSchedObs(rec *obs.Recorder, workers int) *schedObs {
	if rec == nil || (rec.Metrics == nil && rec.Trace == nil) {
		return nil
	}
	o := &schedObs{
		tracer:    rec.Trace,
		jobs:      rec.Counter("sim.jobs_submitted"),
		jobsDone:  rec.Counter("sim.jobs_completed"),
		chunks:    rec.Counter("sim.chunks_completed"),
		instances: rec.Counter("sim.instances_completed"),
		queue:     rec.Gauge("sim.queue_depth"),
		chunkNs:   rec.Histogram("sim.chunk_ns", obs.LatencyBounds()),
		chunkSize: rec.Histogram("sim.chunk_size", obs.SizeBounds()),
		simNs:     rec.Histogram("sim.sim_ns", obs.LatencyBounds()),
		busy:      make([]*obs.Counter, workers),
	}
	for w := range o.busy {
		o.busy[w] = rec.Counter(fmt.Sprintf("sim.worker.%02d.busy_ns", w))
	}
	return o
}

// setRecorder installs the scheduler's observability. It must be called
// before the first job is enqueued (workers start lazily, so the
// handles are published to them by the pool-start synchronization).
func (s *Scheduler) setRecorder(rec *obs.Recorder) {
	s.obs = newSchedObs(rec, s.workers)
}

// newScheduler sizes a pool with the given worker count (>= 1). The task
// queue is buffered so submitters rarely block while the pool drains.
func newScheduler(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	return &Scheduler{workers: workers, tasks: make(chan chunk, workers*8)}
}

// enqueue shards a job of n instances into chunks and hands them to the
// pool. It may block if the task queue is full; workers always drain it,
// so submission cannot deadlock.
func (s *Scheduler) enqueue(j *Job, n int) {
	s.start.Do(func() {
		for w := 0; w < s.workers; w++ {
			go s.work(w)
		}
	})
	// Shard into at most 2 chunks per worker, at least 8 instances per
	// chunk so chunk bookkeeping stays negligible next to simulation.
	size := (n + 2*s.workers - 1) / (2 * s.workers)
	if size < 8 {
		size = 8
	}
	chunks := (n + size - 1) / size
	j.pending.Store(int64(chunks))
	o := s.obs
	o.countJob()
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		o.countEnqueue()
		s.tasks <- chunk{job: j, lo: lo, hi: hi}
	}
}

// countJob / countEnqueue are nil-safe submission-side hooks.
func (o *schedObs) countJob() {
	if o != nil {
		o.jobs.Inc()
	}
}

func (o *schedObs) countEnqueue() {
	if o != nil {
		o.queue.Add(1)
	}
}

// work is one worker's loop: simulate a chunk into a private aggregate,
// merge it into the job, and complete the job when its last chunk lands.
// Counts merging is commutative, so completion order does not affect the
// result.
func (s *Scheduler) work(id int) {
	for t := range s.tasks {
		o := s.obs
		if o == nil {
			s.runChunk(t)
			continue
		}
		o.queue.Add(-1)
		sp := o.tracer.Span("sim", "chunk").WithTid(100 + id)
		start := time.Now()
		completed := s.runChunk(t)
		dur := time.Since(start)
		n := uint64(t.hi - t.lo)
		if sp != nil {
			sp.SetArg("instances", n)
			sp.End()
		}
		o.busy[id].Add(uint64(dur))
		o.chunkNs.Observe(uint64(dur))
		o.chunkSize.Observe(n)
		o.simNs.Observe(uint64(dur) / n)
		o.chunks.Inc()
		o.instances.Add(n)
		if completed {
			o.jobsDone.Inc()
		}
	}
}

// runChunk simulates one chunk and reports whether it completed its
// job. This is the simulate hot path: it takes no locks beyond the
// job's final merge and touches no observability state.
func (s *Scheduler) runChunk(t chunk) bool {
	j := t.job
	local := coverage.NewCounts(j.total.Len())
	for i := t.lo; i < t.hi; i++ {
		g := generator.NewFromPlan(j.plan, j.seed.SplitIndex(uint64(i)).Uint64())
		local.Add(j.unit.Simulate(g))
	}
	j.mu.Lock()
	j.total.Merge(local)
	j.mu.Unlock()
	if j.pending.Add(-1) == 0 {
		close(j.done)
		return true
	}
	return false
}

// Close shuts the pool down; idle workers exit after finishing queued
// work. No job may be submitted after Close. Close is idempotent.
func (s *Scheduler) Close() {
	s.stop.Do(func() { close(s.tasks) })
}
