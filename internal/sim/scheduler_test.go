package sim

import (
	"sync"
	"testing"

	"repro/internal/coverage"
	"repro/internal/duv/iounit"
	"repro/internal/template"
)

// sameCounts fails unless a and b agree event-for-event and in total.
func sameCounts(t *testing.T, label string, a, b *coverage.Counts) {
	t.Helper()
	if a.Sims() != b.Sims() {
		t.Fatalf("%s: sims %d != %d", label, a.Sims(), b.Sims())
	}
	if a.Len() != b.Len() {
		t.Fatalf("%s: len %d != %d", label, a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Hits(i) != b.Hits(i) {
			t.Fatalf("%s: event %d hits %d != %d", label, i, a.Hits(i), b.Hits(i))
		}
	}
}

func TestSubmitWaitMatchesSequentialRun(t *testing.T) {
	// The scheduler path must be bit-identical to the single-worker
	// sequential path for the same env seed and submission order.
	seq := NewEnv(newToy(), 123, 1)
	par := NewEnv(newToy(), 123, 4)
	defer seq.Close()
	defer par.Close()
	base := seq.Unit().BaseTemplates()[0]
	for _, batch := range []struct {
		tmpl *template.Template
		n    int
	}{
		{modeB(t), 100},
		{base, 301},
		{nil, 57},
		{base, 5},
	} {
		want := run(t, seq, batch.tmpl, batch.n)
		got := submit(t, par, batch.tmpl, batch.n).Wait()
		sameCounts(t, "batch", want, got)
	}
	if seq.Simulations() != par.Simulations() {
		t.Fatalf("accounting: %d != %d", seq.Simulations(), par.Simulations())
	}
}

func TestConcurrentJobsBitIdentical(t *testing.T) {
	// All jobs submitted up front and in flight together must still match
	// a sequential env running the same batches in submission order.
	seq := NewEnv(newToy(), 7, 1)
	par := NewEnv(newToy(), 7, 8)
	defer seq.Close()
	defer par.Close()
	base := par.Unit().BaseTemplates()[0]
	templates := []*template.Template{base, modeB(t), base, nil, modeB(t), base}

	jobs := make([]*Job, len(templates))
	for i, tmpl := range templates {
		jobs[i] = submit(t, par, tmpl, 150)
	}
	for i, tmpl := range templates {
		sameCounts(t, "job", run(t, seq, tmpl, 150), jobs[i].Wait())
	}
}

func TestSubmitZeroInstances(t *testing.T) {
	env := NewEnv(newToy(), 9, 4)
	defer env.Close()
	job := submit(t, env, modeB(t), 0)
	c := job.Wait() // must not block
	if c.Sims() != 0 {
		t.Fatalf("zero-instance job ran %d sims", c.Sims())
	}
	if env.Simulations() != 0 {
		t.Fatalf("accounting = %d", env.Simulations())
	}
	// The batch counter is consumed even for empty jobs (matching Run), so
	// the next batch must align with a sequential env that also burned one.
	seq := NewEnv(newToy(), 9, 1)
	defer seq.Close()
	run(t, seq, modeB(t), 0)
	sameCounts(t, "post-empty", run(t, seq, modeB(t), 80), submit(t, env, modeB(t), 80).Wait())
}

func TestSubmitCountsAtSubmission(t *testing.T) {
	env := NewEnv(newToy(), 10, 2)
	defer env.Close()
	job := submit(t, env, modeB(t), 64)
	if env.Simulations() != 64 {
		t.Fatalf("submitted-but-unfinished job not counted: %d", env.Simulations())
	}
	job.Wait()
	if env.Simulations() != 64 {
		t.Fatalf("accounting drifted after Wait: %d", env.Simulations())
	}
}

func TestManyConcurrentSubmitters(t *testing.T) {
	// Submission from many goroutines is safe; per-job results are exact
	// even though inter-job submission order is nondeterministic.
	env := NewEnv(newToy(), 11, 4)
	defer env.Close()
	const goroutines, perJob = 8, 120
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := submit(t, env, modeB(t), perJob).Wait()
			if c.Sims() != perJob || c.Hits(1) != perJob {
				t.Errorf("job counts: sims %d hits %d", c.Sims(), c.Hits(1))
			}
		}()
	}
	wg.Wait()
	if env.Simulations() != goroutines*perJob {
		t.Fatalf("accounting = %d, want %d", env.Simulations(), goroutines*perJob)
	}
}

func TestSchedulerRealUnitEquivalence(t *testing.T) {
	// Real multi-parameter templates through both paths, every event
	// compared.
	seq := NewEnv(iounit.New(), 42, 1)
	par := NewEnv(iounit.New(), 42, 6)
	defer seq.Close()
	defer par.Close()
	for _, tmpl := range seq.Unit().BaseTemplates() {
		sameCounts(t, tmpl.Name, run(t, seq, tmpl, 120), submit(t, par, tmpl, 120).Wait())
	}
}

func TestRunEachMatchesSequential(t *testing.T) {
	seq := NewEnv(iounit.New(), 5, 1)
	par := NewEnv(iounit.New(), 5, 4)
	defer seq.Close()
	defer par.Close()
	ts := seq.Unit().BaseTemplates()
	a, err := seq.RunEach(ts, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.RunEach(ts, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		sameCounts(t, ts[i].Name, a[i], b[i])
	}
}

func TestEnvCloseIdempotent(t *testing.T) {
	env := NewEnv(newToy(), 1, 3)
	submit(t, env, modeB(t), 20).Wait()
	env.Close()
	env.Close() // second close must not panic
}

func TestPlanCacheReuse(t *testing.T) {
	env := NewEnv(newToy(), 2, 2)
	defer env.Close()
	tmpl := modeB(t)
	if env.plan(tmpl) != env.plan(tmpl) {
		t.Fatal("plan cache did not reuse the compiled plan")
	}
	if env.plan(nil) != env.plan(nil) {
		t.Fatal("nil-template plan not cached")
	}
}
