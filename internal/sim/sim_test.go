package sim

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/duv"
	"repro/internal/duv/iounit"
	"repro/internal/generator"
	"repro/internal/template"
)

// toyDUV is a deterministic two-event unit for environment tests: event
// 0 is always hit, event 1 is hit when the template sets Mode=b.
type toyDUV struct {
	model    *coverage.Model
	defaults generator.Defaults
}

func newToy() *toyDUV {
	m := coverage.MustModel([]string{"always", "mode_b"})
	def, err := template.Parse("template toy_defaults { weight Mode { a: 100; b: 0; } }")
	if err != nil {
		panic(err)
	}
	return &toyDUV{model: m, defaults: duv.DefaultsFromTemplate(def)}
}

func (d *toyDUV) Name() string                 { return "toy" }
func (d *toyDUV) Model() *coverage.Model       { return d.model }
func (d *toyDUV) Defaults() generator.Defaults { return d.defaults }
func (d *toyDUV) BaseTemplates() []*template.Template {
	t, _ := template.Parse("template toy_base { weight Mode { a: 50; b: 50; } }")
	return []*template.Template{t}
}
func (d *toyDUV) Simulate(g *generator.Generator) coverage.Vector {
	v := coverage.NewVectorFor(d.model)
	v.Set(0)
	if g.PickValue("Mode") == "b" {
		v.Set(1)
	}
	return v
}

func modeB(t *testing.T) *template.Template {
	t.Helper()
	tmpl, err := template.Parse("template b_only { weight Mode { a: 0; b: 100; } }")
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

// run / submit / buildCorpus are must-helpers: the open-environment
// paths under test never return errors (ErrClosed is exercised by
// TestClosedEnvReturnsErrClosed).
func run(t *testing.T, env *Env, tmpl *template.Template, n int) *coverage.Counts {
	t.Helper()
	c, err := env.Run(tmpl, n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func submit(t *testing.T, env *Env, tmpl *template.Template, n int) *Job {
	t.Helper()
	job, err := env.Submit(tmpl, n)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func buildCorpus(t *testing.T, env *Env, sims int) *coverage.Repository {
	t.Helper()
	repo, err := env.BuildCorpus(sims)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestRunAggregates(t *testing.T) {
	env := NewEnv(newToy(), 1, 4)
	c := run(t, env, modeB(t), 100)
	if c.Sims() != 100 {
		t.Fatalf("sims = %d", c.Sims())
	}
	if c.Hits(0) != 100 || c.Hits(1) != 100 {
		t.Fatalf("hits = %d,%d", c.Hits(0), c.Hits(1))
	}
	if env.Simulations() != 100 {
		t.Fatalf("accounting = %d", env.Simulations())
	}
}

func TestRunNilTemplateUsesDefaults(t *testing.T) {
	env := NewEnv(newToy(), 2, 2)
	c := run(t, env, nil, 50)
	if c.Hits(1) != 0 {
		t.Fatalf("defaults hit mode_b %d times", c.Hits(1))
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	mk := func() *coverage.Counts {
		env := NewEnv(newToy(), 42, 3)
		base := env.Unit().BaseTemplates()[0]
		return run(t, env, base, 200)
	}
	a, b := mk(), mk()
	for i := 0; i < 2; i++ {
		if a.Hits(i) != b.Hits(i) {
			t.Fatalf("event %d: %d != %d across identical envs", i, a.Hits(i), b.Hits(i))
		}
	}
}

func TestRepeatedBatchesSeeFreshNoise(t *testing.T) {
	env := NewEnv(newToy(), 7, 2)
	base := env.Unit().BaseTemplates()[0] // 50/50 template
	a := run(t, env, base, 500)
	b := run(t, env, base, 500)
	if a.Hits(1) == b.Hits(1) {
		t.Logf("two batches agreed exactly (%d); possible but unlikely", a.Hits(1))
	}
	// Both must look like ~50%.
	for _, c := range []*coverage.Counts{a, b} {
		if r := c.HitRate(1); r < 0.35 || r > 0.65 {
			t.Fatalf("batch rate = %v, want ~0.5", r)
		}
	}
}

func TestWorkerCountsEquivalent(t *testing.T) {
	// The same env seed must give the same aggregate regardless of the
	// worker count (work split is by index, not by scheduling).
	mk := func(workers int) *coverage.Counts {
		env := NewEnv(newToy(), 99, workers)
		return run(t, env, env.Unit().BaseTemplates()[0], 301)
	}
	a, b, c := mk(1), mk(4), mk(16)
	for i := 0; i < 2; i++ {
		if a.Hits(i) != b.Hits(i) || b.Hits(i) != c.Hits(i) {
			t.Fatalf("event %d differs across worker counts: %d/%d/%d", i, a.Hits(i), b.Hits(i), c.Hits(i))
		}
	}
}

func TestRunEach(t *testing.T) {
	env := NewEnv(newToy(), 5, 2)
	ts := []*template.Template{modeB(t), env.Unit().BaseTemplates()[0]}
	counts, err := env.RunEach(ts, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 {
		t.Fatalf("len = %d", len(counts))
	}
	if counts[0].Hits(1) != 40 {
		t.Fatalf("modeB hits = %d", counts[0].Hits(1))
	}
	if env.Simulations() != 80 {
		t.Fatalf("accounting = %d", env.Simulations())
	}
}

func TestRunInto(t *testing.T) {
	env := NewEnv(newToy(), 6, 2)
	repo := coverage.NewRepository(env.Unit().Model())
	if _, err := env.RunInto(repo, modeB(t), 30); err != nil {
		t.Fatal(err)
	}
	c, ok := repo.Template("b_only")
	if !ok || c.Sims() != 30 {
		t.Fatalf("repository not updated: %v %v", c, ok)
	}
}

func TestBuildCorpus(t *testing.T) {
	env := NewEnv(newToy(), 8, 2)
	repo := buildCorpus(t, env, 25)
	if repo.Sims() != 25 {
		t.Fatalf("corpus sims = %d", repo.Sims())
	}
	if _, ok := repo.Template("toy_base"); !ok {
		t.Fatal("base template missing from corpus")
	}
}

func TestBuildCorpusRealUnit(t *testing.T) {
	unit := iounit.New()
	env := NewEnv(unit, 11, 0)
	repo := buildCorpus(t, env, 20)
	want := uint64(20 * len(unit.BaseTemplates()))
	if repo.Sims() != want {
		t.Fatalf("corpus sims = %d, want %d", repo.Sims(), want)
	}
	if len(repo.TemplateNames()) != len(unit.BaseTemplates()) {
		t.Fatalf("templates = %v", repo.TemplateNames())
	}
	// Some coverage must exist.
	if repo.Total().Hits(unit.Model().MustLookup("io_cmd_crc")) == 0 {
		t.Fatal("corpus produced no coverage")
	}
}
