package sim

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/coverage"
	"repro/internal/duv/iounit"
	"repro/internal/generator"
	"repro/internal/journal"
	"repro/internal/obs"
)

// blockDUV wraps the toy unit so the first Simulate call parks on a gate
// — a deterministic way to have one chunk in flight while the rest of a
// job sits queued.
type blockDUV struct {
	*toyDUV
	gate    chan struct{} // Simulate blocks until this closes
	started chan struct{} // closed when the first Simulate begins
	once    sync.Once
}

func newBlockDUV() *blockDUV {
	return &blockDUV{
		toyDUV:  newToy(),
		gate:    make(chan struct{}),
		started: make(chan struct{}),
	}
}

func (d *blockDUV) Simulate(g *generator.Generator) coverage.Vector {
	d.once.Do(func() { close(d.started) })
	<-d.gate
	return d.toyDUV.Simulate(g)
}

// TestCancelAbortsQueuedChunks parks a single worker inside a job's
// first chunk, cancels, and releases it: the in-flight chunk drains
// normally, the queued chunk aborts without simulating, and Wait still
// returns — no goroutine leak, no deadlock.
func TestCancelAbortsQueuedChunks(t *testing.T) {
	unit := newBlockDUV()
	env := NewEnv(unit, 1, 1)
	defer env.Close()
	rec := obs.NewRecorder()
	env.SetRecorder(rec)
	ctx, cancel := context.WithCancel(context.Background())
	env.SetContext(ctx)

	// 32 instances on 1 worker shard into exactly two 16-instance chunks.
	job := submit(t, env, modeB(t), 32)
	<-unit.started // chunk 1 is in flight; chunk 2 is queued
	cancel()
	close(unit.gate)

	counts := job.Wait()
	if got := counts.Sims(); got != 16 {
		t.Fatalf("sims after cancel = %d, want 16 (in-flight chunk only)", got)
	}
	if got := rec.Counter("sim.chunks_aborted").Value(); got != 1 {
		t.Fatalf("sim.chunks_aborted = %d, want 1", got)
	}
	if _, err := env.Submit(modeB(t), 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit after cancel: err = %v, want context.Canceled", err)
	}
	if _, err := env.Run(modeB(t), 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after cancel: err = %v, want context.Canceled", err)
	}
}

// TestRunReportsCancelAfterWait cancels while a batch is in flight: Run
// must surface ctx.Err() rather than partial counts.
func TestRunReportsCancelAfterWait(t *testing.T) {
	unit := newBlockDUV()
	env := NewEnv(unit, 1, 2)
	defer env.Close()
	ctx, cancel := context.WithCancel(context.Background())
	env.SetContext(ctx)

	errc := make(chan error, 1)
	go func() {
		_, err := env.Run(modeB(t), 64)
		errc <- err
	}()
	<-unit.started
	cancel()
	close(unit.gate)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
}

// TestBuildCorpusJournaledMatchesPlain proves the journaled build is
// observationally identical to BuildCorpus: same repository, same
// environment counters (so later phases draw the same seeds).
func TestBuildCorpusJournaledMatchesPlain(t *testing.T) {
	const seed, sims = 21, 40
	plainEnv := NewEnv(iounit.New(), seed, 3)
	defer plainEnv.Close()
	want := buildCorpus(t, plainEnv, sims)

	env := NewEnv(iounit.New(), seed, 3)
	defer env.Close()
	path := filepath.Join(t.TempDir(), "corpus.journal")
	cur, err := env.OpenCorpusJournal(path, false, sims, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := env.BuildCorpusJournaled(sims, cur)
	if err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("journaled corpus differs from plain build")
	}
	if env.Batches() != plainEnv.Batches() || env.Simulations() != plainEnv.Simulations() {
		t.Fatalf("counters diverged: (%d, %d) vs (%d, %d)",
			env.Batches(), env.Simulations(), plainEnv.Batches(), plainEnv.Simulations())
	}

	// Full replay from the completed journal: zero new simulations, same
	// repository, counters restored to the originals.
	replayEnv := NewEnv(iounit.New(), seed, 3)
	defer replayEnv.Close()
	cur2, err := replayEnv.OpenCorpusJournal(path, true, sims, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Close()
	replayed, err := replayEnv.BuildCorpusJournaled(sims, cur2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, want) {
		t.Fatal("replayed corpus differs from plain build")
	}
	if replayEnv.Batches() != plainEnv.Batches() || replayEnv.Simulations() != plainEnv.Simulations() {
		t.Fatal("replay did not restore environment counters")
	}
}

// TestBuildCorpusJournaledResumeFromEveryCrash kills the journaled build
// at every append boundary (clean and torn), then recovers and resumes
// with a fresh environment: the final repository must be bit-identical
// to an uninterrupted build every time.
func TestBuildCorpusJournaledResumeFromEveryCrash(t *testing.T) {
	const seed, sims = 21, 25
	plainEnv := NewEnv(iounit.New(), seed, 2)
	defer plainEnv.Close()
	want := buildCorpus(t, plainEnv, sims)
	templates := len(iounit.New().BaseTemplates())

	// Append 0 is the header; templates occupy appends 1..templates.
	for fail := 1; fail <= templates; fail++ {
		for _, tear := range []int{0, 7} {
			path := filepath.Join(t.TempDir(), "corpus.journal")
			env := NewEnv(iounit.New(), seed, 2)
			cur, err := env.OpenCorpusJournal(path, false, sims, nil)
			if err != nil {
				t.Fatal(err)
			}
			cur.Writer().FailAppends(fail, tear)
			if _, err := env.BuildCorpusJournaled(sims, cur); !errors.Is(err, journal.ErrInjected) {
				t.Fatalf("fail=%d tear=%d: err = %v, want ErrInjected", fail, tear, err)
			}
			cur.Close()
			env.Close()

			resumed := NewEnv(iounit.New(), seed, 2)
			cur2, err := resumed.OpenCorpusJournal(path, true, sims, nil)
			if err != nil {
				t.Fatalf("fail=%d tear=%d: reopen: %v", fail, tear, err)
			}
			got, err := resumed.BuildCorpusJournaled(sims, cur2)
			if err != nil {
				t.Fatalf("fail=%d tear=%d: resume: %v", fail, tear, err)
			}
			cur2.Close()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("fail=%d tear=%d: resumed corpus differs", fail, tear)
			}
			if resumed.Batches() != plainEnv.Batches() || resumed.Simulations() != plainEnv.Simulations() {
				t.Fatalf("fail=%d tear=%d: counters diverged", fail, tear)
			}
			resumed.Close()
		}
	}
}

// TestOpenCorpusJournalRejectsMismatch: a journal written for one
// (unit, seed, budget) must not replay into a different build.
func TestOpenCorpusJournalRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.journal")
	env := NewEnv(iounit.New(), 21, 1)
	defer env.Close()
	cur, err := env.OpenCorpusJournal(path, false, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	cur.Close()

	other := NewEnv(iounit.New(), 22, 1)
	defer other.Close()
	if _, err := other.OpenCorpusJournal(path, true, 10, nil); err == nil {
		t.Fatal("resume with a different seed succeeded")
	}
	if _, err := env.OpenCorpusJournal(path, true, 11, nil); err == nil {
		t.Fatal("resume with a different budget succeeded")
	}
	toy := NewEnv(newToy(), 21, 1)
	defer toy.Close()
	if _, err := toy.OpenCorpusJournal(path, true, 10, nil); err == nil {
		t.Fatal("resume with a different unit succeeded")
	}
}
