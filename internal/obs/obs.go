package obs

// Recorder bundles the three observability sinks — metrics, trace, and
// progress — behind one nil-safe handle that instrumented code threads
// through the flow. Any field may be nil to disable that sink; a nil
// *Recorder disables everything. All accessors below are safe on a nil
// receiver and return nil (no-op) handles, so instrumentation sites
// never branch on whether observability is on.
type Recorder struct {
	Metrics  *Registry
	Trace    *Tracer
	Progress *Progress

	// Campaign is the trace-correlation identity of the work recorded
	// through this handle ("" for standalone runs). The service sets it
	// to the campaign ID on each campaign's per-run recorder; the
	// scheduler stamps it — together with batch and chunk sequence
	// numbers — onto chunk spans and outbound farm frames, so a farmd
	// span on another host carries the same IDs as its dispatcher-side
	// parent.
	Campaign string
}

// CampaignID returns the correlation identity ("" when unset or when
// the recorder is nil).
func (r *Recorder) CampaignID() string {
	if r == nil {
		return ""
	}
	return r.Campaign
}

// NewRecorder returns a recorder with all three sinks enabled (the
// progress sink discards; tests and benchmarks that want a live stream
// set Progress themselves).
func NewRecorder() *Recorder {
	return &Recorder{Metrics: NewRegistry(), Trace: NewTracer()}
}

// Counter returns the named counter handle (nil if metrics are off).
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.Metrics.Counter(name)
}

// Gauge returns the named gauge handle (nil if metrics are off).
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.Metrics.Gauge(name)
}

// Histogram returns the named histogram handle (nil if metrics are
// off).
func (r *Recorder) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	return r.Metrics.Histogram(name, bounds)
}

// Span starts a trace span (nil no-op span if tracing is off).
func (r *Recorder) Span(cat, name string) *Span {
	if r == nil {
		return nil
	}
	return r.Trace.Span(cat, name)
}

// Emit writes one progress event (no-op if the progress stream is
// off).
func (r *Recorder) Emit(event string, fields map[string]any) {
	if r == nil {
		return
	}
	r.Progress.Emit(event, fields)
}

// Phase is one in-flight flow phase: a trace span plus the
// phase_start/phase_end progress event pair. A nil *Phase is a valid
// no-op.
type Phase struct {
	r    *Recorder
	name string
	span *Span
}

// PhaseStart begins a named flow phase (corpus, neighbors, tac,
// skeleton, sampling, optimization, harvest): it opens a "phase"
// category span and emits a phase_start progress event carrying args.
// End the phase with Phase.End.
func (r *Recorder) PhaseStart(name string, args map[string]any) *Phase {
	if r == nil {
		return nil
	}
	span := r.Span("phase", name)
	for k, v := range args {
		span.SetArg(k, v)
	}
	fields := make(map[string]any, len(args)+1)
	for k, v := range args {
		fields[k] = v
	}
	fields["phase"] = name
	r.Emit("phase_start", fields)
	return &Phase{r: r, name: name, span: span}
}

// End completes the phase, attaching args to both the span and the
// phase_end progress event.
func (p *Phase) End(args map[string]any) {
	if p == nil {
		return
	}
	for k, v := range args {
		p.span.SetArg(k, v)
	}
	p.span.End()
	fields := make(map[string]any, len(args)+1)
	for k, v := range args {
		fields[k] = v
	}
	fields["phase"] = p.name
	p.r.Emit("phase_end", fields)
}
