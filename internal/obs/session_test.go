package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDisabledSessionHasNilRecorder(t *testing.T) {
	var out bytes.Buffer
	sess, err := StartSession(Config{}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Recorder() != nil {
		t.Fatalf("fully disabled session must have a nil recorder")
	}
	if sess.DebugAddr() != "" {
		t.Fatalf("no debug server expected")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("disabled session must not write anything, got %q", out.String())
	}
}

func TestSessionWritesTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out bytes.Buffer
	sess, err := StartSession(Config{TracePath: path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	rec := sess.Recorder()
	if rec == nil || rec.Trace == nil || rec.Metrics == nil {
		t.Fatalf("trace session must enable tracer and registry")
	}
	ph := rec.PhaseStart("corpus", nil)
	ph.End(nil)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []TraceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace file is not a JSON array: %v", err)
	}
	if len(events) != 1 || events[0].Name != "corpus" {
		t.Fatalf("bad trace file contents: %+v", events)
	}
}

func TestSessionMetricsDump(t *testing.T) {
	var out bytes.Buffer
	sess, err := StartSession(Config{MetricsDump: true}, &out)
	if err != nil {
		t.Fatal(err)
	}
	sess.Recorder().Counter("sim.jobs").Add(2)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sim.jobs") {
		t.Fatalf("metrics dump missing counter:\n%s", out.String())
	}
}

func TestSessionProgressStream(t *testing.T) {
	var progress, out bytes.Buffer
	sess, err := StartSession(Config{ProgressW: &progress}, &out)
	if err != nil {
		t.Fatal(err)
	}
	sess.Recorder().Emit("hello", nil)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(progress.String(), `"event":"hello"`) {
		t.Fatalf("progress stream missing event:\n%s", progress.String())
	}
}

func TestSessionDebugServer(t *testing.T) {
	var out bytes.Buffer
	sess, err := StartSession(Config{DebugAddr: "127.0.0.1:0"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	addr := sess.DebugAddr()
	if addr == "" {
		t.Fatalf("debug server did not bind")
	}
	if !strings.Contains(out.String(), addr) {
		t.Fatalf("startup banner missing bound address %q:\n%s", addr, out.String())
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionCloseReportsTraceError(t *testing.T) {
	var out bytes.Buffer
	sess, err := StartSession(Config{TracePath: filepath.Join(t.TempDir(), "missing", "out.json")}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err == nil {
		t.Fatalf("Close must report an unwritable trace path")
	}
}
