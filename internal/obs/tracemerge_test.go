package obs

import (
	"bytes"
	"testing"
)

func TestParseTraceForms(t *testing.T) {
	array := []byte(`[{"name":"a","cat":"c","ph":"X","ts":1,"dur":2,"pid":0,"tid":1}]`)
	events, err := ParseTrace(array)
	if err != nil || len(events) != 1 || events[0].Name != "a" {
		t.Fatalf("bare array: %v, %v", events, err)
	}
	object := []byte(`{"traceEvents":[{"name":"b","ph":"X","pid":0,"tid":1}]}`)
	events, err = ParseTrace(object)
	if err != nil || len(events) != 1 || events[0].Name != "b" {
		t.Fatalf("object form: %v, %v", events, err)
	}
	if _, err := ParseTrace([]byte(`{"displayTimeUnit":"ms"}`)); err == nil {
		t.Fatal("object without traceEvents accepted")
	}
	if _, err := ParseTrace([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMergeTracesLanes(t *testing.T) {
	files := []TraceFile{
		{Name: "cdgd.trace", Events: []TraceEvent{
			{Name: "rpc", Cat: "farm", Ph: "X", Tid: 200},
		}},
		{Name: "farmd-a.trace", Events: []TraceEvent{
			{Name: "serve_chunk", Cat: "farm", Ph: "X", Tid: 1},
			{Name: "serve_chunk", Cat: "farm", Ph: "X", Tid: 1},
		}},
	}
	merged := MergeTraces(files)
	// 2 metadata events + 3 spans.
	if len(merged) != 5 {
		t.Fatalf("merged %d events, want 5", len(merged))
	}
	if merged[0].Ph != "M" || merged[0].Name != "process_name" ||
		merged[0].Pid != 1 || merged[0].Args["name"] != "cdgd.trace" {
		t.Fatalf("first metadata event = %+v", merged[0])
	}
	pids := map[string]int{}
	for _, ev := range merged {
		if ev.Ph == "X" {
			pids[ev.Name] = ev.Pid
		}
	}
	if pids["rpc"] != 1 || pids["serve_chunk"] != 2 {
		t.Fatalf("pid remap = %v", pids)
	}

	if got := MergeTraces(nil); got == nil || len(got) != 0 {
		t.Fatalf("empty merge = %v, want empty non-nil slice", got)
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	in := MergeTraces([]TraceFile{{Name: "x", Events: []TraceEvent{{Name: "s", Ph: "X", Tid: 3}}}})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) || out[1].Name != "s" || out[1].Pid != 1 {
		t.Fatalf("round trip = %+v", out)
	}

	var empty bytes.Buffer
	if err := WriteTrace(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTrace(empty.Bytes()); err != nil {
		t.Fatalf("nil events wrote an unparsable trace: %v (%q)", err, empty.String())
	}
}
