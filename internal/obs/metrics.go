// Package obs is the observability layer of the AS-CDG reproduction:
// a lock-free metrics registry (atomic counters, gauges, and bounded
// histograms), span-based tracing exported as Chrome trace-event JSON
// (viewable in Perfetto or chrome://tracing), a structured JSONL
// progress stream, and a debug HTTP endpoint (expvar + pprof).
//
// Every instrumentation entry point is nil-safe: a nil *Recorder, nil
// *Counter, nil *Gauge, nil *Histogram, nil *Span, and nil *Phase are
// all valid no-op receivers, so instrumented code carries no
// conditionals and a disabled run pays only a nil check per event.
// Instrumentation is purely observational — it never touches RNG
// streams, merge orders, or scheduling decisions — so aggregates are
// bit-identical with observability on or off, at any worker count.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a valid no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that may move both ways
// (queue depths, in-flight jobs). A nil *Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded, lock-free histogram over uint64 observations
// (latencies in nanoseconds, chunk sizes). Bucket i counts observations
// <= bounds[i]; one implicit overflow bucket catches the rest, so the
// memory footprint is fixed at creation no matter how many observations
// arrive. A nil *Histogram is a valid no-op.
type Histogram struct {
	bounds  []uint64 // ascending upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// newHistogram builds a histogram with the given ascending upper
// bounds (plus the implicit overflow bucket).
func newHistogram(bounds []uint64) *Histogram {
	b := append([]uint64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 for a nil histogram).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0, 1]) from the bucket counts: the bound of the bucket the quantile
// falls in, or the observed maximum for the overflow bucket.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max.Load()
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
	Max    uint64   `json:"max"`
	Bounds []uint64 `json:"bounds"`
	// Buckets has len(Bounds)+1 entries; the last is the overflow.
	Buckets []uint64 `json:"buckets"`
}

// ExpBounds returns n exponentially spaced bounds start, start*factor,
// start*factor^2, ... — the standard shape for latency and size
// histograms.
func ExpBounds(start uint64, factor float64, n int) []uint64 {
	if start == 0 {
		start = 1
	}
	bounds := make([]uint64, 0, n)
	v := float64(start)
	for i := 0; i < n; i++ {
		bounds = append(bounds, uint64(v))
		v *= factor
	}
	return bounds
}

// LatencyBounds is the default nanosecond latency bucket layout:
// 1us .. ~16s in powers of two.
func LatencyBounds() []uint64 { return ExpBounds(1000, 2, 24) }

// SizeBounds is the default size/count bucket layout: 1 .. 2^19 in
// powers of two.
func SizeBounds() []uint64 { return ExpBounds(1, 2, 20) }

// Registry is a named collection of metrics. Registration (the Counter
// / Gauge / Histogram lookups) takes a mutex and should happen once per
// call site — instrumented hot paths hold on to the returned handle and
// then update it lock-free. A nil *Registry returns nil (no-op) metric
// handles, so call sites need no branches.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls with different bounds return the
// original histogram.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterWith returns the counter for name with the given label set
// (rendered by Labels). Labeled series live in the registry under the
// composite key "name{k=\"v\",...}"; Snapshot and Format keep that key,
// and the OpenMetrics exposition splits it back into a family plus
// labels. An empty labels string is the plain unlabeled series.
func (r *Registry) CounterWith(name, labels string) *Counter {
	return r.Counter(metricKey(name, labels))
}

// GaugeWith returns the gauge for name with the given label set.
func (r *Registry) GaugeWith(name, labels string) *Gauge {
	return r.Gauge(metricKey(name, labels))
}

// HistogramWith returns the histogram for name with the given label
// set, creating it with bounds on first use.
func (r *Registry) HistogramWith(name, labels string, bounds []uint64) *Histogram {
	return r.Histogram(metricKey(name, labels), bounds)
}

func metricKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// splitMetricKey splits a registry key into its family name and label
// part ("" when unlabeled).
func splitMetricKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// Snapshot is a point-in-time copy of every metric in a registry,
// JSON-serializable for the debug endpoint.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
			Max:    h.max.Load(),
			Bounds: append([]uint64(nil), h.bounds...),
		}
		hs.Buckets = make([]uint64, len(h.buckets))
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// Format renders the registry as an aligned, sorted text summary — the
// CLIs' -metrics final dump.
func (r *Registry) Format() string {
	if r == nil {
		return ""
	}
	snap := r.Snapshot()
	var b strings.Builder
	b.WriteString("metrics summary\n")
	writeSection := func(title string, names []string, line func(name string)) {
		if len(names) == 0 {
			return
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%s:\n", title)
		for _, n := range names {
			line(n)
		}
	}
	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	writeSection("counters", names, func(n string) {
		fmt.Fprintf(&b, "  %-36s %12d\n", n, snap.Counters[n])
	})
	names = nil
	for n := range snap.Gauges {
		names = append(names, n)
	}
	writeSection("gauges", names, func(n string) {
		fmt.Fprintf(&b, "  %-36s %12d\n", n, snap.Gauges[n])
	})
	names = nil
	for n := range snap.Histograms {
		names = append(names, n)
	}
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	writeSection("histograms", names, func(n string) {
		hs := snap.Histograms[n]
		h := hists[n]
		mean := uint64(0)
		if hs.Count > 0 {
			mean = hs.Sum / hs.Count
		}
		fmt.Fprintf(&b, "  %-36s count=%d mean=%d p50=%d p90=%d p99=%d max=%d\n",
			n, hs.Count, mean, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), hs.Max)
	})
	return b.String()
}
