package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestProgressEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.Emit("phase_start", map[string]any{"phase": "corpus", "sims": 10})
	p.Emit("opt_iter", nil)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if first["event"] != "phase_start" || first["phase"] != "corpus" {
		t.Fatalf("bad first event: %v", first)
	}
	if _, ok := first["t_ms"]; !ok {
		t.Fatalf("missing t_ms: %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if second["event"] != "opt_iter" {
		t.Fatalf("bad second event: %v", second)
	}
}

func TestProgressReservedKeysWin(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.Emit("real", map[string]any{"event": "forged", "t_ms": "forged"})
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["event"] != "real" {
		t.Fatalf("reserved key overwritten: %v", rec)
	}
	if _, ok := rec["t_ms"].(float64); !ok {
		t.Fatalf("t_ms must be numeric: %v", rec)
	}
}

func TestNilProgressIsNoOp(t *testing.T) {
	var p *Progress
	p.Emit("x", map[string]any{"k": 1}) // must not panic
}
