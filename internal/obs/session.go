package obs

import (
	"fmt"
	"io"
	"os"
)

// Config selects which observability sinks a CLI run enables — the
// direct image of the shared -trace / -progress / -metrics /
// -debug-addr flags.
type Config struct {
	// TracePath, when non-empty, collects spans and writes them as
	// Chrome trace-event JSON to this file at Close.
	TracePath string
	// ProgressW, when non-nil, receives the JSONL progress stream
	// (CLIs pass their stderr).
	ProgressW io.Writer
	// MetricsDump prints the final metrics summary at Close.
	MetricsDump bool
	// DebugAddr, when non-empty, serves /debug/vars, /debug/metrics,
	// /debug/pprof, /metrics, /healthz and /readyz on this address for
	// the duration of the run.
	DebugAddr string
	// Health, when non-nil, answers the debug server's /readyz probe;
	// daemons register their readiness checks on it (possibly after
	// StartSession returns — checks are read per request).
	Health *Health
}

func (c Config) enabled() bool {
	return c.TracePath != "" || c.ProgressW != nil || c.MetricsDump || c.DebugAddr != ""
}

// Session is one CLI run's observability: the recorder to thread into
// the flow plus the teardown that flushes files and stops the debug
// server. A fully disabled session has a nil Recorder, so an
// uninstrumented run stays zero-cost.
type Session struct {
	rec       *Recorder
	srv       *DebugServer
	tracePath string
	dump      bool
	w         io.Writer
}

// StartSession builds a recorder per cfg; summaries and the metrics
// dump go to w. When no sink is enabled the session's Recorder is nil.
func StartSession(cfg Config, w io.Writer) (*Session, error) {
	s := &Session{w: w}
	if !cfg.enabled() {
		return s, nil
	}
	s.rec = &Recorder{Metrics: NewRegistry()}
	s.tracePath = cfg.TracePath
	s.dump = cfg.MetricsDump
	if cfg.TracePath != "" {
		s.rec.Trace = NewTracer()
	}
	if cfg.ProgressW != nil {
		s.rec.Progress = NewProgress(cfg.ProgressW)
	}
	if cfg.DebugAddr != "" {
		srv, err := ServeDebug(cfg.DebugAddr, s.rec.Metrics, cfg.Health)
		if err != nil {
			return nil, fmt.Errorf("obs: debug server: %w", err)
		}
		s.srv = srv
		fmt.Fprintf(w, "debug endpoint on http://%s/debug/\n", srv.Addr())
	}
	return s, nil
}

// Recorder returns the session's recorder — nil when every sink is
// disabled, which instrumented code treats as "observability off".
func (s *Session) Recorder() *Recorder { return s.rec }

// DebugAddr returns the bound debug-server address ("" when disabled).
func (s *Session) DebugAddr() string {
	if s.srv == nil {
		return ""
	}
	return s.srv.Addr()
}

// Close flushes the trace file, prints the metrics dump, and stops the
// debug server. It returns the first error (trace-file I/O); the run's
// results are unaffected either way.
func (s *Session) Close() error {
	var first error
	if s.srv != nil {
		if err := s.srv.Close(); err != nil && first == nil {
			first = err
		}
		s.srv = nil
	}
	if s.tracePath != "" && s.rec != nil {
		f, err := os.Create(s.tracePath)
		if err != nil {
			if first == nil {
				first = err
			}
		} else {
			if err := s.rec.Trace.Export(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		s.tracePath = ""
	}
	if s.dump && s.rec != nil {
		fmt.Fprint(s.w, s.rec.Metrics.Format())
		s.dump = false
	}
	return first
}
