package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Health aggregates named readiness checks for the /readyz endpoint.
// Liveness (/healthz) is implicit — the process answering HTTP is the
// signal — while readiness is the AND of every registered check:
// daemons register probes like "farm worker not draining" or "campaign
// queue not saturated", and load balancers route around any node whose
// probe fails. A nil *Health reports ready, so wiring is optional.
type Health struct {
	mu     sync.Mutex
	checks map[string]func() error
}

// NewHealth returns an empty health aggregate (ready by default).
func NewHealth() *Health {
	return &Health{checks: map[string]func() error{}}
}

// Set registers (or replaces) a named readiness check. The check is
// called on every /readyz request and must be cheap and concurrency
// safe; returning an error marks the process not ready. A nil check
// removes the name.
func (h *Health) Set(name string, check func() error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if check == nil {
		delete(h.checks, name)
		return
	}
	h.checks[name] = check
}

// Err runs every check in name order and returns the first failure,
// wrapped with the check's name, or nil when the process is ready.
func (h *Health) Err() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	names := make([]string, 0, len(h.checks))
	for n := range h.checks {
		names = append(names, n)
	}
	checks := make([]func() error, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		checks = append(checks, h.checks[n])
	}
	h.mu.Unlock()
	for i, check := range checks {
		if err := check(); err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
	}
	return nil
}
