package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestLabels(t *testing.T) {
	if got := Labels("b", "2", "a", "1"); got != `a="1",b="2"` {
		t.Fatalf("Labels not sorted: %q", got)
	}
	if got := Labels("k", "a\\b\"c\nd"); got != `k="a\\b\"c\nd"` {
		t.Fatalf("Labels escaping: %q", got)
	}
	if got := Labels("bad.name", "v"); got != `bad_name="v"` {
		t.Fatalf("Labels sanitizing: %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Labels with odd arguments did not panic")
		}
	}()
	Labels("only-key")
}

func TestFormatLe(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{1, "1.0"},
		{10, "10.0"},
		{1024, "1024.0"},
		{1 << 40, "1.099511627776e+12"},
	}
	for _, c := range cases {
		if got := formatLe(c.in); got != c.want {
			t.Errorf("formatLe(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// popRegistry fills a registry with every metric shape the exposition
// handles: plain and labeled counters/gauges, plain and labeled
// histograms, and a name needing sanitization.
func popRegistry() *Registry {
	r := NewRegistry()
	r.Counter("farm.chunks").Add(42)
	r.CounterWith("farm.dials", Labels("peer", "a:9666", "proto", "v3")).Add(3)
	r.Gauge("service.running").Set(2)
	r.GaugeWith("farm.conns", Labels("peer", "b:9666", "proto", "v1")).Add(1)
	h := r.Histogram("farm.rpc_ns", LatencyBounds())
	for i := uint64(1); i < 30; i++ {
		h.Observe(i * 100_000)
	}
	hl := r.HistogramWith("farm.server.chunk_ns", Labels("proto", "v2"), ExpBounds(10, 2, 4))
	hl.Observe(5)
	hl.Observe(500)
	return r
}

func TestWriteOpenMetricsConformance(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, popRegistry()); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if err := ValidateOpenMetrics(buf.Bytes()); err != nil {
		t.Fatalf("own exposition fails validation: %v\n%s", err, page)
	}
	for _, want := range []string{
		"# TYPE farm_chunks counter\n",
		"farm_chunks_total 42\n",
		`farm_dials_total{peer="a:9666",proto="v3"} 3`,
		`farm_conns{peer="b:9666",proto="v1"} 1`,
		"# TYPE farm_rpc_ns histogram\n",
		`farm_rpc_ns_bucket{le="+Inf"}`,
		"farm_rpc_ns_sum ",
		"farm_rpc_ns_count 29\n",
		`farm_server_chunk_ns_bucket{proto="v2",le="10.0"} 1`,
		"# TYPE ascdg_build_info gauge\n",
		"ascdg_build_info{",
		"# EOF\n",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition lacks %q\n%s", want, page)
		}
	}
	if !strings.HasSuffix(page, "# EOF\n") {
		t.Fatal("exposition does not end with # EOF")
	}
}

func TestWriteOpenMetricsNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := ValidateOpenMetrics(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ascdg_build_info") {
		t.Fatalf("nil-registry exposition lacks build_info:\n%s", buf.String())
	}
}

// TestWriteOpenMetricsDeterministic locks the page's byte-for-byte
// stability: same registry state, same output, regardless of map
// iteration order.
func TestWriteOpenMetricsDeterministic(t *testing.T) {
	r := popRegistry()
	var a, b bytes.Buffer
	if err := WriteOpenMetrics(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := WriteOpenMetrics(&b, r); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two renders differ:\n%s\n----\n%s", a.String(), b.String())
	}
}

// TestRegistryConcurrentWriters hammers the registry from many
// goroutines while the exposition renders, then checks the final totals
// are exact — run under -race this also proves the snapshot path is
// data-race free.
func TestRegistryConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const writers, perWriter = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("test.counter")
			lc := r.CounterWith("test.labeled", Labels("w", "shared"))
			h := r.Histogram("test.hist", ExpBounds(1, 2, 8))
			for i := 0; i < perWriter; i++ {
				c.Inc()
				lc.Inc()
				h.Observe(uint64(i % 64))
			}
		}()
	}
	stop := make(chan struct{})
	var renders sync.WaitGroup
	renders.Add(1)
	go func() {
		defer renders.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				if err := WriteOpenMetrics(&buf, r); err != nil {
					t.Error(err)
					return
				}
				if err := ValidateOpenMetrics(buf.Bytes()); err != nil {
					t.Errorf("mid-write exposition invalid: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	renders.Wait()

	snap := r.Snapshot()
	if got := snap.Counters["test.counter"]; got != writers*perWriter {
		t.Fatalf("test.counter = %d, want %d", got, writers*perWriter)
	}
	if got := snap.Counters[`test.labeled{w="shared"}`]; got != writers*perWriter {
		t.Fatalf("test.labeled = %d, want %d", got, writers*perWriter)
	}
	if got := snap.Histograms["test.hist"].Count; got != writers*perWriter {
		t.Fatalf("test.hist count = %d, want %d", got, writers*perWriter)
	}
}

func TestValidateOpenMetricsRejects(t *testing.T) {
	cases := []struct {
		name string
		page string
	}{
		{"no_eof", "# TYPE a counter\na_total 1\n"},
		{"content_after_eof", "# TYPE a counter\na_total 1\n# EOF\na_total 2\n# EOF\n"},
		{"empty_line", "# TYPE a counter\n\na_total 1\n# EOF\n"},
		{"sample_before_type", "a_total 1\n# EOF\n"},
		{"counter_without_total", "# TYPE a counter\na 1\n# EOF\n"},
		{"duplicate_type", "# TYPE a counter\n# TYPE a counter\na_total 1\n# EOF\n"},
		{"unsupported_type", "# TYPE a summary\na 1\n# EOF\n"},
		{"interleaved_families", "# TYPE a counter\n# TYPE b counter\na_total 1\n# EOF\n"},
		{"duplicate_series", "# TYPE a counter\na_total 1\na_total 2\n# EOF\n"},
		{"negative_counter", "# TYPE a counter\na_total -1\n# EOF\n"},
		{"timestamped_sample", "# TYPE a counter\na_total 1 123456\n# EOF\n"},
		{"unquoted_label", "# TYPE a counter\na_total{x=1} 1\n# EOF\n"},
		{"bad_escape", "# TYPE a counter\na_total{x=\"\\t\"} 1\n# EOF\n"},
		{"duplicate_label", "# TYPE a counter\na_total{x=\"1\",x=\"2\"} 1\n# EOF\n"},
		{"nan_value", "# TYPE a gauge\na NaN\n# EOF\n"},
		{"hist_no_inf", "# TYPE h histogram\nh_bucket{le=\"1.0\"} 1\nh_sum 1\nh_count 1\n# EOF\n"},
		{"hist_not_cumulative", "# TYPE h histogram\nh_bucket{le=\"1.0\"} 5\nh_bucket{le=\"2.0\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n# EOF\n"},
		{"hist_bounds_not_increasing", "# TYPE h histogram\nh_bucket{le=\"2.0\"} 1\nh_bucket{le=\"1.0\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n# EOF\n"},
		{"hist_count_mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n# EOF\n"},
		{"hist_missing_sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n# EOF\n"},
		{"hist_finite_after_inf", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_bucket{le=\"1.0\"} 1\nh_sum 1\nh_count 2\n# EOF\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateOpenMetrics([]byte(tc.page)); err == nil {
				t.Fatalf("validator accepted %s:\n%s", tc.name, tc.page)
			}
		})
	}
	good := "# TYPE h histogram\nh_bucket{le=\"1.0\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n# TYPE ok counter\nok_total 1\n# EOF\n"
	if err := ValidateOpenMetrics([]byte(good)); err != nil {
		t.Fatalf("validator rejected a valid page: %v", err)
	}
}
