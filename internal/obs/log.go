package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// This file is the structured-logging face of the observability layer:
// every daemon builds one *slog.Logger from its -log-level/-log-format
// flags and threads it through service, dispatcher, server, and
// journal, attaching correlated fields (campaign, conn, chunk) at each
// layer. Like the rest of the package the loggers are optional: code
// that receives no logger uses NopLogger, whose handler reports every
// level disabled, so a silent run pays one Enabled check per call site.

// discardHandler is a slog.Handler that drops everything. (The stdlib
// gained slog.DiscardHandler in a Go release newer than this module's
// minimum; this is the same thing.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var nopLogger = slog.New(discardHandler{})

// NopLogger returns a logger that discards every record with levels
// disabled, for code paths that always want a non-nil logger.
func NopLogger() *slog.Logger { return nopLogger }

// OrNop returns l, or the discarding logger when l is nil, so callees
// can log unconditionally.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nopLogger
	}
	return l
}

// ParseLogLevel maps the -log-level flag values (debug, info, warn,
// error) onto slog levels.
func ParseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("invalid log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds the daemons' structured logger: format is "text"
// (logfmt-style, the default) or "json" (one JSON object per line),
// level is one of debug/info/warn/error.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("invalid log format %q (want text or json)", format)
}
