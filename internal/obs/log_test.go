package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNopLogger(t *testing.T) {
	l := NopLogger()
	if l == nil {
		t.Fatal("NopLogger returned nil")
	}
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("nop logger has a level enabled")
	}
	l.Info("must not panic", "k", "v")
	if OrNop(nil) != l {
		t.Fatal("OrNop(nil) is not the nop logger")
	}
	real := slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))
	if OrNop(real) != real {
		t.Fatal("OrNop replaced a real logger")
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("verbose"); err == nil {
		t.Fatal("invalid level accepted")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "campaign", "c000001")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line is not JSON: %v (%q)", err, buf.String())
	}
	if rec["campaign"] != "c000001" || rec["msg"] != "hello" {
		t.Fatalf("json record = %v", rec)
	}

	buf.Reset()
	l, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("filtered out")
	if buf.Len() != 0 {
		t.Fatalf("info leaked through warn level: %q", buf.String())
	}
	l.Warn("kept", "k", "v")
	if !strings.Contains(buf.String(), "msg=kept") || !strings.Contains(buf.String(), "k=v") {
		t.Fatalf("text record = %q", buf.String())
	}

	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("invalid format accepted")
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("invalid level accepted")
	}
}
