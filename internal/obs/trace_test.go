package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	s := tr.Span("phase", "corpus")
	s.SetArg("sims", 100)
	s.End()
	w := tr.Span("sim", "chunk").WithTid(105)
	w.End()

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	ev := events[0]
	if ev.Name != "corpus" || ev.Cat != "phase" || ev.Ph != "X" || ev.Pid != 1 || ev.Tid != 1 {
		t.Fatalf("bad phase event: %+v", ev)
	}
	if ev.Args["sims"] != 100 {
		t.Fatalf("args not recorded: %+v", ev.Args)
	}
	if ev.Dur < 0 || ev.Ts < 0 {
		t.Fatalf("negative timestamps: %+v", ev)
	}
	if events[1].Tid != 105 {
		t.Fatalf("WithTid not honored: %+v", events[1])
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestTracerExportIsValidChromeTrace(t *testing.T) {
	tr := NewTracer()
	tr.Span("phase", "sampling").End()
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var events []TraceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 1 || events[0].Ph != "X" {
		t.Fatalf("bad decoded events: %+v", events)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.Span("phase", "x")
	if s != nil {
		t.Fatalf("nil tracer must return a nil span")
	}
	s.SetArg("k", 1)
	s = s.WithTid(7)
	s.End()
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatalf("nil tracer must read as empty")
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil tracer must still write a valid empty trace, got %q", buf.String())
	}
}
