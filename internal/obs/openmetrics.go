package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
)

// This file is the OpenMetrics text exposition (the format Prometheus
// scrapes): WriteOpenMetrics renders a Registry snapshot, Labels builds
// canonical label sets for the *With registry lookups, and
// ValidateOpenMetrics is the strict in-test conformance checker the CI
// gate runs against every /metrics endpoint.
//
// Internal metric names use dots ("farm.rpc_ns"); the exposition maps
// every character outside [a-zA-Z0-9_:] to '_' ("farm_rpc_ns").
// Counters gain the mandated "_total" suffix, histograms expand into
// cumulative "_bucket{le=...}" series plus "_sum"/"_count", and every
// page carries an ascdg_build_info gauge and ends with "# EOF".

// Labels renders a canonical OpenMetrics label set from key/value
// pairs: sorted by key, values escaped, rendered as k="v",k2="v2".
// It panics on an odd number of arguments (a programming error).
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs.Labels: odd number of key/value arguments")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{sanitizeLabelName(kv[i]), kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// sanitizeMetricName maps an internal metric name onto the OpenMetrics
// charset: [a-zA-Z_:][a-zA-Z0-9_:]*, with '.' and any other byte
// outside it becoming '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func sanitizeLabelName(name string) string {
	s := sanitizeMetricName(name)
	return strings.ReplaceAll(s, ":", "_")
}

// OpenMetricsContentType is the content type of the exposition,
// advertised by the /metrics endpoints.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// formatLe renders a histogram bucket bound as a canonical OpenMetrics
// float: integral values carry a ".0" suffix (10.0, not 10).
func formatLe(bound uint64) string {
	s := strconv.FormatFloat(float64(bound), 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

type omSample struct {
	suffix string // appended to the family name ("_total", "_bucket", ...)
	labels string
	value  string
}

type omFamily struct {
	name    string
	typ     string
	samples []omSample
}

// WriteOpenMetrics renders a point-in-time snapshot of the registry in
// the OpenMetrics text format, including the ascdg_build_info gauge and
// the terminating "# EOF" line. A nil registry renders build_info only
// — a valid, nearly empty page — so endpoints need no nil branches.
func WriteOpenMetrics(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	families := map[string]*omFamily{}
	add := func(key, typ, suffix, value string) {
		name, labels := splitMetricKey(key)
		name = sanitizeMetricName(name)
		f, ok := families[name]
		if !ok {
			f = &omFamily{name: name, typ: typ}
			families[name] = f
		}
		f.samples = append(f.samples, omSample{suffix: suffix, labels: labels, value: value})
	}
	for key, v := range snap.Counters {
		add(key, "counter", "_total", strconv.FormatUint(v, 10))
	}
	for key, v := range snap.Gauges {
		add(key, "gauge", "", strconv.FormatInt(v, 10))
	}
	for key, hs := range snap.Histograms {
		name, labels := splitMetricKey(key)
		name = sanitizeMetricName(name)
		f, ok := families[name]
		if !ok {
			f = &omFamily{name: name, typ: "histogram"}
			families[name] = f
		}
		cum := uint64(0)
		for i, b := range hs.Buckets {
			cum += b
			le := "+Inf"
			if i < len(hs.Bounds) {
				le = formatLe(hs.Bounds[i])
			}
			bl := `le="` + le + `"`
			if labels != "" {
				bl = labels + "," + bl
			}
			f.samples = append(f.samples, omSample{suffix: "_bucket", labels: bl,
				value: strconv.FormatUint(cum, 10)})
		}
		// _count is the +Inf cumulative, not hs.Count: the snapshot copies
		// buckets and count with separate atomic loads, so under concurrent
		// Observe calls only the bucket-derived total is guaranteed
		// consistent with the buckets on the same page.
		f.samples = append(f.samples,
			omSample{suffix: "_sum", labels: labels, value: strconv.FormatUint(hs.Sum, 10)},
			omSample{suffix: "_count", labels: labels, value: strconv.FormatUint(cum, 10)})
	}

	bi := buildinfo.Read()
	add("ascdg_build_info", "gauge", "", "1")
	f := families["ascdg_build_info"]
	f.samples[len(f.samples)-1].labels = Labels(
		"version", bi.Version,
		"revision", bi.Revision,
		"goversion", bi.GoVersion,
	)

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := families[n]
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		// Histogram sample order (buckets, sum, count per series) is
		// already structural; for flat families sort by labels so the
		// page is deterministic run to run.
		if f.typ != "histogram" {
			sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		}
		for _, s := range f.samples {
			b.WriteString(f.name)
			b.WriteString(s.suffix)
			if s.labels != "" {
				b.WriteByte('{')
				b.WriteString(s.labels)
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(s.value)
			b.WriteByte('\n')
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

var (
	omMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	omLabelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type omSeries struct {
	name   string
	labels map[string]string
}

// parseOMSample parses one exposition sample line into its series and
// value. It enforces label syntax (quoting, escapes, separators).
func parseOMSample(line string) (omSeries, float64, error) {
	s := omSeries{labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		nameEnd = sp
	} else {
		return s, 0, fmt.Errorf("no value on sample line")
	}
	s.name = rest[:nameEnd]
	if !omMetricName.MatchString(s.name) {
		return s, 0, fmt.Errorf("invalid metric name %q", s.name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		rest = rest[1:] // consume '{'
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, 0, fmt.Errorf("label without '='")
			}
			lname := rest[:eq]
			if !omLabelName.MatchString(lname) {
				return s, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return s, 0, fmt.Errorf("unquoted label value for %q", lname)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for i := 0; i < len(rest); i++ {
				c := rest[i]
				if c == '\\' {
					if i+1 >= len(rest) {
						return s, 0, fmt.Errorf("dangling escape in label value")
					}
					i++
					switch rest[i] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, 0, fmt.Errorf("invalid escape \\%c", rest[i])
					}
					continue
				}
				if c == '"' {
					rest = rest[i+1:]
					closed = true
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				return s, 0, fmt.Errorf("unterminated label value for %q", lname)
			}
			if _, dup := s.labels[lname]; dup {
				return s, 0, fmt.Errorf("duplicate label %q", lname)
			}
			s.labels[lname] = val.String()
			if len(rest) > 0 && rest[0] == ',' {
				rest = rest[1:]
				continue
			}
			if len(rest) > 0 && rest[0] == '}' {
				rest = rest[1:]
				break
			}
			return s, 0, fmt.Errorf("malformed label separator")
		}
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return s, 0, fmt.Errorf("missing space before value")
	}
	valueStr := rest[1:]
	if valueStr == "" || strings.ContainsAny(valueStr, " \t") {
		return s, 0, fmt.Errorf("malformed value %q (timestamps are not accepted)", valueStr)
	}
	v, err := parseOMFloat(valueStr)
	if err != nil {
		return s, 0, err
	}
	return s, v, nil
}

func parseOMFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf", "NaN":
		return 0, fmt.Errorf("value %q not produced by this exposition", s)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid value %q", s)
	}
	return v, nil
}

func seriesKey(s omSeries, drop string) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if k == drop {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, s.labels[k])
	}
	return b.String()
}

type omHistState struct {
	lastLe  float64
	lastCum float64
	haveLe  bool
	infCum  float64
	haveInf bool
	count   float64
	haveCnt bool
	haveSum bool
}

// ValidateOpenMetrics is a strict structural validator for the subset
// of the OpenMetrics text format this package emits: TYPE-declared
// counter/gauge/histogram/info families, no interleaving, "_total"
// counters, cumulative non-decreasing histogram buckets ending in
// le="+Inf" with _count equal to the +Inf bucket, no duplicate series,
// and a final "# EOF\n". The CI conformance gate scrapes each /metrics
// endpoint and runs its body through here.
func ValidateOpenMetrics(data []byte) error {
	text := string(data)
	if !strings.HasSuffix(text, "# EOF\n") {
		return fmt.Errorf("openmetrics: exposition must end with %q", "# EOF\n")
	}
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	types := map[string]string{} // family -> type
	seen := map[string]bool{}    // full series key incl. le -> present
	hists := map[string]*omHistState{}
	var curFamily, curType string
	sawEOF := false
	for ln, line := range lines {
		if sawEOF {
			return fmt.Errorf("openmetrics: line %d: content after # EOF", ln+1)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if line == "" {
			return fmt.Errorf("openmetrics: line %d: empty line", ln+1)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return fmt.Errorf("openmetrics: line %d: malformed comment %q", ln+1, line)
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return fmt.Errorf("openmetrics: line %d: malformed TYPE line", ln+1)
				}
				name, typ := fields[2], fields[3]
				if !omMetricName.MatchString(name) {
					return fmt.Errorf("openmetrics: line %d: invalid family name %q", ln+1, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "info":
				default:
					return fmt.Errorf("openmetrics: line %d: unsupported type %q", ln+1, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("openmetrics: line %d: duplicate TYPE for %q", ln+1, name)
				}
				types[name] = typ
				curFamily, curType = name, typ
			case "HELP", "UNIT":
				if fields[2] != curFamily {
					return fmt.Errorf("openmetrics: line %d: %s for %q outside its family block", ln+1, fields[1], fields[2])
				}
			default:
				return fmt.Errorf("openmetrics: line %d: unknown comment keyword %q", ln+1, fields[1])
			}
			continue
		}
		s, v, err := parseOMSample(line)
		if err != nil {
			return fmt.Errorf("openmetrics: line %d: %v", ln+1, err)
		}
		if curFamily == "" {
			return fmt.Errorf("openmetrics: line %d: sample %q before any TYPE declaration", ln+1, s.name)
		}
		var base, suffix string
		switch curType {
		case "counter":
			if !strings.HasSuffix(s.name, "_total") {
				return fmt.Errorf("openmetrics: line %d: counter sample %q lacks _total", ln+1, s.name)
			}
			base, suffix = strings.TrimSuffix(s.name, "_total"), "_total"
		case "gauge":
			base = s.name
		case "info":
			if !strings.HasSuffix(s.name, "_info") {
				return fmt.Errorf("openmetrics: line %d: info sample %q lacks _info", ln+1, s.name)
			}
			base = strings.TrimSuffix(s.name, "_info")
		case "histogram":
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(s.name, suf) {
					base, suffix = strings.TrimSuffix(s.name, suf), suf
					break
				}
			}
			if base == "" {
				return fmt.Errorf("openmetrics: line %d: histogram sample %q has no bucket/sum/count suffix", ln+1, s.name)
			}
		}
		if base != curFamily {
			return fmt.Errorf("openmetrics: line %d: sample %q interleaves into family %q", ln+1, s.name, curFamily)
		}
		full := seriesKey(s, "") + "|..suffix=" + suffix
		if seen[full] {
			return fmt.Errorf("openmetrics: line %d: duplicate series %q", ln+1, line)
		}
		seen[full] = true
		if v < 0 && curType != "gauge" {
			return fmt.Errorf("openmetrics: line %d: negative %s value", ln+1, curType)
		}
		if curType != "histogram" {
			continue
		}
		// Group the histogram's series by base name (the _bucket/_sum/
		// _count suffixes all belong to one histogram) and labels minus le.
		base2 := s
		base2.name = base
		group := seriesKey(base2, "le")
		st, ok := hists[group]
		if !ok {
			st = &omHistState{}
			hists[group] = st
		}
		switch suffix {
		case "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				return fmt.Errorf("openmetrics: line %d: bucket without le label", ln+1)
			}
			leV := 0.0
			if le == "+Inf" {
				st.haveInf = true
				st.infCum = v
				leV = math.Inf(1)
			} else if leV, err = strconv.ParseFloat(le, 64); err != nil {
				return fmt.Errorf("openmetrics: line %d: invalid le %q", ln+1, le)
			} else if st.haveInf {
				return fmt.Errorf("openmetrics: line %d: finite bucket after +Inf", ln+1)
			}
			if st.haveLe && leV <= st.lastLe {
				return fmt.Errorf("openmetrics: line %d: bucket bounds not increasing", ln+1)
			}
			if st.haveLe && v < st.lastCum {
				return fmt.Errorf("openmetrics: line %d: bucket counts not cumulative", ln+1)
			}
			st.haveLe, st.lastLe, st.lastCum = true, leV, v
		case "_sum":
			st.haveSum = true
		case "_count":
			st.haveCnt = true
			st.count = v
		}
	}
	if !sawEOF {
		return fmt.Errorf("openmetrics: missing # EOF line")
	}
	for group, st := range hists {
		if !st.haveInf {
			return fmt.Errorf("openmetrics: histogram %q has no +Inf bucket", group)
		}
		if !st.haveSum || !st.haveCnt {
			return fmt.Errorf("openmetrics: histogram %q missing _sum or _count", group)
		}
		if st.count != st.infCum {
			return fmt.Errorf("openmetrics: histogram %q: _count %g != +Inf bucket %g", group, st.count, st.infCum)
		}
	}
	return nil
}
