package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.jobs").Add(42)
	srv, err := ServeDebug("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var snap Snapshot
	if err := json.Unmarshal(get(t, base+"/debug/metrics"), &snap); err != nil {
		t.Fatalf("/debug/metrics is not JSON: %v", err)
	}
	if snap.Counters["sim.jobs"] != 42 {
		t.Fatalf("metrics snapshot = %+v, want sim.jobs=42", snap)
	}

	vars := string(get(t, base+"/debug/vars"))
	if !strings.Contains(vars, `"ascdg"`) {
		t.Fatalf("/debug/vars missing the ascdg metrics var:\n%s", vars)
	}
	if !strings.Contains(vars, "sim.jobs") {
		t.Fatalf("/debug/vars missing published counter:\n%s", vars)
	}

	pprofIndex := string(get(t, base+"/debug/pprof/"))
	if !strings.Contains(pprofIndex, "goroutine") {
		t.Fatalf("/debug/pprof/ index looks wrong:\n%s", pprofIndex)
	}
}

// TestDebugServerOpsEndpoints exercises the ops surface: /metrics must
// emit valid OpenMetrics (while histograms are concurrently observed),
// /healthz is always 200, and /readyz follows the Health checks.
func TestDebugServerOpsEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("farm.chunks").Add(7)
	health := NewHealth()
	srv, err := ServeDebug("127.0.0.1:0", reg, health)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Hammer a histogram while scraping: every page must stay valid.
	stop := make(chan struct{})
	histDone := make(chan struct{})
	go func() {
		defer close(histDone)
		h := reg.Histogram("scrape.race_ns", LatencyBounds())
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				h.Observe(i * 1000)
			}
		}
	}()
	for i := 0; i < 10; i++ {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != OpenMetricsContentType {
			t.Fatalf("/metrics content type = %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateOpenMetrics(body); err != nil {
			t.Fatalf("scrape %d invalid: %v\n%s", i, err, body)
		}
	}
	close(stop)
	<-histDone
	page := string(get(t, base+"/metrics"))
	if !strings.Contains(page, "farm_chunks_total 7\n") ||
		!strings.Contains(page, `scrape_race_ns_bucket{le="+Inf"}`) {
		t.Fatalf("/metrics page missing expected series:\n%s", page)
	}

	if body := string(get(t, base+"/healthz")); !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %q", body)
	}
	if body := string(get(t, base+"/readyz")); !strings.Contains(body, "ok") {
		t.Fatalf("/readyz = %q", body)
	}

	// Flip a health check: /readyz turns 503 with the failure named,
	// /healthz stays 200.
	health.Set("sessions", func() error { return fmt.Errorf("draining") })
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "sessions: draining") {
		t.Fatalf("/readyz body = %q", body)
	}
	get(t, base+"/healthz")
}

func TestDebugServerRestart(t *testing.T) {
	// Starting a second server (tests and repeated sessions do this)
	// must not panic on duplicate expvar registration, and the expvar
	// snapshot must follow the most recent registry.
	for i := 0; i < 2; i++ {
		reg := NewRegistry()
		reg.Counter("restart.run").Add(uint64(i + 1))
		srv, err := ServeDebug("127.0.0.1:0", reg, nil)
		if err != nil {
			t.Fatal(err)
		}
		vars := string(get(t, fmt.Sprintf("http://%s/debug/vars", srv.Addr())))
		want := fmt.Sprintf(`"restart.run":%d`, i+1)
		if !strings.Contains(vars, want) {
			t.Fatalf("run %d: /debug/vars missing %q:\n%s", i, want, vars)
		}
		srv.Close()
	}
}
