package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.jobs").Add(42)
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var snap Snapshot
	if err := json.Unmarshal(get(t, base+"/debug/metrics"), &snap); err != nil {
		t.Fatalf("/debug/metrics is not JSON: %v", err)
	}
	if snap.Counters["sim.jobs"] != 42 {
		t.Fatalf("metrics snapshot = %+v, want sim.jobs=42", snap)
	}

	vars := string(get(t, base+"/debug/vars"))
	if !strings.Contains(vars, `"ascdg"`) {
		t.Fatalf("/debug/vars missing the ascdg metrics var:\n%s", vars)
	}
	if !strings.Contains(vars, "sim.jobs") {
		t.Fatalf("/debug/vars missing published counter:\n%s", vars)
	}

	pprofIndex := string(get(t, base+"/debug/pprof/"))
	if !strings.Contains(pprofIndex, "goroutine") {
		t.Fatalf("/debug/pprof/ index looks wrong:\n%s", pprofIndex)
	}
}

func TestDebugServerRestart(t *testing.T) {
	// Starting a second server (tests and repeated sessions do this)
	// must not panic on duplicate expvar registration, and the expvar
	// snapshot must follow the most recent registry.
	for i := 0; i < 2; i++ {
		reg := NewRegistry()
		reg.Counter("restart.run").Add(uint64(i + 1))
		srv, err := ServeDebug("127.0.0.1:0", reg)
		if err != nil {
			t.Fatal(err)
		}
		vars := string(get(t, fmt.Sprintf("http://%s/debug/vars", srv.Addr())))
		want := fmt.Sprintf(`"restart.run":%d`, i+1)
		if !strings.Contains(vars, want) {
			t.Fatalf("run %d: /debug/vars missing %q:\n%s", i, want, vars)
		}
		srv.Close()
	}
}
