package obs

import (
	"errors"
	"strings"
	"testing"
)

func TestHealthNilIsReady(t *testing.T) {
	var h *Health
	if err := h.Err(); err != nil {
		t.Fatalf("nil Health not ready: %v", err)
	}
	if err := NewHealth().Err(); err != nil {
		t.Fatalf("empty Health not ready: %v", err)
	}
}

func TestHealthFirstFailureInNameOrder(t *testing.T) {
	h := NewHealth()
	errB := errors.New("b broke")
	h.Set("b", func() error { return errB })
	h.Set("a", func() error { return nil })
	h.Set("c", func() error { return errors.New("c broke") })
	err := h.Err()
	if !errors.Is(err, errB) {
		t.Fatalf("Err() = %v, want wrapped %v", err, errB)
	}
	if !strings.HasPrefix(err.Error(), "b: ") {
		t.Fatalf("failure not named: %v", err)
	}
}

func TestHealthSetNilRemoves(t *testing.T) {
	h := NewHealth()
	h.Set("x", func() error { return errors.New("down") })
	if h.Err() == nil {
		t.Fatal("failing check did not fail")
	}
	h.Set("x", nil)
	if err := h.Err(); err != nil {
		t.Fatalf("removed check still fails: %v", err)
	}
}
