package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file merges per-process Chrome trace files from a fleet run
// (one from the dispatcher-side CLI or cdgd, one per farmd) into a
// single timeline: each input becomes its own pid "lane group" named
// after the file, so Perfetto shows the dispatcher's rpc spans and
// every worker's serve_chunk spans side by side, correlated by the
// campaign/batch/chunk span args the wire protocol carries across the
// process boundary. cmd/tracemerge is the CLI face of MergeTraces.

// TraceFile is one per-process trace input to MergeTraces.
type TraceFile struct {
	// Name labels the process lane in the merged view (typically the
	// file name, e.g. "farmd-host2").
	Name string
	// Events are the process's trace events, as written by
	// Tracer.Export.
	Events []TraceEvent
}

// ParseTrace decodes a Chrome trace file: either the bare JSON array
// Tracer.Export writes or the object form {"traceEvents": [...]}.
func ParseTrace(data []byte) ([]TraceEvent, error) {
	var events []TraceEvent
	if err := json.Unmarshal(data, &events); err == nil {
		return events, nil
	}
	var obj struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &obj); err != nil {
		return nil, fmt.Errorf("obs: not a Chrome trace (neither an event array nor a traceEvents object): %w", err)
	}
	if obj.TraceEvents == nil {
		return nil, fmt.Errorf("obs: not a Chrome trace: no traceEvents array")
	}
	return obj.TraceEvents, nil
}

// MergeTraces combines per-process traces into one timeline: input i's
// events move to pid i+1, prefixed with a process_name metadata event
// carrying the file's Name, so every process gets a named lane group
// and the per-process tids (flow, workers, rpc lanes) stay distinct
// within it. Timestamps are preserved as-is — each tracer's epoch is
// its own process start, which is exactly the alignment wanted for
// comparing per-process activity of one fleet run.
func MergeTraces(files []TraceFile) []TraceEvent {
	var merged []TraceEvent
	for i, f := range files {
		pid := i + 1
		merged = append(merged, TraceEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]any{"name": f.Name},
		})
		for _, ev := range f.Events {
			ev.Pid = pid
			merged = append(merged, ev)
		}
	}
	if merged == nil {
		merged = []TraceEvent{}
	}
	return merged
}

// WriteTrace writes events as one JSON array — a loadable Chrome trace.
func WriteTrace(w io.Writer, events []TraceEvent) error {
	if events == nil {
		events = []TraceEvent{}
	}
	return json.NewEncoder(w).Encode(events)
}
